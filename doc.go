// Package condor is a Go reproduction of "Condor — A Hunter of Idle
// Workstations" (Litzkow, Livny, Mutka; ICDCS 1988): a cycle-scavenging
// batch scheduler for a pool of personally-owned workstations.
//
// The package exposes three layers:
//
//   - Pool: an in-process cluster of real communicating daemons — one
//     coordinator plus N stations, each with a background-job queue, a
//     checkpoint store, a starter for foreign jobs, and shadow processes
//     for its own remote jobs. Jobs are programs for a small
//     checkpointable VM (see NewProgram/Assemble); they migrate between
//     machines with their full state when workstation owners return.
//
//   - Simulate: the month-scale discrete-event evaluation that
//     regenerates every table and figure of the paper (Table 1, Figures
//     2–9) using the same Up-Down and allocation policy code that drives
//     the live daemons.
//
//   - The building blocks themselves, under internal/: the Remote Unix
//     facility (internal/ru), the checkpoint format and stores
//     (internal/ckpt), the VM (internal/cvm), the Up-Down algorithm
//     (internal/updown) and the allocation policy (internal/policy).
//
// Quick start:
//
//	pool, err := condor.NewPool(condor.PoolConfig{Stations: 4, Fast: true})
//	if err != nil { ... }
//	defer pool.Close()
//	jobID, err := pool.Submit("ws0", "alice", condor.SumProgram(1_000_000))
//	status, err := pool.Wait(jobID, time.Minute)
//	fmt.Println(status.Stdout)
package condor
