package condor

import (
	"strings"
	"testing"
	"time"
)

func fastPool(t *testing.T, n int) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{Stations: n, Fast: true, SliceDelay: 200 * time.Microsecond, StepsPerSlice: 5000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPoolEndToEnd(t *testing.T) {
	p := fastPool(t, 3)
	jobID, err := p.Submit("ws0", "alice", SumProgram(10_000))
	if err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(jobID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobCompleted {
		t.Fatalf("status = %+v", status)
	}
	if strings.TrimSpace(status.Stdout) != "50005000" {
		t.Fatalf("stdout = %q", status.Stdout)
	}
}

func TestPoolMigrationOnOwnerReturn(t *testing.T) {
	p := fastPool(t, 3)
	jobID, err := p.Submit("ws0", "alice", SumProgram(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it runs somewhere, then bring that owner back.
	var execHost string
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := p.Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobRunning {
			execHost = st.ExecHost
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p.SetOwnerActive(execHost, true); err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(jobID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobCompleted {
		t.Fatalf("status = %+v", status)
	}
	if strings.TrimSpace(status.Stdout) != "12500002500000" {
		t.Fatalf("stdout = %q", status.Stdout)
	}
	if status.Checkpoints == 0 {
		t.Fatal("job completed without ever checkpointing despite eviction")
	}
	if status.ExecHost == execHost {
		t.Fatalf("job finished on %s where the owner is active", execHost)
	}
}

func TestPoolStatusAndQueue(t *testing.T) {
	p := fastPool(t, 2)
	if _, err := p.Submit("ws1", "bob", SpinProgram(100)); err != nil {
		t.Fatal(err)
	}
	q, err := p.Queue("ws1")
	if err != nil || len(q) != 1 {
		t.Fatalf("queue = %v err %v", q, err)
	}
	p.Cycle()
	infos := p.Status()
	if len(infos) != 2 {
		t.Fatalf("status = %+v", infos)
	}
	names := p.StationNames()
	if len(names) != 2 || names[0] != "ws0" {
		t.Fatalf("names = %v", names)
	}
	if _, err := p.StationAddr("ws0"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StationAddr("nope"); err == nil {
		t.Fatal("unknown station accepted")
	}
	if p.CoordinatorAddr() == "" {
		t.Fatal("no coordinator address")
	}
}

func TestPoolRemove(t *testing.T) {
	p := fastPool(t, 2)
	jobID, err := p.Submit("ws0", "a", SpinProgram(500_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Remove(jobID)
	if err != nil || !ok {
		t.Fatalf("remove = %v, %v", ok, err)
	}
	st, err := p.Job(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobRemoved {
		t.Fatalf("state = %v", st.State)
	}
}

func TestPoolErrors(t *testing.T) {
	p := fastPool(t, 1)
	if _, err := p.Submit("nope", "a", SpinProgram(1)); err == nil {
		t.Fatal("unknown station accepted")
	}
	if _, err := p.Job("garbage"); err == nil {
		t.Fatal("malformed job id accepted")
	}
	if _, err := p.Job("nope/1"); err == nil {
		t.Fatal("unknown home station accepted")
	}
	if err := p.SetOwnerActive("nope", true); err == nil {
		t.Fatal("unknown station monitor accepted")
	}
	if _, err := p.Queue("nope"); err == nil {
		t.Fatal("unknown station queue accepted")
	}
}

func TestAssembleExported(t *testing.T) {
	prog, err := Assemble("tiny", ".text\nstart:\n HALT 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "tiny" || len(prog.Text) != 1 {
		t.Fatalf("prog = %+v", prog)
	}
	if _, err := Assemble("bad", "FROB\n"); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestSimulateExported(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Days = 3
	cfg.DrainDays = 3
	rep := Simulate(cfg)
	if rep.TotalJobs == 0 || rep.CompletedJobs == 0 {
		t.Fatalf("report = %d/%d jobs", rep.CompletedJobs, rep.TotalJobs)
	}
	if !strings.Contains(rep.String(), "Table 1") {
		t.Fatal("report rendering broken")
	}
}

func TestPoolReservation(t *testing.T) {
	p := fastPool(t, 3)
	until, err := p.Reserve("ws2", "ws1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if until.Before(time.Now()) {
		t.Fatalf("until = %v", until)
	}
	// Visible in status.
	p.Cycle()
	found := false
	for _, s := range p.Status() {
		if s.Name == "ws2" && s.ReservedFor == "ws1" {
			found = true
		}
	}
	if !found {
		t.Fatal("reservation missing from pool table")
	}
	if !p.CancelReservation("ws2") {
		t.Fatal("cancel failed")
	}
}

func TestPoolSubmitWithPriority(t *testing.T) {
	p := fastPool(t, 1)
	// Owner of the single machine is busy so nothing runs yet.
	if err := p.SetOwnerActive("ws0", true); err != nil {
		t.Fatal(err)
	}
	low, err := p.SubmitJob("ws0", "a", SumProgram(100), SubmitOptions{Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := p.SubmitJob("ws0", "a", SumProgram(200), SubmitOptions{Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Queue("ws0")
	if err != nil || len(q) != 2 {
		t.Fatalf("queue = %v err %v", q, err)
	}
	if q[0].ID != low || q[0].Priority != 1 || q[1].Priority != 9 {
		t.Fatalf("queue rows = %+v", q)
	}
	// Free the machine; the high-priority job must run first.
	if err := p.SetOwnerActive("ws0", false); err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(high, 30*time.Second)
	if err != nil || status.State != JobCompleted {
		t.Fatalf("high = %+v err %v", status, err)
	}
	lowStatus, err := p.Job(low)
	if err != nil {
		t.Fatal(err)
	}
	if lowStatus.State == JobCompleted && lowStatus.SubmittedAt.After(status.SubmittedAt) {
		// Both may have completed by now; ordering was asserted at
		// placement time by the schedd tests. Nothing more to check.
		t.Log("both jobs completed")
	}
}

func TestPoolHistory(t *testing.T) {
	p := fastPool(t, 2)
	jobID, err := p.Submit("ws0", "alice", SumProgram(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(jobID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	trail, err := p.History("ws0", jobID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trail) < 3 {
		t.Fatalf("trail = %v", trail)
	}
	if trail[0].Kind != "submit" || trail[len(trail)-1].Kind != "complete" {
		t.Fatalf("trail kinds = %v", trail)
	}
	coordEvents := p.CoordinatorHistory(0)
	sawGrant := false
	for _, e := range coordEvents {
		if e.Kind == "grant" {
			sawGrant = true
		}
	}
	if !sawGrant {
		t.Fatalf("coordinator history lacks the grant: %v", coordEvents)
	}
	if _, err := p.History("nope", "", 0); err == nil {
		t.Fatal("unknown station accepted")
	}
}
