// Command reservation demonstrates the §5.3 reservation system: a
// researcher reserves an execution machine ahead of an experiment. The
// coordinator evicts (by checkpoint) the foreign job running there,
// refuses to grant the machine to anyone else, and the holder's job gets
// it on demand.
package main

import (
	"fmt"
	"log"
	"time"

	"condor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := condor.NewPool(condor.PoolConfig{
		Stations:      4,
		Fast:          true,
		SliceDelay:    time.Millisecond,
		StepsPerSlice: 10_000,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	// ws0 and ws1 are user desks (owners present); ws2 and ws3 idle.
	for _, busy := range []string{"ws0", "ws1"} {
		if err := pool.SetOwnerActive(busy, true); err != nil {
			return err
		}
	}

	// A competitor's long job lands on ws2 or ws3.
	otherID, err := pool.Submit("ws0", "other", condor.SpinProgram(800_000_000))
	if err != nil {
		return err
	}
	var occupied string
	waitFor(func() bool {
		st, err := pool.Job(otherID)
		if err == nil && st.State == condor.JobRunning {
			occupied = st.ExecHost
			return true
		}
		return false
	})
	fmt.Printf("competitor's job %s is running on %s\n", otherID, occupied)

	// The researcher (ws1) reserves that very machine for an hour.
	until, err := pool.Reserve(occupied, "ws1", time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("reserved %s for ws1 until %s\n", occupied, until.Format(time.Kitchen))

	// The coordinator enforces the reservation: the foreign job is
	// checkpointed off.
	waitFor(func() bool {
		st, err := pool.Job(otherID)
		return err == nil && st.State == condor.JobIdle && st.Checkpoints > 0
	})
	fmt.Printf("competitor's job evicted by checkpoint (no work lost)\n")

	// The holder's experiment runs on the reserved machine.
	mine, err := pool.Submit("ws1", "researcher", condor.SumProgram(500_000))
	if err != nil {
		return err
	}
	status, err := pool.Wait(mine, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("researcher's job ran on %s (reserved: %v) → %s\n",
		status.ExecHost, status.ExecHost == occupied, status.State)

	pool.CancelReservation(occupied)
	fmt.Println("reservation released; the pool is open again")
	return nil
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(time.Minute)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}
