// Command fairshare reproduces the Up-Down fairness story of §2.4 at
// demo scale: a heavy user floods the pool with long jobs; a light user
// then submits one small job and — despite every machine being busy —
// gets served promptly because the coordinator preempts one of the heavy
// user's jobs (checkpointing it, not killing it).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"condor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := condor.NewPool(condor.PoolConfig{
		Stations:      5,
		Fast:          true,
		SliceDelay:    time.Millisecond,
		StepsPerSlice: 10_000,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	// ws0 is the heavy user's machine, ws1 the light user's. Their
	// owners are at their desks; ws2–ws4 are idle cycle servers.
	for _, busy := range []string{"ws0", "ws1"} {
		if err := pool.SetOwnerActive(busy, true); err != nil {
			return err
		}
	}

	var heavyJobs []string
	for i := 0; i < 6; i++ {
		id, err := pool.Submit("ws0", "heavy", condor.SpinProgram(500_000_000))
		if err != nil {
			return err
		}
		heavyJobs = append(heavyJobs, id)
	}
	fmt.Printf("heavy user queued %d long jobs\n", len(heavyJobs))

	// Let the heavy user occupy all three idle machines.
	waitFor(pool, func() bool { return running(pool, heavyJobs) >= 3 })
	fmt.Println("heavy user now holds every idle machine")
	printIndexes(pool)

	lightID, err := pool.Submit("ws1", "light", condor.SumProgram(200_000))
	if err != nil {
		return err
	}
	fmt.Println("light user submits", lightID)
	startWait := time.Now()
	status, err := pool.Wait(lightID, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("light job finished in %v: state=%s out=%s\n",
		time.Since(startWait).Round(time.Millisecond), status.State,
		strings.TrimSpace(status.Stdout))
	printIndexes(pool)

	// The preempted heavy job was checkpointed, not lost.
	requeued := 0
	for _, id := range heavyJobs {
		st, err := pool.Job(id)
		if err != nil {
			return err
		}
		if st.Checkpoints > 0 {
			requeued++
		}
	}
	fmt.Printf("heavy jobs checkpointed by the preemption: %d (no work lost)\n", requeued)
	return nil
}

func running(pool *condor.Pool, ids []string) int {
	n := 0
	for _, id := range ids {
		if st, err := pool.Job(id); err == nil && st.State == condor.JobRunning {
			n++
		}
	}
	return n
}

func waitFor(pool *condor.Pool, cond func() bool) {
	deadline := time.Now().Add(2 * time.Minute)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

func printIndexes(pool *condor.Pool) {
	fmt.Println("  schedule indexes (lower = higher priority):")
	for _, s := range pool.Status() {
		fmt.Printf("    %-4s index=%6.1f state=%s\n", s.Name, s.ScheduleIndex, s.State)
	}
}
