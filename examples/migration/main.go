// Command migration demonstrates the checkpointing story of §2.3: a
// long-running job is chased around the pool as workstation owners
// return, surviving every eviction with its state intact — including the
// RNG of a Monte-Carlo computation, so the final answer equals the
// uninterrupted one.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"condor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := condor.NewPool(condor.PoolConfig{
		Stations: 3,
		Fast:     true,
		// Throttle execution so owners can interrupt the job mid-flight.
		SliceDelay:    500 * time.Microsecond,
		StepsPerSlice: 20_000,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	const samples = 2_000_000
	jobID, err := pool.Submit("ws0", "alice", condor.MonteCarloPiProgram(samples))
	if err != nil {
		return err
	}
	fmt.Println("submitted Monte-Carlo job", jobID)

	evictions := 0
	lastHost := ""
	deadline := time.Now().Add(3 * time.Minute)
	for {
		status, err := pool.Job(jobID)
		if err != nil {
			return err
		}
		if status.State == condor.JobCompleted {
			fmt.Printf("\ncompleted after %d checkpoints and %d placements\n",
				status.Checkpoints, status.Placements)
			fmt.Println("π·10000 ≈", strings.TrimSpace(status.Stdout))
			if evictions == 0 {
				fmt.Println("(finished before any eviction — rerun for more drama)")
			}
			return nil
		}
		if status.State == condor.JobRunning && status.ExecHost != lastHost {
			lastHost = status.ExecHost
			fmt.Printf("running on %s (cpu so far: %d steps)\n", lastHost, status.CPUSteps)
			// The owner of that machine comes back; Condor must suspend,
			// wait out the grace period, checkpoint, and move the job.
			if evictions < 3 {
				evictions++
				go func(host string) {
					time.Sleep(30 * time.Millisecond)
					fmt.Printf("owner returns to %s — evicting the job\n", host)
					_ = pool.SetOwnerActive(host, true)
					time.Sleep(300 * time.Millisecond)
					_ = pool.SetOwnerActive(host, false)
				}(lastHost)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job stuck in state %v", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
