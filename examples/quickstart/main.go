// Command quickstart spins up an in-process Condor pool of four
// workstations, submits three background jobs from one of them, and
// waits for the coordinator to hunt down idle machines and run them.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"condor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := condor.NewPool(condor.PoolConfig{Stations: 4, Fast: true})
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Println("pool up:", strings.Join(pool.StationNames(), ", "))
	fmt.Println("coordinator at", pool.CoordinatorAddr())

	// Three background jobs, the kind the paper's users ran: long
	// compute loops with a printed result.
	jobs := map[string]*condor.Program{
		"sum":    condor.SumProgram(2_000_000),
		"primes": condor.PrimeCountProgram(20_000),
		"pi":     condor.MonteCarloPiProgram(500_000),
	}
	ids := make(map[string]string, len(jobs))
	for name, prog := range jobs {
		id, err := pool.Submit("ws0", "alice", prog)
		if err != nil {
			return fmt.Errorf("submit %s: %w", name, err)
		}
		ids[name] = id
		fmt.Printf("submitted %-7s as %s\n", name, id)
	}

	for name, id := range ids {
		status, err := pool.Wait(id, 2*time.Minute)
		if err != nil {
			return err
		}
		fmt.Printf("%-7s state=%-9s exec=%-4s cpu=%-10d out=%s\n",
			name, status.State, status.ExecHost, status.CPUSteps,
			strings.TrimSpace(status.Stdout))
	}

	fmt.Println("\npool table:")
	for _, s := range pool.Status() {
		fmt.Printf("  %-4s state=%-9s waiting=%d index=%.1f\n",
			s.Name, s.State, s.WaitingJobs, s.ScheduleIndex)
	}
	return nil
}
