// Command monthsim reproduces the paper's whole evaluation section: it
// simulates the 23-workstation pool for one month under the Table 1
// workload and prints Table 1 and Figures 2–9. Flags allow parameter
// exploration (pool size, window length, policies).
package main

import (
	"flag"
	"fmt"
	"log"

	"condor"
)

func main() {
	var (
		machines = flag.Int("machines", 23, "number of workstations")
		days     = flag.Int("days", 30, "observation window in days")
		seed     = flag.Int64("seed", 1987, "random seed")
	)
	flag.Parse()
	if err := run(*machines, *days, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(machines, days int, seed int64) error {
	cfg := condor.DefaultSimConfig()
	cfg.Machines = machines
	cfg.Days = days
	cfg.Seed = seed
	rep := condor.Simulate(cfg)
	fmt.Print(rep.String())
	return nil
}
