// Command paramsweep runs the workload the paper's introduction
// motivates: a researcher submits many instances of the same simulation
// program with different parameters. It shows (a) the pool executing the
// sweep across idle machines and (b) the §4 shared-text optimization:
// all checkpoints of the sweep share one stored text segment.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"condor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := condor.NewPool(condor.PoolConfig{Stations: 6, Fast: true})
	if err != nil {
		return err
	}
	defer pool.Close()

	// Twenty parameter points of one "simulation" binary. All share a
	// text segment; only the data parameter differs.
	params := make([]int64, 0, 20)
	for n := int64(100_000); n <= 2_000_000; n += 100_000 {
		params = append(params, n)
	}
	ids := make(map[string]int64, len(params))
	for _, n := range params {
		id, err := pool.Submit("ws0", "researcher", condor.SumProgram(n))
		if err != nil {
			return err
		}
		ids[id] = n
	}
	fmt.Printf("submitted %d sweep points from ws0\n", len(params))

	usage, err := pool.StoreUsage("ws0")
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint store: %d checkpoints, %d distinct text segment(s), %d bytes\n",
		usage.Checkpoints, usage.SharedTexts, usage.Bytes)
	if usage.SharedTexts != 1 {
		return fmt.Errorf("expected one shared text segment, store has %d", usage.SharedTexts)
	}

	type result struct {
		param int64
		sum   string
		host  string
	}
	results := make([]result, 0, len(ids))
	for id, n := range ids {
		status, err := pool.Wait(id, 3*time.Minute)
		if err != nil {
			return err
		}
		if status.State != condor.JobCompleted {
			return fmt.Errorf("job %s ended %v (%s)", id, status.State, status.FaultMsg)
		}
		results = append(results, result{
			param: n,
			sum:   strings.TrimSpace(status.Stdout),
			host:  status.ExecHost,
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].param < results[j].param })
	hosts := map[string]int{}
	fmt.Println("\n  n         sum(1..n)          ran on")
	for _, r := range results {
		fmt.Printf("  %-9d %-18s %s\n", r.param, r.sum, r.host)
		hosts[r.host]++
	}
	fmt.Printf("\nsweep spread over %d machines\n", len(hosts))
	return nil
}
