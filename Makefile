# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all verify build lint vet test race chaos bench bench-baseline fuzz sim examples clean

all: verify

# Full pre-merge gate: compile, lint, plain tests, the race detector,
# and the crash-recovery chaos suite.
verify: build vet test race chaos

build:
	$(GO) build ./...

# Static gate: go vet plus a gofmt diff check that fails on any
# unformatted file (gofmt -l lists but exits 0, so test the output).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-recovery and fault-injection suite: journal torn-tail fuzz,
# coordinator replay fuzz, crash/restart recovery, and the end-to-end
# pool chaos run (the long e2e half is skipped under -short).
chaos:
	$(GO) test -race -count=2 -run 'Crash|Chaos|Replay|Torn|Truncat|Recovery' \
		./internal/journal/... ./internal/coordinator/... ./internal/schedd/...

# Regenerate every table and figure of the paper (tee'd outputs land in
# test_output.txt / bench_output.txt).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Re-measure the committed benchmark baseline (BENCH_baseline.json):
# the telemetry hot path, wire round trips, journal appends, the
# coordinator cycle at 100 and 1000 stations, and the trace hot paths
# (span start/finish and the sampled-out fast path, which must stay at
# 0 allocs/op).
bench-baseline:
	$(GO) test -run NONE -bench \
		'BenchmarkTelemetryObserve$$|BenchmarkTelemetryCounter$$|BenchmarkFrameRoundTrip$$|BenchmarkJournalAppend|BenchmarkCycle100$$|BenchmarkCycle1000$$|BenchmarkTraceSpan$$|BenchmarkTraceSampledOut$$|BenchmarkTraceparentParse$$' \
		-benchmem ./internal/telemetry/ ./internal/wire/ ./internal/journal/ ./internal/coordinator/ ./internal/trace/ \
		| $(GO) run ./cmd/bench2json > BENCH_baseline.json
	@cat BENCH_baseline.json

# Short fuzz budget over the wire frame decoder: hostile length
# prefixes, truncated frames, and garbage must never panic or
# over-allocate. CI runs this on every push.
fuzz:
	$(GO) test -run NONE -fuzz FuzzFrameDecode -fuzztime 20s ./internal/wire/

sim:
	$(GO) run ./cmd/condor-sim

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/fairshare
	$(GO) run ./examples/paramsweep
	$(GO) run ./examples/reservation

clean:
	rm -f test_output.txt bench_output.txt
