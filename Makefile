# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all verify build lint vet test race chaos conformance smoke bench bench-baseline bench-drift fuzz sim examples clean

# The benchmarks tracked in BENCH_baseline.json: telemetry and
# accounting hot paths (the per-syscall meter must stay 0 allocs/op,
# and so must an event-bus publish with no subscribers), wire round
# trips, journal appends, coordinator cycles, tracing, and the decision
# audit ring (record is lock-free and the nil-builder path 0 allocs/op).
BASELINE_BENCH = 'BenchmarkTelemetryObserve$$|BenchmarkTelemetryCounter$$|BenchmarkFrameRoundTrip$$|BenchmarkJournalAppend|BenchmarkCycle100$$|BenchmarkCycle1000$$|BenchmarkPipelineCycle100$$|BenchmarkPipelineCycle1000$$|BenchmarkPipelineCycleAudited1000$$|BenchmarkTraceSpan$$|BenchmarkTraceSampledOut$$|BenchmarkTraceparentParse$$|BenchmarkAccountingSyscall$$|BenchmarkAccountingSyscallParallel$$|BenchmarkLedgerSnapshot$$|BenchmarkHealthObserve$$|BenchmarkBusPublish$$|BenchmarkBusPublishSubscribed$$|BenchmarkDecisionRecord$$|BenchmarkBuilderNil$$'
BASELINE_PKGS = ./internal/telemetry/ ./internal/wire/ ./internal/journal/ ./internal/coordinator/ ./internal/trace/ ./internal/accounting/ ./internal/decision/

all: verify

# Full pre-merge gate: compile, lint, plain tests, the race detector,
# the crash-recovery chaos suite, the scheduling-policy conformance
# suite, and the headless dashboard smoke.
verify: build vet test race chaos conformance smoke

build:
	$(GO) build ./...

# Static gate: go vet plus a gofmt diff check that fails on any
# unformatted file (gofmt -l lists but exits 0, so test the output).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-recovery and fault-injection suite: journal torn-tail fuzz,
# coordinator replay fuzz, crash/restart recovery, the graded-health
# state machine (quarantine, flap, byzantine), and the cluster-level
# chaos harness (partitions, slow links, scenario runner). Set
# CONDOR_CHAOS_LONG=1 for the nightly multi-seed soak.
chaos:
	$(GO) test -race -count=2 -run 'Crash|Chaos|Replay|Torn|Truncat|Recovery|Scenario|Partition|Quarantine|Flap|Byzantine' \
		./internal/journal/... ./internal/coordinator/... ./internal/schedd/... ./internal/chaos/...

# Scheduling-policy gate: every registered policy must satisfy the
# shared invariant harness, and the pipelined Up-Down must reproduce
# the seed algorithm byte-for-byte on the committed golden fixtures.
conformance:
	$(GO) test -count=1 -run 'TestConformance|TestGoldenEquivalence' ./internal/policy/

# Headless dashboard smoke: boot a live pool plus condor-web in one
# process and walk the whole surface — embedded page, JSON API, 50
# concurrent SSE subscribers observing identical event sequences,
# alerts, /metrics, /healthz — under the race detector.
smoke:
	$(GO) test -race -count=1 -run 'TestDashboardSmoke|TestSSEFanout' .

# Regenerate every table and figure of the paper (tee'd outputs land in
# test_output.txt / bench_output.txt).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Re-measure the committed benchmark baseline (BENCH_baseline.json).
bench-baseline:
	$(GO) test -run NONE -bench $(BASELINE_BENCH) -benchmem $(BASELINE_PKGS) \
		| $(GO) run ./cmd/bench2json > BENCH_baseline.json
	@cat BENCH_baseline.json

# Gating drift check: re-run the baseline benchmarks and compare
# against the committed JSON. Timing drift beyond 30% or a new
# allocation on a 0 allocs/op path fails the exit code (and the CI
# job). Benchmarks too noisy for shared runners are excused by name in
# BENCH_allowlist.txt — timing only; allocation regressions always fail.
bench-drift:
	$(GO) test -run NONE -bench $(BASELINE_BENCH) -benchmem $(BASELINE_PKGS) \
		| $(GO) run ./cmd/bench2json -compare BENCH_baseline.json -tolerance 0.3 -allowlist BENCH_allowlist.txt

# Short fuzz budget over the wire frame decoder: hostile length
# prefixes, truncated frames, and garbage must never panic or
# over-allocate. CI runs this on every push.
fuzz:
	$(GO) test -run NONE -fuzz FuzzFrameDecode -fuzztime 20s ./internal/wire/

sim:
	$(GO) run ./cmd/condor-sim

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/fairshare
	$(GO) run ./examples/paramsweep
	$(GO) run ./examples/reservation

clean:
	rm -f test_output.txt bench_output.txt
