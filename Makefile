# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all verify build vet test race bench sim examples clean

all: verify

# Full pre-merge gate: compile, lint, plain tests, and the race detector.
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate every table and figure of the paper (tee'd outputs land in
# test_output.txt / bench_output.txt).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

sim:
	$(GO) run ./cmd/condor-sim

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/fairshare
	$(GO) run ./examples/paramsweep
	$(GO) run ./examples/reservation

clean:
	rm -f test_output.txt bench_output.txt
