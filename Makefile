# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all verify build vet test race chaos bench bench-baseline fuzz sim examples clean

all: verify

# Full pre-merge gate: compile, lint, plain tests, the race detector,
# and the crash-recovery chaos suite.
verify: build vet test race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-recovery and fault-injection suite: journal torn-tail fuzz,
# coordinator replay fuzz, crash/restart recovery, and the end-to-end
# pool chaos run (the long e2e half is skipped under -short).
chaos:
	$(GO) test -race -count=2 -run 'Crash|Chaos|Replay|Torn|Truncat|Recovery' \
		./internal/journal/... ./internal/coordinator/... ./internal/schedd/...

# Regenerate every table and figure of the paper (tee'd outputs land in
# test_output.txt / bench_output.txt).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Re-measure the committed benchmark baseline (BENCH_baseline.json):
# the telemetry hot path, wire round trips, journal appends, and the
# coordinator cycle at 100 and 1000 stations.
bench-baseline:
	$(GO) test -run NONE -bench \
		'BenchmarkTelemetryObserve$$|BenchmarkTelemetryCounter$$|BenchmarkFrameRoundTrip$$|BenchmarkJournalAppend|BenchmarkCycle100$$|BenchmarkCycle1000$$' \
		-benchmem ./internal/telemetry/ ./internal/wire/ ./internal/journal/ ./internal/coordinator/ \
		| $(GO) run ./cmd/bench2json > BENCH_baseline.json
	@cat BENCH_baseline.json

# Short fuzz budget over the wire frame decoder: hostile length
# prefixes, truncated frames, and garbage must never panic or
# over-allocate. CI runs this on every push.
fuzz:
	$(GO) test -run NONE -fuzz FuzzFrameDecode -fuzztime 20s ./internal/wire/

sim:
	$(GO) run ./cmd/condor-sim

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/fairshare
	$(GO) run ./examples/paramsweep
	$(GO) run ./examples/reservation

clean:
	rm -f test_output.txt bench_output.txt
