package condor

import (
	"fmt"

	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/proto"
	"condor/internal/schedd"
	"condor/internal/simulation"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the public names.
type (
	// Program is an executable for the checkpointable VM.
	Program = cvm.Program
	// JobStatus describes a queued, running or finished job.
	JobStatus = proto.JobStatus
	// JobState is a job's lifecycle state.
	JobState = proto.JobState
	// StationInfo is one row of the coordinator's pool table.
	StationInfo = proto.StationInfo
	// Report carries the full reproduced evaluation (Table 1, Figures
	// 2–9 and the §3 scalars).
	Report = simulation.Report
	// SimConfig parameterizes a Simulate run.
	SimConfig = simulation.Config
	// StoreUsage summarizes a checkpoint store's disk footprint.
	StoreUsage = ckpt.Usage
	// SubmitOptions tunes one submission (priority, stack size).
	SubmitOptions = schedd.SubmitOptions
	// Event is one entry of a daemon's event history.
	Event = eventlog.Event
)

// Job lifecycle states.
const (
	JobIdle      = proto.JobIdle
	JobPlacing   = proto.JobPlacing
	JobRunning   = proto.JobRunning
	JobSuspended = proto.JobSuspendedState
	JobCompleted = proto.JobCompleted
	JobFaulted   = proto.JobFaulted
	JobRemoved   = proto.JobRemoved
)

// Assemble compiles VM assembler source into a Program.
func Assemble(name, source string) (*Program, error) {
	return cvm.Assemble(name, source)
}

// Sample program constructors, re-exported for examples and quick use.
var (
	// SumProgram sums 1..n and prints the result.
	SumProgram = cvm.SumProgram
	// PrimeCountProgram counts primes below n and prints the count.
	PrimeCountProgram = cvm.PrimeCountProgram
	// MonteCarloPiProgram estimates π·10000 from n samples using the
	// checkpointed RNG.
	MonteCarloPiProgram = cvm.MonteCarloPiProgram
	// FileCopyProgram copies a submit-machine file through the shadow.
	FileCopyProgram = cvm.FileCopyProgram
	// SpinProgram burns a controllable number of instructions.
	SpinProgram = cvm.SpinProgram
	// ReportProgram computes a sum and appends it to a result file.
	ReportProgram = cvm.ReportProgram
	// MatMulProgram multiplies two n×n matrices and prints the trace.
	MatMulProgram = cvm.MatMulProgram
	// CollatzProgram finds the longest 3n+1 trajectory below n.
	CollatzProgram = cvm.CollatzProgram
	// RandomSearchProgram random-searches an integer function using the
	// checkpointed RNG.
	RandomSearchProgram = cvm.RandomSearchProgram
	// WordCountProgram counts words of a submit-machine file via the
	// shadow.
	WordCountProgram = cvm.WordCountProgram
)

// RunLocal executes a program on this machine against an in-memory
// filesystem — the "just run it on my own workstation" baseline the
// paper's leverage metric compares remote execution against. It returns
// the program's stdout. maxSteps bounds execution (0 = 2 billion).
func RunLocal(prog *Program, maxSteps uint64) (string, error) {
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	host := cvm.NewMemHost()
	vm, err := cvm.New(prog, host, cvm.Config{})
	if err != nil {
		return "", err
	}
	status, err := vm.Run(maxSteps)
	switch status {
	case cvm.StatusHalted:
		if code := vm.ExitCode(); code != 0 {
			return host.Stdout(), fmt.Errorf("condor: program exited with code %d", code)
		}
		return host.Stdout(), nil
	case cvm.StatusFaulted:
		return host.Stdout(), err
	default:
		return host.Stdout(), fmt.Errorf("condor: step budget exhausted after %d instructions", vm.Steps())
	}
}

// Simulate runs the month-scale evaluation and returns its report.
func Simulate(cfg SimConfig) *Report {
	return simulation.Run(cfg)
}

// DefaultSimConfig returns the paper's operating point: 23 workstations,
// 30 days, the Table 1 workload, 2-minute polls, Up-Down fairness and
// the §3.1 cost model.
func DefaultSimConfig() SimConfig {
	return simulation.DefaultConfig()
}
