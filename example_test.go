package condor_test

import (
	"fmt"
	"strings"
	"time"

	"condor"
)

// ExampleNewPool runs a tiny in-process cluster: one coordinator, three
// stations, one background job hunted onto an idle machine.
func ExampleNewPool() {
	pool, err := condor.NewPool(condor.PoolConfig{Stations: 3, Fast: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer pool.Close()

	jobID, err := pool.Submit("ws0", "alice", condor.SumProgram(100))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	status, err := pool.Wait(jobID, time.Minute)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s %s %s\n", jobID, status.State, strings.TrimSpace(status.Stdout))
	// Output: ws0/1 completed 5050
}

// ExampleRunLocal is the local-execution baseline: no pool, no shadow.
func ExampleRunLocal() {
	out, err := condor.RunLocal(condor.PrimeCountProgram(100), 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out)
	// Output: 25
}

// ExampleAssemble compiles a program for the checkpointable VM from
// assembler source.
func ExampleAssemble() {
	prog, err := condor.Assemble("greeting", `
.data
msg: .str "hunting idle workstations\n"
.text
start:
    MOVI r0, msg
    MOVI r1, 26
    SYS  print
    HALT 0
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := condor.RunLocal(prog, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out)
	// Output: hunting idle workstations
}

// ExampleSimulate reproduces a (shortened) slice of the paper's
// evaluation deterministically from a seed.
func ExampleSimulate() {
	cfg := condor.DefaultSimConfig()
	cfg.Days = 3
	cfg.DrainDays = 5
	cfg.Seed = 42
	rep := condor.Simulate(cfg)
	fmt.Println("all jobs completed:", rep.CompletedJobs == rep.TotalJobs)
	fmt.Println("light users waited less:", rep.MeanWaitRatioLight < rep.MeanWaitRatioAll)
	// Output:
	// all jobs completed: true
	// light users waited less: true
}
