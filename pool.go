package condor

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"condor/internal/ckpt"
	"condor/internal/coordinator"
	"condor/internal/decision"
	"condor/internal/machine"
	"condor/internal/policy"
	"condor/internal/ru"
	"condor/internal/schedd"
)

// PoolConfig parameterizes an in-process cluster.
type PoolConfig struct {
	// Stations is the number of workstations (default 4).
	Stations int
	// StationPrefix names stations "<prefix>0".."<prefix>N-1" (default
	// "ws").
	StationPrefix string
	// Fast shrinks every interval (polls, scans, grace, pacing) to
	// milliseconds so demos and tests converge quickly. Without Fast the
	// paper's production intervals apply (2-minute polls, 30-second
	// scans, 5-minute grace).
	Fast bool

	// PollInterval overrides the coordinator poll period.
	PollInterval time.Duration
	// ScanInterval overrides the owner-activity scan period.
	ScanInterval time.Duration
	// SuspendGrace overrides the §4 grace period.
	SuspendGrace time.Duration
	// PlacementPacing overrides the per-station placement gap.
	PlacementPacing time.Duration
	// PeriodicCheckpoint enables §4 periodic checkpointing.
	PeriodicCheckpoint time.Duration
	// KillImmediately selects the §4 kill policy instead of
	// suspend-then-vacate.
	KillImmediately bool
	// DiskBytes caps each station's checkpoint store (0 = unlimited).
	DiskBytes int64
	// SliceDelay throttles foreign-job execution (useful in demos that
	// want time to interact with a running job).
	SliceDelay time.Duration
	// StepsPerSlice bounds instructions between control checks.
	StepsPerSlice uint64
	// Policy tunes the coordinator's allocation pipeline (predicates,
	// grant caps, preemption). The zero value means policy.DefaultConfig.
	Policy policy.Config
	// Decisions overrides the decision-audit ring the coordinator
	// records each cycle's explain trace into. Nil means the
	// process-wide decision.Default ring, which the /decisions endpoint
	// on a telemetry listener serves.
	Decisions *decision.Recorder
}

func (c *PoolConfig) sanitize() {
	if c.Stations <= 0 {
		c.Stations = 4
	}
	if c.StationPrefix == "" {
		c.StationPrefix = "ws"
	}
	if c.Fast {
		def := func(d *time.Duration, v time.Duration) {
			if *d == 0 {
				*d = v
			}
		}
		def(&c.PollInterval, 10*time.Millisecond)
		def(&c.ScanInterval, 5*time.Millisecond)
		def(&c.SuspendGrace, 50*time.Millisecond)
		// PlacementPacing stays 0 (off) in fast mode unless set.
	}
}

// Pool is an in-process Condor cluster: one coordinator and N stations
// wired over real TCP on localhost.
type Pool struct {
	coord     *coordinator.Coordinator
	decisions *decision.Recorder
	stations  map[string]*schedd.Station
	monitors  map[string]*machine.ScriptedMonitor
	order     []string
}

// NewPool builds and starts a cluster.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg.sanitize()
	coord, err := coordinator.New(coordinator.Config{
		PollInterval: cfg.PollInterval,
		Policy:       cfg.Policy,
		Decisions:    cfg.Decisions,
	})
	if err != nil {
		return nil, err
	}
	decisions := cfg.Decisions
	if decisions == nil {
		decisions = decision.Default
	}
	p := &Pool{
		coord:     coord,
		decisions: decisions,
		stations:  make(map[string]*schedd.Station, cfg.Stations),
		monitors:  make(map[string]*machine.ScriptedMonitor, cfg.Stations),
	}
	policy := ru.VacateSuspendFirst
	if cfg.KillImmediately {
		policy = ru.VacateKillImmediately
	}
	for i := 0; i < cfg.Stations; i++ {
		name := fmt.Sprintf("%s%d", cfg.StationPrefix, i)
		mon := machine.NewScriptedMonitor(false)
		var store ckpt.Store
		if cfg.DiskBytes > 0 {
			store = ckpt.NewMemStore(cfg.DiskBytes, true)
		}
		st, err := schedd.New(schedd.Config{
			Name:    name,
			Monitor: mon,
			Store:   store,
			Starter: ru.StarterConfig{
				ScanInterval:       cfg.ScanInterval,
				SuspendGrace:       cfg.SuspendGrace,
				Policy:             policy,
				PeriodicCheckpoint: cfg.PeriodicCheckpoint,
				SliceDelay:         cfg.SliceDelay,
				StepsPerSlice:      cfg.StepsPerSlice,
			},
			PlacementPacing: cfg.PlacementPacing,
		})
		if err != nil {
			p.Close()
			return nil, err
		}
		if err := st.Register(coord.Addr()); err != nil {
			st.Close()
			p.Close()
			return nil, err
		}
		p.stations[name] = st
		p.monitors[name] = mon
		p.order = append(p.order, name)
	}
	return p, nil
}

// Close shuts the whole cluster down.
func (p *Pool) Close() {
	for _, st := range p.stations {
		st.Close()
	}
	if p.coord != nil {
		p.coord.Close()
	}
}

// StationNames lists the stations in creation order.
func (p *Pool) StationNames() []string {
	return append([]string(nil), p.order...)
}

// CoordinatorAddr returns the coordinator's TCP address (for external
// condor-status / condor-submit tools).
func (p *Pool) CoordinatorAddr() string { return p.coord.Addr() }

// StationAddr returns a station's TCP address.
func (p *Pool) StationAddr(name string) (string, error) {
	st, ok := p.stations[name]
	if !ok {
		return "", fmt.Errorf("condor: unknown station %q", name)
	}
	return st.Addr(), nil
}

// Submit queues a program on the named station for the given owner.
func (p *Pool) Submit(station, owner string, prog *Program) (string, error) {
	return p.SubmitJob(station, owner, prog, SubmitOptions{})
}

// SubmitJob is Submit with queue options (priority, stack size).
func (p *Pool) SubmitJob(station, owner string, prog *Program, opts SubmitOptions) (string, error) {
	st, ok := p.stations[station]
	if !ok {
		return "", fmt.Errorf("condor: unknown station %q", station)
	}
	return st.SubmitJob(owner, prog, opts)
}

// Reserve grants holder exclusive remote use of station for d (§5.3).
func (p *Pool) Reserve(station, holder string, d time.Duration) (time.Time, error) {
	return p.coord.Reserve(station, holder, d)
}

// CancelReservation releases a station's reservation.
func (p *Pool) CancelReservation(station string) bool {
	return p.coord.CancelReservation(station)
}

// Job returns a job's status; the job id encodes its home station.
func (p *Pool) Job(jobID string) (JobStatus, error) {
	st, err := p.home(jobID)
	if err != nil {
		return JobStatus{}, err
	}
	return st.Job(jobID)
}

// Wait blocks until the job reaches a terminal state or timeout elapses
// (returning the current status in that case).
func (p *Pool) Wait(jobID string, timeout time.Duration) (JobStatus, error) {
	st, err := p.home(jobID)
	if err != nil {
		return JobStatus{}, err
	}
	return st.Wait(jobID, timeout)
}

// Remove deletes a job, vacating it if it is running.
func (p *Pool) Remove(jobID string) (bool, error) {
	st, err := p.home(jobID)
	if err != nil {
		return false, err
	}
	return st.Remove(jobID), nil
}

// Queue lists a station's jobs.
func (p *Pool) Queue(station string) ([]JobStatus, error) {
	st, ok := p.stations[station]
	if !ok {
		return nil, fmt.Errorf("condor: unknown station %q", station)
	}
	return st.Queue(), nil
}

// SetOwnerActive scripts a workstation owner's presence. Setting a
// station active evicts (suspends, then vacates) any foreign job there.
func (p *Pool) SetOwnerActive(station string, active bool) error {
	mon, ok := p.monitors[station]
	if !ok {
		return fmt.Errorf("condor: unknown station %q", station)
	}
	mon.SetActive(active)
	return nil
}

// Status returns the coordinator's pool table.
func (p *Pool) Status() []StationInfo { return p.coord.Stations() }

// StoreUsage reports a station's checkpoint-store footprint — the §4
// disk-space story, including shared text segments.
func (p *Pool) StoreUsage(station string) (StoreUsage, error) {
	st, ok := p.stations[station]
	if !ok {
		return StoreUsage{}, fmt.Errorf("condor: unknown station %q", station)
	}
	return st.Store().Usage(), nil
}

// History returns a station's recent event log (most recent last); a
// non-empty jobID filters to that job's lifecycle trail.
func (p *Pool) History(station, jobID string, limit int) ([]Event, error) {
	st, ok := p.stations[station]
	if !ok {
		return nil, fmt.Errorf("condor: unknown station %q", station)
	}
	if jobID != "" {
		return st.Events().ForJob(jobID), nil
	}
	return st.Events().Recent(limit), nil
}

// CoordinatorHistory returns the coordinator's decision log (grants,
// preemptions, reservations, registrations).
func (p *Pool) CoordinatorHistory(limit int) []Event {
	return p.coord.Events().Recent(limit)
}

// Cycle forces one coordinator poll-decide-act cycle immediately,
// instead of waiting for the next tick. Deterministic demos use it.
func (p *Pool) Cycle() { p.coord.Cycle() }

// Decisions pages through the coordinator's decision-audit ring — the
// per-cycle explain traces behind /decisions and condor-explain. The
// filters compose: job matches cycles whose grants or preempts name the
// job, station matches any role (requester, rejected candidate, exec,
// victim), cycle selects one cycle (>0 absolute, <0 from the newest),
// and last keeps only the most recent N cycles.
func (p *Pool) Decisions(job, station string, cycle int64, last int) decision.Page {
	return p.decisions.PageFor(job, station, cycle, last)
}

func (p *Pool) home(jobID string) (*schedd.Station, error) {
	idx := strings.LastIndex(jobID, "/")
	if idx <= 0 {
		return nil, errors.New("condor: malformed job id")
	}
	st, ok := p.stations[jobID[:idx]]
	if !ok {
		return nil, fmt.Errorf("condor: unknown home station in job id %q", jobID)
	}
	return st, nil
}
