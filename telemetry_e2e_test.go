package condor

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"condor/internal/telemetry"
)

// TestTelemetryEndToEnd boots a live pool (coordinator + stations over
// real TCP), runs a job through it, serves the process-wide registry
// over HTTP the way condor-coordinator -http does, scrapes /metrics,
// and asserts the key series are present, parseable, and moving: RPC
// latency histograms from the wire layer, coordinator cycle duration,
// and the shadow syscall round-trip histogram.
func TestTelemetryEndToEnd(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := NewPool(PoolConfig{Stations: 2, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	jobID, err := p.Submit("ws0", "alice", SumProgram(10_000))
	if err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(jobID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobCompleted {
		t.Fatalf("job state = %v, want completed", status.State)
	}

	body := scrapeMetrics(t, srv.Addr())

	// The RPC latency histogram must expose the full bucket/sum/count
	// triplet and have observed the pool's traffic.
	for _, want := range []string{
		"# TYPE condor_wire_rpc_latency_seconds histogram",
		`condor_wire_rpc_latency_seconds_bucket{le="+Inf"}`,
		"condor_wire_rpc_latency_seconds_sum",
		"condor_wire_rpc_latency_seconds_count",
		"# TYPE condor_coordinator_cycle_seconds histogram",
		"condor_coordinator_cycle_seconds_count",
		"# TYPE condor_ru_shadow_syscall_seconds histogram",
		"# TYPE condor_coordinator_stations gauge",
		"# TYPE condor_schedd_job_transitions_total counter",
		`condor_schedd_job_transitions_total{state="completed"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", body)
		t.FailNow()
	}

	if v := seriesValue(t, body, "condor_wire_rpc_latency_seconds_count"); v == 0 {
		t.Error("condor_wire_rpc_latency_seconds_count = 0, want RPC traffic recorded")
	}
	if v := seriesValue(t, body, "condor_coordinator_cycle_seconds_count"); v == 0 {
		t.Error("condor_coordinator_cycle_seconds_count = 0, want cycles recorded")
	}
	// SumProgram prints its result, so at least one guest syscall rode
	// the shadow connection.
	if v := seriesValue(t, body, "condor_ru_shadow_syscall_seconds_count"); v == 0 {
		t.Error("condor_ru_shadow_syscall_seconds_count = 0, want shadow syscalls recorded")
	}

	// /healthz must answer while the pool is live.
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %s", resp.Status)
	}

	// pprof must be mounted on the same listener.
	resp2, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %s", resp2.Status)
	}
}

func scrapeMetrics(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// seriesValue finds an unlabeled series line and parses its value,
// proving the exposition is machine-readable, not just grep-matchable.
func seriesValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
		if err != nil {
			t.Fatalf("series %s has unparseable value %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("series %s not found", name)
	return 0
}
