module condor

go 1.22
