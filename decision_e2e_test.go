package condor

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"condor/internal/decision"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/telemetry"
	"condor/internal/wire"
)

// TestDecisionAuditEndToEnd is the "why isn't my job running" story over
// a live pool: every station is too disk-short for the policy's
// min-disk predicate, a submitted job therefore starves, and the
// decision audit must say exactly why — over the wire the way
// condor-explain reads it, over HTTP the way the dashboard reads it,
// and in agreement with the per-predicate deny counters on /metrics.
func TestDecisionAuditEndToEnd(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Each station's checkpoint store holds 4 KiB; the policy demands a
	// mebibyte free. The candidate phase rejects every machine, every
	// cycle, with the min-disk predicate.
	const minDisk = 1 << 20
	p, err := NewPool(PoolConfig{
		Stations:      3,
		StationPrefix: "dryws",
		DiskBytes:     4096,
		Policy:        policy.Config{MinDiskBytes: minDisk},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	jobID, err := p.Submit("dryws0", "alice", SumProgram(1000))
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot both surfaces before driving cycles, so the assertions
	// below are deltas — immune to audits and denials other tests left
	// in the process-wide ring and registry.
	before := p.Decisions("", "dryws0", 0, 0)
	var sinceCycle uint64
	for _, c := range before.Cycles {
		if c.Cycle > sinceCycle {
			sinceCycle = c.Cycle
		}
	}
	denied0 := deniedCounter(t, srv.Addr())

	const cycles = 5
	for i := 0; i < cycles; i++ {
		p.Cycle()
	}

	status, err := p.Job(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobIdle {
		t.Fatalf("job state = %v, want still waiting (every station is disk-short)", status.State)
	}

	// The coordinator's ring, filtered to our pool's stations.
	page := p.Decisions("", "dryws0", 0, 0)
	fresh := freshCycles(page.Cycles, sinceCycle)
	if len(fresh) != cycles {
		t.Fatalf("audited %d fresh cycles, want %d", len(fresh), cycles)
	}

	// Every fresh cycle must carry a candidate-phase (requester-blind)
	// min-disk rejection for every station, with the threshold and
	// observed sides of the failed comparison spelled out.
	rejections := 0
	for _, c := range fresh {
		perCycle := 0
		for _, r := range c.Rejections {
			if r.Requester != "" {
				continue // placement-phase, not counted by the deny counters
			}
			if r.Predicate != "min-disk" {
				t.Fatalf("cycle %d: station %s rejected by %q, want min-disk", c.Cycle, r.Station, r.Predicate)
			}
			if !strings.Contains(r.Threshold, strconv.Itoa(minDisk)) {
				t.Errorf("cycle %d: threshold %q does not state the %d-byte bound", c.Cycle, r.Threshold, minDisk)
			}
			if !strings.Contains(r.Observed, "bytes free") {
				t.Errorf("cycle %d: observed %q does not state the free space", c.Cycle, r.Observed)
			}
			perCycle++
		}
		if perCycle != 3 {
			t.Errorf("cycle %d: %d candidate rejections, want one per station (3)", c.Cycle, perCycle)
		}
		rejections += perCycle
		if len(c.Grants) != 0 {
			t.Errorf("cycle %d: grants %+v despite the disk predicate", c.Cycle, c.Grants)
		}
	}

	// /decisions must agree with the /metrics deny counters: the
	// candidate-phase rejections audited above are exactly what
	// condor_policy_predicate_denied_total{pred="updown/min-disk"} grew by.
	denied1 := deniedCounter(t, srv.Addr())
	if delta := denied1 - denied0; delta != float64(rejections) {
		t.Errorf("deny counter grew %.0f, audits recorded %d candidate min-disk rejections", delta, rejections)
	}

	// condor-explain -job reads the same audits over the wire protocol:
	// a DecisionsRequest against the coordinator, rendered per requester.
	peer, err := wire.Dial(p.CoordinatorAddr(), 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.DecisionsRequest{Station: "dryws0"})
	if err != nil {
		t.Fatal(err)
	}
	dr, ok := reply.(proto.DecisionsReply)
	if !ok {
		t.Fatalf("unexpected reply %T", reply)
	}
	wireFresh := freshCycles(dr.Cycles, sinceCycle)
	if len(wireFresh) != cycles {
		t.Fatalf("wire returned %d fresh cycles, want %d", len(wireFresh), cycles)
	}
	pred, n, ok := decision.TopRejection(wireFresh, "dryws0")
	if !ok || pred != "min-disk" {
		t.Fatalf("TopRejection = %q (%d, %v), want the min-disk predicate", pred, n, ok)
	}
	latest := &wireFresh[len(wireFresh)-1]
	explain := decision.RenderRequester(latest, "dryws0")
	for _, want := range []string{"min-disk", "disk >= " + strconv.Itoa(minDisk), "bytes free", "unserved"} {
		if !strings.Contains(explain, want) {
			t.Errorf("condor-explain view missing %q:\n%s", want, explain)
		}
	}

	// And the HTTP surface the dashboard uses: /decisions on the
	// telemetry listener serves the same ring, same filters.
	resp, err := http.Get("http://" + srv.Addr() + "/decisions?station=dryws0&last=" + strconv.Itoa(cycles))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/decisions status = %s", resp.Status)
	}
	var httpPage decision.Page
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&httpPage); err != nil {
		t.Fatal(err)
	}
	httpFresh := freshCycles(httpPage.Cycles, sinceCycle)
	if len(httpFresh) != cycles {
		t.Fatalf("/decisions returned %d fresh cycles, want %d", len(httpFresh), cycles)
	}
	if pred, _, ok := decision.TopRejection(httpFresh, "dryws0"); !ok || pred != "min-disk" {
		t.Fatalf("/decisions TopRejection = %q %v, want min-disk", pred, ok)
	}
}

// freshCycles keeps audits newer than the given cycle number — the ones
// this test's own Cycle() calls produced.
func freshCycles(cycles []decision.CycleAudit, since uint64) []decision.CycleAudit {
	var out []decision.CycleAudit
	for _, c := range cycles {
		if c.Cycle > since {
			out = append(out, c)
		}
	}
	return out
}

// deniedCounter scrapes the updown/min-disk deny counter; a series not
// yet exposed reads as 0.
func deniedCounter(t *testing.T, addr string) float64 {
	t.Helper()
	body := scrapeMetrics(t, addr)
	const series = `condor_policy_predicate_denied_total{pred="updown/min-disk"}`
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[len(series)+1:]), 64)
		if err != nil {
			t.Fatalf("unparseable deny counter line %q: %v", line, err)
		}
		return v
	}
	return 0
}
