// Command condor-q lists a station's background job queue, and can
// remove jobs from it (a running job is vacated from its execution
// machine when removed).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"condor/internal/metrics"
	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		station = flag.String("station", "127.0.0.1:9620", "station (schedd) address")
		remove  = flag.String("rm", "", "remove the given job id instead of listing")
	)
	flag.Parse()
	if err := run(*station, *remove); err != nil {
		log.Fatal(err)
	}
}

func run(station, remove string) error {
	peer, err := wire.Dial(station, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if remove != "" {
		reply, err := peer.Call(ctx, proto.RemoveRequest{JobID: remove})
		if err != nil {
			return err
		}
		rr, ok := reply.(proto.RemoveReply)
		if !ok {
			return fmt.Errorf("unexpected reply %T", reply)
		}
		if !rr.Removed {
			return fmt.Errorf("no such job %q", remove)
		}
		fmt.Println("removed", remove)
		return nil
	}

	reply, err := peer.Call(ctx, proto.QueueRequest{})
	if err != nil {
		return err
	}
	qr, ok := reply.(proto.QueueReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	fmt.Printf("queue of %s (%d jobs)\n", qr.Station, len(qr.Jobs))
	now := time.Now()
	rows := make([][]string, 0, len(qr.Jobs))
	states := make(map[string]int)
	for _, j := range qr.Jobs {
		states[j.State.String()]++
		wait := "-"
		if !j.WaitingSince.IsZero() {
			// How long the job has been waiting for capacity in its
			// current idle episode.
			wait = now.Sub(j.WaitingSince).Round(time.Second).String()
		}
		rows = append(rows, []string{
			j.ID, j.Owner, j.Program, j.State.String(),
			fmt.Sprintf("%d", j.Priority),
			j.ExecHost,
			wait,
			fmt.Sprintf("%d", j.CPUSteps),
			fmt.Sprintf("%d", j.Checkpoints),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"Job", "Owner", "Program", "State", "Pri", "Exec", "Wait", "CPU", "Ckpts"},
		rows))
	if len(qr.Jobs) > 0 {
		names := make([]string, 0, len(states))
		for name := range states {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%d %s", states[name], name))
		}
		fmt.Println(strings.Join(parts, ", "))
	}
	return nil
}
