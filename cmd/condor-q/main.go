// Command condor-q lists a station's background job queue, and can
// remove jobs from it (a running job is vacated from its execution
// machine when removed). With -why it answers the first question a
// waiting job's owner asks — which predicate is keeping it off every
// machine — in one line, from the coordinator's /decisions audit ring.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"condor/internal/decision"
	"condor/internal/metrics"
	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		station   = flag.String("station", "127.0.0.1:9620", "station (schedd) address")
		remove    = flag.String("rm", "", "remove the given job id instead of listing")
		why       = flag.String("why", "", "one-line denial summary for the given job id")
		decisions = flag.String("decisions", "http://127.0.0.1:9100",
			"the coordinator's -http base, whose /decisions page -why reads")
	)
	flag.Parse()
	if *why != "" {
		if err := runWhy(*decisions, *why); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*station, *remove); err != nil {
		log.Fatal(err)
	}
}

// runWhy prints the top rejecting predicate for the job's home station
// (job IDs are "station/N") across the coordinator's retained audits.
func runWhy(base, jobID string) error {
	home := jobID
	if i := strings.LastIndex(jobID, "/"); i > 0 {
		home = jobID[:i]
	}
	u, err := url.Parse(strings.TrimSuffix(base, "/") + "/decisions")
	if err != nil {
		return fmt.Errorf("bad -decisions base: %w", err)
	}
	q := u.Query()
	q.Set("station", home)
	u.RawQuery = q.Encode()
	resp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	var page decision.Page
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&page); err != nil {
		return fmt.Errorf("decode %s: %w", u, err)
	}
	if len(page.Cycles) == 0 {
		fmt.Printf("%s: no decision audits mention station %s yet\n", jobID, home)
		return nil
	}
	if pred, n, ok := decision.TopRejection(page.Cycles, home); ok {
		fmt.Printf("%s: station %s rejected by %q %d time(s) over the last %d cycle(s) — condor-explain -job %s for detail\n",
			jobID, home, pred, n, len(page.Cycles), jobID)
	} else {
		fmt.Printf("%s: no rejections recorded for station %s over the last %d cycle(s) — it is waiting on capacity, not predicates\n",
			jobID, home, len(page.Cycles))
	}
	return nil
}

func run(station, remove string) error {
	peer, err := wire.Dial(station, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if remove != "" {
		reply, err := peer.Call(ctx, proto.RemoveRequest{JobID: remove})
		if err != nil {
			return err
		}
		rr, ok := reply.(proto.RemoveReply)
		if !ok {
			return fmt.Errorf("unexpected reply %T", reply)
		}
		if !rr.Removed {
			return fmt.Errorf("no such job %q", remove)
		}
		fmt.Println("removed", remove)
		return nil
	}

	reply, err := peer.Call(ctx, proto.QueueRequest{})
	if err != nil {
		return err
	}
	qr, ok := reply.(proto.QueueReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	fmt.Printf("queue of %s (%d jobs)\n", qr.Station, len(qr.Jobs))
	now := time.Now()
	rows := make([][]string, 0, len(qr.Jobs))
	states := make(map[string]int)
	for _, j := range qr.Jobs {
		states[j.State.String()]++
		wait := "-"
		if !j.WaitingSince.IsZero() {
			// How long the job has been waiting for capacity in its
			// current idle episode.
			wait = now.Sub(j.WaitingSince).Round(time.Second).String()
		}
		rows = append(rows, []string{
			j.ID, j.Owner, j.Program, j.State.String(),
			fmt.Sprintf("%d", j.Priority),
			j.ExecHost,
			wait,
			fmt.Sprintf("%d", j.CPUSteps),
			fmt.Sprintf("%d", j.Checkpoints),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"Job", "Owner", "Program", "State", "Pri", "Exec", "Wait", "CPU", "Ckpts"},
		rows))
	if len(qr.Jobs) > 0 {
		names := make([]string, 0, len(states))
		for name := range states {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%d %s", states[name], name))
		}
		fmt.Println(strings.Join(parts, ", "))
	}
	return nil
}
