// Command condor-history prints a daemon's recent event log: the
// submit/place/suspend/vacate/complete trail of jobs from a station, or
// the grant/preempt/reservation decisions from the coordinator. With
// -job it shows one job's full lifecycle; with -trace it shows every
// event stitched to one distributed trace. With -waterfall it switches
// from events to spans: it fetches a daemon's /traces endpoint and
// renders the ConGUSTo-style "where did the time go" timeline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"time"

	"condor/internal/proto"
	"condor/internal/trace"
	"condor/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9620", "station or coordinator address")
		jobID     = flag.String("job", "", "show only this job's trail")
		traceID   = flag.String("trace", "", "show only events of this trace (32 hex chars)")
		limit     = flag.Int("limit", 50, "max events (0 = all retained)")
		waterfall = flag.Bool("waterfall", false, "render span waterfalls from -traces instead of events")
		tracesURL = flag.String("traces", "http://127.0.0.1:9100/traces",
			"a daemon's /traces endpoint (used with -waterfall)")
	)
	flag.Parse()
	var err error
	if *waterfall {
		err = runWaterfall(*tracesURL, *traceID, *jobID)
	} else {
		err = runEvents(*addr, *jobID, *traceID, *limit)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runEvents(addr, jobID, traceID string, limit int) error {
	peer, err := wire.Dial(addr, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.HistoryRequest{JobID: jobID, Limit: limit, TraceID: traceID})
	if err != nil {
		return err
	}
	hr, ok := reply.(proto.HistoryReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	if len(hr.Events) == 0 {
		fmt.Println("(no events)")
		return nil
	}
	for _, e := range hr.Events {
		fmt.Println(e.String())
	}
	return nil
}

// runWaterfall fetches the /traces page (optionally filtered) and prints
// each trace as an indented timeline.
func runWaterfall(tracesURL, traceID, jobID string) error {
	u, err := url.Parse(tracesURL)
	if err != nil {
		return fmt.Errorf("bad -traces URL: %w", err)
	}
	q := u.Query()
	if traceID != "" {
		q.Set("trace", traceID)
	}
	if jobID != "" {
		q.Set("job", jobID)
	}
	u.RawQuery = q.Encode()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	var page trace.Page
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("decode %s: %w", u, err)
	}
	fmt.Print(trace.RenderWaterfall(page))
	return nil
}
