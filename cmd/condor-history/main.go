// Command condor-history prints a daemon's recent event log: the
// submit/place/suspend/vacate/complete trail of jobs from a station, or
// the grant/preempt/reservation decisions from the coordinator. With
// -job it shows one job's full lifecycle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:9620", "station or coordinator address")
		jobID = flag.String("job", "", "show only this job's trail")
		limit = flag.Int("limit", 50, "max events (0 = all retained)")
	)
	flag.Parse()
	if err := run(*addr, *jobID, *limit); err != nil {
		log.Fatal(err)
	}
}

func run(addr, jobID string, limit int) error {
	peer, err := wire.Dial(addr, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.HistoryRequest{JobID: jobID, Limit: limit})
	if err != nil {
		return err
	}
	hr, ok := reply.(proto.HistoryReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	if len(hr.Events) == 0 {
		fmt.Println("(no events)")
		return nil
	}
	for _, e := range hr.Events {
		fmt.Println(e.String())
	}
	return nil
}
