// Command condor-report renders the pool's live accounting the way the
// paper reports its measurements (§5): per-user capacity and leverage
// (Figure 9), per-station totals with the coordinator's allocation
// counters, the goodput/badput/checkpoint-overhead breakdown, the
// queue-wait distribution, and the cluster utilization profile over time
// (Figure 5). It queries any daemon speaking the wire protocol — the
// coordinator answers with its allocation ledger, stations with their
// jobs' meters.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"condor/internal/accounting"
	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:9618", "coordinator address (\"\" to skip)")
		stations  = flag.String("stations", "", "comma-separated station (schedd) addresses to include")
		width     = flag.Int("width", 64, "chart width for the utilization profile")
		jsonOut   = flag.Bool("json", false, "emit the raw views as JSON instead of tables")
	)
	flag.Parse()
	if err := run(*coordAddr, *stations, *width, *jsonOut); err != nil {
		log.Fatal(err)
	}
}

func run(coordAddr, stations string, width int, jsonOut bool) error {
	var sections []accounting.Section
	if coordAddr != "" {
		secs, err := query(coordAddr)
		if err != nil {
			return fmt.Errorf("coordinator %s: %w", coordAddr, err)
		}
		sections = append(sections, secs...)
	}
	for _, addr := range strings.Split(stations, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		secs, err := query(addr)
		if err != nil {
			return fmt.Errorf("station %s: %w", addr, err)
		}
		sections = append(sections, secs...)
	}
	if len(sections) == 0 {
		return fmt.Errorf("nothing to report (no coordinator or stations reachable)")
	}
	if jsonOut {
		page := make(map[string]accounting.View, len(sections))
		for _, s := range sections {
			page[s.Name] = s.View
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(page)
	}
	fmt.Print(accounting.RenderReport(sections, width))
	return nil
}

// query asks one daemon for its accounting and names the sections after
// the answering side: the coordinator's allocation ledger, and the
// process ledger when it has metered any jobs.
func query(addr string) ([]accounting.Section, error) {
	peer, err := wire.Dial(addr, 5*time.Second, nil)
	if err != nil {
		return nil, err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.AccountingRequest{})
	if err != nil {
		return nil, err
	}
	ar, ok := reply.(proto.AccountingReply)
	if !ok {
		return nil, fmt.Errorf("unexpected reply %T", reply)
	}
	var out []accounting.Section
	if ar.HasCoordinator {
		out = append(out, accounting.Section{Name: "coordinator " + addr, View: ar.Coordinator})
	}
	if viewHasJobs(ar.Process) {
		out = append(out, accounting.Section{Name: "jobs via " + addr, View: ar.Process})
	}
	return out, nil
}

func viewHasJobs(v accounting.View) bool {
	return len(v.Jobs) > 0 || len(v.Stations) > 0 || len(v.Users) > 0 || v.QueueWait.Count > 0
}
