package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.casm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExecutesProgram(t *testing.T) {
	path := writeProg(t, `
.data
msg: .str "ok\n"
.text
start:
    MOVI r0, msg
    MOVI r1, 3
    SYS  print
    HALT 0
`)
	if err := run(path, "", 1000, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithInputFile(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "in")
	if err := os.WriteFile(input, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := writeProg(t, `
.data
name: .str "in"
.bss
buf: .space 8
.text
start:
    MOVI r0, name
    MOVI r1, 2
    MOVI r2, 1
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, fail
    MOVI r1, buf
    MOVI r2, 8
    SYS  read
    MOVI r9, 3
    JNE  r0, r9, fail
    HALT 0
fail:
    HALT 1
`)
	if err := run(path, input, 10_000, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSource(t *testing.T) {
	path := writeProg(t, "FROB r0\n")
	if err := run(path, "", 1000, false); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestRunReportsStepExhaustion(t *testing.T) {
	path := writeProg(t, ".text\nstart:\n JMP start\n")
	if err := run(path, "", 100, false); err == nil {
		t.Fatal("infinite loop not bounded")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.casm", "", 100, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
