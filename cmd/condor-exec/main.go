// Command condor-exec runs a VM program locally (no pool, no shadow):
// assemble, execute against an in-memory filesystem seeded from -input
// files, and print what the program wrote. It is the "run it on my own
// workstation" baseline the paper's leverage metric compares against,
// and doubles as an assembler/VM debugging tool (-trace disassembles).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"condor/internal/cvm"
)

func main() {
	var (
		input = flag.String("input", "", "comma-separated files to preload into the job's filesystem")
		steps = flag.Uint64("max-steps", 2_000_000_000, "instruction budget")
		trace = flag.Bool("trace", false, "print the disassembly before running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: condor-exec [flags] program.casm")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *input, *steps, *trace); err != nil {
		log.Fatal(err)
	}
}

func run(path, input string, maxSteps uint64, trace bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	prog, err := cvm.Assemble(name, string(src))
	if err != nil {
		return err
	}
	if trace {
		for _, line := range prog.Disassemble() {
			fmt.Println(line)
		}
	}
	host := cvm.NewMemHost()
	if input != "" {
		for _, f := range strings.Split(input, ",") {
			data, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			host.SetFile(filepath.Base(f), data)
		}
	}
	vm, err := cvm.New(prog, host, cvm.Config{})
	if err != nil {
		return err
	}
	status, err := vm.Run(maxSteps)
	fmt.Print(host.Stdout())
	switch status {
	case cvm.StatusHalted:
		fmt.Fprintf(os.Stderr, "halted exit=%d steps=%d syscalls=%d\n",
			vm.ExitCode(), vm.Steps(), vm.Syscalls())
		for _, fname := range host.Files() {
			data, _ := host.File(fname)
			fmt.Fprintf(os.Stderr, "file %s: %d bytes\n", fname, len(data))
		}
		if code := vm.ExitCode(); code != 0 {
			return fmt.Errorf("program exited with code %d", code)
		}
		return nil
	case cvm.StatusFaulted:
		return err
	default:
		return fmt.Errorf("step budget exhausted after %d instructions", vm.Steps())
	}
}
