package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSampleProgram(t *testing.T) {
	cases := map[string]bool{
		"sum:1000":   true,
		"primes:500": true,
		"pi:1000":    true,
		"spin:99":    true,
		"matmul:4":   true,
		"collatz:10": true,
		"sum":        false, // missing param
		"frob:10":    false, // unknown kind
		"sum:xyz":    false, // bad param
		"":           false,
	}
	for spec, ok := range cases {
		prog, err := sampleProgram(spec)
		if ok && (err != nil || prog == nil) {
			t.Errorf("sampleProgram(%q) = %v, want success", spec, err)
		}
		if !ok && err == nil {
			t.Errorf("sampleProgram(%q) succeeded, want error", spec)
		}
	}
}

func TestBuildRequestFromSample(t *testing.T) {
	req, err := buildRequest("alice", "", "", "sum:42")
	if err != nil {
		t.Fatal(err)
	}
	if req.Owner != "alice" || len(req.ProgramBlob) == 0 || req.Name != "sum-42" {
		t.Fatalf("req = %+v", req)
	}
}

func TestBuildRequestFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.casm")
	src := ".text\nstart:\n HALT 0\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	req, err := buildRequest("bob", path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if req.Source != src {
		t.Fatalf("source = %q", req.Source)
	}
	if !strings.HasSuffix(req.Name, "prog.casm") && req.Name == "" {
		t.Fatalf("name = %q", req.Name)
	}
}

func TestBuildRequestRequiresInput(t *testing.T) {
	if _, err := buildRequest("a", "", "", ""); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := buildRequest("a", "/nonexistent/file.casm", "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
