// Command condor-submit queues a background job at a station. The
// program can be VM assembler source (-file) or one of the built-in
// sample programs (-sample name:param). With -wait it blocks until the
// job finishes and prints its output.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"condor/internal/cvm"
	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		station  = flag.String("station", "127.0.0.1:9620", "station (schedd) address")
		owner    = flag.String("owner", os.Getenv("USER"), "job owner")
		file     = flag.String("file", "", "assembler source file")
		name     = flag.String("name", "", "program name (default: file name)")
		sample   = flag.String("sample", "", "built-in program, e.g. sum:100000, primes:20000, pi:500000, spin:1000000, matmul:40, collatz:5000")
		priority = flag.Int("priority", 0, "local queue priority (higher runs first)")
		wait     = flag.Bool("wait", false, "wait for completion and print output")
		timeout  = flag.Duration("timeout", 10*time.Minute, "wait timeout")
	)
	flag.Parse()
	if err := run(*station, *owner, *file, *name, *sample, *priority, *wait, *timeout); err != nil {
		log.Fatal(err)
	}
}

func buildRequest(owner, file, name, sample string) (proto.SubmitRequest, error) {
	req := proto.SubmitRequest{Owner: owner}
	switch {
	case sample != "":
		prog, err := sampleProgram(sample)
		if err != nil {
			return req, err
		}
		blob, err := proto.EncodeProgram(prog)
		if err != nil {
			return req, err
		}
		req.ProgramBlob = blob
		req.Name = prog.Name
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return req, err
		}
		req.Source = string(src)
		req.Name = name
		if req.Name == "" {
			req.Name = strings.TrimSuffix(file, ".casm")
		}
	default:
		return req, fmt.Errorf("one of -file or -sample is required")
	}
	return req, nil
}

func sampleProgram(spec string) (*cvm.Program, error) {
	kind, paramStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("sample spec %q wants name:param", spec)
	}
	param, err := strconv.ParseInt(paramStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sample param %q: %w", paramStr, err)
	}
	switch kind {
	case "sum":
		return cvm.SumProgram(param), nil
	case "primes":
		return cvm.PrimeCountProgram(param), nil
	case "pi":
		return cvm.MonteCarloPiProgram(param), nil
	case "spin":
		return cvm.SpinProgram(param), nil
	case "matmul":
		return cvm.MatMulProgram(param), nil
	case "collatz":
		return cvm.CollatzProgram(param), nil
	case "randsearch":
		return cvm.RandomSearchProgram(param, 100_000, 70_000), nil
	default:
		return nil, fmt.Errorf("unknown sample %q (want sum, primes, pi, spin, matmul, collatz)", kind)
	}
}

func run(station, owner, file, name, sample string, priority int, wait bool, timeout time.Duration) error {
	req, err := buildRequest(owner, file, name, sample)
	if err != nil {
		return err
	}
	req.Priority = priority
	peer, err := wire.Dial(station, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	reply, err := peer.Call(ctx, req)
	cancel()
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	sr, ok := reply.(proto.SubmitReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	fmt.Println("submitted", sr.JobID)
	if !wait {
		return nil
	}

	ctx, cancel = context.WithTimeout(context.Background(), timeout)
	defer cancel()
	waitReply, err := peer.Call(ctx, proto.WaitRequest{JobID: sr.JobID})
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	wr, ok := waitReply.(proto.WaitReply)
	if !ok || !wr.Found {
		return fmt.Errorf("job %s vanished", sr.JobID)
	}
	fmt.Printf("state=%s exec=%s cpu=%d checkpoints=%d\n",
		wr.Status.State, wr.Status.ExecHost, wr.Status.CPUSteps, wr.Status.Checkpoints)
	if wr.Status.Stdout != "" {
		fmt.Print(wr.Status.Stdout)
	}
	if wr.Status.FaultMsg != "" {
		return fmt.Errorf("job faulted: %s", wr.Status.FaultMsg)
	}
	return nil
}
