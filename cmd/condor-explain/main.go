// Command condor-explain answers "why did the scheduler do that" from
// the coordinator's decision-audit ring (internal/decision). Three
// views over the same audits:
//
//	condor-explain -job pulsar/3      why isn't my job running — the
//	                                  home station's rank, score, and
//	                                  every predicate that stood
//	                                  between it and a machine
//	condor-explain -station pulsar    the inverse: how one machine was
//	                                  filtered, granted, or weighed as
//	                                  a preemption victim
//	condor-explain -cycle -1          the full audit of the most recent
//	                                  cycle (negative counts from the
//	                                  newest; positive is an absolute
//	                                  cycle number)
//
// The coordinator keeps the last few hundred audited cycles in memory
// (see /decisions on its -http listener); this tool reads them over the
// wire protocol, so it works wherever condor-status does.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"condor/internal/decision"
	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		coord   = flag.String("coordinator", "127.0.0.1:9618", "coordinator wire address")
		jobID   = flag.String("job", "", "explain this job's treatment (ID form station/N)")
		station = flag.String("station", "", "explain this station's treatment")
		cycle   = flag.Int64("cycle", 0, "one cycle: >0 absolute, <0 from the newest (-1 = last)")
		last    = flag.Int("last", 0, "only the most recent N audited cycles (0 = all retained)")
	)
	flag.Parse()
	if err := run(*coord, *jobID, *station, *cycle, *last); err != nil {
		log.Fatal(err)
	}
}

func run(coord, jobID, station string, cycle int64, last int) error {
	// A waiting job never appears in grants, so "why isn't my job
	// running" means "how was its home station treated as a requester".
	// Job IDs encode the home station as the prefix before the last "/".
	requester := ""
	if jobID != "" {
		requester = homeStation(jobID)
		if station == "" {
			station = requester
		}
	}

	peer, err := wire.Dial(coord, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.DecisionsRequest{
		Station: station, Cycle: cycle, Last: last,
	})
	if err != nil {
		return err
	}
	dr, ok := reply.(proto.DecisionsReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	if len(dr.Cycles) == 0 {
		fmt.Println("(no matching decision audits — has the coordinator completed a cycle?)")
		return nil
	}

	switch {
	case jobID != "":
		// Summary line first, then the newest cycle's detailed treatment.
		if pred, n, ok := decision.TopRejection(dr.Cycles, requester); ok {
			fmt.Printf("job %s (home station %s): blocked by %q in %d rejection(s) across %d audited cycle(s)\n\n",
				jobID, requester, pred, n, len(dr.Cycles))
		} else {
			fmt.Printf("job %s (home station %s): no rejections recorded across %d audited cycle(s)\n\n",
				jobID, requester, len(dr.Cycles))
		}
		latest := &dr.Cycles[len(dr.Cycles)-1]
		os.Stdout.WriteString(decision.RenderRequester(latest, requester))
	case station != "":
		for i := range dr.Cycles {
			os.Stdout.WriteString(decision.RenderStation(&dr.Cycles[i], station))
			fmt.Println()
		}
	default:
		for i := range dr.Cycles {
			os.Stdout.WriteString(decision.RenderCycle(&dr.Cycles[i]))
			fmt.Println()
		}
	}
	if dr.Dropped > 0 {
		fmt.Printf("(%d older audits evicted from the coordinator's ring)\n", dr.Dropped)
	}
	return nil
}

// homeStation extracts the station prefix from a "station/N" job ID;
// IDs without a slash are returned whole.
func homeStation(jobID string) string {
	if i := strings.LastIndex(jobID, "/"); i > 0 {
		return jobID[:i]
	}
	return jobID
}
