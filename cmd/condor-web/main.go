// Command condor-web serves the pool's live dashboard: one embedded
// HTML page backed by a JSON API, an SSE event stream, and a
// server-side alert-rules engine, all aggregated from the coordinator
// and its stations on a short refresh interval. It is an observer —
// it holds no scheduling state and can be restarted freely.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"condor/internal/telemetry"
	"condor/internal/web"
)

// repeatable collects a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:9620", "dashboard listen address")
	coordAddr := flag.String("coordinator", "127.0.0.1:9618", "coordinator wire address")
	refresh := flag.Duration("refresh", 2*time.Second, "aggregation interval")
	cycleInterval := flag.Duration("cycle-interval", 2*time.Minute,
		"coordinator's allocation-cycle interval (the cycle_lag alert field is cycle age over this)")
	var scrapes, relays, rules repeatable
	flag.Var(&scrapes, "scrape",
		"operational listener (host:port of a -http flag) to scrape for decide latency and readiness; repeatable")
	flag.Var(&relays, "relay",
		"operational listener whose /events stream is relayed onto this dashboard; repeatable (for multi-process pools)")
	flag.Var(&rules, "rule",
		`alert rule "name: field op value [for dur]"; repeatable (default: the built-in rule set)`)
	flag.Parse()

	var parsed []web.Rule
	if len(rules) > 0 {
		var err error
		parsed, err = web.ParseRules(rules)
		if err != nil {
			log.Fatal(err)
		}
	}
	srv, err := web.NewServer(web.Config{
		CoordinatorAddr: *coordAddr,
		Refresh:         *refresh,
		CycleInterval:   *cycleInterval,
		Rules:           parsed,
		Scrapes:         scrapes,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, base := range relays {
		r := web.NewRelay(base, telemetry.Events)
		r.Start()
		defer r.Close()
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	fmt.Printf("condor-web: dashboard on http://%s (coordinator %s, refresh %s)\n",
		addr, *coordAddr, *refresh)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}
