// Command condor-reserve manages §5.3 reservations: it grants one
// station exclusive remote use of an execution machine for a bounded
// time ("reservations guarantee computing capacity for users in advance
// in order to conduct experiments in distributed computations"). The
// workstation's owner is unaffected — reservations only arbitrate among
// remote users.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:9618", "coordinator address")
		station   = flag.String("station", "", "machine to reserve")
		holder    = flag.String("for", "", "station whose jobs may use it")
		duration  = flag.Duration("duration", time.Hour, "reservation length")
		cancel    = flag.Bool("cancel", false, "cancel the station's reservation instead")
	)
	flag.Parse()
	if err := run(*coordAddr, *station, *holder, *duration, *cancel); err != nil {
		log.Fatal(err)
	}
}

func run(coordAddr, station, holder string, duration time.Duration, cancelIt bool) error {
	if station == "" {
		return fmt.Errorf("-station is required")
	}
	peer, err := wire.Dial(coordAddr, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if cancelIt {
		reply, err := peer.Call(ctx, proto.CancelReservationRequest{Station: station})
		if err != nil {
			return err
		}
		cr, ok := reply.(proto.CancelReservationReply)
		if !ok {
			return fmt.Errorf("unexpected reply %T", reply)
		}
		if cr.Cancelled {
			fmt.Printf("reservation on %s cancelled\n", station)
		} else {
			fmt.Printf("%s had no reservation\n", station)
		}
		return nil
	}

	if holder == "" {
		return fmt.Errorf("-for is required (the station whose jobs may use the machine)")
	}
	reply, err := peer.Call(ctx, proto.ReserveRequest{
		Station:        station,
		Holder:         holder,
		DurationMillis: duration.Milliseconds(),
	})
	if err != nil {
		return err
	}
	rr, ok := reply.(proto.ReserveReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	if !rr.OK {
		return fmt.Errorf("refused: %s", rr.Reason)
	}
	fmt.Printf("%s reserved for %s until %s\n", station, holder,
		time.UnixMilli(rr.UntilUnixMillis).Format(time.RFC3339))
	return nil
}
