package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"condor/internal/metrics"
)

// runMetrics scrapes a daemon's /metrics endpoint (condor-coordinator or
// condor-stationd started with -http) and renders the condor series:
// counters and gauges as plain values, histograms as count / mean /
// approximate quantiles derived from the cumulative buckets.
func runMetrics(target string) error {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	if !strings.HasSuffix(target, "/metrics") {
		target = strings.TrimRight(target, "/") + "/metrics"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: HTTP %s", target, resp.Status)
	}
	scraped, err := parseMetrics(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("scraped %s\n\n", target)
	printScraped(scraped)
	return nil
}

// series is one sample: a fully-labeled metric name and its value.
type series struct {
	name   string // family name (histogram suffixes stripped)
	labels string // rendered label set, le excluded
	le     string // histogram bucket bound ("" for non-buckets)
	suffix string // "", "_bucket", "_sum", "_count"
	value  float64
}

type scrape struct {
	types  map[string]string // family -> counter|gauge|histogram
	series []series
}

// parseMetrics reads Prometheus text exposition format — only as much of
// it as the telemetry package emits.
func parseMetrics(r io.Reader) (*scrape, error) {
	s := &scrape{types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) == 4 {
				s.types[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		value, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			continue // not a sample line we understand
		}
		name, labels := line[:idx], ""
		if b := strings.IndexByte(name, '{'); b >= 0 {
			if !strings.HasSuffix(name, "}") {
				continue
			}
			labels = name[b+1 : len(name)-1]
			name = name[:b]
		}
		out := series{name: name, value: value}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && s.types[base] == "histogram" {
				out.name, out.suffix = base, suffix
				break
			}
		}
		var kept []string
		for _, pair := range splitLabels(labels) {
			if le, ok := strings.CutPrefix(pair, `le="`); ok && out.suffix == "_bucket" {
				out.le = strings.TrimSuffix(le, `"`)
				continue
			}
			kept = append(kept, pair)
		}
		out.labels = strings.Join(kept, ",")
		s.series = append(s.series, out)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

// histKey identifies one histogram series (family + label set).
type histKey struct{ name, labels string }

type hist struct {
	count, sum float64
	// buckets maps le (as parsed) to cumulative count.
	buckets map[string]float64
}

// quantile returns the upper bound of the bucket where the cumulative
// count crosses q — a coarse estimate, good enough for a status line.
func (h *hist) quantile(q float64) string {
	if h.count == 0 {
		return "-"
	}
	type bkt struct {
		le  float64
		n   float64
		raw string
	}
	var bkts []bkt
	for le, n := range h.buckets {
		v := math.Inf(1)
		if le != "+Inf" {
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			v = f
		}
		bkts = append(bkts, bkt{le: v, n: n, raw: le})
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	rank := q * h.count
	for _, b := range bkts {
		if b.n >= rank {
			if math.IsInf(b.le, 1) {
				return "+Inf"
			}
			return "≤" + b.raw
		}
	}
	return "-"
}

func printScraped(s *scrape) {
	hists := make(map[histKey]*hist)
	var scalarRows [][]string
	for _, sr := range s.series {
		if s.types[sr.name] == "histogram" {
			k := histKey{sr.name, sr.labels}
			h := hists[k]
			if h == nil {
				h = &hist{buckets: make(map[string]float64)}
				hists[k] = h
			}
			switch sr.suffix {
			case "_bucket":
				h.buckets[sr.le] = sr.value
			case "_sum":
				h.sum = sr.value
			case "_count":
				h.count = sr.value
			}
			continue
		}
		name := sr.name
		if sr.labels != "" {
			name += "{" + sr.labels + "}"
		}
		scalarRows = append(scalarRows, []string{name, s.types[sr.name], formatValue(sr.value)})
	}
	sort.Slice(scalarRows, func(i, j int) bool { return scalarRows[i][0] < scalarRows[j][0] })
	fmt.Print(metrics.Table([]string{"Metric", "Type", "Value"}, scalarRows))

	var histRows [][]string
	for k, h := range hists {
		name := k.name
		if k.labels != "" {
			name += "{" + k.labels + "}"
		}
		mean := "-"
		if h.count > 0 {
			mean = formatValue(h.sum / h.count)
		}
		histRows = append(histRows, []string{
			name, formatValue(h.count), mean, h.quantile(0.5), h.quantile(0.95), h.quantile(0.99),
		})
	}
	sort.Slice(histRows, func(i, j int) bool { return histRows[i][0] < histRows[j][0] })
	if len(histRows) > 0 {
		fmt.Println()
		fmt.Print(metrics.Table([]string{"Histogram", "Count", "Mean", "p50", "p95", "p99"}, histRows))
	}
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
