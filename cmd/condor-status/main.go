// Command condor-status prints the coordinator's pool table: every
// registered workstation with its state, queue depth, Up-Down schedule
// index, reservation, and how long ago the coordinator last heard from
// it — plus the coordinator's own incarnation, uptime, and journal
// health, so a recovery is visible at a glance.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"condor/internal/metrics"
	"condor/internal/proto"
	"condor/internal/web"
)

func main() {
	coordAddr := flag.String("coordinator", "127.0.0.1:9618", "coordinator address")
	metricsAddr := flag.String("metrics", "",
		"scrape this daemon's /metrics endpoint (host:port or URL of a -http listener) instead of querying the coordinator")
	watch := flag.Duration("watch", 0,
		"re-render every interval (e.g. -watch 2s) over one pooled connection; ctrl-c to stop")
	flag.Parse()
	if *metricsAddr != "" {
		if err := runMetrics(*metricsAddr); err != nil {
			log.Fatal(err)
		}
		return
	}
	client := web.NewClient(*coordAddr)
	defer client.Close()
	if *watch > 0 {
		// Watch mode: clear and re-render; a transient RPC failure is a
		// frame, not a fatal error.
		for {
			fmt.Print("\033[H\033[2J")
			if err := run(client); err != nil {
				fmt.Printf("error: %v\n", err)
			}
			fmt.Printf("\nevery %s — ctrl-c to stop\n", *watch)
			time.Sleep(*watch)
		}
	}
	if err := run(client); err != nil {
		log.Fatal(err)
	}
}

func run(client *web.Client) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sr, err := client.PoolStatus(ctx)
	if err != nil {
		return err
	}
	printCoordinator(sr.Coordinator)
	rows := make([][]string, 0, len(sr.Stations))
	now := time.Now()
	for _, s := range sr.Stations {
		lastSeen := "never"
		if !s.LastPoll.IsZero() {
			lastSeen = now.Sub(s.LastPoll).Round(time.Second).String() + " ago"
		}
		reserved := "-"
		if s.ReservedFor != "" {
			reserved = fmt.Sprintf("%s (%s left)",
				s.ReservedFor, time.Until(s.ReservedUntil).Round(time.Second))
		}
		rows = append(rows, []string{
			s.Name, s.State.String(),
			healthCell(s, now),
			fmt.Sprintf("%d", s.WaitingJobs),
			fmt.Sprintf("%d", s.RunningJobs),
			s.ForeignJob,
			fmt.Sprintf("%.1f", s.ScheduleIndex),
			metrics.Sparkline(s.IndexHistory, 16),
			reserved,
			lastSeen,
		})
	}
	fmt.Print(metrics.Table(
		[]string{"Station", "State", "Health", "Waiting", "Running", "ForeignJob", "Index", "Trend", "Reserved", "LastSeen"},
		rows))
	w := sr.Wire
	fmt.Printf("\nwire: %d dials, %d reuses, %d reconnects, %d evictions, %d retries\n",
		w.Dials, w.Reuses, w.Reconnects, w.Evictions, w.Retries)
	return nil
}

// healthCell renders a station's graded health as e.g.
// "suspect 12s (slow)" — state, time-in-state, and the coarse reason
// behind a non-healthy grade. Healthy stations render as a bare "ok"
// so trouble stands out in the column.
func healthCell(s proto.StationInfo, now time.Time) string {
	switch s.Health {
	case 0:
		return "-" // pre-health coordinator
	case proto.HealthHealthy:
		return "ok"
	}
	cell := fmt.Sprintf("%s %s", s.Health, now.Sub(s.HealthSince).Round(time.Second))
	if s.HealthReason != "" {
		reason := s.HealthReason
		if i := strings.IndexByte(reason, ':'); i > 0 {
			reason = reason[:i]
		}
		cell += " (" + reason + ")"
	}
	return cell
}

// printReady surfaces the coordinator's failing readiness checks — the
// same "name: reason" lines its /healthz serves in a 503 body — so an
// unready daemon explains itself without a second scrape.
func printReady(ci proto.CoordinatorInfo) {
	if len(ci.ReadyFailures) == 0 {
		return
	}
	fmt.Println("NOT READY:")
	for _, f := range ci.ReadyFailures {
		fmt.Printf("  %s\n", f)
	}
}

// printCoordinator summarizes the daemon itself: restart lineage,
// uptime, and journal/recovery health.
func printCoordinator(ci proto.CoordinatorInfo) {
	uptime := "?"
	if ci.StartedUnixMillis != 0 {
		uptime = time.Since(time.UnixMilli(ci.StartedUnixMillis)).Round(time.Second).String()
	}
	pol := ci.PolicyName
	if pol == "" {
		pol = "updown (pre-pipeline)"
	}
	if !ci.Persistent {
		fmt.Printf("coordinator: in-memory, up %s, %d cycles, policy %s\n", uptime, ci.Cycles, pol)
		printReady(ci)
		printAllocation(ci)
		printHealth(ci)
		fmt.Println()
		return
	}
	j := ci.Journal
	fmt.Printf("coordinator: incarnation %d, up %s, %d cycles, policy %s\n",
		ci.Incarnation, uptime, ci.Cycles, pol)
	printReady(ci)
	printAllocation(ci)
	printHealth(ci)
	fmt.Printf("journal: %d appends, %d snapshots, %d B log", j.Appends, j.Snapshots, j.LogBytes)
	if j.Replayed > 0 || j.TruncatedBytes > 0 {
		fmt.Printf("; recovered %d records (%d torn bytes truncated)", j.Replayed, j.TruncatedBytes)
	}
	if j.Errors > 0 {
		fmt.Printf("; %d ERRORS", j.Errors)
	}
	fmt.Println()
	fmt.Println()
}

// printHealth summarizes the pool's graded-health activity and flags
// degraded mode (Up-Down penalties frozen) loudly.
func printHealth(ci proto.CoordinatorInfo) {
	if ci.Degraded {
		fmt.Println("health: DEGRADED — too much of the pool is non-healthy; Up-Down index penalties frozen")
	}
	if ci.Suspects == 0 && ci.Quarantines == 0 && ci.ByzantineReplies == 0 {
		return
	}
	fmt.Printf("health: %d suspects, %d quarantines, %d readmissions, %d byzantine replies\n",
		ci.Suspects, ci.Quarantines, ci.Readmissions, ci.ByzantineReplies)
}

// printAllocation summarizes grant and preemption activity.
func printAllocation(ci proto.CoordinatorInfo) {
	if ci.Grants == 0 && ci.Preempts == 0 {
		return
	}
	fmt.Printf("allocation: %d grants (%d used, %d denied), %d preempts\n",
		ci.Grants, ci.GrantsUsed, ci.GrantsDenied, ci.Preempts)
}
