// Command condor-status prints the coordinator's pool table: every
// registered workstation with its state, queue depth, Up-Down schedule
// index, and the foreign job it is hosting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"condor/internal/metrics"
	"condor/internal/proto"
	"condor/internal/wire"
)

func main() {
	coordAddr := flag.String("coordinator", "127.0.0.1:9618", "coordinator address")
	flag.Parse()
	if err := run(*coordAddr); err != nil {
		log.Fatal(err)
	}
}

func run(coordAddr string) error {
	peer, err := wire.Dial(coordAddr, 5*time.Second, nil)
	if err != nil {
		return err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.PoolStatusRequest{})
	if err != nil {
		return err
	}
	sr, ok := reply.(proto.PoolStatusReply)
	if !ok {
		return fmt.Errorf("unexpected reply %T", reply)
	}
	rows := make([][]string, 0, len(sr.Stations))
	for _, s := range sr.Stations {
		age := "-"
		if !s.LastPoll.IsZero() {
			age = time.Since(s.LastPoll).Round(time.Second).String()
		}
		rows = append(rows, []string{
			s.Name, s.State.String(),
			fmt.Sprintf("%d", s.WaitingJobs),
			fmt.Sprintf("%d", s.RunningJobs),
			s.ForeignJob,
			fmt.Sprintf("%.1f", s.ScheduleIndex),
			age,
		})
	}
	fmt.Print(metrics.Table(
		[]string{"Station", "State", "Waiting", "Running", "ForeignJob", "Index", "Polled"},
		rows))
	w := sr.Wire
	fmt.Printf("\nwire: %d dials, %d reuses, %d reconnects, %d evictions, %d retries\n",
		w.Dials, w.Reuses, w.Reconnects, w.Evictions, w.Retries)
	return nil
}
