// Command condor-coordinator runs the central coordinator daemon: it
// polls registered stations every poll interval, maintains Up-Down
// schedule indexes, and hands out capacity grants. Stations register
// themselves via condor-stationd -coordinator.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"condor/internal/coordinator"
	"condor/internal/policy"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9618", "listen address")
		poll    = flag.Duration("poll", 2*time.Minute, "station poll interval")
		grants  = flag.Int("grants-per-cycle", 1, "max placements per cycle (§4 pacing)")
		history = flag.Bool("history-placement", false,
			"prefer machines with long availability history (§5.1)")
		rpcTimeout = flag.Duration("rpc-timeout", 0,
			"end-to-end bound on one station RPC (0 = dial timeout + 10s)")
	)
	flag.Parse()
	if err := run(*listen, *poll, *grants, *history, *rpcTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(listen string, poll time.Duration, grants int, history bool, rpcTimeout time.Duration) error {
	cfg := coordinator.Config{ListenAddr: listen, PollInterval: poll, RPCTimeout: rpcTimeout}
	cfg.Policy = policy.DefaultConfig()
	cfg.Policy.MaxGrantsPerCycle = grants
	if history {
		cfg.Policy.Placement = policy.PlaceHistory
	}
	coord, err := coordinator.New(cfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	fmt.Printf("condor-coordinator listening on %s (poll every %v)\n", coord.Addr(), poll)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down; running jobs are unaffected (§2.1)")
	return nil
}
