// Command condor-coordinator runs the central coordinator daemon: it
// polls registered stations every poll interval, maintains Up-Down
// schedule indexes, and hands out capacity grants. Stations register
// themselves via condor-stationd -coordinator.
//
// With -state-dir the coordinator journals its up-down indexes,
// reservations, and station table to disk and replays them on startup,
// so a crash or restart loses neither the pool's fairness memory nor
// its reservation promises. Without it the coordinator is pure
// in-memory, as in the original paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"condor/internal/accounting"
	"condor/internal/coordinator"
	"condor/internal/policy"
	"condor/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9618", "listen address")
		poll    = flag.Duration("poll", 2*time.Minute, "station poll interval")
		grants  = flag.Int("grants-per-cycle", 1, "max placements per cycle (§4 pacing)")
		history = flag.Bool("history-placement", false,
			"prefer machines with long availability history (§5.1)")
		policyName = flag.String("policy", "",
			"scheduling policy (updown, fifo, busiest-first, backfill, deadline; empty = journaled policy or updown)")
		rpcTimeout = flag.Duration("rpc-timeout", 0,
			"end-to-end bound on one station RPC (0 = dial timeout + 10s)")
		stateDir = flag.String("state-dir", "",
			"journal up-down and reservation state here and replay it on restart (empty = in-memory)")
		snapshotEvery = flag.Int("snapshot-every", 0,
			"cycles between journal snapshots (0 = default 16; only with -state-dir)")
		httpAddr = flag.String("http", "",
			"serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")
	)
	flag.Parse()
	if err := run(*listen, *poll, *grants, *history, *policyName, *rpcTimeout, *stateDir, *snapshotEvery, *httpAddr); err != nil {
		log.Fatal(err)
	}
}

func run(listen string, poll time.Duration, grants int, history bool, policyName string,
	rpcTimeout time.Duration, stateDir string, snapshotEvery int, httpAddr string) error {
	cfg := coordinator.Config{
		ListenAddr:    listen,
		PollInterval:  poll,
		RPCTimeout:    rpcTimeout,
		StateDir:      stateDir,
		SnapshotEvery: snapshotEvery,
	}
	cfg.Policy = policy.DefaultConfig()
	cfg.Policy.MaxGrantsPerCycle = grants
	if history {
		cfg.Policy.Placement = policy.PlaceHistory
	}
	cfg.Policy.Name = policyName
	coord, err := coordinator.New(cfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	// The coordinator keeps its allocation ledger separate from the
	// process-global one so its totals can be journaled; surface it on
	// the /accounting page alongside the default section.
	accounting.Publish("coordinator", coord.Accounting())
	defer accounting.Unpublish("coordinator")
	if httpAddr != "" {
		srv, err := telemetry.Serve(httpAddr, telemetry.Default)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics (pprof at /debug/pprof/, accounting at /accounting)\n", srv.Addr())
	}
	if stateDir != "" {
		s := coord.Stats()
		fmt.Printf("condor-coordinator listening on %s (poll every %v, policy %s, state in %s, incarnation %d",
			coord.Addr(), poll, coord.PolicyName(), stateDir, s.Incarnation)
		if s.JournalReplayed > 0 || s.JournalTruncated > 0 {
			fmt.Printf(", replayed %d records, truncated %d torn bytes", s.JournalReplayed, s.JournalTruncated)
		}
		fmt.Println(")")
	} else {
		fmt.Printf("condor-coordinator listening on %s (poll every %v, policy %s, in-memory)\n",
			coord.Addr(), poll, coord.PolicyName())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down; running jobs are unaffected (§2.1)")
	return nil
}
