// Command bench2json converts `go test -bench` output on stdin to a
// stable JSON document on stdout, so benchmark baselines can be
// committed and diffed (see BENCH_baseline.json and `make
// bench-baseline`).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	Name string  `json:"name"`
	Runs int64   `json:"runs"`
	NsOp float64 `json:"ns_per_op"`
	// BOp / AllocsOp are -1 when the benchmark did not report memory.
	BOp      int64 `json:"bytes_per_op"`
	AllocsOp int64 `json:"allocs_per_op"`
	// Extra holds any custom metrics (e.g. "MB/s", "dials/station").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the whole baseline file.
type Document struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Package []string `json:"packages,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = append(doc.Package, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return doc, nil
}

// parseResult decodes one line of the form:
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  7 allocs/op  [val unit]...
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, BOp: -1, AllocsOp: -1}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
