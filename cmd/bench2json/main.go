// Command bench2json converts `go test -bench` output on stdin to a
// stable JSON document on stdout, so benchmark baselines can be
// committed and diffed (see BENCH_baseline.json and `make
// bench-baseline`).
//
// With -compare it instead checks the run against a committed baseline:
// ns/op drift beyond -tolerance and any new allocations on a
// previously-allocation-free path are reported (as GitHub annotations
// when running in Actions) and fail the exit code. CI gates on this;
// benchmarks too timing-sensitive for shared runners are excused by
// name in the -allowlist file (their drift is still printed, it just
// does not fail the build).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	Name string  `json:"name"`
	Runs int64   `json:"runs"`
	NsOp float64 `json:"ns_per_op"`
	// BOp / AllocsOp are -1 when the benchmark did not report memory.
	BOp      int64 `json:"bytes_per_op"`
	AllocsOp int64 `json:"allocs_per_op"`
	// Extra holds any custom metrics (e.g. "MB/s", "dials/station").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the whole baseline file.
type Document struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Package []string `json:"packages,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var (
		comparePath = flag.String("compare", "",
			"compare the run on stdin against this baseline JSON instead of emitting JSON")
		tolerance = flag.Float64("tolerance", 0.30,
			"allowed fractional ns/op drift vs the baseline (0.30 = ±30%)")
		allowlistPath = flag.String("allowlist", "",
			"file of benchmark names (one per line, # comments) whose timing drift is reported but never fails the exit code")
	)
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if *comparePath != "" {
		allow, err := loadAllowlist(*allowlistPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		os.Exit(compare(*comparePath, *tolerance, allow, doc))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// normName strips the trailing GOMAXPROCS suffix ("-8") so fresh runs
// match baselines generated on machines with different core counts.
func normName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// loadAllowlist reads one benchmark name per line; blank lines and
// #-comments are skipped. Names are matched after normName, so the file
// lists "BenchmarkCycle1000", not "BenchmarkCycle1000-8".
func loadAllowlist(path string) (map[string]bool, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	allow := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			allow[normName(line)] = true
		}
	}
	return allow, nil
}

// compare reports drift of the stdin run versus the committed baseline.
// Returns the process exit code: 0 in tolerance, 1 on drift or a new
// allocation on a previously allocation-free benchmark. Allowlisted
// benchmarks report timing drift without failing; a new allocation on a
// 0 allocs/op path is never excused (allocation counts are exact, not
// runner noise).
func compare(baselinePath string, tolerance float64, allow map[string]bool, cur *Document) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		return 1
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %s: %v\n", baselinePath, err)
		return 1
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[normName(r.Name)] = r
	}
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	bad := 0
	for _, r := range cur.Results {
		name := normName(r.Name)
		b, ok := baseline[name]
		if !ok {
			fmt.Printf("NEW   %-40s %10.1f ns/op (no baseline; add with `make bench-baseline`)\n",
				name, r.NsOp)
			continue
		}
		delta := 0.0
		if b.NsOp > 0 {
			delta = (r.NsOp - b.NsOp) / b.NsOp
		}
		switch {
		case b.AllocsOp == 0 && r.AllocsOp > 0:
			bad++
			fmt.Printf("ALLOC %-40s %d allocs/op (baseline 0)\n", name, r.AllocsOp)
			if annotate {
				fmt.Printf("::warning title=bench drift::%s now allocates (%d allocs/op, baseline 0)\n",
					name, r.AllocsOp)
			}
		case delta > tolerance && allow[name]:
			fmt.Printf("SLOW  %-40s %10.1f -> %10.1f ns/op (%+.0f%%, allowlisted)\n",
				name, b.NsOp, r.NsOp, 100*delta)
		case delta > tolerance:
			bad++
			fmt.Printf("SLOW  %-40s %10.1f -> %10.1f ns/op (%+.0f%%, tolerance %.0f%%)\n",
				name, b.NsOp, r.NsOp, 100*delta, 100*tolerance)
			if annotate {
				fmt.Printf("::warning title=bench drift::%s %.1f -> %.1f ns/op (%+.0f%% > %.0f%%)\n",
					name, b.NsOp, r.NsOp, 100*delta, 100*tolerance)
			}
		default:
			fmt.Printf("ok    %-40s %10.1f -> %10.1f ns/op (%+.0f%%)\n", name, b.NsOp, r.NsOp, 100*delta)
		}
	}
	if bad > 0 {
		fmt.Printf("%d benchmark(s) outside tolerance\n", bad)
		return 1
	}
	return 0
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = append(doc.Package, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return doc, nil
}

// parseResult decodes one line of the form:
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  7 allocs/op  [val unit]...
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, BOp: -1, AllocsOp: -1}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
