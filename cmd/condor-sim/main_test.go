package main

import (
	"os"
	"path/filepath"
	"testing"
)

func tiny() (machines, days int, seed int64) { return 5, 2, 1 }

func TestRunExperiments(t *testing.T) {
	m, d, s := tiny()
	for _, exp := range []string{
		"all", "table1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "scalars",
	} {
		if err := run(m, d, s, exp, "", "", "", ""); err != nil {
			t.Fatalf("experiment %s: %v", exp, err)
		}
	}
	if err := run(m, d, s, "nonsense", "", "", "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAblations(t *testing.T) {
	m, d, s := tiny()
	for _, ab := range []string{"vacate", "pacing", "updown", "history", "periodic"} {
		if err := run(m, d, s, "all", ab, "", "", ""); err != nil {
			t.Fatalf("ablation %s: %v", ab, err)
		}
	}
	if err := run(m, d, s, "all", "nonsense", "", "", ""); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestRunPolicies(t *testing.T) {
	m, d, s := tiny()
	for _, pol := range []string{"updown", "fifo", "busiest-first", "backfill", "deadline"} {
		if err := run(m, d, s, "scalars", "", pol, "", ""); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
	}
	if err := run(m, d, s, "scalars", "", "nonsense", "", ""); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := runPolicyAB(baseConfig(m, d, s), []string{"updown", "fifo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExports(t *testing.T) {
	m, d, s := tiny()
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "rep.json")
	csvPrefix := filepath.Join(dir, "rep")
	if err := run(m, d, s, "scalars", "", "", jsonPath, csvPrefix); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, csvPrefix + "-hourly.csv", csvPrefix + "-by-demand.csv"} {
		fi, err := os.Stat(path)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("export %s missing or empty: %v", path, err)
		}
	}
	if err := run(m, d, s, "scalars", "", "", "/nonexistent-dir/x.json", ""); err == nil {
		t.Fatal("unwritable export path accepted")
	}
}
