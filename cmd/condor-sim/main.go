// Command condor-sim reproduces the paper's evaluation section: it runs
// the month-scale simulation of the 23-workstation pool under the
// Table 1 workload and prints every table and figure (Table 1, Figures
// 2–9) plus the §3 scalars. The -experiment flag prints a single
// artifact; -ablation runs the design-choice comparisons from DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"condor/internal/decision"
	"condor/internal/policy"
	"condor/internal/simulation"
)

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		machines   = flag.Int("machines", 23, "number of workstations")
		days       = flag.Int("days", 30, "observation window in days")
		seed       = flag.Int64("seed", 1987, "random seed")
		experiment = flag.String("experiment", "all",
			"what to print: all, table1, fig2..fig9, scalars")
		ablation = flag.String("ablation", "",
			"run an ablation: vacate, pacing, updown, history, periodic")
		policyNames = flag.String("policy", "",
			"scheduling policy to run (updown, fifo, busiest-first, backfill, deadline); a comma-separated list runs an A/B comparison")
		seeds   = flag.Int("seeds", 0, "aggregate over this many seeds (prints mean ± std) instead of one run")
		jsonOut = flag.String("json", "", "also write the full report as JSON to this file")
		csvOut  = flag.String("csv", "", "also write hourly+by-demand CSVs with this path prefix")
		explain = flag.Bool("explain", false,
			"audit every cycle's decision and show where the -policy pair's grants diverge (default pair: updown,fifo)")
	)
	flag.Parse()
	if *explain {
		names := []string{"updown", "fifo"}
		if *policyNames != "" {
			names = strings.Split(*policyNames, ",")
		}
		if err := runExplainAB(baseConfig(*machines, *days, *seed), names); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *policyNames != "" && strings.Contains(*policyNames, ",") {
		if err := runPolicyAB(baseConfig(*machines, *days, *seed), strings.Split(*policyNames, ",")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *seeds > 1 {
		cfg := baseConfig(*machines, *days, *seed)
		cfg.Policy.Name = *policyNames
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = *seed + int64(i)
		}
		fmt.Print(simulation.RunMany(cfg, list).String())
		return
	}
	if err := run(*machines, *days, *seed, *experiment, *ablation, *policyNames, *jsonOut, *csvOut); err != nil {
		log.Fatal(err)
	}
}

func baseConfig(machines, days int, seed int64) simulation.Config {
	cfg := simulation.DefaultConfig()
	cfg.Machines = machines
	cfg.Days = days
	cfg.Seed = seed
	return cfg
}

func run(machines, days int, seed int64, experiment, ablation, policyName, jsonOut, csvOut string) error {
	cfg := baseConfig(machines, days, seed)
	if policyName != "" {
		if _, err := policy.New(policyName); err != nil {
			return err
		}
		cfg.Policy.Name = policyName
	}
	if ablation != "" {
		return runAblation(cfg, ablation)
	}
	rep := simulation.Run(cfg)
	if jsonOut != "" {
		if err := writeFileWith(jsonOut, rep.WriteJSON); err != nil {
			return err
		}
	}
	if csvOut != "" {
		if err := writeFileWith(csvOut+"-hourly.csv", rep.WriteHourlyCSV); err != nil {
			return err
		}
		if err := writeFileWith(csvOut+"-by-demand.csv", rep.WriteByDemandCSV); err != nil {
			return err
		}
	}
	switch experiment {
	case "all":
		fmt.Print(rep.String())
	case "table1":
		fmt.Print(rep.Table1())
	case "fig2":
		fmt.Print(rep.Figure2())
	case "fig3":
		fmt.Print(rep.Figure3())
	case "fig4":
		fmt.Print(rep.Figure4())
	case "fig5":
		fmt.Print(rep.Figure5())
	case "fig6":
		fmt.Print(rep.Figure6())
	case "fig7":
		fmt.Print(rep.Figure7())
	case "fig8":
		fmt.Print(rep.Figure8())
	case "fig9":
		fmt.Print(rep.Figure9())
	case "scalars":
		printScalars(rep)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

func printScalars(rep *simulation.Report) {
	fmt.Printf("jobs: %d submitted, %d completed\n", rep.TotalJobs, rep.CompletedJobs)
	fmt.Printf("machine-hours: %.0f total, %.0f available (%.0f%%), %.0f consumed by Condor\n",
		rep.TotalMachineHours, rep.AvailableHours,
		100*rep.AvailableHours/rep.TotalMachineHours, rep.ConsumedHours)
	fmt.Printf("local utilization: %.0f%%\n", 100*rep.LocalUtilMean)
	fmt.Printf("wait ratio: all %.2f, light users %.2f\n",
		rep.MeanWaitRatioAll, rep.MeanWaitRatioLight)
	fmt.Printf("leverage: overall %.0f, short jobs %.0f\n",
		rep.OverallLeverage, rep.ShortJobLeverage)
	fmt.Printf("checkpoints/job %.2f; vacates %d; preemptions %d\n",
		rep.MeanCkptsPerJob, rep.Vacates, rep.Preempts)
	fmt.Printf("peak per-station placement burst: %d per cycle\n", rep.PeakStationBurst)
}

// runPolicyAB runs the same seeded month once per named policy and
// prints the §3 scalars side by side — every registered policy gets a
// free A/B against the paper's workload.
func runPolicyAB(base simulation.Config, names []string) error {
	for _, name := range names {
		name = strings.TrimSpace(name)
		if _, err := policy.New(name); err != nil {
			return err
		}
		cfg := base
		cfg.Policy.Name = name
		if name == "" {
			name = policy.DefaultPolicy
		}
		rep := simulation.Run(cfg)
		fmt.Printf("=== policy %s ===\n", name)
		printScalars(rep)
		fmt.Println()
	}
	return nil
}

// runExplainAB runs the same seeded workload once per policy with a
// decision-audit recorder attached, then walks the retained cycles and
// prints the first divergences: cycles where the two policies, looking
// at their own evolving pools, granted different (requester, machine)
// pairs. The full audit of each side is printed so the ranking and
// predicate trail explain *why* they diverged.
func runExplainAB(base simulation.Config, names []string) error {
	if len(names) != 2 {
		return fmt.Errorf("-explain compares exactly two policies, got %d", len(names))
	}
	type side struct {
		name   string
		rec    *decision.Recorder
		cycles map[uint64]*decision.CycleAudit
	}
	sides := make([]*side, 2)
	// The month is ~21k cycles; retain them all so early divergences
	// (where the policies first split) are still in the ring.
	capacity := (base.Days + 10) * 24 * 60
	for i, name := range names {
		name = strings.TrimSpace(name)
		if _, err := policy.New(name); err != nil {
			return err
		}
		cfg := base
		cfg.Policy.Name = name
		cfg.Audit = decision.NewRecorder(capacity)
		simulation.Run(cfg)
		if name == "" {
			name = policy.DefaultPolicy
		}
		audits := cfg.Audit.Snapshot()
		s := &side{name: name, rec: cfg.Audit,
			cycles: make(map[uint64]*decision.CycleAudit, len(audits))}
		for j := range audits {
			s.cycles[audits[j].Cycle] = &audits[j]
		}
		sides[i] = s
	}

	grantKey := func(a *decision.CycleAudit) string {
		parts := make([]string, 0, len(a.Grants))
		for _, g := range a.Grants {
			parts = append(parts, g.Requester+"→"+g.Exec)
		}
		sort.Strings(parts)
		return strings.Join(parts, " ")
	}
	total, diverged, shown := 0, 0, 0
	const showMax = 3
	for c := uint64(1); ; c++ {
		a, okA := sides[0].cycles[c]
		b, okB := sides[1].cycles[c]
		if !okA || !okB {
			if !okA && !okB {
				break
			}
			continue
		}
		total++
		ka, kb := grantKey(a), grantKey(b)
		if ka == kb {
			continue
		}
		diverged++
		if shown < showMax {
			shown++
			fmt.Printf("=== divergence %d at cycle %d ===\n", shown, c)
			fmt.Printf("%s grants: %s\n%s grants: %s\n\n", sides[0].name, orNone(ka), sides[1].name, orNone(kb))
			fmt.Printf("--- %s ---\n%s\n--- %s ---\n%s\n", sides[0].name,
				decision.RenderCycle(a), sides[1].name, decision.RenderCycle(b))
		}
	}
	fmt.Printf("%s vs %s: %d of %d audited cycles granted differently (%d shown in full)\n",
		sides[0].name, sides[1].name, diverged, total, shown)
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func runAblation(base simulation.Config, which string) error {
	type variant struct {
		name string
		cfg  simulation.Config
	}
	var variants []variant
	switch which {
	case "vacate":
		kill := base
		kill.Vacate = simulation.VacateKillImmediately
		kill.PeriodicCheckpoint = 30 * time.Minute
		variants = []variant{{"suspend-then-vacate (paper)", base}, {"kill-immediately + 30m periodic ckpt (§4)", kill}}
	case "pacing":
		burst := base
		burst.Policy = policy.DefaultConfig()
		burst.Policy.MaxGrantsPerCycle = 16
		burst.Policy.AllowBurstPerStation = true
		variants = []variant{{"paced placements (paper §4)", base}, {"unpaced bursts", burst}}
	case "updown":
		fifo := base
		fifo.FIFO = true
		variants = []variant{{"Up-Down (paper)", base}, {"FIFO grants", fifo}}
	case "history":
		hist := base
		hist.Policy = policy.DefaultConfig()
		hist.Policy.Placement = policy.PlaceHistory
		variants = []variant{{"first-fit placement (paper)", base}, {"availability-history placement (§5.1)", hist}}
	case "periodic":
		per := base
		per.PeriodicCheckpoint = time.Hour
		variants = []variant{{"checkpoint on vacate only (paper)", base}, {"+ hourly periodic checkpoints (§4)", per}}
	default:
		return fmt.Errorf("unknown ablation %q", which)
	}
	for _, v := range variants {
		rep := simulation.Run(v.cfg)
		fmt.Printf("=== %s ===\n", v.name)
		printScalars(rep)
		if rep.WorkLostHours > 0 {
			fmt.Printf("work redone: %.1f h\n", rep.WorkLostHours)
		}
		fmt.Println()
	}
	return nil
}
