package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileMonitor(t *testing.T) {
	dir := t.TempDir()
	marker := filepath.Join(dir, "owner")
	m := fileMonitor{path: marker}
	if m.OwnerActive() {
		t.Fatal("active with no marker file")
	}
	if err := os.WriteFile(marker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if !m.OwnerActive() {
		t.Fatal("inactive despite marker file")
	}
	os.Remove(marker)
	if m.OwnerActive() {
		t.Fatal("still active after marker removed")
	}
}

func TestFileMonitorEmptyPathMeansIdle(t *testing.T) {
	m := fileMonitor{}
	if m.OwnerActive() {
		t.Fatal("empty path must mean always idle")
	}
}

func TestBuildMonitor(t *testing.T) {
	for _, kind := range []string{"", "file", "load", "never"} {
		if _, err := buildMonitor(stationOpts{monitor: kind}); err != nil {
			t.Fatalf("monitor %q: %v", kind, err)
		}
	}
	if _, err := buildMonitor(stationOpts{monitor: "psychic"}); err == nil {
		t.Fatal("unknown monitor accepted")
	}
}
