// Command condor-stationd runs one workstation's Condor daemon: the
// local scheduler with its background queue, the starter that hosts
// foreign jobs while the owner is away, and the shadows serving this
// station's own remote jobs.
//
// Owner activity is signalled by the existence of a marker file
// (-owner-file): touch it to "sit down" at the workstation, remove it to
// leave. Real deployments would plug a keyboard/load monitor in instead;
// the marker keeps the daemon scriptable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/machine"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/telemetry"
)

// fileMonitor reports the owner active while the marker file exists.
type fileMonitor struct{ path string }

// OwnerActive implements machine.Monitor.
func (m fileMonitor) OwnerActive() bool {
	if m.path == "" {
		return false
	}
	_, err := os.Stat(m.path)
	return err == nil
}

var _ machine.Monitor = fileMonitor{}

func main() {
	var (
		name      = flag.String("name", hostnameDefault(), "station name")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		coordAddr = flag.String("coordinator", "", "coordinator address to register with")
		ownerFile = flag.String("owner-file", "", "marker file signalling owner presence")
		monitor   = flag.String("monitor", "file", "owner monitor: file (marker file), load (/proc/loadavg), never (always idle)")
		maxBusy   = flag.Float64("max-cpu-busy", 0.25, "load monitor: normalized CPU above this means owner active")
		scan      = flag.Duration("scan", 30*time.Second, "owner-activity scan interval")
		grace     = flag.Duration("grace", 5*time.Minute, "suspend grace before vacate (§4)")
		pacing    = flag.Duration("pacing", 2*time.Minute, "min gap between placements (§4)")
		spoolDir  = flag.String("spool", "", "directory for durable checkpoints (default: in-memory)")
		diskCap   = flag.Int64("disk", 0, "checkpoint store capacity in bytes (0 = unlimited)")
		kill      = flag.Bool("kill-immediately", false, "kill on owner return instead of suspending")
		periodic  = flag.Duration("periodic-checkpoint", 0, "periodic checkpoint interval (0 = off)")
		jobDir    = flag.String("jobdir", "", "directory for jobs' real file I/O (default: per-job in-memory)")
		httpAddr  = flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")
	)
	flag.Parse()
	if err := run(stationOpts{
		name: *name, listen: *listen, coord: *coordAddr, ownerFile: *ownerFile,
		scan: *scan, grace: *grace, pacing: *pacing, spool: *spoolDir,
		disk: *diskCap, kill: *kill, periodic: *periodic, jobDir: *jobDir,
		monitor: *monitor, maxBusy: *maxBusy, httpAddr: *httpAddr,
	}); err != nil {
		log.Fatal(err)
	}
}

type stationOpts struct {
	name, listen, coord, ownerFile, spool string
	jobDir, monitor, httpAddr             string
	maxBusy                               float64
	scan, grace, pacing, periodic         time.Duration
	disk                                  int64
	kill                                  bool
}

// buildMonitor selects the owner-activity source.
func buildMonitor(o stationOpts) (machine.Monitor, error) {
	switch o.monitor {
	case "", "file":
		return fileMonitor{path: o.ownerFile}, nil
	case "load":
		return machine.NewLoadAvgMonitor(machine.ThresholdConfig{
			MaxCPUBusy: o.maxBusy,
		}), nil
	case "never":
		return machine.NewScriptedMonitor(false), nil
	default:
		return nil, fmt.Errorf("unknown monitor %q (want file, load, never)", o.monitor)
	}
}

func hostnameDefault() string {
	if h, err := os.Hostname(); err == nil {
		return h
	}
	return "station"
}

func run(o stationOpts) error {
	var store ckpt.Store
	if o.spool != "" {
		dir, err := ckpt.NewDirStore(o.spool, o.disk)
		if err != nil {
			return err
		}
		store = dir
	} else if o.disk > 0 {
		store = ckpt.NewMemStore(o.disk, true)
	}
	policy := ru.VacateSuspendFirst
	if o.kill {
		policy = ru.VacateKillImmediately
	}
	var hosts schedd.HostFactory
	if o.jobDir != "" {
		// Jobs share one sandbox rooted at jobDir: their reads and
		// writes hit the submitting machine's real files via the shadow.
		hosts = func(jobID, owner string) cvm.SyscallHandler {
			h, err := cvm.NewOSHost(o.jobDir)
			if err != nil {
				return cvm.NewMemHost() // degrade to in-memory
			}
			return h
		}
	}
	mon, err := buildMonitor(o)
	if err != nil {
		return err
	}
	st, err := schedd.New(schedd.Config{
		Name:       o.name,
		ListenAddr: o.listen,
		Monitor:    mon,
		Store:      store,
		Hosts:      hosts,
		Starter: ru.StarterConfig{
			ScanInterval:       o.scan,
			SuspendGrace:       o.grace,
			Policy:             policy,
			PeriodicCheckpoint: o.periodic,
		},
		PlacementPacing: o.pacing,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("condor-stationd %q listening on %s\n", st.Name(), st.Addr())
	if o.httpAddr != "" {
		srv, err := telemetry.Serve(o.httpAddr, telemetry.Default)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	if o.coord != "" {
		if err := st.Register(o.coord); err != nil {
			return err
		}
		fmt.Println("registered with coordinator at", o.coord)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}
