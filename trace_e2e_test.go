package condor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"condor/internal/telemetry"
	"condor/internal/trace"
)

// TestTraceEndToEndWithMigration reconstructs one job's complete span
// tree from the /traces endpoint: submitted on one station, granted by
// the coordinator, placed and run remotely, evicted when that owner
// returns (checkpoint + vacate), resumed on a second station, and run
// to completion — with every span sharing a single trace ID and the
// parent links forming the expected tree.
func TestTraceEndToEndWithMigration(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A distinct station prefix keeps this pool's job IDs from matching
	// traces recorded by other tests against the process-global recorder.
	p, err := NewPool(PoolConfig{
		Stations:      3,
		StationPrefix: "tr",
		Fast:          true,
		SliceDelay:    200 * time.Microsecond,
		StepsPerSlice: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	jobID, err := p.Submit("tr0", "alice", SumProgram(5_000_000))
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first placement, then bring that owner back to force
	// checkpoint → vacate → resume elsewhere.
	var firstHost string
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := p.Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobRunning {
			firstHost = st.ExecHost
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p.SetOwnerActive(firstHost, true); err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(jobID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobCompleted {
		t.Fatalf("status = %+v", status)
	}
	if status.ExecHost == firstHost {
		t.Fatalf("job finished on %s where the owner is active", firstHost)
	}

	// Spans are finished asynchronously relative to Wait (the exec span
	// closes after the done RPC returns to the execution side), so poll
	// /traces until the tree is complete.
	want := []string{"submit", "grant", "place", "exec", "syscall", "shadow-syscall", "checkpoint", "vacate", "complete"}
	var page trace.Page
	deadline = time.Now().Add(10 * time.Second)
	for {
		page = fetchTraces(t, srv.Addr(), jobID)
		if hasSpanNames(page, want) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !hasSpanNames(page, want) {
		t.Fatalf("span tree incomplete; want names %v, got:\n%s", want, spanDump(page))
	}

	// One trace ID across every span of the job.
	traceID := page.Spans[0].TraceID
	byID := map[string]trace.SpanJSON{}
	byName := map[string][]trace.SpanJSON{}
	for _, s := range page.Spans {
		if s.TraceID != traceID {
			t.Fatalf("span %s/%s has trace %s, want single trace %s\n%s",
				s.Name, s.SpanID, s.TraceID, traceID, spanDump(page))
		}
		byID[s.SpanID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}

	// Tree shape: submit is the root; grant and both places hang off it;
	// each exec hangs off a place; syscall/checkpoint/vacate/complete all
	// hang off an exec; shadow-syscall mirrors a syscall on the home side.
	if n := len(byName["submit"]); n != 1 {
		t.Fatalf("submit spans = %d, want 1\n%s", n, spanDump(page))
	}
	root := byName["submit"][0]
	if root.Parent != "" {
		t.Fatalf("submit span has parent %s, want root", root.Parent)
	}
	if root.Station != "tr0" || root.Job != jobID {
		t.Fatalf("submit span = %+v, want station tr0 job %s", root, jobID)
	}
	parentName := func(s trace.SpanJSON) string { return byID[s.Parent].Name }
	for _, g := range byName["grant"] {
		if g.Parent != root.SpanID {
			t.Errorf("grant span parent = %q (%s), want submit", g.Parent, parentName(g))
		}
		if _, ok := g.Attrs["incarnation"]; !ok {
			t.Errorf("grant span missing incarnation attr: %+v", g)
		}
		if g.Attrs["requester"] != "tr0" {
			t.Errorf("grant span requester = %q, want tr0", g.Attrs["requester"])
		}
	}
	if n := len(byName["place"]); n < 2 {
		t.Fatalf("place spans = %d, want ≥ 2 (migration re-places)\n%s", n, spanDump(page))
	}
	for _, s := range byName["place"] {
		if s.Parent != root.SpanID {
			t.Errorf("place span parent = %s (%s), want submit", s.Parent, parentName(s))
		}
	}
	execStations := map[string]bool{}
	for _, s := range byName["exec"] {
		if parentName(s) != "place" {
			t.Errorf("exec span parent = %s (%s), want a place span", s.Parent, parentName(s))
		}
		execStations[s.Station] = true
	}
	if len(execStations) < 2 {
		t.Errorf("exec spans ran on stations %v, want ≥ 2 distinct (cross-station migration)", execStations)
	}
	for _, name := range []string{"syscall", "checkpoint", "vacate"} {
		for _, s := range byName[name] {
			if parentName(s) != "exec" {
				t.Errorf("%s span parent = %s (%s), want an exec span", name, s.Parent, parentName(s))
			}
		}
	}
	for _, s := range byName["shadow-syscall"] {
		if parentName(s) != "syscall" {
			t.Errorf("shadow-syscall parent = %s (%s), want a syscall span", s.Parent, parentName(s))
		}
		if s.Station != "" && s.Station != "tr0" {
			t.Errorf("shadow-syscall on station %q, want home side", s.Station)
		}
	}
	for _, s := range byName["complete"] {
		if parentName(s) != "exec" {
			t.Errorf("complete span parent = %s (%s), want an exec span", s.Parent, parentName(s))
		}
	}

	// The eventlog is stitched to the same trace.
	events, err := p.History("tr0", jobID, 0)
	if err != nil {
		t.Fatal(err)
	}
	stitched := 0
	for _, e := range events {
		if e.TraceID == traceID {
			stitched++
		}
	}
	if stitched == 0 {
		t.Errorf("no tr0 events carry trace %s; events: %v", traceID, events)
	}

	// The waterfall renderer accepts the real page and leads with the
	// submit root.
	wf := trace.RenderWaterfall(page)
	if !strings.Contains(wf, "trace "+traceID) || !strings.Contains(wf, "submit@tr0") {
		t.Errorf("waterfall missing header or root:\n%s", wf)
	}
}

// fetchTraces GETs /traces?job= from a live telemetry server.
func fetchTraces(t *testing.T, addr, jobID string) trace.Page {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/traces?job=" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/traces status = %s", resp.Status)
	}
	var page trace.Page
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func hasSpanNames(p trace.Page, names []string) bool {
	have := map[string]bool{}
	for _, s := range p.Spans {
		have[s.Name] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

func spanDump(p trace.Page) string {
	var b strings.Builder
	for _, s := range p.Spans {
		fmt.Fprintf(&b, "  %s parent=%s name=%s station=%s job=%s\n",
			s.SpanID, s.Parent, s.Name, s.Station, s.Job)
	}
	return b.String()
}
