// The composable scheduling pipeline. One decision cycle flows through
// four pluggable stages, mirroring the predicates → prioritizers →
// extenders shape of modern cluster schedulers:
//
//	Predicates  filter which machines may serve (idle, disk, health,
//	            reservation match).
//	Ranker      orders the requesting stations best-first (Up-Down,
//	            FIFO, busiest-first, backfill, deadline, ...).
//	Placer      orders the admitted machines best-first (first-fit,
//	            availability-history, data-locality stub).
//	Preemptor   picks victims when demand outlives idle capacity.
//
// A Policy is a named composition of the four; the registry
// (registry.go) maps policy names to factories so the coordinator and
// simulator select one by configuration. The hard-wired seed algorithm
// survives as the "updown" policy, and the package-level Decide keeps
// its exact behaviour — the golden fixtures under testdata/ pin it.
package policy

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"condor/internal/decision"
	"condor/internal/proto"
)

// Pool is the read-only cluster snapshot a pipeline stage sees.
type Pool struct {
	Stations []StationView
	byName   map[string]StationView
}

func newPool(stations []StationView) *Pool {
	byName := make(map[string]StationView, len(stations))
	for _, s := range stations {
		byName[s.Name] = s
	}
	return &Pool{Stations: stations, byName: byName}
}

// View returns the named station's snapshot.
func (p *Pool) View(name string) (StationView, bool) {
	s, ok := p.byName[name]
	return s, ok
}

// Predicate decides whether a machine may serve a requester this cycle.
type Predicate interface {
	Name() string
	// Admit is called twice per machine: once with req == "" while the
	// candidate set is built (admit when the machine could serve at
	// least one requester) and again with the concrete requester during
	// placement. Requester-independent predicates ignore req.
	Admit(m *StationView, req string, cfg *Config) bool
}

// Ranker orders the requesting stations best-first.
type Ranker interface {
	Name() string
	// Rank orders wanting best-first. wanting arrives in sorted-name
	// order; implementations must not mutate it.
	Rank(wanting []string, pool *Pool, prio Prioritizer, cfg *Config) []string
	// Better reports whether a strictly outranks b — the relation every
	// preemption is judged by.
	Better(a, b string, pool *Pool, prio Prioritizer, cfg *Config) bool
}

// Placer orders the admitted candidate machines best-first.
type Placer interface {
	Name() string
	// Order may sort candidates in place (the slice is the pipeline's
	// own copy) but must not mutate the views; it returns machine names.
	Order(candidates []StationView, cfg *Config) []string
}

// PreemptContext is everything a Preemptor sees after the grant stage.
type PreemptContext struct {
	Pool *Pool
	// Requesters is the ranked requester list; Granted marks those
	// already served this cycle.
	Requesters []string
	Granted    map[string]bool
	// LeftoverIdle is the admitted machines not granted, still in
	// placement order.
	LeftoverIdle []string
	// Better is the ranker's strict-outranking relation.
	Better func(a, b string) bool
	Cfg    *Config
	// Audit, when non-nil, receives the preemptor's victim comparisons.
	// All Builder methods are nil-receiver safe, so implementations may
	// call them unconditionally.
	Audit *decision.Builder
}

// Preemptor selects victims. Implementations must respect
// Cfg.MaxPreemptsPerCycle and only evict foreign jobs whose owner the
// beneficiary strictly outranks under ctx.Better.
type Preemptor interface {
	Name() string
	Preempts(ctx *PreemptContext) []Preempt
}

// Policy is a named composition of the four pipeline stages.
type Policy struct {
	name       string
	Predicates []Predicate
	Ranker     Ranker
	Placer     Placer
	Preemptor  Preemptor
	met        *policyMetrics
}

// Name returns the registry name the policy was built under.
func (p *Policy) Name() string { return p.name }

func (p *Policy) admit(m *StationView, req string, cfg *Config) bool {
	return p.admitIdx(m, req, cfg) < 0
}

// admitIdx runs the predicate chain and returns the index of the first
// rejecting predicate, or -1 when every predicate admits — so the audit
// and the per-predicate deny counters know *which* gate closed without
// a second pass.
func (p *Policy) admitIdx(m *StationView, req string, cfg *Config) int {
	for i, pred := range p.Predicates {
		if !pred.Admit(m, req, cfg) {
			return i
		}
	}
	return -1
}

// rejection assembles the audit record for predicate idx rejecting m.
// Only called on the (cold) rejection path with a live builder.
func (p *Policy) rejection(m *StationView, req string, idx int, cfg *Config) decision.Rejection {
	r := decision.Rejection{Station: m.Name, Requester: req, Predicate: p.Predicates[idx].Name()}
	if ex, ok := p.Predicates[idx].(Explainer); ok {
		r.Threshold, r.Observed = ex.Explain(m, req, cfg)
	}
	return r
}

// requesterEligible gates which stations may ask for capacity: a
// station the coordinator grades unhealthy neither receives grants nor
// triggers preemptions. Zero Health (live coordinator pre-filters, old
// fixtures, simulator) means no grading — eligible.
func requesterEligible(s *StationView) bool {
	return s.Health == 0 || s.Health == proto.HealthHealthy
}

// Better reports whether a strictly outranks b under this policy's
// effective ordering — the relation its preemptions are judged by.
// Exposed for the conformance harness.
func (p *Policy) Better(a, b string, stations []StationView, prio Prioritizer, cfg Config) bool {
	cfg.sanitize()
	return p.Ranker.Better(a, b, newPool(stations), prio, &cfg)
}

// Decide runs one allocation cycle through the pipeline. It never
// mutates its inputs. The control flow is exactly the seed algorithm's:
// rank requesters, grant admitted machines in placement order with
// per-station pacing (§4), then — only when no unreserved idle capacity
// remains — let the preemptor evict outranked foreign jobs (§2.4).
func (p *Policy) Decide(stations []StationView, prio Prioritizer, cfg Config) Decision {
	return p.DecideAudited(stations, prio, cfg, nil)
}

// DecideAudited is Decide with an optional decision audit: when aud is
// non-nil, every stage records why it did what it did — which predicate
// rejected each machine (threshold vs observed), each requester's rank
// score and feature breakdown, the placement order, and the preemptor's
// victim comparisons. The audit is strictly observational: a nil and a
// non-nil builder produce identical Decisions (the conformance suite
// asserts this for every registered policy), and the nil path costs one
// branch per hook — no allocations beyond Decide's own.
func (p *Policy) DecideAudited(stations []StationView, prio Prioritizer, cfg Config, aud *decision.Builder) Decision {
	start := time.Now()
	cfg.sanitize()
	pool := newPool(stations)
	aud.Begin(p.name, len(stations))

	// Requesters, best priority first. Stations keep wanting capacity
	// for every waiting job, but receive at most one grant per cycle:
	// placement costs land on the requester's machine (§4), so pacing is
	// per-station as well as global.
	var wanting []string
	for i := range stations {
		if stations[i].WaitingJobs > 0 && requesterEligible(&stations[i]) {
			wanting = append(wanting, stations[i].Name)
		}
	}
	sort.Strings(wanting) // deterministic base order before ranking
	requesters := p.Ranker.Rank(wanting, pool, prio, &cfg)
	p.met.requesters.Add(uint64(len(requesters)))
	if aud != nil {
		p.auditRank(requesters, pool, prio, aud)
	}

	// Candidate machines: every predicate must admit, requester-blind.
	// A rejection here applies to every requester; it is what the
	// per-predicate deny counters count and what /decisions reports
	// with an empty requester.
	var candidates []StationView
	for i := range stations {
		if idx := p.admitIdx(&stations[i], "", &cfg); idx >= 0 {
			if idx < len(p.met.denied) {
				p.met.denied[idx].Inc()
			}
			if aud != nil {
				aud.Reject(p.rejection(&stations[i], "", idx, &cfg))
			}
		} else {
			candidates = append(candidates, stations[i])
		}
	}
	p.met.candidates.Add(uint64(len(candidates)))
	p.met.filtered.Add(uint64(len(stations) - len(candidates)))
	idle := p.Placer.Order(candidates, &cfg)
	if aud != nil {
		aud.Idle(idle)
	}

	var d Decision
	granted := make(map[string]bool, len(requesters))
	waitingLeft := make(map[string]int, len(stations))
	for _, s := range stations {
		waitingLeft[s.Name] = s.WaitingJobs
	}
	// With bursting allowed, keep cycling through the ranked requesters
	// until grants or machines run out.
	for pass := 0; ; pass++ {
		grantedThisPass := false
		for _, req := range requesters {
			if len(d.Grants) >= cfg.MaxGrantsPerCycle || len(idle) == 0 {
				break
			}
			if granted[req] && !cfg.AllowBurstPerStation {
				continue
			}
			if waitingLeft[req] <= 0 {
				continue
			}
			pick := -1
			for i, exec := range idle {
				m := pool.byName[exec]
				if idx := p.admitIdx(&m, req, &cfg); idx >= 0 {
					// Placement-phase rejection: this machine refused
					// this concrete requester (typically a reservation
					// held for someone else). Audit-only — the deny
					// counters count the requester-blind phase.
					if aud != nil {
						aud.Reject(p.rejection(&m, req, idx, &cfg))
					}
					continue
				}
				pick = i
				break
			}
			if pick < 0 {
				continue
			}
			exec := idle[pick]
			idle = append(idle[:pick], idle[pick+1:]...)
			granted[req] = true
			waitingLeft[req]--
			grantedThisPass = true
			d.Grants = append(d.Grants, Grant{Requester: req, Exec: exec})
			aud.Grant(req, exec)
		}
		if !cfg.AllowBurstPerStation || !grantedThisPass ||
			len(d.Grants) >= cfg.MaxGrantsPerCycle || len(idle) == 0 {
			break
		}
	}
	if aud != nil {
		for _, req := range requesters {
			if granted[req] {
				continue
			}
			reason := "no admissible idle machine"
			switch {
			case len(d.Grants) >= cfg.MaxGrantsPerCycle:
				reason = "grant cap reached (MaxGrantsPerCycle)"
			case len(candidates) == 0:
				reason = "no candidate machines (all filtered by predicates)"
			case len(idle) == 0:
				reason = "all admitted machines already granted"
			}
			aud.Unserved(req, reason)
		}
	}
	d.Preempts = p.Preemptor.Preempts(&PreemptContext{
		Pool:         pool,
		Requesters:   requesters,
		Granted:      granted,
		LeftoverIdle: idle,
		Better: func(a, b string) bool {
			return p.Ranker.Better(a, b, pool, prio, &cfg)
		},
		Cfg:   &cfg,
		Audit: aud,
	})
	p.met.grants.Add(uint64(len(d.Grants)))
	p.met.preempts.Add(uint64(len(d.Preempts)))
	p.met.decide.Observe(time.Since(start).Seconds())
	return d
}

// Scorer is the optional Prioritizer extension the audit uses to attach
// a numeric rank score to each requester: updown.Table exposes its
// schedule index through exactly this shape (lower wins).
type Scorer interface {
	Index(name string) float64
}

// auditRank records each ranked requester with its prioritizer score
// (when the Prioritizer is a Scorer) and the station-view features the
// rankers read — the breakdown behind "why is my station ranked there".
func (p *Policy) auditRank(requesters []string, pool *Pool, prio Prioritizer, aud *decision.Builder) {
	sc, _ := prio.(Scorer)
	for i, req := range requesters {
		e := decision.RankEntry{Requester: req, Position: i}
		if sc != nil {
			e.Score, e.HasScore = sc.Index(req), true
		}
		m := pool.byName[req]
		e.Features = append(e.Features,
			decision.Feature{Key: "waiting", Value: strconv.Itoa(m.WaitingJobs)},
			decision.Feature{Key: "held", Value: strconv.Itoa(m.HeldMachines)})
		if m.ShortestJob > 0 {
			e.Features = append(e.Features,
				decision.Feature{Key: "shortest-job", Value: m.ShortestJob.String()})
		}
		if !m.EarliestDeadline.IsZero() {
			e.Features = append(e.Features,
				decision.Feature{Key: "deadline", Value: m.EarliestDeadline.Format(time.RFC3339)})
		}
		aud.Requester(e)
	}
}

// ---- Standard predicates -------------------------------------------

// Explainer is the optional Predicate extension behind the audit's
// threshold-vs-observed detail: a predicate that can articulate the
// comparison it failed returns both sides as short strings. Explain is
// only called on the rejection path, after Admit returned false.
type Explainer interface {
	Explain(m *StationView, req string, cfg *Config) (threshold, observed string)
}

// IdlePredicate admits only machines with no owner or foreign activity.
type IdlePredicate struct{}

func (IdlePredicate) Name() string { return "idle" }

// Admit implements Predicate.
func (IdlePredicate) Admit(m *StationView, _ string, _ *Config) bool {
	return m.State == proto.StationIdle
}

// Explain implements Explainer.
func (IdlePredicate) Explain(m *StationView, _ string, _ *Config) (string, string) {
	return "state == idle", "state " + m.State.String()
}

// MinDiskPredicate enforces §4's free-space requirement: a station
// whose disk cannot hold a checkpoint plus executable is unusable.
type MinDiskPredicate struct{}

func (MinDiskPredicate) Name() string { return "min-disk" }

// Admit implements Predicate.
func (MinDiskPredicate) Admit(m *StationView, _ string, cfg *Config) bool {
	return cfg.MinDiskBytes <= 0 || m.DiskFree >= cfg.MinDiskBytes
}

// Explain implements Explainer.
func (MinDiskPredicate) Explain(m *StationView, _ string, cfg *Config) (string, string) {
	return fmt.Sprintf("disk >= %d bytes", cfg.MinDiskBytes),
		fmt.Sprintf("%d bytes free", m.DiskFree)
}

// HealthPredicate blocks grants to machines the health grader marked
// non-healthy. Zero Health means ungraded (eligible) so snapshots from
// pre-health callers keep their old meaning.
type HealthPredicate struct{}

func (HealthPredicate) Name() string { return "health" }

// Admit implements Predicate.
func (HealthPredicate) Admit(m *StationView, _ string, _ *Config) bool {
	return m.Health == 0 || m.Health == proto.HealthHealthy
}

// Explain implements Explainer.
func (HealthPredicate) Explain(m *StationView, _ string, _ *Config) (string, string) {
	return "health == healthy", "health " + m.Health.String()
}

// ReservationPredicate enforces §5.3 reservations: a reserved machine
// serves only its holder. With no concrete requester it admits — a
// reserved machine is still a candidate for its holder.
type ReservationPredicate struct{}

func (ReservationPredicate) Name() string { return "reservation" }

// Admit implements Predicate.
func (ReservationPredicate) Admit(m *StationView, req string, _ *Config) bool {
	if req == "" {
		return true
	}
	return m.ReservedFor == "" || m.ReservedFor == req
}

// Explain implements Explainer.
func (ReservationPredicate) Explain(m *StationView, req string, _ *Config) (string, string) {
	return "reserved for " + m.ReservedFor, "requester " + req
}

// StandardPredicates is the filter chain every built-in policy uses.
func StandardPredicates() []Predicate {
	return []Predicate{IdlePredicate{}, MinDiskPredicate{}, HealthPredicate{}, ReservationPredicate{}}
}

// ---- Standard placers ----------------------------------------------

// FirstFitPlacer hands out idle machines in stable name order.
type FirstFitPlacer struct{}

func (FirstFitPlacer) Name() string { return "first-fit" }

// Order implements Placer.
func (FirstFitPlacer) Order(candidates []StationView, _ *Config) []string {
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Name < candidates[j].Name })
	return viewNames(candidates)
}

// HistoryPlacer prefers machines with long availability history — the
// §5.1 proposal: stations with long past idle intervals tend to stay
// idle, so long jobs suffer fewer preemptions there.
type HistoryPlacer struct{}

func (HistoryPlacer) Name() string { return "history" }

// Order implements Placer.
func (HistoryPlacer) Order(candidates []StationView, _ *Config) []string {
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].AvgIdleLen != candidates[j].AvgIdleLen {
			return candidates[i].AvgIdleLen > candidates[j].AvgIdleLen
		}
		if candidates[i].IdleStreak != candidates[j].IdleStreak {
			return candidates[i].IdleStreak > candidates[j].IdleStreak
		}
		return candidates[i].Name < candidates[j].Name
	})
	return viewNames(candidates)
}

// DataLocalityPlacer is the ROADMAP item-3 stub: prefer machines that
// already cache the job's input bytes so remote syscalls stop shipping
// every read home to the shadow. Until stations report cached datasets
// it ranks by CachedBytes (today always zero in live snapshots) and
// falls back to first-fit, so it is safe to select but not yet useful.
type DataLocalityPlacer struct{}

func (DataLocalityPlacer) Name() string { return "data-locality" }

// Order implements Placer.
func (DataLocalityPlacer) Order(candidates []StationView, _ *Config) []string {
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].CachedBytes != candidates[j].CachedBytes {
			return candidates[i].CachedBytes > candidates[j].CachedBytes
		}
		return candidates[i].Name < candidates[j].Name
	})
	return viewNames(candidates)
}

// ConfigPlacer dispatches on Config.Placement, preserving the seed
// behaviour where the placement strategy is part of the cycle config
// rather than the policy identity.
type ConfigPlacer struct{}

func (ConfigPlacer) Name() string { return "config" }

// Order implements Placer.
func (ConfigPlacer) Order(candidates []StationView, cfg *Config) []string {
	switch cfg.Placement {
	case PlaceHistory:
		return HistoryPlacer{}.Order(candidates, cfg)
	case PlaceDataLocality:
		return DataLocalityPlacer{}.Order(candidates, cfg)
	default:
		return FirstFitPlacer{}.Order(candidates, cfg)
	}
}

func viewNames(views []StationView) []string {
	out := make([]string, len(views))
	for i := range views {
		out[i] = views[i].Name
	}
	return out
}

// ---- Standard preemptor --------------------------------------------

// OutrankPreemptor is the paper's §2.4 rule: preempt only when no
// generally-usable idle capacity remains (machines reserved for someone
// else are spoken for, §5.3), evicting for each unserved requester the
// foreign job whose owner has the worst priority among those the
// requester strictly outranks.
type OutrankPreemptor struct{}

func (OutrankPreemptor) Name() string { return "outrank" }

// Preempts implements Preemptor.
func (OutrankPreemptor) Preempts(ctx *PreemptContext) []Preempt {
	unreservedIdle := 0
	for _, exec := range ctx.LeftoverIdle {
		if m, ok := ctx.Pool.View(exec); ok && m.ReservedFor == "" {
			unreservedIdle++
		}
	}
	if unreservedIdle > 0 || ctx.Cfg.MaxPreemptsPerCycle == 0 {
		return nil
	}
	var out []Preempt
	for _, req := range ctx.Requesters {
		if len(out) >= ctx.Cfg.MaxPreemptsPerCycle {
			break
		}
		if ctx.Granted[req] {
			continue
		}
		ctx.Audit.BeginPreempt(req)
		victim, ok := pickVictimCtx(ctx, req, out)
		if !ok {
			ctx.Audit.PreemptOutcome("", "", "")
			break // best requester can preempt nobody; worse ones cannot either
		}
		ctx.Audit.PreemptOutcome(victim.Name, victim.ForeignOwner, victim.ForeignJob)
		out = append(out, Preempt{
			Exec:        victim.Name,
			JobID:       victim.ForeignJob,
			Victim:      victim.ForeignOwner,
			Beneficiary: req,
		})
	}
	return out
}

// pickVictimCtx finds the claimed station whose foreign job's owner has
// the worst priority among those the requester strictly outranks,
// skipping stations already being preempted this cycle and the
// requester's own jobs.
func pickVictimCtx(ctx *PreemptContext, requester string, already []Preempt) (StationView, bool) {
	busy := make(map[string]bool, len(already))
	for _, p := range already {
		busy[p.Exec] = true
	}
	var victim StationView
	found := false
	for _, s := range ctx.Pool.Stations {
		if s.State != proto.StationClaimed || s.ForeignJob == "" || busy[s.Name] {
			continue
		}
		if s.ForeignOwner == requester {
			continue // never preempt yourself to serve yourself
		}
		if !ctx.Better(requester, s.ForeignOwner) {
			ctx.Audit.PreemptCompared(s.Name, s.ForeignOwner, false)
			continue
		}
		ctx.Audit.PreemptCompared(s.Name, s.ForeignOwner, true)
		if !found || ctx.Better(victim.ForeignOwner, s.ForeignOwner) {
			// s's owner is worse than the current victim's owner:
			// prefer evicting the worst-priority holder.
			victim = s
			found = true
		}
	}
	return victim, found
}
