package policy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"condor/internal/proto"
	"condor/internal/updown"
)

// randomPool builds an arbitrary-but-consistent pool state.
func randomPool(r *rand.Rand) ([]StationView, *updown.Table) {
	n := 3 + r.Intn(20)
	tab := updown.NewTable(updown.DefaultConfig())
	views := make([]StationView, 0, n)
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("ws%02d", i))
		tab.Touch(names[i])
	}
	for i := 0; i < n; i++ {
		v := StationView{Name: names[i]}
		switch r.Intn(4) {
		case 0:
			v.State = proto.StationIdle
		case 1:
			v.State = proto.StationOwner
		case 2:
			v.State = proto.StationClaimed
			v.ForeignOwner = names[r.Intn(n)]
			v.ForeignJob = v.ForeignOwner + "/1"
		case 3:
			v.State = proto.StationSuspended
			v.ForeignOwner = names[r.Intn(n)]
			v.ForeignJob = v.ForeignOwner + "/1"
		}
		v.WaitingJobs = r.Intn(5)
		if r.Intn(4) == 0 {
			v.ReservedFor = names[r.Intn(n)]
		}
		// Pipeline-stage inputs: disk pressure, graded health, queue
		// shape for backfill, deadlines for EDF, cached bytes for the
		// data-locality stub. Zero values stay common so the seed paths
		// keep getting exercised too.
		v.DiskFree = int64(r.Intn(4)) * 512
		v.Health = proto.StationHealth(r.Intn(5)) // 0 = ungraded
		if v.WaitingJobs > 0 {
			v.ShortestJob = time.Duration(r.Intn(5)) * 20 * time.Minute
			if r.Intn(3) == 0 {
				v.EarliestDeadline = time.Unix(int64(566000000+r.Intn(100000)*60), 0)
			}
		}
		v.IdleStreak = time.Duration(r.Intn(120)) * time.Minute
		v.AvgIdleLen = time.Duration(r.Intn(600)) * time.Minute
		v.CachedBytes = int64(r.Intn(3)) * 1 << 20
		// Random index history.
		tab.Update(v.Name, r.Intn(4), r.Intn(2) == 0)
		views = append(views, v)
	}
	return views, tab
}

// TestPropertyDecisionSafety: for any pool state and any config, a
// decision never violates the structural rules of §2.1/§2.4/§5.3.
func TestPropertyDecisionSafety(t *testing.T) {
	property := func(seed int64, burst bool, maxGrants, maxPreempts uint8) bool {
		r := rand.New(rand.NewSource(seed))
		views, tab := randomPool(r)
		byName := map[string]StationView{}
		for _, v := range views {
			byName[v.Name] = v
		}
		cfg := Config{
			MaxGrantsPerCycle:    int(maxGrants % 8),
			MaxPreemptsPerCycle:  int(maxPreempts % 4),
			AllowBurstPerStation: burst,
		}
		sanitized := cfg
		sanitized.sanitize()
		d := Decide(views, tab, cfg)

		// Rule 1: every granted exec machine is idle, used at most once,
		// and honours its reservation.
		usedExec := map[string]bool{}
		grantsPerStation := map[string]int{}
		for _, g := range d.Grants {
			exec, ok := byName[g.Exec]
			if !ok || exec.State != proto.StationIdle {
				return false
			}
			if usedExec[g.Exec] {
				return false
			}
			usedExec[g.Exec] = true
			if exec.ReservedFor != "" && exec.ReservedFor != g.Requester {
				return false
			}
			req, ok := byName[g.Requester]
			if !ok || req.WaitingJobs == 0 {
				return false
			}
			grantsPerStation[g.Requester]++
		}
		// Rule 2: global and per-station caps.
		if len(d.Grants) > sanitized.MaxGrantsPerCycle {
			return false
		}
		for name, got := range grantsPerStation {
			if !burst && got > 1 {
				return false
			}
			if got > byName[name].WaitingJobs {
				return false
			}
		}
		// Rule 3: preemptions only of claimed machines, never for a
		// requester who does not strictly outrank the victim, never
		// self-serving, and capped.
		if len(d.Preempts) > sanitized.MaxPreemptsPerCycle {
			return false
		}
		usedPreempt := map[string]bool{}
		for _, p := range d.Preempts {
			exec, ok := byName[p.Exec]
			if !ok || exec.State != proto.StationClaimed {
				return false
			}
			if usedPreempt[p.Exec] {
				return false
			}
			usedPreempt[p.Exec] = true
			if p.Victim == p.Beneficiary {
				return false
			}
			if !tab.Better(p.Beneficiary, p.Victim) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecideIsPure: calling Decide twice on the same inputs
// yields identical decisions and never mutates the input views.
func TestPropertyDecideIsPure(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		views, tab := randomPool(r)
		snapshot := append([]StationView(nil), views...)
		cfg := DefaultConfig()
		a := Decide(views, tab, cfg)
		b := Decide(views, tab, cfg)
		if len(a.Grants) != len(b.Grants) || len(a.Preempts) != len(b.Preempts) {
			return false
		}
		for i := range a.Grants {
			if a.Grants[i] != b.Grants[i] {
				return false
			}
		}
		for i := range a.Preempts {
			if a.Preempts[i] != b.Preempts[i] {
				return false
			}
		}
		for i := range views {
			if views[i] != snapshot[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
