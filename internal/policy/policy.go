// Package policy holds Condor's capacity-allocation logic as pure
// functions over snapshots of pool state. Both the real coordinator
// daemon and the month-scale simulator call into it, so the experiments
// measure exactly the code that runs in production — only the substrate
// differs.
//
// One decision cycle corresponds to one coordinator poll (every 2 minutes
// in the paper). Per cycle the coordinator:
//
//  1. Ranks the stations that have background jobs waiting (the
//     Prioritizer — Up-Down in production, FIFO in the ablation).
//  2. Grants idle machines (with sufficient disk, §4) to requesters in
//     priority order, capped by MaxGrantsPerCycle — the paper places a
//     single job every two minutes to spread placement cost (§4).
//  3. If demand remains and no idle machine exists, preempts the foreign
//     job of the lowest-priority holder that the best unserved requester
//     strictly outranks (§2.4).
//
// Since the pipeline refactor the cycle is composed from pluggable
// stages (see pipeline.go) selected by name from a registry
// (registry.go); the package-level Decide remains the paper's Up-Down
// policy and is pinned byte-for-byte by the golden fixtures under
// testdata/.
package policy

import (
	"sort"
	"time"

	"condor/internal/proto"
)

// StationView is the per-station state a decision cycle sees.
type StationView struct {
	Name  string
	State proto.StationState
	// WaitingJobs counts queued jobs wanting remote capacity.
	WaitingJobs int
	// HeldMachines is how many machines this station's jobs occupy now.
	HeldMachines int
	// ForeignJob/ForeignOwner describe the foreign job running here.
	ForeignJob   string
	ForeignOwner string
	// DiskFree is free checkpoint/executable space on this station.
	DiskFree int64
	// IdleStreak is how long the station has currently been idle.
	IdleStreak time.Duration
	// AvgIdleLen is the station's historic mean idle-interval length,
	// used by the availability-history placement strategy (§5.1).
	AvgIdleLen time.Duration
	// ReservedFor, when non-empty, restricts grants of this machine to
	// the named station (§5.3 reservations).
	ReservedFor string
	// Health is the coordinator's graded health for the station. Zero
	// means ungraded (snapshots from callers without a health machine),
	// which every stage treats as eligible.
	Health proto.StationHealth
	// ShortestJob is the remaining length of the shortest waiting job,
	// if known. The backfill policy promotes stations whose shortest
	// job fits inside the backfill window; zero means unknown.
	ShortestJob time.Duration
	// EarliestDeadline is the soonest completion deadline among this
	// station's waiting jobs; zero means none. Used by the deadline
	// policy.
	EarliestDeadline time.Time
	// CachedBytes is how many input bytes of the requester's datasets
	// this station already holds. Used by the data-locality placement
	// stub (ROADMAP item 3); always zero until stations report caches.
	CachedBytes int64
}

// Prioritizer orders stations for capacity allocation.
type Prioritizer interface {
	// Rank returns names sorted best-first.
	Rank(names []string) []string
	// Better reports whether a strictly outranks b.
	Better(a, b string) bool
}

// PlacementStrategy selects which idle machine to hand out first.
type PlacementStrategy int

// Placement strategies.
const (
	// PlaceFirstFit grants idle machines in stable name order.
	PlaceFirstFit PlacementStrategy = iota + 1
	// PlaceHistory prefers machines with long availability history —
	// the §5.1 proposal: stations with long past idle intervals tend to
	// stay idle, so long jobs suffer fewer preemptions there.
	PlaceHistory
	// PlaceDataLocality prefers machines already caching the job's
	// input data (ROADMAP item 3 stub; behaves like first-fit until
	// stations report cached bytes).
	PlaceDataLocality
)

// Config tunes a decision cycle.
type Config struct {
	// Name selects the registered policy pipeline ("" = updown). The
	// coordinator and simulator resolve it through New; Decide itself
	// ignores it.
	Name string
	// MaxGrantsPerCycle caps placements per cycle (default 1, per §4).
	MaxGrantsPerCycle int
	// MaxPreemptsPerCycle caps preemptions per cycle (default 1).
	MaxPreemptsPerCycle int
	// MinDiskBytes disqualifies execution sites with less free space.
	MinDiskBytes int64
	// Placement selects the idle-machine ordering.
	Placement PlacementStrategy
	// AllowBurstPerStation lifts the one-grant-per-requester-per-cycle
	// rule, letting one station place several jobs in the same cycle —
	// the behaviour §4 warns about ("the performance of the local
	// machine is severely degraded if all jobs are placed at the same
	// time"). Exists for the A2 ablation.
	AllowBurstPerStation bool
	// BackfillWindow bounds the job length that may jump the queue
	// under the backfill policy (0 = DefaultBackfillWindow).
	BackfillWindow time.Duration
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		MaxGrantsPerCycle:   1,
		MaxPreemptsPerCycle: 1,
		MinDiskBytes:        0,
		Placement:           PlaceFirstFit,
	}
}

func (c *Config) sanitize() {
	if c.MaxGrantsPerCycle <= 0 {
		c.MaxGrantsPerCycle = 1
	}
	if c.MaxPreemptsPerCycle < 0 {
		c.MaxPreemptsPerCycle = 0
	}
	if c.Placement == 0 {
		c.Placement = PlaceFirstFit
	}
	if c.BackfillWindow < 0 {
		c.BackfillWindow = 0
	}
}

// Grant assigns the named idle machine to the requesting station.
type Grant struct {
	Requester string
	Exec      string
}

// Preempt orders the foreign job on Exec vacated so Beneficiary can be
// served on a later cycle (once the checkpoint completes).
type Preempt struct {
	Exec        string
	JobID       string
	Victim      string // the job's home station
	Beneficiary string
}

// Decision is one cycle's actions.
type Decision struct {
	Grants   []Grant
	Preempts []Preempt
}

// defaultUpDown backs the package-level Decide. All its stages are
// stateless, so sharing one instance across callers is safe.
var defaultUpDown = NewUpDown()

// Decide computes one allocation cycle under the default Up-Down
// pipeline policy. It never mutates its inputs. Kept as the package
// entry point because both substrates called it before the pipeline
// existed and the golden fixtures pin its behaviour.
func Decide(stations []StationView, prio Prioritizer, cfg Config) Decision {
	return defaultUpDown.Decide(stations, prio, cfg)
}

// FIFOPrioritizer ranks stations by first-seen order, ignoring
// consumption history. It exists for the A3 ablation (Up-Down vs FIFO).
// The arrival table is bounded: stations unseen for longest are evicted
// once the table outgrows max, so a churn of short-lived registrations
// cannot grow it without limit. A pruned station that reappears
// re-enters at the back of the order, exactly like a genuinely new
// registration.
type FIFOPrioritizer struct {
	order    map[string]int
	lastSeen map[string]uint64
	gen      uint64
	next     int
	max      int
}

var _ Prioritizer = (*FIFOPrioritizer)(nil)

// DefaultFIFOMaxEntries bounds the arrival table of NewFIFOPrioritizer
// — far above any paper-scale pool, small enough that a month of
// registration churn stays flat.
const DefaultFIFOMaxEntries = 4096

// NewFIFOPrioritizer returns an empty FIFO prioritizer bounded at
// DefaultFIFOMaxEntries.
func NewFIFOPrioritizer() *FIFOPrioritizer {
	return NewFIFOPrioritizerSized(DefaultFIFOMaxEntries)
}

// NewFIFOPrioritizerSized bounds the arrival table at max entries;
// max <= 0 means unbounded (the pre-bounding behaviour).
func NewFIFOPrioritizerSized(max int) *FIFOPrioritizer {
	return &FIFOPrioritizer{
		order:    make(map[string]int),
		lastSeen: make(map[string]uint64),
		max:      max,
	}
}

// Touch registers a station, establishing its FIFO position.
func (f *FIFOPrioritizer) Touch(name string) {
	if _, ok := f.order[name]; !ok {
		f.order[name] = f.next
		f.next++
	}
	f.lastSeen[name] = f.gen
}

// Forget drops a station from the arrival table (deregistration).
func (f *FIFOPrioritizer) Forget(name string) {
	delete(f.order, name)
	delete(f.lastSeen, name)
}

// Len reports how many stations the arrival table currently tracks.
func (f *FIFOPrioritizer) Len() int { return len(f.order) }

// Rank implements Prioritizer.
func (f *FIFOPrioritizer) Rank(names []string) []string {
	f.gen++
	out := append([]string(nil), names...)
	for _, n := range out {
		f.Touch(n)
	}
	f.prune()
	sort.SliceStable(out, func(i, j int) bool { return f.order[out[i]] < f.order[out[j]] })
	return out
}

// Better implements Prioritizer.
func (f *FIFOPrioritizer) Better(a, b string) bool {
	f.Touch(a)
	f.Touch(b)
	return f.order[a] < f.order[b]
}

// prune evicts the longest-unseen stations once the table outgrows its
// bound. Names seen in the current generation are never evicted, and
// eviction order is deterministic: oldest lastSeen first, FIFO position
// as the tie-break.
func (f *FIFOPrioritizer) prune() {
	if f.max <= 0 || len(f.order) <= f.max {
		return
	}
	type entry struct {
		name string
		seen uint64
		pos  int
	}
	evictable := make([]entry, 0, len(f.order))
	for name, pos := range f.order {
		if seen := f.lastSeen[name]; seen < f.gen {
			evictable = append(evictable, entry{name, seen, pos})
		}
	}
	sort.Slice(evictable, func(i, j int) bool {
		if evictable[i].seen != evictable[j].seen {
			return evictable[i].seen < evictable[j].seen
		}
		return evictable[i].pos < evictable[j].pos
	})
	for _, e := range evictable {
		if len(f.order) <= f.max {
			return
		}
		delete(f.order, e.name)
		delete(f.lastSeen, e.name)
	}
}
