// Package policy holds Condor's capacity-allocation logic as pure
// functions over snapshots of pool state. Both the real coordinator
// daemon and the month-scale simulator call Decide, so the experiments
// measure exactly the code that runs in production — only the substrate
// differs.
//
// One decision cycle corresponds to one coordinator poll (every 2 minutes
// in the paper). Per cycle the coordinator:
//
//  1. Ranks the stations that have background jobs waiting (the
//     Prioritizer — Up-Down in production, FIFO in the ablation).
//  2. Grants idle machines (with sufficient disk, §4) to requesters in
//     priority order, capped by MaxGrantsPerCycle — the paper places a
//     single job every two minutes to spread placement cost (§4).
//  3. If demand remains and no idle machine exists, preempts the foreign
//     job of the lowest-priority holder that the best unserved requester
//     strictly outranks (§2.4).
package policy

import (
	"sort"
	"time"

	"condor/internal/proto"
)

// StationView is the per-station state a decision cycle sees.
type StationView struct {
	Name  string
	State proto.StationState
	// WaitingJobs counts queued jobs wanting remote capacity.
	WaitingJobs int
	// HeldMachines is how many machines this station's jobs occupy now.
	HeldMachines int
	// ForeignJob/ForeignOwner describe the foreign job running here.
	ForeignJob   string
	ForeignOwner string
	// DiskFree is free checkpoint/executable space on this station.
	DiskFree int64
	// IdleStreak is how long the station has currently been idle.
	IdleStreak time.Duration
	// AvgIdleLen is the station's historic mean idle-interval length,
	// used by the availability-history placement strategy (§5.1).
	AvgIdleLen time.Duration
	// ReservedFor, when non-empty, restricts grants of this machine to
	// the named station (§5.3 reservations).
	ReservedFor string
}

// Prioritizer orders stations for capacity allocation.
type Prioritizer interface {
	// Rank returns names sorted best-first.
	Rank(names []string) []string
	// Better reports whether a strictly outranks b.
	Better(a, b string) bool
}

// PlacementStrategy selects which idle machine to hand out first.
type PlacementStrategy int

// Placement strategies.
const (
	// PlaceFirstFit grants idle machines in stable name order.
	PlaceFirstFit PlacementStrategy = iota + 1
	// PlaceHistory prefers machines with long availability history —
	// the §5.1 proposal: stations with long past idle intervals tend to
	// stay idle, so long jobs suffer fewer preemptions there.
	PlaceHistory
)

// Config tunes a decision cycle.
type Config struct {
	// MaxGrantsPerCycle caps placements per cycle (default 1, per §4).
	MaxGrantsPerCycle int
	// MaxPreemptsPerCycle caps preemptions per cycle (default 1).
	MaxPreemptsPerCycle int
	// MinDiskBytes disqualifies execution sites with less free space.
	MinDiskBytes int64
	// Placement selects the idle-machine ordering.
	Placement PlacementStrategy
	// AllowBurstPerStation lifts the one-grant-per-requester-per-cycle
	// rule, letting one station place several jobs in the same cycle —
	// the behaviour §4 warns about ("the performance of the local
	// machine is severely degraded if all jobs are placed at the same
	// time"). Exists for the A2 ablation.
	AllowBurstPerStation bool
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		MaxGrantsPerCycle:   1,
		MaxPreemptsPerCycle: 1,
		MinDiskBytes:        0,
		Placement:           PlaceFirstFit,
	}
}

func (c *Config) sanitize() {
	if c.MaxGrantsPerCycle <= 0 {
		c.MaxGrantsPerCycle = 1
	}
	if c.MaxPreemptsPerCycle < 0 {
		c.MaxPreemptsPerCycle = 0
	}
	if c.Placement == 0 {
		c.Placement = PlaceFirstFit
	}
}

// Grant assigns the named idle machine to the requesting station.
type Grant struct {
	Requester string
	Exec      string
}

// Preempt orders the foreign job on Exec vacated so Beneficiary can be
// served on a later cycle (once the checkpoint completes).
type Preempt struct {
	Exec        string
	JobID       string
	Victim      string // the job's home station
	Beneficiary string
}

// Decision is one cycle's actions.
type Decision struct {
	Grants   []Grant
	Preempts []Preempt
}

// Decide computes one allocation cycle. It never mutates its inputs.
func Decide(stations []StationView, prio Prioritizer, cfg Config) Decision {
	cfg.sanitize()
	byName := make(map[string]StationView, len(stations))
	for _, s := range stations {
		byName[s.Name] = s
	}

	// Requesters, best priority first. Stations keep wanting capacity
	// for every waiting job, but receive at most one grant per cycle:
	// placement costs land on the requester's machine (§4), so pacing is
	// per-station as well as global.
	var wanting []string
	for _, s := range stations {
		if s.WaitingJobs > 0 {
			wanting = append(wanting, s.Name)
		}
	}
	sort.Strings(wanting) // deterministic base order before ranking
	requesters := prio.Rank(wanting)

	idle := idleMachines(stations, cfg)

	var d Decision
	granted := make(map[string]bool, len(requesters))
	waitingLeft := make(map[string]int, len(stations))
	for _, s := range stations {
		waitingLeft[s.Name] = s.WaitingJobs
	}
	// With bursting allowed, keep cycling through the ranked requesters
	// until grants or machines run out.
	for pass := 0; ; pass++ {
		grantedThisPass := false
		for _, req := range requesters {
			if len(d.Grants) >= cfg.MaxGrantsPerCycle || len(idle) == 0 {
				break
			}
			if granted[req] && !cfg.AllowBurstPerStation {
				continue
			}
			if waitingLeft[req] <= 0 {
				continue
			}
			pick := -1
			for i, exec := range idle {
				reserved := byName[exec].ReservedFor
				if reserved == "" || reserved == req {
					pick = i
					break
				}
			}
			if pick < 0 {
				continue
			}
			exec := idle[pick]
			idle = append(idle[:pick], idle[pick+1:]...)
			granted[req] = true
			waitingLeft[req]--
			grantedThisPass = true
			d.Grants = append(d.Grants, Grant{Requester: req, Exec: exec})
		}
		if !cfg.AllowBurstPerStation || !grantedThisPass ||
			len(d.Grants) >= cfg.MaxGrantsPerCycle || len(idle) == 0 {
			break
		}
	}
	// Preemption: only when an unserved requester exists and there is no
	// generally-usable idle capacity left (machines reserved for someone
	// else do not count — they are spoken for, §5.3).
	unreservedIdle := 0
	for _, exec := range idle {
		if byName[exec].ReservedFor == "" {
			unreservedIdle++
		}
	}
	if unreservedIdle > 0 || cfg.MaxPreemptsPerCycle == 0 {
		return d
	}
	for _, req := range requesters {
		if len(d.Preempts) >= cfg.MaxPreemptsPerCycle {
			break
		}
		if granted[req] {
			continue
		}
		victim, ok := pickVictim(stations, byName, prio, req, d.Preempts)
		if !ok {
			break // best requester can preempt nobody; worse ones cannot either
		}
		d.Preempts = append(d.Preempts, Preempt{
			Exec:        victim.Name,
			JobID:       victim.ForeignJob,
			Victim:      victim.ForeignOwner,
			Beneficiary: req,
		})
	}
	return d
}

// idleMachines returns usable idle stations ordered per the placement
// strategy.
func idleMachines(stations []StationView, cfg Config) []string {
	var idle []StationView
	for _, s := range stations {
		if s.State != proto.StationIdle {
			continue
		}
		if cfg.MinDiskBytes > 0 && s.DiskFree < cfg.MinDiskBytes {
			continue // §4: a full disk makes the station unusable
		}
		idle = append(idle, s)
	}
	switch cfg.Placement {
	case PlaceHistory:
		sort.SliceStable(idle, func(i, j int) bool {
			if idle[i].AvgIdleLen != idle[j].AvgIdleLen {
				return idle[i].AvgIdleLen > idle[j].AvgIdleLen
			}
			if idle[i].IdleStreak != idle[j].IdleStreak {
				return idle[i].IdleStreak > idle[j].IdleStreak
			}
			return idle[i].Name < idle[j].Name
		})
	default: // PlaceFirstFit
		sort.SliceStable(idle, func(i, j int) bool { return idle[i].Name < idle[j].Name })
	}
	out := make([]string, len(idle))
	for i, s := range idle {
		out[i] = s.Name
	}
	return out
}

// pickVictim finds the claimed station whose foreign job's owner has the
// worst priority among those the requester strictly outranks, skipping
// stations already being preempted this cycle and the requester's own
// jobs.
func pickVictim(
	stations []StationView,
	byName map[string]StationView,
	prio Prioritizer,
	requester string,
	already []Preempt,
) (StationView, bool) {
	busy := make(map[string]bool, len(already))
	for _, p := range already {
		busy[p.Exec] = true
	}
	var victim StationView
	found := false
	for _, s := range stations {
		if s.State != proto.StationClaimed || s.ForeignJob == "" || busy[s.Name] {
			continue
		}
		if s.ForeignOwner == requester {
			continue // never preempt yourself to serve yourself
		}
		if !prio.Better(requester, s.ForeignOwner) {
			continue
		}
		if !found || prio.Better(victim.ForeignOwner, s.ForeignOwner) {
			// s's owner is worse than the current victim's owner:
			// prefer evicting the worst-priority holder.
			victim = s
			found = true
		}
	}
	_ = byName
	return victim, found
}

// FIFOPrioritizer ranks stations by first-seen order, ignoring
// consumption history. It exists for the A3 ablation (Up-Down vs FIFO).
type FIFOPrioritizer struct {
	order map[string]int
	next  int
}

var _ Prioritizer = (*FIFOPrioritizer)(nil)

// NewFIFOPrioritizer returns an empty FIFO prioritizer.
func NewFIFOPrioritizer() *FIFOPrioritizer {
	return &FIFOPrioritizer{order: make(map[string]int)}
}

// Touch registers a station, establishing its FIFO position.
func (f *FIFOPrioritizer) Touch(name string) {
	if _, ok := f.order[name]; !ok {
		f.order[name] = f.next
		f.next++
	}
}

// Rank implements Prioritizer.
func (f *FIFOPrioritizer) Rank(names []string) []string {
	out := append([]string(nil), names...)
	for _, n := range out {
		f.Touch(n)
	}
	sort.SliceStable(out, func(i, j int) bool { return f.order[out[i]] < f.order[out[j]] })
	return out
}

// Better implements Prioritizer.
func (f *FIFOPrioritizer) Better(a, b string) bool {
	f.Touch(a)
	f.Touch(b)
	return f.order[a] < f.order[b]
}
