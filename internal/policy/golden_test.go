package policy

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"condor/internal/proto"
	"condor/internal/updown"
)

// The golden equivalence fixtures: ~50 randomized pool snapshots plus
// the decisions the pre-pipeline (seed) Decide produced for them,
// committed under testdata/. The pipelined Up-Down policy must
// reproduce every one of them byte-for-byte — that is the proof that
// the predicates → ranker → placer → preemptor decomposition is a pure
// refactor of the paper's hard-wired algorithm, not a behaviour change.
//
// Regenerate (only when a deliberate, documented behaviour change is
// intended) with:
//
//	CONDOR_REGEN_GOLDEN=1 go test -run TestGenerateGoldenFixtures ./internal/policy/
const goldenPath = "testdata/golden_decide.json"

// goldenFixture is one recorded snapshot → decision pair.
type goldenFixture struct {
	// Seed identifies the fixture (the RNG seed that generated it).
	Seed int64 `json:"seed"`
	// Cfg is the decision-cycle configuration in force.
	Cfg Config `json:"config"`
	// Indexes is the up-down table state, restored via Table.Restore so
	// tie-break arrival order is deterministic (sorted names).
	Indexes map[string]float64 `json:"indexes"`
	// Views is the pool snapshot handed to Decide.
	Views []StationView `json:"views"`
	// Decision is what the seed Decide returned.
	Decision Decision `json:"decision"`
}

type goldenFile struct {
	// Note documents provenance for readers of the raw JSON.
	Note     string          `json:"note"`
	Fixtures []goldenFixture `json:"fixtures"`
}

// goldenPool builds one randomized-but-reproducible pool snapshot and
// matching up-down table. It is richer than randomPool: it exercises
// disk limits, reservations, idle history, and waiting queues so the
// fixtures cover every branch of the decision cycle.
func goldenPool(r *rand.Rand) ([]StationView, map[string]float64) {
	n := 3 + r.Intn(25)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("ws%02d", i)
	}
	views := make([]StationView, 0, n)
	indexes := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		v := StationView{Name: names[i]}
		switch r.Intn(4) {
		case 0:
			v.State = proto.StationIdle
		case 1:
			v.State = proto.StationOwner
		case 2:
			v.State = proto.StationClaimed
			v.ForeignOwner = names[r.Intn(n)]
			v.ForeignJob = v.ForeignOwner + "/1"
		case 3:
			v.State = proto.StationSuspended
			v.ForeignOwner = names[r.Intn(n)]
			v.ForeignJob = v.ForeignOwner + "/1"
		}
		v.WaitingJobs = r.Intn(5)
		v.HeldMachines = r.Intn(3)
		v.DiskFree = int64(r.Intn(4)) * 512 // 0, 512, 1024, 1536
		v.IdleStreak = time.Duration(r.Intn(120)) * time.Minute
		v.AvgIdleLen = time.Duration(r.Intn(600)) * time.Minute
		if r.Intn(4) == 0 {
			v.ReservedFor = names[r.Intn(n)]
		}
		// Quantized indexes: reproducible float formatting in JSON.
		indexes[v.Name] = float64(r.Intn(41)-20) / 2.0
		views = append(views, v)
	}
	return views, indexes
}

// goldenConfig draws a decision config covering both placements, both
// pacing modes, disabled preemption, and disk limits.
func goldenConfig(r *rand.Rand) Config {
	cfg := Config{
		MaxGrantsPerCycle:    1 + r.Intn(8),
		MaxPreemptsPerCycle:  r.Intn(4),
		AllowBurstPerStation: r.Intn(3) == 0,
	}
	if r.Intn(2) == 0 {
		cfg.Placement = PlaceHistory
	} else {
		cfg.Placement = PlaceFirstFit
	}
	if r.Intn(3) == 0 {
		cfg.MinDiskBytes = 1024
	}
	return cfg
}

// TestGenerateGoldenFixtures regenerates the committed fixtures. It is
// a no-op unless CONDOR_REGEN_GOLDEN=1 — the fixtures are the contract,
// so regeneration must be a deliberate act.
func TestGenerateGoldenFixtures(t *testing.T) {
	if os.Getenv("CONDOR_REGEN_GOLDEN") == "" {
		t.Skip("set CONDOR_REGEN_GOLDEN=1 to regenerate golden fixtures")
	}
	gf := goldenFile{
		Note: "Recorded outputs of the pre-pipeline policy.Decide (seed algorithm). " +
			"The pipelined updown policy must reproduce these exactly. " +
			"Regenerate only for a deliberate behaviour change.",
	}
	for seed := int64(1); seed <= 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		views, indexes := goldenPool(r)
		cfg := goldenConfig(r)
		tab := updown.NewTable(updown.DefaultConfig())
		tab.Restore(indexes)
		gf.Fixtures = append(gf.Fixtures, goldenFixture{
			Seed:     seed,
			Cfg:      cfg,
			Indexes:  indexes,
			Views:    views,
			Decision: Decide(views, tab, cfg),
		})
	}
	b, err := json.MarshalIndent(gf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d fixtures to %s (%d bytes)", len(gf.Fixtures), goldenPath, len(b))
}

func loadGolden(t *testing.T) goldenFile {
	t.Helper()
	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixtures missing (run the generator): %v", err)
	}
	var gf goldenFile
	if err := json.Unmarshal(b, &gf); err != nil {
		t.Fatalf("golden fixtures corrupt: %v", err)
	}
	if len(gf.Fixtures) < 50 {
		t.Fatalf("only %d fixtures; want ≥ 50", len(gf.Fixtures))
	}
	return gf
}

// TestGoldenEquivalence: the package-level Decide (the pipelined
// Up-Down policy) reproduces the seed algorithm's recorded decisions
// byte-for-byte on every committed fixture.
func TestGoldenEquivalence(t *testing.T) {
	gf := loadGolden(t)
	for _, fx := range gf.Fixtures {
		tab := updown.NewTable(updown.DefaultConfig())
		tab.Restore(fx.Indexes)
		got := Decide(fx.Views, tab, fx.Cfg)
		if !reflect.DeepEqual(got, fx.Decision) {
			t.Errorf("fixture seed=%d: decision diverged\n got: %+v\nwant: %+v",
				fx.Seed, got, fx.Decision)
			continue
		}
		// Byte-for-byte: the JSON encodings must match too, so field
		// renames or type changes cannot hide behind DeepEqual.
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(fx.Decision)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("fixture seed=%d: JSON diverged\n got: %s\nwant: %s",
				fx.Seed, gotJSON, wantJSON)
		}
	}
}
