package policy

import "condor/internal/telemetry"

// Per-policy pipeline instrumentation. The vectors are label-interned
// at Policy construction time so the per-cycle path touches only
// pre-resolved counters — no map lookups, no allocations.
var (
	mDecideSeconds = telemetry.NewHistogramVec("condor_policy_decide_seconds",
		"Latency of one scheduling-pipeline decision cycle.", "policy",
		[]float64{5e-6, 2e-5, 1e-4, 5e-4, 2e-3, 1e-2, 5e-2, 0.25})
	mStageRequesters = telemetry.NewCounterVec("condor_policy_stage_requesters_total",
		"Requesting stations seen by the ranker stage.", "policy")
	mStageCandidates = telemetry.NewCounterVec("condor_policy_stage_candidates_total",
		"Machines admitted by the predicate stage.", "policy")
	mStageFiltered = telemetry.NewCounterVec("condor_policy_stage_filtered_total",
		"Machines rejected by the predicate stage.", "policy")
	mStageGrants = telemetry.NewCounterVec("condor_policy_stage_grants_total",
		"Grants issued by the placement stage.", "policy")
	mStagePreempts = telemetry.NewCounterVec("condor_policy_stage_preempts_total",
		"Victims selected by the preemptor stage.", "policy")
	// mPredicateDenied breaks mStageFiltered down by *which* predicate
	// rejected — the aggregate side of the decision audit. Counted in
	// the requester-blind candidate phase only (the same machine may be
	// re-tested per requester during placement, which would double
	// count), so it agrees with the candidate-phase rejections on
	// /decisions. The label value is "<policy>/<predicate>".
	mPredicateDenied = telemetry.NewCounterVec("condor_policy_predicate_denied_total",
		"Candidate machines rejected, by policy/predicate (requester-blind phase).", "pred")
)

type policyMetrics struct {
	decide     *telemetry.Histogram
	requesters *telemetry.Counter
	candidates *telemetry.Counter
	filtered   *telemetry.Counter
	grants     *telemetry.Counter
	preempts   *telemetry.Counter
	// denied is parallel to Policy.Predicates: denied[i] counts
	// candidate-phase rejections by the i-th predicate.
	denied []*telemetry.Counter
}

func newPolicyMetrics(name string, preds []Predicate) *policyMetrics {
	m := &policyMetrics{
		decide:     mDecideSeconds.With(name),
		requesters: mStageRequesters.With(name),
		candidates: mStageCandidates.With(name),
		filtered:   mStageFiltered.With(name),
		grants:     mStageGrants.With(name),
		preempts:   mStagePreempts.With(name),
	}
	m.denied = make([]*telemetry.Counter, len(preds))
	for i, p := range preds {
		m.denied[i] = mPredicateDenied.With(name + "/" + p.Name())
	}
	return m
}
