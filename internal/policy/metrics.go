package policy

import "condor/internal/telemetry"

// Per-policy pipeline instrumentation. The vectors are label-interned
// at Policy construction time so the per-cycle path touches only
// pre-resolved counters — no map lookups, no allocations.
var (
	mDecideSeconds = telemetry.NewHistogramVec("condor_policy_decide_seconds",
		"Latency of one scheduling-pipeline decision cycle.", "policy",
		[]float64{5e-6, 2e-5, 1e-4, 5e-4, 2e-3, 1e-2, 5e-2, 0.25})
	mStageRequesters = telemetry.NewCounterVec("condor_policy_stage_requesters_total",
		"Requesting stations seen by the ranker stage.", "policy")
	mStageCandidates = telemetry.NewCounterVec("condor_policy_stage_candidates_total",
		"Machines admitted by the predicate stage.", "policy")
	mStageFiltered = telemetry.NewCounterVec("condor_policy_stage_filtered_total",
		"Machines rejected by the predicate stage.", "policy")
	mStageGrants = telemetry.NewCounterVec("condor_policy_stage_grants_total",
		"Grants issued by the placement stage.", "policy")
	mStagePreempts = telemetry.NewCounterVec("condor_policy_stage_preempts_total",
		"Victims selected by the preemptor stage.", "policy")
)

type policyMetrics struct {
	decide     *telemetry.Histogram
	requesters *telemetry.Counter
	candidates *telemetry.Counter
	filtered   *telemetry.Counter
	grants     *telemetry.Counter
	preempts   *telemetry.Counter
}

func newPolicyMetrics(name string) *policyMetrics {
	return &policyMetrics{
		decide:     mDecideSeconds.With(name),
		requesters: mStageRequesters.With(name),
		candidates: mStageCandidates.With(name),
		filtered:   mStageFiltered.With(name),
		grants:     mStageGrants.With(name),
		preempts:   mStagePreempts.With(name),
	}
}
