package policy

import (
	"fmt"
	"testing"
)

// TestFIFOChurnBounded: a long churn of short-lived registrations must
// not grow the arrival table without limit (entries for deregistered
// stations used to live forever), while stations ranked in the current
// cycle always survive pruning.
func TestFIFOChurnBounded(t *testing.T) {
	const max = 64
	f := NewFIFOPrioritizerSized(max)
	live := []string{"ws00", "ws01", "ws02"}
	for round := 0; round < 200; round++ {
		names := append([]string(nil), live...)
		for j := 0; j < 10; j++ {
			names = append(names, fmt.Sprintf("ephemeral-%d-%d", round, j))
		}
		ranked := f.Rank(names)
		if len(ranked) != len(names) {
			t.Fatalf("round %d: Rank returned %d of %d names", round, len(ranked), len(names))
		}
		if f.Len() > max {
			t.Fatalf("round %d: arrival table grew to %d entries (bound %d)", round, f.Len(), max)
		}
	}
	// The continuously-seen stations keep their original order: ws00
	// arrived first every round and must still rank first.
	ranked := f.Rank([]string{"ws02", "ws00", "ws01"})
	if ranked[0] != "ws00" || ranked[1] != "ws01" || ranked[2] != "ws02" {
		t.Fatalf("live stations lost their arrival order: %v", ranked)
	}
}

// TestFIFOForget: deregistration removes the entry; a returning station
// re-enters at the back of the order like a new arrival.
func TestFIFOForget(t *testing.T) {
	f := NewFIFOPrioritizer()
	f.Touch("a")
	f.Touch("b")
	if !f.Better("a", "b") {
		t.Fatal("a arrived before b")
	}
	f.Forget("a")
	if f.Len() != 1 {
		t.Fatalf("Len = %d after Forget, want 1", f.Len())
	}
	if f.Better("a", "b") {
		t.Fatal("a re-registered after Forget must rank behind b")
	}
}

// TestFIFOPruneDeterministic: pruning evicts the longest-unseen entries
// first, deterministically, so two coordinators replaying the same
// churn agree on the surviving order.
func TestFIFOPruneDeterministic(t *testing.T) {
	run := func() []string {
		f := NewFIFOPrioritizerSized(4)
		for i := 0; i < 12; i++ {
			f.Rank([]string{fmt.Sprintf("s%02d", i)})
		}
		return f.Rank([]string{"s08", "s09", "s10", "s11"})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prune nondeterministic: %v vs %v", a, b)
		}
	}
}

// TestFIFOUnboundedCompat: max <= 0 preserves the pre-bounding
// behaviour for callers that sized the pool themselves.
func TestFIFOUnboundedCompat(t *testing.T) {
	f := NewFIFOPrioritizerSized(0)
	for i := 0; i < 500; i++ {
		f.Touch(fmt.Sprintf("s%d", i))
	}
	if f.Len() != 500 {
		t.Fatalf("unbounded prioritizer pruned: Len = %d, want 500", f.Len())
	}
}
