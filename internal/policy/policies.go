// The built-in policies. Each is a composition of pipeline stages
// registered under a name (registry.go); all must pass the shared
// conformance suite (conformance_test.go). Up-Down is the paper's
// algorithm and the default; the rest are the alternatives ROADMAP
// item 2 calls for, spanning the policy space *A Taxonomy of
// Schedulers* surveys: arrival order (FIFO), queue pressure
// (busiest-first), short-job promotion (backfill), and time
// constraints (deadline).
package policy

import (
	"sort"
	"time"
)

// DefaultBackfillWindow bounds how long a job may run and still jump
// the queue under the backfill policy when Config.BackfillWindow is
// unset.
const DefaultBackfillWindow = 30 * time.Minute

// ---- Rankers --------------------------------------------------------

// PrioRanker ranks by the cycle's injected Prioritizer — the Up-Down
// table in production. It is the seed algorithm's ranking stage.
type PrioRanker struct{}

func (PrioRanker) Name() string { return "prio" }

// Rank implements Ranker.
func (PrioRanker) Rank(wanting []string, _ *Pool, prio Prioritizer, _ *Config) []string {
	return prio.Rank(wanting)
}

// Better implements Ranker.
func (PrioRanker) Better(a, b string, _ *Pool, prio Prioritizer, _ *Config) bool {
	return prio.Better(a, b)
}

// FIFORanker ranks by first-seen order using its own bounded arrival
// table, ignoring the injected Prioritizer. It exists for the A3
// ablation (Up-Down vs FIFO) and is the one stateful ranker, so each
// fifo Policy instance gets a fresh one.
type FIFORanker struct {
	F *FIFOPrioritizer
}

func (*FIFORanker) Name() string { return "fifo" }

// Touch pre-registers a station, pinning its FIFO position — callers
// that know the arrival order (the simulator) use it to make runs
// reproducible.
func (f *FIFORanker) Touch(name string) { f.F.Touch(name) }

// Rank implements Ranker.
func (f *FIFORanker) Rank(wanting []string, _ *Pool, _ Prioritizer, _ *Config) []string {
	return f.F.Rank(wanting)
}

// Better implements Ranker.
func (f *FIFORanker) Better(a, b string, _ *Pool, _ Prioritizer, _ *Config) bool {
	return f.F.Better(a, b)
}

// BusiestRanker serves the deepest queue first — pure pressure relief
// with no fairness memory; ties fall back to the injected Prioritizer
// so the order stays total and deterministic.
type BusiestRanker struct{}

func (BusiestRanker) Name() string { return "busiest-first" }

// Rank implements Ranker.
func (BusiestRanker) Rank(wanting []string, pool *Pool, prio Prioritizer, _ *Config) []string {
	out := append([]string(nil), wanting...)
	sort.SliceStable(out, func(i, j int) bool {
		wi := pool.byName[out[i]].WaitingJobs
		wj := pool.byName[out[j]].WaitingJobs
		if wi != wj {
			return wi > wj
		}
		return prio.Better(out[i], out[j])
	})
	return out
}

// Better implements Ranker.
func (BusiestRanker) Better(a, b string, pool *Pool, prio Prioritizer, _ *Config) bool {
	wa := pool.byName[a].WaitingJobs
	wb := pool.byName[b].WaitingJobs
	if wa != wb {
		return wa > wb
	}
	return prio.Better(a, b)
}

// BackfillRanker keeps the base priority order but, behind the head of
// the queue, promotes stations whose shortest waiting job fits in the
// backfill window. They cannot delay the head: per-station pacing (§4)
// caps the head at one grant per cycle regardless, so letting short
// work jump the rest of the line raises utilization without starving
// anyone. Preemption rights (Better) stay the base priority — jumping
// the grant queue must not buy eviction power.
type BackfillRanker struct{}

func (BackfillRanker) Name() string { return "backfill" }

// Rank implements Ranker.
func (BackfillRanker) Rank(wanting []string, pool *Pool, prio Prioritizer, cfg *Config) []string {
	ranked := prio.Rank(wanting)
	if len(ranked) <= 2 {
		return ranked
	}
	win := cfg.BackfillWindow
	if win <= 0 {
		win = DefaultBackfillWindow
	}
	out := make([]string, 0, len(ranked))
	out = append(out, ranked[0])
	long := make([]string, 0, len(ranked)-1)
	for _, name := range ranked[1:] {
		if sj := pool.byName[name].ShortestJob; sj > 0 && sj <= win {
			out = append(out, name)
		} else {
			long = append(long, name)
		}
	}
	return append(out, long...)
}

// Better implements Ranker.
func (BackfillRanker) Better(a, b string, _ *Pool, prio Prioritizer, _ *Config) bool {
	return prio.Better(a, b)
}

// DeadlineRanker is earliest-deadline-first: stations advertising a
// deadline outrank those with none, earlier deadlines win, and ties
// (or no deadlines at all) fall back to the injected Prioritizer, so
// a pool with no deadlines behaves exactly like Up-Down.
type DeadlineRanker struct{}

func (DeadlineRanker) Name() string { return "deadline" }

func deadlineLess(pool *Pool, prio Prioritizer, a, b string) bool {
	da := pool.byName[a].EarliestDeadline
	db := pool.byName[b].EarliestDeadline
	switch {
	case !da.IsZero() && db.IsZero():
		return true
	case da.IsZero() && !db.IsZero():
		return false
	case !da.IsZero() && !da.Equal(db):
		return da.Before(db)
	}
	return prio.Better(a, b)
}

// Rank implements Ranker.
func (DeadlineRanker) Rank(wanting []string, pool *Pool, prio Prioritizer, _ *Config) []string {
	out := append([]string(nil), wanting...)
	sort.SliceStable(out, func(i, j int) bool { return deadlineLess(pool, prio, out[i], out[j]) })
	return out
}

// Better implements Ranker.
func (DeadlineRanker) Better(a, b string, pool *Pool, prio Prioritizer, _ *Config) bool {
	return deadlineLess(pool, prio, a, b)
}

// ---- Policy factories ----------------------------------------------

// NewUpDown composes the paper's §2.4 algorithm: rank by the injected
// Up-Down table, place per the configured strategy, preempt the worst
// outranked holder. It is decision-identical to the pre-pipeline
// Decide — the golden fixtures prove it.
func NewUpDown() *Policy {
	return newStandardPolicy("updown", PrioRanker{})
}

// newStandardPolicy composes the standard predicate chain, config-driven
// placement, and §2.4 outrank preemption around a ranker — the shape all
// five built-ins share — and interns the policy's metric set (including
// the per-predicate deny counters, parallel to the predicate chain).
func newStandardPolicy(name string, ranker Ranker) *Policy {
	preds := StandardPredicates()
	return &Policy{
		name:       name,
		Predicates: preds,
		Ranker:     ranker,
		Placer:     ConfigPlacer{},
		Preemptor:  OutrankPreemptor{},
		met:        newPolicyMetrics(name, preds),
	}
}

// NewFIFO composes the A3 ablation: arrival order instead of consumption
// history.
func NewFIFO() *Policy {
	return newStandardPolicy("fifo", &FIFORanker{F: NewFIFOPrioritizer()})
}

// NewBusiestFirst composes the queue-pressure policy.
func NewBusiestFirst() *Policy {
	return newStandardPolicy("busiest-first", BusiestRanker{})
}

// NewBackfill composes the short-jobs-jump-the-queue policy.
func NewBackfill() *Policy {
	return newStandardPolicy("backfill", BackfillRanker{})
}

// NewDeadline composes earliest-deadline-first.
func NewDeadline() *Policy {
	return newStandardPolicy("deadline", DeadlineRanker{})
}
