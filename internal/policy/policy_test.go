package policy

import (
	"testing"
	"time"

	"condor/internal/proto"
	"condor/internal/updown"
)

func table(t *testing.T) *updown.Table {
	t.Helper()
	return updown.NewTable(updown.DefaultConfig())
}

func TestGrantGoesToHighestPriorityRequester(t *testing.T) {
	tab := table(t)
	// heavy has been holding capacity; light has been denied.
	for i := 0; i < 5; i++ {
		tab.Update("heavy", 4, true)
		tab.Update("light", 0, true)
	}
	stations := []StationView{
		{Name: "heavy", State: proto.StationOwner, WaitingJobs: 10},
		{Name: "light", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "ws3", State: proto.StationIdle},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Grants) != 1 {
		t.Fatalf("grants = %+v, want exactly 1", d.Grants)
	}
	if d.Grants[0].Requester != "light" || d.Grants[0].Exec != "ws3" {
		t.Fatalf("grant = %+v, want light on ws3", d.Grants[0])
	}
	if len(d.Preempts) != 0 {
		t.Fatalf("unexpected preempts with idle machine available: %+v", d.Preempts)
	}
}

func TestPacingOneGrantPerCycle(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 5},
		{Name: "i1", State: proto.StationIdle},
		{Name: "i2", State: proto.StationIdle},
		{Name: "i3", State: proto.StationIdle},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Grants) != 1 {
		t.Fatalf("default pacing violated: %d grants", len(d.Grants))
	}
	// Raising the global cap does not help a single requester: placement
	// cost lands on the requester's machine, so pacing is per-station too.
	cfg := DefaultConfig()
	cfg.MaxGrantsPerCycle = 3
	d = Decide(stations, tab, cfg)
	if len(d.Grants) != 1 {
		t.Fatalf("raised cap, one requester: %d grants, want 1", len(d.Grants))
	}
}

func TestMultipleRequestersShareGrants(t *testing.T) {
	tab := table(t)
	tab.Touch("a")
	tab.Touch("b")
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 3},
		{Name: "b", State: proto.StationOwner, WaitingJobs: 3},
		{Name: "i1", State: proto.StationIdle},
		{Name: "i2", State: proto.StationIdle},
	}
	cfg := DefaultConfig()
	cfg.MaxGrantsPerCycle = 2
	d := Decide(stations, tab, cfg)
	if len(d.Grants) != 2 {
		t.Fatalf("grants = %+v", d.Grants)
	}
	if d.Grants[0].Requester == d.Grants[1].Requester {
		t.Fatalf("one station took both grants: %+v", d.Grants)
	}
}

func TestPreemptionWhenNoIdleMachine(t *testing.T) {
	tab := table(t)
	// heavy holds 2 machines; light denied repeatedly.
	for i := 0; i < 5; i++ {
		tab.Update("heavy", 2, true)
		tab.Update("light", 0, true)
	}
	stations := []StationView{
		{Name: "heavy", State: proto.StationOwner, WaitingJobs: 3, HeldMachines: 2},
		{Name: "light", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "heavy/1", ForeignOwner: "heavy"},
		{Name: "e2", State: proto.StationClaimed, ForeignJob: "heavy/2", ForeignOwner: "heavy"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Grants) != 0 {
		t.Fatalf("grants with no idle machines: %+v", d.Grants)
	}
	if len(d.Preempts) != 1 {
		t.Fatalf("preempts = %+v, want 1", d.Preempts)
	}
	p := d.Preempts[0]
	if p.Victim != "heavy" || p.Beneficiary != "light" {
		t.Fatalf("preempt = %+v", p)
	}
}

func TestNoPreemptionWhenRequesterDoesNotOutrank(t *testing.T) {
	tab := table(t)
	// Both equally ranked (same index) — no strict outranking, no preempt.
	tab.Touch("a")
	tab.Touch("b")
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "b/1", ForeignOwner: "b"},
	}
	// a registered before b in the table? Touch order above: a then b,
	// so a outranks b on the tie-break. Rebuild with b first.
	tab2 := table(t)
	tab2.Touch("b")
	tab2.Touch("a")
	d := Decide(stations, tab2, DefaultConfig())
	if len(d.Preempts) != 0 {
		t.Fatalf("preempted despite not outranking: %+v", d.Preempts)
	}
}

func TestNeverPreemptOwnJob(t *testing.T) {
	tab := table(t)
	for i := 0; i < 3; i++ {
		tab.Update("a", 1, true) // holding and wanting more
	}
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 2, HeldMachines: 1},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "a/1", ForeignOwner: "a"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Preempts) != 0 {
		t.Fatalf("station preempted its own job: %+v", d.Preempts)
	}
}

func TestPreemptWorstPriorityVictim(t *testing.T) {
	tab := table(t)
	for i := 0; i < 2; i++ {
		tab.Update("mid", 1, false)
	}
	for i := 0; i < 8; i++ {
		tab.Update("worst", 3, false)
	}
	for i := 0; i < 3; i++ {
		tab.Update("light", 0, true)
	}
	stations := []StationView{
		{Name: "light", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "mid/1", ForeignOwner: "mid"},
		{Name: "e2", State: proto.StationClaimed, ForeignJob: "worst/1", ForeignOwner: "worst"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Preempts) != 1 || d.Preempts[0].Victim != "worst" {
		t.Fatalf("preempts = %+v, want the worst-priority holder evicted", d.Preempts)
	}
}

func TestDiskFullStationNotGranted(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "full", State: proto.StationIdle, DiskFree: 10},
		{Name: "roomy", State: proto.StationIdle, DiskFree: 1 << 20},
	}
	cfg := DefaultConfig()
	cfg.MinDiskBytes = 1024
	d := Decide(stations, tab, cfg)
	if len(d.Grants) != 1 || d.Grants[0].Exec != "roomy" {
		t.Fatalf("grants = %+v, want roomy selected", d.Grants)
	}
}

func TestHistoryPlacementPrefersLongIdleMachines(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "flaky", State: proto.StationIdle, AvgIdleLen: 5 * time.Minute},
		{Name: "stable", State: proto.StationIdle, AvgIdleLen: 8 * time.Hour},
	}
	cfg := DefaultConfig()
	cfg.Placement = PlaceHistory
	d := Decide(stations, tab, cfg)
	if len(d.Grants) != 1 || d.Grants[0].Exec != "stable" {
		t.Fatalf("grants = %+v, want the stable machine", d.Grants)
	}
	// First-fit picks by name instead.
	cfg.Placement = PlaceFirstFit
	d = Decide(stations, tab, cfg)
	if d.Grants[0].Exec != "flaky" {
		t.Fatalf("first-fit grant = %+v, want name order", d.Grants)
	}
}

func TestNoRequestersNoActions(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "i1", State: proto.StationIdle},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "x/1", ForeignOwner: "x"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Grants) != 0 || len(d.Preempts) != 0 {
		t.Fatalf("decision = %+v, want empty", d)
	}
}

func TestSuspendedStationNotGranted(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "s", State: proto.StationSuspended, ForeignJob: "b/1", ForeignOwner: "b"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Grants) != 0 {
		t.Fatalf("granted a suspended station: %+v", d.Grants)
	}
	// Suspended stations are also not preemption victims (their job is
	// already stopped and will vacate via the grace path).
	if len(d.Preempts) != 0 {
		t.Fatalf("preempted a suspended station: %+v", d.Preempts)
	}
}

func TestFIFOPrioritizer(t *testing.T) {
	f := NewFIFOPrioritizer()
	rank := f.Rank([]string{"c", "a", "b"})
	// First Rank call establishes order of appearance: c, a, b.
	if rank[0] != "c" || rank[1] != "a" || rank[2] != "b" {
		t.Fatalf("rank = %v", rank)
	}
	if !f.Better("c", "b") || f.Better("b", "c") {
		t.Fatal("Better inconsistent with rank")
	}
	// FIFO ignores consumption entirely: ranking is stable afterwards.
	rank2 := f.Rank([]string{"b", "a", "c"})
	if rank2[0] != "c" {
		t.Fatalf("rank2 = %v", rank2)
	}
}

func TestConfigSanitize(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "i", State: proto.StationIdle},
	}
	d := Decide(stations, tab, Config{}) // zero config must behave like default
	if len(d.Grants) != 1 {
		t.Fatalf("zero config grants = %+v", d.Grants)
	}
}

func TestMaxPreemptsZeroDisablesPreemption(t *testing.T) {
	tab := table(t)
	for i := 0; i < 5; i++ {
		tab.Update("heavy", 1, false)
		tab.Update("light", 0, true)
	}
	stations := []StationView{
		{Name: "light", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "heavy/1", ForeignOwner: "heavy"},
	}
	cfg := DefaultConfig()
	cfg.MaxPreemptsPerCycle = 0
	// sanitize must keep 0 as "disabled", not reset to 1.
	d := Decide(stations, tab, cfg)
	if len(d.Preempts) != 0 {
		t.Fatalf("preempts = %+v, want none", d.Preempts)
	}
}

func TestReservedMachineOnlyGrantedToHolder(t *testing.T) {
	tab := table(t)
	tab.Touch("holder")
	tab.Touch("other")
	stations := []StationView{
		{Name: "other", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "exec", State: proto.StationIdle, ReservedFor: "holder"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Grants) != 0 {
		t.Fatalf("reserved machine granted to non-holder: %+v", d.Grants)
	}
	// The holder gets it.
	stations = append(stations, StationView{
		Name: "holder", State: proto.StationOwner, WaitingJobs: 1,
	})
	cfg := DefaultConfig()
	cfg.MaxGrantsPerCycle = 2
	d = Decide(stations, tab, cfg)
	if len(d.Grants) != 1 || d.Grants[0].Requester != "holder" || d.Grants[0].Exec != "exec" {
		t.Fatalf("grants = %+v, want holder on exec", d.Grants)
	}
}

func TestReservedIdleMachineDoesNotBlockPreemption(t *testing.T) {
	// The only idle machine is reserved for someone else; a requester
	// that outranks a running job's owner must still preempt.
	tab := table(t)
	for i := 0; i < 5; i++ {
		tab.Update("heavy", 1, false)
		tab.Update("light", 0, true)
	}
	stations := []StationView{
		{Name: "light", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "idlebutres", State: proto.StationIdle, ReservedFor: "someoneelse"},
		{Name: "e1", State: proto.StationClaimed, ForeignJob: "heavy/1", ForeignOwner: "heavy"},
	}
	d := Decide(stations, tab, DefaultConfig())
	if len(d.Preempts) != 1 || d.Preempts[0].Victim != "heavy" {
		t.Fatalf("preempts = %+v, want heavy evicted", d.Preempts)
	}
}

func TestBurstPerStationAblationSwitch(t *testing.T) {
	tab := table(t)
	stations := []StationView{
		{Name: "a", State: proto.StationOwner, WaitingJobs: 5},
		{Name: "i1", State: proto.StationIdle},
		{Name: "i2", State: proto.StationIdle},
		{Name: "i3", State: proto.StationIdle},
	}
	cfg := DefaultConfig()
	cfg.MaxGrantsPerCycle = 8
	cfg.AllowBurstPerStation = true
	d := Decide(stations, tab, cfg)
	if len(d.Grants) != 3 {
		t.Fatalf("burst grants = %d, want 3 (all idle machines)", len(d.Grants))
	}
	for _, g := range d.Grants {
		if g.Requester != "a" {
			t.Fatalf("grant = %+v", g)
		}
	}
	// Burst never exceeds the station's waiting jobs.
	stations[0].WaitingJobs = 2
	d = Decide(stations, tab, cfg)
	if len(d.Grants) != 2 {
		t.Fatalf("grants = %d, want 2 (bounded by waiting jobs)", len(d.Grants))
	}
}
