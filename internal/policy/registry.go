package policy

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultPolicy is the registry name resolved when no policy is
// configured: the paper's Up-Down algorithm.
const DefaultPolicy = "updown"

// Factory builds a fresh Policy instance. Policies with per-instance
// state (FIFO's arrival table) must not share it across factories.
type Factory func() *Policy

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a named policy factory. It panics on empty or duplicate
// names — registration happens in init functions, where a collision is
// a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("policy: Register with empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("policy: duplicate Register of " + name)
	}
	registry[name] = f
}

// Names lists the registered policies, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named policy. The empty name resolves to
// DefaultPolicy; unknown names are an error listing the alternatives.
func New(name string) (*Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for callers whose name is statically known.
func MustNew(name string) *Policy {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

func init() {
	Register("updown", NewUpDown)
	Register("fifo", NewFIFO)
	Register("busiest-first", NewBusiestFirst)
	Register("backfill", NewBackfill)
	Register("deadline", NewDeadline)
}
