package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"condor/internal/proto"
)

// The policy conformance suite: one shared property harness run against
// every registered policy. These are the invariants NO policy may
// break, whatever its ranking or placement taste — they are the
// system's safety rules (§2.1 owner primacy, §4 pacing and disk, §5.3
// reservations, §2.4 preemption only with strictly better priority),
// not scheduling preferences. A new policy is added to the registry and
// passes this suite, or it does not ship; see DESIGN.md §"Scheduling
// pipeline".

// healthEligible mirrors the pipeline's requesterEligible/HealthPredicate.
func healthEligible(h proto.StationHealth) bool {
	return h == 0 || h == proto.HealthHealthy
}

// conformanceCfg derives a randomized-but-bounded cycle config.
func conformanceCfg(burst bool, maxGrants, maxPreempts uint8, minDisk bool, placement uint8) Config {
	cfg := Config{
		MaxGrantsPerCycle:    int(maxGrants % 8),
		MaxPreemptsPerCycle:  int(maxPreempts % 4),
		AllowBurstPerStation: burst,
		Placement:            PlacementStrategy(placement%3) + 1,
	}
	if minDisk {
		cfg.MinDiskBytes = 1024
	}
	return cfg
}

// checkDecisionInvariants asserts every rule of the conformance
// contract against one decision. It returns an error describing the
// first violation so quick.Check failures are diagnosable.
func checkDecisionInvariants(pol *Policy, views []StationView, prio Prioritizer, cfg Config, d Decision) error {
	sanitized := cfg
	sanitized.sanitize()
	byName := make(map[string]StationView, len(views))
	for _, v := range views {
		byName[v.Name] = v
	}

	// Grants: exec must be idle, healthy-eligible, disk-sufficient,
	// used at most once, and reservation-honouring; the requester must
	// exist, have waiting jobs, and be healthy-eligible.
	usedExec := map[string]bool{}
	grantsPerStation := map[string]int{}
	for _, g := range d.Grants {
		exec, ok := byName[g.Exec]
		if !ok {
			return fmt.Errorf("grant of unknown machine %q", g.Exec)
		}
		if exec.State != proto.StationIdle {
			return fmt.Errorf("grant of non-idle machine %q (%v)", g.Exec, exec.State)
		}
		if !healthEligible(exec.Health) {
			return fmt.Errorf("grant of non-healthy machine %q (%v)", g.Exec, exec.Health)
		}
		if sanitized.MinDiskBytes > 0 && exec.DiskFree < sanitized.MinDiskBytes {
			return fmt.Errorf("grant of machine %q with %d B free < MinDiskBytes %d",
				g.Exec, exec.DiskFree, sanitized.MinDiskBytes)
		}
		if usedExec[g.Exec] {
			return fmt.Errorf("machine %q granted twice", g.Exec)
		}
		usedExec[g.Exec] = true
		if exec.ReservedFor != "" && exec.ReservedFor != g.Requester {
			return fmt.Errorf("machine %q reserved for %q granted to %q",
				g.Exec, exec.ReservedFor, g.Requester)
		}
		req, ok := byName[g.Requester]
		if !ok {
			return fmt.Errorf("grant to unknown requester %q", g.Requester)
		}
		if req.WaitingJobs == 0 {
			return fmt.Errorf("grant to requester %q with no waiting jobs", g.Requester)
		}
		if !healthEligible(req.Health) {
			return fmt.Errorf("grant to non-healthy requester %q (%v)", g.Requester, req.Health)
		}
		grantsPerStation[g.Requester]++
	}
	// Caps: global, per-station pacing, and per-station demand.
	if len(d.Grants) > sanitized.MaxGrantsPerCycle {
		return fmt.Errorf("%d grants > MaxGrantsPerCycle %d", len(d.Grants), sanitized.MaxGrantsPerCycle)
	}
	for name, got := range grantsPerStation {
		if !sanitized.AllowBurstPerStation && got > 1 {
			return fmt.Errorf("station %q got %d grants in one cycle without burst", name, got)
		}
		if got > byName[name].WaitingJobs {
			return fmt.Errorf("station %q got %d grants for %d waiting jobs",
				name, got, byName[name].WaitingJobs)
		}
	}

	// Preempts: capped, each machine at most once, only claimed
	// machines running a foreign job, never self-serving, and the
	// beneficiary strictly outranks the victim under THIS policy's own
	// ordering.
	if len(d.Preempts) > sanitized.MaxPreemptsPerCycle {
		return fmt.Errorf("%d preempts > MaxPreemptsPerCycle %d",
			len(d.Preempts), sanitized.MaxPreemptsPerCycle)
	}
	usedPreempt := map[string]bool{}
	for _, p := range d.Preempts {
		exec, ok := byName[p.Exec]
		if !ok {
			return fmt.Errorf("preempt on unknown machine %q", p.Exec)
		}
		if exec.State != proto.StationClaimed || exec.ForeignJob == "" {
			return fmt.Errorf("preempt on machine %q not running a foreign job", p.Exec)
		}
		if usedPreempt[p.Exec] {
			return fmt.Errorf("machine %q preempted twice", p.Exec)
		}
		usedPreempt[p.Exec] = true
		if p.Victim == p.Beneficiary {
			return fmt.Errorf("station %q preempted to serve itself", p.Victim)
		}
		if !pol.Better(p.Beneficiary, p.Victim, views, prio, cfg) {
			return fmt.Errorf("beneficiary %q does not strictly outrank victim %q under policy %s",
				p.Beneficiary, p.Victim, pol.Name())
		}
	}
	return nil
}

// TestConformanceAllPolicies runs the shared invariant harness against
// every registered policy over randomized pools and configs.
func TestConformanceAllPolicies(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			property := func(seed int64, burst bool, maxGrants, maxPreempts uint8, minDisk bool, placement uint8) bool {
				r := rand.New(rand.NewSource(seed))
				views, tab := randomPool(r)
				cfg := conformanceCfg(burst, maxGrants, maxPreempts, minDisk, placement)
				// Fresh instance per pool: stateful rankers (FIFO) must
				// not leak arrival order across property cases.
				pol := MustNew(name)
				snapshot := append([]StationView(nil), views...)

				d := pol.Decide(views, tab, cfg)
				if err := checkDecisionInvariants(pol, views, tab, cfg, d); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				// Determinism: the same snapshot yields the same decision,
				// even for stateful rankers.
				if again := pol.Decide(views, tab, cfg); !reflect.DeepEqual(d, again) {
					t.Logf("seed %d: decision not deterministic\n first: %+v\nsecond: %+v", seed, d, again)
					return false
				}
				// Purity: Decide never mutates its input views.
				for i := range views {
					if views[i] != snapshot[i] {
						t.Logf("seed %d: Decide mutated views[%d]", seed, i)
						return false
					}
				}
				return true
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceRegistry: the registry carries at least the five
// shipped policies, resolves the empty name to updown, and rejects
// unknown names with a helpful error.
func TestConformanceRegistry(t *testing.T) {
	want := []string{"backfill", "busiest-first", "deadline", "fifo", "updown"}
	got := Names()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing policy %q (have %v)", w, got)
		}
	}
	p, err := New("")
	if err != nil || p.Name() != DefaultPolicy {
		t.Fatalf("New(\"\") = %v, %v; want the %s policy", p, err, DefaultPolicy)
	}
	if _, err := New("no-such-policy"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}
