package policy

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"condor/internal/decision"
	"condor/internal/proto"
	"condor/internal/updown"
)

// The audit hooks must be strictly observational: attaching a builder
// may never change what the pipeline decides. These tests pin that
// contract against the committed golden fixtures and the randomized
// conformance pools, for every registered policy.

// TestGoldenEquivalenceAudited replays every golden fixture through
// DecideAudited with a live builder and requires the identical decision
// the recorder-off path produced when the fixtures were committed.
func TestGoldenEquivalenceAudited(t *testing.T) {
	gf := loadGolden(t)
	for _, fx := range gf.Fixtures {
		tab := updown.NewTable(updown.DefaultConfig())
		tab.Restore(fx.Indexes)
		aud := decision.NewBuilder(1, time.Unix(0, 0))
		got := NewUpDown().DecideAudited(fx.Views, tab, fx.Cfg, aud)
		if !reflect.DeepEqual(got, fx.Decision) {
			t.Errorf("fixture seed=%d: audited decision diverged\n got: %+v\nwant: %+v",
				fx.Seed, got, fx.Decision)
			continue
		}
		a := aud.Done()
		if a.Policy != "updown" || a.Stations != len(fx.Views) {
			t.Errorf("fixture seed=%d: audit header %+v", fx.Seed, a)
		}
		// The audit's grants must mirror the decision's, in order.
		if len(a.Grants) != len(got.Grants) {
			t.Errorf("fixture seed=%d: %d audited grants, %d decided", fx.Seed, len(a.Grants), len(got.Grants))
			continue
		}
		for i, g := range got.Grants {
			if a.Grants[i].Requester != g.Requester || a.Grants[i].Exec != g.Exec {
				t.Errorf("fixture seed=%d: audit grant %d = %+v, decision %+v", fx.Seed, i, a.Grants[i], g)
			}
		}
		if len(a.Preempts) < len(got.Preempts) {
			t.Errorf("fixture seed=%d: %d audited preempt passes < %d decided preempts",
				fx.Seed, len(a.Preempts), len(got.Preempts))
		}
	}
}

// TestConformanceAuditObservational: for every registered policy over
// randomized pools, the audited and unaudited paths decide identically,
// and the audit's contents are consistent with the decision.
func TestConformanceAuditObservational(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			property := func(seed int64, burst bool, maxGrants, maxPreempts uint8, minDisk bool, placement uint8) bool {
				r := rand.New(rand.NewSource(seed))
				views, tab := randomPool(r)
				cfg := conformanceCfg(burst, maxGrants, maxPreempts, minDisk, placement)
				pol := MustNew(name)

				plain := pol.Decide(views, tab, cfg)
				aud := decision.NewBuilder(uint64(seed), time.Unix(0, 0))
				audited := pol.DecideAudited(views, tab, cfg, aud)
				if !reflect.DeepEqual(plain, audited) {
					t.Logf("seed %d: audit changed the decision\nplain:   %+v\naudited: %+v", seed, plain, audited)
					return false
				}
				a := aud.Done()
				if a.Policy != pol.Name() {
					t.Logf("seed %d: audit policy %q, want %q", seed, a.Policy, pol.Name())
					return false
				}
				// Every granted machine was audited as admitted (in Idle) and
				// never also rejected in the candidate phase.
				idle := map[string]bool{}
				for _, n := range a.Idle {
					idle[n] = true
				}
				candidateRejected := map[string]bool{}
				for _, rej := range a.Rejections {
					if rej.Requester == "" {
						candidateRejected[rej.Station] = true
					}
					if rej.Predicate == "" {
						t.Logf("seed %d: rejection with empty predicate %+v", seed, rej)
						return false
					}
				}
				for _, g := range audited.Grants {
					if !idle[g.Exec] {
						t.Logf("seed %d: granted machine %q not in audited idle set %v", seed, g.Exec, a.Idle)
						return false
					}
					if candidateRejected[g.Exec] {
						t.Logf("seed %d: machine %q both candidate-rejected and granted", seed, g.Exec)
						return false
					}
				}
				// Requesters with waiting jobs appear in the rank audit
				// exactly once, positions 0..n-1 in order.
				for i, e := range a.Requesters {
					if e.Position != i {
						t.Logf("seed %d: rank entry %d has position %d", seed, i, e.Position)
						return false
					}
				}
				// Every decided preemption has a matching audited outcome.
				for _, p := range audited.Preempts {
					found := false
					for i := range a.Preempts {
						if a.Preempts[i].Exec == p.Exec && a.Preempts[i].Victim == p.Victim {
							found = true
						}
					}
					if !found {
						t.Logf("seed %d: preempt %+v missing from audit %+v", seed, p, a.Preempts)
						return false
					}
				}
				return true
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAuditExplainsDiskRejection pins the operator-facing detail: a
// disk-short station's rejection carries the min-disk predicate with
// threshold and observed values, and the starved requester gets an
// unserved reason.
func TestAuditExplainsDiskRejection(t *testing.T) {
	views := []StationView{
		{Name: "asker", State: proto.StationOwner, WaitingJobs: 1},
		{Name: "small", State: proto.StationIdle, DiskFree: 512},
	}
	tab := updown.NewTable(updown.DefaultConfig())
	tab.Touch("asker")
	cfg := DefaultConfig()
	cfg.MinDiskBytes = 1 << 20

	aud := decision.NewBuilder(7, time.Unix(0, 0))
	d := NewUpDown().DecideAudited(views, tab, cfg, aud)
	if len(d.Grants) != 0 {
		t.Fatalf("granted %+v despite the disk predicate", d.Grants)
	}
	a := aud.Done()
	var rej *decision.Rejection
	for i := range a.Rejections {
		if a.Rejections[i].Station == "small" && a.Rejections[i].Predicate == "min-disk" {
			rej = &a.Rejections[i]
		}
	}
	if rej == nil {
		t.Fatalf("no min-disk rejection for small in %+v", a.Rejections)
	}
	if rej.Requester != "" {
		t.Errorf("disk rejection should be candidate-phase (requester-blind), got %q", rej.Requester)
	}
	if rej.Threshold == "" || rej.Observed == "" {
		t.Errorf("rejection lacks threshold/observed: %+v", rej)
	}
	if len(a.Unserved) != 1 || a.Unserved[0].Requester != "asker" {
		t.Fatalf("unserved %+v, want asker", a.Unserved)
	}
	// Rank audit carries the Up-Down schedule index as the score.
	if len(a.Requesters) != 1 || !a.Requesters[0].HasScore {
		t.Fatalf("rank audit %+v lacks a score", a.Requesters)
	}
}

// TestDecideAuditedNilBuilderAllocs pins the recorder-off contract at
// the pipeline level: a nil builder must not add a single allocation
// over the unaudited path (they are the same code path).
func TestDecideAuditedNilBuilderAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	views, tab := randomPool(r)
	cfg := DefaultConfig()
	pol := NewUpDown()
	pol.Decide(views, tab, cfg) // warm interned metrics

	base := testing.AllocsPerRun(200, func() { pol.Decide(views, tab, cfg) })
	nilAud := testing.AllocsPerRun(200, func() { pol.DecideAudited(views, tab, cfg, nil) })
	if nilAud > base {
		t.Fatalf("nil-builder path allocates %v/op, plain path %v/op", nilAud, base)
	}
}
