package coordinator

import (
	"context"
	"strings"
	"testing"
	"time"

	"condor/internal/cvm"
	"condor/internal/machine"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/wire"
)

// pool is a test harness: one coordinator and N stations with scripted
// monitors. The coordinator loop is driven manually via Cycle() so tests
// are deterministic.
type pool struct {
	coord    *Coordinator
	stations map[string]*schedd.Station
	monitors map[string]*machine.ScriptedMonitor
}

func newPool(t *testing.T, names []string, cfg Config) *pool {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Hour // loop effectively off; drive Cycle manually
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = time.Second
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	p := &pool{
		coord:    coord,
		stations: make(map[string]*schedd.Station, len(names)),
		monitors: make(map[string]*machine.ScriptedMonitor, len(names)),
	}
	for _, name := range names {
		mon := machine.NewScriptedMonitor(false)
		st, err := schedd.New(schedd.Config{
			Name:    name,
			Monitor: mon,
			Starter: ru.StarterConfig{
				ScanInterval:  3 * time.Millisecond,
				SuspendGrace:  20 * time.Millisecond,
				StepsPerSlice: 5_000,
				SliceDelay:    500 * time.Microsecond,
			},
			DialTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		if err := st.Register(coord.Addr()); err != nil {
			t.Fatal(err)
		}
		p.stations[name] = st
		p.monitors[name] = mon
	}
	return p
}

// cycleUntil drives coordinator cycles until cond or the deadline.
func (p *pool) cycleUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		p.coord.Cycle()
		time.Sleep(3 * time.Millisecond)
	}
}

func TestRegistrationViaWire(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	infos := p.coord.Stations()
	if len(infos) != 2 || infos[0].Name != "ws1" || infos[1].Name != "ws2" {
		t.Fatalf("stations = %+v", infos)
	}
}

func TestPollUpdatesPoolTable(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	// Both owners active: the poll must record the demand but no grant
	// is possible.
	p.monitors["ws1"].SetActive(true)
	p.monitors["ws2"].SetActive(true)
	if _, err := p.stations["ws1"].Submit("a", cvm.SumProgram(10), 0); err != nil {
		t.Fatal(err)
	}
	p.coord.Cycle()
	var ws1, ws2 proto.StationInfo
	for _, s := range p.coord.Stations() {
		switch s.Name {
		case "ws1":
			ws1 = s
		case "ws2":
			ws2 = s
		}
	}
	if ws1.State != proto.StationOwner || ws1.WaitingJobs != 1 {
		t.Fatalf("ws1 = %+v", ws1)
	}
	if ws2.State != proto.StationOwner {
		t.Fatalf("ws2 = %+v", ws2)
	}
	// Denied demand must have lowered ws1's Up-Down index.
	if p.coord.Index("ws1") >= 0 {
		t.Fatalf("ws1 index = %v, want negative after denied demand", p.coord.Index("ws1"))
	}
}

func TestGrantOwnIdleMachine(t *testing.T) {
	// A station that is itself idle may be granted its own machine — the
	// job runs "remotely" at home through the same RU path.
	p := newPool(t, []string{"ws1"}, Config{})
	jobID, err := p.stations["ws1"].Submit("a", cvm.SumProgram(20_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.cycleUntil(t, 20*time.Second, func() bool {
		status, err := p.stations["ws1"].Job(jobID)
		return err == nil && status.State == proto.JobCompleted
	})
	status, _ := p.stations["ws1"].Job(jobID)
	if status.ExecHost != "ws1" {
		t.Fatalf("exec host = %q, want ws1 itself", status.ExecHost)
	}
}

func TestEndToEndJobCompletion(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2", "ws3"}, Config{})
	jobID, err := p.stations["ws1"].Submit("alice", cvm.SumProgram(20_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan proto.JobStatus, 1)
	go func() {
		status, err := p.stations["ws1"].Wait(jobID, 30*time.Second)
		if err == nil {
			done <- status
		}
	}()
	p.cycleUntil(t, 20*time.Second, func() bool {
		select {
		case status := <-done:
			if status.State != proto.JobCompleted {
				t.Errorf("status = %+v", status)
			}
			if strings.TrimSpace(status.Stdout) != "200010000" {
				t.Errorf("stdout = %q", status.Stdout)
			}
			return true
		default:
			return false
		}
	})
	stats := p.coord.Stats()
	if stats.GrantsUsed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestGrantSkipsOwnerActiveStations(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	p.monitors["ws2"].SetActive(true) // only possible exec site is busy
	p.monitors["ws1"].SetActive(true) // and the submitter itself is busy
	if _, err := p.stations["ws1"].Submit("a", cvm.SumProgram(100), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.coord.Cycle()
	}
	if got := p.coord.Stats().Grants; got != 0 {
		t.Fatalf("grants = %d, want 0 (nothing idle)", got)
	}
}

func TestUpDownPreemptionServesLightUser(t *testing.T) {
	// heavy (ws1) fills both exec machines; light (ws2) then submits one
	// job. With nothing idle, the coordinator must preempt one of
	// heavy's jobs and give the machine to light.
	p := newPool(t, []string{"ws1", "ws2", "e1", "e2"}, Config{
		Policy: policy.Config{MaxGrantsPerCycle: 2, MaxPreemptsPerCycle: 1},
	})
	heavy := p.stations["ws1"]
	light := p.stations["ws2"]
	// The exec machines' "owners" are away; ws1+ws2 owners are active so
	// their own machines are not grant targets.
	p.monitors["ws1"].SetActive(true)
	p.monitors["ws2"].SetActive(true)

	for i := 0; i < 4; i++ {
		if _, err := heavy.Submit("heavy", cvm.SumProgram(500_000_000), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Let heavy occupy both machines.
	p.cycleUntil(t, 20*time.Second, func() bool {
		claimed := 0
		for _, s := range p.coord.Stations() {
			if s.Name == "e1" || s.Name == "e2" {
				if s.State == proto.StationClaimed {
					claimed++
				}
			}
		}
		return claimed == 2
	})

	lightJob, err := light.Submit("light", cvm.SumProgram(20_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan proto.JobStatus, 1)
	go func() {
		status, err := light.Wait(lightJob, 60*time.Second)
		if err == nil {
			done <- status
		}
	}()
	p.cycleUntil(t, 40*time.Second, func() bool {
		select {
		case status := <-done:
			if status.State != proto.JobCompleted {
				t.Errorf("light job = %+v", status)
			}
			return true
		default:
			return false
		}
	})
	if p.coord.Stats().Preempts == 0 {
		t.Fatal("light user was served without any preemption — test premise broken")
	}
	// Heavy's preempted job must be back in its queue (idle) or running
	// again, never lost.
	lostOK := false
	for _, j := range heavy.Queue() {
		if j.State == proto.JobIdle || j.State == proto.JobRunning ||
			j.State == proto.JobSuspendedState || j.State == proto.JobPlacing {
			lostOK = true
		}
	}
	if !lostOK {
		t.Fatalf("heavy queue = %+v", heavy.Queue())
	}
}

func TestCoordinatorSurvivesStationDeath(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{DeadAfter: 2})
	p.stations["ws2"].Close()
	p.coord.Cycle()
	p.coord.Cycle()
	infos := p.coord.Stations()
	if len(infos) != 1 || infos[0].Name != "ws1" {
		t.Fatalf("stations after death = %+v", infos)
	}
	if p.coord.Stats().PollFails == 0 {
		t.Fatal("poll failures not counted")
	}
}

func TestStationsSurviveCoordinatorDeath(t *testing.T) {
	// The paper's resilience claim: jobs already running are unaffected
	// by coordinator failure.
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	jobID, err := p.stations["ws1"].Submit("a", cvm.SumProgram(200_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.cycleUntil(t, 20*time.Second, func() bool {
		status, err := p.stations["ws1"].Job(jobID)
		return err == nil && status.State == proto.JobRunning
	})
	p.coord.Close() // coordinator dies mid-execution
	status, err := p.stations["ws1"].Wait(jobID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != proto.JobCompleted {
		t.Fatalf("job did not complete after coordinator death: %+v", status)
	}
}

func TestPoolStatusOverWire(t *testing.T) {
	p := newPool(t, []string{"ws1"}, Config{})
	p.coord.Cycle()
	peer, err := wire.Dial(p.coord.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.PoolStatusRequest{})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := reply.(proto.PoolStatusReply)
	if !ok || len(sr.Stations) != 1 || sr.Stations[0].Name != "ws1" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestRegisterValidation(t *testing.T) {
	p := newPool(t, nil, Config{})
	peer, err := wire.Dial(p.coord.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := peer.Call(ctx, proto.RegisterRequest{}); err == nil {
		t.Fatal("empty registration accepted")
	}
}

func TestGrantReconsideredNextCycleWhenUnused(t *testing.T) {
	// ws1 wants capacity but its queue empties before the grant lands
	// (we remove the job). The grant is unused; next cycle, state must
	// be consistent (no phantom claims).
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	jobID, err := p.stations["ws1"].Submit("a", cvm.SumProgram(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinator learns ws1 wants capacity.
	// Remove the job before any grant can be used.
	p.stations["ws1"].Remove(jobID)
	for i := 0; i < 3; i++ {
		p.coord.Cycle()
	}
	for _, s := range p.coord.Stations() {
		if s.State == proto.StationClaimed {
			t.Fatalf("phantom claim: %+v", s)
		}
	}
}

func TestCoordinatorRestartRediscoversPoolViaRegistrar(t *testing.T) {
	// A coordinator dies and a replacement starts at the same address.
	// Stations running StartRegistrar must re-register on their own once
	// polls stop arriving — the §2.1 recovery story with no manual step.
	coord1, err := New(Config{PollInterval: time.Hour, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := coord1.Addr()

	st, err := schedd.New(schedd.Config{
		Name:    "wsR",
		Monitor: machine.NewScriptedMonitor(false),
		Starter: ru.StarterConfig{ScanInterval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	stop, err := st.StartRegistrar(addr, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	if got := coord1.Stations(); len(got) != 1 {
		t.Fatalf("initial registration missing: %+v", got)
	}
	coord1.Close()

	// Replacement on the same port. (Bind may need a few retries while
	// the old listener drains.)
	var coord2 *Coordinator
	deadline := time.Now().Add(5 * time.Second)
	for {
		coord2, err = New(Config{PollInterval: time.Hour, ListenAddr: addr})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement coordinator never bound: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(coord2.Close)

	// The registrar notices missing polls (3×10ms) and re-registers.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if infos := coord2.Stations(); len(infos) == 1 && infos[0].Name == "wsR" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("station never re-registered with the replacement coordinator")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
