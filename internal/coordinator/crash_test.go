package coordinator

import (
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/cvm"
	"condor/internal/journal"
	"condor/internal/machine"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/wire"
)

// TestCrashRecoveryRestoresScheduleAndReservations is the core recovery
// contract: a coordinator killed without warning (Close writes no
// farewell snapshot) must come back with the exact up-down indexes, the
// station table, and every live reservation of its previous incarnation.
func TestCrashRecoveryRestoresScheduleAndReservations(t *testing.T) {
	dir := t.TempDir()
	p := newPool(t, []string{"ws1", "ws2", "ws3"}, Config{
		StateDir: dir,
		// No periodic snapshot: recovery must come from the record tail.
		SnapshotEvery: 1 << 20,
	})
	for _, m := range p.monitors {
		m.SetActive(true) // nothing idle: denied demand moves ws1's index
	}
	if _, err := p.stations["ws1"].Submit("alice", cvm.SumProgram(100), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.coord.Cycle()
	}
	if _, err := p.coord.Reserve("ws2", "ws1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := p.coord.Stats().Incarnation; got != 1 {
		t.Fatalf("fresh persistent coordinator incarnation = %d, want 1", got)
	}
	pre := make(map[string]float64, 3)
	for _, name := range []string{"ws1", "ws2", "ws3"} {
		pre[name] = p.coord.Index(name)
	}
	if pre["ws1"] >= 0 {
		t.Fatalf("test premise broken: ws1 index = %v, want negative after denied demand", pre["ws1"])
	}

	p.coord.Close() // crash

	coord2, err := New(Config{StateDir: dir, PollInterval: time.Hour, DialTimeout: time.Second})
	if err != nil {
		t.Fatalf("restart from state dir: %v", err)
	}
	defer coord2.Close()

	st := coord2.Stats()
	if st.Incarnation != 2 {
		t.Fatalf("incarnation after restart = %d, want 2", st.Incarnation)
	}
	if st.JournalReplayed == 0 {
		t.Fatalf("restart replayed no records: %+v", st)
	}
	for name, want := range pre {
		if got := coord2.Index(name); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s schedule index restored to %v, want %v", name, got, want)
		}
	}
	infos := coord2.Stations()
	if len(infos) != 3 {
		t.Fatalf("restored station table = %+v, want 3 stations", infos)
	}
	for _, s := range infos {
		if s.Name == "ws2" && s.ReservedFor != "ws1" {
			t.Fatalf("ws2 reservation lost across crash: %+v", s)
		}
	}
	// The restored reservation is enforced, not just displayed.
	if _, err := coord2.Reserve("ws2", "ws3", time.Minute); err == nil {
		t.Fatal("foreign re-reserve of a restored reservation accepted")
	}
	if _, err := coord2.Reserve("ws2", "ws1", time.Hour); err != nil {
		t.Fatalf("holder extend of restored reservation refused: %v", err)
	}
	if !coord2.CancelReservation("ws2") {
		t.Fatal("cancel of live restored reservation reported false")
	}
	// The journaled station addresses are live: one cycle polls the
	// still-running stations without any re-registration.
	coord2.Cycle()
	if coord2.Stats().Polls == 0 {
		t.Fatal("restored station addresses unusable — no poll succeeded")
	}
}

// TestReservationExpiryEdgesSurviveReplay pins the reservation boundary
// semantics and proves each edge round-trips through journal replay:
// expiry exactly at the poll instant, cancel of an already-expired
// reservation, and re-reserve of a held station.
func TestReservationExpiryEdgesSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	p := newPool(t, []string{"ws1", "ws2", "ws3"}, Config{StateDir: dir})

	// Edge 1 — expiry exactly at the poll time: a reservation whose
	// `until` equals the poll instant is already over (until is
	// exclusive), while one nanosecond earlier it is still held.
	until3, err := p.coord.Reserve("ws3", "ws1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p.coord.mu.Lock()
	holderBefore := p.coord.reservationForLocked("ws3", until3.Add(-time.Nanosecond))
	holderAt := p.coord.reservationForLocked("ws3", until3)
	p.coord.mu.Unlock()
	if holderBefore != "ws1" {
		t.Fatalf("holder 1ns before expiry = %q, want ws1", holderBefore)
	}
	if holderAt != "" {
		t.Fatalf("reservation still live at its own expiry instant: holder %q", holderAt)
	}

	// Edge 2 — cancelling an expired reservation prunes it but reports
	// false: the reservation had already ended on its own.
	if _, err := p.coord.Reserve("ws3", "ws1", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if p.coord.CancelReservation("ws3") {
		t.Fatal("cancel of expired reservation reported true")
	}
	if p.coord.CancelReservation("ws3") {
		t.Fatal("second cancel (entry already pruned) reported true")
	}

	// Edge 3 — re-reserve of a held station: refused for a different
	// holder, an extension for the same one.
	until2, err := p.coord.Reserve("ws2", "ws1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.coord.Reserve("ws2", "ws3", time.Minute); err == nil {
		t.Fatal("held station re-reserved by a different holder")
	}
	extended, err := p.coord.Reserve("ws2", "ws1", 2*time.Hour)
	if err != nil {
		t.Fatalf("holder extension refused: %v", err)
	}
	if !extended.After(until2) {
		t.Fatalf("extension did not move the deadline: %v -> %v", until2, extended)
	}

	// Crash and replay: the live ws2 reservation survives at millisecond
	// fidelity, the expired/cancelled ws3 one stays gone, and every edge
	// above still holds against the restored state.
	p.coord.Close()
	coord2, err := New(Config{StateDir: dir, PollInterval: time.Hour, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()

	if coord2.CancelReservation("ws3") {
		t.Fatal("expired reservation resurrected by replay")
	}
	if _, err := coord2.Reserve("ws2", "ws3", time.Minute); err == nil {
		t.Fatal("restored reservation not enforced against a different holder")
	}
	restoredUntil := time.UnixMilli(extended.UnixMilli())
	coord2.mu.Lock()
	holderBefore = coord2.reservationForLocked("ws2", restoredUntil.Add(-time.Millisecond))
	holderAt = coord2.reservationForLocked("ws2", restoredUntil)
	coord2.mu.Unlock()
	if holderBefore != "ws1" {
		t.Fatalf("restored holder before expiry = %q, want ws1", holderBefore)
	}
	if holderAt != "" {
		t.Fatalf("restored reservation live at its expiry instant: holder %q", holderAt)
	}
	// ws3, freed by replay, is reservable again.
	if _, err := coord2.Reserve("ws3", "ws2", time.Hour); err != nil {
		t.Fatalf("freed station not reservable after replay: %v", err)
	}
}

// TestCoordinatorReplayTruncationFuzz cuts the journal log at every byte
// offset — every possible torn write a crash can leave — and requires
// clean recovery at each: journal replay plus state rebuild must never
// error, and a full coordinator boots from sampled cut points.
func TestCoordinatorReplayTruncationFuzz(t *testing.T) {
	dir := t.TempDir()
	coord, err := New(Config{StateDir: dir, PollInterval: time.Hour, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the log with every record kind: registers, reservations,
	// a cancel, an up-down batch, and one unknown future kind (replay
	// must skip, not choke).
	coord.Register("ws1", "127.0.0.1:1")
	coord.Register("ws2", "127.0.0.1:2")
	if _, err := coord.Reserve("ws2", "ws1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Reserve("ws1", "ws2", time.Hour); err != nil {
		t.Fatal(err)
	}
	coord.CancelReservation("ws1")
	coord.mu.Lock()
	coord.table.Update("ws1", 0, true)
	coord.appendJournalLocked(persistRecord{Kind: recUpdown, Indexes: coord.table.Snapshot()})
	coord.appendJournalLocked(persistRecord{Kind: "future-kind", Name: "ws1"})
	coord.mu.Unlock()
	coord.Close()

	logs, err := filepath.Glob(filepath.Join(dir, "journal.*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("journal logs = %v (err %v), want exactly one", logs, err)
	}
	logName := filepath.Base(logs[0])
	raw, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 64 {
		t.Fatalf("log only %d bytes — fuzz would prove nothing", len(raw))
	}

	for cut := 0; cut <= len(raw); cut++ {
		sub := copyStateDir(t, dir)
		if err := os.Truncate(filepath.Join(sub, logName), int64(cut)); err != nil {
			t.Fatal(err)
		}
		j, recovered, err := journal.Open(sub, journal.Config{})
		if err != nil {
			t.Fatalf("cut at byte %d: journal.Open: %v", cut, err)
		}
		st, _ := rebuildState(recovered.Snapshot, recovered.Records, time.Now())
		if len(st.Stations) > 2 {
			t.Fatalf("cut at byte %d: rebuilt %d stations from a 2-station log", cut, len(st.Stations))
		}
		if err := j.Close(); err != nil {
			t.Fatalf("cut at byte %d: close: %v", cut, err)
		}
		// Full coordinator boot at sampled offsets (every boot binds a
		// listener; doing all of them buys nothing over the replay above).
		if cut%16 == 0 || cut == len(raw) {
			c2, err := New(Config{StateDir: sub, PollInterval: time.Hour, DialTimeout: time.Second})
			if err != nil {
				t.Fatalf("cut at byte %d: coordinator restart: %v", cut, err)
			}
			c2.Close()
		}
	}
}

// copyStateDir clones a journal state directory into a fresh temp dir.
func copyStateDir(t *testing.T, src string) string {
	t.Helper()
	dst, err := os.MkdirTemp(t.TempDir(), "cut")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestPoolChaosCrashMidWorkload is the end-to-end chaos run: a small
// pool works through a job queue while every station RPC crosses a
// fault-injecting proxy; mid-workload the coordinator is killed while a
// cycle is in flight and rebuilt from its state dir. No job may be lost,
// the reservation must hold across the crash, and the restored schedule
// indexes must match the pre-crash fairness state.
func TestPoolChaosCrashMidWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end chaos run skipped with -short")
	}
	dir := t.TempDir()
	mkCoord := func() *Coordinator {
		c, err := New(Config{
			StateDir:     dir,
			PollInterval: time.Hour, // cycles driven manually
			DialTimeout:  time.Second,
			// Injected poll failures must not amputate the pool.
			DeadAfter: 1000,
			Policy:    policy.Config{MaxGrantsPerCycle: 2, MaxPreemptsPerCycle: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	coord := mkCoord()
	t.Cleanup(func() { coord.Close() })

	names := []string{"ws1", "e1", "e2", "rsv"}
	stations := make(map[string]*schedd.Station, len(names))
	monitors := make(map[string]*machine.ScriptedMonitor, len(names))
	for _, name := range names {
		mon := machine.NewScriptedMonitor(false)
		st, err := schedd.New(schedd.Config{
			Name:    name,
			Monitor: mon,
			Starter: ru.StarterConfig{
				ScanInterval:  3 * time.Millisecond,
				SuspendGrace:  20 * time.Millisecond,
				StepsPerSlice: 5_000,
				SliceDelay:    500 * time.Microsecond,
			},
			DialTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		stations[name] = st
		monitors[name] = mon
		// All coordinator→station and schedd→exec traffic crosses the
		// fault proxy: grants carry the proxy address as ExecAddr too.
		coord.Register(name, faultProxy(t, st.Addr()))
	}
	monitors["ws1"].SetActive(true) // owner busy at home: jobs must go remote
	if _, err := coord.Reserve("rsv", "e1", time.Hour); err != nil {
		t.Fatal(err)
	}

	const jobCount = 4
	ids := make([]string, 0, jobCount)
	for i := 0; i < jobCount; i++ {
		id, err := stations["ws1"].Submit("alice", cvm.SumProgram(200_000), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	completed := func() int {
		n := 0
		for _, id := range ids {
			if s, err := stations["ws1"].Job(id); err == nil && s.State == proto.JobCompleted {
				n++
			}
		}
		return n
	}

	// Phase 1: run under faults until real progress, then crash.
	deadline := time.Now().Add(60 * time.Second)
	for completed() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no job completed before the crash point; stats %+v", coord.Stats())
		}
		coord.Cycle()
		time.Sleep(3 * time.Millisecond)
	}
	pre := make(map[string]float64, len(names))
	for _, name := range names {
		pre[name] = coord.Index(name)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord.Cycle()
	}()
	time.Sleep(500 * time.Microsecond)
	coord.Close() // kill while that cycle is in flight
	wg.Wait()

	// Phase 2: rebuild from the state dir.
	coord2 := mkCoord()
	t.Cleanup(func() { coord2.Close() })
	if got := coord2.Stats().Incarnation; got != 2 {
		t.Fatalf("incarnation after restart = %d, want 2", got)
	}
	infos := coord2.Stations()
	if len(infos) != len(names) {
		t.Fatalf("restored %d stations, want %d: %+v", len(infos), len(names), infos)
	}
	rsvSeen := false
	for _, s := range infos {
		if s.Name == "rsv" {
			rsvSeen = true
			if s.ReservedFor != "e1" {
				t.Fatalf("reservation lost across crash: %+v", s)
			}
		}
	}
	if !rsvSeen {
		t.Fatal("rsv station missing after restart")
	}
	// The killed in-flight cycle may have journaled one more up-down
	// batch after `pre` was captured; allow at most that one cycle of
	// index movement.
	for _, name := range names {
		if got := coord2.Index(name); math.Abs(got-pre[name]) > 2.0 {
			t.Fatalf("%s schedule index restored to %v, want ≈%v", name, got, pre[name])
		}
	}

	// Drive to completion through the same faulty proxies: nothing lost.
	deadline = time.Now().Add(120 * time.Second)
	for completed() < jobCount {
		if time.Now().After(deadline) {
			t.Fatalf("jobs lost after crash: %d/%d complete; queue %+v",
				completed(), jobCount, stations["ws1"].Queue())
		}
		coord2.Cycle()
		time.Sleep(3 * time.Millisecond)
	}
	for _, id := range ids {
		s, err := stations["ws1"].Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.State != proto.JobCompleted {
			t.Fatalf("job %s = %+v", id, s)
		}
		if s.ExecHost == "rsv" {
			t.Fatalf("job %s ran on rsv, reserved for e1 the whole run: %+v", id, s)
		}
	}
}

// faultProxy forwards TCP connections to target, wrapping the
// coordinator-facing side of every other connection in a FaultConn that
// severs the stream mid-frame after a byte budget — the classic
// partial-write crash. The schedule is deterministic per proxy.
func faultProxy(t *testing.T, target string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var n atomic.Int64
	go func() {
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			down, err := net.Dial("tcp", target)
			if err != nil {
				client.Close()
				continue
			}
			conn := net.Conn(client)
			switch n.Add(1) % 4 {
			case 2: // dies mid-conversation
				fc := wire.NewFaultConn(client)
				fc.SetPlan(wire.FaultPlan{DropAfterBytes: 700})
				conn = fc
			case 0: // dies almost immediately, likely mid-frame
				fc := wire.NewFaultConn(client)
				fc.SetPlan(wire.FaultPlan{DropAfterBytes: 150})
				conn = fc
			}
			go proxyPipe(conn, down)
			go proxyPipe(down, conn)
		}
	}()
	return ln.Addr().String()
}

func proxyPipe(dst, src net.Conn) {
	_, _ = io.Copy(dst, src)
	dst.Close()
	src.Close()
}
