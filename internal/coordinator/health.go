package coordinator

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"condor/internal/eventlog"
	"condor/internal/proto"
	"condor/internal/telemetry"
)

// Graded station health. The paper's coordinator models a station as
// alive until DeadAfter consecutive poll failures, then unregisters it —
// a binary that misclassifies every grey failure a real fleet produces:
// slow links, one-way partitions, flapping hosts, and replies that are
// well-formed but impossible. This file replaces the raw
// consecutive-failure counter with a state machine
//
//	healthy → suspect → quarantined → dead
//
// driven by a phi-accrual-flavoured suspicion score over a sliding
// window of poll outcomes and an EWMA of poll RTT. Suspect stations
// receive no new grants but keep their running jobs; quarantined
// stations leave the per-cycle poll fan-out entirely and are probed with
// jittered exponential backoff until enough consecutive probes succeed;
// byzantine replies (impossible state) quarantine immediately. When too
// much of the pool is non-healthy the coordinator freezes up-down index
// movement so users are not charged — or credited — for infrastructure
// failure.

// Health telemetry (see docs/OBSERVABILITY.md).
var (
	mHealthState = telemetry.NewGaugeVec("condor_coordinator_station_health",
		"Stations currently in each health state.", "state")
	mHealthTransitions = telemetry.NewCounterVec("condor_coordinator_health_transitions_total",
		"Station health-state transitions, by destination state.", "to")
	mQuarantines = telemetry.NewCounterVec("condor_coordinator_quarantines_total",
		"Quarantine entries by reason.", "reason")
	mHealthMTTR = telemetry.NewHistogram("condor_coordinator_health_mttr_seconds",
		"Time from a station leaving healthy to its readmission.", nil)
	mByzantine = telemetry.NewCounter("condor_coordinator_byzantine_replies_total",
		"Station replies that claimed impossible state.")
	mDegraded = telemetry.NewGauge("condor_coordinator_degraded",
		"1 while more than MaxUnhealthyFrac of the pool is non-healthy (up-down movement frozen).")
)

// HealthConfig tunes the graded station-health state machine. The zero
// value selects defaults (filled in by Config.sanitize, which also
// derives the time-valued defaults from PollInterval and RPCTimeout).
type HealthConfig struct {
	// WindowSize is the sliding window of recent poll outcomes kept per
	// station (max 64; default 16). Miss fraction and flap detection are
	// computed over this window, so a station alternating failures and
	// successes can no longer reset its record with a single success.
	WindowSize int
	// SuspectAt is the suspicion threshold entering suspect (default
	// 0.5 — one missed poll).
	SuspectAt float64
	// QuarantineAt is the suspicion threshold entering quarantine
	// (default 0.85 — three consecutive missed polls, or a mostly-missing
	// window).
	QuarantineAt float64
	// ReadmitAfter consecutive successful probes readmit a quarantined
	// station to healthy (default 2).
	ReadmitAfter int
	// ProbeBase is the initial gap before a quarantined station's first
	// probe; failures double it up to ProbeMax, and every wait is
	// jittered ±25% so a pool-wide outage does not heal in lockstep
	// (defaults: PollInterval and 16×ProbeBase).
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// SlowRTT is the floor below which a poll round trip is never
	// considered slow, however tight the station's historic variance
	// (default RPCTimeout/4).
	SlowRTT time.Duration
	// SlowAfter consecutive slow polls raise suspicion to the suspect
	// threshold (default 3).
	SlowAfter int
	// FlapFlips is how many reachable↔unreachable transitions within the
	// window quarantine a station as flapping (default 4).
	FlapFlips int
	// MaxUnhealthyFrac is the fraction of the pool that may be
	// non-healthy before the coordinator enters degraded mode and
	// freezes up-down index movement (default 0.5).
	MaxUnhealthyFrac float64
}

func (h *HealthConfig) sanitize(pollInterval, rpcTimeout time.Duration) {
	if h.WindowSize <= 0 {
		h.WindowSize = 16
	}
	if h.WindowSize > 64 {
		h.WindowSize = 64
	}
	if h.SuspectAt <= 0 {
		h.SuspectAt = 0.5
	}
	if h.QuarantineAt <= 0 {
		h.QuarantineAt = 0.85
	}
	if h.QuarantineAt < h.SuspectAt {
		h.QuarantineAt = h.SuspectAt
	}
	if h.ReadmitAfter <= 0 {
		h.ReadmitAfter = 2
	}
	if h.ProbeBase <= 0 {
		h.ProbeBase = pollInterval
	}
	if h.ProbeMax <= 0 {
		h.ProbeMax = 16 * h.ProbeBase
	}
	if h.SlowRTT <= 0 {
		h.SlowRTT = rpcTimeout / 4
	}
	if h.SlowAfter <= 0 {
		h.SlowAfter = 3
	}
	if h.FlapFlips <= 0 {
		h.FlapFlips = 4
	}
	if h.MaxUnhealthyFrac <= 0 {
		h.MaxUnhealthyFrac = 0.5
	}
}

// health is one station's graded-health record. All scoring state is
// scalar so the per-station hot path (observe, one call per poll result
// per cycle) stays allocation-free — BenchmarkHealthObserve gates this.
type health struct {
	state  proto.StationHealth
	since  time.Time
	reason string
	// unhealthySince anchors the MTTR measurement: set when the station
	// leaves healthy, cleared (and observed) on readmission.
	unhealthySince time.Time

	// window is the sliding record of recent poll outcomes, newest in
	// bit 0 (1 = miss); wlen is how many bits are populated.
	window uint64
	wlen   int
	// consecMiss counts consecutive failed contacts (polls and probes).
	consecMiss int
	// slowStreak counts consecutive successful-but-slow polls.
	slowStreak int
	// rttMean/rttDev are EWMAs of poll RTT and its absolute deviation,
	// in seconds.
	rttMean float64
	rttDev  float64
	// suspicion is the current score in [0,1], recomputed by observe.
	suspicion float64

	// Quarantine probing.
	probeAt time.Time
	backoff time.Duration
	probeOK int
	// rng is a per-station xorshift state for probe jitter.
	rng uint64
}

func newHealth(name string, now time.Time) health {
	// Seed the jitter stream from the station name so probe schedules
	// are decorrelated across stations yet deterministic per station.
	seed := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		seed ^= uint64(name[i])
		seed *= 1099511628211
	}
	return health{state: proto.HealthHealthy, since: now, rng: seed | 1}
}

func (h *health) rand() uint64 {
	x := h.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.rng = x
	return x
}

// jitter returns d ± 25%.
func (h *health) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	span := int64(d) / 2 // ±25% = a window half as wide as d
	off := int64(h.rand()%uint64(span)) - span/2
	return d + time.Duration(off)
}

// observe folds one poll (or probe) outcome into the station's health
// statistics and recomputes the suspicion score. slow is computed
// against the pre-update RTT baseline so one slow sample cannot raise
// the bar it is judged by. Allocation-free.
func (h *health) observe(cfg *HealthConfig, rtt time.Duration, ok bool) {
	h.window <<= 1
	if !ok {
		h.window |= 1
		h.consecMiss++
		h.slowStreak = 0
	} else {
		h.consecMiss = 0
		r := rtt.Seconds()
		if h.rttMean == 0 {
			h.rttMean = r
		}
		slow := rtt >= cfg.SlowRTT && (h.wlen < 3 || r > 2*h.rttMean+4*h.rttDev)
		dev := r - h.rttMean
		if dev < 0 {
			dev = -dev
		}
		h.rttMean += 0.2 * (r - h.rttMean)
		h.rttDev += 0.2 * (dev - h.rttDev)
		if slow {
			h.slowStreak++
		} else {
			h.slowStreak = 0
		}
	}
	if h.wlen < cfg.WindowSize {
		h.wlen++
	}

	// Suspicion: the max of three evidence channels. Consecutive misses
	// accrue phi-style (1, 2, 3 misses → 0.5, 0.75, 0.875); the windowed
	// miss fraction catches stations that fail often without ever
	// failing long; the slow streak tops out below the quarantine
	// threshold — persistent slowness makes a station suspect, never
	// quarantined, because it is still doing the work.
	// missFrac divides by the configured window size, not the populated
	// length: a single miss in a fresh window is one data point, not a
	// 100% failure rate (the consecutive-miss channel covers the young
	// window).
	missFrac := float64(bits.OnesCount64(h.window&h.mask())) / float64(cfg.WindowSize)
	consec := 1 - math.Exp2(-float64(h.consecMiss))
	slowComp := cfg.SuspectAt * float64(h.slowStreak) / float64(cfg.SlowAfter)
	if slowComp > 0.6 {
		slowComp = 0.6
	}
	h.suspicion = missFrac
	if consec > h.suspicion {
		h.suspicion = consec
	}
	if slowComp > h.suspicion {
		h.suspicion = slowComp
	}
}

// mask covers the populated window bits.
func (h *health) mask() uint64 {
	if h.wlen >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(h.wlen)) - 1
}

// flips counts reachable↔unreachable transitions inside the window —
// the flap signature. A station cycling N−1 failures and one success
// shows a high flip count even though its consecutive-failure counter
// keeps resetting.
func (h *health) flips() int {
	if h.wlen < 2 {
		return 0
	}
	m := (uint64(1) << uint(h.wlen-1)) - 1
	return bits.OnesCount64((h.window ^ (h.window >> 1)) & m)
}

// cleanStreak reports whether the n most recent observations were all
// successes.
func (h *health) cleanStreak(n int) bool {
	if h.wlen < n {
		return false
	}
	return h.window&((uint64(1)<<uint(n))-1) == 0
}

// resetScoring clears the evidence window after readmission so stale
// misses cannot immediately re-suspect a just-readmitted station.
func (h *health) resetScoring() {
	h.window = 0
	h.wlen = 0
	h.consecMiss = 0
	h.slowStreak = 0
	h.suspicion = 0
	h.probeOK = 0
	h.backoff = 0
	h.probeAt = time.Time{}
}

// coarseReason reduces a detailed reason to its metric label: the text
// before the first ':' (timeout, slow, byzantine, flap).
func coarseReason(reason string) string {
	for i := 0; i < len(reason); i++ {
		if reason[i] == ':' {
			return reason[:i]
		}
	}
	return reason
}

// byzantineReason inspects a successfully decoded poll reply for claims
// of impossible state. It returns "" for plausible replies, else a
// human-readable description. knownHome reports whether a station name
// is (or recently was) registered — a foreign job attributed to a home
// station the coordinator has never heard of is the "job the coordinator
// never placed" signature, while a recently-dead home is legitimate
// (its jobs outlive its registration).
func byzantineReason(polled string, r proto.PollReply, knownHome func(string) bool) string {
	if r.Name != "" && r.Name != polled {
		return fmt.Sprintf("byzantine: claims to be %q", r.Name)
	}
	if r.WaitingJobs < 0 {
		return fmt.Sprintf("byzantine: negative waiting jobs (%d)", r.WaitingJobs)
	}
	if r.DiskFreeBytes < 0 {
		return fmt.Sprintf("byzantine: negative capacity (%d bytes)", r.DiskFreeBytes)
	}
	if r.IdleStreakMillis < 0 || r.AvgIdleMillis < 0 {
		return "byzantine: negative idle history"
	}
	if r.State < proto.StationOwner || r.State > proto.StationSuspended {
		return fmt.Sprintf("byzantine: impossible state %d", int(r.State))
	}
	if r.ForeignOwnerStation != "" && r.ForeignOwnerStation != polled && !knownHome(r.ForeignOwnerStation) {
		return fmt.Sprintf("byzantine: runs job %q for unknown station %q", r.ForeignJob, r.ForeignOwnerStation)
	}
	return ""
}

// setHealthLocked moves a station to a new health state, journaling the
// transition, emitting the event, and updating counters. Caller holds
// c.mu. Dead is not set here — removal goes through removeStationLocked.
func (c *Coordinator) setHealthLocked(s *station, to proto.StationHealth, reason string, now time.Time) {
	from := s.health.state
	if from == to {
		return
	}
	s.health.state = to
	s.health.since = now
	s.health.reason = reason
	mHealthTransitions.With(to.String()).Inc()
	if from == proto.HealthHealthy {
		s.health.unhealthySince = now
	}
	switch to {
	case proto.HealthHealthy:
		if !s.health.unhealthySince.IsZero() {
			mHealthMTTR.ObserveDuration(now.Sub(s.health.unhealthySince))
			s.health.unhealthySince = time.Time{}
		}
		if from == proto.HealthQuarantined {
			c.stats.Readmissions++
			// Clear the evidence window only on readmission from
			// quarantine, where the stale misses would immediately
			// re-quarantine. Suspect→healthy keeps its window so a
			// flapper's up/down history survives the dips to healthy.
			s.health.resetScoring()
		}
		s.health.reason = ""
		c.events.Append(eventlog.Event{Kind: eventlog.KindReadmit, Station: s.name,
			Detail: "readmitted from " + from.String()})
	case proto.HealthSuspect:
		c.stats.Suspects++
		c.events.Append(eventlog.Event{Kind: eventlog.KindSuspect, Station: s.name, Detail: reason})
	case proto.HealthQuarantined:
		c.stats.Quarantines++
		mQuarantines.With(coarseReason(reason)).Inc()
		s.health.probeOK = 0
		s.health.backoff = c.cfg.Health.ProbeBase
		s.health.probeAt = now.Add(s.health.jitter(s.health.backoff))
		c.events.Append(eventlog.Event{Kind: eventlog.KindQuarantine, Station: s.name, Detail: reason})
	}
	c.appendJournalLocked(persistRecord{
		Kind: recHealth, Name: s.name,
		Health: int(to), Reason: s.health.reason, SinceUnixMilli: now.UnixMilli(),
	})
}

// removeStationLocked declares a station dead and unregisters it.
// Caller holds c.mu; returns the address to invalidate in the pool.
func (c *Coordinator) removeStationLocked(s *station, reason string, now time.Time) string {
	mHealthTransitions.With(proto.HealthDead.String()).Inc()
	delete(c.stations, s.name)
	c.rememberRemovedLocked(s.name, now)
	mStations.Set(int64(len(c.stations)))
	c.table.Remove(s.name)
	c.appendJournalLocked(persistRecord{Kind: recUnregister, Name: s.name})
	c.events.Append(eventlog.Event{Kind: eventlog.KindDead, Station: s.name, Detail: reason})
	return s.addr
}

// rememberRemovedLocked keeps a bounded tombstone set of recently
// removed stations so byzantineReason does not flag jobs whose home
// station died after placing them.
func (c *Coordinator) rememberRemovedLocked(name string, now time.Time) {
	if c.removed == nil {
		c.removed = make(map[string]time.Time)
	}
	if len(c.removed) >= 256 {
		// Evict the oldest tombstone; 256 concurrent recent deaths means
		// the pool has bigger problems than a spurious byzantine flag.
		var oldest string
		var oldestAt time.Time
		for n, at := range c.removed {
			if oldest == "" || at.Before(oldestAt) {
				oldest, oldestAt = n, at
			}
		}
		delete(c.removed, oldest)
	}
	c.removed[name] = now
}

// knownHomeLocked reports whether name is a registered station or a
// recent tombstone. Caller holds c.mu.
func (c *Coordinator) knownHomeLocked(name string) bool {
	if _, ok := c.stations[name]; ok {
		return true
	}
	_, ok := c.removed[name]
	return ok
}

// evalHealthLocked applies one poll outcome to a station's health state
// machine. byzReason is non-empty when the reply claimed impossible
// state. Returns the station's address when it was removed (dead), else
// "". Caller holds c.mu.
func (c *Coordinator) evalHealthLocked(s *station, now time.Time, pollOK bool, byzReason string) (removedAddr string) {
	h := &s.health
	cfg := &c.cfg.Health

	if byzReason != "" {
		c.stats.ByzantineReplies++
		mByzantine.Inc()
		if h.state == proto.HealthQuarantined {
			// Still lying on probe: reset readmission progress, back off
			// harder.
			h.probeOK = 0
			c.backoffProbeLocked(s, now)
		} else {
			c.setHealthLocked(s, proto.HealthQuarantined, byzReason, now)
		}
		return ""
	}

	// The DeadAfter contract survives the state machine: a station that
	// misses this many consecutive contacts (cycle polls while healthy
	// or suspect, backoff probes while quarantined) is unregistered.
	if !pollOK && h.consecMiss >= c.cfg.DeadAfter {
		return c.removeStationLocked(s,
			fmt.Sprintf("timeout: %d consecutive failed contacts", h.consecMiss), now)
	}

	switch h.state {
	case proto.HealthQuarantined:
		if pollOK {
			h.probeOK++
			if h.probeOK >= cfg.ReadmitAfter {
				c.setHealthLocked(s, proto.HealthHealthy, "", now)
			} else {
				// Probe again soon: readmission wants consecutive
				// successes, not one lucky packet.
				h.probeAt = now.Add(h.jitter(cfg.ProbeBase))
			}
		} else {
			h.probeOK = 0
			c.backoffProbeLocked(s, now)
		}
	case proto.HealthSuspect:
		if reason, bad := c.quarantineReasonLocked(h); bad {
			c.setHealthLocked(s, proto.HealthQuarantined, reason, now)
		} else if h.suspicion < cfg.SuspectAt/2 && h.cleanStreak(cfg.ReadmitAfter) {
			// Hysteresis: leaving suspect takes both a low score and a
			// streak of clean polls — one lucky success is not recovery.
			c.setHealthLocked(s, proto.HealthHealthy, "", now)
		}
	default: // healthy
		if reason, bad := c.quarantineReasonLocked(h); bad {
			c.setHealthLocked(s, proto.HealthQuarantined, reason, now)
		} else if h.suspicion >= cfg.SuspectAt {
			c.setHealthLocked(s, proto.HealthSuspect, c.suspectReason(h), now)
		}
	}
	return ""
}

// quarantineReasonLocked reports whether the station's evidence crosses
// a quarantine threshold, and why.
func (c *Coordinator) quarantineReasonLocked(h *health) (string, bool) {
	cfg := &c.cfg.Health
	if f := h.flips(); f >= cfg.FlapFlips {
		return fmt.Sprintf("flap: %d up/down transitions in window", f), true
	}
	if h.suspicion >= cfg.QuarantineAt && h.consecMiss > 0 {
		return fmt.Sprintf("timeout: suspicion %.2f (%d consecutive misses)",
			h.suspicion, h.consecMiss), true
	}
	if h.suspicion >= cfg.QuarantineAt {
		return fmt.Sprintf("timeout: suspicion %.2f over window", h.suspicion), true
	}
	return "", false
}

// suspectReason labels why a station became suspect.
func (c *Coordinator) suspectReason(h *health) string {
	if h.consecMiss > 0 {
		return fmt.Sprintf("timeout: %d missed poll(s), suspicion %.2f", h.consecMiss, h.suspicion)
	}
	if h.slowStreak > 0 {
		return fmt.Sprintf("slow: %d consecutive slow polls (mean RTT %.0fms)",
			h.slowStreak, h.rttMean*1000)
	}
	return fmt.Sprintf("timeout: suspicion %.2f over window", h.suspicion)
}

// backoffProbeLocked doubles (and jitters) a quarantined station's probe
// gap up to ProbeMax.
func (c *Coordinator) backoffProbeLocked(s *station, now time.Time) {
	h := &s.health
	if h.backoff <= 0 {
		h.backoff = c.cfg.Health.ProbeBase
	} else {
		h.backoff *= 2
	}
	if h.backoff > c.cfg.Health.ProbeMax {
		h.backoff = c.cfg.Health.ProbeMax
	}
	h.probeAt = now.Add(h.jitter(h.backoff))
}

// updateDegradedLocked recomputes degraded mode from the pool's health
// census and emits the transition event. Caller holds c.mu.
func (c *Coordinator) updateDegradedLocked(now time.Time) {
	var total, nonHealthy, suspect, quarantined int64
	for _, s := range c.stations {
		total++
		switch s.health.state {
		case proto.HealthSuspect:
			suspect++
			nonHealthy++
		case proto.HealthQuarantined:
			quarantined++
			nonHealthy++
		}
	}
	mHealthState.With("healthy").Set(total - nonHealthy)
	mHealthState.With("suspect").Set(suspect)
	mHealthState.With("quarantined").Set(quarantined)
	degraded := total > 0 && float64(nonHealthy) > c.cfg.Health.MaxUnhealthyFrac*float64(total)
	if degraded == c.degraded {
		return
	}
	c.degraded = degraded
	if degraded {
		mDegraded.Set(1)
		c.stats.DegradedCycles++ // counted again per cycle in Cycle
		c.events.Append(eventlog.Event{Kind: eventlog.KindDegraded,
			Detail: fmt.Sprintf("entered: %d/%d stations non-healthy, up-down frozen", nonHealthy, total)})
	} else {
		mDegraded.Set(0)
		c.events.Append(eventlog.Event{Kind: eventlog.KindDegraded,
			Detail: "left: pool health recovered, up-down resumed"})
	}
}
