package coordinator

import (
	"strings"
	"testing"
	"time"
)

// TestPolicyNameJournaled: the active scheduling policy is part of the
// coordinator's durable identity — a restart without an explicit policy
// keeps scheduling the way the previous incarnation did, an explicit
// policy wins and becomes the new journaled choice, and an operator
// typo fails startup instead of silently scheduling differently.
func TestPolicyNameJournaled(t *testing.T) {
	dir := t.TempDir()
	base := Config{StateDir: dir, PollInterval: time.Hour, DialTimeout: time.Second}

	cfg := base
	cfg.Policy.Name = "busiest-first"
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.PolicyName(); got != "busiest-first" {
		t.Fatalf("explicit policy = %q, want busiest-first", got)
	}
	c1.Close() // crash: no farewell state write beyond the journal

	// Restart with no policy configured: the journaled name rules.
	c2, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.PolicyName(); got != "busiest-first" {
		t.Fatalf("policy after restart = %q, want the journaled busiest-first", got)
	}
	c2.Close()

	// An explicit policy overrides the journaled one and is journaled
	// in turn.
	cfg = base
	cfg.Policy.Name = "fifo"
	c3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c3.PolicyName(); got != "fifo" {
		t.Fatalf("explicit override = %q, want fifo", got)
	}
	c3.Close()
	c4, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := c4.PolicyName(); got != "fifo" {
		t.Fatalf("policy after second restart = %q, want fifo", got)
	}
	c4.Close()
}

// TestPolicyNameUnknownFailsStartup: a typo in the configured policy
// must fail fast with the registered alternatives in the error.
func TestPolicyNameUnknownFailsStartup(t *testing.T) {
	cfg := Config{PollInterval: time.Hour, DialTimeout: time.Second}
	cfg.Policy.Name = "no-such-policy"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("unknown policy: got err %v, want a naming error", err)
	}
	cfg.StateDir = t.TempDir()
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("unknown policy with state dir: got err %v, want a naming error", err)
	}
}

// TestPolicyNameDefault: with nothing configured and nothing journaled,
// the coordinator schedules with the paper's Up-Down policy and says so
// over the status RPC.
func TestPolicyNameDefault(t *testing.T) {
	c, err := New(Config{PollInterval: time.Hour, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.PolicyName(); got != "updown" {
		t.Fatalf("default policy = %q, want updown", got)
	}
}
