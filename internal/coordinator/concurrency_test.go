package coordinator

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/proto"
)

// TestCycleBoundsPollConcurrency proves the PollConcurrency semaphore
// is a real ceiling: with 32 stations and a cap of 4, the station-side
// handler must never observe more than 4 polls in flight, and every
// station must still get polled.
func TestCycleBoundsPollConcurrency(t *testing.T) {
	const (
		stations = 32
		cap      = 4
	)
	var inFlight, peak atomic.Int64
	srv := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		// Hold the poll open long enough that an unbounded fan-out would
		// pile all 32 up at once.
		time.Sleep(10 * time.Millisecond)
		return proto.PollReply{State: proto.StationIdle}, nil
	})

	coord, err := New(Config{
		PollInterval:    time.Hour,
		PollConcurrency: cap,
		RPCTimeout:      30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for i := 0; i < stations; i++ {
		coord.Register(fmt.Sprintf("ws%02d", i), srv.Addr())
	}

	coord.Cycle()

	if got := peak.Load(); got > cap {
		t.Fatalf("peak in-flight polls = %d, want <= %d", got, cap)
	}
	stats := coord.Stats()
	if stats.Polls != stations {
		t.Fatalf("successful polls = %d, want %d (bounding must not drop polls)", stats.Polls, stations)
	}
	if stats.PollFails != 0 {
		t.Fatalf("poll failures = %d, want 0", stats.PollFails)
	}
}

// TestPollConcurrencyDefault pins the sanitize default so nobody lowers
// it accidentally.
func TestPollConcurrencyDefault(t *testing.T) {
	cfg := Config{}
	cfg.sanitize()
	if cfg.PollConcurrency != 64 {
		t.Fatalf("default PollConcurrency = %d, want 64", cfg.PollConcurrency)
	}
}
