// Package coordinator implements Condor's central coordinator (§2.1): a
// deliberately thin daemon that polls every registered station on a
// fixed interval, maintains the Up-Down schedule indexes, and assigns
// capacity from idle workstations to stations with background jobs
// waiting. All job state stays at the stations; if the coordinator dies,
// running jobs are unaffected and only new allocations stop — restarting
// it (anywhere) rebuilds its entire state from registrations and polls.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"condor/internal/accounting"
	"condor/internal/decision"
	"condor/internal/eventlog"
	"condor/internal/journal"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/telemetry"
	"condor/internal/trace"
	"condor/internal/updown"
	"condor/internal/wire"
)

// Coordinator telemetry (see docs/OBSERVABILITY.md). Interned once;
// cycle and poll paths only touch atomics.
var (
	mCycleDuration = telemetry.NewHistogram("condor_coordinator_cycle_seconds",
		"Duration of one full poll-decide-act allocation cycle.", nil)
	mPollLatency = telemetry.NewHistogram("condor_coordinator_poll_seconds",
		"Latency of one station poll RPC within the cycle fan-out.", nil)
	mPollFails = telemetry.NewCounter("condor_coordinator_poll_failures_total",
		"Station polls that failed (station unreachable or RPC error).")
	mGrants = telemetry.NewCounter("condor_coordinator_grants_total",
		"Capacity grants issued to stations.")
	mGrantsUsed = telemetry.NewCounter("condor_coordinator_grants_used_total",
		"Grants the receiving station actually used to place a job.")
	mGrantsDenied = telemetry.NewCounter("condor_coordinator_grants_denied_total",
		"Grants the receiving station declined (pacing, no jobs left, disk).")
	mPreempts = telemetry.NewCounter("condor_coordinator_preempts_total",
		"Up-Down preemption orders sent to execution stations.")
	mStations = telemetry.NewGauge("condor_coordinator_stations",
		"Stations currently registered in the pool.")
	mPollInFlight = telemetry.NewGauge("condor_coordinator_polls_in_flight",
		"Station polls currently in flight (bounded by PollConcurrency).")
)

// Config parameterizes a coordinator.
type Config struct {
	// ListenAddr is the bind address (default "127.0.0.1:0").
	ListenAddr string
	// PollInterval is the station poll period (paper: 2 minutes).
	PollInterval time.Duration
	// DialTimeout bounds one station TCP connect.
	DialTimeout time.Duration
	// RPCTimeout bounds one station RPC end-to-end, connection
	// establishment included (default DialTimeout + 10s). It applies
	// uniformly to polls, grants, preempts, and reservation enforcement.
	RPCTimeout time.Duration
	// IdleConnTimeout evicts pooled station connections unused this long
	// (default 5 minutes; negative disables eviction).
	IdleConnTimeout time.Duration
	// DialPerRPC disables connection reuse, dialing every station fresh
	// for each RPC — the pre-pool behaviour, kept for ablation
	// benchmarks.
	DialPerRPC bool
	// Policy tunes allocation; zero value means policy.DefaultConfig.
	Policy policy.Config
	// UpDown tunes the fairness index; zero value means defaults.
	UpDown updown.Config
	// DeadAfter unregisters a station that has failed this many
	// consecutive contacts (default 5). With graded health this is the
	// final escalation: quarantined stations keep accruing misses
	// through their backoff probes until this threshold declares them
	// dead.
	DeadAfter int
	// Health tunes the graded station-health state machine (healthy →
	// suspect → quarantined → dead); zero value selects defaults derived
	// from PollInterval and RPCTimeout. See HealthConfig.
	Health HealthConfig
	// PollConcurrency caps how many station polls run at once in a
	// cycle (default 64). Without a cap a 10k-station pool would burst
	// 10k goroutines and dials every cycle; with it the fan-out streams
	// through a fixed-size window.
	PollConcurrency int
	// StateDir enables the durable-state journal: up-down indexes,
	// reservations, and the station table survive a coordinator crash
	// and are replayed on the next start. Empty means pure in-memory
	// (the paper's original behaviour).
	StateDir string
	// SnapshotEvery writes a full-state snapshot (compacting the
	// journal) every N poll cycles (default 16). The journal also
	// compacts early whenever its log outgrows the size threshold.
	SnapshotEvery int
	// SyncEvery fsyncs the journal after every Nth append (default 1 =
	// every append; negative disables fsync for benchmarks).
	SyncEvery int
	// Decisions receives each cycle's scheduling audit (why every
	// machine was filtered, ranked, granted, or preempted — see
	// internal/decision). Nil means decision.Default, which the
	// /decisions endpoint on the -http listener serves.
	Decisions *decision.Recorder
}

func (c *Config) sanitize() {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Minute
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = c.DialTimeout + 10*time.Second
	}
	if c.IdleConnTimeout == 0 {
		c.IdleConnTimeout = 5 * time.Minute
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5
	}
	if c.PollConcurrency <= 0 {
		c.PollConcurrency = 64
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 16
	}
	if c.Decisions == nil {
		c.Decisions = decision.Default
	}
	c.Health.sanitize(c.PollInterval, c.RPCTimeout)
	// Sanitize sub-configs field-by-field: a partially filled struct keeps
	// every field the user set and defaults only the rest. (Replacing the
	// whole struct when one sentinel field was zero used to clobber, e.g.,
	// a configured MaxPreemptsPerCycle.) A fully zero struct still means
	// "use the package defaults".
	if c.Policy == (policy.Config{}) {
		c.Policy = policy.DefaultConfig()
	} else {
		if c.Policy.MaxGrantsPerCycle <= 0 {
			c.Policy.MaxGrantsPerCycle = 1
		}
		if c.Policy.MaxPreemptsPerCycle < 0 {
			c.Policy.MaxPreemptsPerCycle = 0
		}
		if c.Policy.Placement == 0 {
			c.Policy.Placement = policy.PlaceFirstFit
		}
	}
	if c.UpDown == (updown.Config{}) {
		c.UpDown = updown.DefaultConfig()
	} else {
		def := updown.DefaultConfig()
		if c.UpDown.UpRate <= 0 {
			c.UpDown.UpRate = def.UpRate
		}
		if c.UpDown.DownRate <= 0 {
			c.UpDown.DownRate = def.DownRate
		}
		if c.UpDown.DecayRate < 0 {
			c.UpDown.DecayRate = 0
		}
		if c.UpDown.MaxAbs <= 0 {
			c.UpDown.MaxAbs = def.MaxAbs
		}
	}
}

// station is the coordinator's view of one workstation.
type station struct {
	name      string
	addr      string
	lastPoll  time.Time
	lastReply proto.PollReply
	reachable bool
	// health is the station's graded-health record (see health.go). It
	// subsumes the old consecutive-failure counter: misses are tracked
	// over a sliding window, so a flapping station can no longer reset
	// its record with a single lucky success.
	health health
}

// Stats counts coordinator activity.
type Stats struct {
	Cycles     uint64
	Polls      uint64
	PollFails  uint64
	Grants     uint64
	GrantsUsed uint64
	// GrantsDenied counts grants the receiving station declined (pacing,
	// no idle jobs, disk full, owner returned mid-grant).
	GrantsDenied uint64
	Preempts     uint64
	// Graded-health activity: stations marked suspect, quarantine
	// entries, quarantined stations readmitted to healthy, poll replies
	// rejected as byzantine, and cycles spent in degraded mode (up-down
	// movement frozen because too much of the pool was non-healthy).
	Suspects         uint64
	Quarantines      uint64
	Readmissions     uint64
	ByzantineReplies uint64
	DegradedCycles   uint64
	// Wire-client activity on the pooled station connections: fresh
	// dials, calls served by a cached connection, dials replacing a dead
	// one, idle evictions, and CallRetry re-attempts.
	Dials      uint64
	Reuses     uint64
	Reconnects uint64
	Evictions  uint64
	Retries    uint64
	// Incarnation counts how many times this coordinator's state
	// directory has been opened — 1 on a fresh persistent coordinator,
	// incrementing on every restart; 0 for an in-memory coordinator.
	Incarnation uint64
	// Journal activity (all zero without StateDir): records appended and
	// snapshots written this incarnation, current log size, records
	// replayed at startup, torn-tail bytes truncated at startup, and
	// append/encode failures.
	JournalAppends   uint64
	JournalSnapshots uint64
	JournalLogBytes  int64
	JournalReplayed  uint64
	JournalTruncated int64
	JournalErrors    uint64
}

// Coordinator is the central capacity allocator.
type Coordinator struct {
	cfg    Config
	server *wire.Server
	// pool caches one connection per station so the poll loop does not
	// pay a dial per RPC (nil in DialPerRPC ablation mode).
	pool   *wire.ClientPool
	table  *updown.Table
	events *eventlog.Log
	// pipeline is the active scheduling policy, resolved from
	// Config.Policy.Name (or the journaled name of the previous
	// incarnation) at startup and immutable afterwards.
	pipeline *policy.Policy
	// journal is the durable-state log (nil without StateDir).
	journal *journal.Journal
	started time.Time
	// led is this coordinator's allocation ledger (grants, denials,
	// preempts, capacity consumed per home station) plus the cluster
	// time-series sampler. It is NOT accounting.Default: the coordinator's
	// totals are journaled and restored with its state, so they need an
	// instance whose lifecycle matches the journal's.
	led *accounting.Ledger
	// readyName identifies this coordinator's /healthz readiness check.
	readyName string
	// lastCycleNanos is when the last poll cycle completed; journalHealthy
	// clears when a journal append/snapshot fails. Both feed Ready().
	lastCycleNanos atomic.Int64
	journalHealthy atomic.Bool

	mu           sync.Mutex
	stations     map[string]*station
	stats        Stats
	reservations map[string]reservation
	// removed is a bounded tombstone set of recently unregistered
	// stations: a poll reply attributing a foreign job to one of these is
	// legitimate (the home died after placing it), not byzantine.
	removed map[string]time.Time
	// degraded is set while more than Health.MaxUnhealthyFrac of the
	// pool is non-healthy; up-down index movement is frozen so users are
	// not charged for infrastructure failure.
	degraded bool

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New creates and starts a coordinator: its RPC server and its poll loop.
func New(cfg Config) (*Coordinator, error) {
	cfg.sanitize()
	c := &Coordinator{
		cfg:          cfg,
		table:        updown.NewTable(cfg.UpDown),
		events:       eventlog.New(eventlog.DefaultCapacity),
		led:          accounting.NewLedger(),
		stations:     make(map[string]*station),
		reservations: make(map[string]reservation),
		started:      time.Now(),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	c.journalHealthy.Store(true)
	c.lastCycleNanos.Store(time.Now().UnixNano())
	// Every event the coordinator logs (grants, preempts, health
	// transitions, registrations, degraded-mode flips) also rides the
	// process event bus, where the dashboard's SSE fan-out picks it up.
	// The bus publish is a single atomic load while nobody subscribes.
	c.events.SetNotify(func(e eventlog.Event) {
		telemetry.Events.Publish(telemetry.BusEvent{
			At: e.At, Source: "coordinator", Kind: string(e.Kind),
			Job: e.Job, Station: e.Station, Detail: e.Detail, TraceID: e.TraceID,
		})
	})
	if cfg.StateDir != "" {
		// Recover the previous incarnation's state before anything can
		// observe or mutate it. Policy resolution happens inside
		// openJournal so the recovered policy name is honoured and the
		// recovery-compaction snapshot records the active one.
		if err := c.openJournal(); err != nil {
			return nil, err
		}
	} else if err := c.resolvePolicy(""); err != nil {
		return nil, err
	}
	if !cfg.DialPerRPC {
		c.pool = wire.NewClientPool(wire.PoolConfig{
			DialTimeout: cfg.DialTimeout,
			// A frame that cannot complete within the RPC deadline would
			// blow it anyway; fail the connection instead of wedging it.
			WriteTimeout: cfg.RPCTimeout,
			FrameTimeout: cfg.RPCTimeout,
			IdleTimeout:  cfg.IdleConnTimeout,
		})
	}
	server, err := wire.NewServerOpts(cfg.ListenAddr, wire.ServerOptions{
		WriteTimeout: cfg.RPCTimeout,
		FrameTimeout: cfg.RPCTimeout,
	}, c.handlerFor)
	if err != nil {
		if c.pool != nil {
			c.pool.Close()
		}
		if c.journal != nil {
			c.journal.Close()
		}
		return nil, err
	}
	c.server = server
	c.readyName = "coordinator@" + server.Addr()
	telemetry.RegisterReadiness(c.readyName, c.Ready)
	go c.pollLoop()
	return c, nil
}

// Ready reports whether this coordinator should pass a readiness probe:
// the journal (if any) is writable and the poll loop is still turning
// over. Registered on /healthz, which answers 503 while it errors.
func (c *Coordinator) Ready() error {
	if !c.journalHealthy.Load() {
		return errors.New("journal unhealthy (append or snapshot failing)")
	}
	if age := time.Since(time.Unix(0, c.lastCycleNanos.Load())); age > 2*c.cfg.PollInterval {
		return fmt.Errorf("last poll cycle %s ago (interval %s)",
			age.Round(time.Millisecond), c.cfg.PollInterval)
	}
	return nil
}

// Accounting exposes the coordinator's allocation ledger.
func (c *Coordinator) Accounting() *accounting.Ledger { return c.led }

// PolicyName reports the active scheduling policy.
func (c *Coordinator) PolicyName() string { return c.pipeline.Name() }

// resolvePolicy installs the scheduling pipeline. Precedence: an
// explicitly configured name wins (and must exist — an operator typo
// should fail startup, not silently schedule differently), then the
// previous incarnation's journaled name, then the default. A journaled
// name this binary does not know (downgrade, corruption) degrades to
// the default and is counted as a journal error rather than refusing
// to start. When the resolved policy differs from the journaled one,
// the change is journaled so the next restart keeps it.
func (c *Coordinator) resolvePolicy(journaled string) error {
	name := c.cfg.Policy.Name
	if name == "" {
		name = journaled
	}
	pol, err := policy.New(name)
	if err != nil {
		if c.cfg.Policy.Name != "" {
			return err
		}
		c.stats.JournalErrors++
		pol = policy.MustNew("")
	}
	c.pipeline = pol
	if c.journal != nil && pol.Name() != journaled {
		c.appendJournalLocked(persistRecord{Kind: recPolicy, Name: pol.Name()})
	}
	return nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.server.Addr() }

// Close stops the poll loop, the server, and the station connection
// pool. Safe to call multiple times.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.done
	telemetry.UnregisterReadiness(c.readyName)
	c.server.Close()
	if c.pool != nil {
		c.pool.Close()
	}
	if c.journal != nil {
		// No farewell snapshot: the journal is already durable, and
		// keeping shutdown identical to a crash means the replay path is
		// the only recovery path — exercised on every restart.
		c.journal.Close()
	}
}

// Stats returns a snapshot of the counters, wire-client activity
// included.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	out := c.stats
	c.mu.Unlock()
	if c.pool != nil {
		ps := c.pool.Stats()
		out.Dials = ps.Dials
		out.Reuses = ps.Reuses
		out.Reconnects = ps.Reconnects
		out.Evictions = ps.Evictions
		out.Retries = ps.Retries
	}
	if c.journal != nil {
		js := c.journal.Stats()
		out.Incarnation = js.Incarnation
		out.JournalAppends = js.Appends
		out.JournalSnapshots = js.Snapshots
		out.JournalLogBytes = js.LogBytes
		out.JournalReplayed = js.ReplayedRecords
		out.JournalTruncated = js.TruncatedBytes
	}
	return out
}

// Started returns when this coordinator incarnation came up.
func (c *Coordinator) Started() time.Time { return c.started }

// Register adds a station directly (used by in-process pools; network
// registrations arrive via RegisterRequest).
func (c *Coordinator) Register(name, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(name, addr)
}

func (c *Coordinator) registerLocked(name, addr string) {
	prev, known := c.stations[name]
	if !known {
		c.events.Append(eventlog.Event{Kind: eventlog.KindRegister, Station: name, Detail: addr})
	} else if prev.addr != addr && c.pool != nil {
		// The station came back at a new address; the cached connection
		// to the old one is garbage.
		c.pool.Invalidate(prev.addr)
	}
	if !known || prev.addr != addr {
		// Re-registrations at the same address change nothing durable;
		// journaling only membership changes keeps the log quiet under
		// StartRegistrar's periodic re-registration.
		c.appendJournalLocked(persistRecord{Kind: recRegister, Name: name, Addr: addr})
	}
	s := &station{name: name, addr: addr, reachable: true}
	if known {
		// Health survives re-registration: a quarantined station cannot
		// launder its record by registering again — it still has to pass
		// its readmission probes.
		s.health = prev.health
	} else {
		s.health = newHealth(name, time.Now())
	}
	c.stations[name] = s
	delete(c.removed, name)
	mStations.Set(int64(len(c.stations)))
	c.table.Touch(name)
}

// Events exposes the coordinator's decision history.
func (c *Coordinator) Events() *eventlog.Log { return c.events }

// Stations returns the current pool table.
func (c *Coordinator) Stations() []proto.StationInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]proto.StationInfo, 0, len(c.stations))
	held := c.heldCountLocked()
	now := time.Now()
	for _, s := range c.stations {
		info := proto.StationInfo{
			Name:          s.name,
			Addr:          s.addr,
			State:         s.lastReply.State,
			WaitingJobs:   s.lastReply.WaitingJobs,
			RunningJobs:   held[s.name],
			ForeignJob:    s.lastReply.ForeignJob,
			ScheduleIndex: c.table.Index(s.name),
			IndexHistory:  c.table.History(s.name),
			LastPoll:      s.lastPoll,
			DiskFreeBytes: s.lastReply.DiskFreeBytes,
			Health:        s.health.state,
			HealthSince:   s.health.since,
			HealthReason:  s.health.reason,
			Suspicion:     s.health.suspicion,
		}
		if holder := c.reservationForLocked(s.name, now); holder != "" {
			info.ReservedFor = holder
			info.ReservedUntil = c.reservations[s.name].until
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// heldCountLocked counts, per home station, how many machines its jobs
// currently occupy, from the latest poll replies.
func (c *Coordinator) heldCountLocked() map[string]int {
	held := make(map[string]int, len(c.stations))
	for _, s := range c.stations {
		if !s.reachable {
			continue
		}
		if s.lastReply.ForeignOwnerStation != "" &&
			(s.lastReply.State == proto.StationClaimed || s.lastReply.State == proto.StationSuspended) {
			held[s.lastReply.ForeignOwnerStation]++
		}
	}
	return held
}

// handlerFor serves the coordinator's RPC surface.
func (c *Coordinator) handlerFor(peer *wire.Peer) wire.Handler {
	return func(ctx context.Context, msg any) (any, error) {
		switch m := msg.(type) {
		case proto.RegisterRequest:
			if m.Name == "" || m.Addr == "" {
				return nil, errors.New("coordinator: register needs name and addr")
			}
			c.mu.Lock()
			c.registerLocked(m.Name, m.Addr)
			c.mu.Unlock()
			return proto.RegisterReply{
				OK:                 true,
				PollIntervalMillis: c.cfg.PollInterval.Milliseconds(),
			}, nil
		case proto.ReserveRequest:
			until, err := c.Reserve(m.Station, m.Holder,
				time.Duration(m.DurationMillis)*time.Millisecond)
			if err != nil {
				return proto.ReserveReply{OK: false, Reason: err.Error()}, nil //nolint:nilerr // refusal is data
			}
			return proto.ReserveReply{OK: true, UntilUnixMillis: until.UnixMilli()}, nil
		case proto.CancelReservationRequest:
			return proto.CancelReservationReply{Cancelled: c.CancelReservation(m.Station)}, nil
		case proto.HistoryRequest:
			var events []eventlog.Event
			switch {
			case m.TraceID != "":
				events = c.events.ForTrace(m.TraceID)
			case m.JobID != "":
				events = c.events.ForJob(m.JobID)
			default:
				events = c.events.Recent(m.Limit)
			}
			return proto.HistoryReply{Events: events}, nil
		case proto.AccountingRequest:
			// Both ledgers: the coordinator's allocation view, and the
			// process-global job view (populated when schedd/ru run in the
			// same process, as in in-process pools).
			return proto.AccountingReply{
				Process:        accounting.Default.Snapshot(),
				Coordinator:    c.led.Snapshot(),
				HasCoordinator: true,
			}, nil
		case proto.DecisionsRequest:
			page := c.cfg.Decisions.PageFor(m.Job, m.Station, m.Cycle, m.Last)
			return proto.DecisionsReply{
				Cycles:  page.Cycles,
				Total:   page.Total,
				Dropped: page.Dropped,
			}, nil
		case proto.PoolStatusRequest:
			stats := c.Stats()
			c.mu.Lock()
			degraded := c.degraded
			c.mu.Unlock()
			return proto.PoolStatusReply{
				Stations: c.Stations(),
				Wire: proto.WireStats{
					Dials:      stats.Dials,
					Reuses:     stats.Reuses,
					Reconnects: stats.Reconnects,
					Evictions:  stats.Evictions,
					Retries:    stats.Retries,
				},
				Coordinator: proto.CoordinatorInfo{
					ReadyFailures:     telemetry.ReadinessFailures(),
					PolicyName:        c.pipeline.Name(),
					Incarnation:       stats.Incarnation,
					StartedUnixMillis: c.started.UnixMilli(),
					Cycles:            stats.Cycles,
					Grants:            stats.Grants,
					GrantsUsed:        stats.GrantsUsed,
					GrantsDenied:      stats.GrantsDenied,
					Preempts:          stats.Preempts,
					Degraded:          degraded,
					Suspects:          stats.Suspects,
					Quarantines:       stats.Quarantines,
					Readmissions:      stats.Readmissions,
					ByzantineReplies:  stats.ByzantineReplies,
					Persistent:        c.journal != nil,
					Journal: proto.JournalStats{
						Appends:        stats.JournalAppends,
						Snapshots:      stats.JournalSnapshots,
						LogBytes:       stats.JournalLogBytes,
						Replayed:       stats.JournalReplayed,
						TruncatedBytes: stats.JournalTruncated,
						Errors:         stats.JournalErrors,
					},
				},
			}, nil
		default:
			return nil, fmt.Errorf("coordinator: unexpected %T", msg)
		}
	}
}

// pollLoop runs the allocation cycle every PollInterval.
func (c *Coordinator) pollLoop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.Cycle()
		}
	}
}

// Cycle runs one poll-decide-act cycle synchronously. The loop calls it
// on the poll interval; tests may call it directly.
func (c *Coordinator) Cycle() {
	cycleStart := time.Now()
	defer func() { mCycleDuration.ObserveDuration(time.Since(cycleStart)) }()
	c.mu.Lock()
	c.stats.Cycles++
	if c.degraded {
		c.stats.DegradedCycles++
	}
	targets := make([]*station, 0, len(c.stations))
	for _, s := range c.stations {
		if s.health.state == proto.HealthQuarantined && cycleStart.Before(s.health.probeAt) {
			// Quarantined stations leave the per-cycle fan-out; they are
			// probed on their own jittered exponential-backoff schedule.
			continue
		}
		targets = append(targets, s)
	}
	c.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	// Poll every station (§2.1: "every two minutes the central
	// coordinator polls the stations"). Results carry the station's name
	// and polled address, not the *station itself: registrations land
	// while polls are in flight, so each result is re-resolved under the
	// lock and dropped if the station vanished or re-registered at a
	// different address in the meantime. (Writing through pre-poll
	// pointers used to let a slow poll's failure unregister — and a
	// stale success resurrect — a station that had just re-registered.)
	type pollResult struct {
		name  string
		addr  string
		reply proto.PollReply
		rtt   time.Duration
		err   error
	}
	results := make([]pollResult, len(targets))
	// Bounded fan-out: the semaphore is acquired *before* the goroutine
	// spawns, so at most PollConcurrency polls (goroutines and dials) are
	// ever alive at once — a 10k-station pool streams through a fixed
	// window instead of bursting 10k goroutines each cycle.
	sem := make(chan struct{}, c.cfg.PollConcurrency)
	var wg sync.WaitGroup
	for i, s := range targets {
		i := i
		name, addr := s.name, s.addr
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			mPollInFlight.Inc()
			pollStart := time.Now()
			reply, err := c.pollStation(addr)
			rtt := time.Since(pollStart)
			mPollLatency.ObserveDuration(rtt)
			mPollInFlight.Dec()
			results[i] = pollResult{name: name, addr: addr, reply: reply, rtt: rtt, err: err}
		}()
	}
	wg.Wait()

	now := time.Now()
	c.mu.Lock()
	var invalidate []string
	for _, r := range results {
		s, ok := c.stations[r.name]
		if !ok || s.addr != r.addr {
			// The station unregistered or re-registered at a new address
			// while this poll was in flight; the result describes a
			// previous incarnation.
			continue
		}
		if r.err != nil {
			c.stats.PollFails++
			mPollFails.Inc()
			s.reachable = false
			s.health.observe(&c.cfg.Health, r.rtt, false)
			if addr := c.evalHealthLocked(s, now, false, ""); addr != "" {
				invalidate = append(invalidate, addr)
			}
			continue
		}
		c.stats.Polls++
		s.health.observe(&c.cfg.Health, r.rtt, true)
		// A decoded reply can still be a lie: validate it for impossible
		// claims before trusting it for allocation.
		byz := byzantineReason(r.name, r.reply, c.knownHomeLocked)
		if addr := c.evalHealthLocked(s, now, true, byz); addr != "" {
			invalidate = append(invalidate, addr)
			continue
		}
		if byz != "" {
			// The reply is poison; keep the previous picture of the
			// station and leave it unreachable for this cycle's decisions.
			s.reachable = false
			continue
		}
		s.reachable = true
		s.lastReply = r.reply
		s.lastPoll = now
	}
	c.updateDegradedLocked(now)

	// Update Up-Down indexes from the fresh pool picture. The updated
	// values are journaled as one batch record per cycle — absolute
	// values, so replay converges on the latest state regardless of how
	// many earlier batches survive.
	held := c.heldCountLocked()
	views := make([]policy.StationView, 0, len(c.stations))
	updated := make(map[string]float64, len(c.stations))
	states := make(map[proto.StationState]int, 4)
	for _, s := range c.stations {
		if !s.reachable {
			continue
		}
		states[s.lastReply.State]++
		if !c.degraded {
			// Degraded mode freezes up-down movement: when most of the
			// pool is unreachable, "holding" or "wanting" reflects the
			// infrastructure failure, not user behaviour, and charging (or
			// crediting) indexes for it would corrupt the fairness memory.
			c.table.Update(s.name, held[s.name], s.lastReply.WaitingJobs > 0)
			updated[s.name] = c.table.Index(s.name)
		}
		if s.health.state != proto.HealthHealthy {
			// Suspect stations receive no new grants and donate no
			// capacity — they keep their running jobs, nothing more.
			continue
		}
		views = append(views, policy.StationView{
			Name:         s.name,
			State:        s.lastReply.State,
			WaitingJobs:  s.lastReply.WaitingJobs,
			HeldMachines: held[s.name],
			ForeignJob:   s.lastReply.ForeignJob,
			ForeignOwner: s.lastReply.ForeignOwnerStation,
			DiskFree:     s.lastReply.DiskFreeBytes,
			IdleStreak:   time.Duration(s.lastReply.IdleStreakMillis) * time.Millisecond,
			AvgIdleLen:   time.Duration(s.lastReply.AvgIdleMillis) * time.Millisecond,
			ReservedFor:  c.reservationForLocked(s.name, now),
		})
	}
	if len(updated) > 0 {
		c.appendJournalLocked(persistRecord{Kind: recUpdown, Indexes: updated})
	}
	cycles := c.stats.Cycles
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	// Every live cycle is audited: the builder collects why each machine
	// was filtered/ranked/granted, job IDs are annotated as grants are
	// acted on below, and the finished audit lands in the bounded
	// decisions ring (served by /decisions and the DecisionsRequest RPC).
	aud := decision.NewBuilder(cycles, now)
	dec := c.pipeline.DecideAudited(views, c.table, c.cfg.Policy, aud)
	addrs := make(map[string]string, len(c.stations))
	for _, s := range c.stations {
		addrs[s.name] = s.addr
	}
	total := len(c.stations)
	c.mu.Unlock()

	// Accounting: charge each home station for the remote capacity its
	// jobs held this cycle, and sample the cluster profile (the data
	// behind the paper's Fig 5 utilization plot) plus every station's
	// schedule-index trajectory.
	for home, n := range held {
		c.led.Capacity(home, n, c.cfg.PollInterval)
	}
	sam := c.led.Sampler()
	sam.Observe("stations", now, float64(total))
	if total > 0 {
		frac := func(s proto.StationState) float64 { return float64(states[s]) / float64(total) }
		sam.Observe("util/owner", now, frac(proto.StationOwner))
		sam.Observe("util/idle", now, frac(proto.StationIdle))
		sam.Observe("util/claimed", now, frac(proto.StationClaimed))
		sam.Observe("util/suspended", now, frac(proto.StationSuspended))
	}
	for name, idx := range updated {
		sam.Observe("index/"+name, now, idx)
	}

	// Periodic snapshot: every SnapshotEvery cycles, or early when the
	// log has outgrown its compaction threshold.
	if c.journal != nil && (cycles%uint64(c.cfg.SnapshotEvery) == 0 || c.journal.NeedsCompaction()) {
		c.snapshotJournal()
	}

	// Drop pooled connections to stations declared dead this cycle.
	if c.pool != nil {
		for _, addr := range invalidate {
			c.pool.Invalidate(addr)
		}
	}

	// Act.
	incarnation := c.incarnation()
	for gi, g := range dec.Grants {
		c.bump(func(st *Stats) { st.Grants++ })
		mGrants.Inc()
		c.led.Grant(g.Requester)
		grantStart := time.Now()
		reply, err := c.callStation(addrs[g.Requester], proto.GrantRequest{
			ExecName: g.Exec,
			ExecAddr: addrs[g.Exec],
		})
		if err != nil {
			// The grant never completed; whether the station would have
			// used it is unknowable, so count it as denied capacity.
			c.bump(func(st *Stats) { st.GrantsDenied++ })
			mGrantsDenied.Inc()
			c.led.GrantDenied(g.Requester)
			continue
		}
		if gr, ok := reply.(proto.GrantReply); ok && gr.Used && gr.JobID == "" {
			// "Used" with no job named is a grant the coordinator never
			// placed — the byzantine signature on the grant path.
			c.mu.Lock()
			if s, ok := c.stations[g.Requester]; ok {
				c.stats.ByzantineReplies++
				mByzantine.Inc()
				c.setHealthLocked(s, proto.HealthQuarantined,
					"byzantine: claims used grant but names no job", time.Now())
			}
			c.mu.Unlock()
			c.bump(func(st *Stats) { st.GrantsDenied++ })
			mGrantsDenied.Inc()
			c.led.GrantDenied(g.Requester)
		} else if gr, ok := reply.(proto.GrantReply); ok && gr.Used {
			c.bump(func(st *Stats) { st.GrantsUsed++ })
			mGrantsUsed.Inc()
			c.led.GrantUsed(g.Requester)
			// The pipeline granted a machine to a station; only now is the
			// concrete job known. Stamp it on the audit.
			aud.AnnotateGrantJob(gi, gr.JobID)
			// The reply names the placed job's trace; record the grant span
			// after the fact, backdated to cover the grant RPC. Old stations
			// send no trace and the span is simply skipped.
			var traceID string
			if sc, ok := trace.ParseTraceparent(gr.Trace); ok && sc.Sampled {
				traceID = sc.TraceID.String()
				trace.Record(trace.Span{
					TraceID: sc.TraceID,
					SpanID:  trace.NewSpanID(),
					Parent:  sc.SpanID,
					Name:    "grant",
					Job:     gr.JobID,
					Station: g.Exec,
					Start:   grantStart,
					End:     time.Now(),
					Attrs: []trace.Attr{
						{Key: "requester", Value: g.Requester},
						{Key: "incarnation", Value: fmt.Sprint(incarnation)},
					},
				})
			}
			c.events.Append(eventlog.Event{
				Kind: eventlog.KindGrant, Job: gr.JobID, Station: g.Exec,
				Detail: "granted to " + g.Requester, TraceID: traceID,
			})
			// Mark the exec station claimed immediately so this cycle's
			// state is not granted twice before the next poll.
			c.mu.Lock()
			if s, ok := c.stations[g.Exec]; ok {
				s.lastReply.State = proto.StationClaimed
				s.lastReply.ForeignJob = gr.JobID
				s.lastReply.ForeignOwnerStation = g.Requester
			}
			c.mu.Unlock()
		} else {
			c.bump(func(st *Stats) { st.GrantsDenied++ })
			mGrantsDenied.Inc()
			c.led.GrantDenied(g.Requester)
		}
	}
	for _, p := range dec.Preempts {
		c.bump(func(st *Stats) { st.Preempts++ })
		mPreempts.Inc()
		c.led.Preempt(p.Victim)
		c.events.Append(eventlog.Event{
			Kind: eventlog.KindPreempt, Job: p.JobID, Station: p.Exec,
			Detail: fmt.Sprintf("%s outranks %s", p.Beneficiary, p.Victim),
		})
		_, _ = c.callStationRetry(addrs[p.Exec], proto.PreemptRequest{
			JobID:  p.JobID,
			Reason: fmt.Sprintf("up-down: %s outranks %s", p.Beneficiary, p.Victim),
		})
	}
	c.enforceReservations(addrs)

	// Persist the allocation totals touched this cycle as one absolute
	// batch record — same convention as recUpdown — so grant, preempt,
	// and capacity totals survive a coordinator restart.
	if c.journal != nil {
		if alloc := c.led.AllocSnapshot(); len(alloc) > 0 {
			c.mu.Lock()
			c.appendJournalLocked(persistRecord{Kind: recAcct, Alloc: alloc})
			c.mu.Unlock()
		}
	}
	c.lastCycleNanos.Store(time.Now().UnixNano())

	// Publish the finished audit. The ring write is lock-free and
	// bounded; the summary rides the eventlog (only for cycles that did
	// something, so idle cycles don't drown job history) and the bus.
	audit := aud.Done()
	c.cfg.Decisions.Record(audit)
	if len(audit.Grants) > 0 || len(audit.Preempts) > 0 || len(audit.Unserved) > 0 {
		c.events.Append(eventlog.Event{
			Kind: eventlog.KindDecision,
			Detail: fmt.Sprintf("cycle %d (%s): %d requesters, %d rejections, %d grants, %d unserved, %d preempts",
				cycles, audit.Policy, len(audit.Requesters), len(audit.Rejections),
				len(audit.Grants), len(audit.Unserved), len(audit.Preempts)),
		})
	}

	// One cycle-summary event per allocation cycle: the dashboard's
	// liveness signal. Built (and allocated) only when someone is
	// actually listening.
	if telemetry.Events.Subscribers() > 0 {
		telemetry.Events.Publish(telemetry.BusEvent{
			Source: "coordinator", Kind: "cycle",
			Detail: fmt.Sprintf("cycle %d: %d stations, %d grants, %d preempts, %s",
				cycles, total, len(dec.Grants), len(dec.Preempts),
				time.Since(cycleStart).Round(time.Millisecond)),
		})
		// The decision drill-down's refresh signal: announces that cycle
		// `cycles` has a fresh audit on /decisions.
		telemetry.Events.Publish(telemetry.BusEvent{
			Source: "coordinator", Kind: "decision-cycle",
			Detail: fmt.Sprintf("cycle %d (%s): %d requesters, %d rejections, %d grants, %d unserved, %d preempts",
				cycles, audit.Policy, len(audit.Requesters), len(audit.Rejections),
				len(audit.Grants), len(audit.Unserved), len(audit.Preempts)),
		})
	}
}

// incarnation returns which start of this coordinator's state directory
// is running (0 for in-memory coordinators). Stamped on grant spans so a
// trace shows when allocation decisions straddle a coordinator restart.
func (c *Coordinator) incarnation() uint64 {
	if c.journal == nil {
		return 0
	}
	return c.journal.Stats().Incarnation
}

func (c *Coordinator) bump(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

func (c *Coordinator) pollStation(addr string) (proto.PollReply, error) {
	reply, err := c.callStationRetry(addr, proto.PollRequest{})
	if err != nil {
		return proto.PollReply{}, err
	}
	pr, ok := reply.(proto.PollReply)
	if !ok {
		return proto.PollReply{}, fmt.Errorf("coordinator: unexpected poll reply %T", reply)
	}
	return pr, nil
}

// callStation issues one station RPC over the pooled connection,
// bounded end-to-end by RPCTimeout. It never retries: use it for
// requests that are not idempotent (grants — a grant whose reply was
// lost may already have placed a job).
func (c *Coordinator) callStation(addr string, msg any) (any, error) {
	if addr == "" {
		return nil, errors.New("coordinator: no address")
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	if c.pool == nil {
		// DialPerRPC ablation mode: the pre-pool behaviour, one fresh
		// connection per RPC.
		peer, err := wire.Dial(addr, c.cfg.DialTimeout, nil)
		if err != nil {
			return nil, err
		}
		defer peer.Close()
		return peer.Call(ctx, msg)
	}
	return c.pool.Call(ctx, addr, msg)
}

// callStationRetry is callStation under the pool's retry policy, for
// idempotent requests (polls, preempts, reservation releases): a
// transient transport fault is retried with backoff against a freshly
// dialed connection, still within the RPCTimeout budget.
func (c *Coordinator) callStationRetry(addr string, msg any) (any, error) {
	if c.pool == nil {
		return c.callStation(addr, msg)
	}
	if addr == "" {
		return nil, errors.New("coordinator: no address")
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	return c.pool.CallRetry(ctx, addr, msg)
}

// Index exposes a station's Up-Down index (for status and tests).
func (c *Coordinator) Index(name string) float64 { return c.table.Index(name) }
