// Package coordinator implements Condor's central coordinator (§2.1): a
// deliberately thin daemon that polls every registered station on a
// fixed interval, maintains the Up-Down schedule indexes, and assigns
// capacity from idle workstations to stations with background jobs
// waiting. All job state stays at the stations; if the coordinator dies,
// running jobs are unaffected and only new allocations stop — restarting
// it (anywhere) rebuilds its entire state from registrations and polls.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"condor/internal/eventlog"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/updown"
	"condor/internal/wire"
)

// Config parameterizes a coordinator.
type Config struct {
	// ListenAddr is the bind address (default "127.0.0.1:0").
	ListenAddr string
	// PollInterval is the station poll period (paper: 2 minutes).
	PollInterval time.Duration
	// DialTimeout bounds one station RPC.
	DialTimeout time.Duration
	// Policy tunes allocation; zero value means policy.DefaultConfig.
	Policy policy.Config
	// UpDown tunes the fairness index; zero value means defaults.
	UpDown updown.Config
	// DeadAfter unregisters a station that has failed this many
	// consecutive polls (default 5).
	DeadAfter int
}

func (c *Config) sanitize() {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Minute
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5
	}
	if c.Policy.MaxGrantsPerCycle == 0 {
		c.Policy = policy.DefaultConfig()
	}
	if c.UpDown.UpRate == 0 {
		c.UpDown = updown.DefaultConfig()
	}
}

// station is the coordinator's view of one workstation.
type station struct {
	name      string
	addr      string
	lastPoll  time.Time
	lastReply proto.PollReply
	failures  int
	reachable bool
}

// Stats counts coordinator activity.
type Stats struct {
	Cycles     uint64
	Polls      uint64
	PollFails  uint64
	Grants     uint64
	GrantsUsed uint64
	Preempts   uint64
}

// Coordinator is the central capacity allocator.
type Coordinator struct {
	cfg    Config
	server *wire.Server
	table  *updown.Table
	events *eventlog.Log

	mu           sync.Mutex
	stations     map[string]*station
	stats        Stats
	reservations map[string]reservation

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New creates and starts a coordinator: its RPC server and its poll loop.
func New(cfg Config) (*Coordinator, error) {
	cfg.sanitize()
	c := &Coordinator{
		cfg:          cfg,
		table:        updown.NewTable(cfg.UpDown),
		events:       eventlog.New(eventlog.DefaultCapacity),
		stations:     make(map[string]*station),
		reservations: make(map[string]reservation),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	server, err := wire.NewServer(cfg.ListenAddr, c.handlerFor)
	if err != nil {
		return nil, err
	}
	c.server = server
	go c.pollLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.server.Addr() }

// Close stops the poll loop and the server. Safe to call multiple times.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.done
	c.server.Close()
}

// Stats returns a snapshot of the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Register adds a station directly (used by in-process pools; network
// registrations arrive via RegisterRequest).
func (c *Coordinator) Register(name, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(name, addr)
}

func (c *Coordinator) registerLocked(name, addr string) {
	if _, known := c.stations[name]; !known {
		c.events.Append(eventlog.Event{Kind: eventlog.KindRegister, Station: name, Detail: addr})
	}
	c.stations[name] = &station{name: name, addr: addr, reachable: true}
	c.table.Touch(name)
}

// Events exposes the coordinator's decision history.
func (c *Coordinator) Events() *eventlog.Log { return c.events }

// Stations returns the current pool table.
func (c *Coordinator) Stations() []proto.StationInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]proto.StationInfo, 0, len(c.stations))
	held := c.heldCountLocked()
	now := time.Now()
	for _, s := range c.stations {
		info := proto.StationInfo{
			Name:          s.name,
			Addr:          s.addr,
			State:         s.lastReply.State,
			WaitingJobs:   s.lastReply.WaitingJobs,
			RunningJobs:   held[s.name],
			ForeignJob:    s.lastReply.ForeignJob,
			ScheduleIndex: c.table.Index(s.name),
			LastPoll:      s.lastPoll,
			DiskFreeBytes: s.lastReply.DiskFreeBytes,
		}
		if holder := c.reservationForLocked(s.name, now); holder != "" {
			info.ReservedFor = holder
			info.ReservedUntil = c.reservations[s.name].until
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// heldCountLocked counts, per home station, how many machines its jobs
// currently occupy, from the latest poll replies.
func (c *Coordinator) heldCountLocked() map[string]int {
	held := make(map[string]int, len(c.stations))
	for _, s := range c.stations {
		if !s.reachable {
			continue
		}
		if s.lastReply.ForeignOwnerStation != "" &&
			(s.lastReply.State == proto.StationClaimed || s.lastReply.State == proto.StationSuspended) {
			held[s.lastReply.ForeignOwnerStation]++
		}
	}
	return held
}

// handlerFor serves the coordinator's RPC surface.
func (c *Coordinator) handlerFor(peer *wire.Peer) wire.Handler {
	return func(msg any) (any, error) {
		switch m := msg.(type) {
		case proto.RegisterRequest:
			if m.Name == "" || m.Addr == "" {
				return nil, errors.New("coordinator: register needs name and addr")
			}
			c.mu.Lock()
			c.registerLocked(m.Name, m.Addr)
			c.mu.Unlock()
			return proto.RegisterReply{
				OK:                 true,
				PollIntervalMillis: c.cfg.PollInterval.Milliseconds(),
			}, nil
		case proto.ReserveRequest:
			until, err := c.Reserve(m.Station, m.Holder,
				time.Duration(m.DurationMillis)*time.Millisecond)
			if err != nil {
				return proto.ReserveReply{OK: false, Reason: err.Error()}, nil //nolint:nilerr // refusal is data
			}
			return proto.ReserveReply{OK: true, UntilUnixMillis: until.UnixMilli()}, nil
		case proto.CancelReservationRequest:
			return proto.CancelReservationReply{Cancelled: c.CancelReservation(m.Station)}, nil
		case proto.HistoryRequest:
			var events []eventlog.Event
			if m.JobID != "" {
				events = c.events.ForJob(m.JobID)
			} else {
				events = c.events.Recent(m.Limit)
			}
			return proto.HistoryReply{Events: events}, nil
		case proto.PoolStatusRequest:
			return proto.PoolStatusReply{Stations: c.Stations()}, nil
		default:
			return nil, fmt.Errorf("coordinator: unexpected %T", msg)
		}
	}
}

// pollLoop runs the allocation cycle every PollInterval.
func (c *Coordinator) pollLoop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.Cycle()
		}
	}
}

// Cycle runs one poll-decide-act cycle synchronously. The loop calls it
// on the poll interval; tests may call it directly.
func (c *Coordinator) Cycle() {
	c.mu.Lock()
	c.stats.Cycles++
	targets := make([]*station, 0, len(c.stations))
	for _, s := range c.stations {
		targets = append(targets, s)
	}
	c.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	// Poll every station (§2.1: "every two minutes the central
	// coordinator polls the stations").
	type pollResult struct {
		s     *station
		reply proto.PollReply
		err   error
	}
	results := make([]pollResult, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := c.pollStation(s.addr)
			results[i] = pollResult{s: s, reply: reply, err: err}
		}()
	}
	wg.Wait()

	now := time.Now()
	c.mu.Lock()
	for _, r := range results {
		if r.err != nil {
			c.stats.PollFails++
			r.s.failures++
			r.s.reachable = false
			if r.s.failures >= c.cfg.DeadAfter {
				delete(c.stations, r.s.name)
				c.table.Remove(r.s.name)
				c.events.Append(eventlog.Event{
					Kind: eventlog.KindDead, Station: r.s.name,
					Detail: fmt.Sprintf("%d consecutive poll failures", r.s.failures),
				})
			}
			continue
		}
		c.stats.Polls++
		r.s.failures = 0
		r.s.reachable = true
		r.s.lastReply = r.reply
		r.s.lastPoll = now
	}

	// Update Up-Down indexes from the fresh pool picture.
	held := c.heldCountLocked()
	views := make([]policy.StationView, 0, len(c.stations))
	for _, s := range c.stations {
		if !s.reachable {
			continue
		}
		c.table.Update(s.name, held[s.name], s.lastReply.WaitingJobs > 0)
		views = append(views, policy.StationView{
			Name:         s.name,
			State:        s.lastReply.State,
			WaitingJobs:  s.lastReply.WaitingJobs,
			HeldMachines: held[s.name],
			ForeignJob:   s.lastReply.ForeignJob,
			ForeignOwner: s.lastReply.ForeignOwnerStation,
			DiskFree:     s.lastReply.DiskFreeBytes,
			IdleStreak:   time.Duration(s.lastReply.IdleStreakMillis) * time.Millisecond,
			AvgIdleLen:   time.Duration(s.lastReply.AvgIdleMillis) * time.Millisecond,
			ReservedFor:  c.reservationForLocked(s.name, now),
		})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	decision := policy.Decide(views, c.table, c.cfg.Policy)
	addrs := make(map[string]string, len(c.stations))
	for _, s := range c.stations {
		addrs[s.name] = s.addr
	}
	c.mu.Unlock()

	// Act.
	for _, g := range decision.Grants {
		c.bump(func(st *Stats) { st.Grants++ })
		reply, err := c.callStation(addrs[g.Requester], proto.GrantRequest{
			ExecName: g.Exec,
			ExecAddr: addrs[g.Exec],
		})
		if err != nil {
			continue
		}
		if gr, ok := reply.(proto.GrantReply); ok && gr.Used {
			c.bump(func(st *Stats) { st.GrantsUsed++ })
			c.events.Append(eventlog.Event{
				Kind: eventlog.KindGrant, Job: gr.JobID, Station: g.Exec,
				Detail: "granted to " + g.Requester,
			})
			// Mark the exec station claimed immediately so this cycle's
			// state is not granted twice before the next poll.
			c.mu.Lock()
			if s, ok := c.stations[g.Exec]; ok {
				s.lastReply.State = proto.StationClaimed
				s.lastReply.ForeignJob = gr.JobID
				s.lastReply.ForeignOwnerStation = g.Requester
			}
			c.mu.Unlock()
		}
	}
	for _, p := range decision.Preempts {
		c.bump(func(st *Stats) { st.Preempts++ })
		c.events.Append(eventlog.Event{
			Kind: eventlog.KindPreempt, Job: p.JobID, Station: p.Exec,
			Detail: fmt.Sprintf("%s outranks %s", p.Beneficiary, p.Victim),
		})
		_, _ = c.callStation(addrs[p.Exec], proto.PreemptRequest{
			JobID:  p.JobID,
			Reason: fmt.Sprintf("up-down: %s outranks %s", p.Beneficiary, p.Victim),
		})
	}
	c.enforceReservations(addrs)
}

func (c *Coordinator) bump(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

func (c *Coordinator) pollStation(addr string) (proto.PollReply, error) {
	reply, err := c.callStation(addr, proto.PollRequest{})
	if err != nil {
		return proto.PollReply{}, err
	}
	pr, ok := reply.(proto.PollReply)
	if !ok {
		return proto.PollReply{}, fmt.Errorf("coordinator: unexpected poll reply %T", reply)
	}
	return pr, nil
}

// callStation dials the station fresh for each RPC. Connection churn is
// negligible at pool scale (the paper ran 23—40 stations) and keeps the
// coordinator stateless across station restarts.
func (c *Coordinator) callStation(addr string, msg any) (any, error) {
	if addr == "" {
		return nil, errors.New("coordinator: no address")
	}
	peer, err := wire.Dial(addr, c.cfg.DialTimeout, nil)
	if err != nil {
		return nil, err
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.DialTimeout+10*time.Second)
	defer cancel()
	return peer.Call(ctx, msg)
}

// Index exposes a station's Up-Down index (for status and tests).
func (c *Coordinator) Index(name string) float64 { return c.table.Index(name) }
