package coordinator

import (
	"bytes"
	"encoding/gob"
	"time"

	"condor/internal/accounting"
	"condor/internal/journal"
	"condor/internal/proto"
)

// The coordinator's durable-state layer. With Config.StateDir set, every
// state transition that is not reconstructible from polls — up-down
// index movements (§2.4: the index is the pool's fairness memory),
// reservations (§5.3: promises made to users), and the station table —
// is journaled, and the full state is snapshotted every SnapshotEvery
// cycles (or earlier when the log outgrows its compaction threshold).
// On startup the snapshot plus the record tail are replayed, so a
// restarted coordinator resumes with the fairness state and reservation
// promises of its previous incarnation instead of resetting every heavy
// user to neutral priority and silently scavenging reserved machines.

// Journal record kinds.
const (
	recRegister   = "register"   // station joined (or changed address)
	recUnregister = "unregister" // station declared dead / removed
	recUpdown     = "updown"     // one cycle's absolute index values
	recReserve    = "reserve"    // reservation granted or extended
	recCancel     = "cancel"     // reservation released
	recAcct       = "acct"       // one cycle's absolute allocation totals
	recHealth     = "health"     // station health-state transition
	recPolicy     = "policy"     // active scheduling-policy name (in Name)
)

// persistRecord is one journaled state delta. Index values are absolute
// (the value *after* the update), so replay is idempotent and a record
// can be applied without knowing its predecessors beyond the snapshot.
type persistRecord struct {
	Kind string
	// Name is the station the record concerns.
	Name string
	// Addr is the station address (register records).
	Addr string
	// Indexes carries one cycle's updated up-down values (updown records).
	Indexes map[string]float64
	// Holder and UntilUnixMilli describe a reservation (reserve records).
	Holder         string
	UntilUnixMilli int64
	// Alloc carries per-station allocation totals (acct records). Values
	// are absolute, like Indexes.
	Alloc map[string]accounting.AllocTotals
	// Health, Reason, and SinceUnixMilli describe a station health-state
	// transition (health records): the absolute state after the
	// transition, why, and when. Gob tolerates these fields missing in
	// old logs and ignores them in old binaries, both directions.
	Health         int
	Reason         string
	SinceUnixMilli int64
}

// persistReservation is a reservation inside a snapshot.
type persistReservation struct {
	Holder         string
	UntilUnixMilli int64
}

// persistHealth is one station's health state inside a snapshot.
type persistHealth struct {
	State          int
	Reason         string
	SinceUnixMilli int64
}

// persistState is the full snapshot payload.
type persistState struct {
	// Stations maps name → address for every registered station.
	Stations map[string]string
	// Indexes is the complete up-down table.
	Indexes map[string]float64
	// Reservations maps station → live reservation.
	Reservations map[string]persistReservation
	// Alloc is the accounting ledger's per-station allocation totals.
	Alloc map[string]accounting.AllocTotals
	// Health maps station → graded health state, so a quarantine
	// survives a coordinator restart (the station must still pass its
	// readmission probes under the new incarnation).
	Health map[string]persistHealth
	// PolicyName is the active scheduling policy, so a restart without
	// an explicit -policy keeps scheduling the same way. Empty in old
	// snapshots, which rebuildState treats as the default policy.
	PolicyName string
}

func encodeRecord(rec persistRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRecord(b []byte) (persistRecord, error) {
	var rec persistRecord
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rec)
	return rec, err
}

func encodeState(st persistState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeState(b []byte) (persistState, error) {
	var st persistState
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st)
	return st, err
}

// rebuildState folds a recovered snapshot and record tail into the
// state a fresh coordinator should start from. Reservations already
// expired at `now` are dropped. Undecodable inputs are skipped and
// counted rather than fatal: a coordinator that lost a record must
// still come up — the degradation is bounded (that record's delta) and
// the next poll cycle re-observes the live pool anyway.
func rebuildState(snapshot []byte, records [][]byte, now time.Time) (persistState, int) {
	st := persistState{
		Stations:     make(map[string]string),
		Indexes:      make(map[string]float64),
		Reservations: make(map[string]persistReservation),
		Alloc:        make(map[string]accounting.AllocTotals),
		Health:       make(map[string]persistHealth),
	}
	skipped := 0
	if snapshot != nil {
		if snap, err := decodeState(snapshot); err == nil {
			for k, v := range snap.Stations {
				st.Stations[k] = v
			}
			for k, v := range snap.Indexes {
				st.Indexes[k] = v
			}
			for k, v := range snap.Reservations {
				st.Reservations[k] = v
			}
			for k, v := range snap.Alloc {
				st.Alloc[k] = v
			}
			for k, v := range snap.Health {
				st.Health[k] = v
			}
			st.PolicyName = snap.PolicyName
		} else {
			skipped++
		}
	}
	for _, b := range records {
		rec, err := decodeRecord(b)
		if err != nil {
			skipped++
			continue
		}
		switch rec.Kind {
		case recRegister:
			st.Stations[rec.Name] = rec.Addr
			if _, ok := st.Indexes[rec.Name]; !ok {
				st.Indexes[rec.Name] = 0 // Touch: fresh stations start neutral
			}
		case recUnregister:
			delete(st.Stations, rec.Name)
			delete(st.Indexes, rec.Name)
			delete(st.Reservations, rec.Name)
			delete(st.Health, rec.Name)
		case recUpdown:
			for name, idx := range rec.Indexes {
				st.Indexes[name] = idx
			}
		case recReserve:
			st.Reservations[rec.Name] = persistReservation{
				Holder:         rec.Holder,
				UntilUnixMilli: rec.UntilUnixMilli,
			}
		case recCancel:
			delete(st.Reservations, rec.Name)
		case recAcct:
			for name, a := range rec.Alloc {
				st.Alloc[name] = a
			}
		case recHealth:
			st.Health[rec.Name] = persistHealth{
				State:          rec.Health,
				Reason:         rec.Reason,
				SinceUnixMilli: rec.SinceUnixMilli,
			}
		case recPolicy:
			st.PolicyName = rec.Name
		default:
			skipped++
		}
	}
	for station, r := range st.Reservations {
		if !time.UnixMilli(r.UntilUnixMilli).After(now) {
			delete(st.Reservations, station)
		}
	}
	return st, skipped
}

// openJournal recovers StateDir and installs the rebuilt state. Called
// from New before the server or poll loop start, so no locking races.
func (c *Coordinator) openJournal() error {
	j, recovered, err := journal.Open(c.cfg.StateDir, journal.Config{
		SyncEvery: c.cfg.SyncEvery,
	})
	if err != nil {
		return err
	}
	c.journal = j
	st, skipped := rebuildState(recovered.Snapshot, recovered.Records, time.Now())
	c.stats.JournalErrors += uint64(skipped)
	now := time.Now()
	for name, addr := range st.Stations {
		s := &station{name: name, addr: addr, reachable: true}
		s.health = newHealth(name, now)
		if h, ok := st.Health[name]; ok && h.State != 0 {
			s.health.state = proto.StationHealth(h.State)
			s.health.reason = h.Reason
			s.health.since = time.UnixMilli(h.SinceUnixMilli)
			if s.health.state != proto.HealthHealthy {
				s.health.unhealthySince = s.health.since
			}
			if s.health.state == proto.HealthQuarantined {
				// Probe promptly under the new incarnation: the old
				// backoff schedule died with the old process, and the
				// station still has to earn readmission.
				s.health.backoff = c.cfg.Health.ProbeBase
				s.health.probeAt = now
			}
		}
		c.stations[name] = s
	}
	c.table.Restore(st.Indexes)
	c.led.RestoreAlloc(st.Alloc)
	for name, r := range st.Reservations {
		c.reservations[name] = reservation{
			holder: r.Holder,
			until:  time.UnixMilli(r.UntilUnixMilli),
		}
	}
	// Resolve the policy before compacting so the snapshot below
	// records the active name (and an explicit-config mismatch fails
	// startup before any state is rewritten).
	if err := c.resolvePolicy(st.PolicyName); err != nil {
		c.journal.Close()
		c.journal = nil
		return err
	}
	// Compact immediately: recovery cost stays bounded even across a
	// crash loop, and the replayed tail is folded into one snapshot.
	if len(recovered.Records) > 0 || recovered.Snapshot != nil {
		c.snapshotJournal()
	}
	return nil
}

// appendJournalLocked encodes and appends one record. Caller holds c.mu
// (which is what serializes record order). Journal failures must never
// take down allocation — they are counted and surfaced via Stats.
func (c *Coordinator) appendJournalLocked(rec persistRecord) {
	if c.journal == nil {
		return
	}
	b, err := encodeRecord(rec)
	if err != nil {
		c.stats.JournalErrors++
		c.journalHealthy.Store(false)
		return
	}
	if err := c.journal.Append(b); err != nil {
		c.stats.JournalErrors++
		c.journalHealthy.Store(false)
		return
	}
	c.journalHealthy.Store(true)
}

// snapshotJournal writes the full current state as a new snapshot
// generation. Caller must NOT hold c.mu.
func (c *Coordinator) snapshotJournal() {
	if c.journal == nil {
		return
	}
	c.mu.Lock()
	st := persistState{
		Stations:     make(map[string]string, len(c.stations)),
		Indexes:      c.table.Snapshot(),
		Reservations: make(map[string]persistReservation, len(c.reservations)),
		Alloc:        c.led.AllocSnapshot(),
		Health:       make(map[string]persistHealth, len(c.stations)),
		PolicyName:   c.pipeline.Name(),
	}
	for name, s := range c.stations {
		st.Stations[name] = s.addr
		if s.health.state != 0 && s.health.state != proto.HealthHealthy {
			// Healthy is the default on restore; snapshotting only the
			// exceptions keeps snapshots quiet for a healthy pool.
			st.Health[name] = persistHealth{
				State:          int(s.health.state),
				Reason:         s.health.reason,
				SinceUnixMilli: s.health.since.UnixMilli(),
			}
		}
	}
	now := time.Now()
	for name, r := range c.reservations {
		if r.until.After(now) {
			st.Reservations[name] = persistReservation{
				Holder:         r.holder,
				UntilUnixMilli: r.until.UnixMilli(),
			}
		}
	}
	c.mu.Unlock()
	b, err := encodeState(st)
	if err != nil {
		c.bump(func(s *Stats) { s.JournalErrors++ })
		c.journalHealthy.Store(false)
		return
	}
	if err := c.journal.Snapshot(b); err != nil {
		c.bump(func(s *Stats) { s.JournalErrors++ })
		c.journalHealthy.Store(false)
		return
	}
	c.journalHealthy.Store(true)
}
