package coordinator

import (
	"context"
	"strings"
	"testing"
	"time"

	"condor/internal/cvm"
	"condor/internal/proto"
	"condor/internal/wire"
)

func TestReserveValidation(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	if _, err := p.coord.Reserve("nope", "ws1", time.Hour); err == nil {
		t.Fatal("unknown station reserved")
	}
	if _, err := p.coord.Reserve("ws2", "nope", time.Hour); err == nil {
		t.Fatal("unknown holder accepted")
	}
	if _, err := p.coord.Reserve("ws2", "ws1", 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	until, err := p.coord.Reserve("ws2", "ws1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if until.Before(time.Now().Add(50 * time.Minute)) {
		t.Fatalf("until = %v", until)
	}
	// A different holder is refused while live; the same holder extends.
	if _, err := p.coord.Reserve("ws2", "ws2", time.Hour); err == nil {
		t.Fatal("conflicting reservation accepted")
	}
	if _, err := p.coord.Reserve("ws2", "ws1", 2*time.Hour); err != nil {
		t.Fatalf("extension refused: %v", err)
	}
	if !p.coord.CancelReservation("ws2") {
		t.Fatal("cancel reported nothing to cancel")
	}
	if p.coord.CancelReservation("ws2") {
		t.Fatal("double cancel reported success")
	}
}

func TestReservationBlocksOtherStations(t *testing.T) {
	// ws2 is the only idle machine and is reserved for ws3; ws1's job
	// must not be placed there, while ws3's must.
	p := newPool(t, []string{"ws1", "ws2", "ws3"}, Config{})
	p.monitors["ws1"].SetActive(true)
	p.monitors["ws3"].SetActive(true)
	if _, err := p.coord.Reserve("ws2", "ws3", time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := p.stations["ws1"].Submit("u1", cvm.SumProgram(10_000), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.coord.Cycle()
		time.Sleep(2 * time.Millisecond)
	}
	if used := p.coord.Stats().GrantsUsed; used != 0 {
		t.Fatalf("reserved machine granted to non-holder (%d grants)", used)
	}
	// The holder's job goes right through.
	holderJob, err := p.stations["ws3"].Submit("u3", cvm.SumProgram(10_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.cycleUntil(t, 20*time.Second, func() bool {
		st, err := p.stations["ws3"].Job(holderJob)
		return err == nil && st.State == proto.JobCompleted
	})
	st, _ := p.stations["ws3"].Job(holderJob)
	if st.ExecHost != "ws2" {
		t.Fatalf("holder's job ran on %q, want the reserved ws2", st.ExecHost)
	}
}

func TestReservationEvictsForeignJob(t *testing.T) {
	// ws2 runs ws1's long job; then ws3 reserves ws2. The coordinator
	// must vacate the foreign job to honour the reservation.
	p := newPool(t, []string{"ws1", "ws2", "ws3"}, Config{})
	p.monitors["ws1"].SetActive(true)
	p.monitors["ws3"].SetActive(true)
	jobID, err := p.stations["ws1"].Submit("u1", cvm.SumProgram(500_000_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	p.cycleUntil(t, 20*time.Second, func() bool {
		st, err := p.stations["ws1"].Job(jobID)
		return err == nil && st.State == proto.JobRunning
	})
	if _, err := p.coord.Reserve("ws2", "ws3", time.Hour); err != nil {
		t.Fatal(err)
	}
	p.cycleUntil(t, 20*time.Second, func() bool {
		st, err := p.stations["ws1"].Job(jobID)
		return err == nil && st.State == proto.JobIdle && st.Checkpoints > 0
	})
}

func TestReservationExpires(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	p.monitors["ws1"].SetActive(true)
	if _, err := p.coord.Reserve("ws2", "ws1", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	// Expired: another station may take it over.
	if _, err := p.coord.Reserve("ws2", "ws2", time.Hour); err != nil {
		t.Fatalf("expired reservation still blocking: %v", err)
	}
}

func TestReservationOverWire(t *testing.T) {
	p := newPool(t, []string{"ws1", "ws2"}, Config{})
	peer, err := wire.Dial(p.coord.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.ReserveRequest{
		Station: "ws2", Holder: "ws1", DurationMillis: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := reply.(proto.ReserveReply)
	if !ok || !rr.OK || rr.UntilUnixMillis == 0 {
		t.Fatalf("reply = %+v", reply)
	}
	// Visible in the pool table.
	found := false
	for _, s := range p.coord.Stations() {
		if s.Name == "ws2" && s.ReservedFor == "ws1" {
			found = true
		}
	}
	if !found {
		t.Fatal("reservation not visible in pool table")
	}
	// Refusal path carries a reason, not an error.
	reply, err = peer.Call(ctx, proto.ReserveRequest{
		Station: "ws2", Holder: "ws2", DurationMillis: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr := reply.(proto.ReserveReply); rr.OK || !strings.Contains(rr.Reason, "reserved") {
		t.Fatalf("conflict reply = %+v", rr)
	}
	// Cancel over the wire.
	reply, err = peer.Call(ctx, proto.CancelReservationRequest{Station: "ws2"})
	if err != nil {
		t.Fatal(err)
	}
	if cr := reply.(proto.CancelReservationReply); !cr.Cancelled {
		t.Fatalf("cancel reply = %+v", cr)
	}
}
