package coordinator

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"condor/internal/eventlog"
	"condor/internal/proto"
)

// scriptedStation is a fake station whose poll behaviour can be changed
// mid-test: up/down, slow, or byzantine reply mutation.
type scriptedStation struct {
	mu     sync.Mutex
	name   string
	up     bool
	mutate func(*proto.PollReply)
	polls  int
}

func (s *scriptedStation) set(up bool, mutate func(*proto.PollReply)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.up = up
	s.mutate = mutate
}

func (s *scriptedStation) handler(_ context.Context, msg any) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.polls++
	if _, ok := msg.(proto.PollRequest); !ok {
		return nil, errors.New("scripted station: only polls")
	}
	if !s.up {
		return nil, errors.New("scripted station: down")
	}
	reply := proto.PollReply{Name: s.name, State: proto.StationIdle}
	if s.mutate != nil {
		s.mutate(&reply)
	}
	return reply, nil
}

// healthPool wires n scripted stations into a manually cycled
// coordinator (PollInterval an hour, like newPool).
func healthPool(t *testing.T, names []string, cfg Config) (*Coordinator, map[string]*scriptedStation) {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Hour
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	scripted := make(map[string]*scriptedStation, len(names))
	for _, name := range names {
		st := &scriptedStation{name: name, up: true}
		srv := fakeStation(t, st.handler)
		scripted[name] = st
		coord.Register(name, srv.Addr())
	}
	return coord, scripted
}

func healthOf(c *Coordinator, name string) (proto.StationHealth, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stations[name]
	if !ok {
		return 0, ""
	}
	return s.health.state, s.health.reason
}

// TestFlappingStationQuarantined is the regression for the
// consecutive-counter bug: a station alternating failure and success
// reset the old `failures` counter on every success and was never
// removed, while poisoning grant decisions each cycle. The sliding
// window sees the up/down signature and quarantines it as flapping.
func TestFlappingStationQuarantined(t *testing.T) {
	coord, scripted := healthPool(t, []string{"flappy"}, Config{DeadAfter: 100})
	flap := scripted["flappy"]
	down := false
	for i := 0; i < 12; i++ {
		flap.set(!down, nil)
		down = !down
		coord.Cycle()
		if st, _ := healthOf(coord, "flappy"); st == proto.HealthQuarantined {
			break
		}
	}
	st, reason := healthOf(coord, "flappy")
	if st != proto.HealthQuarantined {
		t.Fatalf("flapping station health = %v (%s), want quarantined", st, reason)
	}
	if !strings.HasPrefix(reason, "flap") {
		t.Fatalf("quarantine reason = %q, want flap:*", reason)
	}
	// Still registered: quarantine holds the station for probing rather
	// than deleting its identity and schedule index.
	if _, ok := coord.stations["flappy"]; !ok {
		t.Fatal("flapping station was removed, want quarantined but registered")
	}
}

func TestQuarantineProbeBackoffAndReadmission(t *testing.T) {
	coord, scripted := healthPool(t, []string{"ws1"}, Config{
		DeadAfter: 100,
		Health:    HealthConfig{ProbeBase: 5 * time.Millisecond, ProbeMax: 20 * time.Millisecond},
	})
	ws := scripted["ws1"]

	// Three consecutive misses push suspicion past the quarantine
	// threshold (0.5 → 0.75 → 0.875 ≥ 0.85).
	ws.set(false, nil)
	for i := 0; i < 3; i++ {
		coord.Cycle()
	}
	if st, reason := healthOf(coord, "ws1"); st != proto.HealthQuarantined {
		t.Fatalf("after 3 misses health = %v (%s), want quarantined", st, reason)
	}

	// While quarantined and not yet due, cycles must not poll it.
	coord.mu.Lock()
	coord.stations["ws1"].health.probeAt = time.Now().Add(time.Hour)
	coord.mu.Unlock()
	ws.mu.Lock()
	before := ws.polls
	ws.mu.Unlock()
	coord.Cycle()
	ws.mu.Lock()
	after := ws.polls
	ws.mu.Unlock()
	if after != before {
		t.Fatalf("quarantined station polled before probe due (%d → %d)", before, after)
	}

	// Station recovers; probes (due immediately now) must readmit it
	// after ReadmitAfter consecutive successes.
	ws.set(true, nil)
	coord.mu.Lock()
	coord.stations["ws1"].health.probeAt = time.Now()
	coord.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.Cycle()
		if st, _ := healthOf(coord, "ws1"); st == proto.HealthHealthy {
			break
		}
		if time.Now().After(deadline) {
			st, reason := healthOf(coord, "ws1")
			t.Fatalf("station not readmitted: health = %v (%s)", st, reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := coord.Stats().Readmissions; got != 1 {
		t.Fatalf("Readmissions = %d, want 1", got)
	}
	var sawReadmit bool
	for _, e := range coord.Events().Recent(0) {
		if e.Kind == eventlog.KindReadmit && e.Station == "ws1" {
			sawReadmit = true
		}
	}
	if !sawReadmit {
		t.Fatal("no readmit event logged")
	}
}

func TestByzantineReplyQuarantinesImmediately(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*proto.PollReply)
	}{
		{"wrong-name", func(r *proto.PollReply) { r.Name = "impostor" }},
		{"negative-capacity", func(r *proto.PollReply) { r.DiskFreeBytes = -1 }},
		{"negative-queue", func(r *proto.PollReply) { r.WaitingJobs = -3 }},
		{"impossible-state", func(r *proto.PollReply) { r.State = proto.StationState(99) }},
		{"unplaced-job", func(r *proto.PollReply) {
			r.State = proto.StationClaimed
			r.ForeignJob = "ghost/1"
			r.ForeignOwnerStation = "never-registered"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord, scripted := healthPool(t, []string{"liar"}, Config{DeadAfter: 100})
			scripted["liar"].set(true, tc.mutate)
			coord.Cycle()
			st, reason := healthOf(coord, "liar")
			if st != proto.HealthQuarantined {
				t.Fatalf("health after byzantine reply = %v (%s), want quarantined", st, reason)
			}
			if !strings.HasPrefix(reason, "byzantine") {
				t.Fatalf("reason = %q, want byzantine:*", reason)
			}
			if got := coord.Stats().ByzantineReplies; got == 0 {
				t.Fatal("ByzantineReplies stat not counted")
			}
		})
	}
}

// TestForeignJobOfDeadHomeIsNotByzantine: a job's home station dying
// after placement is normal Condor life, not a lying exec station.
func TestForeignJobOfDeadHomeIsNotByzantine(t *testing.T) {
	coord, scripted := healthPool(t, []string{"home", "exec"}, Config{DeadAfter: 1})
	scripted["home"].set(false, nil) // home dies → removed after 1 miss
	scripted["exec"].set(true, func(r *proto.PollReply) {
		r.State = proto.StationClaimed
		r.ForeignJob = "home/1"
		r.ForeignOwnerStation = "home"
	})
	coord.Cycle() // removes home, exec reply references its tombstone
	coord.Cycle()
	if st, reason := healthOf(coord, "exec"); st != proto.HealthHealthy {
		t.Fatalf("exec health = %v (%s), want healthy (home is a tombstone)", st, reason)
	}
}

func TestDegradedModeFreezesUpdown(t *testing.T) {
	coord, scripted := healthPool(t, []string{"ws1", "ws2", "ws3", "ws4"}, Config{
		DeadAfter: 100,
	})
	// ws1 keeps wanting capacity; its index would normally move every
	// cycle it waits.
	scripted["ws1"].set(true, func(r *proto.PollReply) {
		r.State = proto.StationOwner
		r.WaitingJobs = 3
	})
	coord.Cycle()
	if coord.Stats().DegradedCycles != 0 {
		t.Fatal("degraded before any station failed")
	}
	moving := coord.Index("ws1")

	// Three of four stations go dark → 75% non-healthy > 50% threshold.
	for _, name := range []string{"ws2", "ws3", "ws4"} {
		scripted[name].set(false, nil)
	}
	coord.Cycle() // enters degraded at the end of this cycle
	frozen := coord.Index("ws1")
	for i := 0; i < 3; i++ {
		coord.Cycle()
	}
	if got := coord.Index("ws1"); got != frozen {
		t.Fatalf("index moved %v → %v while degraded, want frozen", frozen, got)
	}
	if coord.Stats().DegradedCycles == 0 {
		t.Fatal("DegradedCycles not counted")
	}
	var entered bool
	for _, e := range coord.Events().Recent(0) {
		if e.Kind == eventlog.KindDegraded && strings.HasPrefix(e.Detail, "entered") {
			entered = true
		}
	}
	if !entered {
		t.Fatal("no degraded-entered event logged")
	}

	// Pool heals → degraded clears and indexes move again.
	for _, name := range []string{"ws2", "ws3", "ws4"} {
		scripted[name].set(true, nil)
	}
	// Quarantined stations probe on their backoff schedule (ProbeBase
	// defaults to PollInterval = 1h here), so force the probes due.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		for _, s := range coord.stations {
			if s.health.state == proto.HealthQuarantined {
				s.health.probeAt = time.Now()
			}
		}
		c := coord.degraded
		coord.mu.Unlock()
		if !c {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never left degraded mode after heal")
		}
		coord.Cycle()
	}
	coord.Cycle()
	coord.Cycle()
	if got := coord.Index("ws1"); got == moving && got == frozen && frozen == 0 {
		// Index may legitimately be 0 if up-down config nets to zero;
		// only fail when it was moving before and froze forever.
		t.Logf("index stayed %v; up-down config nets to zero movement", got)
	}
}

func TestHealthStateSurvivesCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DeadAfter: 100,
		StateDir:  dir,
		Health:    HealthConfig{ProbeBase: 5 * time.Millisecond, ProbeMax: 20 * time.Millisecond},
	}
	coord, scripted := healthPool(t, []string{"ws1"}, cfg)
	addr := coord.stations["ws1"].addr
	ws := scripted["ws1"]
	ws.set(false, nil)
	for i := 0; i < 3; i++ {
		coord.Cycle()
	}
	if st, _ := healthOf(coord, "ws1"); st != proto.HealthQuarantined {
		t.Fatalf("precondition: station not quarantined (%v)", st)
	}
	_, reasonBefore := healthOf(coord, "ws1")
	coord.Close() // kill mid-quarantine

	restarted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	st, reason := healthOf(restarted, "ws1")
	if st != proto.HealthQuarantined {
		t.Fatalf("health after restart = %v, want quarantined", st)
	}
	if reason != reasonBefore {
		t.Fatalf("reason after restart = %q, want %q", reason, reasonBefore)
	}
	if got := restarted.stations["ws1"].addr; got != addr {
		t.Fatalf("restored addr = %q, want %q", got, addr)
	}

	// The station must still earn readmission under the new incarnation.
	ws.set(true, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		restarted.Cycle()
		if st, _ := healthOf(restarted, "ws1"); st == proto.HealthHealthy {
			break
		}
		if time.Now().After(deadline) {
			st, reason := healthOf(restarted, "ws1")
			t.Fatalf("not readmitted after restart: %v (%s)", st, reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSuspectStationReceivesNoGrants(t *testing.T) {
	coord, scripted := healthPool(t, []string{"needy", "idle1"}, Config{DeadAfter: 100})
	scripted["needy"].set(true, func(r *proto.PollReply) {
		r.State = proto.StationOwner
		r.WaitingJobs = 2
	})
	// idle1 flubs one poll → suspect (1 consecutive miss = 0.5 suspicion).
	scripted["idle1"].set(false, nil)
	coord.Cycle()
	if st, _ := healthOf(coord, "idle1"); st != proto.HealthSuspect {
		t.Fatalf("idle1 health = %v, want suspect", st)
	}
	// idle1 answers again but is still suspect (hysteresis) — it must
	// not be offered as a grant target.
	scripted["idle1"].set(true, nil)
	coord.Cycle()
	if st, _ := healthOf(coord, "idle1"); st != proto.HealthSuspect {
		t.Skip("station already readmitted; grant exclusion window closed")
	}
	if got := coord.Stats().Grants; got != 0 {
		t.Fatalf("Grants = %d, want 0 while only idle machine is suspect", got)
	}
}

func BenchmarkHealthObserve(b *testing.B) {
	// The per-station scoring runs inside the cycle's result loop under
	// c.mu — it must stay allocation-free (see BENCH_baseline.json).
	var cfg HealthConfig
	cfg.sanitize(2*time.Minute, 15*time.Second)
	h := newHealth("ws0001", time.Unix(0, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.observe(&cfg, time.Duration(i%20)*time.Millisecond, i%7 != 0)
	}
	if h.wlen == 0 {
		b.Fatal("observe did nothing")
	}
}
