package coordinator

import (
	"context"
	"fmt"
	"testing"
	"time"

	"condor/internal/proto"
)

// benchPool starts a coordinator over n registered fake stations spread
// across a fixed set of wire servers (distinct addresses, so the client
// pool holds real per-station connections without n listeners).
func benchPool(b *testing.B, n int) *Coordinator {
	b.Helper()
	const servers = 16
	addrs := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		srv := fakeStation(b, func(_ context.Context, msg any) (any, error) {
			return proto.PollReply{State: proto.StationIdle}, nil
		})
		addrs = append(addrs, srv.Addr())
	}
	coord, err := New(Config{
		PollInterval: time.Hour,
		RPCTimeout:   30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(coord.Close)
	for i := 0; i < n; i++ {
		coord.Register(fmt.Sprintf("ws%04d", i), addrs[i%len(addrs)])
	}
	return coord
}

func benchmarkCycleAt(b *testing.B, stations int) {
	coord := benchPool(b, stations)
	coord.Cycle() // warm the connection pool outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Cycle()
	}
}

func BenchmarkCycle100(b *testing.B)  { benchmarkCycleAt(b, 100) }
func BenchmarkCycle1000(b *testing.B) { benchmarkCycleAt(b, 1000) }
