package coordinator

import (
	"context"
	"fmt"
	"testing"
	"time"

	"condor/internal/decision"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/updown"
)

// benchPool starts a coordinator over n registered fake stations spread
// across a fixed set of wire servers (distinct addresses, so the client
// pool holds real per-station connections without n listeners).
func benchPool(b *testing.B, n int) *Coordinator {
	b.Helper()
	const servers = 16
	addrs := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		srv := fakeStation(b, func(_ context.Context, msg any) (any, error) {
			return proto.PollReply{State: proto.StationIdle}, nil
		})
		addrs = append(addrs, srv.Addr())
	}
	coord, err := New(Config{
		PollInterval: time.Hour,
		RPCTimeout:   30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(coord.Close)
	for i := 0; i < n; i++ {
		coord.Register(fmt.Sprintf("ws%04d", i), addrs[i%len(addrs)])
	}
	return coord
}

func benchmarkCycleAt(b *testing.B, stations int) {
	coord := benchPool(b, stations)
	coord.Cycle() // warm the connection pool outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Cycle()
	}
}

func BenchmarkCycle100(b *testing.B)  { benchmarkCycleAt(b, 100) }
func BenchmarkCycle1000(b *testing.B) { benchmarkCycleAt(b, 1000) }

// benchmarkPipelineCycleAt isolates the scheduling pipeline itself —
// predicates, ranking, placement, preemption — on a synthetic snapshot,
// with the RPC fabric of the full-cycle benchmarks above factored out.
// This is the decision path both the live coordinator and the simulator
// run once per poll cycle; it must stay allocation-lean as policies are
// added.
func benchmarkPipelineCycleAt(b *testing.B, stations int) {
	pol := policy.MustNew(policy.DefaultPolicy)
	tab := updown.NewTable(updown.DefaultConfig())
	views := make([]policy.StationView, 0, stations)
	for i := 0; i < stations; i++ {
		v := policy.StationView{Name: fmt.Sprintf("ws%04d", i), DiskFree: 1 << 30}
		switch i % 4 {
		case 0:
			v.State = proto.StationIdle
		case 1:
			v.State = proto.StationOwner
		case 2:
			v.State = proto.StationClaimed
			v.ForeignOwner = fmt.Sprintf("ws%04d", (i+1)%stations)
			v.ForeignJob = v.ForeignOwner + "/1"
			v.WaitingJobs = 2
		case 3:
			v.State = proto.StationIdle
			v.WaitingJobs = 1
		}
		tab.Touch(v.Name)
		views = append(views, v)
	}
	cfg := policy.DefaultConfig()
	cfg.MaxGrantsPerCycle = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(views, tab, cfg)
	}
}

func BenchmarkPipelineCycle100(b *testing.B)  { benchmarkPipelineCycleAt(b, 100) }
func BenchmarkPipelineCycle1000(b *testing.B) { benchmarkPipelineCycleAt(b, 1000) }

// BenchmarkPipelineCycleAudited1000 is the same pipeline with a live
// decision.Builder attached — the cost of a fully audited cycle, for
// comparison against the recorder-off baseline above (which runs the
// identical code with a nil builder).
func BenchmarkPipelineCycleAudited1000(b *testing.B) {
	const stations = 1000
	pol := policy.MustNew(policy.DefaultPolicy)
	tab := updown.NewTable(updown.DefaultConfig())
	views := make([]policy.StationView, 0, stations)
	for i := 0; i < stations; i++ {
		v := policy.StationView{Name: fmt.Sprintf("ws%04d", i), DiskFree: 1 << 30}
		switch i % 4 {
		case 0:
			v.State = proto.StationIdle
		case 1:
			v.State = proto.StationOwner
		case 2:
			v.State = proto.StationClaimed
			v.ForeignOwner = fmt.Sprintf("ws%04d", (i+1)%stations)
			v.ForeignJob = v.ForeignOwner + "/1"
			v.WaitingJobs = 2
		case 3:
			v.State = proto.StationIdle
			v.WaitingJobs = 1
		}
		tab.Touch(v.Name)
		views = append(views, v)
	}
	cfg := policy.DefaultConfig()
	cfg.MaxGrantsPerCycle = 4
	rec := decision.NewRecorder(decision.DefaultCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aud := decision.NewBuilder(uint64(i), time.Time{})
		pol.DecideAudited(views, tab, cfg, aud)
		rec.Record(aud.Done())
	}
}
