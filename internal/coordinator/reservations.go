package coordinator

import (
	"fmt"
	"time"

	"condor/internal/eventlog"
	"condor/internal/proto"
)

// reservation is one §5.3 machine reservation.
type reservation struct {
	holder string
	until  time.Time
}

// Reserve grants holder exclusive remote use of station until now+d. A
// live reservation by a different holder is refused; the same holder may
// extend. The workstation owner's priority is unaffected — reservations
// only arbitrate among remote users.
func (c *Coordinator) Reserve(station, holder string, d time.Duration) (time.Time, error) {
	if d <= 0 {
		return time.Time{}, fmt.Errorf("coordinator: non-positive reservation duration %v", d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.stations[station]; !ok {
		return time.Time{}, fmt.Errorf("coordinator: unknown station %q", station)
	}
	if _, ok := c.stations[holder]; !ok {
		return time.Time{}, fmt.Errorf("coordinator: unknown holder %q", holder)
	}
	now := time.Now()
	if r, ok := c.reservations[station]; ok && r.until.After(now) && r.holder != holder {
		return time.Time{}, fmt.Errorf("coordinator: %s reserved for %s until %s",
			station, r.holder, r.until.Format(time.RFC3339))
	}
	until := now.Add(d)
	c.reservations[station] = reservation{holder: holder, until: until}
	c.appendJournalLocked(persistRecord{
		Kind: recReserve, Name: station, Holder: holder, UntilUnixMilli: until.UnixMilli(),
	})
	c.events.Append(eventlog.Event{
		Kind: eventlog.KindReserve, Station: station,
		Detail: fmt.Sprintf("for %s until %s", holder, until.Format(time.RFC3339)),
	})
	return until, nil
}

// CancelReservation releases a station's reservation; it reports
// whether a live one existed. Cancelling an already-expired reservation
// prunes the stale entry but reports false — the reservation had
// already ended on its own.
func (c *Coordinator) CancelReservation(station string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.reservations[station]
	if !ok {
		return false
	}
	delete(c.reservations, station)
	c.appendJournalLocked(persistRecord{Kind: recCancel, Name: station})
	return r.until.After(time.Now())
}

// reservationFor returns the live reservation holder for a station
// (empty when none), pruning expired entries. Caller holds c.mu.
func (c *Coordinator) reservationForLocked(station string, now time.Time) string {
	r, ok := c.reservations[station]
	if !ok {
		return ""
	}
	if !r.until.After(now) {
		delete(c.reservations, station)
		return ""
	}
	return r.holder
}

// enforceReservations emits preemptions for reserved machines that are
// running some other station's job, so a reservation takes effect even
// against already-placed work. Caller must NOT hold c.mu.
func (c *Coordinator) enforceReservations(addrs map[string]string) {
	now := time.Now()
	type evict struct {
		addr  string
		jobID string
		hold  string
	}
	var evictions []evict
	c.mu.Lock()
	for name, s := range c.stations {
		holder := c.reservationForLocked(name, now)
		if holder == "" || !s.reachable {
			continue
		}
		if s.lastReply.State == proto.StationClaimed &&
			s.lastReply.ForeignOwnerStation != holder &&
			s.lastReply.ForeignJob != "" {
			evictions = append(evictions, evict{
				addr:  addrs[name],
				jobID: s.lastReply.ForeignJob,
				hold:  holder,
			})
		}
	}
	c.mu.Unlock()
	for _, e := range evictions {
		c.bump(func(st *Stats) { st.Preempts++ })
		_, _ = c.callStationRetry(e.addr, proto.PreemptRequest{
			JobID:  e.jobID,
			Reason: fmt.Sprintf("machine reserved for %s", e.hold),
		})
	}
}
