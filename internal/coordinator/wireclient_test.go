package coordinator

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/updown"
	"condor/internal/wire"
)

// --- config sanitize: partial structs must not be clobbered ------------

func TestSanitizePreservesPartialPolicy(t *testing.T) {
	cfg := Config{Policy: policy.Config{MaxPreemptsPerCycle: 3}}
	cfg.sanitize()
	if cfg.Policy.MaxPreemptsPerCycle != 3 {
		t.Fatalf("MaxPreemptsPerCycle = %d, want the configured 3 (clobbered by defaults)",
			cfg.Policy.MaxPreemptsPerCycle)
	}
	if cfg.Policy.MaxGrantsPerCycle != 1 {
		t.Fatalf("MaxGrantsPerCycle = %d, want defaulted 1", cfg.Policy.MaxGrantsPerCycle)
	}
	if cfg.Policy.Placement != policy.PlaceFirstFit {
		t.Fatalf("Placement = %v, want defaulted first-fit", cfg.Policy.Placement)
	}
}

func TestSanitizePreservesPartialUpDown(t *testing.T) {
	cfg := Config{UpDown: updown.Config{DownRate: 7}}
	cfg.sanitize()
	if cfg.UpDown.DownRate != 7 {
		t.Fatalf("DownRate = %v, want the configured 7", cfg.UpDown.DownRate)
	}
	def := updown.DefaultConfig()
	if cfg.UpDown.UpRate != def.UpRate || cfg.UpDown.MaxAbs != def.MaxAbs {
		t.Fatalf("UpDown = %+v, want unset fields defaulted from %+v", cfg.UpDown, def)
	}
}

func TestSanitizeZeroSubConfigsStillMeanDefaults(t *testing.T) {
	cfg := Config{}
	cfg.sanitize()
	if cfg.Policy != policy.DefaultConfig() {
		t.Fatalf("Policy = %+v, want full defaults for a zero struct", cfg.Policy)
	}
	if cfg.UpDown != updown.DefaultConfig() {
		t.Fatalf("UpDown = %+v, want full defaults for a zero struct", cfg.UpDown)
	}
	if cfg.RPCTimeout != cfg.DialTimeout+10*time.Second {
		t.Fatalf("RPCTimeout = %v, want DialTimeout+10s", cfg.RPCTimeout)
	}
}

// --- Cycle vs. concurrent re-registration ------------------------------

// fakeStation answers polls on the wire like a schedd would, via a
// caller-supplied handler.
func fakeStation(t testing.TB, handle func(_ context.Context, msg any) (any, error)) *wire.Server {
	t.Helper()
	srv, err := wire.NewServer("127.0.0.1:0", func(pe *wire.Peer) wire.Handler {
		return handle
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestReRegistrationDuringPollSurvivesStaleFailure(t *testing.T) {
	// Regression: a station re-registers (possibly at a new address)
	// while a poll of its previous incarnation is still in flight. When
	// that stale poll fails, the coordinator must not unregister the
	// fresh registration — the failure belongs to the old address.
	polled := make(chan struct{}, 1)
	release := make(chan struct{})
	old := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		select {
		case polled <- struct{}{}:
		default:
		}
		<-release
		return nil, errors.New("station restarting")
	})
	fresh := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		return proto.PollReply{Name: "ws", State: proto.StationIdle}, nil
	})

	coord, err := New(Config{
		PollInterval: time.Hour,
		DeadAfter:    1, // one stale failure used to be enough to unregister
		RPCTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.Register("ws", old.Addr())

	done := make(chan struct{})
	go func() {
		coord.Cycle()
		close(done)
	}()
	<-polled                           // the old incarnation is mid-poll
	coord.Register("ws", fresh.Addr()) // station comes back at a new address
	close(release)                     // now the stale poll fails
	<-done

	infos := coord.Stations()
	if len(infos) != 1 || infos[0].Name != "ws" || infos[0].Addr != fresh.Addr() {
		t.Fatalf("stations = %+v, want ws registered at the fresh address", infos)
	}
}

func TestReRegistrationDuringPollIgnoresStaleSuccess(t *testing.T) {
	// The mirror image: the stale poll *succeeds* (slowly) after the
	// station re-registered elsewhere. Its reply describes the previous
	// incarnation and must not overwrite the fresh registration's state.
	polled := make(chan struct{}, 1)
	release := make(chan struct{})
	old := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		select {
		case polled <- struct{}{}:
		default:
		}
		<-release
		return proto.PollReply{Name: "ws", State: proto.StationClaimed,
			ForeignJob: "ghost", ForeignOwnerStation: "nobody"}, nil
	})
	fresh := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		return proto.PollReply{Name: "ws", State: proto.StationIdle}, nil
	})

	coord, err := New(Config{PollInterval: time.Hour, RPCTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.Register("ws", old.Addr())

	done := make(chan struct{})
	go func() {
		coord.Cycle()
		close(done)
	}()
	<-polled
	coord.Register("ws", fresh.Addr())
	close(release)
	<-done

	infos := coord.Stations()
	if len(infos) != 1 {
		t.Fatalf("stations = %+v", infos)
	}
	if infos[0].State == proto.StationClaimed || infos[0].ForeignJob == "ghost" {
		t.Fatalf("stale poll reply overwrote the fresh registration: %+v", infos[0])
	}
}

// --- fault injection: a wedged station must not hang the cycle ---------

func TestCycleBoundedWithBlackHoledStation(t *testing.T) {
	// A station that accepts TCP but never reads nor replies. The cycle
	// must complete within the RPC deadline, not block forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var heldMu sync.Mutex
	var held []net.Conn
	defer func() {
		heldMu.Lock()
		defer heldMu.Unlock()
		for _, conn := range held {
			conn.Close()
		}
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, conn) // hold open, never read
			heldMu.Unlock()
		}
	}()

	healthy := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		return proto.PollReply{Name: "ok", State: proto.StationIdle}, nil
	})

	const rpcTimeout = 300 * time.Millisecond
	coord, err := New(Config{
		PollInterval: time.Hour,
		RPCTimeout:   rpcTimeout,
		DeadAfter:    100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.Register("hole", ln.Addr().String())
	coord.Register("ok", healthy.Addr())

	start := time.Now()
	coord.Cycle()
	elapsed := time.Since(start)
	// Budget: the RPC deadline plus retry backoff slack, far below "hangs".
	if elapsed > 10*rpcTimeout {
		t.Fatalf("Cycle took %v with a black-holed station (RPCTimeout %v)", elapsed, rpcTimeout)
	}
	stats := coord.Stats()
	if stats.PollFails == 0 {
		t.Fatalf("stats = %+v, want the black-holed poll counted as failed", stats)
	}
	if stats.Polls == 0 {
		t.Fatalf("stats = %+v, want the healthy station still polled", stats)
	}
}

// --- pooling: steady state is ≤1 dial per station ----------------------

func TestCyclesReuseStationConnections(t *testing.T) {
	const stations, cycles = 3, 5
	coord, err := New(Config{PollInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for i := 0; i < stations; i++ {
		name := fmt.Sprintf("ws%d", i)
		srv := fakeStation(t, func(_ context.Context, msg any) (any, error) {
			return proto.PollReply{Name: name, State: proto.StationOwner}, nil
		})
		coord.Register(name, srv.Addr())
	}
	for i := 0; i < cycles; i++ {
		coord.Cycle()
	}
	stats := coord.Stats()
	if stats.Dials != stations {
		t.Fatalf("stats = %+v, want exactly one dial per station over %d cycles", stats, cycles)
	}
	if want := uint64(stations * (cycles - 1)); stats.Reuses != want {
		t.Fatalf("stats = %+v, want %d reuses", stats, want)
	}
}

func TestDialPerRPCAblationStillWorks(t *testing.T) {
	coord, err := New(Config{PollInterval: time.Hour, DialPerRPC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := fakeStation(t, func(_ context.Context, msg any) (any, error) {
		return proto.PollReply{Name: "ws", State: proto.StationIdle}, nil
	})
	coord.Register("ws", srv.Addr())
	coord.Cycle()
	stats := coord.Stats()
	if stats.Polls != 1 {
		t.Fatalf("stats = %+v, want a successful poll without the pool", stats)
	}
	if stats.Dials != 0 || stats.Reuses != 0 {
		t.Fatalf("stats = %+v, want zero pool counters in dial-per-RPC mode", stats)
	}
}

// --- benchmarks: pooled vs. dial-per-RPC cycles ------------------------

func benchmarkCycle(b *testing.B, dialPerRPC bool) {
	const stations = 8
	coord, err := New(Config{PollInterval: time.Hour, DialPerRPC: dialPerRPC})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	for i := 0; i < stations; i++ {
		name := fmt.Sprintf("ws%d", i)
		srv := fakeStation(b, func(_ context.Context, msg any) (any, error) {
			return proto.PollReply{Name: name, State: proto.StationOwner}, nil
		})
		coord.Register(name, srv.Addr())
	}
	coord.Cycle() // warm the pool so the loop measures steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Cycle()
	}
	b.StopTimer()
	if !dialPerRPC {
		stats := coord.Stats()
		b.ReportMetric(float64(stats.Dials)/stations, "dials/station")
		if stats.Dials > stations {
			b.Fatalf("stats = %+v, want ≤1 dial per station in steady state", stats)
		}
	}
}

func BenchmarkCoordinatorCycle(b *testing.B)           { benchmarkCycle(b, false) }
func BenchmarkCoordinatorCycleDialPerRPC(b *testing.B) { benchmarkCycle(b, true) }
