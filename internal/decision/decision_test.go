package decision

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func sampleAudit(cycle uint64, at time.Time) *CycleAudit {
	b := NewBuilder(cycle, at)
	b.Begin("updown", 3)
	b.Requester(RankEntry{Requester: "pulsar", Position: 0, Score: -2, HasScore: true,
		Features: []Feature{{Key: "waiting", Value: "2"}}})
	b.Requester(RankEntry{Requester: "quasar", Position: 1, Score: 5, HasScore: true})
	b.Reject(Rejection{Station: "vega", Predicate: "min-disk",
		Threshold: "disk >= 1048576 bytes", Observed: "524288 bytes free"})
	b.Idle([]string{"altair"})
	b.Grant("pulsar", "altair")
	b.AnnotateGrantJob(0, "pulsar/7")
	b.Unserved("quasar", "all admitted machines already granted")
	b.BeginPreempt("quasar")
	b.PreemptCompared("deneb", "mizar", true)
	b.PreemptOutcome("deneb", "mizar", "mizar/1")
	return b.Done()
}

func TestBuilderNilSafe(t *testing.T) {
	var b *Builder
	b.Begin("updown", 3)
	b.Requester(RankEntry{})
	b.Reject(Rejection{})
	b.Idle([]string{"x"})
	b.Grant("a", "b")
	b.Unserved("a", "r")
	b.BeginPreempt("a")
	b.PreemptCompared("e", "o", true)
	b.PreemptOutcome("e", "v", "j")
	b.AnnotateGrantJob(0, "j")
	if b.Done() != nil {
		t.Fatal("nil builder's Done must be nil")
	}
	// And the recorder must swallow the resulting nil without recording.
	r := NewRecorder(4)
	r.Record(b.Done())
	if r.Total() != 0 {
		t.Fatalf("Total = %d after recording nil", r.Total())
	}
	var nilRec *Recorder
	nilRec.Record(sampleAudit(1, time.Now())) // must not panic
}

func TestBuilderAssemblesAudit(t *testing.T) {
	a := sampleAudit(42, time.Unix(1000, 0))
	if a.Cycle != 42 || a.Policy != "updown" || a.Stations != 3 {
		t.Fatalf("header %+v", a)
	}
	if len(a.Requesters) != 2 || a.Requesters[0].Requester != "pulsar" {
		t.Fatalf("requesters %+v", a.Requesters)
	}
	if len(a.Grants) != 1 || a.Grants[0].JobID != "pulsar/7" {
		t.Fatalf("grants %+v", a.Grants)
	}
	p := a.Preempts[0]
	if p.Victim != "mizar" || !p.Compared[0].Chosen {
		t.Fatalf("preempt %+v", p)
	}
	if !a.Mentions("vega") || !a.Mentions("mizar") || a.Mentions("nowhere") {
		t.Fatal("Mentions misses a role")
	}
	if !a.MentionsJob("pulsar/7") || a.MentionsJob("pulsar/8") {
		t.Fatal("MentionsJob wrong")
	}
}

func TestRecorderWrap(t *testing.T) {
	r := NewRecorder(4)
	base := time.Unix(2000, 0)
	for c := uint64(1); c <= 10; c++ {
		r.Record(sampleAudit(c, base.Add(time.Duration(c)*time.Minute)))
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if snap[i].Cycle != want {
			t.Fatalf("snapshot[%d].Cycle = %d, want %d", i, snap[i].Cycle, want)
		}
	}
}

func TestFilter(t *testing.T) {
	base := time.Unix(3000, 0)
	audits := []CycleAudit{
		*sampleAudit(1, base),
		*sampleAudit(2, base.Add(time.Minute)),
		{Cycle: 3, At: base.Add(2 * time.Minute), Policy: "updown", Stations: 3},
	}
	if got := Filter(audits, "", "pulsar", 0, 0); len(got) != 2 {
		t.Fatalf("station filter kept %d, want 2", len(got))
	}
	if got := Filter(audits, "pulsar/7", "", 0, 0); len(got) != 2 {
		t.Fatalf("job filter kept %d, want 2", len(got))
	}
	if got := Filter(audits, "", "", 2, 0); len(got) != 1 || got[0].Cycle != 2 {
		t.Fatalf("cycle=2 got %+v", got)
	}
	if got := Filter(audits, "", "", -1, 0); len(got) != 1 || got[0].Cycle != 3 {
		t.Fatalf("cycle=-1 got %+v", got)
	}
	if got := Filter(audits, "", "", -10, 0); got != nil {
		t.Fatalf("cycle=-10 got %+v, want nil", got)
	}
	if got := Filter(audits, "", "", 0, 2); len(got) != 2 || got[0].Cycle != 2 {
		t.Fatalf("last=2 got %+v", got)
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(8)
	base := time.Unix(4000, 0)
	for c := uint64(1); c <= 3; c++ {
		r.Record(sampleAudit(c, base.Add(time.Duration(c)*time.Minute)))
	}
	req := httptest.NewRequest("GET", "/decisions?station=pulsar&last=2", nil)
	w := httptest.NewRecorder()
	Handler(r).ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var page Page
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Cycles) != 2 || page.Total != 3 {
		t.Fatalf("page %+v", page)
	}
	if page.Cycles[1].Cycle != 3 {
		t.Fatalf("newest cycle %d, want 3", page.Cycles[1].Cycle)
	}

	// An empty ring serves an empty list, not null.
	w = httptest.NewRecorder()
	Handler(NewRecorder(4)).ServeHTTP(w, httptest.NewRequest("GET", "/decisions", nil))
	if body := strings.TrimSpace(w.Body.String()); !strings.Contains(body, `"cycles": []`) {
		t.Fatalf("empty ring served %s", body)
	}
}

func TestRender(t *testing.T) {
	a := sampleAudit(42, time.Unix(5000, 0))

	full := RenderCycle(a)
	for _, want := range []string{"cycle 42", "policy=updown", "min-disk", "pulsar -> altair"} {
		if !strings.Contains(full, want) {
			t.Errorf("RenderCycle missing %q in:\n%s", want, full)
		}
	}

	why := RenderRequester(a, "quasar")
	for _, want := range []string{"rank 2 of 2", "all admitted machines already granted", "min-disk"} {
		if !strings.Contains(why, want) {
			t.Errorf("RenderRequester missing %q in:\n%s", want, why)
		}
	}

	st := RenderStation(a, "vega")
	if !strings.Contains(st, "min-disk") || !strings.Contains(st, "1048576") {
		t.Errorf("RenderStation missing the predicate detail:\n%s", st)
	}

	pred, n, ok := TopRejection([]CycleAudit{*a, *a}, "quasar")
	if !ok || pred != "min-disk" || n != 2 {
		t.Fatalf("TopRejection = %q %d %v", pred, n, ok)
	}
	if _, _, ok := TopRejection(nil, "quasar"); ok {
		t.Fatal("TopRejection on no audits must report !ok")
	}
}

// BenchmarkDecisionRecord measures the publish path: one atomic add and
// one pointer swap per finished cycle.
func BenchmarkDecisionRecord(b *testing.B) {
	r := NewRecorder(DefaultCapacity)
	a := sampleAudit(1, time.Unix(1, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(a)
	}
}

// BenchmarkBuilderNil pins the recorder-off contract: the full set of
// per-cycle hooks on a nil builder must not allocate.
func BenchmarkBuilderNil(b *testing.B) {
	var bd *Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Begin("updown", 23)
		bd.Reject(Rejection{})
		bd.Grant("a", "b")
		bd.BeginPreempt("a")
		bd.PreemptOutcome("", "", "")
		if bd.Done() != nil {
			b.Fatal("nil builder produced an audit")
		}
	}
}
