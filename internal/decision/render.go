package decision

import (
	"fmt"
	"sort"
	"strings"
)

// RenderCycle prints one cycle's full audit — the `condor-explain
// -cycle` view.
func RenderCycle(a *CycleAudit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d  policy=%s  at=%s  stations=%d\n",
		a.Cycle, a.Policy, a.At.Format("15:04:05.000"), a.Stations)
	if len(a.Requesters) > 0 {
		b.WriteString("  requesters (ranked best-first):\n")
		for _, r := range a.Requesters {
			fmt.Fprintf(&b, "    %2d. %-16s%s\n", r.Position+1, r.Requester, rankDetail(&r))
		}
	}
	if len(a.Rejections) > 0 {
		b.WriteString("  rejections:\n")
		for _, r := range a.Rejections {
			b.WriteString("    " + rejectionLine(&r) + "\n")
		}
	}
	if len(a.Idle) > 0 {
		fmt.Fprintf(&b, "  placement order: %s\n", strings.Join(a.Idle, ", "))
	}
	for _, g := range a.Grants {
		fmt.Fprintf(&b, "  grant: %s -> %s%s\n", g.Requester, g.Exec, jobSuffix(g.JobID))
	}
	for _, u := range a.Unserved {
		fmt.Fprintf(&b, "  unserved: %-16s %s\n", u.Requester, u.Reason)
	}
	for _, p := range a.Preempts {
		b.WriteString(renderPreempt(&p))
	}
	return b.String()
}

// RenderRequester is the "why isn't my job running" view: one
// requester's treatment in one cycle — rank, score, what it got, and
// every rejection that stood between it and a machine (its own
// placement-phase rejections plus the requester-blind candidate
// filtering, which applies to everyone).
func RenderRequester(a *CycleAudit, requester string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d  policy=%s  at=%s\n", a.Cycle, a.Policy, a.At.Format("15:04:05.000"))
	found := false
	for _, r := range a.Requesters {
		if r.Requester == requester {
			fmt.Fprintf(&b, "  rank %d of %d%s\n", r.Position+1, len(a.Requesters), rankDetail(&r))
			found = true
		}
	}
	if !found {
		fmt.Fprintf(&b, "  %s was not a requester this cycle (no waiting jobs, or unhealthy)\n", requester)
	}
	for _, g := range a.Grants {
		if g.Requester == requester {
			fmt.Fprintf(&b, "  granted %s%s\n", g.Exec, jobSuffix(g.JobID))
		}
	}
	for _, u := range a.Unserved {
		if u.Requester == requester {
			fmt.Fprintf(&b, "  unserved: %s\n", u.Reason)
		}
	}
	for _, r := range a.Rejections {
		if r.Requester == requester || r.Requester == "" {
			b.WriteString("  " + rejectionLine(&r) + "\n")
		}
	}
	for _, p := range a.Preempts {
		if p.Beneficiary == requester {
			b.WriteString(renderPreempt(&p))
		}
	}
	return b.String()
}

// RenderStation is the inverse view: how one machine was treated in one
// cycle — was it filtered (by which predicate), handed out, or weighed
// as a preemption victim.
func RenderStation(a *CycleAudit, station string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d  policy=%s  at=%s\n", a.Cycle, a.Policy, a.At.Format("15:04:05.000"))
	for _, r := range a.Rejections {
		if r.Station == station {
			b.WriteString("  " + rejectionLine(&r) + "\n")
		}
	}
	for i, n := range a.Idle {
		if n == station {
			fmt.Fprintf(&b, "  admitted, placement position %d of %d\n", i+1, len(a.Idle))
		}
	}
	for _, g := range a.Grants {
		if g.Exec == station {
			fmt.Fprintf(&b, "  granted to %s%s\n", g.Requester, jobSuffix(g.JobID))
		}
		if g.Requester == station {
			fmt.Fprintf(&b, "  received grant of %s%s\n", g.Exec, jobSuffix(g.JobID))
		}
	}
	for _, p := range a.Preempts {
		for _, c := range p.Compared {
			if c.Exec != station {
				continue
			}
			verdict := "owner outranks " + p.Beneficiary + ", spared"
			if c.Outranked {
				verdict = "owner outranked by " + p.Beneficiary
				if c.Chosen {
					verdict += ", CHOSEN as victim"
				} else {
					verdict += ", spared (worse victim existed)"
				}
			}
			fmt.Fprintf(&b, "  preempt compare: owner=%s — %s\n", c.Owner, verdict)
		}
	}
	return b.String()
}

// TopRejection summarizes why a requester is starved across audits: the
// predicate that most often stood between it and a machine (its own
// placement-phase rejections plus requester-blind candidate
// filtering), with the count. Returns ok=false when no rejection
// involves the requester.
func TopRejection(audits []CycleAudit, requester string) (predicate string, count int, ok bool) {
	counts := map[string]int{}
	for i := range audits {
		for _, r := range audits[i].Rejections {
			if r.Requester == requester || r.Requester == "" {
				counts[r.Predicate]++
			}
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic tie-break
	for _, n := range names {
		if counts[n] > count {
			predicate, count = n, counts[n]
		}
	}
	return predicate, count, count > 0
}

func rankDetail(r *RankEntry) string {
	var b strings.Builder
	if r.HasScore {
		fmt.Fprintf(&b, "  index=%g", r.Score)
	}
	for _, f := range r.Features {
		fmt.Fprintf(&b, "  %s=%s", f.Key, f.Value)
	}
	return b.String()
}

func rejectionLine(r *Rejection) string {
	phase := "candidate"
	if r.Requester != "" {
		phase = "for " + r.Requester
	}
	line := fmt.Sprintf("%-16s rejected by %-12s (%s)", r.Station, r.Predicate, phase)
	if r.Threshold != "" || r.Observed != "" {
		line += fmt.Sprintf("  want %s, got %s", r.Threshold, r.Observed)
	}
	return line
}

func renderPreempt(p *PreemptAudit) string {
	var b strings.Builder
	if p.Exec != "" {
		fmt.Fprintf(&b, "  preempt for %s: evict %s's job%s on %s\n",
			p.Beneficiary, p.Victim, jobSuffix(p.JobID), p.Exec)
	} else {
		fmt.Fprintf(&b, "  preempt for %s: no victim (no outranked foreign job)\n", p.Beneficiary)
	}
	for _, c := range p.Compared {
		mark := "outranks " + p.Beneficiary
		if c.Outranked {
			mark = "outranked"
			if c.Chosen {
				mark += ", chosen"
			}
		}
		fmt.Fprintf(&b, "    considered %-16s owner=%-12s %s\n", c.Exec, c.Owner, mark)
	}
	return b.String()
}

func jobSuffix(jobID string) string {
	if jobID == "" {
		return ""
	}
	return " (job " + jobID + ")"
}
