// Package decision is the scheduler's audit trail: the "why" counterpart
// of internal/trace's "what". Where a trace shows where one job spent its
// time, a decision audit shows why the policy pipeline did what it did in
// one cycle — which predicate filtered each machine (threshold vs
// observed), how the ranker scored each requester, the placement order,
// and every victim comparison the preemptor made under the policy's own
// Better relation.
//
// Design constraints, in priority order (mirroring internal/trace):
//
//  1. The recorder-off path is free. The pipeline threads an optional
//     *Builder; every Builder method is nil-receiver safe and the
//     pipeline only assembles audit values behind a nil check, so a nil
//     builder costs one branch per site and zero allocations.
//  2. Recording is a lock-free bounded ring of atomic pointers to
//     immutable CycleAudits. Writers never block; under overflow the
//     oldest cycles are overwritten and counted, never the newest.
//  3. One audit is built by one goroutine (the coordinator's cycle or
//     the simulator's poll loop) and becomes immutable at Done; only
//     then is it published, so readers never observe a torn audit.
package decision

import (
	"sort"
	"sync/atomic"
	"time"

	"condor/internal/telemetry"
)

// Feature is one named input the ranker saw for a requester — the
// breakdown behind a rank position ("waiting=3", "index=0.25").
type Feature struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Rejection records one predicate turning a machine down. Requester is
// empty for the requester-blind candidate phase (the rejection applies
// to every requester this cycle) and names the concrete requester for
// placement-phase rejections.
type Rejection struct {
	Station   string `json:"station"`
	Requester string `json:"requester,omitempty"`
	Predicate string `json:"predicate"`
	// Threshold/Observed explain the failing comparison when the
	// predicate implements the policy.Explainer interface, e.g.
	// "disk >= 1048576" vs "524288".
	Threshold string `json:"threshold,omitempty"`
	Observed  string `json:"observed,omitempty"`
}

// RankEntry is one requester as the ranker ordered it.
type RankEntry struct {
	Requester string `json:"requester"`
	// Position is the 0-based rank (0 = served first).
	Position int `json:"position"`
	// Score is the prioritizer's schedule index when it exposes one
	// (lower wins under Up-Down); HasScore distinguishes a real 0.
	Score    float64   `json:"score,omitempty"`
	HasScore bool      `json:"hasScore,omitempty"`
	Features []Feature `json:"features,omitempty"`
}

// GrantAudit is one placement the cycle made. JobID is annotated by the
// coordinator after the grant is acted on (the pipeline allocates
// machines to stations, not to specific jobs).
type GrantAudit struct {
	Requester string `json:"requester"`
	Exec      string `json:"exec"`
	JobID     string `json:"jobID,omitempty"`
}

// Unserved is a requester that wanted capacity and got none, with the
// pipeline's reason. Its per-machine rejections are in
// CycleAudit.Rejections under its name.
type Unserved struct {
	Requester string `json:"requester"`
	Reason    string `json:"reason"`
}

// PreemptCompare is one claimed station the preemptor weighed for a
// beneficiary: was its foreign owner strictly outranked, and was it the
// final choice.
type PreemptCompare struct {
	Exec      string `json:"exec"`
	Owner     string `json:"owner"`
	Outranked bool   `json:"outranked"`
	Chosen    bool   `json:"chosen,omitempty"`
}

// PreemptAudit is one beneficiary's pass through the preemptor. An
// empty Exec means no victim was found (every foreign owner outranked
// the beneficiary or no claimed machines existed).
type PreemptAudit struct {
	Beneficiary string           `json:"beneficiary"`
	Exec        string           `json:"exec,omitempty"`
	Victim      string           `json:"victim,omitempty"`
	JobID       string           `json:"jobID,omitempty"`
	Compared    []PreemptCompare `json:"compared,omitempty"`
}

// CycleAudit is the complete record of one scheduling cycle.
type CycleAudit struct {
	// Cycle is the coordinator's (or simulator's) cycle counter.
	Cycle uint64    `json:"cycle"`
	At    time.Time `json:"at"`
	// Policy is the registry name of the pipeline that decided.
	Policy string `json:"policy"`
	// Stations is how many station views entered the pipeline.
	Stations   int         `json:"stations"`
	Requesters []RankEntry `json:"requesters,omitempty"`
	Rejections []Rejection `json:"rejections,omitempty"`
	// Idle is the admitted machines in placement order, before grants
	// consumed any.
	Idle     []string       `json:"idle,omitempty"`
	Grants   []GrantAudit   `json:"grants,omitempty"`
	Unserved []Unserved     `json:"unserved,omitempty"`
	Preempts []PreemptAudit `json:"preempts,omitempty"`
}

// Mentions reports whether the audit involves the named station in any
// role — requester, rejected machine, grant side, or preemption party.
func (a *CycleAudit) Mentions(station string) bool {
	for i := range a.Requesters {
		if a.Requesters[i].Requester == station {
			return true
		}
	}
	for i := range a.Rejections {
		if a.Rejections[i].Station == station || a.Rejections[i].Requester == station {
			return true
		}
	}
	for _, n := range a.Idle {
		if n == station {
			return true
		}
	}
	for i := range a.Grants {
		if a.Grants[i].Requester == station || a.Grants[i].Exec == station {
			return true
		}
	}
	for i := range a.Unserved {
		if a.Unserved[i].Requester == station {
			return true
		}
	}
	for i := range a.Preempts {
		p := &a.Preempts[i]
		if p.Beneficiary == station || p.Exec == station || p.Victim == station {
			return true
		}
	}
	return false
}

// MentionsJob reports whether the audit names the job ID in a grant or
// preemption. (A job that was never granted appears in audits only
// through its home station — use Mentions with the requester name.)
func (a *CycleAudit) MentionsJob(job string) bool {
	for i := range a.Grants {
		if a.Grants[i].JobID == job {
			return true
		}
	}
	for i := range a.Preempts {
		if a.Preempts[i].JobID == job {
			return true
		}
	}
	return false
}

// --- builder -----------------------------------------------------------

// Builder accumulates one cycle's audit. It is single-goroutine (one
// cycle = one decision call) and every method is nil-receiver safe, so
// the pipeline's recorder-off path passes a nil *Builder and pays one
// branch per hook. Call Done exactly once; the returned audit is
// immutable thereafter.
type Builder struct {
	a CycleAudit
}

// NewBuilder starts an audit for the given cycle number.
func NewBuilder(cycle uint64, at time.Time) *Builder {
	return &Builder{a: CycleAudit{Cycle: cycle, At: at}}
}

// Begin stamps the deciding policy and input size.
func (b *Builder) Begin(policy string, stations int) {
	if b == nil {
		return
	}
	b.a.Policy = policy
	b.a.Stations = stations
}

// Requester records one ranked requester.
func (b *Builder) Requester(e RankEntry) {
	if b == nil {
		return
	}
	b.a.Requesters = append(b.a.Requesters, e)
}

// Reject records one predicate rejection.
func (b *Builder) Reject(r Rejection) {
	if b == nil {
		return
	}
	b.a.Rejections = append(b.a.Rejections, r)
}

// Idle records the admitted machines in placement order.
func (b *Builder) Idle(order []string) {
	if b == nil {
		return
	}
	b.a.Idle = append([]string(nil), order...)
}

// Grant records one placement.
func (b *Builder) Grant(requester, exec string) {
	if b == nil {
		return
	}
	b.a.Grants = append(b.a.Grants, GrantAudit{Requester: requester, Exec: exec})
}

// Unserved records a requester that got nothing, with the reason.
func (b *Builder) Unserved(requester, reason string) {
	if b == nil {
		return
	}
	b.a.Unserved = append(b.a.Unserved, Unserved{Requester: requester, Reason: reason})
}

// BeginPreempt opens the preemptor's pass for one beneficiary;
// subsequent PreemptCompared/PreemptOutcome calls attach to it.
func (b *Builder) BeginPreempt(beneficiary string) {
	if b == nil {
		return
	}
	b.a.Preempts = append(b.a.Preempts, PreemptAudit{Beneficiary: beneficiary})
}

// PreemptCompared records one victim-candidate comparison for the open
// beneficiary.
func (b *Builder) PreemptCompared(exec, owner string, outranked bool) {
	if b == nil || len(b.a.Preempts) == 0 {
		return
	}
	p := &b.a.Preempts[len(b.a.Preempts)-1]
	p.Compared = append(p.Compared, PreemptCompare{Exec: exec, Owner: owner, Outranked: outranked})
}

// PreemptOutcome closes the open beneficiary's pass. Empty exec means
// no victim; otherwise the matching comparison is marked chosen.
func (b *Builder) PreemptOutcome(exec, victim, jobID string) {
	if b == nil || len(b.a.Preempts) == 0 {
		return
	}
	p := &b.a.Preempts[len(b.a.Preempts)-1]
	p.Exec, p.Victim, p.JobID = exec, victim, jobID
	for i := range p.Compared {
		if p.Compared[i].Exec == exec {
			p.Compared[i].Chosen = true
		}
	}
}

// AnnotateGrantJob stamps the job ID the coordinator actually placed on
// the i-th grant (the pipeline grants machines, the coordinator picks
// the job).
func (b *Builder) AnnotateGrantJob(i int, jobID string) {
	if b == nil || i < 0 || i >= len(b.a.Grants) {
		return
	}
	b.a.Grants[i].JobID = jobID
}

// Done returns the finished audit. The builder must not be used after.
func (b *Builder) Done() *CycleAudit {
	if b == nil {
		return nil
	}
	return &b.a
}

// --- recorder ----------------------------------------------------------

var (
	mAuditsRecorded = telemetry.NewCounter("condor_decision_audits_recorded_total",
		"Cycle audits written into the in-process decision ring.")
	mAuditsDropped = telemetry.NewCounter("condor_decision_audits_dropped_total",
		"Old cycle audits overwritten by ring wraparound before being scraped.")
)

// Recorder is a lock-free bounded ring of finished cycle audits —
// internal/trace's span ring, holding whole cycles. Writers claim a
// slot with one atomic add and publish with one pointer swap; readers
// snapshot without blocking writers.
type Recorder struct {
	slots   []atomic.Pointer[CycleAudit]
	next    atomic.Uint64
	dropped atomic.Uint64
}

// DefaultCapacity is the cycle capacity of the package-level Default
// recorder: at the paper's 2-minute cycle that is over 8 hours of
// history; at the simulator's pace, the last 256 cycles.
const DefaultCapacity = 256

// Default is the process-wide recorder; /decisions serves it.
var Default = NewRecorder(DefaultCapacity)

// NewRecorder creates a recorder retaining up to capacity cycles.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{slots: make([]atomic.Pointer[CycleAudit], capacity)}
}

// Record publishes a finished audit (nil is a no-op, so callers can
// chain Record(b.Done()) without branching on a disabled builder).
func (r *Recorder) Record(a *CycleAudit) {
	if r == nil || a == nil {
		return
	}
	i := r.next.Add(1) - 1
	if prev := r.slots[i%uint64(len(r.slots))].Swap(a); prev != nil {
		r.dropped.Add(1)
		mAuditsDropped.Inc()
	}
	mAuditsRecorded.Inc()
}

// Total returns how many audits have ever been recorded.
func (r *Recorder) Total() uint64 { return r.next.Load() }

// Dropped returns how many audits were overwritten before being read.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Snapshot copies the retained audits, oldest cycle first. Point-in-time
// read: concurrent writers may swap slots mid-scan, yielding a mix of
// old and new cycles but never a torn audit.
func (r *Recorder) Snapshot() []CycleAudit {
	out := make([]CycleAudit, 0, len(r.slots))
	for i := range r.slots {
		if a := r.slots[i].Load(); a != nil {
			out = append(out, *a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

// Filter narrows a snapshot the way /decisions and the CLIs do:
//
//	job     keep cycles that name the job ID, or — because a job that
//	        never ran appears only through its home station — cycles
//	        that mention station when job resolution supplied one.
//	station keep cycles mentioning the station in any role
//	cycle   >0 exact cycle number; <0 from the end (-1 = newest); 0 all
//	last    keep only the newest N cycles (0 = all)
//
// Filters compose: job/station first, then cycle, then last.
func Filter(audits []CycleAudit, job, station string, cycle int64, last int) []CycleAudit {
	out := audits
	if job != "" {
		filtered := make([]CycleAudit, 0, len(out))
		for i := range out {
			if out[i].MentionsJob(job) {
				filtered = append(filtered, out[i])
			}
		}
		out = filtered
	}
	if station != "" {
		filtered := make([]CycleAudit, 0, len(out))
		for i := range out {
			if out[i].Mentions(station) {
				filtered = append(filtered, out[i])
			}
		}
		out = filtered
	}
	if cycle > 0 {
		filtered := make([]CycleAudit, 0, 1)
		for i := range out {
			if out[i].Cycle == uint64(cycle) {
				filtered = append(filtered, out[i])
			}
		}
		out = filtered
	} else if cycle < 0 {
		idx := len(out) + int(cycle)
		if idx < 0 {
			out = nil
		} else {
			out = out[idx : idx+1]
		}
	}
	if last > 0 && len(out) > last {
		out = out[len(out)-last:]
	}
	return out
}
