package decision

import (
	"encoding/json"
	"net/http"
	"strconv"

	"condor/internal/telemetry"
)

// Page is the /decisions response envelope.
type Page struct {
	Cycles  []CycleAudit `json:"cycles"`
	Total   uint64       `json:"total"`   // audits ever recorded
	Dropped uint64       `json:"dropped"` // audits lost to ring wraparound
}

// PageFor snapshots the recorder into a Page with Filter semantics.
func (r *Recorder) PageFor(job, station string, cycle int64, last int) Page {
	audits := Filter(r.Snapshot(), job, station, cycle, last)
	if audits == nil {
		audits = []CycleAudit{}
	}
	return Page{Cycles: audits, Total: r.Total(), Dropped: r.Dropped()}
}

// Handler serves the recorder as JSON. Query parameters:
//
//	?job=<jobID>      cycles whose grants/preempts name the job
//	?station=<name>   cycles mentioning the station in any role
//	?cycle=<n|-1>     exact cycle number, or -1 for the newest
//	?last=<n>         only the newest n cycles
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		cycle, _ := strconv.ParseInt(q.Get("cycle"), 10, 64)
		last, _ := strconv.Atoi(q.Get("last"))
		page := r.PageFor(q.Get("job"), q.Get("station"), cycle, last)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page) //nolint:errcheck // client went away
	})
}

func init() {
	// Every daemon that starts telemetry.Serve gets /decisions for free,
	// exactly like /traces: the policy pipeline imports decision, so any
	// binary that schedules links this.
	telemetry.Handle("/decisions", Handler(Default))
}
