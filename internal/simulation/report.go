package simulation

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"condor/internal/cost"
	"condor/internal/metrics"
)

// MachineRow profiles one workstation's month — the per-machine view of
// availability that the paper's companion study (ref [1], "Profiling
// Workstations' Available Capacity for Remote Execution") reports.
type MachineRow struct {
	Name          string  `json:"name"`
	Class         string  `json:"class"`
	OwnerPct      float64 `json:"ownerPct"`
	CondorPct     float64 `json:"condorPct"`
	SuspendPct    float64 `json:"suspendPct"`
	IdlePct       float64 `json:"idlePct"`
	DownPct       float64 `json:"downPct"`
	IdleIntervals int     `json:"idleIntervals"`
	AvgIdleHours  float64 `json:"avgIdleHours"`
}

// UserRow is one Table 1 row.
type UserRow struct {
	User          string
	Jobs          int
	PctJobs       float64
	MeanDemandH   float64
	TotalDemandH  float64
	PctDemand     float64
	Completed     int
	MeanWaitRatio float64
}

// Report is everything the paper's evaluation section reports, computed
// from one simulation run.
type Report struct {
	Start time.Time
	End   time.Time

	// Table 1.
	Users []UserRow

	// Per-machine availability profile (the ref [1] view).
	Machines []MachineRow

	// Figure 2: service-demand distribution.
	Demands metrics.Histogram

	// Figures 3 and 7: hourly queue lengths.
	TotalQueue *metrics.HourlySeries
	LightQueue *metrics.HourlySeries

	// Figures 5 and 6: hourly utilizations (fractions of the pool).
	LocalUtil  *metrics.HourlySeries
	SystemUtil *metrics.HourlySeries

	// Figure 4: mean wait ratio vs service demand.
	WaitAll   *metrics.Bins
	WaitLight *metrics.Bins

	// Figure 8: checkpoints per remote-CPU-hour vs service demand.
	CkptRate *metrics.Bins

	// Figure 9: leverage vs service demand.
	LeverageBins *metrics.Bins

	// §3 scalars.
	TotalMachineHours  float64
	AvailableHours     float64
	ConsumedHours      float64
	LocalUtilMean      float64
	CompletedJobs      int
	TotalJobs          int
	MeanWaitRatioAll   float64
	MeanWaitRatioLight float64
	OverallLeverage    float64
	ShortJobLeverage   float64 // jobs with demand < 2h
	MeanCkptsPerJob    float64
	Preempts           int
	Vacates            int
	Crashes            int
	WorkLostHours      float64
	DownHours          float64
	// PeakStationBurst is the most placements any single station made in
	// one poll cycle — the §4 local-impact quantity pacing bounds at 1.
	PeakStationBurst int
	// MeanCheckpointMB is the mean checkpoint-file size across all
	// transfers (paper: ≈0.5 MB, hence ≈2.5 s per move at 5 s/MB).
	MeanCheckpointMB float64
	// MeanMoveCostSeconds is the implied mean local cost of one
	// placement or checkpoint under the cost model.
	MeanMoveCostSeconds float64

	costModel cost.Model

	// run accumulators (filled during simulation).
	preempts         int
	vacates          int
	crashes          int
	workLost         time.Duration
	consumedInWindow time.Duration
	peakStationBurst int
	transferMoves    int
	transferBytes    int64
}

func newReport(cfg Config, start, end time.Time) *Report {
	hours := int(end.Sub(start) / time.Hour)
	return &Report{
		Start:        start,
		End:          end,
		TotalQueue:   metrics.NewHourlySeries(start, hours, time.Hour),
		LightQueue:   metrics.NewHourlySeries(start, hours, time.Hour),
		LocalUtil:    metrics.NewHourlySeries(start, hours, time.Hour),
		SystemUtil:   metrics.NewHourlySeries(start, hours, time.Hour),
		WaitAll:      metrics.DemandBins(),
		WaitLight:    metrics.DemandBins(),
		CkptRate:     metrics.DemandBins(),
		LeverageBins: metrics.DemandBins(),
		costModel:    cfg.Cost,
	}
}

// recordRemoteCPU accumulates remote CPU consumed between from and to,
// clipped to the observation window.
func (r *Report) recordRemoteCPU(from, to, windowEnd time.Time) {
	if to.After(windowEnd) {
		to = windowEnd
	}
	if d := to.Sub(from); d > 0 {
		r.consumedInWindow += d
	}
}

// leverageCap renders infinite leverage (zero local support) finitely.
const leverageCap = 1e6

// collect computes the final statistics from the simulator state.
func (r *Report) collect(s *simulator) {
	r.Preempts = r.preempts
	r.Vacates = r.vacates
	r.Crashes = r.crashes
	r.WorkLostHours = r.workLost.Hours()
	r.PeakStationBurst = r.peakStationBurst

	// Machine-side accounting.
	window := s.end.Sub(s.cfg.Start)
	r.TotalMachineHours = window.Hours() * float64(len(s.machines))
	var ownerHours, downHours float64
	for _, m := range s.machines {
		ownerHours += m.ownerTime.Hours()
		downHours += m.downTime.Hours()
		w := window.Hours()
		row := MachineRow{
			Name:          m.name,
			Class:         m.class.Name,
			OwnerPct:      100 * m.ownerTime.Hours() / w,
			CondorPct:     100 * m.claimedTime.Hours() / w,
			SuspendPct:    100 * m.suspendTime.Hours() / w,
			DownPct:       100 * m.downTime.Hours() / w,
			IdleIntervals: m.idleIntervals,
			AvgIdleHours:  m.avgIdle().Hours(),
		}
		row.IdlePct = 100 - row.OwnerPct - row.CondorPct - row.SuspendPct - row.DownPct
		if row.IdlePct < 0 {
			row.IdlePct = 0
		}
		r.Machines = append(r.Machines, row)
	}
	r.DownHours = downHours
	r.AvailableHours = r.TotalMachineHours - ownerHours - downHours
	r.ConsumedHours = r.consumedInWindow.Hours()
	r.LocalUtilMean = ownerHours / r.TotalMachineHours

	// Per-user rows and per-job statistics.
	type agg struct {
		jobs      int
		demand    float64
		completed int
		waitSum   float64
	}
	byUser := map[string]*agg{}
	var (
		totalRemote  time.Duration
		totalLocal   time.Duration
		shortRemote  time.Duration
		shortLocal   time.Duration
		waitSumAll   float64
		waitNAll     int
		waitSumLight float64
		waitNLight   int
		ckptTotal    int
	)
	for _, j := range s.jobs {
		r.TotalJobs++
		a := byUser[j.wj.User]
		if a == nil {
			a = &agg{}
			byUser[j.wj.User] = a
		}
		a.jobs++
		demandH := j.wj.Demand.Hours()
		a.demand += demandH
		r.Demands.Add(demandH)
		if j.state != jobDone {
			continue
		}
		r.CompletedJobs++
		a.completed++
		ckptTotal += j.checkpoints

		wait := j.doneAt.Sub(j.submitted) - j.wj.Demand
		if wait < 0 {
			wait = 0
		}
		ratio := float64(wait) / float64(j.wj.Demand)
		a.waitSum += ratio
		waitSumAll += ratio
		waitNAll++
		heavy := s.userOf(j.wj.User) != nil && s.userOf(j.wj.User).profile.Heavy()
		if !heavy {
			waitSumLight += ratio
			waitNLight++
			r.WaitLight.Observe(demandH, ratio)
		}
		r.WaitAll.Observe(demandH, ratio)

		// Figure 8: moves per hour of service demand.
		r.CkptRate.Observe(demandH, float64(j.checkpoints)/demandH)

		// §3.1 transfer statistics.
		moves := j.placements + j.checkpoints
		if moves > 0 {
			r.transferMoves += moves
			r.transferBytes += j.transferBytes
		}

		// Figure 9: leverage.
		support := r.costModel.LocalSupport(cost.JobSupport{
			Placements:    j.placements,
			Checkpoints:   j.checkpoints,
			TransferBytes: j.transferBytes,
			Syscalls:      j.syscalls,
		})
		lev := cost.Leverage(j.wj.Demand, support)
		if lev > leverageCap {
			lev = leverageCap
		}
		r.LeverageBins.Observe(demandH, lev)
		totalRemote += j.wj.Demand
		totalLocal += support
		if demandH < 2 {
			shortRemote += j.wj.Demand
			shortLocal += support
		}
	}
	if waitNAll > 0 {
		r.MeanWaitRatioAll = waitSumAll / float64(waitNAll)
	}
	if waitNLight > 0 {
		r.MeanWaitRatioLight = waitSumLight / float64(waitNLight)
	}
	if r.CompletedJobs > 0 {
		r.MeanCkptsPerJob = float64(ckptTotal) / float64(r.CompletedJobs)
	}
	r.OverallLeverage = cost.Leverage(totalRemote, totalLocal)
	r.ShortJobLeverage = cost.Leverage(shortRemote, shortLocal)
	if r.transferMoves > 0 {
		meanBytes := r.transferBytes / int64(r.transferMoves)
		r.MeanCheckpointMB = float64(meanBytes) / (1 << 20)
		r.MeanMoveCostSeconds = r.costModel.TransferCost(meanBytes).Seconds()
	}

	var totalDemand float64
	for _, a := range byUser {
		totalDemand += a.demand
	}
	names := make([]string, 0, len(byUser))
	for name := range byUser {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byUser[name]
		row := UserRow{
			User:         name,
			Jobs:         a.jobs,
			PctJobs:      100 * float64(a.jobs) / float64(r.TotalJobs),
			MeanDemandH:  a.demand / float64(a.jobs),
			TotalDemandH: a.demand,
			PctDemand:    100 * a.demand / totalDemand,
			Completed:    a.completed,
		}
		if a.completed > 0 {
			row.MeanWaitRatio = a.waitSum / float64(a.completed)
		}
		r.Users = append(r.Users, row)
	}
}

// --- rendering ----------------------------------------------------------

// Table1 renders the user-profile table.
func (r *Report) Table1() string {
	rows := make([][]string, 0, len(r.Users)+1)
	var jobs int
	var demand float64
	for _, u := range r.Users {
		jobs += u.Jobs
		demand += u.TotalDemandH
		rows = append(rows, []string{
			u.User,
			fmt.Sprintf("%d", u.Jobs),
			fmt.Sprintf("%.0f", u.PctJobs),
			fmt.Sprintf("%.1f", u.MeanDemandH),
			fmt.Sprintf("%.0f", u.TotalDemandH),
			fmt.Sprintf("%.1f", u.PctDemand),
		})
	}
	rows = append(rows, []string{
		"Total",
		fmt.Sprintf("%d", jobs), "100",
		fmt.Sprintf("%.1f", demand/float64(jobs)),
		fmt.Sprintf("%.0f", demand), "100",
	})
	return "Table 1: Profile of User Service Requests\n" + metrics.Table(
		[]string{"User", "Jobs", "%Jobs", "AvgDemand(h)", "Total(h)", "%Demand"}, rows)
}

// Figure2 renders the cumulative service-demand distribution.
func (r *Report) Figure2() string {
	points := []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24}
	cdf := r.Demands.CDF(points)
	rows := make([][]string, len(points))
	for i := range points {
		rows[i] = []string{
			fmt.Sprintf("<= %gh", points[i]),
			fmt.Sprintf("%.1f%%", 100*cdf[i]),
		}
	}
	summary := fmt.Sprintf("mean %.1fh, median %.1fh, %d jobs\n",
		r.Demands.Mean(), r.Demands.Median(), r.Demands.N())
	return "Figure 2: Profile of Service Demand (CDF)\n" + summary +
		metrics.Table([]string{"Demand", "CumFreq"}, rows)
}

// Figure3 renders the month-long hourly queue lengths.
func (r *Report) Figure3() string {
	var b strings.Builder
	b.WriteString("Figure 3: Queue Length (hourly, month)\n")
	b.WriteString(metrics.Chart("total queue", r.TotalQueue.Values(), 72, 10))
	b.WriteString(metrics.Chart("light users' queue", r.LightQueue.Values(), 72, 10))
	fmt.Fprintf(&b, "total mean %.1f, light mean %.1f\n",
		r.TotalQueue.Mean(), r.LightQueue.Mean())
	return b.String()
}

// Figure4 renders mean wait ratio vs service demand.
func (r *Report) Figure4() string {
	rows := make([][]string, 0, r.WaitAll.Len())
	for i := 0; i < r.WaitAll.Len(); i++ {
		if r.WaitAll.Count(i) == 0 {
			continue
		}
		rows = append(rows, []string{
			r.WaitAll.Label(i),
			fmt.Sprintf("%.2f", r.WaitAll.Mean(i)),
			fmt.Sprintf("%.2f", r.WaitLight.Mean(i)),
			fmt.Sprintf("%d", r.WaitAll.Count(i)),
		})
	}
	summary := fmt.Sprintf("mean wait ratio: all %.2f, light users %.2f\n",
		r.MeanWaitRatioAll, r.MeanWaitRatioLight)
	return "Figure 4: Average Wait Ratio vs Service Demand\n" + summary +
		metrics.Table([]string{"Demand", "All", "Light", "Jobs"}, rows)
}

// Figure5 renders the month-long utilization series.
func (r *Report) Figure5() string {
	var b strings.Builder
	b.WriteString("Figure 5: Utilization of Remote Resources (month)\n")
	b.WriteString(metrics.Chart("system utilization", r.SystemUtil.Values(), 72, 10))
	b.WriteString(metrics.Chart("local utilization", r.LocalUtil.Values(), 72, 10))
	fmt.Fprintf(&b, "available %.0f h of %.0f machine-hours (%.0f%%); consumed by Condor %.0f h\n",
		r.AvailableHours, r.TotalMachineHours,
		100*r.AvailableHours/r.TotalMachineHours, r.ConsumedHours)
	fmt.Fprintf(&b, "mean local utilization %.0f%%\n", 100*r.LocalUtilMean)
	return b.String()
}

// weekWindow returns the first full Monday–Friday span of the window.
func (r *Report) weekWindow() (time.Time, time.Time) {
	t := r.Start
	for t.Weekday() != time.Monday {
		t = t.Add(24 * time.Hour)
	}
	return t, t.Add(5 * 24 * time.Hour)
}

// Figure6 renders one work week of utilization.
func (r *Report) Figure6() string {
	from, to := r.weekWindow()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Utilization for One Week (%s – %s)\n",
		from.Format("Mon Jan 2"), to.Format("Mon Jan 2"))
	b.WriteString(metrics.Chart("system utilization", r.SystemUtil.Slice(from, to), 72, 10))
	b.WriteString(metrics.Chart("local utilization", r.LocalUtil.Slice(from, to), 72, 10))
	return b.String()
}

// Figure7 renders one work week of queue lengths.
func (r *Report) Figure7() string {
	from, to := r.weekWindow()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Queue Lengths for One Week (%s – %s)\n",
		from.Format("Mon Jan 2"), to.Format("Mon Jan 2"))
	b.WriteString(metrics.Chart("total queue", r.TotalQueue.Slice(from, to), 72, 10))
	b.WriteString(metrics.Chart("light users' queue", r.LightQueue.Slice(from, to), 72, 10))
	return b.String()
}

// Figure8 renders the checkpoint rate vs service demand.
func (r *Report) Figure8() string {
	rows := make([][]string, 0, r.CkptRate.Len())
	for i := 0; i < r.CkptRate.Len(); i++ {
		if r.CkptRate.Count(i) == 0 {
			continue
		}
		rows = append(rows, []string{
			r.CkptRate.Label(i),
			fmt.Sprintf("%.2f", r.CkptRate.Mean(i)),
			fmt.Sprintf("%d", r.CkptRate.Count(i)),
		})
	}
	summary := fmt.Sprintf(
		"mean checkpoints per job %.2f; vacates %d; preemptions %d\n"+
			"mean checkpoint file %.2f MB -> %.1f s of local capacity per move (paper: 0.5 MB, 2.5 s)\n",
		r.MeanCkptsPerJob, r.Vacates, r.Preempts,
		r.MeanCheckpointMB, r.MeanMoveCostSeconds)
	return "Figure 8: Rate of Checkpointing (moves per CPU-hour of demand)\n" + summary +
		metrics.Table([]string{"Demand", "Ckpts/h", "Jobs"}, rows)
}

// Figure9 renders leverage vs service demand.
func (r *Report) Figure9() string {
	rows := make([][]string, 0, r.LeverageBins.Len())
	for i := 0; i < r.LeverageBins.Len(); i++ {
		if r.LeverageBins.Count(i) == 0 {
			continue
		}
		rows = append(rows, []string{
			r.LeverageBins.Label(i),
			fmt.Sprintf("%.0f", r.LeverageBins.Mean(i)),
			fmt.Sprintf("%d", r.LeverageBins.Count(i)),
		})
	}
	summary := fmt.Sprintf("overall leverage %.0f (1 min local buys %.1f h remote); short jobs (<2h) %.0f\n",
		r.OverallLeverage, r.OverallLeverage/60, r.ShortJobLeverage)
	return "Figure 9: Remote Execution Leverage vs Service Demand\n" + summary +
		metrics.Table([]string{"Demand", "Leverage", "Jobs"}, rows)
}

// MachineProfile renders the per-machine availability table.
func (r *Report) MachineProfile() string {
	rows := make([][]string, 0, len(r.Machines))
	for _, m := range r.Machines {
		rows = append(rows, []string{
			m.Name, m.Class,
			fmt.Sprintf("%.0f", m.OwnerPct),
			fmt.Sprintf("%.0f", m.CondorPct),
			fmt.Sprintf("%.0f", m.IdlePct),
			fmt.Sprintf("%d", m.IdleIntervals),
			fmt.Sprintf("%.1f", m.AvgIdleHours),
		})
	}
	return "Machine availability profile (per ref [1])\n" + metrics.Table(
		[]string{"Machine", "Class", "Owner%", "Condor%", "Unused%", "IdleIntervals", "AvgIdle(h)"},
		rows)
}

// String renders the full evaluation.
func (r *Report) String() string {
	sections := []string{
		r.Table1(), r.Figure2(), r.Figure3(), r.Figure4(), r.Figure5(),
		r.Figure6(), r.Figure7(), r.Figure8(), r.Figure9(),
		r.MachineProfile(),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Condor evaluation reproduction — %s to %s, %d jobs (%d completed)\n\n",
		r.Start.Format("2006-01-02"), r.End.Format("2006-01-02"),
		r.TotalJobs, r.CompletedJobs)
	for _, s := range sections {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}
