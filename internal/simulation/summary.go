package simulation

import (
	"fmt"
	"math"
	"strings"
)

// Stat is a mean ± standard deviation over simulation runs.
type Stat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func newStat(values []float64) Stat {
	if len(values) == 0 {
		return Stat{}
	}
	var s Stat
	s.Min, s.Max = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	if len(values) > 1 {
		var ss float64
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(values)-1))
	}
	return s
}

// String renders "mean ± std".
func (s Stat) String() string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.Std)
}

// Summary aggregates headline metrics over several seeds, showing that
// the reproduction's numbers are stable properties of the model, not
// artifacts of one random draw.
type Summary struct {
	Runs           int  `json:"runs"`
	AllCompleted   bool `json:"allCompleted"`
	AvailableHours Stat `json:"availableHours"`
	ConsumedHours  Stat `json:"consumedHours"`
	LocalUtilPct   Stat `json:"localUtilPct"`
	WaitRatioAll   Stat `json:"waitRatioAll"`
	WaitRatioLight Stat `json:"waitRatioLight"`
	Leverage       Stat `json:"leverage"`
	ShortLeverage  Stat `json:"shortLeverage"`
	CkptsPerJob    Stat `json:"ckptsPerJob"`
	Preempts       Stat `json:"preempts"`
	Vacates        Stat `json:"vacates"`
}

// RunMany executes the configuration once per seed and aggregates.
func RunMany(cfg Config, seeds []int64) Summary {
	n := len(seeds)
	collect := make(map[string][]float64, 11)
	add := func(key string, v float64) { collect[key] = append(collect[key], v) }
	summary := Summary{Runs: n, AllCompleted: true}
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		rep := Run(c)
		if rep.CompletedJobs != rep.TotalJobs {
			summary.AllCompleted = false
		}
		add("avail", rep.AvailableHours)
		add("consumed", rep.ConsumedHours)
		add("local", 100*rep.LocalUtilMean)
		add("waitAll", rep.MeanWaitRatioAll)
		add("waitLight", rep.MeanWaitRatioLight)
		add("lev", rep.OverallLeverage)
		add("slev", rep.ShortJobLeverage)
		add("ckpts", rep.MeanCkptsPerJob)
		add("preempts", float64(rep.Preempts))
		add("vacates", float64(rep.Vacates))
	}
	summary.AvailableHours = newStat(collect["avail"])
	summary.ConsumedHours = newStat(collect["consumed"])
	summary.LocalUtilPct = newStat(collect["local"])
	summary.WaitRatioAll = newStat(collect["waitAll"])
	summary.WaitRatioLight = newStat(collect["waitLight"])
	summary.Leverage = newStat(collect["lev"])
	summary.ShortLeverage = newStat(collect["slev"])
	summary.CkptsPerJob = newStat(collect["ckpts"])
	summary.Preempts = newStat(collect["preempts"])
	summary.Vacates = newStat(collect["vacates"])
	return summary
}

// String renders the summary next to the paper's numbers.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Across %d seeds (all jobs completed: %v):\n", s.Runs, s.AllCompleted)
	rows := []struct {
		name  string
		stat  Stat
		paper string
	}{
		{"available machine-hours", s.AvailableHours, "12438"},
		{"consumed machine-hours", s.ConsumedHours, "4771"},
		{"local utilization %", s.LocalUtilPct, "25"},
		{"wait ratio (all)", s.WaitRatioAll, "heavy-dominated"},
		{"wait ratio (light)", s.WaitRatioLight, "~0"},
		{"leverage (overall)", s.Leverage, "~1300"},
		{"leverage (<2h jobs)", s.ShortLeverage, "~600"},
		{"checkpoints per job", s.CkptsPerJob, "-"},
		{"preemptions", s.Preempts, "-"},
		{"owner-return vacates", s.Vacates, "-"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %-20s (paper: %s)\n", r.name, r.stat.String(), r.paper)
	}
	return b.String()
}
