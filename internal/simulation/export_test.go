package simulation

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	rep := month(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, key := range []string{"users", "demandCdf", "hourly", "byDemand", "scalars"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("export missing %q", key)
		}
	}
	scalars, ok := decoded["scalars"].(map[string]any)
	if !ok {
		t.Fatal("scalars not an object")
	}
	if scalars["totalJobs"].(float64) != float64(rep.TotalJobs) {
		t.Fatalf("totalJobs = %v", scalars["totalJobs"])
	}
	hourly := decoded["hourly"].(map[string]any)
	if len(hourly["localUtil"].([]any)) != rep.LocalUtil.Len() {
		t.Fatal("hourly series truncated")
	}
	// CDF must be monotone non-decreasing.
	cdf := decoded["demandCdf"].(map[string]any)["cumFreq"].([]any)
	prev := -1.0
	for i, v := range cdf {
		f := v.(float64)
		if f < prev {
			t.Fatalf("CDF decreases at %d", i)
		}
		prev = f
	}
}

func TestWriteHourlyCSV(t *testing.T) {
	rep := month(t)
	var buf bytes.Buffer
	if err := rep.WriteHourlyCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rep.TotalQueue.Len()+1 {
		t.Fatalf("csv rows = %d, want %d+header", len(lines), rep.TotalQueue.Len())
	}
	if !strings.HasPrefix(lines[0], "hour,time,total_queue") {
		t.Fatalf("header = %q", lines[0])
	}
	if cols := strings.Count(lines[1], ","); cols != 5 {
		t.Fatalf("row has %d commas: %q", cols, lines[1])
	}
}

func TestWriteByDemandCSV(t *testing.T) {
	rep := month(t)
	var buf bytes.Buffer
	if err := rep.WriteByDemandCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("csv suspiciously short:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], "leverage") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunManyAggregates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 4
	cfg.DrainDays = 6
	s := RunMany(cfg, []int64{1, 2, 3})
	if s.Runs != 3 || !s.AllCompleted {
		t.Fatalf("summary = %+v", s)
	}
	if s.LocalUtilPct.Mean <= 0 || s.Leverage.Mean <= 0 {
		t.Fatalf("means zero: %+v", s)
	}
	if s.LocalUtilPct.Min > s.LocalUtilPct.Max {
		t.Fatal("min/max inverted")
	}
	out := s.String()
	for _, want := range []string{"leverage", "paper", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary rendering missing %q:\n%s", want, out)
		}
	}
}

func TestNewStatDegenerate(t *testing.T) {
	if s := newStat(nil); s.Mean != 0 || s.Std != 0 {
		t.Fatal("empty stat not zero")
	}
	s := newStat([]float64{5})
	if s.Mean != 5 || s.Std != 0 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("single stat = %+v", s)
	}
}
