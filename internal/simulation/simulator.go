package simulation

import (
	"fmt"
	"time"

	"condor/internal/avail"
	"condor/internal/decision"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/sim"
	"condor/internal/updown"
	"condor/internal/workload"
)

// jobState is a simulated job's lifecycle state.
type jobState int

const (
	jobQueued jobState = iota + 1
	jobRunning
	jobSuspended
	jobDone
)

// simJob is one background job in flight.
type simJob struct {
	wj        workload.Job
	state     jobState
	remaining time.Duration
	runStart  time.Time
	machine   *simMachine
	timer     *sim.Timer // completion timer while running

	submitted time.Time
	doneAt    time.Time

	placements    int
	checkpoints   int
	transferBytes int64
	syscalls      int64

	// lastCkptRemaining is the remaining CPU recorded at the last
	// checkpoint; under kill-immediately, work past it is redone.
	lastCkptRemaining time.Duration
	periodicTimer     *sim.Timer
}

// simMachine is one workstation.
type simMachine struct {
	name  string
	class avail.Class
	gen   *avail.Machine

	ownerActive bool
	down        bool
	foreign     *simJob
	graceTimer  *sim.Timer

	// owner-availability history (for §5.1 placement).
	idleSince     time.Time
	completedIdle time.Duration
	idleIntervals int

	// state integration for utilization accounting.
	lastChange  time.Time
	ownerTime   time.Duration // owner-active machine-time
	claimedTime time.Duration // foreign job actually computing
	suspendTime time.Duration // foreign job frozen by owner return
	downTime    time.Duration // crashed
}

// user is one submitting user (and their home workstation for Up-Down
// accounting).
type user struct {
	profile workload.UserProfile
	home    string
	stream  *workload.FeedbackStream
	queue   []*simJob // FIFO of queued jobs
	// inSystem counts queued+running+suspended jobs.
	inSystem int
	// lastGrantCycle enforces nothing; pacing comes from policy.
}

// simulator holds one run's state.
type simulator struct {
	cfg     Config
	engine  *sim.Engine
	end     time.Time // observation window end
	hardEnd time.Time

	machines []*simMachine
	users    []*user
	byHome   map[string]*user
	byName   map[string]*simMachine
	jobs     []*simJob

	table *updown.Table
	// pol is the scheduling pipeline under test; fifoRanker is non-nil
	// when it ranks by arrival order (table updates are skipped so the
	// run matches the A3 ablation semantics).
	pol        *policy.Policy
	fifoRanker *policy.FIFORanker

	// cycles numbers poll cycles for the decision audit ring.
	cycles uint64

	rep *Report
}

// Run executes one simulation and returns its report.
func Run(cfg Config) *Report {
	cfg.sanitize()
	s := newSimulator(cfg)
	s.install()
	// Run to the hard end; the engine returns ErrHorizonReached if
	// self-rescheduling events (the poll ticker) remain, which is normal.
	_ = s.engine.Run(s.hardEnd)
	s.finalize()
	return s.rep
}

func newSimulator(cfg Config) *simulator {
	start := cfg.Start
	end := start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	s := &simulator{
		cfg:     cfg,
		engine:  sim.NewEngine(start),
		end:     end,
		hardEnd: end.Add(time.Duration(cfg.DrainDays) * 24 * time.Hour),
		byHome:  make(map[string]*user),
		byName:  make(map[string]*simMachine),
		table:   updown.NewTable(cfg.UpDown),
	}
	pol, err := policy.New(cfg.Policy.Name)
	if err != nil {
		panic(fmt.Sprintf("simulation: %v", err))
	}
	s.pol = pol
	s.fifoRanker, _ = pol.Ranker.(*policy.FIFORanker)
	s.rep = newReport(cfg, start, end)

	rng := sim.NewRNG(cfg.Seed)
	availRNG := rng.Derive()
	wlRNG := rng.Derive()

	for i := 0; i < cfg.Machines; i++ {
		name := fmt.Sprintf("ws%02d", i)
		class := avail.ClassFor(cfg.Classes, i, cfg.Machines)
		m := &simMachine{
			name:       name,
			class:      class,
			gen:        avail.NewMachine(name, class, availRNG.Derive()),
			idleSince:  start,
			lastChange: start,
		}
		s.machines = append(s.machines, m)
		s.byName[name] = m
		s.table.Touch(name)
		if s.fifoRanker != nil {
			// Pin FIFO arrival order to machine index so runs are
			// reproducible regardless of which stations want first.
			s.fifoRanker.Touch(name)
		}
	}

	wl := workload.Generate(cfg.Workload, wlRNG)
	for i, p := range wl.Profiles {
		u := &user{
			profile: p,
			home:    fmt.Sprintf("ws%02d", i%cfg.Machines),
		}
		s.users = append(s.users, u)
		s.byHome[u.home] = u
	}
	// Attach feedback streams to their users.
	for _, fs := range wl.Feedback {
		for _, u := range s.users {
			if u.profile.Name == fs.User() {
				u.stream = fs
			}
		}
	}
	// Schedule open-loop arrivals.
	for _, j := range wl.Open {
		j := j
		s.engine.At(j.Submit, func(now time.Time) { s.arrive(j, now) })
	}
	return s
}

func (s *simulator) userOf(name string) *user {
	for _, u := range s.users {
		if u.profile.Name == name {
			return u
		}
	}
	return nil
}

// install schedules the recurring machinery: owner flips, the poll
// cycle, and the hourly samplers.
func (s *simulator) install() {
	for _, m := range s.machines {
		m := m
		s.engine.After(m.gen.NextIdle(s.engine.Now()), func(now time.Time) {
			s.ownerFlip(m, now)
		})
	}
	if s.cfg.CrashMTBF > 0 {
		crashRNG := sim.NewRNG(s.cfg.Seed ^ 0x5ca1ab1e)
		for _, m := range s.machines {
			m := m
			r := crashRNG.Derive()
			d := time.Duration(r.Exp(float64(s.cfg.CrashMTBF)))
			s.engine.After(d, func(now time.Time) { s.crash(m, r, now) })
		}
	}
	ticker, err := s.engine.Every(s.cfg.PollInterval, s.pollCycle)
	_ = ticker
	if err != nil {
		panic(err) // interval is sanitized positive
	}
	sampler, err := s.engine.Every(time.Hour, s.sampleHour)
	_ = sampler
	if err != nil {
		panic(err)
	}
}

// arrive adds a job to its user's queue.
func (s *simulator) arrive(wj workload.Job, now time.Time) {
	u := s.userOf(wj.User)
	if u == nil {
		return
	}
	j := &simJob{
		wj:                wj,
		state:             jobQueued,
		remaining:         wj.Demand,
		submitted:         now,
		lastCkptRemaining: wj.Demand,
	}
	u.queue = append(u.queue, j)
	u.inSystem++
	s.jobs = append(s.jobs, j)
}

// ownerFlip toggles a machine's owner state and reschedules the next
// flip.
func (s *simulator) ownerFlip(m *simMachine, now time.Time) {
	if m.down {
		// The machine is off; the owner process resumes after repair.
		s.engine.After(m.gen.NextIdle(now), func(t time.Time) { s.ownerFlip(m, t) })
		return
	}
	if m.ownerActive {
		s.integrate(m, now)
		m.ownerActive = false
		m.idleSince = now
		if m.foreign != nil && m.foreign.state == jobSuspended {
			// Owner left within the grace period: resume in place (§4).
			if m.graceTimer != nil {
				m.graceTimer.Stop()
				m.graceTimer = nil
			}
			s.resume(m.foreign, now)
		}
		s.engine.After(m.gen.NextIdle(now), func(t time.Time) { s.ownerFlip(m, t) })
		return
	}
	// Owner returns.
	s.integrate(m, now)
	m.ownerActive = true
	if !m.idleSince.IsZero() {
		m.completedIdle += now.Sub(m.idleSince)
		m.idleIntervals++
	}
	if m.foreign != nil && m.foreign.state == jobRunning {
		switch s.cfg.Vacate {
		case VacateKillImmediately:
			s.killToLastCheckpoint(m.foreign, now)
		default:
			s.suspend(m.foreign, now)
			job := m.foreign
			m.graceTimer = s.engine.After(s.cfg.SuspendGrace, func(t time.Time) {
				if m.foreign == job && job.state == jobSuspended {
					s.vacate(job, t, "grace expired")
				}
			})
		}
	}
	s.engine.After(m.gen.NextActive(now), func(t time.Time) { s.ownerFlip(m, t) })
}

// integrate accrues the machine's time-in-state up to now.
func (s *simulator) integrate(m *simMachine, now time.Time) {
	// Clamp accounting to the observation window.
	from, to := m.lastChange, now
	m.lastChange = now
	if to.After(s.end) {
		to = s.end
	}
	if from.After(to) {
		return
	}
	d := to.Sub(from)
	switch {
	case m.down:
		m.downTime += d
	case m.ownerActive:
		m.ownerTime += d
	case m.foreign != nil && m.foreign.state == jobRunning:
		m.claimedTime += d
	case m.foreign != nil && m.foreign.state == jobSuspended:
		m.suspendTime += d
	}
}

// place starts a queued job on an idle machine.
func (s *simulator) place(u *user, m *simMachine, now time.Time) bool {
	if m.down || m.ownerActive || m.foreign != nil || len(u.queue) == 0 {
		return false
	}
	j := u.queue[0]
	u.queue = u.queue[1:]
	s.integrate(m, now)
	j.state = jobRunning
	j.machine = m
	j.runStart = now
	j.placements++
	j.transferBytes += j.wj.CheckpointBytes
	m.foreign = j
	s.scheduleCompletion(j, now)
	s.schedulePeriodic(j, now)
	return true
}

func (s *simulator) scheduleCompletion(j *simJob, now time.Time) {
	j.timer = s.engine.After(j.remaining, func(t time.Time) { s.complete(j, t) })
}

func (s *simulator) schedulePeriodic(j *simJob, now time.Time) {
	if s.cfg.PeriodicCheckpoint <= 0 {
		return
	}
	j.periodicTimer = s.engine.After(s.cfg.PeriodicCheckpoint, func(t time.Time) {
		if j.state != jobRunning {
			return
		}
		s.chargeProgress(j, t)
		j.runStart = t
		j.checkpoints++
		j.transferBytes += j.wj.CheckpointBytes
		j.lastCkptRemaining = j.remaining
		s.schedulePeriodic(j, t)
	})
}

// chargeProgress folds CPU consumed since runStart into the job.
func (s *simulator) chargeProgress(j *simJob, now time.Time) {
	consumed := now.Sub(j.runStart)
	if consumed < 0 {
		consumed = 0
	}
	if consumed > j.remaining {
		consumed = j.remaining
	}
	j.remaining -= consumed
	j.syscalls += int64(j.wj.SyscallRate * consumed.Seconds())
	// Remote capacity consumed inside the window counts toward Figure 5.
	s.rep.recordRemoteCPU(j.runStart, now, s.end)
}

func (s *simulator) stopTimers(j *simJob) {
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	if j.periodicTimer != nil {
		j.periodicTimer.Stop()
		j.periodicTimer = nil
	}
}

// suspend freezes a running job in place (owner returned).
func (s *simulator) suspend(j *simJob, now time.Time) {
	s.integrate(j.machine, now)
	s.chargeProgress(j, now)
	s.stopTimers(j)
	j.state = jobSuspended
}

// resume continues a suspended job on the same machine.
func (s *simulator) resume(j *simJob, now time.Time) {
	s.integrate(j.machine, now)
	j.state = jobRunning
	j.runStart = now
	s.scheduleCompletion(j, now)
	s.schedulePeriodic(j, now)
}

// vacate checkpoints a job off its machine and requeues it.
func (s *simulator) vacate(j *simJob, now time.Time, reason string) {
	m := j.machine
	if m == nil {
		return
	}
	s.integrate(m, now)
	if j.state == jobRunning {
		s.chargeProgress(j, now)
	}
	s.stopTimers(j)
	if m.graceTimer != nil {
		m.graceTimer.Stop()
		m.graceTimer = nil
	}
	j.checkpoints++
	j.transferBytes += j.wj.CheckpointBytes
	j.lastCkptRemaining = j.remaining
	j.state = jobQueued
	j.machine = nil
	m.foreign = nil
	u := s.userOf(j.wj.User)
	u.queue = append(u.queue, j)
	s.rep.vacates++
	_ = reason
}

// killToLastCheckpoint implements the §4 kill-immediately policy in the
// simulator: the job restarts from its last checkpoint; progress since
// then is redone.
func (s *simulator) killToLastCheckpoint(j *simJob, now time.Time) {
	m := j.machine
	s.integrate(m, now)
	s.chargeProgress(j, now)
	s.stopTimers(j)
	// Lose the work since the last checkpoint.
	lost := j.lastCkptRemaining - j.remaining
	if lost > 0 {
		s.rep.workLost += lost
		j.remaining = j.lastCkptRemaining
	}
	j.state = jobQueued
	j.machine = nil
	m.foreign = nil
	u := s.userOf(j.wj.User)
	u.queue = append(u.queue, j)
	s.rep.vacates++
}

// complete finishes a job.
func (s *simulator) complete(j *simJob, now time.Time) {
	m := j.machine
	if m != nil {
		s.integrate(m, now)
	}
	s.chargeProgress(j, now)
	s.stopTimers(j)
	j.state = jobDone
	j.doneAt = now
	if m != nil {
		m.foreign = nil
		if m.graceTimer != nil {
			m.graceTimer.Stop()
			m.graceTimer = nil
		}
	}
	j.machine = nil
	u := s.userOf(j.wj.User)
	u.inSystem--
}

// pollCycle is the coordinator's 2-minute cycle: feedback submissions,
// Up-Down accounting, policy decision, grants and preemptions.
func (s *simulator) pollCycle(now time.Time) {
	// Closed-loop submissions stop at the window end.
	if now.Before(s.end) {
		for _, u := range s.users {
			if u.stream == nil {
				continue
			}
			for _, wj := range u.stream.Take(now, u.inSystem) {
				s.arrive(wj, now)
			}
		}
	}

	// Build the pool view. Each machine is a station; the user queues
	// live on their home machines.
	held := make(map[string]int, len(s.users))
	for _, m := range s.machines {
		if m.foreign != nil {
			held[s.userOf(m.foreign.wj.User).home]++
		}
	}
	views := make([]policy.StationView, 0, len(s.machines))
	for _, m := range s.machines {
		if m.down {
			continue // unreachable: the coordinator's poll would fail
		}
		v := policy.StationView{
			Name:         m.name,
			HeldMachines: held[m.name],
			AvgIdleLen:   m.avgIdle(),
			IdleStreak:   m.idleStreak(now),
		}
		switch {
		case m.foreign != nil && m.foreign.state == jobSuspended:
			v.State = proto.StationSuspended
		case m.foreign != nil:
			v.State = proto.StationClaimed
		case m.ownerActive:
			v.State = proto.StationOwner
		default:
			v.State = proto.StationIdle
		}
		if m.foreign != nil {
			v.ForeignJob = m.foreign.wj.ID
			v.ForeignOwner = s.userOf(m.foreign.wj.User).home
		}
		if u, ok := s.byHome[m.name]; ok {
			v.WaitingJobs = len(u.queue)
			v.ShortestJob = shortestQueued(u.queue)
		}
		views = append(views, v)
	}
	if s.fifoRanker == nil {
		for _, v := range views {
			s.table.Update(v.Name, v.HeldMachines, v.WaitingJobs > 0)
		}
	}
	s.cycles++
	var aud *decision.Builder
	if s.cfg.Audit != nil {
		aud = decision.NewBuilder(s.cycles, now)
	}
	dec := s.pol.DecideAudited(views, s.table, s.cfg.Policy, aud)
	perStation := make(map[string]int, 4)
	for _, g := range dec.Grants {
		u, ok := s.byHome[g.Requester]
		if !ok {
			continue
		}
		m := s.byName[g.Exec]
		if s.place(u, m, now) {
			perStation[g.Requester]++
		}
	}
	for _, n := range perStation {
		if n > s.rep.peakStationBurst {
			s.rep.peakStationBurst = n
		}
	}
	for _, p := range dec.Preempts {
		m := s.byName[p.Exec]
		if m != nil && m.foreign != nil && m.foreign.state == jobRunning {
			s.rep.preempts++
			s.vacate(m.foreign, now, "up-down preemption")
		}
	}
	s.cfg.Audit.Record(aud.Done())
}

// shortestQueued is the remaining length of the shortest waiting job,
// feeding the backfill policy's window test; 0 = empty queue.
func shortestQueued(queue []*simJob) time.Duration {
	var min time.Duration
	for _, j := range queue {
		if j.remaining > 0 && (min == 0 || j.remaining < min) {
			min = j.remaining
		}
	}
	return min
}

// crash takes the machine down: the resident job loses all progress
// since its last checkpoint and is requeued; the machine is unusable
// until repair.
func (s *simulator) crash(m *simMachine, r *sim.RNG, now time.Time) {
	s.integrate(m, now)
	m.down = true
	s.rep.crashes++
	if j := m.foreign; j != nil {
		s.stopTimers(j)
		if j.state == jobRunning {
			s.chargeProgress(j, now)
		}
		// No chance to checkpoint: roll back to the last one.
		if lost := j.lastCkptRemaining - j.remaining; lost > 0 {
			s.rep.workLost += lost
			j.remaining = j.lastCkptRemaining
		}
		j.state = jobQueued
		j.machine = nil
		m.foreign = nil
		if m.graceTimer != nil {
			m.graceTimer.Stop()
			m.graceTimer = nil
		}
		u := s.userOf(j.wj.User)
		u.queue = append(u.queue, j)
	}
	repair := time.Duration(r.Exp(float64(s.cfg.CrashRepair)))
	s.engine.After(repair, func(t time.Time) {
		s.integrate(m, t)
		m.down = false
		m.idleSince = t
		m.ownerActive = false
		next := time.Duration(r.Exp(float64(s.cfg.CrashMTBF)))
		s.engine.After(next, func(t2 time.Time) { s.crash(m, r, t2) })
	})
}

func (m *simMachine) avgIdle() time.Duration {
	if m.idleIntervals == 0 {
		return 0
	}
	return m.completedIdle / time.Duration(m.idleIntervals)
}

func (m *simMachine) idleStreak(now time.Time) time.Duration {
	if m.ownerActive {
		return 0
	}
	return now.Sub(m.idleSince)
}

// sampleHour records the hourly series for Figures 3, 5, 6 and 7.
func (s *simulator) sampleHour(now time.Time) {
	if !now.Before(s.end) {
		return
	}
	local, remote := 0, 0
	for _, m := range s.machines {
		switch {
		case m.down:
		case m.ownerActive:
			local++
		case m.foreign != nil && m.foreign.state == jobRunning:
			remote++
		}
	}
	n := float64(len(s.machines))
	s.rep.LocalUtil.Observe(now, float64(local)/n)
	s.rep.SystemUtil.Observe(now, float64(local+remote)/n)

	total, light := 0, 0
	for _, u := range s.users {
		if u.inSystem < 0 {
			u.inSystem = 0
		}
		total += u.inSystem
		if !u.profile.Heavy() {
			light += u.inSystem
		}
	}
	s.rep.TotalQueue.Observe(now, float64(total))
	s.rep.LightQueue.Observe(now, float64(light))
}

// finalize integrates trailing machine state and computes the per-job
// and aggregate statistics.
func (s *simulator) finalize() {
	now := s.engine.Now()
	for _, m := range s.machines {
		s.integrate(m, now)
	}
	s.rep.collect(s)
}
