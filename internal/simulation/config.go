// Package simulation reproduces the paper's one-month evaluation: 23
// workstations, five users, the coordinator's 2-minute poll cycle, the
// Up-Down algorithm, suspend-then-vacate preemption and the §3.1 cost
// model — at event granularity on a virtual clock.
//
// The scheduling decisions are made by the same internal/policy and
// internal/updown code that drives the real daemons; the simulator only
// substitutes the substrate (virtual machines and scripted owners for
// real ones). See DESIGN.md §2 for the substitution argument.
package simulation

import (
	"time"

	"condor/internal/avail"
	"condor/internal/cost"
	"condor/internal/decision"
	"condor/internal/policy"
	"condor/internal/updown"
	"condor/internal/workload"
)

// VacatePolicy mirrors ru.VacatePolicy for the simulator.
type VacatePolicy int

// Vacate policies.
const (
	// VacateSuspendFirst suspends for the grace period, then checkpoints
	// (the paper's deployed strategy).
	VacateSuspendFirst VacatePolicy = iota + 1
	// VacateKillImmediately kills on owner return, losing work since the
	// last periodic checkpoint (§4's proposal).
	VacateKillImmediately
)

// Config parameterizes a simulation run.
type Config struct {
	// Machines is the pool size (paper: 23).
	Machines int
	// Start is the beginning of the observation window (default: Monday
	// 1987-11-02, the month before the TR was published).
	Start time.Time
	// Days is the window length (paper: one month = 30 days).
	Days int
	// DrainDays allows jobs still in the system at window end to finish
	// (arrivals stop at the window end; metrics series cover the window).
	DrainDays int
	// Seed makes the run reproducible.
	Seed int64

	// PollInterval is the coordinator cycle (paper: 2 minutes).
	PollInterval time.Duration
	// SuspendGrace is the §4 grace period (paper: 5 minutes).
	SuspendGrace time.Duration
	// Vacate selects the owner-return policy.
	Vacate VacatePolicy
	// PeriodicCheckpoint, when positive, checkpoints running jobs at this
	// interval (used with VacateKillImmediately; A5 ablation).
	PeriodicCheckpoint time.Duration

	// Policy configures allocation; zero value = policy.DefaultConfig().
	// Policy.Name selects the registered scheduling pipeline ("" =
	// updown), so any policy in the registry gets a month-scale A/B run.
	Policy policy.Config
	// UpDown configures fairness; zero value = updown defaults.
	UpDown updown.Config
	// FIFO replaces Up-Down with FIFO priority (A3 ablation).
	// Shorthand for Policy.Name = "fifo".
	FIFO bool

	// Cost is the §3.1 cost model; zero value = cost.Paper().
	Cost cost.Model

	// Workload overrides the job population; zero value = Table 1.
	Workload workload.Config

	// Classes overrides the machine availability classes.
	Classes []avail.Class

	// Audit, when non-nil, receives a decision audit for every poll
	// cycle (internal/decision), exactly as the live coordinator records
	// them — `condor-sim -explain` uses it to show where two policies'
	// grant decisions diverge on the same workload. Nil costs nothing.
	Audit *decision.Recorder

	// CrashMTBF, when positive, makes machines crash (shut down) with
	// exponentially distributed uptimes of this mean. A crash loses the
	// resident foreign job's progress back to its last checkpoint; the
	// paper's recovery guarantee ("programs are resumed from their most
	// recent checkpoints" after "the shutdown of remote workstations")
	// must still complete every job.
	CrashMTBF time.Duration
	// CrashRepair is the mean down time after a crash (default 1 hour).
	CrashRepair time.Duration
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Machines:     23,
		Start:        time.Date(1987, time.November, 2, 0, 0, 0, 0, time.UTC),
		Days:         30,
		DrainDays:    10,
		Seed:         1987,
		PollInterval: 2 * time.Minute,
		SuspendGrace: 5 * time.Minute,
		Vacate:       VacateSuspendFirst,
		Policy:       policy.DefaultConfig(),
		UpDown:       updown.DefaultConfig(),
		Cost:         cost.Paper(),
	}
}

func (c *Config) sanitize() {
	if c.Machines <= 0 {
		c.Machines = 23
	}
	if c.Start.IsZero() {
		c.Start = time.Date(1987, time.November, 2, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.DrainDays < 0 {
		c.DrainDays = 0
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Minute
	}
	if c.SuspendGrace <= 0 {
		c.SuspendGrace = 5 * time.Minute
	}
	if c.Vacate == 0 {
		c.Vacate = VacateSuspendFirst
	}
	if c.Policy.MaxGrantsPerCycle == 0 {
		name := c.Policy.Name
		c.Policy = policy.DefaultConfig()
		c.Policy.Name = name
	}
	if c.FIFO && c.Policy.Name == "" {
		c.Policy.Name = "fifo"
	}
	if c.UpDown.UpRate == 0 {
		c.UpDown = updown.DefaultConfig()
	}
	if c.Cost.PlacePerMB == 0 {
		c.Cost = cost.Paper()
	}
	if c.CrashMTBF > 0 && c.CrashRepair <= 0 {
		c.CrashRepair = time.Hour
	}
	if c.Workload.Start.IsZero() {
		c.Workload.Start = c.Start
	}
	if c.Workload.End.IsZero() {
		c.Workload.End = c.Start.Add(time.Duration(c.Days) * 24 * time.Hour)
	}
}
