package simulation

import (
	"strings"
	"sync"
	"testing"
	"time"

	"condor/internal/policy"
)

// monthReport runs the default month once per test binary (it takes
// ≈0.5 s; many tests share it).
var (
	monthOnce sync.Once
	monthRep  *Report
)

func month(t *testing.T) *Report {
	t.Helper()
	monthOnce.Do(func() { monthRep = Run(DefaultConfig()) })
	return monthRep
}

// shortConfig is a 6-day run for tests that need their own simulation.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 6
	cfg.DrainDays = 4
	return cfg
}

func TestAllJobsEventuallyComplete(t *testing.T) {
	rep := month(t)
	if rep.TotalJobs != 918 {
		t.Fatalf("total jobs = %d, want 918", rep.TotalJobs)
	}
	if rep.CompletedJobs != rep.TotalJobs {
		t.Fatalf("completed %d of %d — the completion guarantee is broken",
			rep.CompletedJobs, rep.TotalJobs)
	}
}

func TestTable1Reproduced(t *testing.T) {
	rep := month(t)
	if len(rep.Users) != 5 {
		t.Fatalf("users = %d", len(rep.Users))
	}
	wantJobs := map[string]int{"A": 690, "B": 138, "C": 39, "D": 40, "E": 11}
	wantMean := map[string]float64{"A": 6.2, "B": 2.5, "C": 2.6, "D": 0.7, "E": 1.7}
	for _, u := range rep.Users {
		if u.Jobs != wantJobs[u.User] {
			t.Errorf("user %s jobs = %d, want %d", u.User, u.Jobs, wantJobs[u.User])
		}
		if rel(u.MeanDemandH, wantMean[u.User]) > 0.25 {
			t.Errorf("user %s mean demand = %.2f, want ≈%.1f", u.User, u.MeanDemandH, wantMean[u.User])
		}
	}
	// User A dominates: ≈75% of jobs, ≈90% of demand.
	a := rep.Users[0]
	if a.User != "A" || a.PctJobs < 70 || a.PctJobs > 80 {
		t.Errorf("A%%jobs = %.1f, want ≈75", a.PctJobs)
	}
	if a.PctDemand < 85 || a.PctDemand > 93 {
		t.Errorf("A%%demand = %.1f, want ≈90", a.PctDemand)
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestFigure2DemandDistribution(t *testing.T) {
	rep := month(t)
	if mean := rep.Demands.Mean(); mean < 4.2 || mean > 6.2 {
		t.Fatalf("mean demand = %.2f h, want ≈5.2", mean)
	}
	if med := rep.Demands.Median(); med >= 3.0 {
		t.Fatalf("median demand = %.2f h, want < 3", med)
	}
}

func TestFigure3HeavyQueueDominates(t *testing.T) {
	rep := month(t)
	// The heavy user keeps >30 jobs in the system for long stretches;
	// light users stay in single digits.
	hoursAbove30 := 0
	for _, v := range rep.TotalQueue.Values() {
		if v > 30 {
			hoursAbove30++
		}
	}
	if hoursAbove30 < 48 {
		t.Fatalf("queue above 30 for only %d hours; paper shows long periods", hoursAbove30)
	}
	for i, v := range rep.LightQueue.Values() {
		if v > 15 {
			t.Fatalf("light queue spiked to %.0f at hour %d", v, i)
		}
	}
	if rep.LightQueue.Mean() >= rep.TotalQueue.Mean()/3 {
		t.Fatalf("light mean %.1f not clearly below total mean %.1f",
			rep.LightQueue.Mean(), rep.TotalQueue.Mean())
	}
}

func TestFigure4FairnessProtectsLightUsers(t *testing.T) {
	rep := month(t)
	// "in most cases light users did not wait at all" while the heavy
	// user dominates the overall average.
	if rep.MeanWaitRatioLight > 0.5 {
		t.Fatalf("light users' mean wait ratio = %.2f, want near 0", rep.MeanWaitRatioLight)
	}
	if rep.MeanWaitRatioAll < 4*rep.MeanWaitRatioLight {
		t.Fatalf("all %.2f vs light %.2f: heavy user does not dominate the average",
			rep.MeanWaitRatioAll, rep.MeanWaitRatioLight)
	}
	// Per-bin: the light curve sits below the all curve wherever both
	// have data.
	for i := 0; i < rep.WaitAll.Len(); i++ {
		if rep.WaitLight.Count(i) == 0 || rep.WaitAll.Count(i) == 0 {
			continue
		}
		if rep.WaitLight.Mean(i) > rep.WaitAll.Mean(i)+0.01 {
			t.Fatalf("bin %s: light %.2f above all %.2f",
				rep.WaitAll.Label(i), rep.WaitLight.Mean(i), rep.WaitAll.Mean(i))
		}
	}
}

func TestFigure5UtilizationScalars(t *testing.T) {
	rep := month(t)
	if rep.TotalMachineHours != 23*30*24 {
		t.Fatalf("machine hours = %.0f", rep.TotalMachineHours)
	}
	availFrac := rep.AvailableHours / rep.TotalMachineHours
	if availFrac < 0.68 || availFrac > 0.82 {
		t.Fatalf("availability = %.1f%%, want ≈75%%", 100*availFrac)
	}
	if rep.LocalUtilMean < 0.18 || rep.LocalUtilMean > 0.32 {
		t.Fatalf("local utilization = %.1f%%, want ≈25%%", 100*rep.LocalUtilMean)
	}
	// ≈200 machine-days consumed by Condor within the window.
	if rep.ConsumedHours < 3200 || rep.ConsumedHours > 5500 {
		t.Fatalf("consumed = %.0f h, want ≈4771 (order 200 machine-days)", rep.ConsumedHours)
	}
	if rep.ConsumedHours > rep.AvailableHours {
		t.Fatal("consumed more than was available")
	}
}

func TestFigure5SystemAboveLocal(t *testing.T) {
	rep := month(t)
	sys, local := rep.SystemUtil.Values(), rep.LocalUtil.Values()
	higher := 0
	for i := range sys {
		if sys[i] >= local[i]-1e-9 {
			higher++
		}
	}
	if frac := float64(higher) / float64(len(sys)); frac < 0.999 {
		t.Fatalf("system utilization below local in %.1f%% of hours", 100*(1-frac))
	}
	// Condor should push the system to (near) full utilization for long
	// stretches ("often all workstations were utilized").
	full := 0
	for _, v := range sys {
		if v > 0.95 {
			full++
		}
	}
	if full < 24 {
		t.Fatalf("system near-fully utilized for only %d hours", full)
	}
}

func TestFigure6DiurnalLocalActivity(t *testing.T) {
	rep := month(t)
	from, to := rep.weekWindow()
	week := rep.LocalUtil.Slice(from, to)
	if len(week) != 5*24 {
		t.Fatalf("week slice = %d hours", len(week))
	}
	var afternoon, night float64
	var an, nn int
	for day := 0; day < 5; day++ {
		for h := 14; h < 18; h++ {
			afternoon += week[day*24+h]
			an++
		}
		for h := 1; h < 6; h++ {
			night += week[day*24+h]
			nn++
		}
	}
	if afternoon/float64(an) <= night/float64(nn) {
		t.Fatalf("afternoon local util %.2f not above night %.2f",
			afternoon/float64(an), night/float64(nn))
	}
}

func TestFigure8CheckpointRateShape(t *testing.T) {
	rep := month(t)
	// Short jobs are checkpointed more often per CPU-hour; beyond that
	// the rate is comparatively steady (long jobs eventually land on
	// stable machines).
	shortRate := rep.CkptRate.Mean(0)
	var longSum float64
	var longN int
	for i := 3; i < rep.CkptRate.Len(); i++ {
		if rep.CkptRate.Count(i) > 0 {
			longSum += rep.CkptRate.Mean(i)
			longN++
		}
	}
	if longN == 0 {
		t.Fatal("no long-job bins populated")
	}
	longRate := longSum / float64(longN)
	if shortRate <= longRate*1.5 {
		t.Fatalf("short-job ckpt rate %.2f not clearly above long-job %.2f",
			shortRate, longRate)
	}
	if longRate <= 0 || longRate > 2.0 {
		t.Fatalf("long-job rate %.2f implausible", longRate)
	}
}

func TestFigure9Leverage(t *testing.T) {
	rep := month(t)
	// Paper: overall ≈1300; short jobs ≈600; longer jobs higher.
	if rep.OverallLeverage < 700 || rep.OverallLeverage > 2600 {
		t.Fatalf("overall leverage = %.0f, want order 1300", rep.OverallLeverage)
	}
	if rep.ShortJobLeverage < 250 || rep.ShortJobLeverage > 1300 {
		t.Fatalf("short-job leverage = %.0f, want order 600", rep.ShortJobLeverage)
	}
	if rep.ShortJobLeverage >= rep.OverallLeverage {
		t.Fatal("short jobs must have lower leverage than the overall")
	}
	// Leverage rises with demand across the low bins.
	if rep.LeverageBins.Mean(0) >= rep.LeverageBins.Mean(4) {
		t.Fatalf("leverage bin 0 (%.0f) not below bin 4 (%.0f)",
			rep.LeverageBins.Mean(0), rep.LeverageBins.Mean(4))
	}
}

func TestPreemptionsHappenButAreBounded(t *testing.T) {
	rep := month(t)
	if rep.Preempts == 0 {
		t.Fatal("no Up-Down preemptions in a contended month — implausible")
	}
	if rep.Vacates == 0 {
		t.Fatal("no owner-return vacates — availability model not engaged")
	}
	if rep.Preempts > rep.Vacates {
		t.Fatalf("preempts %d exceed owner vacates %d; owner activity should dominate",
			rep.Preempts, rep.Vacates)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := shortConfig()
	a, b := Run(cfg), Run(cfg)
	if a.ConsumedHours != b.ConsumedHours || a.Preempts != b.Preempts ||
		a.Vacates != b.Vacates || a.CompletedJobs != b.CompletedJobs {
		t.Fatalf("same seed diverged: %+v vs %+v",
			[4]float64{a.ConsumedHours, float64(a.Preempts), float64(a.Vacates), float64(a.CompletedJobs)},
			[4]float64{b.ConsumedHours, float64(b.Preempts), float64(b.Vacates), float64(b.CompletedJobs)})
	}
	c := cfg
	c.Seed = cfg.Seed + 1
	if Run(c).ConsumedHours == a.ConsumedHours {
		t.Fatal("different seeds produced identical consumption — RNG not wired")
	}
}

// TestPolicyABRegression pins the paper-shaped orderings across the
// registered policies on the same deterministic month-scale seed, so a
// future edit to any pipeline stage cannot silently regress the
// reproduction: every policy still completes the whole workload with
// utilization inside the committed Figure 5 envelope, Up-Down's
// leverage stays finite (order 10^3, Figure 9), and Up-Down remains
// fairer to light users than FIFO.
func TestPolicyABRegression(t *testing.T) {
	updownRep := month(t) // DefaultConfig = the updown policy
	runPolicy := func(name string) *Report {
		cfg := DefaultConfig()
		cfg.Policy.Name = name
		return Run(cfg)
	}
	fifoRep := runPolicy("fifo")
	busiestRep := runPolicy("busiest-first")

	for _, pr := range []struct {
		name string
		rep  *Report
	}{{"updown", updownRep}, {"fifo", fifoRep}, {"busiest-first", busiestRep}} {
		if pr.rep.CompletedJobs != pr.rep.TotalJobs {
			t.Errorf("%s: completed %d of %d jobs — the completion guarantee broke",
				pr.name, pr.rep.CompletedJobs, pr.rep.TotalJobs)
		}
		// Availability is workload- and fleet-driven, not policy-driven;
		// any policy drifting it means the substrate changed.
		availFrac := pr.rep.AvailableHours / pr.rep.TotalMachineHours
		if availFrac < 0.68 || availFrac > 0.82 {
			t.Errorf("%s: available fraction = %.2f, want the Figure 5 band 0.68–0.82",
				pr.name, availFrac)
		}
		// The same jobs complete, so consumed capacity must stay inside
		// the committed Figure 5 envelope whatever the ordering.
		if pr.rep.ConsumedHours < 3200 || pr.rep.ConsumedHours > 5500 {
			t.Errorf("%s: consumed hours = %.0f, want the Figure 5 band 3200–5500",
				pr.name, pr.rep.ConsumedHours)
		}
	}
	// Up-Down's leverage is finite and paper-sized (Figure 9: order
	// 10^3) — an unfair or broken ranker shows up here first, as either
	// ~0 (no remote work) or an explosion (support time collapsed).
	if updownRep.OverallLeverage < 700 || updownRep.OverallLeverage > 2600 {
		t.Errorf("updown overall leverage = %.0f, want order 1300 (Figure 9)",
			updownRep.OverallLeverage)
	}
	// Fairness ordering: Up-Down serves light users better than FIFO,
	// where the heavy user's early arrival owns the grant order (§2.4).
	if updownRep.MeanWaitRatioLight >= fifoRep.MeanWaitRatioLight {
		t.Errorf("updown light-user wait ratio %.2f not better than FIFO's %.2f",
			updownRep.MeanWaitRatioLight, fifoRep.MeanWaitRatioLight)
	}
}

func TestFIFOAblationHurtsLightUsers(t *testing.T) {
	base := shortConfig()
	fair := Run(base)
	fifoCfg := base
	fifoCfg.FIFO = true
	fifo := Run(fifoCfg)
	// Under FIFO the heavy user's home station (registered first) owns
	// the grant order; light users wait longer than under Up-Down.
	if fifo.MeanWaitRatioLight <= fair.MeanWaitRatioLight {
		t.Fatalf("FIFO light wait %.2f not worse than Up-Down %.2f",
			fifo.MeanWaitRatioLight, fair.MeanWaitRatioLight)
	}
}

func TestKillImmediatelyAblation(t *testing.T) {
	base := shortConfig()
	suspend := Run(base)
	killCfg := base
	killCfg.Vacate = VacateKillImmediately
	killCfg.PeriodicCheckpoint = 30 * time.Minute
	// Redone work slows the tail down; allow a longer drain.
	killCfg.DrainDays = 15
	kill := Run(killCfg)
	if kill.WorkLostHours <= 0 {
		t.Fatal("kill-immediately lost no work — ablation not engaged")
	}
	if suspend.WorkLostHours != 0 {
		t.Fatalf("suspend-first lost %.1f h — it should lose nothing", suspend.WorkLostHours)
	}
	if kill.CompletedJobs != kill.TotalJobs {
		t.Fatalf("kill policy completed %d/%d", kill.CompletedJobs, kill.TotalJobs)
	}
}

func TestHistoryPlacementReducesPreemptions(t *testing.T) {
	base := shortConfig()
	first := Run(base)
	histCfg := base
	histCfg.Policy = policy.DefaultConfig()
	histCfg.Policy.Placement = policy.PlaceHistory
	hist := Run(histCfg)
	// §5.1: choosing machines by availability history should reduce the
	// owner-return vacates long jobs suffer. Allow equality noise but
	// require it not be dramatically worse.
	if float64(hist.Vacates) > float64(first.Vacates)*1.15 {
		t.Fatalf("history placement vacates %d vs first-fit %d — should not be worse",
			hist.Vacates, first.Vacates)
	}
}

func TestReportRenderers(t *testing.T) {
	rep := month(t)
	out := rep.String()
	for _, want := range []string{
		"Table 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9",
		"leverage", "available",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(out))
	}
}

func TestConfigSanitizeDefaults(t *testing.T) {
	rep := Run(Config{Days: 2, DrainDays: 2, Machines: 5})
	if rep.TotalJobs == 0 {
		t.Fatal("zero-config run produced no jobs")
	}
	if rep.TotalMachineHours != 5*2*24 {
		t.Fatalf("machine hours = %.0f", rep.TotalMachineHours)
	}
}

func TestMachineCrashesDoNotLoseJobs(t *testing.T) {
	cfg := shortConfig()
	cfg.CrashMTBF = 30 * time.Hour // several crashes across 23 machines
	cfg.CrashRepair = 2 * time.Hour
	cfg.DrainDays = 12
	rep := Run(cfg)
	if rep.Crashes == 0 {
		t.Fatal("no crashes injected — test premise broken")
	}
	if rep.CompletedJobs != rep.TotalJobs {
		t.Fatalf("crashes broke the completion guarantee: %d/%d",
			rep.CompletedJobs, rep.TotalJobs)
	}
	if rep.WorkLostHours <= 0 {
		t.Fatal("crashes lost no work — rollback to last checkpoint not engaged")
	}
	if rep.DownHours <= 0 {
		t.Fatal("down time not accounted")
	}
	// Availability must shrink by the down time.
	noCrash := Run(shortConfig())
	if rep.AvailableHours >= noCrash.AvailableHours {
		t.Fatalf("availability with crashes (%.0f) not below baseline (%.0f)",
			rep.AvailableHours, noCrash.AvailableHours)
	}
}

func TestCrashWithPeriodicCheckpointLosesLess(t *testing.T) {
	base := shortConfig()
	base.CrashMTBF = 30 * time.Hour
	base.CrashRepair = 2 * time.Hour
	base.DrainDays = 12
	bare := Run(base)
	withCkpt := base
	withCkpt.PeriodicCheckpoint = 30 * time.Minute
	per := Run(withCkpt)
	if per.WorkLostHours >= bare.WorkLostHours {
		t.Fatalf("periodic checkpoints did not reduce crash losses: %.1f vs %.1f",
			per.WorkLostHours, bare.WorkLostHours)
	}
}

func TestScalesToHundredWorkstations(t *testing.T) {
	// §3.1: "a coordinator can manage as many as 100 workstations". The
	// same workload spread over a 100-machine pool must complete sooner
	// (less waiting) and still be fair.
	cfg := shortConfig()
	cfg.Machines = 100
	rep := Run(cfg)
	if rep.CompletedJobs != rep.TotalJobs {
		t.Fatalf("completed %d/%d at 100 machines", rep.CompletedJobs, rep.TotalJobs)
	}
	small := Run(shortConfig())
	if rep.MeanWaitRatioAll >= small.MeanWaitRatioAll {
		t.Fatalf("more machines did not reduce waiting: %.2f vs %.2f",
			rep.MeanWaitRatioAll, small.MeanWaitRatioAll)
	}
	if rep.MeanWaitRatioLight > 1.0 {
		t.Fatalf("light users wait %.2f at 100 machines", rep.MeanWaitRatioLight)
	}
}

func TestCheckpointFileSizeMatchesPaper(t *testing.T) {
	rep := month(t)
	// Paper §3.1: mean checkpoint ≈½ MB, so placement/checkpoint costs
	// ≈2.5 s of local capacity per move.
	if rep.MeanCheckpointMB < 0.35 || rep.MeanCheckpointMB > 0.7 {
		t.Fatalf("mean checkpoint = %.2f MB, want ≈0.5", rep.MeanCheckpointMB)
	}
	if rep.MeanMoveCostSeconds < 1.7 || rep.MeanMoveCostSeconds > 3.5 {
		t.Fatalf("mean move cost = %.1f s, want ≈2.5", rep.MeanMoveCostSeconds)
	}
}
