package simulation

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// exportedReport is the JSON shape of a Report: everything a plotting
// script needs to redraw the paper's figures.
type exportedReport struct {
	Start string    `json:"start"`
	End   string    `json:"end"`
	Users []UserRow `json:"users"`

	DemandCDF struct {
		PointsHours []float64 `json:"pointsHours"`
		CumFreq     []float64 `json:"cumFreq"`
		MeanHours   float64   `json:"meanHours"`
		MedianHours float64   `json:"medianHours"`
	} `json:"demandCdf"`

	Hourly struct {
		TotalQueue []float64 `json:"totalQueue"`
		LightQueue []float64 `json:"lightQueue"`
		LocalUtil  []float64 `json:"localUtil"`
		SystemUtil []float64 `json:"systemUtil"`
	} `json:"hourly"`

	ByDemand struct {
		Labels    []string  `json:"labels"`
		WaitAll   []float64 `json:"waitAll"`
		WaitLight []float64 `json:"waitLight"`
		CkptRate  []float64 `json:"ckptRate"`
		Leverage  []float64 `json:"leverage"`
		Jobs      []int64   `json:"jobs"`
	} `json:"byDemand"`

	Scalars struct {
		TotalMachineHours  float64 `json:"totalMachineHours"`
		AvailableHours     float64 `json:"availableHours"`
		ConsumedHours      float64 `json:"consumedHours"`
		LocalUtilMean      float64 `json:"localUtilMean"`
		CompletedJobs      int     `json:"completedJobs"`
		TotalJobs          int     `json:"totalJobs"`
		MeanWaitRatioAll   float64 `json:"meanWaitRatioAll"`
		MeanWaitRatioLight float64 `json:"meanWaitRatioLight"`
		OverallLeverage    float64 `json:"overallLeverage"`
		ShortJobLeverage   float64 `json:"shortJobLeverage"`
		MeanCkptsPerJob    float64 `json:"meanCkptsPerJob"`
		Preempts           int     `json:"preempts"`
		Vacates            int     `json:"vacates"`
		Crashes            int     `json:"crashes"`
		WorkLostHours      float64 `json:"workLostHours"`
		DownHours          float64 `json:"downHours"`
	} `json:"scalars"`
}

// cdfPoints is the demand grid exported for Figure 2.
var cdfPoints = []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 36, 48}

// WriteJSON serializes the full report for external plotting tools.
func (r *Report) WriteJSON(w io.Writer) error {
	var out exportedReport
	out.Start = r.Start.Format("2006-01-02T15:04:05Z07:00")
	out.End = r.End.Format("2006-01-02T15:04:05Z07:00")
	out.Users = r.Users

	out.DemandCDF.PointsHours = cdfPoints
	out.DemandCDF.CumFreq = r.Demands.CDF(cdfPoints)
	out.DemandCDF.MeanHours = r.Demands.Mean()
	out.DemandCDF.MedianHours = r.Demands.Median()

	out.Hourly.TotalQueue = r.TotalQueue.Values()
	out.Hourly.LightQueue = r.LightQueue.Values()
	out.Hourly.LocalUtil = r.LocalUtil.Values()
	out.Hourly.SystemUtil = r.SystemUtil.Values()

	for i := 0; i < r.WaitAll.Len(); i++ {
		out.ByDemand.Labels = append(out.ByDemand.Labels, r.WaitAll.Label(i))
		out.ByDemand.WaitAll = append(out.ByDemand.WaitAll, r.WaitAll.Mean(i))
		out.ByDemand.WaitLight = append(out.ByDemand.WaitLight, r.WaitLight.Mean(i))
		out.ByDemand.CkptRate = append(out.ByDemand.CkptRate, r.CkptRate.Mean(i))
		out.ByDemand.Leverage = append(out.ByDemand.Leverage, r.LeverageBins.Mean(i))
		out.ByDemand.Jobs = append(out.ByDemand.Jobs, r.WaitAll.Count(i))
	}

	out.Scalars.TotalMachineHours = r.TotalMachineHours
	out.Scalars.AvailableHours = r.AvailableHours
	out.Scalars.ConsumedHours = r.ConsumedHours
	out.Scalars.LocalUtilMean = r.LocalUtilMean
	out.Scalars.CompletedJobs = r.CompletedJobs
	out.Scalars.TotalJobs = r.TotalJobs
	out.Scalars.MeanWaitRatioAll = r.MeanWaitRatioAll
	out.Scalars.MeanWaitRatioLight = r.MeanWaitRatioLight
	out.Scalars.OverallLeverage = r.OverallLeverage
	out.Scalars.ShortJobLeverage = r.ShortJobLeverage
	out.Scalars.MeanCkptsPerJob = r.MeanCkptsPerJob
	out.Scalars.Preempts = r.Preempts
	out.Scalars.Vacates = r.Vacates
	out.Scalars.Crashes = r.Crashes
	out.Scalars.WorkLostHours = r.WorkLostHours
	out.Scalars.DownHours = r.DownHours

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteHourlyCSV emits the Figure 3/5/6/7 time series as CSV: one row
// per hour of the observation window.
func (r *Report) WriteHourlyCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "hour,time,total_queue,light_queue,local_util,system_util"); err != nil {
		return err
	}
	tq, lq := r.TotalQueue.Values(), r.LightQueue.Values()
	lu, su := r.LocalUtil.Values(), r.SystemUtil.Values()
	for i := range tq {
		_, err := fmt.Fprintf(w, "%d,%s,%.2f,%.2f,%.4f,%.4f\n",
			i, r.TotalQueue.Time(i).Format("2006-01-02T15:04"),
			tq[i], lq[i], lu[i], su[i])
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteByDemandCSV emits the Figure 4/8/9 per-demand-bin statistics.
func (r *Report) WriteByDemandCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "demand_bin,jobs,wait_all,wait_light,ckpt_rate,leverage"); err != nil {
		return err
	}
	for i := 0; i < r.WaitAll.Len(); i++ {
		if r.WaitAll.Count(i) == 0 {
			continue
		}
		label := strings.ReplaceAll(r.WaitAll.Label(i), ",", ";")
		_, err := fmt.Fprintf(w, "%s,%d,%.3f,%.3f,%.3f,%.1f\n",
			label, r.WaitAll.Count(i), r.WaitAll.Mean(i), r.WaitLight.Mean(i),
			r.CkptRate.Mean(i), r.LeverageBins.Mean(i))
		if err != nil {
			return err
		}
	}
	return nil
}
