// Package cost holds the local-support cost model of §3.1 and the
// leverage metric it motivates.
//
// The paper measured, on VAXstation II hardware:
//
//   - placing or checkpointing a job costs ≈5 seconds of local capacity
//     per megabyte of checkpoint file, with an average checkpoint file of
//     ½ MB (≈2.5 s per move);
//   - a remote system call costs ≈10 ms of local capacity on the
//     submitting machine, 20× the 0.5 ms of a local call;
//   - the local scheduler and the coordinator each consume <1% of a
//     machine.
//
// These are inputs to the reproduction, not outputs: the simulator
// charges them to compute the derived quantities the paper reports —
// above all leverage, the ratio of remote capacity consumed to local
// capacity spent supporting it (≈1300 overall, ≈600 for short jobs).
package cost

import "time"

// Model is the local-support cost model.
type Model struct {
	// PlacePerMB is local CPU consumed per megabyte transferred when
	// placing or checkpointing a job.
	PlacePerMB time.Duration
	// RemoteSyscall is local CPU per system call executed on behalf of a
	// remote job.
	RemoteSyscall time.Duration
	// LocalSyscall is CPU per system call when running locally (for the
	// remote/local comparison and the "when is remote worth it" bound).
	LocalSyscall time.Duration
}

// Paper returns the cost model with the paper's measured constants.
func Paper() Model {
	return Model{
		PlacePerMB:    5 * time.Second,
		RemoteSyscall: 10 * time.Millisecond,
		LocalSyscall:  500 * time.Microsecond,
	}
}

// TransferCost returns the local capacity consumed to place or checkpoint
// a file of the given size.
func (m Model) TransferCost(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	mb := float64(bytes) / (1 << 20)
	return time.Duration(mb * float64(m.PlacePerMB))
}

// SyscallCost returns the local capacity consumed supporting n remote
// system calls.
func (m Model) SyscallCost(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * m.RemoteSyscall
}

// JobSupport itemizes the local capacity one job consumed.
type JobSupport struct {
	// Placements and Checkpoints count transfers; TransferBytes is their
	// cumulative size.
	Placements    int
	Checkpoints   int
	TransferBytes int64
	// Syscalls counts remote system calls served by the shadow.
	Syscalls int64
}

// LocalSupport returns the total local capacity a job consumed under the
// model.
func (m Model) LocalSupport(s JobSupport) time.Duration {
	return m.TransferCost(s.TransferBytes) + m.SyscallCost(s.Syscalls)
}

// Leverage computes the paper's §3.1 metric: remote capacity obtained per
// unit of local capacity spent. A leverage below 1 means the job should
// have run locally. Returns 0 when nothing ran remotely; when local
// support is zero, the remote capacity was free and leverage is +Inf —
// callers render that case as the configured cap.
func Leverage(remote, localSupport time.Duration) float64 {
	if remote <= 0 {
		return 0
	}
	if localSupport <= 0 {
		return inf
	}
	return float64(remote) / float64(localSupport)
}

const inf = 1e18

// BreakEvenSyscallRate returns the remote syscall rate (calls per second
// of remote CPU) above which leverage drops below 1 — the §3.1
// observation that syscall-heavy programs are "better executed locally
// instead of remotely".
func (m Model) BreakEvenSyscallRate() float64 {
	if m.RemoteSyscall <= 0 {
		return 0
	}
	return float64(time.Second) / float64(m.RemoteSyscall)
}
