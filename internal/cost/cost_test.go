package cost

import (
	"math"
	"testing"
	"time"
)

func TestPaperConstants(t *testing.T) {
	m := Paper()
	if m.PlacePerMB != 5*time.Second {
		t.Fatalf("PlacePerMB = %v", m.PlacePerMB)
	}
	if m.RemoteSyscall != 10*time.Millisecond || m.LocalSyscall != 500*time.Microsecond {
		t.Fatalf("syscall costs = %v / %v", m.RemoteSyscall, m.LocalSyscall)
	}
	if m.RemoteSyscall/m.LocalSyscall != 20 {
		t.Fatal("remote/local syscall ratio must be 20x (§3.1)")
	}
}

func TestTransferCostHalfMegabyte(t *testing.T) {
	m := Paper()
	// The paper's average: ½ MB → ≈2.5 s.
	got := m.TransferCost(512 * 1024)
	if got != 2500*time.Millisecond {
		t.Fatalf("transfer(0.5MB) = %v, want 2.5s", got)
	}
	if m.TransferCost(0) != 0 || m.TransferCost(-5) != 0 {
		t.Fatal("non-positive sizes must cost nothing")
	}
}

func TestSyscallCost(t *testing.T) {
	m := Paper()
	if got := m.SyscallCost(100); got != time.Second {
		t.Fatalf("100 syscalls = %v, want 1s", got)
	}
	if m.SyscallCost(0) != 0 || m.SyscallCost(-1) != 0 {
		t.Fatal("non-positive counts must cost nothing")
	}
}

func TestLocalSupportComposition(t *testing.T) {
	m := Paper()
	s := JobSupport{
		Placements:    1,
		Checkpoints:   1,
		TransferBytes: 1 << 20, // 1 MB total
		Syscalls:      500,
	}
	want := 5*time.Second + 5*time.Second
	if got := m.LocalSupport(s); got != want {
		t.Fatalf("support = %v, want %v", got, want)
	}
}

func TestLeverage(t *testing.T) {
	// 1 hour remote for 2.77 s local ≈ 1300 (the paper's average).
	remote := time.Hour
	local := 2770 * time.Millisecond
	lev := Leverage(remote, local)
	if math.Abs(lev-1300) > 5 {
		t.Fatalf("leverage = %v, want ≈1300", lev)
	}
	if Leverage(0, time.Second) != 0 {
		t.Fatal("no remote work must mean zero leverage")
	}
	if Leverage(time.Hour, 0) != inf {
		t.Fatal("free remote capacity should be +inf leverage")
	}
	if Leverage(time.Second, 2*time.Second) >= 1 {
		t.Fatal("leverage below 1 when local exceeds remote")
	}
}

func TestBreakEvenSyscallRate(t *testing.T) {
	m := Paper()
	// 10 ms per call → 100 calls/s of remote CPU consumes the whole
	// machine locally.
	if got := m.BreakEvenSyscallRate(); got != 100 {
		t.Fatalf("break-even rate = %v, want 100", got)
	}
	if (Model{}).BreakEvenSyscallRate() != 0 {
		t.Fatal("zero model should report 0")
	}
}
