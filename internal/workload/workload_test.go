package workload

import (
	"math"
	"testing"
	"time"

	"condor/internal/sim"
)

var start = time.Date(1987, time.November, 2, 0, 0, 0, 0, time.UTC)

func generate(t *testing.T, seed int64) *Workload {
	t.Helper()
	return Generate(Config{Start: start}, sim.NewRNG(seed))
}

func TestTable1Population(t *testing.T) {
	profiles := Table1Profiles()
	if len(profiles) != 5 {
		t.Fatalf("profiles = %d, want 5 users", len(profiles))
	}
	totalJobs := 0
	var totalDemand float64
	for _, p := range profiles {
		totalJobs += p.Jobs
		totalDemand += float64(p.Jobs) * p.MeanDemand.Hours()
	}
	if totalJobs != 918 {
		t.Fatalf("total jobs = %d, want 918", totalJobs)
	}
	if math.Abs(totalDemand-4771) > 30 {
		t.Fatalf("expected total demand = %.0f h, want ≈4771", totalDemand)
	}
	if !profiles[0].Heavy() {
		t.Fatal("user A must be the heavy (feedback) user")
	}
	for _, p := range profiles[1:] {
		if p.Heavy() {
			t.Fatalf("user %s should be light", p.Name)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	w := generate(t, 1)
	if got := w.TotalJobs(); got != 918 {
		t.Fatalf("generated jobs = %d, want 918", got)
	}
	// Open-loop users: B+C+D+E = 228 jobs.
	if len(w.Open) != 228 {
		t.Fatalf("open jobs = %d, want 228", len(w.Open))
	}
	if len(w.Feedback) != 1 || w.Feedback[0].User() != "A" {
		t.Fatalf("feedback streams = %+v", w.Feedback)
	}
	if w.Feedback[0].Remaining() != 690 {
		t.Fatalf("A remaining = %d, want 690", w.Feedback[0].Remaining())
	}
}

func TestOpenArrivalsSortedAndInWindow(t *testing.T) {
	w := generate(t, 2)
	end := start.Add(30 * 24 * time.Hour)
	for i, j := range w.Open {
		if j.Submit.Before(start) || !j.Submit.Before(end) {
			t.Fatalf("job %s arrives at %v outside window", j.ID, j.Submit)
		}
		if i > 0 && j.Submit.Before(w.Open[i-1].Submit) {
			t.Fatalf("open arrivals not sorted at %d", i)
		}
	}
}

func TestDemandMeansMatchTable1(t *testing.T) {
	// Aggregate over several seeds to tame sampling noise, then check
	// each user's mean demand against Table 1 within 20%.
	sum := map[string]float64{}
	count := map[string]int{}
	for seed := int64(0); seed < 8; seed++ {
		w := Generate(Config{Start: start}, sim.NewRNG(seed))
		for _, j := range w.Open {
			sum[j.User] += j.Demand.Hours()
			count[j.User]++
		}
		fs := w.Feedback[0]
		for fs.Remaining() > 0 {
			for _, j := range fs.Take(start, 0) {
				sum[j.User] += j.Demand.Hours()
				count[j.User]++
			}
		}
	}
	want := map[string]float64{"A": 6.2, "B": 2.5, "C": 2.6, "D": 0.7, "E": 1.7}
	for user, mean := range want {
		got := sum[user] / float64(count[user])
		if math.Abs(got-mean)/mean > 0.20 {
			t.Errorf("user %s mean demand = %.2f h, want ≈%.1f", user, got, mean)
		}
	}
}

func TestOverallMeanAndMedianMatchFigure2(t *testing.T) {
	var demands []float64
	for seed := int64(0); seed < 4; seed++ {
		w := Generate(Config{Start: start}, sim.NewRNG(seed))
		for _, j := range w.Open {
			demands = append(demands, j.Demand.Hours())
		}
		fs := w.Feedback[0]
		for fs.Remaining() > 0 {
			for _, j := range fs.Take(start, 0) {
				demands = append(demands, j.Demand.Hours())
			}
		}
	}
	mean := 0.0
	for _, d := range demands {
		mean += d
	}
	mean /= float64(len(demands))
	if mean < 4.0 || mean > 6.5 {
		t.Fatalf("overall mean demand = %.2f h, want ≈5.2", mean)
	}
	// Median below 3 h (Figure 2: "median service demand was less than
	// 3 hours").
	sorted := append([]float64(nil), demands...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	median := sorted[len(sorted)/2]
	if median >= 3.0 {
		t.Fatalf("median demand = %.2f h, want < 3 (shorter jobs more frequent)", median)
	}
	if median >= mean {
		t.Fatal("median must sit below mean for a right-skewed demand distribution")
	}
}

func TestFeedbackStreamMaintainsTarget(t *testing.T) {
	w := generate(t, 3)
	fs := w.Feedback[0]
	// Queue empty: the stream must fill up to its target.
	jobs := fs.Take(start, 0)
	if len(jobs) < 20 {
		t.Fatalf("first batch = %d jobs, want at least the batch size", len(jobs))
	}
	inSystem := len(jobs)
	// At or above target: nothing.
	if more := fs.Take(start, inSystem); more != nil {
		t.Fatalf("stream submitted %d jobs while at target", len(more))
	}
	// Dips below target: tops up.
	more := fs.Take(start.Add(time.Hour), 10)
	if len(more) == 0 {
		t.Fatal("stream did not top up after dipping below target")
	}
	total := len(jobs) + len(more)
	for fs.Remaining() > 0 {
		total += len(fs.Take(start, 0))
	}
	if total != 690 {
		t.Fatalf("stream produced %d jobs total, want 690", total)
	}
	// Exhausted: no more.
	if fs.Take(start, 0) != nil {
		t.Fatal("exhausted stream still produced jobs")
	}
}

func TestJobFieldsPopulated(t *testing.T) {
	w := generate(t, 4)
	seen := map[string]bool{}
	check := func(j Job) {
		if j.ID == "" || seen[j.ID] {
			t.Fatalf("bad/duplicate id %q", j.ID)
		}
		seen[j.ID] = true
		if j.Demand < time.Minute {
			t.Fatalf("job %s demand %v below floor", j.ID, j.Demand)
		}
		if j.CheckpointBytes < 16*1024 {
			t.Fatalf("job %s checkpoint %d below floor", j.ID, j.CheckpointBytes)
		}
		if j.SyscallRate < 0 {
			t.Fatalf("job %s negative syscall rate", j.ID)
		}
	}
	for _, j := range w.Open {
		check(j)
	}
	for _, j := range w.Feedback[0].Take(start, 0) {
		check(j)
	}
}

func TestCheckpointSizeMeanNearHalfMB(t *testing.T) {
	var total int64
	var n int
	for seed := int64(0); seed < 6; seed++ {
		w := Generate(Config{Start: start}, sim.NewRNG(seed))
		for _, j := range w.Open {
			total += j.CheckpointBytes
			n++
		}
	}
	mean := float64(total) / float64(n)
	half := float64(512 * 1024)
	if mean < half*0.7 || mean > half*1.4 {
		t.Fatalf("mean checkpoint = %.0f bytes, want ≈%.0f (½ MB)", mean, half)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := generate(t, 11), generate(t, 11)
	if len(a.Open) != len(b.Open) {
		t.Fatal("same seed produced different workloads")
	}
	for i := range a.Open {
		if a.Open[i] != b.Open[i] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestLightBatchesLandInWorkHoursMostly(t *testing.T) {
	w := generate(t, 5)
	in := 0
	for _, j := range w.Open {
		if workHours(j.Submit) {
			in++
		}
	}
	frac := float64(in) / float64(len(w.Open))
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of light arrivals in work hours", frac*100)
	}
}
