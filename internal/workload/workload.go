// Package workload regenerates the job population of the paper's
// one-month observation (Table 1): five users, 918 jobs, ≈4771 CPU-hours
// of total demand, arriving in batches.
//
// User A is the *heavy* user: 690 jobs (75%) averaging 6.2 h, submitted
// in a closed feedback loop that keeps more than 30 of his jobs in the
// system for long periods ("this heavy user often tried to execute as
// many remote jobs as there were workstations in the system", §3,
// Figure 3). Users B–E are *light*: they drop batches of ≈5 jobs
// occasionally and leave.
//
// Per-job demand is log-normal around the user's mean; the heavy user's
// distribution is given a larger coefficient of variation so the overall
// population matches Figure 2: mean ≈5 h but median below 3 h, "shorter
// jobs were submitted more frequently than longer jobs".
package workload

import (
	"fmt"
	"sort"
	"time"

	"condor/internal/sim"
)

// UserProfile describes one user's submission behaviour.
type UserProfile struct {
	// Name is the user label (A–E in the paper).
	Name string
	// Jobs is how many jobs the user submits over the month.
	Jobs int
	// MeanDemand is the mean per-job CPU demand.
	MeanDemand time.Duration
	// DemandCV is the coefficient of variation of per-job demand.
	DemandCV float64
	// BatchMean is the typical batch size for open-loop (light) users.
	BatchMean int
	// Feedback marks the heavy user's closed-loop behaviour: submit a
	// new batch whenever fewer than TargetInSystem of his jobs remain.
	Feedback bool
	// TargetInSystem is the queue level the feedback user maintains.
	TargetInSystem int
	// FeedbackBatch is the batch size for feedback submissions.
	FeedbackBatch int
}

// Heavy reports whether the profile is a heavy user (feedback-driven).
func (p UserProfile) Heavy() bool { return p.Feedback }

// Table1Profiles returns the paper's user population.
func Table1Profiles() []UserProfile {
	return []UserProfile{
		{
			Name: "A", Jobs: 690, MeanDemand: duration(6.2), DemandCV: 2.0,
			Feedback: true, TargetInSystem: 32, FeedbackBatch: 20, BatchMean: 20,
		},
		{Name: "B", Jobs: 138, MeanDemand: duration(2.5), DemandCV: 1.2, BatchMean: 5},
		{Name: "C", Jobs: 39, MeanDemand: duration(2.6), DemandCV: 1.2, BatchMean: 5},
		{Name: "D", Jobs: 40, MeanDemand: duration(0.7), DemandCV: 1.0, BatchMean: 5},
		{Name: "E", Jobs: 11, MeanDemand: duration(1.7), DemandCV: 1.0, BatchMean: 3},
	}
}

func duration(hours float64) time.Duration {
	return time.Duration(hours * float64(time.Hour))
}

// Job is one background job of the trace.
type Job struct {
	// ID is unique within the workload.
	ID string
	// User owns the job.
	User string
	// Demand is the CPU time the job needs.
	Demand time.Duration
	// Submit is the arrival time (zero for feedback jobs, which arrive
	// when the feedback loop fires).
	Submit time.Time
	// CheckpointBytes is the size of the job's checkpoint file. The
	// paper's mean is ½ MB.
	CheckpointBytes int64
	// SyscallRate is remote system calls per second of remote CPU.
	SyscallRate float64
}

// Config tunes workload generation.
type Config struct {
	// Start and End bound the observation window.
	Start time.Time
	End   time.Time
	// Profiles is the user population (default Table1Profiles).
	Profiles []UserProfile
	// MeanCheckpointBytes is the mean checkpoint file size (paper: ½ MB).
	MeanCheckpointBytes int64
	// MeanSyscallRate is the mean remote-syscall rate per second of
	// remote CPU. Calibrated so the overall leverage lands near the
	// paper's ≈1300: at 10 ms per call, leverage 1300 needs roughly
	// (3600/1300 - transfer) ≈ 0.2–2.5 s of syscall cost per CPU-hour.
	MeanSyscallRate float64
}

func (c *Config) sanitize() {
	if c.Profiles == nil {
		c.Profiles = Table1Profiles()
	}
	if c.End.IsZero() {
		c.End = c.Start.Add(30 * 24 * time.Hour)
	}
	if c.MeanCheckpointBytes <= 0 {
		c.MeanCheckpointBytes = 512 * 1024
	}
	if c.MeanSyscallRate <= 0 {
		c.MeanSyscallRate = 0.012 // ≈43 calls per CPU-hour
	}
}

// Workload is a generated month of job arrivals.
type Workload struct {
	// Open is the open-loop arrival list, sorted by submit time.
	Open []Job
	// Feedback holds the closed-loop streams (the heavy users).
	Feedback []*FeedbackStream
	// Profiles echoes the population used.
	Profiles []UserProfile
}

// Generate rolls a workload from the config and seed stream.
func Generate(cfg Config, rng *sim.RNG) *Workload {
	cfg.sanitize()
	w := &Workload{Profiles: cfg.Profiles}
	span := cfg.End.Sub(cfg.Start)
	jobNum := 0
	newJob := func(p UserProfile, submit time.Time) Job {
		jobNum++
		demand := time.Duration(rng.LogNormal(
			float64(p.MeanDemand), p.DemandCV))
		if demand < time.Minute {
			demand = time.Minute
		}
		ckpt := int64(rng.LogNormal(float64(cfg.MeanCheckpointBytes), 0.6))
		if ckpt < 16*1024 {
			ckpt = 16 * 1024
		}
		rate := rng.LogNormal(cfg.MeanSyscallRate, 1.0)
		return Job{
			ID:              fmt.Sprintf("%s-%04d", p.User(), jobNum),
			User:            p.Name,
			Demand:          demand,
			Submit:          submit,
			CheckpointBytes: ckpt,
			SyscallRate:     rate,
		}
	}
	for _, p := range cfg.Profiles {
		if p.Feedback {
			fs := &FeedbackStream{
				user:      p.Name,
				remaining: p.Jobs,
				batch:     p.FeedbackBatch,
				target:    p.TargetInSystem,
				sessions:  sessionSchedule(cfg.Start, cfg.End, rng),
				mk: func(p UserProfile) func(now time.Time) Job {
					return func(now time.Time) Job { return newJob(p, now) }
				}(p),
			}
			w.Feedback = append(w.Feedback, fs)
			continue
		}
		// Light users: batches at uniformly random instants, biased into
		// working hours by resampling (batches arrive when people are at
		// their desks).
		left := p.Jobs
		for left > 0 {
			size := p.BatchMean/2 + rng.Intn(p.BatchMean+1)
			if size < 1 {
				size = 1
			}
			if size > left {
				size = left
			}
			at := cfg.Start.Add(time.Duration(rng.Float64() * float64(span)))
			for tries := 0; tries < 4 && !workHours(at); tries++ {
				at = cfg.Start.Add(time.Duration(rng.Float64() * float64(span)))
			}
			for i := 0; i < size; i++ {
				w.Open = append(w.Open, newJob(p, at))
			}
			left -= size
		}
	}
	sort.SliceStable(w.Open, func(i, j int) bool {
		return w.Open[i].Submit.Before(w.Open[j].Submit)
	})
	return w
}

// workHours reports whether t is a weekday between 09:00 and 18:00.
func workHours(t time.Time) bool {
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	return t.Hour() >= 9 && t.Hour() < 18
}

// User returns the profile's user name; defined so newJob can use
// p.User() uniformly with Job.User.
func (p UserProfile) User() string { return p.Name }

// sessionSchedule alternates submission-active and pause periods over
// the window, starting active. The heavy user submits in episodes —
// Figure 3's queue stays above 30 "for long periods" rather than
// front-loading the whole demand — with active stretches of ≈1.5 days
// separated by ≈1-day pauses.
func sessionSchedule(start, end time.Time, rng *sim.RNG) []time.Time {
	var flips []time.Time
	now := start
	active := true
	for now.Before(end) {
		var d time.Duration
		if active {
			d = time.Duration(rng.Exp(36)) * time.Hour // mean 1.5 days on
		} else {
			d = time.Duration(rng.Exp(30)) * time.Hour // mean 1.25 days off
		}
		if d < 2*time.Hour {
			d = 2 * time.Hour
		}
		now = now.Add(d)
		if now.Before(end) {
			flips = append(flips, now)
		}
		active = !active
	}
	return flips
}

// FeedbackStream is the heavy user's closed submission loop.
type FeedbackStream struct {
	user      string
	remaining int
	batch     int
	target    int
	// sessions are the instants the stream toggles between submitting
	// and pausing; it starts in the submitting state. Empty means always
	// active.
	sessions []time.Time
	mk       func(now time.Time) Job
}

// Active reports whether the stream is in a submission session at t.
func (f *FeedbackStream) Active(t time.Time) bool {
	active := true
	for _, flip := range f.sessions {
		if flip.After(t) {
			break
		}
		active = !active
	}
	return active
}

// User returns the stream's owner.
func (f *FeedbackStream) User() string { return f.user }

// Remaining returns how many jobs the stream can still submit.
func (f *FeedbackStream) Remaining() int { return f.remaining }

// Take returns the next batch if the user's in-system count has fallen
// below target and jobs remain; otherwise nil. now stamps the arrivals.
func (f *FeedbackStream) Take(now time.Time, inSystem int) []Job {
	if f.remaining <= 0 || inSystem >= f.target || !f.Active(now) {
		return nil
	}
	n := f.batch
	if n > f.remaining {
		n = f.remaining
	}
	// Top up to the target if a single batch is not enough.
	if deficit := f.target - inSystem; deficit > n {
		n = deficit
		if n > f.remaining {
			n = f.remaining
		}
	}
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, f.mk(now))
	}
	f.remaining -= n
	return jobs
}

// TotalJobs returns the workload's total job count (open + feedback).
func (w *Workload) TotalJobs() int {
	n := len(w.Open)
	for _, f := range w.Feedback {
		n += f.remaining
	}
	return n
}
