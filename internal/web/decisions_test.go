package web

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"condor/internal/coordinator"
	"condor/internal/decision"
)

// TestAPIDecisionsJSONShape pins the /api/decisions wire format to the
// coordinator's own /decisions: lowercase cycles/total/dropped keys,
// decodable as a decision.Page — the dashboard JS reads the same keys
// from either origin, so a capitalized proto-struct leak here renders
// the drill-down permanently empty.
func TestAPIDecisionsJSONShape(t *testing.T) {
	rec := decision.NewRecorder(8)
	coord, err := coordinator.New(coordinator.Config{
		PollInterval: time.Hour,
		Decisions:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	b := decision.NewBuilder(1, time.Unix(0, 0))
	b.Begin("updown", 1)
	b.Reject(decision.Rejection{Station: "ws0", Predicate: "min-disk",
		Threshold: "disk >= 1048576 bytes", Observed: "512 bytes free"})
	rec.Record(b.Done())

	s, err := NewServer(Config{CoordinatorAddr: coord.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/api/decisions?station=ws0", nil))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	body := w.Body.String()
	for _, key := range []string{`"cycles"`, `"total"`} {
		if !strings.Contains(body, key) {
			t.Errorf("reply missing lowercase %s key:\n%s", key, body)
		}
	}
	var page decision.Page
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Cycles) != 1 {
		t.Fatalf("page = %+v, want the one recorded cycle", page)
	}
	if r := page.Cycles[0].Rejections; len(r) != 1 || r[0].Predicate != "min-disk" {
		t.Fatalf("rejections %+v did not survive the round trip", page.Cycles[0].Rejections)
	}

	// The empty-filter miss must serve "cycles": [], not null — the JS
	// maps over it unconditionally.
	w2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(w2, httptest.NewRequest("GET", "/api/decisions?station=nosuch", nil))
	if !strings.Contains(w2.Body.String(), `"cycles":[]`) {
		t.Fatalf("no-match reply serves null cycles:\n%s", w2.Body.String())
	}
}
