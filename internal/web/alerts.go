package web

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"condor/internal/telemetry"
)

// Declarative alert rules, evaluated server-side on every aggregation
// tick. A rule is one threshold over one field of the aggregated pool
// snapshot:
//
//	<name>: <field> <op> <value> [for <duration>]
//
// e.g.
//
//	degraded-mode: degraded > 0
//	quarantine-spike: quarantined > 2
//	stale-cycle: cycle_lag > 3
//	journal-errors: journal_errors > 0 for 10s
//
// Ops are > >= < <= == !=. Values are plain numbers; duration-valued
// fields (cycle_age) compare in seconds, so "cycle_age > 360" also
// works — but cycle_lag (cycle age divided by the coordinator's poll
// interval) is the portable spelling of "the cycle is 3× overdue".
// The optional "for" clause debounces: the condition must hold
// continuously that long before the rule fires. Transitions publish
// firing/resolved events on the bus (kind "alert-firing" /
// "alert-resolved"), tick the condor_web_alert_transitions_total
// counter, and move the condor_web_alerts_firing gauge; the dashboard
// renders firing rules as a banner.

// Alert telemetry.
var (
	mAlertsFiring = telemetry.NewGauge("condor_web_alerts_firing",
		"Alert rules currently in the firing state.")
	mAlertTransitions = telemetry.NewCounterVec("condor_web_alert_transitions_total",
		"Alert rule state transitions (fired + resolved), by rule name.", "rule")
)

// Rule is one parsed alert rule.
type Rule struct {
	Name  string        `json:"name"`
	Field string        `json:"field"`
	Op    string        `json:"op"`
	Value float64       `json:"value"`
	For   time.Duration `json:"for,omitempty"`
}

// Expr renders the rule's condition back as text.
func (r Rule) Expr() string {
	s := fmt.Sprintf("%s %s %g", r.Field, r.Op, r.Value)
	if r.For > 0 {
		s += " for " + r.For.String()
	}
	return s
}

// DefaultRules are the rules condor-web evaluates when none are
// configured: the conditions §5-era operators actually paged on.
var DefaultRules = []string{
	"degraded-mode: degraded > 0",
	"quarantine-spike: quarantined > 2",
	"stale-cycle: cycle_lag > 3",
	"journal-errors: journal_errors > 0",
	"coordinator-unready: unready > 0 for 5s",
}

// ParseRule parses "name: field op value [for duration]".
func ParseRule(s string) (Rule, error) {
	var r Rule
	name, expr, ok := strings.Cut(s, ":")
	if !ok {
		return r, fmt.Errorf("web: rule %q: want \"name: field op value\"", s)
	}
	r.Name = strings.TrimSpace(name)
	if r.Name == "" {
		return r, fmt.Errorf("web: rule %q: empty name", s)
	}
	fields := strings.Fields(expr)
	if len(fields) != 3 && len(fields) != 5 {
		return r, fmt.Errorf("web: rule %q: want \"field op value [for duration]\"", s)
	}
	r.Field = fields[0]
	r.Op = fields[1]
	switch r.Op {
	case ">", ">=", "<", "<=", "==", "!=":
	default:
		return r, fmt.Errorf("web: rule %q: unknown op %q", s, r.Op)
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return r, fmt.Errorf("web: rule %q: bad value %q", s, fields[2])
	}
	r.Value = v
	if len(fields) == 5 {
		if fields[3] != "for" {
			return r, fmt.Errorf("web: rule %q: want \"for <duration>\", got %q", s, fields[3])
		}
		d, err := time.ParseDuration(fields[4])
		if err != nil {
			return r, fmt.Errorf("web: rule %q: bad duration %q", s, fields[4])
		}
		r.For = d
	}
	return r, nil
}

// ParseRules parses a rule list, rejecting duplicate names.
func ParseRules(specs []string) ([]Rule, error) {
	rules := make([]Rule, 0, len(specs))
	seen := map[string]bool{}
	for _, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("web: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		rules = append(rules, r)
	}
	return rules, nil
}

// KnownRuleFields is every field name Refresh publishes for rule
// evaluation — the authoritative vocabulary a rule may reference. Eval
// scores absent fields as 0, so before field validation a typo like
// "qurantined > 2" parsed fine and then silently never fired; now it is
// rejected at startup.
var KnownRuleFields = []string{
	"claimed", "coord_unreachable", "cycle_age", "cycle_lag", "cycles",
	"degraded", "grants", "healthy", "idle", "jobs", "journal_errors",
	"owner", "preempts", "quarantined", "running", "stations",
	"suspect", "suspended", "unready", "utilization", "waiting",
}

// ValidateRuleFields rejects rules referencing fields the aggregator
// never publishes, naming the offending rule so the operator can fix
// the flag rather than discover a silent never-firing alert.
func ValidateRuleFields(rules []Rule) error {
	known := make(map[string]bool, len(KnownRuleFields))
	for _, f := range KnownRuleFields {
		known[f] = true
	}
	for _, r := range rules {
		if !known[r.Field] {
			return fmt.Errorf("web: rule %q: unknown field %q (known fields: %s)",
				r.Name+": "+r.Expr(), r.Field, strings.Join(KnownRuleFields, ", "))
		}
	}
	return nil
}

// holds evaluates the rule's comparison.
func (r Rule) holds(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Value
	case ">=":
		return v >= r.Value
	case "<":
		return v < r.Value
	case "<=":
		return v <= r.Value
	case "==":
		return v == r.Value
	case "!=":
		return v != r.Value
	}
	return false
}

// AlertStatus is one rule's current state, as served on /api/overview.
type AlertStatus struct {
	Rule   string `json:"rule"`
	Expr   string `json:"expr"`
	Firing bool   `json:"firing"`
	// Value is the field's value at the last evaluation (absent fields
	// evaluate as 0).
	Value float64 `json:"value"`
	// Since is when the rule entered its current firing state (zero
	// while it has never fired).
	Since time.Time `json:"since,omitempty"`
}

// Alerts evaluates a rule set against successive snapshots.
type Alerts struct {
	rules []Rule
	bus   *telemetry.Bus

	// Per-rule evaluation state, parallel to rules.
	firing     []bool
	since      []time.Time
	holdsSince []time.Time
	counters   []*telemetry.Counter
}

// NewAlerts compiles a rule set publishing transitions onto bus.
func NewAlerts(rules []Rule, bus *telemetry.Bus) *Alerts {
	a := &Alerts{
		rules:      rules,
		bus:        bus,
		firing:     make([]bool, len(rules)),
		since:      make([]time.Time, len(rules)),
		holdsSince: make([]time.Time, len(rules)),
		counters:   make([]*telemetry.Counter, len(rules)),
	}
	for i, r := range rules {
		a.counters[i] = mAlertTransitions.With(r.Name)
	}
	return a
}

// Eval applies one snapshot's field values, returning every rule's
// status and publishing firing/resolved transitions.
func (a *Alerts) Eval(now time.Time, fields map[string]float64) []AlertStatus {
	out := make([]AlertStatus, len(a.rules))
	nFiring := 0
	for i, r := range a.rules {
		v := fields[r.Field]
		holds := r.holds(v)
		if holds {
			if a.holdsSince[i].IsZero() {
				a.holdsSince[i] = now
			}
		} else {
			a.holdsSince[i] = time.Time{}
		}
		want := holds && now.Sub(a.holdsSince[i]) >= r.For
		if want != a.firing[i] {
			a.firing[i] = want
			a.since[i] = now
			a.counters[i].Inc()
			kind := "alert-resolved"
			if want {
				kind = "alert-firing"
			}
			a.bus.Publish(telemetry.BusEvent{
				Source: "web", Kind: kind,
				Detail: fmt.Sprintf("%s: %s (value %g)", r.Name, r.Expr(), v),
			})
		}
		if a.firing[i] {
			nFiring++
		}
		out[i] = AlertStatus{
			Rule: r.Name, Expr: r.Expr(), Firing: a.firing[i],
			Value: v, Since: a.since[i],
		}
	}
	mAlertsFiring.Set(int64(nFiring))
	sort.SliceStable(out, func(i, j int) bool {
		// Firing rules first, so the banner reads top-down.
		if out[i].Firing != out[j].Firing {
			return out[i].Firing
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}
