package web

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"condor/internal/eventlog"
	"condor/internal/proto"
	"condor/internal/telemetry"
	"condor/internal/wire"
)

// Client is the dashboard's aggregation client: pooled, deadline-bounded
// wire RPCs against the coordinator (pool table, accounting, decision
// history) and the stations it names (queue contents), plus HTTP
// scrapes of any daemon's /metrics page through the telemetry text
// parser. condor-web's refresh loop and condor-status -watch both ride
// it instead of paying a fresh dial per refresh.
type Client struct {
	coord string
	pool  *wire.ClientPool
	http  *http.Client
	// RPCTimeout bounds one aggregation RPC end-to-end (default 5s).
	RPCTimeout time.Duration
}

// NewClient creates a client aggregating from the coordinator at
// coordAddr (its wire address, not its -http one).
func NewClient(coordAddr string) *Client {
	return &Client{
		coord: coordAddr,
		pool: wire.NewClientPool(wire.PoolConfig{
			DialTimeout:  3 * time.Second,
			WriteTimeout: 10 * time.Second,
			FrameTimeout: 10 * time.Second,
			IdleTimeout:  5 * time.Minute,
		}),
		http:       &http.Client{Timeout: 10 * time.Second},
		RPCTimeout: 5 * time.Second,
	}
}

// Close releases the pooled connections.
func (c *Client) Close() { c.pool.Close() }

// CoordinatorAddr returns the coordinator wire address this client
// aggregates from.
func (c *Client) CoordinatorAddr() string { return c.coord }

func (c *Client) call(ctx context.Context, addr string, msg any) (any, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	return c.pool.CallRetry(ctx, addr, msg)
}

func (c *Client) timeout() time.Duration {
	if c.RPCTimeout > 0 {
		return c.RPCTimeout
	}
	return 5 * time.Second
}

// PoolStatus fetches the coordinator's pool table and self-description.
func (c *Client) PoolStatus(ctx context.Context) (proto.PoolStatusReply, error) {
	reply, err := c.call(ctx, c.coord, proto.PoolStatusRequest{})
	if err != nil {
		return proto.PoolStatusReply{}, err
	}
	sr, ok := reply.(proto.PoolStatusReply)
	if !ok {
		return proto.PoolStatusReply{}, fmt.Errorf("web: unexpected pool status reply %T", reply)
	}
	return sr, nil
}

// Accounting fetches the coordinator's ledgers.
func (c *Client) Accounting(ctx context.Context) (proto.AccountingReply, error) {
	reply, err := c.call(ctx, c.coord, proto.AccountingRequest{})
	if err != nil {
		return proto.AccountingReply{}, err
	}
	ar, ok := reply.(proto.AccountingReply)
	if !ok {
		return proto.AccountingReply{}, fmt.Errorf("web: unexpected accounting reply %T", reply)
	}
	return ar, nil
}

// History fetches the coordinator's recent decision events.
func (c *Client) History(ctx context.Context, limit int) ([]eventlog.Event, error) {
	reply, err := c.call(ctx, c.coord, proto.HistoryRequest{Limit: limit})
	if err != nil {
		return nil, err
	}
	hr, ok := reply.(proto.HistoryReply)
	if !ok {
		return nil, fmt.Errorf("web: unexpected history reply %T", reply)
	}
	return hr.Events, nil
}

// Decisions fetches the coordinator's scheduling decision audits,
// filtered server-side (see proto.DecisionsRequest for the filter
// semantics).
func (c *Client) Decisions(ctx context.Context, job, station string, cycle int64, last int) (proto.DecisionsReply, error) {
	reply, err := c.call(ctx, c.coord, proto.DecisionsRequest{
		Job: job, Station: station, Cycle: cycle, Last: last,
	})
	if err != nil {
		return proto.DecisionsReply{}, err
	}
	dr, ok := reply.(proto.DecisionsReply)
	if !ok {
		return proto.DecisionsReply{}, fmt.Errorf("web: unexpected decisions reply %T", reply)
	}
	return dr, nil
}

// StationQueue fetches one station's job queue by its wire address.
func (c *Client) StationQueue(ctx context.Context, addr string) (proto.QueueReply, error) {
	reply, err := c.call(ctx, addr, proto.QueueRequest{})
	if err != nil {
		return proto.QueueReply{}, err
	}
	qr, ok := reply.(proto.QueueReply)
	if !ok {
		return proto.QueueReply{}, fmt.Errorf("web: unexpected queue reply %T", reply)
	}
	return qr, nil
}

// Jobs aggregates every station's queue into one table, stations in
// the given pool-table order. Unreachable stations are skipped (their
// jobs will reappear next refresh); the returned error is non-nil only
// when every station failed.
func (c *Client) Jobs(ctx context.Context, stations []proto.StationInfo) ([]JobRow, error) {
	var rows []JobRow
	var firstErr error
	failed := 0
	for _, s := range stations {
		qr, err := c.StationQueue(ctx, s.Addr)
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("station %s: %w", s.Name, err)
			}
			continue
		}
		for _, j := range qr.Jobs {
			rows = append(rows, JobRow{Station: qr.Station, Status: j})
		}
	}
	if failed > 0 && failed == len(stations) && firstErr != nil {
		return nil, firstErr
	}
	return rows, nil
}

// JobRow is one aggregated job-table row.
type JobRow struct {
	Station string          `json:"station"`
	Status  proto.JobStatus `json:"status"`
}

// ScrapeMetrics fetches and parses one daemon's /metrics page. base is
// a host:port or URL of a telemetry -http listener.
func (c *Client) ScrapeMetrics(ctx context.Context, base string) (*telemetry.ParsedPage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, httpURL(base, "/metrics"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("web: scrape %s: %s", base, resp.Status)
	}
	return telemetry.ParseText(io.LimitReader(resp.Body, 32<<20))
}

// Healthz probes one daemon's /healthz endpoint: ready, and if not, the
// failing checks from the 503 body.
func (c *Client) Healthz(ctx context.Context, base string) (ready bool, failures []string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, httpURL(base, "/healthz"), nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusOK {
		return true, nil, nil
	}
	// The 503 body is "not ready\n" followed by one "name: reason" line
	// per failing check.
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line == "not ready" {
			continue
		}
		failures = append(failures, line)
	}
	return false, failures, nil
}

// httpURL normalizes "host:port" or "http://host:port" plus a path.
func httpURL(base, path string) string {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/") + path
}
