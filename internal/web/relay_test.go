package web

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"condor/internal/telemetry"
)

// startUpstream serves an /events SSE stream for bus on ln, exactly as a
// daemon's -http listener would.
func startUpstream(ln net.Listener, bus *telemetry.Bus) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/events", telemetry.SSEHandler(bus, 0))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return srv
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func nextEvent(t *testing.T, sub *telemetry.Subscriber) telemetry.BusEvent {
	t.Helper()
	cancel := make(chan struct{})
	timer := time.AfterFunc(10*time.Second, func() { close(cancel) })
	defer timer.Stop()
	ev, ok := sub.Next(cancel)
	if !ok {
		t.Fatal("timed out waiting for a relayed event")
	}
	return ev
}

// TestRelayReconnect kills the upstream SSE server mid-stream, restarts
// it on the same port, and asserts the relay resumes after its backoff
// and that local subscribers see every event exactly once with locally
// reassigned, strictly increasing sequence numbers.
func TestRelayReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	up1 := telemetry.NewBus()
	srv1 := startUpstream(ln, up1)

	local := telemetry.NewBus()
	sub := local.Subscribe(0)
	defer sub.Close()

	relay := NewRelay(addr, local)
	relay.Start()
	defer relay.Close()

	// The SSE handler subscribes at request time, so wait for the relay's
	// stream to attach before publishing the first batch.
	waitFor(t, "relay to connect to the first upstream", func() bool {
		return up1.Subscribers() > 0
	})
	for i := 1; i <= 3; i++ {
		up1.Publish(telemetry.BusEvent{
			Source: "coord", Kind: "grant", Detail: fmt.Sprintf("batch1-%d", i),
		})
	}
	var got []telemetry.BusEvent
	for i := 0; i < 3; i++ {
		got = append(got, nextEvent(t, sub))
	}

	// Kill the upstream mid-stream: closes the listener and the open
	// stream connection.
	killedAt := time.Now()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same port with a fresh bus (an upstream restart
	// loses its in-memory bus exactly like this).
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	up2 := telemetry.NewBus()
	srv2 := startUpstream(ln2, up2)
	defer srv2.Close()

	waitFor(t, "relay to reconnect after restart", func() bool {
		return up2.Subscribers() > 0
	})
	// The first batch delivered events, so the retry delay was reset to
	// its 500ms floor; reconnection before that means no backoff at all.
	if since := time.Since(killedAt); since < 400*time.Millisecond {
		t.Errorf("relay reconnected %v after the kill, faster than the 500ms backoff floor", since)
	}
	for i := 1; i <= 3; i++ {
		up2.Publish(telemetry.BusEvent{
			Source: "coord", Kind: "grant", Detail: fmt.Sprintf("batch2-%d", i),
		})
	}
	for i := 0; i < 3; i++ {
		got = append(got, nextEvent(t, sub))
	}

	// Every event exactly once, in order, across the restart.
	want := []string{"batch1-1", "batch1-2", "batch1-3", "batch2-1", "batch2-2", "batch2-3"}
	if len(got) != len(want) {
		t.Fatalf("relayed %d events, want %d", len(got), len(want))
	}
	for i, ev := range got {
		if ev.Detail != want[i] {
			t.Errorf("event %d: detail %q, want %q", i, ev.Detail, want[i])
		}
	}
	// The local bus reassigns sequence numbers: they must be unique and
	// strictly increasing even though both upstream buses started at 1.
	seen := map[uint64]bool{}
	for i, ev := range got {
		if seen[ev.Seq] {
			t.Errorf("duplicate local Seq %d at event %d", ev.Seq, i)
		}
		seen[ev.Seq] = true
		if i > 0 && ev.Seq <= got[i-1].Seq {
			t.Errorf("Seq not increasing: event %d has %d after %d", i, ev.Seq, got[i-1].Seq)
		}
	}
	if n := sub.Dropped(); n != 0 {
		t.Errorf("local subscriber dropped %d events", n)
	}
}
