package web

import (
	"sort"
	"sync"
	"time"
)

// In-memory sparkline history. The dashboard's charts (the live
// counterparts of the paper's Figure 5 utilization profile and Figure 9
// leverage plots) are fed from bounded rings sampled on every
// aggregation tick — no external time-series database, no unbounded
// growth, and a restart simply starts a fresh window, the same contract
// the accounting sampler follows.

// Point is one sample of one series.
type Point struct {
	At time.Time `json:"at"`
	V  float64   `json:"v"`
}

// Ring is a fixed-capacity time series. Safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Point
	next int
	n    int
}

// NewRing returns a ring keeping the most recent capacity points.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Ring{buf: make([]Point, capacity)}
}

// Observe appends one sample, evicting the oldest at capacity.
func (r *Ring) Observe(at time.Time, v float64) {
	r.mu.Lock()
	r.buf[r.next] = Point{At: at, V: v}
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained points, oldest first.
func (r *Ring) Snapshot() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// DefaultSeriesCapacity is the per-series ring length: at the default
// 2-second refresh this is 20 minutes of history per chart.
const DefaultSeriesCapacity = 600

// SeriesSet is a named collection of rings sharing one capacity.
type SeriesSet struct {
	mu  sync.Mutex
	m   map[string]*Ring
	cap int
}

// NewSeriesSet creates an empty set whose rings hold capacity points.
func NewSeriesSet(capacity int) *SeriesSet {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &SeriesSet{m: make(map[string]*Ring), cap: capacity}
}

// Observe samples one named series, creating its ring on first use.
func (s *SeriesSet) Observe(name string, at time.Time, v float64) {
	s.mu.Lock()
	r, ok := s.m[name]
	if !ok {
		r = NewRing(s.cap)
		s.m[name] = r
	}
	s.mu.Unlock()
	r.Observe(at, v)
}

// Snapshot returns every series, oldest point first.
func (s *SeriesSet) Snapshot() map[string][]Point {
	s.mu.Lock()
	rings := make(map[string]*Ring, len(s.m))
	for name, r := range s.m {
		rings[name] = r
	}
	s.mu.Unlock()
	out := make(map[string][]Point, len(rings))
	for name, r := range rings {
		out[name] = r.Snapshot()
	}
	return out
}

// Names lists the series, sorted.
func (s *SeriesSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
