package web

import (
	"context"
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"condor/internal/accounting"
	"condor/internal/decision"
	"condor/internal/eventlog"
	"condor/internal/proto"
	"condor/internal/telemetry"
	"condor/internal/trace"
)

// Server is condor-web: the pool's live dashboard daemon. It polls the
// coordinator (pool table, accounting, decision history) and the
// stations (queues) on a short refresh interval, keeps sparkline
// history in bounded rings, evaluates the alert rules, and serves one
// embedded HTML page plus a JSON API and an SSE event stream. It holds
// no state a restart cannot rebuild — the coordinator stays the system
// of record, exactly as the paper's central coordinator is the only
// machine that knows the whole pool.
type Server struct {
	cfg    Config
	client *Client
	alerts *Alerts
	series *SeriesSet
	bus    *telemetry.Bus
	mux    *http.ServeMux

	mu         sync.RWMutex
	overview   Overview
	jobs       []JobRow
	lastFields map[string]float64
	lastOK     time.Time
	// Cycle-staleness tracking: when the coordinator's cycle counter
	// last moved, as observed by this aggregator.
	lastCycles  uint64
	lastCycleAt time.Time
	// Per-policy decide-latency baselines for delta-rate sampling.
	lastDecide map[string]decideTotals

	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	wg   sync.WaitGroup
}

type decideTotals struct {
	sum   float64
	count float64
}

// Config configures a dashboard server.
type Config struct {
	// CoordinatorAddr is the coordinator's wire address (required).
	CoordinatorAddr string
	// Refresh is the aggregation interval (default 2s).
	Refresh time.Duration
	// CycleInterval is the coordinator's allocation-cycle interval; the
	// cycle_lag alert field is cycle age divided by it (default 2m, the
	// coordinator's own default).
	CycleInterval time.Duration
	// Rules are the alert rules; nil means DefaultRules.
	Rules []Rule
	// Scrapes are extra operational-listener bases (host:port of -http
	// listeners) whose /metrics pages feed the decide-latency series and
	// whose /healthz states appear on the dashboard. Typically the
	// coordinator's -http address.
	Scrapes []string
	// SeriesCapacity is the per-chart ring length (default
	// DefaultSeriesCapacity).
	SeriesCapacity int
	// Bus carries live events to SSE clients; alert transitions are
	// published onto it too (default telemetry.Events, the process bus —
	// in-process pools stream their own events through it for free).
	Bus *telemetry.Bus
	// HistoryLimit caps /api/events responses (default 200).
	HistoryLimit int
}

// Overview is the aggregated pool snapshot served on /api/overview.
type Overview struct {
	GeneratedAt     time.Time             `json:"generatedAt"`
	CoordinatorAddr string                `json:"coordinatorAddr"`
	Coordinator     proto.CoordinatorInfo `json:"coordinator"`
	Stations        []StationView         `json:"stations"`
	// States and Healths count stations by scheduling state / health
	// grade.
	States  map[string]int `json:"states"`
	Healths map[string]int `json:"healths"`
	// Fields is every alert-rule field's current value — the same
	// numbers the rules are evaluated over, so the dashboard can show
	// "what would this rule see right now".
	Fields map[string]float64 `json:"fields"`
	Alerts []AlertStatus      `json:"alerts"`
	// Daemons is the scraped daemons' readiness (one row per Scrapes
	// entry).
	Daemons []DaemonHealth `json:"daemons,omitempty"`
	// Series is the sparkline history, oldest point first.
	Series map[string][]Point `json:"series"`
	// LastError is the most recent aggregation failure ("" when the last
	// refresh succeeded).
	LastError string `json:"lastError,omitempty"`
}

// StationView is one pool-table row as the dashboard renders it.
type StationView struct {
	Name          string    `json:"name"`
	Addr          string    `json:"addr"`
	State         string    `json:"state"`
	Health        string    `json:"health"`
	HealthSince   time.Time `json:"healthSince,omitempty"`
	HealthReason  string    `json:"healthReason,omitempty"`
	Suspicion     float64   `json:"suspicion"`
	WaitingJobs   int       `json:"waitingJobs"`
	RunningJobs   int       `json:"runningJobs"`
	ForeignJob    string    `json:"foreignJob,omitempty"`
	ScheduleIndex float64   `json:"scheduleIndex"`
	IndexHistory  []float64 `json:"indexHistory,omitempty"`
	LastPoll      time.Time `json:"lastPoll"`
}

// DaemonHealth is one scraped daemon's /healthz state.
type DaemonHealth struct {
	Base     string   `json:"base"`
	Ready    bool     `json:"ready"`
	Failures []string `json:"failures,omitempty"`
	Error    string   `json:"error,omitempty"`
}

// StationDetail is the per-station drill-down served on /api/station.
type StationDetail struct {
	Station StationView     `json:"station"`
	Jobs    []JobStatusView `json:"jobs"`
	// Events is the station's recent coordinator-side event trail —
	// grants, health transitions, flaps — oldest first.
	Events []eventlog.Event `json:"events"`
}

// JobStatusView is one job row with its home station attached.
type JobStatusView struct {
	Station string          `json:"station"`
	Job     proto.JobStatus `json:"job"`
}

// Dashboard telemetry.
var (
	mRefreshes = telemetry.NewCounter("condor_web_refresh_total",
		"Dashboard aggregation refreshes attempted.")
	mRefreshErrors = telemetry.NewCounter("condor_web_refresh_errors_total",
		"Dashboard aggregation refreshes that failed to reach the coordinator.")
)

//go:embed assets
var assets embed.FS

// NewServer builds a dashboard server; call Listen (or mount Handler on
// a listener of your own) and Start to begin aggregating.
func NewServer(cfg Config) (*Server, error) {
	if cfg.CoordinatorAddr == "" {
		return nil, fmt.Errorf("web: CoordinatorAddr required")
	}
	if cfg.Refresh <= 0 {
		cfg.Refresh = 2 * time.Second
	}
	if cfg.CycleInterval <= 0 {
		cfg.CycleInterval = 2 * time.Minute
	}
	if cfg.Bus == nil {
		cfg.Bus = telemetry.Events
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = 200
	}
	if cfg.Rules == nil {
		rules, err := ParseRules(DefaultRules)
		if err != nil {
			return nil, err
		}
		cfg.Rules = rules
	}
	// Fail fast on rules over fields Refresh never publishes — Eval
	// evaluates absent fields as 0, so an unvalidated typo becomes an
	// alert that can never fire.
	if err := ValidateRuleFields(cfg.Rules); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		client:     NewClient(cfg.CoordinatorAddr),
		alerts:     NewAlerts(cfg.Rules, cfg.Bus),
		series:     NewSeriesSet(cfg.SeriesCapacity),
		bus:        cfg.Bus,
		lastFields: map[string]float64{},
		lastDecide: map[string]decideTotals{},
		done:       make(chan struct{}),
	}
	s.lastCycleAt = time.Now()
	s.mux = s.buildMux()
	return s, nil
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	page, err := fs.Sub(assets, "assets")
	if err != nil {
		panic(err) // embed layout is fixed at build time
	}
	mux.Handle("/", http.FileServer(http.FS(page)))
	mux.Handle("/events", telemetry.SSEHandler(s.bus, 0))
	mux.HandleFunc("/api/overview", s.handleOverview)
	mux.HandleFunc("/api/station", s.handleStation)
	mux.HandleFunc("/api/jobs", s.handleJobs)
	mux.HandleFunc("/api/events", s.handleEvents)
	mux.HandleFunc("/api/decisions", s.handleDecisions)
	// The dashboard daemon's own operational surface, plus local views of
	// the shared trace recorder and accounting ledger (live when the
	// daemons share this process; the coordinator's own -http listener
	// serves the authoritative ones otherwise).
	mux.Handle("/metrics", telemetry.Default.Handler())
	mux.Handle("/traces", trace.Handler(trace.Default))
	mux.Handle("/accounting", accounting.Handler())
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Handler returns the dashboard's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the aggregation loop.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.cfg.Refresh)
		defer t.Stop()
		s.refresh()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				s.refresh()
			}
		}
	}()
}

// Listen binds addr (port 0 picks a free one) and serves the dashboard;
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("web: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close stops the aggregation loop, the listener, and the client pool.
func (s *Server) Close() error {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.wg.Wait()
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	s.client.Close()
	return err
}

// Refresh runs one synchronous aggregation tick (the loop calls this on
// every interval; tests call it directly).
func (s *Server) Refresh(ctx context.Context) error {
	mRefreshes.Inc()
	now := time.Now()
	ps, err := s.client.PoolStatus(ctx)
	if err != nil {
		mRefreshErrors.Inc()
		s.mu.Lock()
		fields := copyFields(s.lastFields)
		fields["coord_unreachable"] = 1
		s.lastFields = fields
		alerts := s.alerts.Eval(now, fields)
		s.overview.GeneratedAt = now
		s.overview.Fields = fields
		s.overview.Alerts = alerts
		s.overview.LastError = err.Error()
		s.mu.Unlock()
		return err
	}

	jobs, jobsErr := s.client.Jobs(ctx, ps.Stations)
	daemons := s.probeDaemons(ctx)
	decide := s.sampleDecide(ctx)

	info := ps.Coordinator
	states := map[string]int{}
	healths := map[string]int{}
	stations := make([]StationView, 0, len(ps.Stations))
	waiting, running := 0, 0
	for _, st := range ps.Stations {
		states[st.State.String()]++
		healths[st.Health.String()]++
		waiting += st.WaitingJobs
		running += st.RunningJobs
		stations = append(stations, StationView{
			Name: st.Name, Addr: st.Addr,
			State: st.State.String(), Health: st.Health.String(),
			HealthSince: st.HealthSince, HealthReason: st.HealthReason,
			Suspicion:   st.Suspicion,
			WaitingJobs: st.WaitingJobs, RunningJobs: st.RunningJobs,
			ForeignJob:    st.ForeignJob,
			ScheduleIndex: st.ScheduleIndex, IndexHistory: st.IndexHistory,
			LastPoll: st.LastPoll,
		})
	}
	sort.Slice(stations, func(i, j int) bool { return stations[i].Name < stations[j].Name })

	s.mu.Lock()
	if info.Cycles != s.lastCycles {
		s.lastCycles = info.Cycles
		s.lastCycleAt = now
	}
	cycleAge := now.Sub(s.lastCycleAt).Seconds()

	total := len(ps.Stations)
	fields := map[string]float64{
		"stations":          float64(total),
		"idle":              float64(states[proto.StationIdle.String()]),
		"owner":             float64(states[proto.StationOwner.String()]),
		"claimed":           float64(states[proto.StationClaimed.String()]),
		"suspended":         float64(states[proto.StationSuspended.String()]),
		"healthy":           float64(healths[proto.HealthHealthy.String()]),
		"suspect":           float64(healths[proto.HealthSuspect.String()]),
		"quarantined":       float64(healths[proto.HealthQuarantined.String()]),
		"waiting":           float64(waiting),
		"running":           float64(running),
		"jobs":              float64(len(jobs)),
		"degraded":          b2f(info.Degraded),
		"cycles":            float64(info.Cycles),
		"grants":            float64(info.Grants),
		"preempts":          float64(info.Preempts),
		"journal_errors":    float64(info.Journal.Errors),
		"unready":           float64(len(info.ReadyFailures)),
		"cycle_age":         cycleAge,
		"cycle_lag":         cycleAge / s.cfg.CycleInterval.Seconds(),
		"coord_unreachable": 0,
	}
	if total > 0 {
		fields["utilization"] = fields["claimed"] / float64(total)
	}
	s.lastFields = fields
	s.lastOK = now
	alerts := s.alerts.Eval(now, fields)

	s.series.Observe("util", now, fields["utilization"])
	for _, st := range []string{"idle", "owner", "claimed", "suspended"} {
		s.series.Observe("stations."+st, now, fields[st])
	}
	for _, h := range []string{"healthy", "suspect", "quarantined"} {
		s.series.Observe("health."+h, now, fields[h])
	}
	s.series.Observe("queue.waiting", now, fields["waiting"])
	nFiring := 0.0
	for _, a := range alerts {
		if a.Firing {
			nFiring++
		}
	}
	s.series.Observe("alerts.firing", now, nFiring)
	for policy, ms := range decide {
		s.series.Observe("decide_ms."+policy, now, ms)
	}

	s.overview = Overview{
		GeneratedAt:     now,
		CoordinatorAddr: s.cfg.CoordinatorAddr,
		Coordinator:     info,
		Stations:        stations,
		States:          states,
		Healths:         healths,
		Fields:          fields,
		Alerts:          alerts,
		Daemons:         daemons,
	}
	if jobsErr != nil {
		s.overview.LastError = jobsErr.Error()
	}
	s.jobs = jobs
	s.mu.Unlock()
	return nil
}

func (s *Server) refresh() {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Refresh+s.client.timeout())
	defer cancel()
	s.Refresh(ctx) //nolint:errcheck // failure is recorded in the overview
}

// probeDaemons checks each configured scrape base's /healthz.
func (s *Server) probeDaemons(ctx context.Context) []DaemonHealth {
	if len(s.cfg.Scrapes) == 0 {
		return nil
	}
	out := make([]DaemonHealth, 0, len(s.cfg.Scrapes))
	for _, base := range s.cfg.Scrapes {
		d := DaemonHealth{Base: base}
		ready, failures, err := s.client.Healthz(ctx, base)
		if err != nil {
			d.Error = err.Error()
		} else {
			d.Ready = ready
			d.Failures = failures
		}
		out = append(out, d)
	}
	return out
}

// sampleDecide scrapes the configured bases for the policy pipeline's
// condor_policy_decide_seconds histogram and converts each policy's
// delta since the previous tick into a mean decide latency in
// milliseconds. Only policies that decided since the last tick produce
// a sample, so the series tracks live cycles rather than flatlining on
// the historical mean.
func (s *Server) sampleDecide(ctx context.Context) map[string]float64 {
	out := map[string]float64{}
	for _, base := range s.cfg.Scrapes {
		page, err := s.client.ScrapeMetrics(ctx, base)
		if err != nil {
			continue
		}
		fam := page.Family("condor_policy_decide_seconds")
		if fam == nil {
			continue
		}
		sums := map[string]float64{}
		counts := map[string]float64{}
		for _, sm := range fam.Samples {
			policy := sm.Get("policy")
			if policy == "" {
				continue
			}
			switch sm.Name {
			case "condor_policy_decide_seconds_sum":
				sums[policy] = sm.Value
			case "condor_policy_decide_seconds_count":
				counts[policy] = sm.Value
			}
		}
		s.mu.Lock()
		for policy, count := range counts {
			prev := s.lastDecide[policy]
			dc := count - prev.count
			ds := sums[policy] - prev.sum
			s.lastDecide[policy] = decideTotals{sum: sums[policy], count: count}
			if dc > 0 && ds >= 0 {
				out[policy] = ds / dc * 1000
			}
		}
		s.mu.Unlock()
	}
	return out
}

func (s *Server) handleOverview(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	ov := s.overview
	s.mu.RUnlock()
	ov.Series = s.series.Snapshot()
	writeJSON(w, ov)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	jobs := s.jobs
	s.mu.RUnlock()
	if jobs == nil {
		jobs = []JobRow{}
	}
	writeJSON(w, jobs)
}

func (s *Server) handleStation(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing ?name=", http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	var view *StationView
	for i := range s.overview.Stations {
		if s.overview.Stations[i].Name == name {
			v := s.overview.Stations[i]
			view = &v
			break
		}
	}
	s.mu.RUnlock()
	if view == nil {
		http.Error(w, "unknown station "+name, http.StatusNotFound)
		return
	}
	detail := StationDetail{Station: *view}
	ctx, cancel := context.WithTimeout(r.Context(), s.client.timeout())
	defer cancel()
	if qr, err := s.client.StationQueue(ctx, view.Addr); err == nil {
		for _, j := range qr.Jobs {
			detail.Jobs = append(detail.Jobs, JobStatusView{Station: qr.Station, Job: j})
		}
	}
	// The coordinator's event trail holds the station's grant / health /
	// flap history; filter its recent window down to this station.
	if events, err := s.client.History(ctx, 0); err == nil {
		for _, e := range events {
			if e.Station == name {
				detail.Events = append(detail.Events, e)
			}
		}
		if n := len(detail.Events); n > s.cfg.HistoryLimit {
			detail.Events = detail.Events[n-s.cfg.HistoryLimit:]
		}
	}
	writeJSON(w, detail)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit := s.cfg.HistoryLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.client.timeout())
	defer cancel()
	events, err := s.client.History(ctx, limit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if events == nil {
		events = []eventlog.Event{}
	}
	writeJSON(w, events)
}

// handleDecisions proxies the coordinator's scheduling decision audits
// (the /decisions ring) through the dashboard's pooled wire client, so
// the page's "Decisions" drill-down needs no second origin. Filters
// mirror the coordinator's own /decisions endpoint: ?job, ?station,
// ?cycle (negative counts from the newest), ?last.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var cycle int64
	if v := q.Get("cycle"); v != "" {
		cycle, _ = strconv.ParseInt(v, 10, 64)
	}
	last := 0
	if v := q.Get("last"); v != "" {
		last, _ = strconv.Atoi(v)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.client.timeout())
	defer cancel()
	reply, err := s.client.Decisions(ctx, q.Get("job"), q.Get("station"), cycle, last)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// Re-shape the wire reply as a decision.Page so this endpoint's JSON
	// is byte-compatible with the coordinator's own /decisions (the
	// page's JS reads the same lowercase keys from either).
	page := decision.Page{Cycles: reply.Cycles, Total: reply.Total, Dropped: reply.Dropped}
	if page.Cycles == nil {
		page.Cycles = []decision.CycleAudit{}
	}
	writeJSON(w, page)
}

// handleHealthz reports the aggregator's own readiness: it is ready
// once a refresh has succeeded recently. It deliberately does not use
// the process-global readiness registry — in an all-in-one process the
// dashboard must not vouch for (or taint) the daemons' own probes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	lastOK := s.lastOK
	lastErr := s.overview.LastError
	s.mu.RUnlock()
	stale := 5 * s.cfg.Refresh
	if lastOK.IsZero() || time.Since(lastOK) > stale {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "not ready\n")
		reason := "no successful refresh yet"
		if lastErr != "" {
			reason = lastErr
		}
		fmt.Fprintf(w, "aggregator: %s\n", reason)
		return
	}
	fmt.Fprintf(w, "ok\nlast refresh %s ago\n", time.Since(lastOK).Round(time.Millisecond))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client went away
}

func copyFields(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
