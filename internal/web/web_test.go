package web

import (
	"testing"
	"time"

	"condor/internal/telemetry"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("stale-cycle: cycle_lag > 3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "stale-cycle" || r.Field != "cycle_lag" || r.Op != ">" || r.Value != 3 || r.For != 0 {
		t.Fatalf("parsed %+v", r)
	}
	r, err = ParseRule("flaky: journal_errors >= 1 for 10s")
	if err != nil {
		t.Fatal(err)
	}
	if r.For != 10*time.Second {
		t.Fatalf("for = %v, want 10s", r.For)
	}
	if got := r.Expr(); got != "journal_errors >= 1 for 10s" {
		t.Fatalf("Expr = %q", got)
	}

	for _, bad := range []string{
		"",                      // empty
		"no colon here",         // no name separator
		": degraded > 0",        // empty name
		"x: degraded >> 0",      // unknown op
		"x: degraded > banana",  // non-numeric value
		"x: degraded > 0 for",   // truncated for clause
		"x: degraded > 0 in 5s", // wrong keyword
		"x: degraded > 0 for x", // bad duration
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted, want error", bad)
		}
	}

	if _, err := ParseRules([]string{"a: x > 1", "a: y > 2"}); err == nil {
		t.Error("duplicate rule names accepted")
	}
	if rules, err := ParseRules(DefaultRules); err != nil || len(rules) != len(DefaultRules) {
		t.Errorf("DefaultRules must parse: %v", err)
	}
}

func TestAlertsFiringAndResolved(t *testing.T) {
	bus := telemetry.NewBus()
	sub := bus.Subscribe(16)
	defer sub.Close()

	rules, err := ParseRules([]string{"degraded-mode: degraded > 0"})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAlerts(rules, bus)
	now := time.Now()

	st := a.Eval(now, map[string]float64{"degraded": 0})
	if st[0].Firing {
		t.Fatal("rule firing on a healthy snapshot")
	}
	st = a.Eval(now.Add(time.Second), map[string]float64{"degraded": 1})
	if !st[0].Firing {
		t.Fatal("rule not firing on degraded=1")
	}
	ev, ok := sub.TryNext()
	if !ok || ev.Kind != "alert-firing" {
		t.Fatalf("bus event = %+v, want alert-firing", ev)
	}
	// Still firing: no duplicate transition event.
	a.Eval(now.Add(2*time.Second), map[string]float64{"degraded": 1})
	if ev, ok := sub.TryNext(); ok {
		t.Fatalf("unexpected event while steadily firing: %+v", ev)
	}
	st = a.Eval(now.Add(3*time.Second), map[string]float64{"degraded": 0})
	if st[0].Firing {
		t.Fatal("rule still firing after recovery")
	}
	ev, ok = sub.TryNext()
	if !ok || ev.Kind != "alert-resolved" {
		t.Fatalf("bus event = %+v, want alert-resolved", ev)
	}
}

func TestAlertsForDebounce(t *testing.T) {
	rules, err := ParseRules([]string{"slow: waiting > 5 for 10s"})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAlerts(rules, telemetry.NewBus())
	t0 := time.Now()

	if st := a.Eval(t0, map[string]float64{"waiting": 9}); st[0].Firing {
		t.Fatal("fired immediately despite for-clause")
	}
	if st := a.Eval(t0.Add(5*time.Second), map[string]float64{"waiting": 9}); st[0].Firing {
		t.Fatal("fired at 5s, for-clause is 10s")
	}
	// A dip resets the debounce clock.
	a.Eval(t0.Add(7*time.Second), map[string]float64{"waiting": 0})
	if st := a.Eval(t0.Add(16*time.Second), map[string]float64{"waiting": 9}); st[0].Firing {
		t.Fatal("fired 9s after the dip; clock should have reset")
	}
	if st := a.Eval(t0.Add(27*time.Second), map[string]float64{"waiting": 9}); !st[0].Firing {
		t.Fatal("not firing after holding past the for-clause")
	}
}

func TestAlertsMissingFieldIsZero(t *testing.T) {
	rules, err := ParseRules([]string{"unseen: no_such_field == 0"})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAlerts(rules, telemetry.NewBus())
	if st := a.Eval(time.Now(), map[string]float64{}); !st[0].Firing {
		t.Fatal("absent fields must evaluate as 0")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		r.Observe(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	for i, want := range []float64{2, 3, 4} {
		if pts[i].V != want {
			t.Fatalf("pts[%d].V = %g, want %g (oldest first)", i, pts[i].V, want)
		}
	}
}

func TestSeriesSet(t *testing.T) {
	s := NewSeriesSet(4)
	now := time.Now()
	s.Observe("b", now, 1)
	s.Observe("a", now, 2)
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	snap := s.Snapshot()
	if len(snap["a"]) != 1 || snap["a"][0].V != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHTTPURL(t *testing.T) {
	for _, tc := range []struct{ base, path, want string }{
		{"127.0.0.1:9100", "/metrics", "http://127.0.0.1:9100/metrics"},
		{"http://host:1/", "/healthz", "http://host:1/healthz"},
		{"https://host", "/events", "https://host/events"},
	} {
		if got := httpURL(tc.base, tc.path); got != tc.want {
			t.Errorf("httpURL(%q, %q) = %q, want %q", tc.base, tc.path, got, tc.want)
		}
	}
}
