package web

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"condor/internal/telemetry"
)

// Relay bridges a remote daemon's /events SSE stream onto a local bus,
// so a condor-web running in its own process still shows the
// coordinator's and stations' live events. Each relayed event keeps its
// original source, timestamp and trace id; only the bus sequence number
// is reassigned locally. The relay reconnects with capped exponential
// backoff and never errors out permanently — an upstream restart is an
// expected event, not a failure.
type Relay struct {
	base   string
	bus    *telemetry.Bus
	client *http.Client

	cancel context.CancelFunc
	wg     sync.WaitGroup
	mConns *telemetry.Counter
	mEvs   *telemetry.Counter
}

// Relay telemetry, by upstream base.
var (
	mRelayConnects = telemetry.NewCounterVec("condor_web_relay_connects_total",
		"Upstream /events stream (re)connections, by upstream.", "upstream")
	mRelayEvents = telemetry.NewCounterVec("condor_web_relay_events_total",
		"Events relayed from upstream /events streams, by upstream.", "upstream")
)

// NewRelay creates a relay from the daemon at base (a host:port or URL
// of its -http listener) onto bus.
func NewRelay(base string, bus *telemetry.Bus) *Relay {
	return &Relay{
		base: base,
		bus:  bus,
		// No overall client timeout: the stream is meant to stay open.
		// Header/dial budgets still bound a dead upstream.
		client: &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: 10 * time.Second,
		}},
		mConns: mRelayConnects.With(base),
		mEvs:   mRelayEvents.With(base),
	}
}

// Start launches the relay loop.
func (r *Relay) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		backoff := 500 * time.Millisecond
		const maxBackoff = 15 * time.Second
		for ctx.Err() == nil {
			if r.stream(ctx) {
				backoff = 500 * time.Millisecond // had events; restart eagerly
			} else if backoff < maxBackoff {
				backoff *= 2
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
		}
	}()
}

// Close stops the relay and waits for its loop to exit.
func (r *Relay) Close() {
	if r.cancel != nil {
		r.cancel()
	}
	r.wg.Wait()
}

// stream opens one connection and relays until it breaks; reports
// whether any event arrived (the backoff reset signal).
func (r *Relay) stream(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, httpURL(r.base, "/events"), nil)
	if err != nil {
		return false
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	r.mConns.Inc()

	got := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch accumulated data lines.
			if len(data) > 0 {
				var ev telemetry.BusEvent
				if json.Unmarshal([]byte(strings.Join(data, "\n")), &ev) == nil {
					ev.Seq = 0 // local bus assigns its own sequence
					r.bus.Publish(ev)
					r.mEvs.Inc()
					got = true
				}
				data = data[:0]
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:, event:, retry:, and ":" keepalive comments — the payload
			// JSON already carries everything the bus needs.
		}
	}
	return got
}
