package web

import (
	"strings"
	"testing"
)

func TestValidateRuleFields(t *testing.T) {
	rules, err := ParseRules(DefaultRules)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRuleFields(rules); err != nil {
		t.Fatalf("default rules failed field validation: %v", err)
	}

	// A typo'd field parses fine but must fail validation, naming the
	// offending rule and its text.
	bad, err := ParseRule("typo-rule: qurantined > 2")
	if err != nil {
		t.Fatal(err)
	}
	verr := ValidateRuleFields([]Rule{bad})
	if verr == nil {
		t.Fatal("unknown field passed validation")
	}
	for _, want := range []string{"typo-rule", "qurantined"} {
		if !strings.Contains(verr.Error(), want) {
			t.Errorf("error %q does not name %q", verr, want)
		}
	}
}

// NewServer must reject unknown-field rules at startup (fail fast),
// not evaluate them forever against an implicit zero.
func TestNewServerRejectsUnknownRuleField(t *testing.T) {
	bad, err := ParseRule("typo-rule: qurantined > 2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewServer(Config{CoordinatorAddr: "127.0.0.1:1", Rules: []Rule{bad}})
	if err == nil {
		t.Fatal("NewServer accepted a rule over a field Refresh never publishes")
	}
	if !strings.Contains(err.Error(), "qurantined") {
		t.Errorf("startup error %q does not name the unknown field", err)
	}
}
