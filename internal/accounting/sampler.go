package accounting

import (
	"sort"
	"sync"
	"time"
)

// DefaultSamplerCapacity is the per-series ring size when NewSampler is
// given a non-positive capacity. At one point per 2-minute poll cycle it
// retains ~8.5 hours — a working day of utilization profile.
const DefaultSamplerCapacity = 256

// Point is one time-series sample.
type Point struct {
	UnixMilli int64   `json:"t"`
	V         float64 `json:"v"`
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	pts  []Point
	next int
	full bool
}

func (r *ring) push(p Point) {
	if len(r.pts) == 0 {
		return
	}
	r.pts[r.next] = p
	r.next++
	if r.next == len(r.pts) {
		r.next = 0
		r.full = true
	}
}

// history returns the retained points, oldest first.
func (r *ring) history() []Point {
	if !r.full {
		return append([]Point(nil), r.pts[:r.next]...)
	}
	out := make([]Point, 0, len(r.pts))
	out = append(out, r.pts[r.next:]...)
	out = append(out, r.pts[:r.next]...)
	return out
}

// Sampler retains bounded history for named gauges, so quantities that
// /metrics can only show instantaneously (station-state counts, up-down
// indexes) get a trajectory — the shape of the paper's Figure 5
// utilization profile. Series are fixed rings: pushing is O(1) and
// memory is capacity × series, regardless of uptime.
//
// Values arrive either pushed (Observe — the coordinator pushes once per
// poll cycle, keeping samples aligned with decisions) or pulled from
// registered sources on a timer (Gauge + Start).
type Sampler struct {
	mu      sync.Mutex
	cap     int
	series  map[string]*ring
	sources map[string]func() float64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSampler returns a sampler whose series each retain the last
// `capacity` points (DefaultSamplerCapacity when <= 0).
func NewSampler(capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultSamplerCapacity
	}
	return &Sampler{
		cap:     capacity,
		series:  make(map[string]*ring),
		sources: make(map[string]func() float64),
	}
}

// Observe pushes one sample onto the named series, creating it on first
// use.
func (s *Sampler) Observe(name string, t time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observeLocked(name, t, v)
}

func (s *Sampler) observeLocked(name string, t time.Time, v float64) {
	r, ok := s.series[name]
	if !ok {
		r = &ring{pts: make([]Point, s.cap)}
		s.series[name] = r
	}
	r.push(Point{UnixMilli: t.UnixMilli(), V: v})
}

// Gauge registers a pull source sampled by SampleNow / the Start loop.
// Re-registering a name replaces the source.
func (s *Sampler) Gauge(name string, src func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources[name] = src
}

// SampleNow reads every registered source once, stamping t.
func (s *Sampler) SampleNow(t time.Time) {
	s.mu.Lock()
	names := make([]string, 0, len(s.sources))
	for name := range s.sources {
		names = append(names, name)
	}
	srcs := make([]func() float64, len(names))
	for i, name := range names {
		srcs[i] = s.sources[name]
	}
	s.mu.Unlock()
	// Sources run outside the lock: they may take other locks (a source
	// reading coordinator state must not order lock acquisition through
	// the sampler).
	vals := make([]float64, len(srcs))
	for i, src := range srcs {
		vals[i] = src()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, name := range names {
		s.observeLocked(name, t, vals[i])
	}
}

// Start samples all registered sources every interval until Stop.
// Calling Start twice is a no-op after the first.
func (s *Sampler) Start(interval time.Duration) {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				s.SampleNow(now)
			}
		}
	}()
}

// Stop ends the Start loop (no-op if never started).
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.mu.Unlock()
	if stop == nil {
		return
	}
	s.stopOnce.Do(func() { close(stop) })
	<-done
}

// History returns one series, oldest point first (nil when unknown).
func (s *Sampler) History(name string) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.series[name]
	if !ok {
		return nil
	}
	return r.history()
}

// Histories returns every non-empty series, oldest point first.
func (s *Sampler) Histories() map[string][]Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]Point, len(s.series))
	for name, r := range s.series {
		if h := r.history(); len(h) > 0 {
			out[name] = h
		}
	}
	return out
}

// SeriesNames returns the known series names, sorted.
func (s *Sampler) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
