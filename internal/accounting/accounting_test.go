package accounting

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterTotalsAndRetireFold(t *testing.T) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	if again := l.Job("wsA/1", "", ""); again != m {
		t.Fatal("Job must intern one meter per job id")
	}
	m.Syscall(100, 2*time.Millisecond)
	m.Syscall(50, 1*time.Millisecond)
	m.ExecTime(600 * time.Millisecond)
	m.ObserveSteps(5000)
	m.ObserveSteps(4000) // stale observation must not regress the max
	m.Checkpoint(1024, 5*time.Millisecond)
	m.Badput(700)
	m.Preempted()

	v := l.Snapshot()
	if len(v.Jobs) != 1 {
		t.Fatalf("live jobs = %d, want 1", len(v.Jobs))
	}
	got := v.Jobs[0]
	if got.Syscalls != 2 || got.SyscallBytes != 150 || got.SupportNanos != int64(3*time.Millisecond) {
		t.Errorf("syscall totals = %+v", got.JobTotals)
	}
	if got.RemoteSteps != 5000 {
		t.Errorf("RemoteSteps = %d, want 5000 (CAS-max)", got.RemoteSteps)
	}
	if got.GoodputSteps() != 4300 {
		t.Errorf("GoodputSteps = %d, want 4300", got.GoodputSteps())
	}
	if got.Checkpoints != 1 || got.CkptBytes != 1024 {
		t.Errorf("checkpoint totals = %+v", got.JobTotals)
	}
	// Live jobs fold into party rows too.
	if len(v.Users) != 1 || v.Users[0].Name != "alice" || v.Users[0].RemoteSteps != 5000 {
		t.Errorf("users = %+v", v.Users)
	}

	l.Retire("wsA/1")
	v = l.Snapshot()
	if len(v.Jobs) != 0 {
		t.Fatalf("live jobs after retire = %d", len(v.Jobs))
	}
	if len(v.Stations) != 1 || v.Stations[0].Name != "wsA" {
		t.Fatalf("stations = %+v", v.Stations)
	}
	st := v.Stations[0]
	if st.Jobs != 1 || st.Retired != 1 || st.RemoteSteps != 5000 || st.BadputSteps != 700 {
		t.Errorf("station fold = %+v", st)
	}
	l.Retire("wsA/1") // idempotent
	if got := l.Snapshot().Stations[0].Retired; got != 1 {
		t.Errorf("double retire folded twice: Retired = %d", got)
	}
}

func TestQueueWaitEpisodes(t *testing.T) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	base := time.Now()
	m.StartWaiting(base)
	m.Placed(base.Add(20 * time.Millisecond))
	m.StartWaiting(base.Add(time.Second))
	m.Placed(base.Add(31 * time.Second)) // 30s episode

	v := l.Snapshot()
	j := v.Jobs[0]
	if j.Placements != 2 {
		t.Errorf("Placements = %d, want 2", j.Placements)
	}
	wantWait := int64(20*time.Millisecond + 30*time.Second)
	if j.QueueWaitNanos != wantWait {
		t.Errorf("QueueWaitNanos = %d, want %d", j.QueueWaitNanos, wantWait)
	}
	if v.QueueWait.Count != 2 {
		t.Fatalf("distribution count = %d, want 2", v.QueueWait.Count)
	}
	// 20ms lands in the ≤100ms bucket (index 1); 30s in ≤1m (index 4).
	if v.QueueWait.Counts[1] != 1 || v.QueueWait.Counts[4] != 1 {
		t.Errorf("distribution = %v", v.QueueWait.Counts)
	}
	// Placed without a StartWaiting must not record an episode.
	m.Placed(base.Add(time.Minute))
	if got := l.Snapshot().QueueWait.Count; got != 2 {
		t.Errorf("phantom episode recorded: count = %d", got)
	}
}

func TestLeverageFiniteAndCapped(t *testing.T) {
	var t1 JobTotals
	t1.RemoteNanos = int64(10 * time.Second)
	t1.SupportNanos = int64(10 * time.Millisecond)
	if lev := t1.Leverage(); lev < 999 || lev > 1001 {
		t.Errorf("leverage = %v, want ~1000", lev)
	}
	t1.SupportNanos = 0
	if lev := t1.Leverage(); lev < leverageCap {
		t.Errorf("free support should render above cap, got %v", lev)
	}
	if s := fmtLeverage(t1.Leverage()); !strings.HasPrefix(s, ">") {
		t.Errorf("capped leverage renders %q", s)
	}
	var t2 JobTotals
	if lev := t2.Leverage(); lev != 0 {
		t.Errorf("leverage with no remote time = %v, want 0", lev)
	}
}

func TestAllocSnapshotRestore(t *testing.T) {
	l := NewLedger()
	l.Grant("wsA")
	l.GrantUsed("wsA")
	l.Grant("wsB")
	l.GrantDenied("wsB")
	l.Preempt("wsA")
	l.Capacity("wsA", 3, 2*time.Minute)
	l.Capacity("wsA", 0, 2*time.Minute) // zero machines: no charge

	snap := l.AllocSnapshot()
	if got := snap["wsA"]; got.Grants != 1 || got.GrantsUsed != 1 || got.Preempts != 1 ||
		got.CapacityCycles != 3 || got.CapacityNanos != int64(6*time.Minute) {
		t.Errorf("wsA alloc = %+v", got)
	}

	l2 := NewLedger()
	l2.RestoreAlloc(snap)
	if got := l2.AllocSnapshot(); len(got) != len(snap) || got["wsA"] != snap["wsA"] || got["wsB"] != snap["wsB"] {
		t.Errorf("restore mismatch: %+v vs %+v", got, snap)
	}
	// Restored totals keep counting.
	l2.Grant("wsA")
	if got := l2.AllocSnapshot()["wsA"].Grants; got != 2 {
		t.Errorf("grants after restore+grant = %d, want 2", got)
	}
	v := l2.Snapshot()
	if len(v.Alloc) != 2 || v.Alloc[0].Station != "wsA" {
		t.Errorf("alloc rows = %+v", v.Alloc)
	}
}

func TestMeterConcurrency(t *testing.T) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Syscall(10, time.Microsecond)
				m.ObserveSteps(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	tt := m.totals()
	if tt.Syscalls != goroutines*per {
		t.Errorf("Syscalls = %d, want %d", tt.Syscalls, goroutines*per)
	}
	if tt.SupportNanos != int64(goroutines*per)*int64(time.Microsecond) {
		t.Errorf("SupportNanos = %d", tt.SupportNanos)
	}
	if tt.RemoteSteps != goroutines*per-1 {
		t.Errorf("RemoteSteps = %d, want %d", tt.RemoteSteps, goroutines*per-1)
	}
}

func TestPublishHandlerJSON(t *testing.T) {
	l := NewLedger()
	m := l.Job("wsX/1", "bob", "wsX")
	m.ObserveSteps(123)
	Publish("test-section", l)
	defer Unpublish("test-section")

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/accounting", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var page Page
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("decode: %v", err)
	}
	sec, ok := page.Sections["test-section"]
	if !ok {
		t.Fatalf("sections = %v", page.Sections)
	}
	if len(sec.Jobs) != 1 || sec.Jobs[0].JobID != "wsX/1" || sec.Jobs[0].RemoteSteps != 123 {
		t.Errorf("section jobs = %+v", sec.Jobs)
	}
	if _, ok := page.Sections["process"]; !ok {
		t.Error("process ledger not auto-published")
	}
}

func TestRenderReport(t *testing.T) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	m.Syscall(100, 10*time.Millisecond)
	m.ExecTime(5 * time.Second)
	m.ObserveSteps(2_000_000)
	m.Checkpoint(4096, 15*time.Millisecond)
	m.Badput(50_000)
	m.Preempted()
	m.StartWaiting(time.Now().Add(-30 * time.Millisecond))
	m.Placed(time.Now())
	l.Grant("wsA")
	l.GrantUsed("wsA")
	l.Capacity("wsA", 1, time.Minute)
	now := time.Now()
	for i := 0; i < 10; i++ {
		l.Sampler().Observe("util/claimed", now.Add(time.Duration(i)*time.Second), float64(i%3))
		l.Sampler().Observe("index/wsA", now.Add(time.Duration(i)*time.Second), float64(i))
	}

	out := RenderReport([]Section{{Name: "process", View: l.Snapshot()}}, 60)
	for _, want := range []string{
		"accounting: process",
		"Per-user capacity and leverage",
		"alice",
		"badput",
		"checkpoint overhead",
		"Queue-wait distribution",
		"Utilization profile: util/claimed",
		"index/wsA",
		"Leverage",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Coordinator-style view: alloc rows without job meters.
	lc := NewLedger()
	lc.Grant("wsB")
	out = RenderReport([]Section{{Name: "coordinator", View: lc.Snapshot()}}, 60)
	if !strings.Contains(out, "Per-station allocation (coordinator)") || !strings.Contains(out, "wsB") {
		t.Errorf("coordinator report:\n%s", out)
	}
}

// TestSyscallPathAllocatesNothing pins the per-syscall accounting hot
// path at zero allocations, like the telemetry and trace hot paths.
func TestSyscallPathAllocatesNothing(t *testing.T) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	if avg := testing.AllocsPerRun(1000, func() {
		m.Syscall(128, 250*time.Microsecond)
	}); avg != 0 {
		t.Errorf("Meter.Syscall allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		m.ExecTime(time.Millisecond)
		m.ObserveSteps(1 << 40)
	}); avg != 0 {
		t.Errorf("per-slice path allocates %.1f/op, want 0", avg)
	}
}
