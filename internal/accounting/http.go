package accounting

import (
	"encoding/json"
	"net/http"
	"sync"

	"condor/internal/telemetry"
)

// The /accounting endpoint. Mounted on every telemetry.Serve listener
// via the extra-handler registry (the same mechanism /traces uses), so
// any daemon started with -http exposes its ledgers without the
// telemetry package importing this one.

var (
	pubMu  sync.Mutex
	ledgrs = map[string]*Ledger{}
)

// Publish exposes a ledger as a named section of the /accounting
// endpoint. The process ledger (Default) is published as "process" at
// package load; the coordinator daemon publishes its allocation ledger
// as "coordinator". Re-publishing a name replaces the ledger.
func Publish(name string, l *Ledger) {
	pubMu.Lock()
	defer pubMu.Unlock()
	ledgrs[name] = l
}

// Unpublish removes a named section (a closed coordinator's ledger).
func Unpublish(name string) {
	pubMu.Lock()
	defer pubMu.Unlock()
	delete(ledgrs, name)
}

// Page is the /accounting response envelope.
type Page struct {
	Sections map[string]View `json:"sections"`
}

// Snapshot renders every published ledger.
func snapshotAll() Page {
	pubMu.Lock()
	names := make([]string, 0, len(ledgrs))
	ls := make([]*Ledger, 0, len(ledgrs))
	for name, l := range ledgrs {
		names = append(names, name)
		ls = append(ls, l)
	}
	pubMu.Unlock()
	page := Page{Sections: make(map[string]View, len(names))}
	for i, name := range names {
		page.Sections[name] = ls[i].Snapshot()
	}
	return page
}

// Handler serves the published ledgers as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshotAll())
	})
}

// Registering the endpoint and the process ledger at package load is a
// sanctioned init use (handler registry): deterministic, no I/O.
func init() {
	Publish("process", Default)
	telemetry.Handle("/accounting", Handler())
}
