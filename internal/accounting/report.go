package accounting

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"condor/internal/metrics"
)

// Paper-style report rendering: the tables condor-report prints. Living
// in this package (rather than the command) lets the e2e tests assert on
// the exact text a user sees.

// leverageCap bounds rendered leverage, matching the simulator's Figure
// 9 reproduction: a job that needed no measurable support has unbounded
// leverage, displayed as the cap.
const leverageCap = 1e6

// Section is one named ledger view in a report (mirrors a /accounting
// page section).
type Section struct {
	Name string
	View View
}

// RenderReport renders sections in order as paper-style tables: per-user
// capacity and leverage (Figure 9 shape), per-station totals with the
// coordinator's allocation counters, the goodput/badput/checkpoint
// breakdown, the queue-wait distribution, and — when the view carries
// sampler history — the cluster utilization profile over time (Figure 5
// shape) and schedule-index trajectories. width bounds chart width
// (<= 0 uses the default).
func RenderReport(sections []Section, width int) string {
	var b strings.Builder
	for i, sec := range sections {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "== accounting: %s ==\n\n", sec.Name)
		renderView(&b, sec.View, width)
	}
	return b.String()
}

func renderView(b *strings.Builder, v View, width int) {
	if len(v.Users) > 0 {
		b.WriteString("Per-user capacity and leverage (Figure 9 shape):\n")
		rows := make([][]string, 0, len(v.Users))
		for _, u := range v.Users {
			rows = append(rows, []string{
				u.Name,
				fmt.Sprint(u.Jobs),
				fmt.Sprint(u.Retired),
				fmtSteps(u.RemoteSteps),
				fmtDur(u.RemoteNanos),
				fmt.Sprint(u.Syscalls),
				fmtDur(u.SupportNanos),
				fmtLeverage(u.Leverage),
			})
		}
		b.WriteString(metrics.Table(
			[]string{"User", "Jobs", "Done", "Steps", "Remote CPU", "Syscalls", "Support", "Leverage"},
			rows))
		b.WriteString("\n")
	}

	if len(v.Stations) > 0 {
		alloc := make(map[string]AllocTotals, len(v.Alloc))
		for _, a := range v.Alloc {
			alloc[a.Station] = a.AllocTotals
		}
		b.WriteString("Per-station totals:\n")
		rows := make([][]string, 0, len(v.Stations))
		for _, s := range v.Stations {
			a := alloc[s.Name]
			rows = append(rows, []string{
				s.Name,
				fmt.Sprint(s.Jobs),
				fmtSteps(s.RemoteSteps),
				fmtSteps(s.BadputSteps),
				fmt.Sprint(s.Preempts),
				fmt.Sprint(s.Checkpoints),
				fmtDur(s.CkptNanos),
				fmt.Sprintf("%d/%d/%d", a.Grants, a.GrantsUsed, a.GrantsDenied),
				fmtDur(a.CapacityNanos),
			})
		}
		b.WriteString(metrics.Table(
			[]string{"Station", "Jobs", "Steps", "Badput", "Preempts", "Ckpts", "Ckpt CPU",
				"Grants i/u/d", "Held"},
			rows))
		b.WriteString("\n")
	} else if len(v.Alloc) > 0 {
		// A coordinator-only view has allocation rows but no job meters.
		b.WriteString("Per-station allocation (coordinator):\n")
		rows := make([][]string, 0, len(v.Alloc))
		for _, a := range v.Alloc {
			rows = append(rows, []string{
				a.Station,
				fmt.Sprint(a.Grants), fmt.Sprint(a.GrantsUsed), fmt.Sprint(a.GrantsDenied),
				fmt.Sprint(a.Preempts),
				fmt.Sprint(a.CapacityCycles), fmtDur(a.CapacityNanos),
			})
		}
		b.WriteString(metrics.Table(
			[]string{"Station", "Grants", "Used", "Denied", "Preempts", "Cycles", "Held"},
			rows))
		b.WriteString("\n")
	}

	renderBreakdown(b, v)
	renderWaitDist(b, v.QueueWait)
	renderSeries(b, v.Series, width)
}

// renderBreakdown prints the goodput/badput/checkpoint-overhead split.
func renderBreakdown(b *strings.Builder, v View) {
	var t JobTotals
	for _, s := range v.Stations {
		t.add(s.JobTotals)
	}
	if t.RemoteSteps == 0 && t.Checkpoints == 0 {
		return
	}
	b.WriteString("Work breakdown:\n")
	good := t.GoodputSteps()
	pct := func(part uint64) float64 {
		if t.RemoteSteps == 0 {
			return 0
		}
		return 100 * float64(part) / float64(t.RemoteSteps)
	}
	rows := [][]string{
		{"goodput", fmtSteps(good), fmt.Sprintf("%.1f%%", pct(good))},
		{"badput (redone after preemption)", fmtSteps(t.BadputSteps), fmt.Sprintf("%.1f%%", pct(t.BadputSteps))},
		{"checkpoint overhead", fmt.Sprintf("%d ckpts, %s", t.Checkpoints, fmtBytes(t.CkptBytes)),
			fmtDur(t.CkptNanos)},
	}
	b.WriteString(metrics.Table([]string{"Component", "Amount", "Share"}, rows))
	b.WriteString("\n")
}

func renderWaitDist(b *strings.Builder, w WaitDist) {
	if w.Count == 0 {
		return
	}
	b.WriteString("Queue-wait distribution (idle episodes ended by a placement):\n")
	var maxCount uint64
	for _, c := range w.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	rows := make([][]string, 0, len(w.Counts))
	for i, c := range w.Counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(1+19*c/maxCount))
		rows = append(rows, []string{WaitBucketLabel(i), fmt.Sprint(c), bar})
	}
	b.WriteString(metrics.Table([]string{"Wait", "Count", ""}, rows))
	mean := time.Duration(0)
	if w.Count > 0 {
		mean = time.Duration(w.SumNanos / int64(w.Count))
	}
	fmt.Fprintf(b, "%d episodes, mean wait %s\n\n", w.Count, mean.Round(time.Microsecond))
}

func renderSeries(b *strings.Builder, series map[string][]Point, width int) {
	if len(series) == 0 {
		return
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	// Utilization profile gauges chart (Figure 5 shape); schedule-index
	// trajectories compress to sparklines.
	var sparks [][]string
	for _, name := range names {
		pts := series[name]
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.V
		}
		if strings.HasPrefix(name, "util/") {
			b.WriteString(metrics.Chart("Utilization profile: "+name, vals, width, 8))
			b.WriteString("\n")
			continue
		}
		sparks = append(sparks, []string{
			name, metrics.Sparkline(vals, 32), fmt.Sprintf("%.2f", vals[len(vals)-1]),
		})
	}
	if len(sparks) > 0 {
		b.WriteString("Gauge trajectories (oldest → newest):\n")
		b.WriteString(metrics.Table([]string{"Series", "Trend", "Last"}, sparks))
		b.WriteString("\n")
	}
}

func fmtDur(nanos int64) string {
	return time.Duration(nanos).Round(time.Microsecond).String()
}

func fmtLeverage(lev float64) string {
	if lev >= leverageCap {
		return fmt.Sprintf(">%.0e", leverageCap)
	}
	return fmt.Sprintf("%.1f", lev)
}

func fmtSteps(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 10<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
