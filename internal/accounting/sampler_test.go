package accounting

import (
	"testing"
	"time"
)

func TestSamplerRingBounded(t *testing.T) {
	s := NewSampler(4)
	base := time.UnixMilli(1_000_000)
	for i := 0; i < 10; i++ {
		s.Observe("x", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	h := s.History("x")
	if len(h) != 4 {
		t.Fatalf("history len = %d, want capacity 4", len(h))
	}
	// Oldest-first, last 4 pushes survive.
	for i, p := range h {
		if want := float64(6 + i); p.V != want {
			t.Errorf("h[%d].V = %v, want %v", i, p.V, want)
		}
	}
	if h[0].UnixMilli >= h[3].UnixMilli {
		t.Errorf("history not time-ordered: %v", h)
	}
}

func TestSamplerPartialRing(t *testing.T) {
	s := NewSampler(8)
	s.Observe("y", time.UnixMilli(1), 1)
	s.Observe("y", time.UnixMilli(2), 2)
	if h := s.History("y"); len(h) != 2 || h[0].V != 1 || h[1].V != 2 {
		t.Errorf("partial history = %v", h)
	}
	if h := s.History("unknown"); h != nil {
		t.Errorf("unknown series = %v, want nil", h)
	}
}

func TestSamplerSources(t *testing.T) {
	s := NewSampler(16)
	n := 0.0
	s.Gauge("counter", func() float64 { n++; return n })
	s.SampleNow(time.UnixMilli(10))
	s.SampleNow(time.UnixMilli(20))
	h := s.History("counter")
	if len(h) != 2 || h[0].V != 1 || h[1].V != 2 {
		t.Errorf("source history = %v", h)
	}
	all := s.Histories()
	if len(all) != 1 || len(all["counter"]) != 2 {
		t.Errorf("Histories = %v", all)
	}
	if names := s.SeriesNames(); len(names) != 1 || names[0] != "counter" {
		t.Errorf("SeriesNames = %v", names)
	}
}

func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(64)
	s.Gauge("tick", func() float64 { return 1 })
	s.Start(time.Millisecond)
	s.Start(time.Millisecond) // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for len(s.History("tick")) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if len(s.History("tick")) == 0 {
		t.Fatal("Start loop never sampled")
	}
	n := len(s.History("tick"))
	time.Sleep(5 * time.Millisecond)
	if got := len(s.History("tick")); got != n {
		t.Errorf("sampling continued after Stop: %d -> %d", n, got)
	}
	s.Stop() // idempotent
}
