// Package accounting is the live counterpart of the paper's §5
// evaluation: it measures, on a running pool, the quantities the paper
// reports from its logs — remote capacity consumed per user and per
// station, the local support time spent earning it (the denominator of
// leverage, §3.1), queue waits, checkpoint overhead, and *badput*, work
// redone after a preemption because it happened since the last
// checkpoint.
//
// The design splits into a hot layer and a cold layer. The hot layer is
// the Meter: one per job, all fields atomics, handed out interned so the
// shadow's per-syscall path and the executor's per-slice path never take
// a lock or allocate (enforced by TestSyscallPathAllocatesNothing).
// The cold layer is the Ledger: it interns meters, folds finished jobs
// into per-station and per-user totals, tracks the coordinator's
// allocation counters (grants/denials/preempts/capacity), and renders
// everything as a View for the /accounting endpoint, the wire RPC, and
// condor-report.
//
// One subtlety when home and execution sides share a process (in-process
// pools, tests): both sides intern the same meter, so each field has
// exactly one writing side — the executor owns remote CPU, checkpoints
// and badput; the shadow/schedd own syscalls, support time and queue
// waits. Cumulative VM steps are reconciled with a CAS-max, which is
// idempotent from either side.
package accounting

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"condor/internal/cost"
)

// Meter accumulates one job's accounting. All methods are safe for
// concurrent use; the hot-path methods (Syscall, ExecTime, ObserveSteps)
// touch only atomics.
type Meter struct {
	// JobID, Owner and Home identify the job; set at intern time and
	// immutable afterwards.
	JobID string
	Owner string
	Home  string

	// Home-side support: forwarded system calls served by the shadow and
	// the wall time the home machine spent serving them (plus checkpoint
	// ingest) — the leverage denominator.
	syscalls     atomic.Uint64
	syscallBytes atomic.Int64
	supportNanos atomic.Int64

	// Exec-side capacity: cumulative guest steps (CAS-max of the VM's
	// monotonic counter) and wall time inside VM slices.
	remoteSteps atomic.Uint64
	remoteNanos atomic.Int64

	// Checkpoint overhead: count, encode+ship wall time, blob bytes.
	ckpts     atomic.Uint64
	ckptNanos atomic.Int64
	ckptBytes atomic.Int64

	// badputSteps is guest work lost to a preemption — steps executed
	// beyond the checkpoint the job was resumed from.
	badputSteps atomic.Uint64
	preempts    atomic.Uint64
	placements  atomic.Uint64

	// Queue wait: accrued nanos over all idle episodes, plus the start of
	// the current episode (0 = not waiting).
	queueWaitNanos atomic.Int64
	waitingSince   atomic.Int64

	ledger *Ledger
}

// Syscall records one forwarded system call: the guest payload size
// (request + reply) and the wall time the home machine spent serving it.
// This is the per-syscall hot path: three atomic adds, no locks, no
// allocation.
func (m *Meter) Syscall(bytes int, d time.Duration) {
	m.syscalls.Add(1)
	m.syscallBytes.Add(int64(bytes))
	m.supportNanos.Add(int64(d))
}

// Support adds home-side support time outside the syscall path
// (checkpoint ingest, terminal-event handling).
func (m *Meter) Support(d time.Duration) { m.supportNanos.Add(int64(d)) }

// ExecTime adds exec-side wall time spent inside VM slices.
func (m *Meter) ExecTime(d time.Duration) { m.remoteNanos.Add(int64(d)) }

// ObserveSteps reconciles the job's cumulative guest step counter via
// CAS-max: callable from either side with whatever total it last saw.
func (m *Meter) ObserveSteps(total uint64) {
	for {
		cur := m.remoteSteps.Load()
		if total <= cur || m.remoteSteps.CompareAndSwap(cur, total) {
			return
		}
	}
}

// StepsBeyond returns how far the observed step total runs past base —
// the work that will be redone if the job resumes from a checkpoint
// taken at base.
func (m *Meter) StepsBeyond(base uint64) uint64 {
	cur := m.remoteSteps.Load()
	if cur <= base {
		return 0
	}
	return cur - base
}

// Checkpoint records one checkpoint of this job: blob size and the wall
// time spent encoding and shipping it.
func (m *Meter) Checkpoint(bytes int, d time.Duration) {
	m.ckpts.Add(1)
	m.ckptBytes.Add(int64(bytes))
	m.ckptNanos.Add(int64(d))
}

// Badput records guest steps lost to a preemption (work beyond the
// checkpoint the job will resume from — it will be redone).
func (m *Meter) Badput(steps uint64) {
	if steps > 0 {
		m.badputSteps.Add(steps)
	}
}

// Preempted counts one preemption (owner return or Up-Down order).
func (m *Meter) Preempted() { m.preempts.Add(1) }

// StartWaiting marks the beginning of an idle episode (submit, requeue
// after vacate, placement failure).
func (m *Meter) StartWaiting(t time.Time) { m.waitingSince.Store(t.UnixNano()) }

// Placed ends the current idle episode at t and counts a placement. The
// episode's wait lands in the job's total and the ledger's distribution.
func (m *Meter) Placed(t time.Time) {
	m.placements.Add(1)
	since := m.waitingSince.Swap(0)
	if since == 0 {
		return
	}
	w := t.UnixNano() - since
	if w < 0 {
		w = 0
	}
	m.queueWaitNanos.Add(w)
	if m.ledger != nil {
		m.ledger.observeWait(time.Duration(w))
	}
}

// JobTotals is the accumulated accounting of one job (or a fold over
// many). All fields are plain values so the struct travels through JSON
// and gob unchanged.
type JobTotals struct {
	RemoteSteps    uint64 `json:"remoteSteps"`
	RemoteNanos    int64  `json:"remoteNanos"`
	Syscalls       uint64 `json:"syscalls"`
	SyscallBytes   int64  `json:"syscallBytes"`
	SupportNanos   int64  `json:"supportNanos"`
	Checkpoints    uint64 `json:"checkpoints"`
	CkptNanos      int64  `json:"ckptNanos"`
	CkptBytes      int64  `json:"ckptBytes"`
	BadputSteps    uint64 `json:"badputSteps"`
	Preempts       uint64 `json:"preempts"`
	Placements     uint64 `json:"placements"`
	QueueWaitNanos int64  `json:"queueWaitNanos"`
}

func (t *JobTotals) add(o JobTotals) {
	t.RemoteSteps += o.RemoteSteps
	t.RemoteNanos += o.RemoteNanos
	t.Syscalls += o.Syscalls
	t.SyscallBytes += o.SyscallBytes
	t.SupportNanos += o.SupportNanos
	t.Checkpoints += o.Checkpoints
	t.CkptNanos += o.CkptNanos
	t.CkptBytes += o.CkptBytes
	t.BadputSteps += o.BadputSteps
	t.Preempts += o.Preempts
	t.Placements += o.Placements
	t.QueueWaitNanos += o.QueueWaitNanos
}

// GoodputSteps returns guest steps that counted toward completion:
// everything executed minus work that had to be redone.
func (t JobTotals) GoodputSteps() uint64 {
	if t.BadputSteps >= t.RemoteSteps {
		return 0
	}
	return t.RemoteSteps - t.BadputSteps
}

// Leverage returns remote execution time obtained per unit of home-side
// support time (§3.1), computed from the measured wall clocks.
func (t JobTotals) Leverage() float64 {
	return cost.Leverage(time.Duration(t.RemoteNanos), time.Duration(t.SupportNanos))
}

// totals snapshots the meter's atomics.
func (m *Meter) totals() JobTotals {
	return JobTotals{
		RemoteSteps:    m.remoteSteps.Load(),
		RemoteNanos:    m.remoteNanos.Load(),
		Syscalls:       m.syscalls.Load(),
		SyscallBytes:   m.syscallBytes.Load(),
		SupportNanos:   m.supportNanos.Load(),
		Checkpoints:    m.ckpts.Load(),
		CkptNanos:      m.ckptNanos.Load(),
		CkptBytes:      m.ckptBytes.Load(),
		BadputSteps:    m.badputSteps.Load(),
		Preempts:       m.preempts.Load(),
		Placements:     m.placements.Load(),
		QueueWaitNanos: m.queueWaitNanos.Load(),
	}
}

// PartyTotals aggregates jobs by station or by user.
type PartyTotals struct {
	// Jobs counts jobs ever metered under this party; Retired counts
	// those that reached a terminal state and were folded in.
	Jobs    uint64 `json:"jobs"`
	Retired uint64 `json:"retired"`
	JobTotals
}

// AllocTotals is the coordinator's per-station allocation accounting.
type AllocTotals struct {
	// Grants/GrantsUsed/GrantsDenied count capacity granted to this
	// station (as the requesting home station).
	Grants       uint64 `json:"grants"`
	GrantsUsed   uint64 `json:"grantsUsed"`
	GrantsDenied uint64 `json:"grantsDenied"`
	// Preempts counts Up-Down preemptions charged to this station's jobs.
	Preempts uint64 `json:"preempts"`
	// CapacityCycles counts machine-cycles of remote capacity held
	// (one poll cycle × one machine each); CapacityNanos is the same
	// scaled by the poll interval — the paper's "capacity consumed".
	CapacityCycles uint64 `json:"capacityCycles"`
	CapacityNanos  int64  `json:"capacityNanos"`
}

func (a AllocTotals) zero() bool { return a == AllocTotals{} }

// waitBounds are the queue-wait distribution bucket upper bounds; the
// final implicit bucket is +Inf.
var waitBounds = []time.Duration{
	10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second,
	time.Minute, 10 * time.Minute, time.Hour,
}

// WaitDist is a fixed-bucket queue-wait distribution. Counts has one
// entry per waitBounds bound plus a final overflow bucket.
type WaitDist struct {
	Counts   []uint64 `json:"counts"`
	SumNanos int64    `json:"sumNanos"`
	Count    uint64   `json:"count"`
}

// WaitBucketLabel names bucket i of a WaitDist for rendering.
func WaitBucketLabel(i int) string {
	if i >= len(waitBounds) {
		return "> " + waitBounds[len(waitBounds)-1].String()
	}
	return "≤ " + waitBounds[i].String()
}

// Ledger interns job meters and aggregates them. One process-global
// instance (Default) is shared by schedd and ru; the coordinator keeps
// its own for allocation accounting so restart recovery has clean
// semantics.
type Ledger struct {
	mu       sync.Mutex
	jobs     map[string]*Meter
	stations map[string]*PartyTotals // retired base, by home station
	users    map[string]*PartyTotals // retired base, by owner
	alloc    map[string]*AllocTotals
	wait     WaitDist
	sampler  *Sampler
}

// Default is the process-wide ledger all daemons in this process feed.
var Default = NewLedger()

// NewLedger returns an empty ledger with a default-capacity sampler.
func NewLedger() *Ledger {
	return &Ledger{
		jobs:     make(map[string]*Meter),
		stations: make(map[string]*PartyTotals),
		users:    make(map[string]*PartyTotals),
		alloc:    make(map[string]*AllocTotals),
		wait:     WaitDist{Counts: make([]uint64, len(waitBounds)+1)},
		sampler:  NewSampler(0),
	}
}

// Job interns the meter for jobID, creating it on first use. Later calls
// may pass empty owner/home; the first non-empty values stick. Callers
// intern once and hold the pointer — never in a hot path.
func (l *Ledger) Job(jobID, owner, home string) *Meter {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.jobs[jobID]; ok {
		return m
	}
	m := &Meter{JobID: jobID, Owner: owner, Home: home, ledger: l}
	l.jobs[jobID] = m
	l.partyLocked(l.stations, home).Jobs++
	l.partyLocked(l.users, owner).Jobs++
	return m
}

// partyLocked interns a PartyTotals row; the empty name keys jobs whose
// owner/home was never learned.
func (l *Ledger) partyLocked(m map[string]*PartyTotals, name string) *PartyTotals {
	p, ok := m[name]
	if !ok {
		p = &PartyTotals{}
		m[name] = p
	}
	return p
}

// Retire folds a finished job's meter into its station and user totals
// and drops the live entry, bounding the jobs map to in-flight work.
func (l *Ledger) Retire(jobID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.jobs[jobID]
	if !ok {
		return
	}
	delete(l.jobs, jobID)
	t := m.totals()
	for _, p := range []*PartyTotals{
		l.partyLocked(l.stations, m.Home),
		l.partyLocked(l.users, m.Owner),
	} {
		p.Retired++
		p.add(t)
	}
}

// observeWait lands one finished idle episode in the distribution.
func (l *Ledger) observeWait(w time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(waitBounds), func(i int) bool { return w <= waitBounds[i] })
	l.wait.Counts[i]++
	l.wait.SumNanos += int64(w)
	l.wait.Count++
}

// Grant charges one capacity grant to the requesting home station.
func (l *Ledger) Grant(station string) { l.allocAdd(station, func(a *AllocTotals) { a.Grants++ }) }

// GrantUsed counts a grant the station turned into a placement.
func (l *Ledger) GrantUsed(station string) {
	l.allocAdd(station, func(a *AllocTotals) { a.GrantsUsed++ })
}

// GrantDenied counts a grant the station declined or that was lost.
func (l *Ledger) GrantDenied(station string) {
	l.allocAdd(station, func(a *AllocTotals) { a.GrantsDenied++ })
}

// Preempt charges one Up-Down preemption to the victim home station.
func (l *Ledger) Preempt(station string) { l.allocAdd(station, func(a *AllocTotals) { a.Preempts++ }) }

// Capacity charges one poll cycle of held remote capacity: machines
// currently executing the station's jobs × the cycle period.
func (l *Ledger) Capacity(station string, machines int, cycle time.Duration) {
	if machines <= 0 {
		return
	}
	l.allocAdd(station, func(a *AllocTotals) {
		a.CapacityCycles += uint64(machines)
		a.CapacityNanos += int64(machines) * int64(cycle)
	})
}

func (l *Ledger) allocAdd(station string, f func(*AllocTotals)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.alloc[station]
	if !ok {
		a = &AllocTotals{}
		l.alloc[station] = a
	}
	f(a)
}

// AllocSnapshot returns the allocation totals by station — absolute
// values, so the coordinator can journal them idempotently.
func (l *Ledger) AllocSnapshot() map[string]AllocTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]AllocTotals, len(l.alloc))
	for name, a := range l.alloc {
		if !a.zero() {
			out[name] = *a
		}
	}
	return out
}

// RestoreAlloc overwrites the allocation totals from a recovered
// snapshot (coordinator journal replay).
func (l *Ledger) RestoreAlloc(totals map[string]AllocTotals) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.alloc = make(map[string]*AllocTotals, len(totals))
	for name, a := range totals {
		cp := a
		l.alloc[name] = &cp
	}
}

// Sampler returns the ledger's time-series sampler.
func (l *Ledger) Sampler() *Sampler { return l.sampler }

// JobRow is one live job in a View.
type JobRow struct {
	JobID string `json:"jobID"`
	Owner string `json:"owner"`
	Home  string `json:"home"`
	JobTotals
	// WaitingNanos is the current unfinished idle episode, if any.
	WaitingNanos int64 `json:"waitingNanos,omitempty"`
}

// PartyRow is one station or user in a View, live jobs folded in.
type PartyRow struct {
	Name string `json:"name"`
	PartyTotals
	// Leverage is remote execution time per unit of home support time,
	// from the measured wall clocks (cost.Leverage semantics).
	Leverage float64 `json:"leverage"`
}

// AllocRow is one station's allocation totals in a View.
type AllocRow struct {
	Station string `json:"station"`
	AllocTotals
}

// View is one ledger's full rendering: the payload of the /accounting
// endpoint, the AccountingRequest RPC, and condor-report.
type View struct {
	GeneratedUnixMilli int64      `json:"generatedUnixMilli"`
	Jobs               []JobRow   `json:"jobs,omitempty"`
	Stations           []PartyRow `json:"stations,omitempty"`
	Users              []PartyRow `json:"users,omitempty"`
	Alloc              []AllocRow `json:"alloc,omitempty"`
	QueueWait          WaitDist   `json:"queueWait"`
	// Series is the sampler's history: utilization profile and schedule
	// index trajectories, oldest point first.
	Series map[string][]Point `json:"series,omitempty"`
}

// Snapshot renders the ledger: live jobs as rows, and per-party totals
// with live jobs folded on top of the retired base.
func (l *Ledger) Snapshot() View {
	now := time.Now()
	l.mu.Lock()
	v := View{GeneratedUnixMilli: now.UnixMilli()}
	stations := make(map[string]PartyTotals, len(l.stations))
	users := make(map[string]PartyTotals, len(l.users))
	for name, p := range l.stations {
		stations[name] = *p
	}
	for name, p := range l.users {
		users[name] = *p
	}
	for _, m := range l.jobs {
		t := m.totals()
		row := JobRow{JobID: m.JobID, Owner: m.Owner, Home: m.Home, JobTotals: t}
		if since := m.waitingSince.Load(); since != 0 {
			if w := now.UnixNano() - since; w > 0 {
				row.WaitingNanos = w
			}
		}
		v.Jobs = append(v.Jobs, row)
		s := stations[m.Home]
		s.add(t)
		stations[m.Home] = s
		u := users[m.Owner]
		u.add(t)
		users[m.Owner] = u
	}
	for name, a := range l.alloc {
		if !a.zero() {
			v.Alloc = append(v.Alloc, AllocRow{Station: name, AllocTotals: *a})
		}
	}
	v.QueueWait = WaitDist{
		Counts:   append([]uint64(nil), l.wait.Counts...),
		SumNanos: l.wait.SumNanos,
		Count:    l.wait.Count,
	}
	l.mu.Unlock()

	v.Stations = partyRows(stations)
	v.Users = partyRows(users)
	sort.Slice(v.Jobs, func(i, j int) bool { return v.Jobs[i].JobID < v.Jobs[j].JobID })
	sort.Slice(v.Alloc, func(i, j int) bool { return v.Alloc[i].Station < v.Alloc[j].Station })
	v.Series = l.sampler.Histories()
	return v
}

func partyRows(m map[string]PartyTotals) []PartyRow {
	rows := make([]PartyRow, 0, len(m))
	for name, p := range m {
		if p.Jobs == 0 && p.RemoteSteps == 0 {
			continue
		}
		rows = append(rows, PartyRow{Name: name, PartyTotals: p, Leverage: p.Leverage()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}
