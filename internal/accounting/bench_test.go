package accounting

import (
	"testing"
	"time"
)

// BenchmarkAccountingSyscall measures the per-syscall accounting hot
// path (three atomic adds). Committed to BENCH_baseline.json; must stay
// 0 allocs/op.
func BenchmarkAccountingSyscall(b *testing.B) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Syscall(128, 250*time.Microsecond)
	}
}

// BenchmarkAccountingSyscallParallel is the same path under contention,
// the shape a busy shadow pool produces.
func BenchmarkAccountingSyscallParallel(b *testing.B) {
	l := NewLedger()
	m := l.Job("wsA/1", "alice", "wsA")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Syscall(128, 250*time.Microsecond)
		}
	})
}

// BenchmarkLedgerSnapshot bounds the cost of rendering a View with a
// realistic number of live jobs (what /accounting pays per scrape).
func BenchmarkLedgerSnapshot(b *testing.B) {
	l := NewLedger()
	for i := 0; i < 100; i++ {
		m := l.Job("ws/"+string(rune('a'+i%26))+string(rune('0'+i/26)), "user", "ws")
		m.ObserveSteps(uint64(i) * 1000)
		m.Syscall(64, time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Snapshot()
	}
}
