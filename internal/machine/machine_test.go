package machine

import (
	"os"
	"testing"
	"time"

	"condor/internal/sim"
)

func TestScriptedMonitor(t *testing.T) {
	m := NewScriptedMonitor(true)
	if !m.OwnerActive() {
		t.Fatal("initial state lost")
	}
	m.SetActive(false)
	if m.OwnerActive() {
		t.Fatal("SetActive(false) ignored")
	}
}

func TestThresholdMonitor(t *testing.T) {
	cases := []struct {
		name   string
		sample Sample
		active bool
	}{
		{"busy cpu", Sample{CPUBusyFraction: 0.9, SinceLastInput: time.Hour}, true},
		{"recent input", Sample{CPUBusyFraction: 0.0, SinceLastInput: time.Second}, true},
		{"quiet", Sample{CPUBusyFraction: 0.01, SinceLastInput: time.Hour}, false},
		{"boundary cpu", Sample{CPUBusyFraction: 0.25, SinceLastInput: time.Hour}, false},
		{"boundary input", Sample{CPUBusyFraction: 0, SinceLastInput: 5 * time.Minute}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewThresholdMonitor(func() Sample { return tc.sample }, ThresholdConfig{})
			if got := m.OwnerActive(); got != tc.active {
				t.Fatalf("OwnerActive = %v, want %v", got, tc.active)
			}
		})
	}
}

func TestThresholdMonitorCustomConfig(t *testing.T) {
	sample := Sample{CPUBusyFraction: 0.5, SinceLastInput: time.Minute}
	strict := NewThresholdMonitor(func() Sample { return sample },
		ThresholdConfig{MaxCPUBusy: 0.9, MinInputIdle: time.Second})
	if strict.OwnerActive() {
		t.Fatal("loose thresholds should report idle")
	}
}

func TestTrackerIdleStreak(t *testing.T) {
	clock := sim.NewVirtualClock(time.Date(1987, 11, 2, 8, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock.Now())
	tr := NewTracker(engine.Clock())

	tr.Observe(false) // owner active
	if tr.IdleStreak() != 0 {
		t.Fatal("streak while active")
	}
	engine.After(10*time.Minute, func(time.Time) { tr.Observe(true) })
	engine.After(40*time.Minute, func(time.Time) {
		if got := tr.IdleStreak(); got != 30*time.Minute {
			t.Fatalf("streak = %v, want 30m", got)
		}
	})
	if err := engine.RunAll(10); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerAvgIdleLen(t *testing.T) {
	engine := sim.NewEngine(time.Date(1987, 11, 2, 8, 0, 0, 0, time.UTC))
	tr := NewTracker(engine.Clock())
	// idle 1h, active 1h, idle 3h, active...
	schedule := []struct {
		at   time.Duration
		idle bool
	}{
		{0, true},
		{1 * time.Hour, false},
		{2 * time.Hour, true},
		{5 * time.Hour, false},
	}
	for _, s := range schedule {
		s := s
		engine.At(engine.Now().Add(s.at), func(time.Time) { tr.Observe(s.idle) })
	}
	if err := engine.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if got := tr.Intervals(); got != 2 {
		t.Fatalf("intervals = %d, want 2", got)
	}
	if got := tr.AvgIdleLen(); got != 2*time.Hour {
		t.Fatalf("avg idle = %v, want 2h (mean of 1h and 3h)", got)
	}
}

func TestTrackerRepeatedSameObservation(t *testing.T) {
	engine := sim.NewEngine(time.Date(1987, 11, 2, 0, 0, 0, 0, time.UTC))
	tr := NewTracker(engine.Clock())
	tr.Observe(true)
	engine.After(time.Hour, func(time.Time) { tr.Observe(true) }) // no transition
	engine.After(2*time.Hour, func(time.Time) { tr.Observe(false) })
	if err := engine.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if tr.Intervals() != 1 {
		t.Fatalf("intervals = %d, want 1", tr.Intervals())
	}
	if tr.AvgIdleLen() != 2*time.Hour {
		t.Fatalf("avg = %v, want 2h", tr.AvgIdleLen())
	}
}

func TestTrackerBeforeAnyObservation(t *testing.T) {
	tr := NewTracker(sim.RealClock{})
	if tr.IdleStreak() != 0 || tr.AvgIdleLen() != 0 || tr.Intervals() != 0 {
		t.Fatal("zero-value expectations violated")
	}
}

func TestLoadAvgSamplerParsesFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/loadavg"
	if err := os.WriteFile(path, []byte("2.50 1.00 0.50 1/234 5678\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := LoadAvgSampler{Path: path, CPUs: 5}.Sample()
	if s.CPUBusyFraction != 0.5 {
		t.Fatalf("busy = %v, want 0.5", s.CPUBusyFraction)
	}
	if s.SinceLastInput < time.Hour {
		t.Fatal("input idle must be large (not observable)")
	}
}

func TestLoadAvgSamplerMissingFileMeansIdle(t *testing.T) {
	s := LoadAvgSampler{Path: "/nonexistent/loadavg", CPUs: 4}.Sample()
	if s.CPUBusyFraction != 0 {
		t.Fatalf("busy = %v, want 0 on missing file", s.CPUBusyFraction)
	}
}

func TestLoadAvgSamplerGarbage(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/loadavg"
	if err := os.WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := LoadAvgSampler{Path: path, CPUs: 1}.Sample()
	if s.CPUBusyFraction != 0 {
		t.Fatalf("busy = %v, want 0 on garbage", s.CPUBusyFraction)
	}
}

func TestNewLoadAvgMonitor(t *testing.T) {
	m := NewLoadAvgMonitor(ThresholdConfig{MaxCPUBusy: 1e9})
	// Threshold absurdly high: whatever the host load, this reports idle.
	if m.OwnerActive() {
		t.Fatal("monitor active despite impossible threshold")
	}
}
