package machine

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// LoadAvgSampler reads owner activity from the host's 1-minute load
// average (Linux /proc/loadavg), normalized by CPU count — the closest
// stdlib-only analogue to the paper's "CPU consumption by other users"
// signal. Keyboard/mouse idle time is not portably observable, so the
// sampler reports a large SinceLastInput and activity detection rests on
// the CPU threshold alone.
//
// On systems without /proc/loadavg the sampler reports zero load (always
// idle); deployments there should use the marker-file monitor instead.
type LoadAvgSampler struct {
	// Path is the loadavg file (default /proc/loadavg).
	Path string
	// CPUs normalizes the load (default runtime.NumCPU()).
	CPUs int
}

// Sample implements the sampling function for NewThresholdMonitor.
func (l LoadAvgSampler) Sample() Sample {
	path := l.Path
	if path == "" {
		path = "/proc/loadavg"
	}
	cpus := l.CPUs
	if cpus <= 0 {
		cpus = runtime.NumCPU()
	}
	s := Sample{SinceLastInput: 24 * time.Hour}
	data, err := os.ReadFile(path)
	if err != nil {
		return s
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return s
	}
	load, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s
	}
	s.CPUBusyFraction = load / float64(cpus)
	return s
}

// NewLoadAvgMonitor builds a threshold monitor over the host load
// average: the owner counts as active while normalized load exceeds
// cfg.MaxCPUBusy.
func NewLoadAvgMonitor(cfg ThresholdConfig) *ThresholdMonitor {
	sampler := LoadAvgSampler{}
	return NewThresholdMonitor(sampler.Sample, cfg)
}
