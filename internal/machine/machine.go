// Package machine models a workstation from the local scheduler's point
// of view: is the owner active, how long has the station been idle, and
// what does its availability history look like.
//
// The paper's local scheduler checks every ½ minute whether the owner
// has resumed using the station (§2.1). What "resumed" means is a
// machine-local detail — keyboard input, load average — so it is
// abstracted behind Monitor. Production deployments use a
// ThresholdMonitor over host samples; tests and the simulator drive a
// ScriptedMonitor.
package machine

import (
	"sync"
	"time"

	"condor/internal/sim"
)

// Monitor reports whether the workstation's owner is currently active.
// Implementations must be safe for concurrent use.
type Monitor interface {
	OwnerActive() bool
}

// ScriptedMonitor is a Monitor whose state is set explicitly. The
// in-process cluster and all tests use it to script owner behaviour.
type ScriptedMonitor struct {
	mu     sync.Mutex
	active bool
}

var _ Monitor = (*ScriptedMonitor)(nil)

// NewScriptedMonitor returns a monitor in the given initial state.
func NewScriptedMonitor(active bool) *ScriptedMonitor {
	return &ScriptedMonitor{active: active}
}

// OwnerActive implements Monitor.
func (m *ScriptedMonitor) OwnerActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// SetActive flips the owner state.
func (m *ScriptedMonitor) SetActive(active bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active = active
}

// Sample is one observation of host activity.
type Sample struct {
	// CPUBusyFraction is non-Condor CPU utilization in [0, 1].
	CPUBusyFraction float64
	// SinceLastInput is the time since the last keyboard/mouse input.
	SinceLastInput time.Duration
}

// ThresholdConfig tunes a ThresholdMonitor.
type ThresholdConfig struct {
	// MaxCPUBusy is the CPU fraction above which the owner counts as
	// active (default 0.25).
	MaxCPUBusy float64
	// MinInputIdle is how long input must have been quiet for the
	// station to count as idle (default 5 minutes, a common Condor
	// setting).
	MinInputIdle time.Duration
}

// DefaultThresholdConfig returns conventional thresholds.
func DefaultThresholdConfig() ThresholdConfig {
	return ThresholdConfig{MaxCPUBusy: 0.25, MinInputIdle: 5 * time.Minute}
}

// ThresholdMonitor derives owner activity from host samples.
type ThresholdMonitor struct {
	sampler func() Sample
	cfg     ThresholdConfig
}

var _ Monitor = (*ThresholdMonitor)(nil)

// NewThresholdMonitor wraps sampler with the given thresholds. Zero
// config fields take defaults.
func NewThresholdMonitor(sampler func() Sample, cfg ThresholdConfig) *ThresholdMonitor {
	def := DefaultThresholdConfig()
	if cfg.MaxCPUBusy <= 0 {
		cfg.MaxCPUBusy = def.MaxCPUBusy
	}
	if cfg.MinInputIdle <= 0 {
		cfg.MinInputIdle = def.MinInputIdle
	}
	return &ThresholdMonitor{sampler: sampler, cfg: cfg}
}

// OwnerActive implements Monitor.
func (m *ThresholdMonitor) OwnerActive() bool {
	s := m.sampler()
	if s.CPUBusyFraction > m.cfg.MaxCPUBusy {
		return true
	}
	return s.SinceLastInput < m.cfg.MinInputIdle
}

// Tracker accumulates a station's availability history from periodic
// observations: the current idle streak and the historic mean idle
// interval, which feed the §5.1 history-based placement strategy.
// Tracker is safe for concurrent use.
type Tracker struct {
	mu sync.Mutex

	clock sim.Clock

	idle      bool
	idleSince time.Time
	// completed idle intervals
	intervals int
	totalIdle time.Duration
	observed  bool
}

// NewTracker returns a tracker reading time from clock.
func NewTracker(clock sim.Clock) *Tracker {
	return &Tracker{clock: clock}
}

// Observe records the station's current idleness. Call it from the local
// scheduler's periodic scan.
func (t *Tracker) Observe(idle bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	if !t.observed {
		t.observed = true
		t.idle = idle
		if idle {
			t.idleSince = now
		}
		return
	}
	if idle == t.idle {
		return
	}
	if t.idle {
		// Idle interval ended.
		t.intervals++
		t.totalIdle += now.Sub(t.idleSince)
	} else {
		t.idleSince = now
	}
	t.idle = idle
}

// IdleStreak returns how long the station has currently been idle (zero
// if the owner is active).
func (t *Tracker) IdleStreak() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.observed || !t.idle {
		return 0
	}
	return t.clock.Now().Sub(t.idleSince)
}

// AvgIdleLen returns the mean length of completed idle intervals (zero
// until one completes).
func (t *Tracker) AvgIdleLen() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.intervals == 0 {
		return 0
	}
	return t.totalIdle / time.Duration(t.intervals)
}

// Intervals returns the number of completed idle intervals.
func (t *Tracker) Intervals() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.intervals
}
