package eventlog

import (
	"testing"
	"time"
)

// TestNotifyHook verifies the bus-forwarding hook: every Append after
// SetNotify is observed exactly once, with the timestamp already
// stamped, and a hook-free log appends without any side effects.
func TestNotifyHook(t *testing.T) {
	l := New(4)
	l.Append(Event{Kind: KindGrant, Station: "ws0"}) // pre-hook: silent

	var got []Event
	l.SetNotify(func(e Event) { got = append(got, e) })
	l.Append(Event{Kind: KindQuarantine, Station: "ws1", Detail: "timeout"})
	l.Append(Event{Kind: KindReadmit, Station: "ws1"})

	if len(got) != 2 {
		t.Fatalf("hook observed %d events, want 2", len(got))
	}
	if got[0].Kind != KindQuarantine || got[0].Station != "ws1" || got[0].Detail != "timeout" {
		t.Fatalf("first hooked event = %+v", got[0])
	}
	if got[0].At.IsZero() {
		t.Error("hook must see the stamped timestamp")
	}
	if got[1].Kind != KindReadmit {
		t.Fatalf("second hooked event = %+v", got[1])
	}

	// A caller-supplied timestamp survives into the hook unchanged.
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.Append(Event{Kind: KindGrant, At: at})
	if !got[2].At.Equal(at) {
		t.Errorf("hook saw At=%v, want %v", got[2].At, at)
	}

	// The ring itself is unaffected by the hook: 4 events total appended,
	// capacity 4, all retained.
	if events := l.Recent(0); len(events) != 4 {
		t.Errorf("ring holds %d events, want 4", len(events))
	}
}
