package eventlog

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAndRecent(t *testing.T) {
	l := New(8)
	for i := 0; i < 5; i++ {
		l.Append(Event{Kind: KindSubmit, Job: fmt.Sprintf("j%d", i)})
	}
	got := l.Recent(0)
	if len(got) != 5 {
		t.Fatalf("recent = %d events", len(got))
	}
	for i, e := range got {
		if e.Job != fmt.Sprintf("j%d", i) {
			t.Fatalf("order broken at %d: %+v", i, e)
		}
		if e.At.IsZero() {
			t.Fatal("timestamp not stamped")
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestRingEviction(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: KindPlace, Job: fmt.Sprintf("j%d", i)})
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("retained = %d, want 4", len(got))
	}
	if got[0].Job != "j6" || got[3].Job != "j9" {
		t.Fatalf("ring order = %v", got)
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
}

func TestRecentLimit(t *testing.T) {
	l := New(16)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: KindGrant, Station: fmt.Sprintf("ws%d", i)})
	}
	got := l.Recent(3)
	if len(got) != 3 || got[2].Station != "ws9" {
		t.Fatalf("recent(3) = %v", got)
	}
}

func TestForJob(t *testing.T) {
	l := New(16)
	l.Append(Event{Kind: KindSubmit, Job: "a"})
	l.Append(Event{Kind: KindSubmit, Job: "b"})
	l.Append(Event{Kind: KindPlace, Job: "a", Station: "ws2"})
	l.Append(Event{Kind: KindComplete, Job: "a"})
	trail := l.ForJob("a")
	if len(trail) != 3 {
		t.Fatalf("trail = %v", trail)
	}
	if trail[0].Kind != KindSubmit || trail[2].Kind != KindComplete {
		t.Fatalf("trail order = %v", trail)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At:      time.Date(1987, 11, 2, 14, 30, 5, 0, time.UTC),
		Kind:    KindVacate,
		Job:     "ws1/3",
		Station: "ws7",
		Detail:  "owner returned",
	}
	s := e.String()
	for _, want := range []string{"14:30:05", "vacate", "job=ws1/3", "station=ws7", "owner returned"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Kind: KindPoll()})
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("total = %d", l.Total())
	}
	if len(l.Recent(0)) != 64 {
		t.Fatalf("retained = %d", len(l.Recent(0)))
	}
}

// KindPoll exists only for the concurrency test.
func KindPoll() Kind { return Kind("poll") }

func TestZeroCapacityDefaults(t *testing.T) {
	l := New(0)
	l.Append(Event{Kind: KindSubmit})
	if len(l.Recent(0)) != 1 {
		t.Fatal("default capacity log broken")
	}
}

func TestForTrace(t *testing.T) {
	l := New(16)
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	l.Append(Event{Kind: KindSubmit, Job: "a", TraceID: tid})
	l.Append(Event{Kind: KindSubmit, Job: "b", TraceID: "feedfacefeedfacefeedfacefeedface"})
	l.Append(Event{Kind: KindGrant, Job: "a", Station: "ws2", TraceID: tid})
	l.Append(Event{Kind: KindPlace, Job: "a", Station: "ws2"}) // untraced event, same job
	l.Append(Event{Kind: KindComplete, Job: "a", TraceID: tid})
	trail := l.ForTrace(tid)
	if len(trail) != 3 {
		t.Fatalf("trail = %v", trail)
	}
	if trail[0].Kind != KindSubmit || trail[1].Kind != KindGrant || trail[2].Kind != KindComplete {
		t.Fatalf("trail order = %v", trail)
	}
	if got := l.ForTrace(""); got != nil {
		t.Fatalf("empty trace ID must match nothing, got %v", got)
	}
}

func TestEventStringTraceSuffix(t *testing.T) {
	e := Event{
		At:      time.Date(1987, 11, 2, 14, 30, 5, 0, time.UTC),
		Kind:    KindGrant,
		Job:     "ws1/3",
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
	}
	if s := e.String(); !strings.Contains(s, "trace=4bf92f35") {
		t.Fatalf("%q missing shortened trace suffix", s)
	}
	if s := (Event{Kind: KindSubmit, Job: "x"}).String(); strings.Contains(s, "trace=") {
		t.Fatalf("untraced event %q must not mention a trace", s)
	}
}
