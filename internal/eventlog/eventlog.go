// Package eventlog provides the bounded, in-memory event history every
// Condor daemon keeps: the submit/place/suspend/vacate/complete trail of
// each job and the grant/preempt/reservation decisions of the
// coordinator. Operators read it with cmd/condor-history; tests use it
// to assert causal sequences without scraping logs.
package eventlog

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds. Station-side kinds describe one job's lifecycle;
// coordinator-side kinds describe allocation decisions.
const (
	KindSubmit     Kind = "submit"
	KindPlace      Kind = "place"
	KindSuspend    Kind = "suspend"
	KindResume     Kind = "resume"
	KindVacate     Kind = "vacate"
	KindCheckpoint Kind = "checkpoint"
	KindComplete   Kind = "complete"
	KindFault      Kind = "fault"
	KindLost       Kind = "lost"
	KindRemove     Kind = "remove"

	KindRegister Kind = "register"
	KindGrant    Kind = "grant"
	KindPreempt  Kind = "preempt"
	KindReserve  Kind = "reserve"
	KindDead     Kind = "station-dead"

	// Graded station-health transitions. Detail carries the reason
	// (timeout, slow, byzantine, flap) so operators can tell a slow link
	// from a lying peer; KindDead's detail does the same for removals.
	KindSuspect    Kind = "suspect"
	KindQuarantine Kind = "quarantine"
	KindReadmit    Kind = "readmit"
	// KindDegraded marks the coordinator entering or leaving degraded
	// mode (too much of the pool non-healthy; up-down movement frozen).
	KindDegraded Kind = "degraded"

	// KindDecision summarizes one allocation cycle that did something
	// (grants, preemptions, or starved requesters); the full per-station
	// audit lives in the /decisions ring (internal/decision).
	KindDecision Kind = "decision-cycle"
)

// Event is one log entry.
type Event struct {
	At      time.Time `json:"at"`
	Kind    Kind      `json:"kind"`
	Job     string    `json:"job,omitempty"`
	Station string    `json:"station,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// TraceID stitches the event to its job's distributed trace (32
	// lowercase hex chars, see internal/trace), so condor-history can
	// pivot from an event trail to the /traces span timeline and back.
	TraceID string `json:"traceID,omitempty"`
}

// String renders the event as one line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-11s", e.At.Format("15:04:05.000"), e.Kind)
	if e.Job != "" {
		fmt.Fprintf(&b, " job=%s", e.Job)
	}
	if e.Station != "" {
		fmt.Fprintf(&b, " station=%s", e.Station)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if e.TraceID != "" {
		// The 8-char prefix is enough to eyeball-match against /traces
		// output without drowning the line.
		short := e.TraceID
		if len(short) > 8 {
			short = short[:8]
		}
		fmt.Fprintf(&b, " trace=%s", short)
	}
	return b.String()
}

// Log is a fixed-capacity ring of events. The zero value is unusable;
// call New. Log is safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	total  uint64
	notify func(Event)
}

// DefaultCapacity is the ring size daemons use.
const DefaultCapacity = 1024

// New returns a log holding the most recent capacity events (≤0 selects
// DefaultCapacity).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// SetNotify installs a hook observing every subsequently appended
// event (after its timestamp is stamped). Daemons use it to forward
// their event trail onto the telemetry event bus without eventlog
// importing telemetry. The hook runs outside the log's lock, on the
// appender's goroutine — it must be fast and must never call back into
// the log. Set it before the log is shared; replacing it later races
// with concurrent Appends.
func (l *Log) SetNotify(fn func(Event)) { l.notify = fn }

// Append records an event, stamping it with the current time if unset.
func (l *Log) Append(e Event) {
	if e.At.IsZero() {
		e.At = time.Now()
	}
	l.mu.Lock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	notify := l.notify
	l.mu.Unlock()
	if notify != nil {
		notify(e)
	}
}

// Recent returns up to n of the most recent events, oldest first. n <= 0
// returns everything retained.
func (l *Log) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	ordered := make([]Event, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		ordered = append(ordered, l.buf...)
	} else {
		ordered = append(ordered, l.buf[l.next:]...)
		ordered = append(ordered, l.buf[:l.next]...)
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Total returns the number of events ever appended (including evicted).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// ForJob returns the retained events for one job, oldest first.
func (l *Log) ForJob(jobID string) []Event {
	var out []Event
	for _, e := range l.Recent(0) {
		if e.Job == jobID {
			out = append(out, e)
		}
	}
	return out
}

// ForTrace returns the retained events stitched to one trace ID, oldest
// first — the event-side view of a /traces timeline.
func (l *Log) ForTrace(traceID string) []Event {
	var out []Event
	if traceID == "" {
		return out
	}
	for _, e := range l.Recent(0) {
		if e.TraceID == traceID {
			out = append(out, e)
		}
	}
	return out
}
