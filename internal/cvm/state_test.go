package cvm

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestSnapshotRestoreEquivalence is the core checkpointing property: for
// any split point k, running k steps, snapshotting, restoring on a
// "different machine" (fresh VM) and finishing produces exactly the same
// observable output and final state as an uninterrupted run. This is the
// paper's guarantee that "very little, if any, work will be performed
// more than once" and none is lost.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	reference := func() (string, uint64) {
		host := NewMemHost()
		v := newVM(t, MonteCarloPiProgram(3000), host)
		runToEnd(t, v)
		return host.Stdout(), v.Steps()
	}
	wantOut, wantSteps := reference()

	property := func(seed uint16) bool {
		k := uint64(seed)%wantSteps + 1
		host := NewMemHost()
		v := newVM(t, MonteCarloPiProgram(3000), host)
		st, err := v.Run(k)
		if err != nil {
			return false
		}
		if st == StatusHalted {
			return host.Stdout() == wantOut
		}
		img := v.Snapshot()
		v2, err := Restore(img, host)
		if err != nil {
			return false
		}
		if st2, err := v2.Run(wantSteps + 10); st2 != StatusHalted || err != nil {
			return false
		}
		return host.Stdout() == wantOut && v2.Steps() == wantSteps
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedMigrations(t *testing.T) {
	// Migrate the job every 500 steps across "machines"; the answer and
	// total work must match an uninterrupted run.
	host := NewMemHost()
	v := newVM(t, PrimeCountProgram(500), host)
	hops := 0
	for {
		st, err := v.Run(500)
		if err != nil {
			t.Fatal(err)
		}
		if st == StatusHalted {
			break
		}
		img := v.Snapshot()
		restored, err := Restore(img, host)
		if err != nil {
			t.Fatalf("hop %d: %v", hops, err)
		}
		v = restored
		hops++
		if hops > 10_000 {
			t.Fatal("job never finished")
		}
	}
	if hops < 3 {
		t.Fatalf("test exercised only %d migrations", hops)
	}
	if got := strings.TrimSpace(host.Stdout()); got != "95" {
		t.Fatalf("primes below 500 = %q, want 95", got)
	}
}

func TestSnapshotPreservesOpenFiles(t *testing.T) {
	host := NewMemHost()
	host.SetFile("in", []byte(strings.Repeat("abcdefgh", 32))) // 256 bytes = 4 reads
	v := newVM(t, FileCopyProgram("in", "out"), host)

	// Step until at least one file is open mid-copy.
	for len(v.OpenFiles()) < 2 {
		if st, err := v.Run(1); err != nil || st != StatusRunning {
			t.Fatalf("st %v err %v before files opened", st, err)
		}
	}
	// Run a bit more so offsets are non-zero.
	if _, err := v.Run(400); err != nil {
		t.Fatal(err)
	}
	img := v.Snapshot()
	if len(img.Files) == 0 {
		t.Skip("copy finished before snapshot point; shrink buffer to retest")
	}
	for _, f := range img.Files {
		if f.Name == "" {
			t.Fatalf("open file with empty name: %+v", f)
		}
	}
	v2, err := Restore(img, host)
	if err != nil {
		t.Fatal(err)
	}
	if st := runToEnd(t, v2); st != StatusHalted || v2.ExitCode() != 0 {
		t.Fatalf("status %v exit %d", st, v2.ExitCode())
	}
	out, _ := host.File("out")
	in, _ := host.File("in")
	if string(out) != string(in) {
		t.Fatalf("copy across checkpoint corrupted: got %d bytes, want %d", len(out), len(in))
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	v := newVM(t, SumProgram(1000), nil)
	if _, err := v.Run(10); err != nil {
		t.Fatal(err)
	}
	img := v.Snapshot()
	memBefore := append([]int64(nil), img.Mem...)
	if _, err := v.Run(100); err != nil {
		t.Fatal(err)
	}
	for i := range img.Mem {
		if img.Mem[i] != memBefore[i] {
			t.Fatal("snapshot memory mutated by continued execution")
		}
	}
}

func TestImageValidate(t *testing.T) {
	v := newVM(t, SumProgram(10), nil)
	if _, err := v.Run(5); err != nil {
		t.Fatal(err)
	}
	good := v.Snapshot()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	corrupt := func(mutate func(*Image)) *Image {
		img := v.Snapshot()
		mutate(img)
		return img
	}
	bad := map[string]*Image{
		"nil program":    corrupt(func(i *Image) { i.Program = nil }),
		"wrong mem size": corrupt(func(i *Image) { i.Mem = i.Mem[:0] }),
		"sp mismatch":    corrupt(func(i *Image) { i.SP = 99 }),
		"pc outside":     corrupt(func(i *Image) { i.PC = -1 }),
		"dup fd": corrupt(func(i *Image) {
			i.Files = []OpenFile{{FD: 3}, {FD: 3}}
			i.NextFD = 4
		}),
		"fd beyond next": corrupt(func(i *Image) {
			i.Files = []OpenFile{{FD: 9}}
		}),
		"stack cap too small": corrupt(func(i *Image) {
			i.Stack = []int64{1, 2, 3}
			i.SP = 3
			i.StackCap = 2
		}),
	}
	for name, img := range bad {
		if err := img.Validate(); err == nil {
			t.Fatalf("%s: corrupt image validated", name)
		}
		if _, err := Restore(img, NewMemHost()); err == nil {
			t.Fatalf("%s: corrupt image restored", name)
		}
	}
	if _, err := Restore(good, nil); err == nil {
		t.Fatal("restore with nil handler accepted")
	}
}

func TestHaltedImageRestores(t *testing.T) {
	v := newVM(t, SpinProgram(5), nil)
	runToEnd(t, v)
	img := v.Snapshot()
	v2, err := Restore(img, NewMemHost())
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status() != StatusHalted || v2.ExitCode() != 0 {
		t.Fatalf("restored halted vm: status %v exit %d", v2.Status(), v2.ExitCode())
	}
}

func TestImageSize(t *testing.T) {
	v := newVM(t, SumProgram(10), nil)
	img := v.Snapshot()
	if img.SizeWords() <= 0 {
		t.Fatal("image size must be positive")
	}
	if img.SizeBytes() != int64(img.SizeWords())*8 {
		t.Fatal("SizeBytes inconsistent with SizeWords")
	}
	// A bigger static segment yields a bigger image.
	big := newVM(t, MustAssemble("big", ".bss\nb: .space 10000\n.text\nstart:\n HALT 0\n"), nil)
	if big.Snapshot().SizeWords() <= img.SizeWords() {
		t.Fatal("bss growth not reflected in image size")
	}
}

func TestRNGStateSurvivesCheckpoint(t *testing.T) {
	// Draw a few randoms, checkpoint, restore twice; both restored copies
	// must produce the same continuation sequence.
	p := MustAssemble("rng", `
.text
start:
    RAND r2
    RAND r2
    RAND r2
    RAND r3
    RAND r4
    HALT 0
`)
	v := newVM(t, p, nil)
	if _, err := v.Run(3); err != nil {
		t.Fatal(err)
	}
	img := v.Snapshot()
	run := func() (int64, int64) {
		r, err := Restore(img, NewMemHost())
		if err != nil {
			t.Fatal(err)
		}
		if st, err := r.Run(100); st != StatusHalted || err != nil {
			t.Fatalf("st %v err %v", st, err)
		}
		return r.Reg(3), r.Reg(4)
	}
	a3, a4 := run()
	b3, b4 := run()
	if a3 != b3 || a4 != b4 {
		t.Fatal("RNG continuation differs between restores")
	}
	if a3 == 0 && a4 == 0 {
		t.Fatal("RNG produced zeros; state probably not saved")
	}
}
