package cvm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// runToEnd runs the VM until it halts or faults, failing the test on
// unexpected host errors or step exhaustion.
func runToEnd(t *testing.T, v *VM) Status {
	t.Helper()
	st, err := v.Run(50_000_000)
	if err != nil && st != StatusFaulted {
		t.Fatalf("run: %v", err)
	}
	if st == StatusRunning {
		t.Fatal("program did not terminate within step budget")
	}
	return st
}

func newVM(t *testing.T, p *Program, h SyscallHandler) *VM {
	t.Helper()
	if h == nil {
		h = NewMemHost()
	}
	v, err := New(p, h, Config{})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	return v
}

func TestSumProgram(t *testing.T) {
	host := NewMemHost()
	v := newVM(t, SumProgram(100), host)
	if st := runToEnd(t, v); st != StatusHalted {
		t.Fatalf("status = %v, fault = %v", st, v.Fault())
	}
	if v.ExitCode() != 0 {
		t.Fatalf("exit = %d", v.ExitCode())
	}
	if got := strings.TrimSpace(host.Stdout()); got != "5050" {
		t.Fatalf("stdout = %q, want 5050", got)
	}
}

func TestPrimeCountProgram(t *testing.T) {
	host := NewMemHost()
	v := newVM(t, PrimeCountProgram(100), host)
	runToEnd(t, v)
	if got := strings.TrimSpace(host.Stdout()); got != "25" {
		t.Fatalf("primes below 100 = %q, want 25", got)
	}
}

func TestMonteCarloPiDeterministic(t *testing.T) {
	run := func() string {
		host := NewMemHost()
		v := newVM(t, MonteCarloPiProgram(20000), host)
		runToEnd(t, v)
		return strings.TrimSpace(host.Stdout())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs differ: %q vs %q", a, b)
	}
	// crude sanity: the estimate of pi*10000 should be near 31416
	if len(a) != 5 || a[0] != '3' {
		t.Fatalf("pi estimate %q looks wrong", a)
	}
}

func TestSpinProgramStepCount(t *testing.T) {
	v := newVM(t, SpinProgram(1000), nil)
	runToEnd(t, v)
	// start: 3 setup instructions, loop: 3 per iteration + final JGE, HALT.
	want := uint64(3 + 3*1000 + 1 + 1)
	if v.Steps() != want {
		t.Fatalf("steps = %d, want %d", v.Steps(), want)
	}
}

func TestFileCopyProgram(t *testing.T) {
	host := NewMemHost()
	content := []byte("The Condor system schedules long running background jobs at idle workstations.\n")
	host.SetFile("in", content)
	v := newVM(t, FileCopyProgram("in", "out"), host)
	if st := runToEnd(t, v); st != StatusHalted {
		t.Fatalf("status %v fault %v", st, v.Fault())
	}
	if v.ExitCode() != 0 {
		t.Fatalf("exit = %d", v.ExitCode())
	}
	out, ok := host.File("out")
	if !ok {
		t.Fatal("out file missing")
	}
	if string(out) != string(content) {
		t.Fatalf("copy mismatch: %q", out)
	}
	if len(v.OpenFiles()) != 0 {
		t.Fatalf("descriptors leaked: %v", v.OpenFiles())
	}
}

func TestReportProgramAppends(t *testing.T) {
	host := NewMemHost()
	host.SetFile("results", []byte("42\n"))
	v := newVM(t, ReportProgram(10, "results"), host)
	if st := runToEnd(t, v); st != StatusHalted || v.ExitCode() != 0 {
		t.Fatalf("status %v exit %d fault %v", st, v.ExitCode(), v.Fault())
	}
	out, _ := host.File("results")
	if string(out) != "42\n55\n" {
		t.Fatalf("results = %q, want 42\\n55\\n", out)
	}
}

func TestOpenMissingFileReturnsErrno(t *testing.T) {
	v := newVM(t, FileCopyProgram("nope", "out"), NewMemHost())
	runToEnd(t, v)
	if v.ExitCode() != 1 {
		t.Fatalf("exit = %d, want 1 (open failure path)", v.ExitCode())
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	p := MustAssemble("divzero", `
.text
start:
    MOVI r1, 10
    MOVI r2, 0
    DIV  r0, r1, r2
    HALT 0
`)
	v := newVM(t, p, nil)
	st, err := v.Run(100)
	if st != StatusFaulted {
		t.Fatalf("status = %v, want faulted", st)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a FaultError", err)
	}
	if !strings.Contains(fe.Reason, "division by zero") {
		t.Fatalf("fault reason = %q", fe.Reason)
	}
}

func TestMemoryFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"load out of range", `
.data
x: .word 1
.text
start:
    MOVI r1, 999
    LD   r0, [r1]
    HALT 0
`},
		{"store negative", `
.data
x: .word 1
.text
start:
    MOVI r1, -5
    ST   [r1], r1
    HALT 0
`},
		{"stack underflow", `
.text
start:
    POP r0
    HALT 0
`},
		{"ret without call", `
.text
start:
    RET
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := newVM(t, MustAssemble(tc.name, tc.src), nil)
			if st, _ := v.Run(100); st != StatusFaulted {
				t.Fatalf("status = %v, want faulted", st)
			}
		})
	}
}

func TestStackOverflowFaults(t *testing.T) {
	p := MustAssemble("overflow", `
.text
start:
    MOVI r0, 1
loop:
    PUSH r0
    JMP  loop
`)
	v, err := New(p, NewMemHost(), Config{StackWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := v.Run(10_000); st != StatusFaulted {
		t.Fatalf("status = %v, want faulted", st)
	}
	if !strings.Contains(v.Fault().Reason, "stack overflow") {
		t.Fatalf("fault = %v", v.Fault())
	}
}

func TestRunStepBudget(t *testing.T) {
	v := newVM(t, SpinProgram(100000), nil)
	st, err := v.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusRunning {
		t.Fatalf("status = %v, want running", st)
	}
	if v.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", v.Steps())
	}
}

func TestRunAfterHaltFails(t *testing.T) {
	v := newVM(t, SpinProgram(1), nil)
	runToEnd(t, v)
	if _, err := v.Run(10); !errors.Is(err, ErrNotRunnable) {
		t.Fatalf("err = %v, want ErrNotRunnable", err)
	}
}

func TestHostErrorLeavesVMRunnable(t *testing.T) {
	hostErr := errors.New("shadow connection lost")
	broken := SyscallHandlerFunc(func(SyscallRequest) (SyscallReply, error) {
		return SyscallReply{}, hostErr
	})
	host := NewMemHost()
	p := MustAssemble("printer", `
.data
msg: .str "hi"
.text
start:
    MOVI r0, msg
    MOVI r1, 2
    SYS  print
    HALT 0
`)
	v, err := New(p, broken, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := v.Run(100)
	if !errors.Is(err, hostErr) {
		t.Fatalf("err = %v, want host error", err)
	}
	if st != StatusRunning {
		t.Fatalf("status = %v, want running (job must stay migratable)", st)
	}
	// The same VM state can be snapshotted and resumed against a healthy
	// host: the syscall retries and the program completes.
	img := v.Snapshot()
	v2, err := Restore(img, host)
	if err != nil {
		t.Fatal(err)
	}
	if st := runToEnd(t, v2); st != StatusHalted {
		t.Fatalf("resumed status = %v", st)
	}
	if host.Stdout() != "hi" {
		t.Fatalf("stdout = %q", host.Stdout())
	}
}

func TestSyscallCountTracked(t *testing.T) {
	host := NewMemHost()
	host.SetFile("in", []byte(strings.Repeat("x", 200)))
	v := newVM(t, FileCopyProgram("in", "out"), host)
	runToEnd(t, v)
	// 2 opens + 4 reads (64+64+64+8) + 1 EOF read + 4 writes + 2 closes.
	if v.Syscalls() < 10 {
		t.Fatalf("syscalls = %d, want >= 10", v.Syscalls())
	}
	if host.Calls() != v.Syscalls() {
		t.Fatalf("host saw %d calls, vm counted %d", host.Calls(), v.Syscalls())
	}
}

func TestNewRejectsBadPrograms(t *testing.T) {
	if _, err := New(&Program{Name: "empty"}, NewMemHost(), Config{}); err == nil {
		t.Fatal("empty program accepted")
	}
	p := SpinProgram(1)
	if _, err := New(p, nil, Config{}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := New(p, NewMemHost(), Config{MaxStaticWords: 0}); err != nil {
		t.Fatalf("zero cap should mean uncapped: %v", err)
	}
	big := &Program{Name: "big", Text: []Instr{{Op: OpHalt}}, BssLen: 1000}
	if _, err := New(big, NewMemHost(), Config{MaxStaticWords: 10}); err == nil {
		t.Fatal("over-cap program accepted")
	}
}

func TestProgramValidateCatchesBadTargets(t *testing.T) {
	bad := []Program{
		{Name: "jmp", Text: []Instr{{Op: OpJmp, A: 5}}},
		{Name: "reg", Text: []Instr{{Op: OpMovi, A: 99}}},
		{Name: "op", Text: []Instr{{Op: Opcode(200)}}},
		{Name: "sys", Text: []Instr{{Op: OpSys, A: 42}}},
		{Name: "entry", Text: []Instr{{Op: OpHalt}}, Entry: 3},
		{Name: "bss", Text: []Instr{{Op: OpHalt}}, BssLen: -1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Fatalf("program %q validated but is invalid", bad[i].Name)
		}
	}
}

func TestTextChecksumSharedAcrossParameters(t *testing.T) {
	a := SumProgram(10)
	b := SumProgram(999999)
	if a.TextChecksum() != b.TextChecksum() {
		t.Fatal("same text with different data parameters must share a checksum")
	}
	c := PrimeCountProgram(10)
	if a.TextChecksum() == c.TextChecksum() {
		t.Fatal("different programs share a checksum")
	}
}

func TestOpcodeString(t *testing.T) {
	if OpAdd.String() != "ADD" {
		t.Fatalf("OpAdd = %q", OpAdd)
	}
	if got := Opcode(250).String(); !strings.Contains(got, "250") {
		t.Fatalf("unknown opcode renders as %q", got)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusRunning: "running", StatusHalted: "halted", StatusFaulted: "faulted",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st, want)
		}
	}
	if !strings.Contains(Status(99).String(), "99") {
		t.Fatal("unknown status should include its number")
	}
}

func TestDisassemble(t *testing.T) {
	p := SpinProgram(5)
	lines := p.Disassemble()
	if len(lines) != len(p.Text) {
		t.Fatalf("%d lines for %d instructions", len(lines), len(p.Text))
	}
	if !strings.Contains(lines[0], "MOVI") {
		t.Fatalf("first line %q", lines[0])
	}
}

// TestRandomProgramsNeverPanic: any instruction sequence that passes
// Validate must execute without panicking — faulting is fine, memory
// corruption or crashes are not.
func TestRandomProgramsNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(1987))
	validated, ran := 0, 0
	for trial := 0; trial < 3000; trial++ {
		textLen := 1 + r.Intn(20)
		text := make([]Instr, textLen)
		field := func() int64 {
			// Mostly plausible values (registers / nearby targets), with a
			// tail of wild ones so invalid programs also appear.
			if r.Intn(10) == 0 {
				return int64(r.Intn(4000) - 2000)
			}
			return int64(r.Intn(textLen + NumRegs))
		}
		for i := range text {
			text[i] = Instr{
				Op: Opcode(r.Intn(int(opMax) + 3)), // includes invalid ops
				A:  field(),
				B:  field(),
				C:  field(),
			}
		}
		prog := &Program{
			Name:   "fuzz",
			Text:   text,
			Data:   make([]int64, r.Intn(8)),
			BssLen: r.Intn(8),
			Entry:  r.Intn(textLen),
		}
		if prog.Validate() != nil {
			continue
		}
		validated++
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("vm panicked on validated program %v: %v", text, rec)
				}
			}()
			vm, err := New(prog, NewMemHost(), Config{StackWords: 32})
			if err != nil {
				return
			}
			_, _ = vm.Run(2000)
			ran++
		}()
	}
	if validated < 30 || ran < 30 {
		t.Fatalf("fuzz exercised too little: %d validated, %d ran", validated, ran)
	}
}

func TestBitwiseAndShiftOps(t *testing.T) {
	p := MustAssemble("alu", `
.text
start:
    MOVI r1, 0b0       ; 12 via math below to exercise ops
    MOVI r1, 12
    MOVI r2, 10
    AND  r3, r1, r2    ; 8
    OR   r4, r1, r2    ; 14
    XOR  r5, r1, r2    ; 6
    MOVI r6, 2
    SHL  r7, r1, r6    ; 48
    SHR  r8, r1, r6    ; 3
    MOVI r6, 70        ; shift counts are taken mod 64
    SHL  r9, r1, r6    ; 12 << 6 = 768
    MULI r10, r1, -3   ; -36
    HALT 0
`)
	v := mustRun(t, p)
	want := map[int]int64{3: 8, 4: 14, 5: 6, 7: 48, 8: 3, 9: 768, 10: -36}
	for reg, val := range want {
		if got := v.Reg(reg); got != val {
			t.Errorf("r%d = %d, want %d", reg, got, val)
		}
	}
}

func TestShiftOfNegativeIsLogical(t *testing.T) {
	p := MustAssemble("shr-neg", `
.text
start:
    MOVI r1, -1
    MOVI r2, 63
    SHR  r3, r1, r2
    HALT 0
`)
	v := mustRun(t, p)
	if got := v.Reg(3); got != 1 {
		t.Fatalf("logical shift of -1 by 63 = %d, want 1", got)
	}
}

func TestRegAndMemAccessors(t *testing.T) {
	v := newVM(t, SumProgram(5), nil)
	if v.Reg(-1) != 0 || v.Reg(NumRegs) != 0 {
		t.Fatal("out-of-range Reg must be 0")
	}
	if _, ok := v.Mem(-1); ok {
		t.Fatal("negative address readable")
	}
	if _, ok := v.Mem(1 << 40); ok {
		t.Fatal("absurd address readable")
	}
	if got, ok := v.Mem(0); !ok || got != 5 {
		t.Fatalf("mem[0] = %d/%v, want the n parameter", got, ok)
	}
}

func TestDescriptorTableLimit(t *testing.T) {
	// Open the same file until the per-process table fills; the VM must
	// return ErrnoTooMany rather than fault (mirroring a 1980s per-process
	// fd limit).
	p := MustAssemble("fdlimit", `
.data
name: .str "f"
.text
start:
    MOVI r5, 0          ; successful opens
loop:
    MOVI r0, name
    MOVI r1, 1
    MOVI r2, 2          ; FlagWrite
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, out
    ADDI r5, r5, 1
    MOVI r9, 64
    JLT  r5, r9, loop
out:
    MOV  r0, r1         ; errno of the failing open
    HALT 0
`)
	host := NewMemHost()
	v, err := New(p, host, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(10_000); st != StatusHalted || err != nil {
		t.Fatalf("st %v err %v fault %v", st, err, v.Fault())
	}
	if got := v.Reg(5); got != MaxOpenFiles {
		t.Fatalf("successful opens = %d, want %d", got, MaxOpenFiles)
	}
	if got := v.Reg(0); got != ErrnoTooMany {
		t.Fatalf("errno = %d, want ErrnoTooMany", got)
	}
}

func TestSeekSyscallFromGuest(t *testing.T) {
	p := MustAssemble("seeker", `
.data
name: .str "f"
.bss
buf: .space 4
.text
start:
    MOVI r0, name
    MOVI r1, 1
    MOVI r2, 1          ; FlagRead
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, fail
    MOV  r12, r0
    ; seek to byte 6 absolute
    MOV  r0, r12
    MOVI r1, 6
    MOVI r2, 0
    SYS  seek
    JLT  r0, r9, fail
    ; read 4 bytes from there
    MOV  r0, r12
    MOVI r1, buf
    MOVI r2, 4
    SYS  read
    MOVI r9, 4
    JNE  r0, r9, fail
    MOVI r0, buf
    MOVI r1, 4
    SYS  print
    HALT 0
fail:
    HALT 1
`)
	host := NewMemHost()
	host.SetFile("f", []byte("abcdefGHIJkl"))
	v, err := New(p, host, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(10_000); st != StatusHalted || err != nil || v.ExitCode() != 0 {
		t.Fatalf("st %v err %v exit %d", st, err, v.ExitCode())
	}
	if host.Stdout() != "GHIJ" {
		t.Fatalf("seek+read = %q, want GHIJ", host.Stdout())
	}
}

func TestSyscallHandlerFuncAdapter(t *testing.T) {
	called := false
	h := SyscallHandlerFunc(func(req SyscallRequest) (SyscallReply, error) {
		called = true
		return SyscallReply{Ret: 7}, nil
	})
	rep, err := h.Syscall(SyscallRequest{Num: SysTime})
	if err != nil || rep.Ret != 7 || !called {
		t.Fatalf("adapter broken: %+v %v", rep, err)
	}
}
