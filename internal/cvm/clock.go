package cvm

import "time"

// nowMillis is the SysTime answer for real hosts. MemHost stays
// deterministic (returns 0); OSHost reports wall time.
func nowMillis() int64 { return time.Now().UnixMilli() }
