package cvm

import (
	"errors"
	"strings"
	"testing"
)

func TestAssembleDataLayout(t *testing.T) {
	p, err := Assemble("layout", `
.data
a: .word 1, 2, 3
s: .str "ab"
.bss
b: .space 4
.text
start:
    MOVI r0, a
    MOVI r1, s
    MOVI r2, b
    HALT 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 5 {
		t.Fatalf("data words = %d, want 5", len(p.Data))
	}
	if p.BssLen != 4 {
		t.Fatalf("bss = %d, want 4", p.BssLen)
	}
	// a at 0, s at 3, b at 5 (after data).
	if p.Text[0].B != 0 || p.Text[1].B != 3 || p.Text[2].B != 5 {
		t.Fatalf("label addresses = %d, %d, %d; want 0, 3, 5",
			p.Text[0].B, p.Text[1].B, p.Text[2].B)
	}
	if p.Data[3] != 'a' || p.Data[4] != 'b' {
		t.Fatalf("string data = %v", p.Data[3:])
	}
}

func TestAssembleForwardReferences(t *testing.T) {
	p, err := Assemble("fwd", `
.text
start:
    JMP  end
    MOVI r0, later   ; forward data reference
end:
    HALT 0
.data
later: .word 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].A != 2 {
		t.Fatalf("JMP end target = %d, want 2", p.Text[0].A)
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	p, err := Assemble("entry", `
.entry main
.text
helper:
    RET
main:
    HALT 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Fatalf("entry = %d, want 1", p.Entry)
	}
}

func TestAssembleDefaultEntryIsStartLabel(t *testing.T) {
	p, err := Assemble("start-label", `
.text
pad:
    NOP
start:
    HALT 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Fatalf("entry = %d, want 1 (the start label)", p.Entry)
	}
}

func TestAssembleMemOperandOffsets(t *testing.T) {
	p, err := Assemble("mem", `
.data
arr: .word 10, 20, 30
.text
start:
    MOVI r1, arr
    LD   r0, [r1+2]
    LD   r2, [r1-0]
    ST   [r1+1], r0
    HALT 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[1].C != 2 {
		t.Fatalf("LD offset = %d, want 2", p.Text[1].C)
	}
	v := mustRun(t, p)
	if got := v.Reg(0); got != 30 {
		t.Fatalf("r0 = %d, want 30", got)
	}
	if m, _ := v.Mem(1); m != 30 {
		t.Fatalf("mem[1] = %d, want 30 after store", m)
	}
}

func mustRun(t *testing.T, p *Program) *VM {
	t.Helper()
	v, err := New(p, NewMemHost(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(1_000_000); st != StatusHalted {
		t.Fatalf("status %v err %v", st, err)
	}
	return v
}

func TestAssembleCharAndHexImmediates(t *testing.T) {
	p, err := Assemble("imm", `
.text
start:
    MOVI r0, 'A'
    MOVI r1, 0x10
    MOVI r2, -7
    MOVI r3, '\n'
    HALT 0
`)
	if err != nil {
		t.Fatal(err)
	}
	v := mustRun(t, p)
	if v.Reg(0) != 65 || v.Reg(1) != 16 || v.Reg(2) != -7 || v.Reg(3) != 10 {
		t.Fatalf("regs = %d %d %d %d", v.Reg(0), v.Reg(1), v.Reg(2), v.Reg(3))
	}
}

func TestAssembleCommentsAndStringsWithSemicolons(t *testing.T) {
	p, err := Assemble("comments", `
; full line comment
.data
s: .str "a;b"   ; semicolon inside string is data
.text
start:          ; trailing comment
    MOVI r0, s
    HALT 0      ; done
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3 || p.Data[1] != ';' {
		t.Fatalf("data = %v, want a;b", p.Data)
	}
}

func TestAssembleSysMnemonicNames(t *testing.T) {
	p, err := Assemble("sys", `
.text
start:
    SYS print
    SYS 4
    HALT 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].A != SysPrint || p.Text[1].A != SysWrite {
		t.Fatalf("sys numbers = %d, %d", p.Text[0].A, p.Text[1].A)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSubstr string
	}{
		{"unknown mnemonic", ".text\nstart:\n FROB r0\n", "unknown mnemonic"},
		{"bad register", ".text\nstart:\n MOVI r99, 1\n", "bad register"},
		{"undefined symbol", ".text\nstart:\n JMP nowhere\n", "undefined symbol"},
		{"duplicate label", ".text\nx:\n NOP\nx:\n HALT 0\n", "redefined"},
		{"wrong operand count", ".text\nstart:\n ADD r0, r1\n", "wants 3 operands"},
		{"word in bss", ".bss\nx: .word 3\n.text\nstart:\n HALT 0\n", "only .space"},
		{"bad string", `.data` + "\n" + `s: .str nope` + "\n.text\nstart:\n HALT 0\n", "quoted string"},
		{"bad escape", `.data` + "\n" + `s: .str "a\q"` + "\n.text\nstart:\n HALT 0\n", "unknown escape"},
		{"missing entry label", ".entry nope\n.text\nx:\n HALT 0\n", "entry label"},
		{"empty text", ".data\nx: .word 1\n", "empty text"},
		{"bad space size", ".bss\nb: .space -4\n.text\nstart:\n HALT 0\n", "bad size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.name, tc.src)
			if err == nil {
				t.Fatal("assembled successfully, want error")
			}
			if !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSubstr)
			}
		})
	}
}

func TestAsmErrorCarriesLineNumber(t *testing.T) {
	_, err := Assemble("line", ".text\nstart:\n NOP\n FROB r0\n")
	var ae *AsmError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *AsmError", err)
	}
	if ae.Line != 4 {
		t.Fatalf("line = %d, want 4", ae.Line)
	}
}

func TestCallRet(t *testing.T) {
	p, err := Assemble("callret", `
.text
start:
    MOVI r0, 5
    CALL double
    CALL double
    HALT 0
double:
    ADD r0, r0, r0
    RET
`)
	if err != nil {
		t.Fatal(err)
	}
	v := mustRun(t, p)
	if v.Reg(0) != 20 {
		t.Fatalf("r0 = %d, want 20", v.Reg(0))
	}
}

func TestRecursiveFactorialViaStack(t *testing.T) {
	// fact(n): if n <= 1 return 1 else n * fact(n-1), n passed in r0.
	p, err := Assemble("fact", `
.text
start:
    MOVI r0, 10
    CALL fact
    HALT 0
fact:
    MOVI r1, 1
    JGT  r0, r1, recurse
    MOVI r0, 1
    RET
recurse:
    PUSH r0
    ADDI r0, r0, -1
    CALL fact
    POP  r2
    MUL  r0, r0, r2
    RET
`)
	if err != nil {
		t.Fatal(err)
	}
	v := mustRun(t, p)
	if v.Reg(0) != 3628800 {
		t.Fatalf("10! = %d, want 3628800", v.Reg(0))
	}
}

func TestMustAssemblePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("bad", "FROB\n")
}

// TestAssembleNeverPanics feeds adversarial byte soup to the assembler:
// it must return an error or a valid program, never panic.
func TestAssembleNeverPanics(t *testing.T) {
	sources := []string{
		"", "\x00\x01\x02", ":::", ".data\n.data\n.data",
		".text\nstart:\n MOVI", ".text\n MOVI r0,", "label:",
		".data\nx: .word", ".data\nx: .str", ".bss\nx: .space",
		".entry", ".entry a b c", "; only a comment",
		strings.Repeat("a", 10000), ".text\n" + strings.Repeat("NOP\n", 5000),
		".data\ns: .str \"unterminated", "JMP JMP JMP",
		".text\nstart:\n LD r0, [", ".text\nstart:\n ST ], r0",
		".text\nstart:\n ADDI r0, r1, 'xx'",
	}
	for _, src := range sources {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("assembler panicked on %q: %v", truncate(src), r)
				}
			}()
			prog, err := Assemble("fuzz", src)
			if err == nil && prog != nil {
				if verr := prog.Validate(); verr != nil {
					t.Fatalf("assembler emitted invalid program for %q: %v", truncate(src), verr)
				}
			}
		}()
	}
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
