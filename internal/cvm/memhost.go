package cvm

import (
	"sort"
	"strings"
	"sync"
)

// MemHost is a SyscallHandler backed by an in-memory file store. It is
// what a "local execution" of a job looks like: no shadow, no network.
// Tests, the quickstart example, and cmd/condor-exec use it; the real
// shadow in internal/ru implements the same request contract against the
// submitting machine's actual filesystem.
//
// MemHost is safe for concurrent use.
type MemHost struct {
	mu     sync.Mutex
	files  map[string][]byte
	stdout strings.Builder
	calls  uint64
}

var _ SyscallHandler = (*MemHost)(nil)

// NewMemHost returns an empty in-memory host.
func NewMemHost() *MemHost {
	return &MemHost{files: make(map[string][]byte)}
}

// SetFile installs a file's contents.
func (h *MemHost) SetFile(name string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.files[name] = append([]byte(nil), data...)
}

// File returns a file's contents and whether it exists.
func (h *MemHost) File(name string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, ok := h.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Files lists the stored file names in sorted order.
func (h *MemHost) Files() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.files))
	for name := range h.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stdout returns everything the guest printed.
func (h *MemHost) Stdout() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stdout.String()
}

// Calls returns the number of syscalls served.
func (h *MemHost) Calls() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls
}

// Syscall implements SyscallHandler.
func (h *MemHost) Syscall(req SyscallRequest) (SyscallReply, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls++
	switch req.Num {
	case SysOpen:
		return h.open(req), nil
	case SysClose:
		return SyscallReply{Ret: 0}, nil
	case SysRead:
		return h.read(req), nil
	case SysWrite:
		return h.write(req), nil
	case SysPrint:
		h.stdout.Write(req.Data)
		return SyscallReply{Ret: int64(len(req.Data))}, nil
	case SysSeek:
		return h.seek(req), nil
	case SysTime:
		// Deterministic: a fixed epoch. Real hosts return wall millis.
		return SyscallReply{Ret: 0}, nil
	default:
		return SyscallReply{Ret: -1, Errno: ErrnoInval}, nil
	}
}

func (h *MemHost) open(req SyscallRequest) SyscallReply {
	flags := req.Args[2]
	data, exists := h.files[req.Name]
	switch {
	case flags&FlagRead != 0:
		if !exists {
			return SyscallReply{Ret: -1, Errno: ErrnoNoEnt}
		}
		return SyscallReply{Ret: 0}
	case flags&FlagAppend != 0:
		if !exists {
			h.files[req.Name] = nil
		}
		return SyscallReply{Ret: int64(len(data))}
	case flags&FlagWrite != 0:
		h.files[req.Name] = nil // truncate/create
		return SyscallReply{Ret: 0}
	default:
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
}

func (h *MemHost) read(req SyscallRequest) SyscallReply {
	data, exists := h.files[req.Name]
	if !exists {
		return SyscallReply{Ret: -1, Errno: ErrnoNoEnt}
	}
	off, n := req.Args[1], req.Args[2]
	if off < 0 || n < 0 {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	if off >= int64(len(data)) {
		return SyscallReply{Ret: 0} // EOF
	}
	end := off + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	chunk := append([]byte(nil), data[off:end]...)
	return SyscallReply{Ret: int64(len(chunk)), Data: chunk}
}

func (h *MemHost) write(req SyscallRequest) SyscallReply {
	data := h.files[req.Name]
	off := req.Args[1]
	if off < 0 {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	end := off + int64(len(req.Data))
	if end > int64(len(data)) {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[off:end], req.Data)
	h.files[req.Name] = data
	return SyscallReply{Ret: int64(len(req.Data))}
}

func (h *MemHost) seek(req SyscallRequest) SyscallReply {
	data := h.files[req.Name]
	off, whence, cur := req.Args[1], req.Args[2], req.Args[3]
	var pos int64
	switch whence {
	case 0: // absolute
		pos = off
	case 1: // relative to current
		pos = cur + off
	case 2: // relative to end
		pos = int64(len(data)) + off
	default:
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	if pos < 0 {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	return SyscallReply{Ret: pos}
}
