package cvm

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// OSHost is a SyscallHandler backed by a real directory on the
// submitting machine — what a production shadow uses so remote jobs read
// and write the user's actual files. All guest paths are confined to the
// root directory; escape attempts (.., absolute paths, symlink-style
// tricks at the name level) yield ErrnoNoEnt/ErrnoInval rather than
// host access.
//
// OSHost is safe for concurrent use. Guest stdout (SysPrint) is captured
// in memory and also mirrored to Mirror when set.
type OSHost struct {
	root   string
	mu     sync.Mutex
	stdout strings.Builder
	calls  uint64
	// Mirror, when non-nil, additionally receives guest stdout.
	Mirror io.Writer
}

var _ SyscallHandler = (*OSHost)(nil)

// NewOSHost creates a host rooted at dir, creating it if needed.
func NewOSHost(dir string) (*OSHost, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("cvm: oshost root: %w", err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("cvm: oshost root: %w", err)
	}
	return &OSHost{root: abs}, nil
}

// Root returns the sandbox directory.
func (h *OSHost) Root() string { return h.root }

// Stdout returns everything the guest printed.
func (h *OSHost) Stdout() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stdout.String()
}

// Calls returns the number of syscalls served.
func (h *OSHost) Calls() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls
}

// resolve maps a guest file name into the sandbox, rejecting escapes.
func (h *OSHost) resolve(name string) (string, error) {
	if name == "" || strings.ContainsRune(name, 0) {
		return "", errors.New("empty or NUL name")
	}
	clean := filepath.Clean("/" + name) // force-absolute then clean
	if clean == "/" {
		return "", errors.New("root is not a file")
	}
	return filepath.Join(h.root, clean), nil
}

// Syscall implements SyscallHandler.
func (h *OSHost) Syscall(req SyscallRequest) (SyscallReply, error) {
	h.mu.Lock()
	h.calls++
	h.mu.Unlock()
	switch req.Num {
	case SysOpen:
		return h.open(req), nil
	case SysClose:
		return SyscallReply{Ret: 0}, nil
	case SysRead:
		return h.read(req), nil
	case SysWrite:
		return h.write(req), nil
	case SysPrint:
		h.mu.Lock()
		h.stdout.Write(req.Data)
		mirror := h.Mirror
		h.mu.Unlock()
		if mirror != nil {
			_, _ = mirror.Write(req.Data)
		}
		return SyscallReply{Ret: int64(len(req.Data))}, nil
	case SysSeek:
		return h.seek(req), nil
	case SysTime:
		return SyscallReply{Ret: nowMillis()}, nil
	default:
		return SyscallReply{Ret: -1, Errno: ErrnoInval}, nil
	}
}

func (h *OSHost) open(req SyscallRequest) SyscallReply {
	path, err := h.resolve(req.Name)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	flags := req.Args[2]
	switch {
	case flags&FlagRead != 0:
		fi, err := os.Stat(path)
		if err != nil || fi.IsDir() {
			return SyscallReply{Ret: -1, Errno: ErrnoNoEnt}
		}
		return SyscallReply{Ret: 0}
	case flags&FlagAppend != 0:
		fi, err := os.Stat(path)
		if err != nil {
			if f, cerr := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); cerr == nil {
				f.Close()
				return SyscallReply{Ret: 0}
			}
			return SyscallReply{Ret: -1, Errno: ErrnoIO}
		}
		return SyscallReply{Ret: fi.Size()}
	case flags&FlagWrite != 0:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return SyscallReply{Ret: -1, Errno: ErrnoIO}
		}
		f.Close()
		return SyscallReply{Ret: 0}
	default:
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
}

func (h *OSHost) read(req SyscallRequest) SyscallReply {
	path, err := h.resolve(req.Name)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	f, err := os.Open(path)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoNoEnt}
	}
	defer f.Close()
	off, n := req.Args[1], req.Args[2]
	if off < 0 || n < 0 {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	buf := make([]byte, n)
	got, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return SyscallReply{Ret: -1, Errno: ErrnoIO}
	}
	return SyscallReply{Ret: int64(got), Data: buf[:got]}
}

func (h *OSHost) write(req SyscallRequest) SyscallReply {
	path, err := h.resolve(req.Name)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoIO}
	}
	defer f.Close()
	off := req.Args[1]
	if off < 0 {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	n, err := f.WriteAt(req.Data, off)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoIO}
	}
	return SyscallReply{Ret: int64(n)}
}

func (h *OSHost) seek(req SyscallRequest) SyscallReply {
	path, err := h.resolve(req.Name)
	if err != nil {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	off, whence, cur := req.Args[1], req.Args[2], req.Args[3]
	var pos int64
	switch whence {
	case 0:
		pos = off
	case 1:
		pos = cur + off
	case 2:
		pos = size + off
	default:
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	if pos < 0 {
		return SyscallReply{Ret: -1, Errno: ErrnoInval}
	}
	return SyscallReply{Ret: pos}
}
