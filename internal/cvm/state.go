package cvm

import (
	"errors"
	"fmt"
)

// Image is the complete serializable execution state of a VM: exactly the
// checkpoint contents §2.3 enumerates (text, data, bss, stack, registers,
// open-file status). There are never unreplied shadow messages in an
// Image because system calls are synchronous.
type Image struct {
	Program  *Program       `json:"program"`
	Mem      []int64        `json:"mem"`
	Stack    []int64        `json:"stack"` // live words only (sp of them)
	Regs     [NumRegs]int64 `json:"regs"`
	PC       int64          `json:"pc"`
	SP       int64          `json:"sp"`
	RNG      uint64         `json:"rng"`
	Steps    uint64         `json:"steps"`
	SysCnt   uint64         `json:"sysCnt"`
	Status   Status         `json:"status"`
	Exit     int64          `json:"exit"`
	Files    []OpenFile     `json:"files"`
	NextFD   int64          `json:"nextFd"`
	StackCap int            `json:"stackCap"`
}

// Snapshot captures the VM state between instructions. The returned Image
// shares nothing with the VM, so the VM may keep running (this is what
// makes the §4 "periodic checkpointing" proposal implementable).
func (v *VM) Snapshot() *Image {
	img := &Image{
		Program:  v.prog, // immutable by contract
		Mem:      append([]int64(nil), v.mem...),
		Stack:    append([]int64(nil), v.stack[:v.sp]...),
		Regs:     v.regs,
		PC:       v.pc,
		SP:       v.sp,
		RNG:      v.rng,
		Steps:    v.steps,
		SysCnt:   v.sysCnt,
		Status:   v.status,
		Exit:     v.exit,
		NextFD:   v.nextFD,
		StackCap: len(v.stack),
	}
	img.Files = v.OpenFiles()
	return img
}

// Validate checks an Image for structural sanity before restoring it.
func (img *Image) Validate() error {
	if img.Program == nil {
		return errors.New("cvm: image has no program")
	}
	if err := img.Program.Validate(); err != nil {
		return fmt.Errorf("cvm: image program: %w", err)
	}
	if len(img.Mem) != img.Program.StaticWords() {
		return fmt.Errorf("cvm: image memory %d words, program wants %d",
			len(img.Mem), img.Program.StaticWords())
	}
	if img.SP != int64(len(img.Stack)) {
		return fmt.Errorf("cvm: image sp=%d but %d stack words saved", img.SP, len(img.Stack))
	}
	if img.StackCap < len(img.Stack) {
		return fmt.Errorf("cvm: image stack capacity %d below live size %d",
			img.StackCap, len(img.Stack))
	}
	if img.Status == StatusRunning && (img.PC < 0 || img.PC >= int64(len(img.Program.Text))) {
		return fmt.Errorf("cvm: image pc %d outside text", img.PC)
	}
	seen := make(map[int64]bool, len(img.Files))
	for _, f := range img.Files {
		if seen[f.FD] {
			return fmt.Errorf("cvm: image has duplicate fd %d", f.FD)
		}
		seen[f.FD] = true
		if f.FD >= img.NextFD {
			return fmt.Errorf("cvm: image fd %d >= nextFD %d", f.FD, img.NextFD)
		}
	}
	return nil
}

// Restore reconstructs a VM from an image. The handler is the new host's
// syscall path (after a migration this is a different machine talking to
// the same shadow). The caller is responsible for re-opening the files in
// img.Files on the shadow side; the VM only restores its descriptor table.
func Restore(img *Image, handler SyscallHandler) (*VM, error) {
	if handler == nil {
		return nil, errors.New("cvm: nil syscall handler")
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	v := &VM{
		prog:    img.Program,
		mem:     append([]int64(nil), img.Mem...),
		stack:   make([]int64, img.StackCap),
		regs:    img.Regs,
		pc:      img.PC,
		sp:      img.SP,
		rng:     img.RNG,
		steps:   img.Steps,
		sysCnt:  img.SysCnt,
		status:  img.Status,
		exit:    img.Exit,
		files:   make(map[int64]*OpenFile, len(img.Files)),
		nextFD:  img.NextFD,
		handler: handler,
	}
	copy(v.stack, img.Stack)
	for _, f := range img.Files {
		f := f
		v.files[f.FD] = &f
	}
	return v, nil
}

// SizeWords returns the image's memory footprint in words (static + live
// stack). The checkpoint cost model (5 s/MB, §3.1) is driven by this.
func (img *Image) SizeWords() int {
	return len(img.Mem) + len(img.Stack) + len(img.Program.Text)*4
}

// SizeBytes returns the approximate serialized size of the image.
func (img *Image) SizeBytes() int64 { return int64(img.SizeWords()) * 8 }
