package cvm

import (
	"strconv"
	"strings"
	"testing"
)

func runProgram(t *testing.T, p *Program) string {
	t.Helper()
	host := NewMemHost()
	v, err := New(p, host, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(500_000_000); st != StatusHalted || err != nil {
		t.Fatalf("st %v err %v fault %v", st, err, v.Fault())
	}
	return strings.TrimSpace(host.Stdout())
}

// goMatTrace computes |trace(A·B)| with A[i][j]=i+j, B[i][j]=i-j.
func goMatTrace(n int64) int64 {
	trace := int64(0)
	for i := int64(0); i < n; i++ {
		for k := int64(0); k < n; k++ {
			trace += (i + k) * (k - i)
		}
	}
	if trace < 0 {
		trace = -trace
	}
	return trace
}

func TestMatMulProgramMatchesGo(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 5, 8} {
		got := runProgram(t, MatMulProgram(n))
		want := strconv.FormatInt(goMatTrace(n), 10)
		if got != want {
			t.Fatalf("n=%d: trace = %s, want %s", n, got, want)
		}
	}
}

// goCollatzBest mirrors the guest program.
func goCollatzBest(n int64) int64 {
	best := int64(0)
	for start := int64(1); start <= n; start++ {
		x, length := start, int64(0)
		for x != 1 {
			if x%2 == 0 {
				x /= 2
			} else {
				x = 3*x + 1
			}
			length++
		}
		if length > best {
			best = length
		}
	}
	return best
}

func TestCollatzProgramMatchesGo(t *testing.T) {
	for _, n := range []int64{1, 6, 27, 100} {
		got := runProgram(t, CollatzProgram(n))
		want := strconv.FormatInt(goCollatzBest(n), 10)
		if got != want {
			t.Fatalf("n=%d: longest = %s, want %s", n, got, want)
		}
	}
}

func TestRandomSearchDeterministicAndBounded(t *testing.T) {
	p := func() *Program { return RandomSearchProgram(5000, 1000, 700) }
	a := runProgram(t, p())
	b := runProgram(t, p())
	if a != b {
		t.Fatalf("two runs differ: %s vs %s", a, b)
	}
	best, err := strconv.ParseInt(a, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Max of f is target² = 490000 at x=target; with 5000 probes over
	// 1000 points the best must be positive and ≤ the max.
	if best <= 0 || best > 700*700 {
		t.Fatalf("best = %d outside (0, %d]", best, 700*700)
	}
}

func TestRandomSearchSurvivesMigration(t *testing.T) {
	// The random search's answer depends entirely on the RNG sequence —
	// migrating mid-run must not change it.
	want := runProgram(t, RandomSearchProgram(20_000, 5000, 3000))

	host := NewMemHost()
	v, err := New(RandomSearchProgram(20_000, 5000, 3000), host, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for hop := 0; ; hop++ {
		st, err := v.Run(30_000)
		if err != nil {
			t.Fatal(err)
		}
		if st == StatusHalted {
			break
		}
		restored, err := Restore(v.Snapshot(), host)
		if err != nil {
			t.Fatal(err)
		}
		v = restored
		if hop > 1000 {
			t.Fatal("never finished")
		}
	}
	if got := strings.TrimSpace(host.Stdout()); got != want {
		t.Fatalf("migrated answer %s != uninterrupted %s", got, want)
	}
}

func TestWordCountProgram(t *testing.T) {
	cases := map[string]string{
		"":                           "0",
		"one":                        "1",
		"  leading and   trailing  ": "3",
		"a\nb\tc d\r\ne":             "5",
		strings.Repeat("word ", 100): "100",
	}
	for input, want := range cases {
		host := NewMemHost()
		host.SetFile("in", []byte(input))
		v, err := New(WordCountProgram("in"), host, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := v.Run(10_000_000); st != StatusHalted || err != nil {
			t.Fatalf("st %v err %v fault %v", st, err, v.Fault())
		}
		if got := strings.TrimSpace(host.Stdout()); got != want {
			t.Fatalf("wc(%q) = %s, want %s", truncate(input), got, want)
		}
	}
}

func TestWordCountSurvivesMigration(t *testing.T) {
	host := NewMemHost()
	host.SetFile("in", []byte(strings.Repeat("alpha beta gamma\n", 40)))
	v, err := New(WordCountProgram("in"), host, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for hops := 0; ; hops++ {
		st, err := v.Run(500)
		if err != nil {
			t.Fatal(err)
		}
		if st == StatusHalted {
			break
		}
		v, err = Restore(v.Snapshot(), host)
		if err != nil {
			t.Fatal(err)
		}
		if hops > 10_000 {
			t.Fatal("never finished")
		}
	}
	if got := strings.TrimSpace(host.Stdout()); got != "120" {
		t.Fatalf("migrated wc = %q, want 120", got)
	}
}
