package cvm

import "fmt"

// This file extends the guest-program library with heavier numerical
// kernels: the "studies of load-balancing algorithms … simulation of
// real-time scheduling algorithms … mathematical combinatorial problems"
// (§2) that motivated Condor were exactly this shape of code.

// MatMulProgram multiplies two n×n matrices (A[i][j]=i+j, B[i][j]=i-j)
// and prints the trace of the product. Cubic work in n; exercises
// register-indexed addressing hard.
func MatMulProgram(n int64) *Program {
	src := fmt.Sprintf(`
.data
n: .word %d
.bss
a:   .space %d
b:   .space %d
c:   .space %d
%s
.text
start:
    MOVI r0, n
    LD   r12, [r0]     ; n
    ; fill A and B
    MOVI r1, 0         ; i
fill_i:
    JGE  r1, r12, mul_setup
    MOVI r2, 0         ; j
fill_j:
    JGE  r2, r12, fill_next_i
    MUL  r3, r1, r12
    ADD  r3, r3, r2    ; idx = i*n+j
    ADD  r4, r1, r2    ; i+j
    MOVI r5, a
    ADD  r5, r5, r3
    ST   [r5], r4
    SUB  r4, r1, r2    ; i-j
    MOVI r5, b
    ADD  r5, r5, r3
    ST   [r5], r4
    ADDI r2, r2, 1
    JMP  fill_j
fill_next_i:
    ADDI r1, r1, 1
    JMP  fill_i

mul_setup:
    MOVI r1, 0         ; i
mul_i:
    JGE  r1, r12, trace
    MOVI r2, 0         ; j
mul_j:
    JGE  r2, r12, mul_next_i
    MOVI r6, 0         ; acc
    MOVI r3, 0         ; k
mul_k:
    JGE  r3, r12, mul_store
    MUL  r4, r1, r12
    ADD  r4, r4, r3    ; a idx = i*n+k
    MOVI r5, a
    ADD  r5, r5, r4
    LD   r7, [r5]
    MUL  r4, r3, r12
    ADD  r4, r4, r2    ; b idx = k*n+j
    MOVI r5, b
    ADD  r5, r5, r4
    LD   r8, [r5]
    MUL  r7, r7, r8
    ADD  r6, r6, r7
    ADDI r3, r3, 1
    JMP  mul_k
mul_store:
    MUL  r4, r1, r12
    ADD  r4, r4, r2
    MOVI r5, c
    ADD  r5, r5, r4
    ST   [r5], r6
    ADDI r2, r2, 1
    JMP  mul_j
mul_next_i:
    ADDI r1, r1, 1
    JMP  mul_i

trace:
    MOVI r1, 0
    MOVI r6, 0         ; trace acc
trace_loop:
    JGE  r1, r12, report
    MUL  r4, r1, r12
    ADD  r4, r4, r1    ; c[i][i]
    MOVI r5, c
    ADD  r5, r5, r4
    LD   r7, [r5]
    ADD  r6, r6, r7
    ADDI r1, r1, 1
    JMP  trace_loop
report:
    ; trace of (i+j)(i-j) products can be negative; print |trace|
    MOVI r9, 0
    JGE  r6, r9, positive
    MOVI r8, -1
    MUL  r6, r6, r8
positive:
    MOV  r0, r6
    CALL printint
    HALT 0
%s`, n, n*n, n*n, n*n, printIntBSS, printIntRoutine)
	return MustAssemble(fmt.Sprintf("matmul-%d", n), src)
}

// CollatzProgram finds the longest Collatz (3n+1) trajectory for
// starting values in [1, n] and prints its length — a classic
// departmental background job: tiny state, unpredictable runtime.
func CollatzProgram(n int64) *Program {
	src := fmt.Sprintf(`
.data
n: .word %d
.bss
%s
.text
start:
    MOVI r0, n
    LD   r12, [r0]     ; limit
    MOVI r2, 1         ; start value
    MOVI r13, 0        ; best length
outer:
    JGT  r2, r12, done
    MOV  r3, r2        ; x
    MOVI r4, 0         ; length
step:
    MOVI r5, 1
    JEQ  r3, r5, check
    MOVI r6, 2
    MOD  r7, r3, r6
    MOVI r8, 0
    JEQ  r7, r8, even
    MULI r3, r3, 3
    ADDI r3, r3, 1
    JMP  bump
even:
    DIV  r3, r3, r6
bump:
    ADDI r4, r4, 1
    JMP  step
check:
    JLE  r4, r13, next
    MOV  r13, r4
next:
    ADDI r2, r2, 1
    JMP  outer
done:
    MOV  r0, r13
    CALL printint
    HALT 0
%s`, n, printIntBSS, printIntRoutine)
	return MustAssemble(fmt.Sprintf("collatz-%d", n), src)
}

// RandomSearchProgram runs a random search for the maximum of the
// integer function f(x) = -(x-target)² + target² over [0, space) using
// rounds random probes. It leans on the checkpointed RNG, so a migrated
// run must report the identical best value.
func RandomSearchProgram(rounds, space, target int64) *Program {
	src := fmt.Sprintf(`
.data
rounds: .word %d
space:  .word %d
target: .word %d
.bss
%s
.text
start:
    MOVI r0, rounds
    LD   r12, [r0]
    MOVI r0, space
    LD   r11, [r0]
    MOVI r0, target
    LD   r10, [r0]
    MOVI r2, 0           ; i
    MOVI r13, -4611686018427387904 ; best so far (very small)
probe:
    JGE  r2, r12, done
    RAND r3
    MOD  r3, r3, r11     ; x in [0, space)
    SUB  r4, r3, r10     ; x - target
    MUL  r4, r4, r4      ; (x-target)^2
    MUL  r5, r10, r10    ; target^2
    SUB  r5, r5, r4      ; f(x)
    JLE  r5, r13, skip
    MOV  r13, r5
skip:
    ADDI r2, r2, 1
    JMP  probe
done:
    MOV  r0, r13
    CALL printint
    HALT 0
%s`, rounds, space, target, printIntBSS, printIntRoutine)
	return MustAssemble(fmt.Sprintf("randsearch-%d", rounds), src)
}

// WordCountProgram reads the named input file through the shadow and
// prints its whitespace-separated word count — a syscall-per-buffer job
// shape sitting between the pure CPU burners and FileCopyProgram.
func WordCountProgram(in string) *Program {
	src := fmt.Sprintf(`
.data
inname: .str "%s"
.bss
buf: .space 64
%s
.text
start:
    MOVI r0, inname
    MOVI r1, %d
    MOVI r2, 1          ; FlagRead
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, fail
    MOV  r12, r0        ; fd
    MOVI r13, 0         ; word count
    MOVI r14, 0         ; in-word flag
readloop:
    MOV  r0, r12
    MOVI r1, buf
    MOVI r2, 64
    SYS  read
    JLT  r0, r9, fail
    JEQ  r0, r9, finish ; EOF
    MOV  r3, r0         ; bytes read
    MOVI r4, 0          ; i
scan:
    JGE  r4, r3, readloop
    MOVI r5, buf
    ADD  r5, r5, r4
    LD   r6, [r5]       ; byte
    ; whitespace? space, \n, \t, \r
    MOVI r7, ' '
    JEQ  r6, r7, ws
    MOVI r7, '\n'
    JEQ  r6, r7, ws
    MOVI r7, '\t'
    JEQ  r6, r7, ws
    MOVI r7, 13
    JEQ  r6, r7, ws
    ; non-whitespace: count a word on the 0->1 transition
    MOVI r7, 1
    JEQ  r14, r7, nextc
    MOVI r14, 1
    ADDI r13, r13, 1
    JMP  nextc
ws:
    MOVI r14, 0
nextc:
    ADDI r4, r4, 1
    JMP  scan
finish:
    MOV  r0, r12
    SYS  close
    MOV  r0, r13
    CALL printint
    HALT 0
fail:
    HALT 1
%s`, in, printIntBSS, len(in), printIntRoutine)
	return MustAssemble(fmt.Sprintf("wc-%s", in), src)
}
