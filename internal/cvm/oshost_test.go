package cvm

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newOSHost(t *testing.T) *OSHost {
	t.Helper()
	h, err := NewOSHost(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestOSHostFileCopyProgram(t *testing.T) {
	h := newOSHost(t)
	content := []byte(strings.Repeat("remote unix turns idle workstations into cycle servers\n", 8))
	if err := os.WriteFile(filepath.Join(h.Root(), "in"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := New(FileCopyProgram("in", "out"), h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(10_000_000); st != StatusHalted || err != nil {
		t.Fatalf("st %v err %v", st, err)
	}
	if v.ExitCode() != 0 {
		t.Fatalf("exit %d", v.ExitCode())
	}
	out, err := os.ReadFile(filepath.Join(h.Root(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, content) {
		t.Fatalf("copy mismatch: %d vs %d bytes", len(out), len(content))
	}
}

func TestOSHostReportAppend(t *testing.T) {
	h := newOSHost(t)
	if err := os.WriteFile(filepath.Join(h.Root(), "results"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := New(ReportProgram(4, "results"), h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(10_000_000); st != StatusHalted || err != nil {
		t.Fatalf("st %v err %v", st, err)
	}
	out, _ := os.ReadFile(filepath.Join(h.Root(), "results"))
	if string(out) != "1\n10\n" {
		t.Fatalf("results = %q", out)
	}
}

func TestOSHostStdoutCaptureAndMirror(t *testing.T) {
	h := newOSHost(t)
	var mirror bytes.Buffer
	h.Mirror = &mirror
	v, err := New(SumProgram(10), h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(1_000_000); st != StatusHalted || err != nil {
		t.Fatalf("st %v err %v", st, err)
	}
	if strings.TrimSpace(h.Stdout()) != "55" {
		t.Fatalf("stdout = %q", h.Stdout())
	}
	if strings.TrimSpace(mirror.String()) != "55" {
		t.Fatalf("mirror = %q", mirror.String())
	}
	if h.Calls() == 0 {
		t.Fatal("call counter dead")
	}
}

func TestOSHostSandboxEscapesRejected(t *testing.T) {
	h := newOSHost(t)
	// Plant a file *outside* the sandbox; traversal names must not reach it.
	outside := filepath.Join(filepath.Dir(h.Root()), "secret")
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"../secret",
		"../../etc/passwd",
		"/etc/passwd",
		"sub/../../secret",
	} {
		rep, err := h.Syscall(SyscallRequest{
			Num:  SysOpen,
			Args: [4]int64{0, 0, FlagRead, 0},
			Name: name,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errno == ErrnoNone {
			// Resolvable inside the sandbox is fine only if it does not
			// leak the outside file.
			resolved, rerr := h.resolve(name)
			if rerr == nil && !strings.HasPrefix(resolved, h.Root()+string(filepath.Separator)) {
				t.Fatalf("name %q escaped to %q", name, resolved)
			}
			if rerr == nil {
				data, _ := os.ReadFile(resolved)
				if string(data) == "secret" {
					t.Fatalf("name %q read the outside file", name)
				}
			}
		}
	}
}

func TestOSHostResolveConfinement(t *testing.T) {
	h := newOSHost(t)
	cases := []string{"a", "a/b/c", "../x", "./../../x", "/abs/path", "a/../../b"}
	for _, name := range cases {
		got, err := h.resolve(name)
		if err != nil {
			continue
		}
		if got != h.Root() && !strings.HasPrefix(got, h.Root()+string(filepath.Separator)) {
			t.Fatalf("resolve(%q) = %q escapes root %q", name, got, h.Root())
		}
	}
	if _, err := h.resolve(""); err == nil {
		t.Fatal("empty name resolved")
	}
	if _, err := h.resolve("a\x00b"); err == nil {
		t.Fatal("NUL name resolved")
	}
}

func TestOSHostMissingFileErrno(t *testing.T) {
	h := newOSHost(t)
	rep, err := h.Syscall(SyscallRequest{
		Num: SysOpen, Args: [4]int64{0, 0, FlagRead, 0}, Name: "missing",
	})
	if err != nil || rep.Errno != ErrnoNoEnt {
		t.Fatalf("rep = %+v err %v", rep, err)
	}
	rep, err = h.Syscall(SyscallRequest{
		Num: SysRead, Args: [4]int64{3, 0, 10, 0}, Name: "missing",
	})
	if err != nil || rep.Errno != ErrnoNoEnt {
		t.Fatalf("read rep = %+v err %v", rep, err)
	}
}

func TestOSHostSeek(t *testing.T) {
	h := newOSHost(t)
	if err := os.WriteFile(filepath.Join(h.Root(), "f"), []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off, whence, cur, want int64
		wantErrno              int64
	}{
		{5, 0, 0, 5, ErrnoNone},
		{2, 1, 3, 5, ErrnoNone},
		{-4, 2, 0, 6, ErrnoNone},
		{-20, 0, 0, 0, ErrnoInval},
		{0, 9, 0, 0, ErrnoInval},
	}
	for _, tc := range cases {
		rep, err := h.Syscall(SyscallRequest{
			Num: SysSeek, Args: [4]int64{3, tc.off, tc.whence, tc.cur}, Name: "f",
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errno != tc.wantErrno {
			t.Fatalf("seek(%d,%d) errno = %d want %d", tc.off, tc.whence, rep.Errno, tc.wantErrno)
		}
		if tc.wantErrno == ErrnoNone && rep.Ret != tc.want {
			t.Fatalf("seek(%d,%d) = %d want %d", tc.off, tc.whence, rep.Ret, tc.want)
		}
	}
}

func TestOSHostTimeAdvances(t *testing.T) {
	h := newOSHost(t)
	rep, err := h.Syscall(SyscallRequest{Num: SysTime})
	if err != nil || rep.Ret <= 0 {
		t.Fatalf("time = %+v err %v", rep, err)
	}
}
