package cvm

import "fmt"

// Opcode identifies a VM instruction.
type Opcode uint8

// The instruction set. Operand conventions per opcode are documented in
// the execution switch in vm.go; rA/rB/rC denote register indices stored
// in the A/B/C fields, imm denotes an immediate value.
const (
	OpNop  Opcode = iota + 1 // no operation
	OpHalt                   // halt with exit code imm A
	OpMovi                   // rA = imm B
	OpMov                    // rA = rB
	OpLd                     // rA = mem[rB + imm C]
	OpSt                     // mem[rA + imm C] = rB
	OpPush                   // push rA
	OpPop                    // rA = pop
	OpAdd                    // rA = rB + rC
	OpSub                    // rA = rB - rC
	OpMul                    // rA = rB * rC
	OpDiv                    // rA = rB / rC (fault on rC == 0)
	OpMod                    // rA = rB % rC (fault on rC == 0)
	OpAddi                   // rA = rB + imm C
	OpMuli                   // rA = rB * imm C
	OpAnd                    // rA = rB & rC
	OpOr                     // rA = rB | rC
	OpXor                    // rA = rB ^ rC
	OpShl                    // rA = rB << rC
	OpShr                    // rA = rB >> rC
	OpJmp                    // pc = imm A
	OpJeq                    // if rA == rB: pc = imm C
	OpJne                    // if rA != rB: pc = imm C
	OpJlt                    // if rA <  rB: pc = imm C
	OpJle                    // if rA <= rB: pc = imm C
	OpJgt                    // if rA >  rB: pc = imm C
	OpJge                    // if rA >= rB: pc = imm C
	OpCall                   // push pc+1; pc = imm A
	OpRet                    // pc = pop
	OpSys                    // syscall imm A; args r0..r3, result r0, errno r1
	OpRand                   // rA = next local deterministic random int63
	opMax                    // sentinel; not a real opcode
)

var opcodeNames = map[Opcode]string{
	OpNop: "NOP", OpHalt: "HALT", OpMovi: "MOVI", OpMov: "MOV",
	OpLd: "LD", OpSt: "ST", OpPush: "PUSH", OpPop: "POP",
	OpAdd: "ADD", OpSub: "SUB", OpMul: "MUL", OpDiv: "DIV", OpMod: "MOD",
	OpAddi: "ADDI", OpMuli: "MULI",
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpShl: "SHL", OpShr: "SHR",
	OpJmp: "JMP", OpJeq: "JEQ", OpJne: "JNE", OpJlt: "JLT",
	OpJle: "JLE", OpJgt: "JGT", OpJge: "JGE",
	OpCall: "CALL", OpRet: "RET", OpSys: "SYS", OpRand: "RAND",
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if s, ok := opcodeNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op >= OpNop && op < opMax }

// Instr is one fixed-format instruction. The meaning of A, B, C depends
// on the opcode (register index or immediate).
type Instr struct {
	Op Opcode `json:"op"`
	A  int64  `json:"a"`
	B  int64  `json:"b"`
	C  int64  `json:"c"`
}

// NumRegs is the number of general-purpose registers (r0..r15).
const NumRegs = 16

// System call numbers. Arguments are passed in r0..r3; the result is
// returned in r0 and an errno-style code in r1 (0 on success).
const (
	SysOpen  = 1 // open(nameAddr, nameLen, flags) -> fd
	SysClose = 2 // close(fd)
	SysRead  = 3 // read(fd, addr, n) -> bytes read (one byte per word)
	SysWrite = 4 // write(fd, addr, n) -> bytes written
	SysSeek  = 5 // seek(fd, offset, whence) -> new offset
	SysTime  = 6 // time() -> host milliseconds
	SysPrint = 7 // print(addr, n): write to standard output stream
)

// Open flags for SysOpen.
const (
	FlagRead   = 1 // open for reading
	FlagWrite  = 2 // open for writing (created/truncated)
	FlagAppend = 4 // open for appending
)

// Errno-style codes returned in r1 after a failed system call.
const (
	ErrnoNone    = 0
	ErrnoBadFD   = 1 // file descriptor not open
	ErrnoNoEnt   = 2 // file does not exist
	ErrnoIO      = 3 // underlying I/O failure
	ErrnoInval   = 4 // invalid argument
	ErrnoTooMany = 5 // descriptor table full
)

// MaxOpenFiles bounds the per-job descriptor table, mirroring a small
// 1980s per-process limit.
const MaxOpenFiles = 16
