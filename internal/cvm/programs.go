package cvm

import "fmt"

// This file holds the guest-program library used by examples, tests and
// the real-daemon demos. Each constructor returns a freshly assembled
// Program; the parameter is baked into the data segment, matching the
// paper's observation that users "submit several occurrences of the same
// job to the system with only different parameters to evaluate" (§4) —
// such jobs share a text checksum and therefore a stored text segment.

// printIntRoutine converts r0 (non-negative) to decimal and prints it
// followed by a newline. Clobbers r5..r9. Requires a bss buffer "pib".
const printIntRoutine = `
printint:
    MOVI r6, 0
    MOVI r7, 10
    MOV  r5, r0
pi_digit:
    MOD  r8, r5, r7
    ADDI r8, r8, '0'
    PUSH r8
    ADDI r6, r6, 1
    DIV  r5, r5, r7
    MOVI r9, 0
    JGT  r5, r9, pi_digit
    MOVI r5, pib
pi_pop:
    POP  r8
    ST   [r5], r8
    ADDI r5, r5, 1
    ADDI r6, r6, -1
    MOVI r9, 0
    JGT  r6, r9, pi_pop
    MOVI r8, '\n'
    ST   [r5], r8
    MOVI r9, pib
    SUB  r1, r5, r9
    ADDI r1, r1, 1
    MOVI r0, pib
    SYS  print
    RET
`

const printIntBSS = `
pib: .space 24
`

// SumProgram sums the integers 1..n and prints the result. A compact,
// fully deterministic CPU burner: it retires roughly 4n+30 instructions.
func SumProgram(n int64) *Program {
	src := fmt.Sprintf(`
.data
n: .word %d
.bss
%s
.text
start:
    MOVI r0, n
    LD   r2, [r0]      ; r2 = n
    MOVI r1, 0         ; i
    MOVI r3, 0         ; sum
loop:
    JGT  r1, r2, done
    ADD  r3, r3, r1
    ADDI r1, r1, 1
    JMP  loop
done:
    MOV  r0, r3
    CALL printint
    HALT 0
%s`, n, printIntBSS, printIntRoutine)
	return MustAssemble(fmt.Sprintf("sum-%d", n), src)
}

// PrimeCountProgram counts primes in [2, n) by trial division and prints
// the count. Runtime grows superlinearly in n, so it makes a good
// long-running background job.
func PrimeCountProgram(n int64) *Program {
	src := fmt.Sprintf(`
.data
n: .word %d
.bss
%s
.text
start:
    MOVI r0, n
    LD   r12, [r0]     ; limit
    MOVI r2, 2         ; candidate
    MOVI r13, 0        ; count
cand:
    JGE  r2, r12, done
    MOVI r3, 2         ; divisor
trial:
    MUL  r4, r3, r3
    JGT  r4, r2, isprime
    MOD  r5, r2, r3
    MOVI r6, 0
    JEQ  r5, r6, notprime
    ADDI r3, r3, 1
    JMP  trial
isprime:
    ADDI r13, r13, 1
notprime:
    ADDI r2, r2, 1
    JMP  cand
done:
    MOV  r0, r13
    CALL printint
    HALT 0
%s`, n, printIntBSS, printIntRoutine)
	return MustAssemble(fmt.Sprintf("primes-%d", n), src)
}

// MonteCarloPiProgram estimates pi*10000 from samples random points in
// the unit square, using the VM's checkpointed RNG — demonstrating that a
// stochastic job resumed from a checkpoint produces the identical answer.
func MonteCarloPiProgram(samples int64) *Program {
	src := fmt.Sprintf(`
.data
n: .word %d
.bss
%s
.text
start:
    MOVI r0, n
    LD   r12, [r0]     ; samples
    MOVI r2, 0         ; i
    MOVI r13, 0        ; inside count
    MOVI r10, 10000    ; grid scale
draw:
    JGE  r2, r12, done
    RAND r3
    MOD  r3, r3, r10   ; x in [0,10000)
    RAND r4
    MOD  r4, r4, r10   ; y
    MUL  r5, r3, r3
    MUL  r6, r4, r4
    ADD  r5, r5, r6
    MOVI r7, 100000000 ; 10000^2
    JGE  r5, r7, miss
    ADDI r13, r13, 1
miss:
    ADDI r2, r2, 1
    JMP  draw
done:
    MOVI r8, 40000
    MUL  r13, r13, r8
    DIV  r13, r13, r12 ; 4*inside/samples scaled by 10000
    MOV  r0, r13
    CALL printint
    HALT 0
%s`, samples, printIntBSS, printIntRoutine)
	return MustAssemble(fmt.Sprintf("mcpi-%d", samples), src)
}

// FileCopyProgram copies the file named in (on the submitting machine,
// via the shadow) to the file named out, one buffer at a time. It is the
// syscall-heavy job shape the paper warns about in §3.1: lots of remote
// reads and writes per instruction executed.
func FileCopyProgram(in, out string) *Program {
	src := fmt.Sprintf(`
.data
inname:  .str "%s"
outname: .str "%s"
.bss
buf: .space 64
%s
.text
start:
    MOVI r0, inname
    MOVI r1, %d
    MOVI r2, 1          ; FlagRead
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, fail
    MOV  r12, r0        ; in fd
    MOVI r0, outname
    MOVI r1, %d
    MOVI r2, 2          ; FlagWrite
    SYS  open
    JLT  r0, r9, fail
    MOV  r13, r0        ; out fd
copyloop:
    MOV  r0, r12
    MOVI r1, buf
    MOVI r2, 64
    SYS  read
    JLT  r0, r9, fail
    JEQ  r0, r9, finish ; zero bytes: EOF
    MOV  r2, r0         ; bytes read
    MOV  r0, r13
    MOVI r1, buf
    SYS  write
    JLT  r0, r9, fail
    JMP  copyloop
finish:
    MOV  r0, r12
    SYS  close
    MOV  r0, r13
    SYS  close
    HALT 0
fail:
    HALT 1
%s`, in, out, printIntBSS, len(in), len(out), printIntRoutine)
	return MustAssemble(fmt.Sprintf("copy-%s", in), src)
}

// SpinProgram burns exactly 3n+2 instructions doing nothing observable,
// then halts. Daemon tests use it as a job whose CPU demand is precisely
// controllable.
func SpinProgram(n int64) *Program {
	src := fmt.Sprintf(`
.data
n: .word %d
.text
start:
    MOVI r0, n
    LD   r2, [r0]
    MOVI r1, 0
loop:
    JGE  r1, r2, done
    ADDI r1, r1, 1
    JMP  loop
done:
    HALT 0
`, n)
	return MustAssemble(fmt.Sprintf("spin-%d", n), src)
}

// ReportProgram computes the sum of 1..n and appends the result to the
// named output file via the shadow, modelling the common "simulation
// writes its result file at the end" job shape from the paper's §2
// motivating workloads.
func ReportProgram(n int64, out string) *Program {
	src := fmt.Sprintf(`
.data
n:       .word %d
outname: .str "%s"
.bss
%s
.text
start:
    MOVI r0, n
    LD   r2, [r0]
    MOVI r1, 0
    MOVI r3, 0
loop:
    JGT  r1, r2, write
    ADD  r3, r3, r1
    ADDI r1, r1, 1
    JMP  loop
write:
    MOVI r0, outname
    MOVI r1, %d
    MOVI r2, 4          ; FlagAppend
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, fail
    MOV  r12, r0
    ; format r3 into pib via printint's digit logic, then write to file
    MOV  r0, r3
    CALL formatint
    MOVI r9, 0          ; formatint clobbers r9
    MOV  r2, r1         ; length
    MOV  r0, r12
    MOVI r1, pib
    SYS  write
    JLT  r0, r9, fail
    MOV  r0, r12
    SYS  close
    HALT 0
fail:
    HALT 1

; formatint: r0 value -> decimal+newline in pib, length in r1.
formatint:
    MOVI r6, 0
    MOVI r7, 10
    MOV  r5, r0
fi_digit:
    MOD  r8, r5, r7
    ADDI r8, r8, '0'
    PUSH r8
    ADDI r6, r6, 1
    DIV  r5, r5, r7
    MOVI r9, 0
    JGT  r5, r9, fi_digit
    MOVI r5, pib
fi_pop:
    POP  r8
    ST   [r5], r8
    ADDI r5, r5, 1
    ADDI r6, r6, -1
    MOVI r9, 0
    JGT  r6, r9, fi_pop
    MOVI r8, '\n'
    ST   [r5], r8
    MOVI r9, pib
    SUB  r1, r5, r9
    ADDI r1, r1, 1
    RET
`, n, out, printIntBSS, len(out))
	return MustAssemble(fmt.Sprintf("report-%d", n), src)
}
