package cvm

import (
	"fmt"
	"strconv"
	"strings"
)

// AsmError reports an assembly failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *AsmError) Error() string {
	return fmt.Sprintf("cvm: asm line %d: %s", e.Line, e.Msg)
}

type section int

const (
	secText section = iota + 1
	secData
	secBSS
)

type asmLine struct {
	num     int
	label   string
	mnem    string
	args    []string
	section section
}

type assembler struct {
	name      string
	lines     []asmLine
	dataWords []int64
	bssLen    int
	labels    map[string]int64 // text labels -> instr index; data/bss -> address
	textLen   int
	entry     string
}

// Assemble compiles assembler source into a Program. See package examples
// and programs.go for the syntax. The two-pass design resolves forward
// references to both text and data labels.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{name: name, labels: make(map[string]int64)}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	prog, err := a.emit()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustAssemble is Assemble for known-good embedded program sources; it
// panics on error and is intended for package-level program constructors.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &AsmError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) parse(src string) error {
	sec := secText
	for i, raw := range strings.Split(src, "\n") {
		lineNum := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var label string
		if idx := strings.Index(line, ":"); idx >= 0 && isIdent(line[:idx]) {
			label = line[:idx]
			line = strings.TrimSpace(line[idx+1:])
		}
		switch {
		case line == ".text":
			sec = secText
		case line == ".data":
			sec = secData
		case line == ".bss":
			sec = secBSS
		case strings.HasPrefix(line, ".entry"):
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return a.errf(lineNum, ".entry wants one label")
			}
			a.entry = fields[1]
		case line == "" && label != "":
			a.lines = append(a.lines, asmLine{num: lineNum, label: label, section: sec})
			continue
		case line == "":
			continue
		default:
			mnem, args := splitInstr(line)
			a.lines = append(a.lines, asmLine{
				num: lineNum, label: label, mnem: mnem, args: args, section: sec,
			})
			continue
		}
		if label != "" {
			a.lines = append(a.lines, asmLine{num: lineNum, label: label, section: sec})
		}
	}
	return nil
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case ';':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitInstr(line string) (string, []string) {
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return strings.ToUpper(line), nil
	}
	mnem := strings.ToUpper(line[:sp])
	rest := strings.TrimSpace(line[sp+1:])
	if rest == "" {
		return mnem, nil
	}
	if mnem == ".STR" {
		return mnem, []string{rest}
	}
	parts := strings.Split(rest, ",")
	args := make([]string, 0, len(parts))
	for _, p := range parts {
		args = append(args, strings.TrimSpace(p))
	}
	return mnem, args
}

// layout performs the first pass: compute data/bss addresses, text
// indices, and record all labels.
func (a *assembler) layout() error {
	dataAddr := 0
	bssWords := 0
	textIdx := 0
	// First sub-pass: sizes of data items so bss base is known. Data
	// occupies [0, len(data)); bss occupies [len(data), ...).
	type pending struct {
		line   asmLine
		sizeFn func() (int, error)
		isData bool
		isBSS  bool
		isText bool
	}
	var items []pending
	for _, ln := range a.lines {
		ln := ln
		switch ln.section {
		case secData:
			if ln.mnem == "" {
				items = append(items, pending{line: ln, isData: true, sizeFn: func() (int, error) { return 0, nil }})
				continue
			}
			switch ln.mnem {
			case ".WORD":
				n := len(ln.args)
				items = append(items, pending{line: ln, isData: true, sizeFn: func() (int, error) { return n, nil }})
			case ".STR":
				s, err := parseStringLit(ln.args)
				if err != nil {
					return a.errf(ln.num, "%v", err)
				}
				n := len(s)
				items = append(items, pending{line: ln, isData: true, sizeFn: func() (int, error) { return n, nil }})
			case ".ZERO", ".SPACE":
				n, err := sizeArg(ln.args)
				if err != nil {
					return a.errf(ln.num, "%v", err)
				}
				items = append(items, pending{line: ln, isData: true, sizeFn: func() (int, error) { return n, nil }})
			default:
				return a.errf(ln.num, "directive %s not allowed in .data", ln.mnem)
			}
		case secBSS:
			if ln.mnem == "" {
				items = append(items, pending{line: ln, isBSS: true, sizeFn: func() (int, error) { return 0, nil }})
				continue
			}
			if ln.mnem != ".SPACE" && ln.mnem != ".ZERO" {
				return a.errf(ln.num, "only .space allowed in .bss, got %s", ln.mnem)
			}
			n, err := sizeArg(ln.args)
			if err != nil {
				return a.errf(ln.num, "%v", err)
			}
			items = append(items, pending{line: ln, isBSS: true, sizeFn: func() (int, error) { return n, nil }})
		case secText:
			items = append(items, pending{line: ln, isText: true})
		}
	}
	for _, it := range items {
		switch {
		case it.isData:
			if it.line.label != "" {
				if err := a.defineLabel(it.line, int64(dataAddr)); err != nil {
					return err
				}
			}
			n, err := it.sizeFn()
			if err != nil {
				return a.errf(it.line.num, "%v", err)
			}
			dataAddr += n
		case it.isText:
			if it.line.label != "" {
				if err := a.defineLabel(it.line, int64(textIdx)); err != nil {
					return err
				}
			}
			if it.line.mnem != "" {
				textIdx++
			}
		}
	}
	// bss after data.
	bssBase := dataAddr
	for _, it := range items {
		if !it.isBSS {
			continue
		}
		if it.line.label != "" {
			if err := a.defineLabel(it.line, int64(bssBase+bssWords)); err != nil {
				return err
			}
		}
		n, err := it.sizeFn()
		if err != nil {
			return a.errf(it.line.num, "%v", err)
		}
		bssWords += n
	}
	a.bssLen = bssWords
	a.textLen = textIdx
	a.dataWords = make([]int64, 0, dataAddr)
	return nil
}

func (a *assembler) defineLabel(ln asmLine, v int64) error {
	if _, dup := a.labels[ln.label]; dup {
		return a.errf(ln.num, "label %q redefined", ln.label)
	}
	a.labels[ln.label] = v
	return nil
}

func sizeArg(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf(".space wants one size argument")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", args[0])
	}
	return n, nil
}

func parseStringLit(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf(".str wants one string argument")
	}
	s := strings.TrimSpace(args[0])
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf(".str argument %q is not a quoted string", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		case '0':
			out.WriteByte(0)
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}

var sysNames = map[string]int64{
	"OPEN": SysOpen, "CLOSE": SysClose, "READ": SysRead,
	"WRITE": SysWrite, "SEEK": SysSeek, "TIME": SysTime, "PRINT": SysPrint,
}

// emit performs the second pass.
func (a *assembler) emit() (*Program, error) {
	text := make([]Instr, 0, a.textLen)
	for _, ln := range a.lines {
		switch ln.section {
		case secData:
			if err := a.emitData(ln); err != nil {
				return nil, err
			}
		case secText:
			if ln.mnem == "" {
				continue
			}
			in, err := a.emitInstr(ln)
			if err != nil {
				return nil, err
			}
			text = append(text, in)
		}
	}
	entry := 0
	entryLabel := a.entry
	if entryLabel == "" {
		if v, ok := a.labels["start"]; ok {
			entry = int(v)
		}
	} else {
		v, ok := a.labels[entryLabel]
		if !ok {
			return nil, &AsmError{Line: 0, Msg: fmt.Sprintf("entry label %q undefined", entryLabel)}
		}
		entry = int(v)
	}
	return &Program{
		Name:   a.name,
		Text:   text,
		Data:   a.dataWords,
		BssLen: a.bssLen,
		Entry:  entry,
	}, nil
}

func (a *assembler) emitData(ln asmLine) error {
	switch ln.mnem {
	case "":
		return nil
	case ".WORD":
		for _, arg := range ln.args {
			v, err := a.imm(ln, arg)
			if err != nil {
				return err
			}
			a.dataWords = append(a.dataWords, v)
		}
	case ".STR":
		s, err := parseStringLit(ln.args)
		if err != nil {
			return a.errf(ln.num, "%v", err)
		}
		for _, b := range []byte(s) {
			a.dataWords = append(a.dataWords, int64(b))
		}
	case ".ZERO", ".SPACE":
		n, err := sizeArg(ln.args)
		if err != nil {
			return a.errf(ln.num, "%v", err)
		}
		for i := 0; i < n; i++ {
			a.dataWords = append(a.dataWords, 0)
		}
	}
	return nil
}

func (a *assembler) reg(ln asmLine, s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, a.errf(ln.num, "expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, a.errf(ln.num, "bad register %q", s)
	}
	return int64(n), nil
}

func (a *assembler) imm(ln asmLine, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf(ln.num, "empty immediate")
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == `\n` {
			return int64('\n'), nil
		}
		if body == `\t` {
			return int64('\t'), nil
		}
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		return 0, a.errf(ln.num, "bad character literal %s", s)
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := a.labels[s]; ok {
		return v, nil
	}
	return 0, a.errf(ln.num, "undefined symbol %q", s)
}

// memOperand parses "[rB]", "[rB+imm]" or "[rB-imm]".
func (a *assembler) memOperand(ln asmLine, s string) (reg, off int64, err error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, a.errf(ln.num, "expected memory operand [rN(+off)], got %q", s)
	}
	body := s[1 : len(s)-1]
	sign := int64(1)
	idx := strings.IndexAny(body, "+-")
	regPart, offPart := body, ""
	if idx > 0 {
		regPart, offPart = body[:idx], body[idx+1:]
		if body[idx] == '-' {
			sign = -1
		}
	}
	reg, err = a.reg(ln, regPart)
	if err != nil {
		return 0, 0, err
	}
	if offPart != "" {
		off, err = a.imm(ln, offPart)
		if err != nil {
			return 0, 0, err
		}
		off *= sign
	}
	return reg, off, nil
}

func (a *assembler) want(ln asmLine, n int) error {
	if len(ln.args) != n {
		return a.errf(ln.num, "%s wants %d operands, got %d", ln.mnem, n, len(ln.args))
	}
	return nil
}

func (a *assembler) emitInstr(ln asmLine) (Instr, error) {
	var in Instr
	var err error
	switch ln.mnem {
	case "NOP":
		in.Op = OpNop
	case "HALT":
		in.Op = OpHalt
		if len(ln.args) == 1 {
			in.A, err = a.imm(ln, ln.args[0])
		} else if len(ln.args) != 0 {
			err = a.errf(ln.num, "HALT wants at most one operand")
		}
	case "MOVI":
		in.Op = OpMovi
		if err = a.want(ln, 2); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
			if err == nil {
				in.B, err = a.imm(ln, ln.args[1])
			}
		}
	case "MOV":
		in.Op = OpMov
		if err = a.want(ln, 2); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
			if err == nil {
				in.B, err = a.reg(ln, ln.args[1])
			}
		}
	case "LD":
		in.Op = OpLd
		if err = a.want(ln, 2); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
			if err == nil {
				in.B, in.C, err = a.memOperand(ln, ln.args[1])
			}
		}
	case "ST":
		in.Op = OpSt
		if err = a.want(ln, 2); err == nil {
			in.A, in.C, err = a.memOperand(ln, ln.args[0])
			if err == nil {
				in.B, err = a.reg(ln, ln.args[1])
			}
		}
	case "PUSH", "POP", "RAND":
		switch ln.mnem {
		case "PUSH":
			in.Op = OpPush
		case "POP":
			in.Op = OpPop
		case "RAND":
			in.Op = OpRand
		}
		if err = a.want(ln, 1); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
		}
	case "ADD", "SUB", "MUL", "DIV", "MOD", "AND", "OR", "XOR", "SHL", "SHR":
		in.Op = map[string]Opcode{
			"ADD": OpAdd, "SUB": OpSub, "MUL": OpMul, "DIV": OpDiv, "MOD": OpMod,
			"AND": OpAnd, "OR": OpOr, "XOR": OpXor, "SHL": OpShl, "SHR": OpShr,
		}[ln.mnem]
		if err = a.want(ln, 3); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
			if err == nil {
				in.B, err = a.reg(ln, ln.args[1])
			}
			if err == nil {
				in.C, err = a.reg(ln, ln.args[2])
			}
		}
	case "ADDI", "MULI":
		if ln.mnem == "ADDI" {
			in.Op = OpAddi
		} else {
			in.Op = OpMuli
		}
		if err = a.want(ln, 3); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
			if err == nil {
				in.B, err = a.reg(ln, ln.args[1])
			}
			if err == nil {
				in.C, err = a.imm(ln, ln.args[2])
			}
		}
	case "JMP", "CALL":
		if ln.mnem == "JMP" {
			in.Op = OpJmp
		} else {
			in.Op = OpCall
		}
		if err = a.want(ln, 1); err == nil {
			in.A, err = a.imm(ln, ln.args[0])
		}
	case "JEQ", "JNE", "JLT", "JLE", "JGT", "JGE":
		in.Op = map[string]Opcode{
			"JEQ": OpJeq, "JNE": OpJne, "JLT": OpJlt,
			"JLE": OpJle, "JGT": OpJgt, "JGE": OpJge,
		}[ln.mnem]
		if err = a.want(ln, 3); err == nil {
			in.A, err = a.reg(ln, ln.args[0])
			if err == nil {
				in.B, err = a.reg(ln, ln.args[1])
			}
			if err == nil {
				in.C, err = a.imm(ln, ln.args[2])
			}
		}
	case "RET":
		in.Op = OpRet
	case "SYS":
		in.Op = OpSys
		if err = a.want(ln, 1); err == nil {
			if num, ok := sysNames[strings.ToUpper(ln.args[0])]; ok {
				in.A = num
			} else {
				in.A, err = a.imm(ln, ln.args[0])
			}
		}
	default:
		err = a.errf(ln.num, "unknown mnemonic %q", ln.mnem)
	}
	return in, err
}
