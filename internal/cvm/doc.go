// Package cvm implements a small, deterministic, checkpointable virtual
// machine — the substrate this reproduction uses in place of the paper's
// native VAX/BSD process checkpointing.
//
// The paper defines a checkpoint as "the text, data, bss, and the stack
// segments of the program, the registers, the status of open files, and
// any messages sent by the program to its shadow for which a reply has not
// been received" (§2.3). The VM is built so that exactly this state set is
// serializable:
//
//   - Text: an immutable instruction slice (saved in checkpoints, as the
//     paper chooses to do, so a recompiled executable cannot corrupt a
//     running job).
//   - Data + BSS: a flat word-addressed static memory region; the data
//     prefix is initialized by the loader, the bss suffix is zeroed.
//   - Stack: a separate word slice manipulated by PUSH/POP/CALL/RET.
//   - Registers: 16 general registers plus PC and SP, and the local RNG
//     state (so stochastic programs resume deterministically).
//   - Open files: a descriptor table of (name, flags, offset) mirrored in
//     the VM; the actual files live with the shadow process on the
//     submitting machine and are re-opened and re-positioned on restore.
//
// System calls trap to a SyscallHandler supplied by the host. A remote
// executor forwards them to the shadow; a local run handles them directly.
// Because the handler is synchronous, the paper's rule that "checkpointing
// is deferred until the shadow's reply has been received" holds by
// construction: Snapshot is only callable between instructions.
package cvm
