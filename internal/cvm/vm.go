package cvm

import (
	"errors"
	"fmt"
)

// Status describes why the VM stopped executing.
type Status int

// VM run statuses.
const (
	StatusRunning Status = iota + 1 // step budget exhausted, more work remains
	StatusHalted                    // program executed HALT
	StatusFaulted                   // program faulted (bad memory access, ...)
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusFaulted:
		return "faulted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// FaultError describes a program fault: an unrecoverable error attributed
// to the guest program, not to the host.
type FaultError struct {
	PC     int64
	Op     Opcode
	Reason string
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	return fmt.Sprintf("cvm: fault at pc=%d (%s): %s", e.PC, e.Op, e.Reason)
}

// ErrNotRunnable is returned by Run on a VM that has already halted or
// faulted.
var ErrNotRunnable = errors.New("cvm: vm is not runnable")

// SyscallRequest is a system call forwarded to the host. For SysWrite and
// SysPrint, Data carries the bytes being written; for SysRead, Args[2] is
// the maximum byte count and the reply carries the bytes.
type SyscallRequest struct {
	Num  int64    `json:"num"`
	Args [4]int64 `json:"args"`
	Data []byte   `json:"data,omitempty"`
	// Name is the decoded file name for SysOpen.
	Name string `json:"name,omitempty"`
}

// SyscallReply is the host's answer to a SyscallRequest.
type SyscallReply struct {
	Ret   int64  `json:"ret"`
	Errno int64  `json:"errno"`
	Data  []byte `json:"data,omitempty"`
}

// SyscallHandler executes system calls on behalf of the VM. In Condor
// terms this is the path to the shadow process: a remote executor
// implements it by shipping the request over the network to the shadow on
// the submitting machine. An error return (as opposed to a non-zero
// Errno) means the host itself failed — e.g. the shadow connection broke —
// and aborts the run without faulting the program.
type SyscallHandler interface {
	Syscall(req SyscallRequest) (SyscallReply, error)
}

// SyscallHandlerFunc adapts a function to the SyscallHandler interface.
type SyscallHandlerFunc func(req SyscallRequest) (SyscallReply, error)

var _ SyscallHandler = SyscallHandlerFunc(nil)

// Syscall implements SyscallHandler.
func (f SyscallHandlerFunc) Syscall(req SyscallRequest) (SyscallReply, error) {
	return f(req)
}

// OpenFile records the status of one open descriptor, mirrored in the VM
// so that checkpoints capture "the status of open files" (§2.3). Offset
// is maintained from syscall results so a restore can re-open and seek.
type OpenFile struct {
	FD     int64  `json:"fd"`
	Name   string `json:"name"`
	Flags  int64  `json:"flags"`
	Offset int64  `json:"offset"`
}

// Config bounds a VM instance.
type Config struct {
	// StackWords is the stack capacity. Zero selects DefaultStackWords.
	StackWords int
	// MaxStaticWords caps static memory; zero means no extra cap.
	MaxStaticWords int
}

// DefaultStackWords is the stack capacity when Config.StackWords is zero.
const DefaultStackWords = 4096

// VM is a single guest program execution. It is not safe for concurrent
// use; the owner serializes Run and Snapshot calls.
type VM struct {
	prog    *Program
	mem     []int64 // data ++ bss
	stack   []int64
	regs    [NumRegs]int64
	pc      int64
	sp      int64 // number of live stack words
	rng     uint64
	steps   uint64 // instructions retired
	sysCnt  uint64 // syscalls issued
	status  Status
	exit    int64
	fault   *FaultError
	files   map[int64]*OpenFile
	nextFD  int64
	handler SyscallHandler
}

// New creates a VM ready to run prog from its entry point. The program is
// validated; the data segment is copied so the program value stays
// reusable.
func New(prog *Program, handler SyscallHandler, cfg Config) (*VM, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, errors.New("cvm: nil syscall handler")
	}
	if cfg.MaxStaticWords > 0 && prog.StaticWords() > cfg.MaxStaticWords {
		return nil, fmt.Errorf("cvm: program %q static size %d exceeds cap %d",
			prog.Name, prog.StaticWords(), cfg.MaxStaticWords)
	}
	stackWords := cfg.StackWords
	if stackWords <= 0 {
		stackWords = DefaultStackWords
	}
	mem := make([]int64, prog.StaticWords())
	copy(mem, prog.Data)
	return &VM{
		prog:    prog,
		mem:     mem,
		stack:   make([]int64, stackWords),
		pc:      int64(prog.Entry),
		rng:     0x9e3779b97f4a7c15, // fixed seed: runs are deterministic
		status:  StatusRunning,
		files:   make(map[int64]*OpenFile),
		nextFD:  3, // 0..2 conventionally reserved
		handler: handler,
	}, nil
}

// Program returns the loaded program.
func (v *VM) Program() *Program { return v.prog }

// Status returns the current run status.
func (v *VM) Status() Status { return v.status }

// ExitCode returns the HALT code; meaningful only when halted.
func (v *VM) ExitCode() int64 { return v.exit }

// Fault returns the fault, if the VM faulted.
func (v *VM) Fault() *FaultError { return v.fault }

// Steps returns the number of instructions retired, the VM's CPU-time
// proxy.
func (v *VM) Steps() uint64 { return v.steps }

// Syscalls returns the number of system calls issued so far. The cost
// model charges local capacity per syscall (§3.1).
func (v *VM) Syscalls() uint64 { return v.sysCnt }

// Reg returns the value of register r (zero if out of range).
func (v *VM) Reg(r int) int64 {
	if r < 0 || r >= NumRegs {
		return 0
	}
	return v.regs[r]
}

// Mem returns the static memory word at addr, for tests and inspection.
func (v *VM) Mem(addr int64) (int64, bool) {
	if addr < 0 || addr >= int64(len(v.mem)) {
		return 0, false
	}
	return v.mem[addr], true
}

// OpenFiles returns a copy of the descriptor table, ordered by fd.
func (v *VM) OpenFiles() []OpenFile {
	out := make([]OpenFile, 0, len(v.files))
	for fd := int64(0); fd < v.nextFD; fd++ {
		if f, ok := v.files[fd]; ok {
			out = append(out, *f)
		}
	}
	return out
}

func (v *VM) faultf(op Opcode, format string, args ...any) error {
	v.status = StatusFaulted
	v.fault = &FaultError{PC: v.pc, Op: op, Reason: fmt.Sprintf(format, args...)}
	return v.fault
}

// Run executes up to maxSteps instructions. It returns the resulting
// status. A non-nil error is either a host error (syscall transport
// failure: the VM remains runnable and can be resumed or checkpointed) or
// the program's FaultError (status becomes faulted).
func (v *VM) Run(maxSteps uint64) (Status, error) {
	if v.status != StatusRunning {
		return v.status, ErrNotRunnable
	}
	for n := uint64(0); n < maxSteps; n++ {
		if err := v.step(); err != nil {
			var fe *FaultError
			if errors.As(err, &fe) {
				return StatusFaulted, err
			}
			// Host error: leave status running so the job can migrate.
			return v.status, err
		}
		if v.status != StatusRunning {
			return v.status, nil
		}
	}
	return StatusRunning, nil
}

func (v *VM) step() error {
	if v.pc < 0 || v.pc >= int64(len(v.prog.Text)) {
		return v.faultf(OpNop, "pc %d outside text [0,%d)", v.pc, len(v.prog.Text))
	}
	in := v.prog.Text[v.pc]
	v.steps++
	next := v.pc + 1
	switch in.Op {
	case OpNop:
	case OpHalt:
		v.status = StatusHalted
		v.exit = in.A
	case OpMovi:
		v.regs[in.A] = in.B
	case OpMov:
		v.regs[in.A] = v.regs[in.B]
	case OpLd:
		addr := v.regs[in.B] + in.C
		if addr < 0 || addr >= int64(len(v.mem)) {
			return v.faultf(in.Op, "load address %d outside static [0,%d)", addr, len(v.mem))
		}
		v.regs[in.A] = v.mem[addr]
	case OpSt:
		addr := v.regs[in.A] + in.C
		if addr < 0 || addr >= int64(len(v.mem)) {
			return v.faultf(in.Op, "store address %d outside static [0,%d)", addr, len(v.mem))
		}
		v.mem[addr] = v.regs[in.B]
	case OpPush:
		if v.sp >= int64(len(v.stack)) {
			return v.faultf(in.Op, "stack overflow (capacity %d words)", len(v.stack))
		}
		v.stack[v.sp] = v.regs[in.A]
		v.sp++
	case OpPop:
		if v.sp <= 0 {
			return v.faultf(in.Op, "stack underflow")
		}
		v.sp--
		v.regs[in.A] = v.stack[v.sp]
	case OpAdd:
		v.regs[in.A] = v.regs[in.B] + v.regs[in.C]
	case OpSub:
		v.regs[in.A] = v.regs[in.B] - v.regs[in.C]
	case OpMul:
		v.regs[in.A] = v.regs[in.B] * v.regs[in.C]
	case OpDiv:
		if v.regs[in.C] == 0 {
			return v.faultf(in.Op, "division by zero")
		}
		v.regs[in.A] = v.regs[in.B] / v.regs[in.C]
	case OpMod:
		if v.regs[in.C] == 0 {
			return v.faultf(in.Op, "modulo by zero")
		}
		v.regs[in.A] = v.regs[in.B] % v.regs[in.C]
	case OpAddi:
		v.regs[in.A] = v.regs[in.B] + in.C
	case OpMuli:
		v.regs[in.A] = v.regs[in.B] * in.C
	case OpAnd:
		v.regs[in.A] = v.regs[in.B] & v.regs[in.C]
	case OpOr:
		v.regs[in.A] = v.regs[in.B] | v.regs[in.C]
	case OpXor:
		v.regs[in.A] = v.regs[in.B] ^ v.regs[in.C]
	case OpShl:
		v.regs[in.A] = v.regs[in.B] << uint64(v.regs[in.C]&63)
	case OpShr:
		v.regs[in.A] = int64(uint64(v.regs[in.B]) >> uint64(v.regs[in.C]&63))
	case OpJmp:
		next = in.A
	case OpJeq:
		if v.regs[in.A] == v.regs[in.B] {
			next = in.C
		}
	case OpJne:
		if v.regs[in.A] != v.regs[in.B] {
			next = in.C
		}
	case OpJlt:
		if v.regs[in.A] < v.regs[in.B] {
			next = in.C
		}
	case OpJle:
		if v.regs[in.A] <= v.regs[in.B] {
			next = in.C
		}
	case OpJgt:
		if v.regs[in.A] > v.regs[in.B] {
			next = in.C
		}
	case OpJge:
		if v.regs[in.A] >= v.regs[in.B] {
			next = in.C
		}
	case OpCall:
		if v.sp >= int64(len(v.stack)) {
			return v.faultf(in.Op, "stack overflow on call")
		}
		v.stack[v.sp] = next
		v.sp++
		next = in.A
	case OpRet:
		if v.sp <= 0 {
			return v.faultf(in.Op, "stack underflow on return")
		}
		v.sp--
		next = v.stack[v.sp]
		if next < 0 || next >= int64(len(v.prog.Text)) {
			return v.faultf(in.Op, "return to %d outside text", next)
		}
	case OpRand:
		// xorshift64*: part of checkpointed state, so resumed runs
		// continue the identical sequence.
		v.rng ^= v.rng >> 12
		v.rng ^= v.rng << 25
		v.rng ^= v.rng >> 27
		v.regs[in.A] = int64((v.rng * 0x2545f4914f6cdd1d) >> 1)
	case OpSys:
		if err := v.syscall(in.A); err != nil {
			return err
		}
	default:
		return v.faultf(in.Op, "invalid opcode")
	}
	if v.status == StatusRunning {
		v.pc = next
	}
	return nil
}

func (v *VM) setSysResult(ret, errno int64) {
	v.regs[0] = ret
	v.regs[1] = errno
}

// syscall dispatches one system call. Local bookkeeping (fd table) lives
// here; the actual file operations happen in the handler (the shadow).
func (v *VM) syscall(num int64) error {
	v.sysCnt++
	switch num {
	case SysOpen:
		return v.sysOpen()
	case SysClose:
		return v.sysClose()
	case SysRead:
		return v.sysRead()
	case SysWrite, SysPrint:
		return v.sysWrite(num)
	case SysSeek:
		return v.sysSeek()
	case SysTime:
		reply, err := v.handler.Syscall(SyscallRequest{Num: SysTime})
		if err != nil {
			v.sysCnt-- // not delivered; safe to retry after migration
			return err
		}
		v.setSysResult(reply.Ret, reply.Errno)
		return nil
	default:
		return v.faultf(OpSys, "unknown syscall %d", num)
	}
}

// readString decodes a guest string stored one byte per word.
func (v *VM) readString(addr, n int64) (string, error) {
	if n < 0 || n > 4096 {
		return "", v.faultf(OpSys, "string length %d invalid", n)
	}
	if addr < 0 || addr+n > int64(len(v.mem)) {
		return "", v.faultf(OpSys, "string [%d,%d) outside static memory", addr, addr+n)
	}
	b := make([]byte, n)
	for i := int64(0); i < n; i++ {
		b[i] = byte(v.mem[addr+i])
	}
	return string(b), nil
}

func (v *VM) sysOpen() error {
	nameAddr, nameLen, flags := v.regs[0], v.regs[1], v.regs[2]
	name, err := v.readString(nameAddr, nameLen)
	if err != nil {
		return err
	}
	if len(v.files) >= MaxOpenFiles {
		v.setSysResult(-1, ErrnoTooMany)
		return nil
	}
	reply, err := v.handler.Syscall(SyscallRequest{
		Num:  SysOpen,
		Args: [4]int64{0, 0, flags, 0},
		Name: name,
	})
	if err != nil {
		v.sysCnt--
		return err
	}
	if reply.Errno != ErrnoNone {
		v.setSysResult(-1, reply.Errno)
		return nil
	}
	fd := v.nextFD
	v.nextFD++
	off := int64(0)
	if reply.Ret > 0 && flags&FlagAppend != 0 {
		off = reply.Ret // shadow reports append position
	}
	v.files[fd] = &OpenFile{FD: fd, Name: name, Flags: flags, Offset: off}
	v.setSysResult(fd, ErrnoNone)
	return nil
}

func (v *VM) sysClose() error {
	fd := v.regs[0]
	f, ok := v.files[fd]
	if !ok {
		v.setSysResult(-1, ErrnoBadFD)
		return nil
	}
	reply, err := v.handler.Syscall(SyscallRequest{
		Num:  SysClose,
		Args: [4]int64{fd, 0, 0, 0},
		Name: f.Name,
	})
	if err != nil {
		v.sysCnt--
		return err
	}
	delete(v.files, fd)
	v.setSysResult(reply.Ret, reply.Errno)
	return nil
}

func (v *VM) sysRead() error {
	fd, addr, n := v.regs[0], v.regs[1], v.regs[2]
	f, ok := v.files[fd]
	if !ok {
		v.setSysResult(-1, ErrnoBadFD)
		return nil
	}
	if n < 0 || addr < 0 || addr+n > int64(len(v.mem)) {
		return v.faultf(OpSys, "read buffer [%d,%d) outside static memory", addr, addr+n)
	}
	reply, err := v.handler.Syscall(SyscallRequest{
		Num:  SysRead,
		Args: [4]int64{fd, f.Offset, n, f.Flags},
		Name: f.Name,
	})
	if err != nil {
		v.sysCnt--
		return err
	}
	if reply.Errno != ErrnoNone {
		v.setSysResult(-1, reply.Errno)
		return nil
	}
	got := int64(len(reply.Data))
	if got > n {
		got = n
	}
	for i := int64(0); i < got; i++ {
		v.mem[addr+i] = int64(reply.Data[i])
	}
	f.Offset += got
	v.setSysResult(got, ErrnoNone)
	return nil
}

func (v *VM) sysWrite(num int64) error {
	var (
		fd   int64
		addr int64
		n    int64
		f    *OpenFile
	)
	if num == SysPrint {
		addr, n = v.regs[0], v.regs[1]
		fd = 1
	} else {
		fd, addr, n = v.regs[0], v.regs[1], v.regs[2]
		var ok bool
		f, ok = v.files[fd]
		if !ok {
			v.setSysResult(-1, ErrnoBadFD)
			return nil
		}
	}
	if n < 0 || addr < 0 || addr+n > int64(len(v.mem)) {
		return v.faultf(OpSys, "write buffer [%d,%d) outside static memory", addr, addr+n)
	}
	data := make([]byte, n)
	for i := int64(0); i < n; i++ {
		data[i] = byte(v.mem[addr+i])
	}
	req := SyscallRequest{Num: num, Args: [4]int64{fd, 0, n, 0}, Data: data}
	if f != nil {
		req.Args[1] = f.Offset
		req.Name = f.Name
	}
	reply, err := v.handler.Syscall(req)
	if err != nil {
		v.sysCnt--
		return err
	}
	if reply.Errno != ErrnoNone {
		v.setSysResult(-1, reply.Errno)
		return nil
	}
	if f != nil && reply.Ret > 0 {
		f.Offset += reply.Ret
	}
	v.setSysResult(reply.Ret, reply.Errno)
	return nil
}

func (v *VM) sysSeek() error {
	fd, off, whence := v.regs[0], v.regs[1], v.regs[2]
	f, ok := v.files[fd]
	if !ok {
		v.setSysResult(-1, ErrnoBadFD)
		return nil
	}
	reply, err := v.handler.Syscall(SyscallRequest{
		Num:  SysSeek,
		Args: [4]int64{fd, off, whence, f.Offset},
		Name: f.Name,
	})
	if err != nil {
		v.sysCnt--
		return err
	}
	if reply.Errno == ErrnoNone && reply.Ret >= 0 {
		f.Offset = reply.Ret
	}
	v.setSysResult(reply.Ret, reply.Errno)
	return nil
}
