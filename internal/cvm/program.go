package cvm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Program is a loaded executable: an immutable text segment plus the
// initial contents of the data segment and the size of the bss segment.
type Program struct {
	// Name is a human-readable identifier (the "executable file name").
	Name string `json:"name"`
	// Text is the instruction sequence. It is never modified at run time
	// (the VM assumes no self-modifying code, as the paper does).
	Text []Instr `json:"text"`
	// Data is the initialized data segment, in words.
	Data []int64 `json:"data"`
	// BssLen is the number of zeroed words following the data segment.
	BssLen int `json:"bssLen"`
	// Entry is the index into Text where execution starts.
	Entry int `json:"entry"`
}

// Validate checks structural invariants: entry in range, all jump/call
// targets within text, register operands within range, and opcodes
// defined. A validated program cannot fault on decode (it can still fault
// on memory access or division).
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("cvm: program %q has empty text", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Text) {
		return fmt.Errorf("cvm: program %q entry %d out of range [0,%d)", p.Name, p.Entry, len(p.Text))
	}
	if p.BssLen < 0 {
		return fmt.Errorf("cvm: program %q negative bss length %d", p.Name, p.BssLen)
	}
	for i, in := range p.Text {
		if err := validateInstr(in, len(p.Text)); err != nil {
			return fmt.Errorf("cvm: program %q text[%d]: %w", p.Name, i, err)
		}
	}
	return nil
}

func regOK(r int64) bool { return r >= 0 && r < NumRegs }

func validateInstr(in Instr, textLen int) error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", in.Op)
	}
	target := func(t int64) error {
		if t < 0 || t >= int64(textLen) {
			return fmt.Errorf("%s target %d out of text range [0,%d)", in.Op, t, textLen)
		}
		return nil
	}
	regs := func(rs ...int64) error {
		for _, r := range rs {
			if !regOK(r) {
				return fmt.Errorf("%s register %d out of range", in.Op, r)
			}
		}
		return nil
	}
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return nil
	case OpMovi, OpPush, OpPop, OpRand:
		return regs(in.A)
	case OpMov:
		return regs(in.A, in.B)
	case OpLd, OpSt, OpAddi, OpMuli:
		return regs(in.A, in.B)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return regs(in.A, in.B, in.C)
	case OpJmp, OpCall:
		return target(in.A)
	case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
		if err := regs(in.A, in.B); err != nil {
			return err
		}
		return target(in.C)
	case OpSys:
		switch in.A {
		case SysOpen, SysClose, SysRead, SysWrite, SysSeek, SysTime, SysPrint:
			return nil
		default:
			return fmt.Errorf("unknown syscall %d", in.A)
		}
	default:
		return fmt.Errorf("unhandled opcode %s", in.Op)
	}
}

// TextChecksum returns a stable hex digest of the text and initial data
// segments. The checkpoint store uses it to share one copy of the text
// among the many jobs a user submits with only different parameters (§4).
func (p *Program) TextChecksum() string {
	h := sha256.New()
	var buf [8]byte
	writeWord := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, in := range p.Text {
		writeWord(int64(in.Op))
		writeWord(in.A)
		writeWord(in.B)
		writeWord(in.C)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StaticWords returns the total static memory size (data + bss) in words.
func (p *Program) StaticWords() int { return len(p.Data) + p.BssLen }

// Disassemble renders the text segment as assembler-like lines, mostly
// for debugging and error reports.
func (p *Program) Disassemble() []string {
	out := make([]string, len(p.Text))
	for i, in := range p.Text {
		out[i] = fmt.Sprintf("%4d: %-5s %d, %d, %d", i, in.Op, in.A, in.B, in.C)
	}
	return out
}
