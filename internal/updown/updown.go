// Package updown implements the Up-Down algorithm of Mutka and Livny
// (ICDCS 1987), the fair-share policy Condor's coordinator uses to
// arbitrate remote capacity (§2.4).
//
// The coordinator maintains a schedule index per workstation. When remote
// capacity is allocated to a workstation the index rises; when the
// workstation wants capacity but is denied, the index falls; when it
// neither holds nor wants capacity the index decays toward zero. Lower
// index means higher priority, so a light user who has consumed little
// accumulates priority over a heavy user who has been running jobs on
// many machines — yet the heavy user retains steady access whenever
// capacity is not contended.
package updown

import (
	"math"
	"sort"
	"sync"
)

// Config tunes the index dynamics. All rates are per update tick (one
// coordinator poll cycle).
type Config struct {
	// UpRate is added per machine of remote capacity held.
	UpRate float64
	// DownRate is subtracted when the station wants capacity but holds
	// none of what it asked for.
	DownRate float64
	// DecayRate moves an inactive station's index toward zero.
	DecayRate float64
	// MaxAbs clamps the index magnitude so no station can bank unbounded
	// priority or debt.
	MaxAbs float64
	// HistoryLen bounds the per-station index history retained for
	// observability (0 means the default; negative disables history).
	HistoryLen int
}

// DefaultConfig mirrors the paper's behaviour at poll-cycle granularity.
func DefaultConfig() Config {
	return Config{UpRate: 1.0, DownRate: 1.0, DecayRate: 0.5, MaxAbs: 10_000, HistoryLen: 32}
}

func (c *Config) sanitize() {
	if c.UpRate <= 0 {
		c.UpRate = 1.0
	}
	if c.DownRate <= 0 {
		c.DownRate = 1.0
	}
	if c.DecayRate < 0 {
		c.DecayRate = 0
	}
	if c.MaxAbs <= 0 {
		c.MaxAbs = 10_000
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = 32
	}
	if c.HistoryLen < 0 {
		c.HistoryLen = 0
	}
}

// histRing is one station's bounded index history.
type histRing struct {
	vals []float64
	next int
	full bool
}

func (r *histRing) push(v float64) {
	if len(r.vals) == 0 {
		return
	}
	r.vals[r.next] = v
	r.next++
	if r.next == len(r.vals) {
		r.next = 0
		r.full = true
	}
}

func (r *histRing) history() []float64 {
	if !r.full {
		return append([]float64(nil), r.vals[:r.next]...)
	}
	out := make([]float64, 0, len(r.vals))
	out = append(out, r.vals[r.next:]...)
	out = append(out, r.vals[:r.next]...)
	return out
}

// Table holds the schedule indexes. It is safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	cfg     Config
	indexes map[string]float64
	// arrival tracks registration order for deterministic tie-breaks.
	arrival map[string]int
	nextArr int
	// history retains each station's recent index trajectory (one point
	// per Update/Restore), bounded by Config.HistoryLen.
	history map[string]*histRing
}

// NewTable returns an empty index table.
func NewTable(cfg Config) *Table {
	cfg.sanitize()
	return &Table{
		cfg:     cfg,
		indexes: make(map[string]float64),
		arrival: make(map[string]int),
		history: make(map[string]*histRing),
	}
}

// recordLocked appends the station's current index to its history.
func (t *Table) recordLocked(name string, idx float64) {
	if t.cfg.HistoryLen <= 0 {
		return
	}
	r, ok := t.history[name]
	if !ok {
		r = &histRing{vals: make([]float64, t.cfg.HistoryLen)}
		t.history[name] = r
	}
	r.push(idx)
}

// Touch registers a station (index starts at zero, per the paper).
func (t *Table) Touch(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(name)
}

func (t *Table) touchLocked(name string) {
	if _, ok := t.arrival[name]; !ok {
		t.arrival[name] = t.nextArr
		t.nextArr++
		t.indexes[name] = 0
	}
}

// Update applies one poll cycle's observation for a station: held is the
// number of machines of remote capacity the station currently holds, and
// wanting reports whether it has jobs waiting for (more) capacity.
func (t *Table) Update(name string, held int, wanting bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(name)
	idx := t.indexes[name]
	switch {
	case held > 0:
		// Paying for capacity held. A station can simultaneously be
		// wanting more, but the paper charges for what is held.
		idx += t.cfg.UpRate * float64(held)
	case wanting:
		// Wants capacity, holds none: priority accrues.
		idx -= t.cfg.DownRate
	default:
		// Inactive: decay toward zero.
		switch {
		case idx > 0:
			idx = math.Max(0, idx-t.cfg.DecayRate)
		case idx < 0:
			idx = math.Min(0, idx+t.cfg.DecayRate)
		}
	}
	if idx > t.cfg.MaxAbs {
		idx = t.cfg.MaxAbs
	}
	if idx < -t.cfg.MaxAbs {
		idx = -t.cfg.MaxAbs
	}
	t.indexes[name] = idx
	t.recordLocked(name, idx)
}

// History returns a station's recent index trajectory, oldest first
// (nil when unknown or history is disabled).
func (t *Table) History(name string) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.history[name]
	if !ok {
		return nil
	}
	return r.history()
}

// Histories returns every station's retained trajectory, oldest first.
func (t *Table) Histories() map[string][]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string][]float64, len(t.history))
	for name, r := range t.history {
		if h := r.history(); len(h) > 0 {
			out[name] = h
		}
	}
	return out
}

// Index returns a station's current schedule index (zero if unknown).
func (t *Table) Index(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.indexes[name]
}

// Better reports whether station a has strictly higher priority than b.
// Lower index wins; ties break by registration order so ranking is total
// and deterministic.
func (t *Table) Better(a, b string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ia, ib := t.indexes[a], t.indexes[b]
	if ia != ib {
		return ia < ib
	}
	return t.arrival[a] < t.arrival[b]
}

// Rank sorts the given station names by descending priority (best
// first). The input slice is not modified.
func (t *Table) Rank(names []string) []string {
	out := append([]string(nil), names...)
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		ia, ib := t.indexes[out[i]], t.indexes[out[j]]
		if ia != ib {
			return ia < ib
		}
		return t.arrival[out[i]] < t.arrival[out[j]]
	})
	return out
}

// Snapshot returns a copy of all indexes.
func (t *Table) Snapshot() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.indexes))
	for k, v := range t.indexes {
		out[k] = v
	}
	return out
}

// Restore overwrites the table with a recovered set of indexes — the
// coordinator's crash-recovery path replaying a journal snapshot.
// Stations are (re-)registered in sorted-name order, so tie-break
// arrival order is deterministic after a restart even though the
// original registration order is not part of the snapshot.
func (t *Table) Restore(indexes map[string]float64) {
	names := make([]string, 0, len(indexes))
	for name := range indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range names {
		t.touchLocked(name)
		idx := indexes[name]
		if idx > t.cfg.MaxAbs {
			idx = t.cfg.MaxAbs
		}
		if idx < -t.cfg.MaxAbs {
			idx = -t.cfg.MaxAbs
		}
		t.indexes[name] = idx
		// The restored value seeds a fresh trajectory: pre-crash history
		// is not part of the snapshot, and stale points from a removed
		// station must not survive its re-registration.
		delete(t.history, name)
		t.recordLocked(name, idx)
	}
}

// Remove forgets a station entirely, its history included.
func (t *Table) Remove(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.indexes, name)
	delete(t.arrival, name)
	delete(t.history, name)
}
