package updown

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIndexStartsAtZero(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Touch("ws1")
	if got := tab.Index("ws1"); got != 0 {
		t.Fatalf("initial index = %v, want 0", got)
	}
	if got := tab.Index("unknown"); got != 0 {
		t.Fatalf("unknown station index = %v, want 0", got)
	}
}

func TestHoldingCapacityRaisesIndex(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update("heavy", 5, true)
	tab.Update("heavy", 5, true)
	if got := tab.Index("heavy"); got != 10 {
		t.Fatalf("index after holding 5 machines for 2 ticks = %v, want 10", got)
	}
}

func TestDeniedDemandLowersIndex(t *testing.T) {
	tab := NewTable(DefaultConfig())
	for i := 0; i < 4; i++ {
		tab.Update("light", 0, true)
	}
	if got := tab.Index("light"); got != -4 {
		t.Fatalf("index after 4 denied ticks = %v, want -4", got)
	}
}

func TestInactiveDecaysTowardZero(t *testing.T) {
	cfg := Config{UpRate: 1, DownRate: 1, DecayRate: 2, MaxAbs: 100}
	tab := NewTable(cfg)
	for i := 0; i < 5; i++ {
		tab.Update("a", 1, false) // build up to +5
	}
	for i := 0; i < 2; i++ {
		tab.Update("a", 0, false) // decay 2 per tick
	}
	if got := tab.Index("a"); got != 1 {
		t.Fatalf("index = %v, want 1 after decay", got)
	}
	tab.Update("a", 0, false)
	if got := tab.Index("a"); got != 0 {
		t.Fatalf("decay overshoot: index = %v, want exactly 0", got)
	}
	// Negative side decays upward.
	tab.Update("b", 0, true)
	tab.Update("b", 0, true)
	tab.Update("b", 0, true) // -3
	tab.Update("b", 0, false)
	if got := tab.Index("b"); got != -1 {
		t.Fatalf("negative decay: index = %v, want -1", got)
	}
	tab.Update("b", 0, false)
	if got := tab.Index("b"); got != 0 {
		t.Fatalf("negative decay clamp: index = %v, want 0", got)
	}
}

func TestLightUserOutranksHeavyUser(t *testing.T) {
	// The paper's core fairness claim: a heavy user consuming many
	// machines must not inhibit a light user's access.
	tab := NewTable(DefaultConfig())
	tab.Touch("heavy")
	tab.Touch("light")
	// Heavy has been running 20 machines for 10 cycles.
	for i := 0; i < 10; i++ {
		tab.Update("heavy", 20, true)
	}
	// Light just arrived and was denied once.
	tab.Update("light", 0, true)
	if !tab.Better("light", "heavy") {
		t.Fatalf("light (idx %v) should outrank heavy (idx %v)",
			tab.Index("light"), tab.Index("heavy"))
	}
	rank := tab.Rank([]string{"heavy", "light"})
	if rank[0] != "light" {
		t.Fatalf("rank = %v", rank)
	}
}

func TestHeavyUserRegainsAccessAfterWaiting(t *testing.T) {
	// Steady access for heavy users: after enough denied cycles, a heavy
	// user's index falls below a newly-arrived light user's.
	tab := NewTable(DefaultConfig())
	for i := 0; i < 5; i++ {
		tab.Update("heavy", 10, true) // index 50
	}
	for i := 0; i < 60; i++ {
		tab.Update("heavy", 0, true) // denied: falls by 1 per tick
	}
	tab.Update("fresh", 1, true) // fresh user holding one machine
	if !tab.Better("heavy", "fresh") {
		t.Fatalf("heavy (idx %v) should eventually outrank fresh holder (idx %v)",
			tab.Index("heavy"), tab.Index("fresh"))
	}
}

func TestTieBreakIsDeterministic(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Touch("b")
	tab.Touch("a")
	// Both at zero: registration order (b first) wins.
	if !tab.Better("b", "a") {
		t.Fatal("tie-break should favor earlier registration")
	}
	rank := tab.Rank([]string{"a", "b"})
	if rank[0] != "b" {
		t.Fatalf("rank = %v", rank)
	}
}

func TestClampMaxAbs(t *testing.T) {
	cfg := Config{UpRate: 100, DownRate: 100, DecayRate: 1, MaxAbs: 250}
	tab := NewTable(cfg)
	for i := 0; i < 10; i++ {
		tab.Update("up", 10, false)
		tab.Update("down", 0, true)
	}
	if got := tab.Index("up"); got != 250 {
		t.Fatalf("clamped high = %v, want 250", got)
	}
	if got := tab.Index("down"); got != -250 {
		t.Fatalf("clamped low = %v, want -250", got)
	}
}

func TestRankDoesNotMutateInput(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update("a", 3, false)
	tab.Update("b", 0, true)
	in := []string{"a", "b"}
	_ = tab.Rank(in)
	if in[0] != "a" || in[1] != "b" {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestRemove(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update("a", 5, false)
	tab.Remove("a")
	if got := tab.Index("a"); got != 0 {
		t.Fatalf("index after remove = %v", got)
	}
	snap := tab.Snapshot()
	if _, ok := snap["a"]; ok {
		t.Fatal("snapshot still contains removed station")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update("a", 1, false)
	snap := tab.Snapshot()
	snap["a"] = 999
	if tab.Index("a") == 999 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestConfigSanitize(t *testing.T) {
	tab := NewTable(Config{}) // all zero: must not divide/lock up
	tab.Update("a", 1, false)
	if tab.Index("a") <= 0 {
		t.Fatal("zero config produced no index movement")
	}
}

func TestIndexIsAlwaysFinite(t *testing.T) {
	tab := NewTable(DefaultConfig())
	f := func(held uint8, wanting bool) bool {
		tab.Update("x", int(held%32), wanting)
		idx := tab.Index("x")
		return !math.IsNaN(idx) && !math.IsInf(idx, 0) && math.Abs(idx) <= 10_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryBounded(t *testing.T) {
	tb := NewTable(Config{HistoryLen: 4})
	for i := 0; i < 10; i++ {
		tb.Update("ws", 1, false) // +1 per cycle
	}
	h := tb.History("ws")
	if len(h) != 4 {
		t.Fatalf("history len = %d, want 4", len(h))
	}
	for i, v := range h {
		if want := float64(7 + i); v != want {
			t.Errorf("h[%d] = %v, want %v (oldest first)", i, v, want)
		}
	}
	if tb.History("unknown") != nil {
		t.Error("unknown station should have nil history")
	}
}

func TestHistoryDisabled(t *testing.T) {
	tb := NewTable(Config{HistoryLen: -1})
	tb.Update("ws", 1, false)
	if h := tb.History("ws"); h != nil {
		t.Errorf("history disabled but got %v", h)
	}
}

func TestHistoryRestoreAndRemove(t *testing.T) {
	tb := NewTable(Config{HistoryLen: 8})
	tb.Update("a", 2, false)
	tb.Update("a", 2, false)
	tb.Update("b", 0, true)

	// Remove drops the trajectory with the station.
	tb.Remove("b")
	if h := tb.History("b"); h != nil {
		t.Fatalf("removed station kept history %v", h)
	}

	// Restore seeds a fresh one-point trajectory from the snapshot value,
	// discarding pre-restore points (they are not part of the snapshot).
	tb.Restore(map[string]float64{"a": 5, "b": -3})
	if h := tb.History("a"); len(h) != 1 || h[0] != 5 {
		t.Errorf("restored history a = %v, want [5]", h)
	}
	if h := tb.History("b"); len(h) != 1 || h[0] != -3 {
		t.Errorf("restored history b = %v, want [-3]", h)
	}

	// Updates after a restore extend the seeded trajectory.
	tb.Update("a", 1, false)
	if h := tb.History("a"); len(h) != 2 || h[1] != 6 {
		t.Errorf("post-restore history a = %v, want [5 6]", h)
	}
	all := tb.Histories()
	if len(all) != 2 || len(all["a"]) != 2 {
		t.Errorf("Histories = %v", all)
	}
}
