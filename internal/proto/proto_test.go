package proto

import (
	"strings"
	"testing"

	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/wire"
)

func TestProgramBlobRoundTrip(t *testing.T) {
	p := cvm.PrimeCountProgram(1000)
	blob, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Text) != len(p.Text) {
		t.Fatalf("round trip lost content: %q %d", got.Name, len(got.Text))
	}
	if got.TextChecksum() != p.TextChecksum() {
		t.Fatal("checksum changed across encode/decode")
	}
}

func TestDecodeProgramRejectsGarbage(t *testing.T) {
	if _, err := DecodeProgram([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestDecodeProgramValidates(t *testing.T) {
	bad := &cvm.Program{Name: "bad", Text: []cvm.Instr{{Op: cvm.OpJmp, A: 99}}}
	blob, err := EncodeProgram(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeProgram(blob); err == nil {
		t.Fatal("invalid program decoded without error")
	}
}

func TestMessagesTravelThroughEnvelopes(t *testing.T) {
	// Every registered message must survive a gob round trip inside a
	// wire.Envelope (catching forgotten gob.Register calls).
	msgs := []any{
		SubmitRequest{Owner: "A", Name: "sum", Source: "..."},
		SubmitReply{JobID: "ws1/1"},
		QueueRequest{},
		QueueReply{Station: "ws1", Jobs: []JobStatus{{ID: "j", State: JobRunning}}},
		RemoveRequest{JobID: "j"}, RemoveReply{Removed: true},
		WaitRequest{JobID: "j"}, WaitReply{Found: true},
		RegisterRequest{Name: "ws1", Addr: "127.0.0.1:1"},
		RegisterReply{OK: true, PollIntervalMillis: 120000},
		PollRequest{},
		PollReply{Name: "ws1", State: StationIdle, WaitingJobs: 2},
		GrantRequest{ExecName: "ws2", ExecAddr: "127.0.0.1:2"},
		GrantReply{Used: true, JobID: "j"},
		PreemptRequest{JobID: "j", Reason: "up-down"},
		PreemptReply{Vacating: true},
		ReserveRequest{Station: "ws2", Holder: "ws1", DurationMillis: 1000},
		ReserveReply{OK: true, UntilUnixMillis: 42},
		CancelReservationRequest{Station: "ws2"},
		CancelReservationReply{Cancelled: true},
		HistoryRequest{JobID: "j", Limit: 10},
		HistoryReply{Events: []eventlog.Event{{Kind: eventlog.KindGrant, Job: "j"}}},
		PoolStatusRequest{},
		PoolStatusReply{Stations: []StationInfo{{Name: "ws1", State: StationClaimed}}},
		PlaceRequest{JobID: "j", Checkpoint: []byte{1, 2, 3}},
		PlaceReply{Accepted: false, Reason: "owner active"},
		SyscallMsg{JobID: "j", Req: cvm.SyscallRequest{Num: cvm.SysWrite, Data: []byte("x")}},
		SyscallReplyMsg{Rep: cvm.SyscallReply{Ret: 1}},
		JobDoneMsg{JobID: "j", ExitCode: 0, Steps: 100},
		JobVacatedMsg{JobID: "j", Checkpoint: []byte{9}, Reason: "owner returned"},
		JobSuspendedMsg{JobID: "j"},
		JobResumedMsg{JobID: "j"},
		Ack{},
	}
	for _, msg := range msgs {
		env := wire.Envelope{ID: 1, Kind: wire.KindRequest, Msg: msg}
		blob, err := gobEncode(&env)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		var out wire.Envelope
		if err := gobDecode(blob, &out); err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if out.Msg == nil {
			t.Fatalf("%T: message lost", msg)
		}
	}
}

func TestStateStrings(t *testing.T) {
	if StationIdle.String() != "idle" || StationSuspended.String() != "suspended" {
		t.Fatal("station state names wrong")
	}
	if !strings.Contains(StationState(42).String(), "42") {
		t.Fatal("unknown station state should include number")
	}
	if JobCompleted.String() != "completed" || JobPlacing.String() != "placing" {
		t.Fatal("job state names wrong")
	}
	if !strings.Contains(JobState(42).String(), "42") {
		t.Fatal("unknown job state should include number")
	}
}

func TestTerminalStates(t *testing.T) {
	for _, s := range []JobState{JobCompleted, JobFaulted, JobRemoved} {
		if !s.Terminal() {
			t.Fatalf("%v should be terminal", s)
		}
	}
	for _, s := range []JobState{JobIdle, JobPlacing, JobRunning, JobSuspendedState} {
		if s.Terminal() {
			t.Fatalf("%v should not be terminal", s)
		}
	}
}
