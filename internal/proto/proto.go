// Package proto defines the messages and shared vocabulary spoken by the
// Condor daemons: coordinator ↔ station (poll/grant/preempt), client ↔
// station (submit/queue), and shadow ↔ starter (place/syscall/vacate —
// the Remote Unix protocol).
//
// All message types are registered with encoding/gob so they can travel
// inside wire.Envelope. Checkpoints travel as opaque ckpt-format blobs
// (see internal/ckpt), never as live structures: a fresh job placement is
// just a restore from a sequence-zero checkpoint, which is why placing
// and checkpointing cost the same 5 s/MB in the paper's measurements.
package proto

import (
	"encoding/gob"
	"fmt"
	"time"

	"condor/internal/accounting"
	"condor/internal/cvm"
	"condor/internal/decision"
	"condor/internal/eventlog"
)

// StationState is a workstation's scheduling state as seen by its local
// scheduler and reported to the coordinator.
type StationState int

// Station states.
const (
	// StationOwner: the owner is active; no foreign work may run.
	StationOwner StationState = iota + 1
	// StationIdle: no owner activity; available as a cycle source.
	StationIdle
	// StationClaimed: a foreign background job is executing here.
	StationClaimed
	// StationSuspended: the owner returned; the foreign job is stopped
	// but kept in memory for the grace period (§4).
	StationSuspended
)

// String returns a short state name.
func (s StationState) String() string {
	switch s {
	case StationOwner:
		return "owner"
	case StationIdle:
		return "idle"
	case StationClaimed:
		return "claimed"
	case StationSuspended:
		return "suspended"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StationHealth is the coordinator's graded confidence in a station:
// not whether the machine is idle or busy (that is StationState), but
// whether the coordinator believes what the machine says and is willing
// to route work through it. Healthy stations participate fully; suspect
// stations keep their running jobs but receive no new grants;
// quarantined stations are contacted only by backoff-spaced probes until
// they earn readmission; dead stations are unregistered.
type StationHealth int

// Station health states.
const (
	// HealthHealthy: polls answer promptly and plausibly.
	HealthHealthy StationHealth = iota + 1
	// HealthSuspect: elevated suspicion (missed or slow polls). No new
	// grants, but running jobs continue and polling stays per-cycle.
	HealthSuspect
	// HealthQuarantined: high suspicion, flapping, or a byzantine reply.
	// Excluded from allocation entirely; probed with jittered exponential
	// backoff until enough consecutive probes succeed.
	HealthQuarantined
	// HealthDead: the station exhausted its failure budget and was
	// unregistered.
	HealthDead
)

// String returns a short health-state name.
func (h StationHealth) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthQuarantined:
		return "quarantined"
	case HealthDead:
		return "dead"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// JobState is a background job's lifecycle state in its home queue.
type JobState int

// Job states.
const (
	// JobIdle: queued, waiting for capacity.
	JobIdle JobState = iota + 1
	// JobPlacing: being transferred to an execution site.
	JobPlacing
	// JobRunning: executing remotely.
	JobRunning
	// JobSuspendedState: stopped at the execution site, grace period.
	JobSuspendedState
	// JobCompleted: finished successfully.
	JobCompleted
	// JobFaulted: the program faulted; it will not be rescheduled.
	JobFaulted
	// JobRemoved: removed by its owner.
	JobRemoved
)

// String returns a short state name.
func (s JobState) String() string {
	switch s {
	case JobIdle:
		return "idle"
	case JobPlacing:
		return "placing"
	case JobRunning:
		return "running"
	case JobSuspendedState:
		return "suspended"
	case JobCompleted:
		return "completed"
	case JobFaulted:
		return "faulted"
	case JobRemoved:
		return "removed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobCompleted || s == JobFaulted || s == JobRemoved
}

// JobStatus describes one queued job.
type JobStatus struct {
	ID          string    `json:"id"`
	Owner       string    `json:"owner"`
	Program     string    `json:"program"`
	State       JobState  `json:"state"`
	SubmittedAt time.Time `json:"submittedAt"`
	// CPUSteps is guest CPU consumed so far (from the latest checkpoint
	// or completion).
	CPUSteps uint64 `json:"cpuSteps"`
	// ExecHost is the current or last execution site.
	ExecHost string `json:"execHost"`
	// Checkpoints is how many times the job has been checkpointed.
	Checkpoints int `json:"checkpoints"`
	// Placements is how many times the job has been placed on a machine.
	Placements int `json:"placements"`
	// Priority is the job's local queue priority (higher first).
	Priority int    `json:"priority"`
	ExitCode int64  `json:"exitCode"`
	FaultMsg string `json:"faultMsg,omitempty"`
	Stdout   string `json:"stdout,omitempty"`
	// WaitingSince is when the job's current idle episode began (submit
	// or requeue after a vacate/loss); zero when not waiting. condor-q
	// renders it as the job's queue-wait age.
	WaitingSince time.Time `json:"waitingSince,omitempty"`
}

// StationInfo is one row of the coordinator's pool table.
type StationInfo struct {
	Name  string       `json:"name"`
	Addr  string       `json:"addr"`
	State StationState `json:"state"`
	// WaitingJobs is how many background jobs the station has queued.
	WaitingJobs int `json:"waitingJobs"`
	// RunningJobs is how many of the station's own jobs run remotely.
	RunningJobs int `json:"runningJobs"`
	// ForeignJob is the job id executing on this station, if claimed.
	ForeignJob string `json:"foreignJob,omitempty"`
	// ScheduleIndex is the station's Up-Down priority index.
	ScheduleIndex float64 `json:"scheduleIndex"`
	// IndexHistory is the station's recent schedule-index trajectory,
	// oldest first (bounded; empty from coordinators predating it).
	IndexHistory []float64 `json:"indexHistory,omitempty"`
	// LastPoll is when the coordinator last heard from the station.
	LastPoll time.Time `json:"lastPoll"`
	// DiskFreeBytes is free checkpoint-store space on the station.
	DiskFreeBytes int64 `json:"diskFreeBytes"`
	// ReservedFor names the station holding a §5.3 reservation on this
	// machine, if any.
	ReservedFor string `json:"reservedFor,omitempty"`
	// ReservedUntil is the reservation expiry.
	ReservedUntil time.Time `json:"reservedUntil,omitempty"`
	// Health is the coordinator's graded confidence in the station
	// (zero from coordinators predating graded health).
	Health StationHealth `json:"health,omitempty"`
	// HealthSince is when the station entered its current health state.
	HealthSince time.Time `json:"healthSince,omitempty"`
	// HealthReason explains a non-healthy state: timeout, slow,
	// byzantine, or flap (with detail).
	HealthReason string `json:"healthReason,omitempty"`
	// Suspicion is the station's current phi-accrual-style suspicion
	// score in [0,1]; the suspect/quarantine thresholds cut it.
	Suspicion float64 `json:"suspicion,omitempty"`
}

// --- client ↔ station ------------------------------------------------

// SubmitRequest submits a program to a station's background queue.
type SubmitRequest struct {
	Owner string
	// Source is cvm assembler source; the station assembles it.
	Source string
	// Name names the program (used for text sharing and display).
	Name string
	// ProgramBlob is an alternative to Source: a gob-encoded cvm.Program.
	ProgramBlob []byte
	// StackWords optionally overrides the default stack size.
	StackWords int
	// Priority orders the job within its home queue (higher runs first;
	// the local scheduler's own decision, §2.1). Ties break FIFO.
	Priority int
}

// SubmitReply acknowledges a submission.
type SubmitReply struct {
	JobID string
}

// QueueRequest asks a station for its queue contents.
type QueueRequest struct{}

// QueueReply lists the station's jobs.
type QueueReply struct {
	Station string
	Jobs    []JobStatus
}

// RemoveRequest removes a job from the queue (and vacates it if running).
type RemoveRequest struct {
	JobID string
}

// RemoveReply acknowledges a removal.
type RemoveReply struct {
	Removed bool
}

// WaitRequest blocks until the job reaches a terminal state (or the
// server's patience runs out; Found reports whether the job exists).
type WaitRequest struct {
	JobID string
}

// WaitReply carries the terminal status.
type WaitReply struct {
	Found  bool
	Status JobStatus
}

// --- coordinator ↔ station -------------------------------------------

// RegisterRequest announces a station to the coordinator.
type RegisterRequest struct {
	Name string
	Addr string
}

// RegisterReply acknowledges registration.
type RegisterReply struct {
	OK bool
	// PollInterval tells the station how often it will be polled.
	PollIntervalMillis int64
}

// PollRequest is the coordinator's 2-minute heartbeat to a station.
type PollRequest struct{}

// PollReply is the station's state report.
type PollReply struct {
	Name  string
	State StationState
	// WaitingJobs counts queued jobs wanting remote capacity.
	WaitingJobs int
	// ForeignJob is the id of the foreign job running here, if any.
	ForeignJob string
	// ForeignOwnerStation is the home station of that job.
	ForeignOwnerStation string
	// DiskFreeBytes is free checkpoint-store space (§4: a full disk makes
	// the station unusable as an execution site).
	DiskFreeBytes int64
	// IdleStreakMillis is how long the station has currently been idle.
	IdleStreakMillis int64
	// AvgIdleMillis is the station's historic mean idle-interval length,
	// feeding the §5.1 availability-history placement strategy.
	AvgIdleMillis int64
}

// GrantRequest awards the station capacity on an idle machine. The
// station decides which of its queued jobs to run there (§2.1: "A local
// scheduler with more than one background job waiting makes its own
// decision of which job should be executed next").
type GrantRequest struct {
	ExecName string
	ExecAddr string
}

// GrantReply reports whether the grant was used.
type GrantReply struct {
	Used  bool
	JobID string
	// Reason explains an unused grant (no jobs left, pacing, disk, ...).
	Reason string
	// Trace is the placed job's root span context (a W3C traceparent)
	// when the grant was used, letting the coordinator record its grant
	// span into the job's trace. Empty from stations predating tracing.
	Trace string
}

// PreemptRequest tells the execution station to vacate the foreign job it
// is running (Up-Down priority inversion or administrative action).
type PreemptRequest struct {
	JobID  string
	Reason string
}

// PreemptReply acknowledges the vacate has begun.
type PreemptReply struct {
	Vacating bool
}

// ReserveRequest reserves an execution machine for a station's exclusive
// use until the given time — the §5.3 reservation system, used to
// "guarantee computing capacity for users in advance in order to conduct
// experiments in distributed computations". The workstation's owner
// still preempts everything; a reservation only arbitrates among remote
// users.
type ReserveRequest struct {
	// Station is the machine being reserved.
	Station string
	// Holder is the station whose jobs may use it.
	Holder string
	// DurationMillis bounds the reservation from now.
	DurationMillis int64
}

// ReserveReply reports the reservation outcome.
type ReserveReply struct {
	OK bool
	// Reason explains a refusal (unknown station, already reserved, ...).
	Reason string
	// UntilUnixMillis is the reservation expiry.
	UntilUnixMillis int64
}

// CancelReservationRequest releases a reservation.
type CancelReservationRequest struct {
	Station string
}

// CancelReservationReply acknowledges the cancellation.
type CancelReservationReply struct {
	Cancelled bool
}

// HistoryRequest asks a daemon for its recent event log. JobID filters
// to one job's trail; TraceID filters to events stitched to one trace
// (32 hex chars, see internal/trace); Limit caps the number of events
// (0 = all retained).
type HistoryRequest struct {
	JobID   string
	Limit   int
	TraceID string
}

// HistoryReply carries the events, oldest first.
type HistoryReply struct {
	Events []eventlog.Event
}

// PoolStatusRequest asks the coordinator for the pool table.
type PoolStatusRequest struct{}

// AccountingRequest asks a daemon for its live accounting ledgers — the
// paper's §5 quantities measured on the running system. Both the
// coordinator and the stations answer it.
type AccountingRequest struct{}

// AccountingReply carries the ledger views. Process is the answering
// daemon's process-wide job/station/user ledger (empty sections when the
// daemon runs no jobs); Coordinator is the allocation/capacity ledger
// and is only populated by coordinators.
type AccountingReply struct {
	Process     accounting.View
	Coordinator accounting.View
	// HasCoordinator distinguishes "not a coordinator" from an empty
	// coordinator ledger.
	HasCoordinator bool
}

// DecisionsRequest asks the coordinator for its scheduling decision
// audits — the per-cycle record of why each machine was filtered,
// ranked, granted, or preempted. Filters compose (see decision.Filter):
// Job keeps cycles naming the job ID in a grant/preempt; Station keeps
// cycles mentioning the station in any role; Cycle selects one cycle
// (>0 exact number, <0 from the newest, 0 all); Last keeps the newest N.
type DecisionsRequest struct {
	Job     string
	Station string
	Cycle   int64
	Last    int
}

// DecisionsReply carries the matching cycle audits plus the recorder's
// lifetime totals (Dropped > 0 means the ring wrapped and older cycles
// are gone).
type DecisionsReply struct {
	Cycles  []decision.CycleAudit
	Total   uint64
	Dropped uint64
}

// WireStats reports the coordinator's pooled-connection activity:
// how often station RPCs rode a cached connection versus paying a
// fresh dial, plus reconnects after station restarts, idle evictions,
// and retried attempts.
type WireStats struct {
	Dials      uint64
	Reuses     uint64
	Reconnects uint64
	Evictions  uint64
	Retries    uint64
}

// JournalStats reports the coordinator's durable-state journal activity
// (all zero when the coordinator runs without a state directory).
type JournalStats struct {
	// Appends and Snapshots count journal writes this incarnation.
	Appends   uint64
	Snapshots uint64
	// LogBytes is the current journal log size.
	LogBytes int64
	// Replayed is how many records startup recovery replayed.
	Replayed uint64
	// TruncatedBytes is how much torn tail recovery cut off the log.
	TruncatedBytes int64
	// Errors counts journal append/encode failures (state kept serving,
	// durability degraded).
	Errors uint64
}

// CoordinatorInfo describes the coordinator daemon itself: its restart
// lineage and recovery state, so operators can see at a glance that a
// crash happened and what was restored.
type CoordinatorInfo struct {
	// PolicyName is the active scheduling policy (registry name, e.g.
	// "updown"). Empty when talking to a pre-pipeline coordinator.
	PolicyName string
	// Incarnation is how many times this coordinator's state directory
	// has been opened (0 = running without durable state).
	Incarnation uint64
	// StartedUnixMillis is when this incarnation came up.
	StartedUnixMillis int64
	// Cycles is how many allocation cycles this incarnation has run.
	Cycles uint64
	// Grants, GrantsUsed, GrantsDenied and Preempts summarize allocation
	// activity: grants issued, grants the receiving station actually used
	// to place a job, grants it declined (pacing, no jobs left, disk), and
	// Up-Down preemption orders sent.
	Grants       uint64
	GrantsUsed   uint64
	GrantsDenied uint64
	Preempts     uint64
	// Persistent reports whether a state directory is configured.
	Persistent bool
	// Journal is the durable-state journal activity.
	Journal JournalStats
	// Degraded reports that more than the configured fraction of the
	// pool is non-healthy, so up-down index movement is frozen (users are
	// not charged or credited for infrastructure failure).
	Degraded bool
	// Suspects, Quarantines, Readmissions, and ByzantineReplies count
	// health-state activity this incarnation.
	Suspects         uint64
	Quarantines      uint64
	Readmissions     uint64
	ByzantineReplies uint64
	// ReadyFailures lists the daemon's failing readiness checks as
	// "name: reason" lines — the same detail /healthz serves in its 503
	// body, so condor-status and the dashboard can show *why* a daemon
	// is unready. Empty means ready (and from coordinators predating
	// this field).
	ReadyFailures []string
}

// PoolStatusReply is the pool table.
type PoolStatusReply struct {
	Stations []StationInfo
	// Wire is the coordinator's connection-pool activity (all zero when
	// the coordinator runs in dial-per-RPC mode).
	Wire WireStats
	// Coordinator describes the coordinator daemon: incarnation, uptime,
	// and journal/recovery state.
	Coordinator CoordinatorInfo
}

// --- shadow ↔ starter (Remote Unix) ----------------------------------

// PlaceRequest ships a job to an execution machine. Checkpoint is a
// ckpt-format blob (sequence 0 for a fresh job). The connection that
// carried PlaceRequest stays open: the executor sends SyscallMsg and
// finally one of JobDoneMsg/JobVacatedMsg back over it.
type PlaceRequest struct {
	JobID      string
	Owner      string
	HomeHost   string
	Checkpoint []byte
}

// PlaceReply accepts or rejects the placement.
type PlaceReply struct {
	Accepted bool
	Reason   string
}

// SyscallMsg forwards one guest system call to the shadow.
type SyscallMsg struct {
	JobID string
	Req   cvm.SyscallRequest
}

// SyscallReplyMsg is the shadow's answer.
type SyscallReplyMsg struct {
	Rep cvm.SyscallReply
}

// JobDoneMsg reports job termination to the shadow.
type JobDoneMsg struct {
	JobID    string
	ExitCode int64
	Steps    uint64
	Syscalls uint64
	Faulted  bool
	FaultMsg string
}

// JobVacatedMsg returns a checkpointed job to the shadow.
type JobVacatedMsg struct {
	JobID      string
	Checkpoint []byte
	Reason     string
	Steps      uint64
}

// JobCheckpointMsg ships a periodic checkpoint to the shadow while the
// job keeps running (§4's proposed strategy; the A5 ablation). One-way.
type JobCheckpointMsg struct {
	JobID      string
	Checkpoint []byte
	Steps      uint64
}

// JobSuspendedMsg is a one-way notice: owner returned, grace period
// started.
type JobSuspendedMsg struct {
	JobID string
}

// JobResumedMsg is a one-way notice: owner left again within the grace
// period; the job continues where it stopped.
type JobResumedMsg struct {
	JobID string
}

// Ack is a generic empty acknowledgement.
type Ack struct{}

// EncodeProgram gob-encodes a program for SubmitRequest.ProgramBlob.
func EncodeProgram(p *cvm.Program) ([]byte, error) {
	return gobEncode(p)
}

// DecodeProgram decodes SubmitRequest.ProgramBlob.
func DecodeProgram(blob []byte) (*cvm.Program, error) {
	var p cvm.Program
	if err := gobDecode(blob, &p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Message types are registered with gob at package load. This is one of
// the sanctioned init uses (an encoding type registry): deterministic, no
// I/O, no environment access.
func init() {
	for _, msg := range []any{
		SubmitRequest{}, SubmitReply{},
		QueueRequest{}, QueueReply{},
		RemoveRequest{}, RemoveReply{},
		WaitRequest{}, WaitReply{},
		RegisterRequest{}, RegisterReply{},
		PollRequest{}, PollReply{},
		GrantRequest{}, GrantReply{},
		PreemptRequest{}, PreemptReply{},
		ReserveRequest{}, ReserveReply{},
		HistoryRequest{}, HistoryReply{},
		CancelReservationRequest{}, CancelReservationReply{},
		PoolStatusRequest{}, PoolStatusReply{},
		AccountingRequest{}, AccountingReply{},
		DecisionsRequest{}, DecisionsReply{},
		PlaceRequest{}, PlaceReply{},
		SyscallMsg{}, SyscallReplyMsg{},
		JobDoneMsg{}, JobVacatedMsg{}, JobCheckpointMsg{},
		JobSuspendedMsg{}, JobResumedMsg{},
		Ack{},
	} {
		gob.Register(msg)
	}
}
