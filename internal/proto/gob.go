package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("proto: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func gobDecode(blob []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(v); err != nil {
		return fmt.Errorf("proto: decode %T: %w", v, err)
	}
	return nil
}
