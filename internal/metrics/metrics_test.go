package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Median() != 0 || h.N() != 0 {
		t.Fatal("empty histogram must be all zero")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 || h.Mean() != 3 || h.Sum() != 15 {
		t.Fatalf("N=%d mean=%v sum=%v", h.N(), h.Mean(), h.Sum())
	}
	if h.Median() != 3 {
		t.Fatalf("median = %v", h.Median())
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
}

func TestHistogramCDF(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Add(float64(i))
	}
	cdf := h.CDF([]float64{0, 1, 5, 10, 20})
	want := []float64{0, 0.1, 0.5, 1, 1}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-9 {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	var empty Histogram
	for _, v := range empty.CDF([]float64{1, 2}) {
		if v != 0 {
			t.Fatal("empty CDF must be zero")
		}
	}
}

func TestHistogramCDFMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		var h Histogram
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Add(v)
			}
		}
		points := []float64{-100, -1, 0, 1, 100}
		cdf := h.CDF(points)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBins(t *testing.T) {
	b := NewBins(1, 2, 4)
	b.Observe(0.5, 10)
	b.Observe(1.5, 20)
	b.Observe(1.7, 40)
	b.Observe(3.0, 7)
	b.Observe(100, 9)
	if b.Len() != 4 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.Mean(0) != 10 || b.Mean(1) != 30 || b.Mean(2) != 7 || b.Mean(3) != 9 {
		t.Fatalf("means = %v %v %v %v", b.Mean(0), b.Mean(1), b.Mean(2), b.Mean(3))
	}
	if b.Count(1) != 2 {
		t.Fatalf("count(1) = %d", b.Count(1))
	}
	if b.Mean(99) != 0 || b.Count(-1) != 0 {
		t.Fatal("out-of-range access must be zero")
	}
	if b.Label(0) != "0-1h" || b.Label(2) != "2-4h" || b.Label(3) != ">4h" {
		t.Fatalf("labels = %q %q %q", b.Label(0), b.Label(2), b.Label(3))
	}
}

func TestBinEdgeInclusive(t *testing.T) {
	b := NewBins(1, 2)
	b.Observe(1.0, 5) // exactly on edge: first bin
	if b.Count(0) != 1 || b.Count(1) != 0 {
		t.Fatalf("edge observation landed in wrong bin: %d/%d", b.Count(0), b.Count(1))
	}
}

func TestDemandBinsCoverTwelveHours(t *testing.T) {
	b := DemandBins()
	if b.Len() != 13 {
		t.Fatalf("len = %d, want 13", b.Len())
	}
	b.Observe(11.5, 1)
	b.Observe(20, 1)
	if b.Count(11) != 1 || b.Count(12) != 1 {
		t.Fatal("demand bins misroute")
	}
}

func TestHourlySeries(t *testing.T) {
	start := time.Date(1987, 11, 2, 0, 0, 0, 0, time.UTC)
	s := NewHourlySeries(start, 24, time.Hour)
	s.Observe(start.Add(30*time.Minute), 10)
	s.Observe(start.Add(45*time.Minute), 20)
	s.Observe(start.Add(5*time.Hour), 7)
	s.Observe(start.Add(-time.Hour), 999)  // before window: dropped
	s.Observe(start.Add(25*time.Hour), 99) // after window: dropped
	if s.At(0) != 15 {
		t.Fatalf("bucket 0 = %v, want mean 15", s.At(0))
	}
	if s.At(5) != 7 {
		t.Fatalf("bucket 5 = %v", s.At(5))
	}
	if s.At(1) != 0 {
		t.Fatal("empty bucket must be 0")
	}
	if !s.Time(5).Equal(start.Add(5 * time.Hour)) {
		t.Fatal("Time broken")
	}
	if len(s.Values()) != 24 {
		t.Fatal("Values length wrong")
	}
	if got := s.Mean(); math.Abs(got-11) > 1e-9 { // (15+7)/2
		t.Fatalf("mean of non-empty buckets = %v, want 11", got)
	}
}

func TestHourlySeriesSlice(t *testing.T) {
	start := time.Date(1987, 11, 2, 0, 0, 0, 0, time.UTC)
	s := NewHourlySeries(start, 48, time.Hour)
	for i := 0; i < 48; i++ {
		s.Observe(start.Add(time.Duration(i)*time.Hour), float64(i))
	}
	got := s.Slice(start.Add(10*time.Hour), start.Add(13*time.Hour))
	if len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Fatalf("slice = %v", got)
	}
	if s.Slice(start.Add(40*time.Hour), start.Add(100*time.Hour)) == nil {
		t.Fatal("clamped slice should not be nil")
	}
	if s.Slice(start.Add(5*time.Hour), start.Add(5*time.Hour)) != nil {
		t.Fatal("empty slice should be nil")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"User", "Jobs"}, [][]string{{"A", "690"}, {"B", "138"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "User") || !strings.Contains(lines[0], "Jobs") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "690") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestChartRendering(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i % 10)
	}
	out := Chart("queue length", values, 40, 8)
	if !strings.Contains(out, "queue length") || !strings.Contains(out, "#") {
		t.Fatalf("chart output:\n%s", out)
	}
	flat := Chart("empty", []float64{0, 0, 0}, 10, 4)
	if !strings.Contains(flat, "all zero") {
		t.Fatalf("zero chart:\n%s", flat)
	}
}

func TestDownsample(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ds := Downsample(values, 4)
	if len(ds) != 4 {
		t.Fatalf("len = %d", len(ds))
	}
	if ds[0] != 1.5 || ds[3] != 7.5 {
		t.Fatalf("ds = %v", ds)
	}
	same := Downsample(values, 100)
	if len(same) != len(values) {
		t.Fatal("short input must pass through")
	}
	same[0] = 99
	if values[0] == 99 {
		t.Fatal("downsample must copy, not alias")
	}
}
