// Package metrics provides the statistical containers and text renderers
// used to reproduce the paper's tables and figures: sample histograms
// with CDFs (Figure 2), hourly time series (Figures 3, 5, 6, 7), and
// demand-binned statistics (Figures 4, 8, 9).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram accumulates float64 samples.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Sum returns the sample total.
func (h *Histogram) Sum() float64 {
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) by
// nearest-rank; 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Median returns the 50th percentile.
func (h *Histogram) Median() float64 { return h.Percentile(50) }

// CDF returns, for each point, the fraction of samples ≤ that point.
func (h *Histogram) CDF(points []float64) []float64 {
	out := make([]float64, len(points))
	if len(h.samples) == 0 {
		return out
	}
	h.ensureSorted()
	for i, p := range points {
		idx := sort.SearchFloat64s(h.samples, math.Nextafter(p, math.Inf(1)))
		out[i] = float64(idx) / float64(len(h.samples))
	}
	return out
}

// Bins accumulates (x, v) observations into x-ranges, for the paper's
// "vs service demand" figures.
type Bins struct {
	// edges are the upper bounds of each bin except the last, which is
	// open-ended.
	edges  []float64
	sums   []float64
	counts []int64
}

// NewBins creates bins with the given upper edges plus a final open bin.
func NewBins(edges ...float64) *Bins {
	sorted := append([]float64(nil), edges...)
	sort.Float64s(sorted)
	return &Bins{
		edges:  sorted,
		sums:   make([]float64, len(sorted)+1),
		counts: make([]int64, len(sorted)+1),
	}
}

// DemandBins returns the service-demand bins used by Figures 4, 8, 9:
// hourly up to 12 hours, then open-ended.
func DemandBins() *Bins {
	return NewBins(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
}

func (b *Bins) index(x float64) int {
	for i, e := range b.edges {
		if x <= e {
			return i
		}
	}
	return len(b.edges)
}

// Observe adds value v at coordinate x.
func (b *Bins) Observe(x, v float64) {
	i := b.index(x)
	b.sums[i] += v
	b.counts[i]++
}

// Len returns the number of bins.
func (b *Bins) Len() int { return len(b.sums) }

// Mean returns bin i's mean value (0 when empty).
func (b *Bins) Mean(i int) float64 {
	if i < 0 || i >= len(b.sums) || b.counts[i] == 0 {
		return 0
	}
	return b.sums[i] / float64(b.counts[i])
}

// Count returns bin i's observation count.
func (b *Bins) Count(i int) int64 {
	if i < 0 || i >= len(b.counts) {
		return 0
	}
	return b.counts[i]
}

// Label renders bin i's range, e.g. "2-3h" or ">12h".
func (b *Bins) Label(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("0-%gh", b.edges[0])
	case i < len(b.edges):
		return fmt.Sprintf("%g-%gh", b.edges[i-1], b.edges[i])
	default:
		return fmt.Sprintf(">%gh", b.edges[len(b.edges)-1])
	}
}

// HourlySeries is a fixed-resolution time series over an observation
// window; each bucket averages the observations that land in it.
type HourlySeries struct {
	start  time.Time
	step   time.Duration
	sums   []float64
	counts []int64
}

// NewHourlySeries covers [start, start+n*step).
func NewHourlySeries(start time.Time, n int, step time.Duration) *HourlySeries {
	if step <= 0 {
		step = time.Hour
	}
	return &HourlySeries{
		start:  start,
		step:   step,
		sums:   make([]float64, n),
		counts: make([]int64, n),
	}
}

// Observe records v at time t; out-of-window observations are dropped.
func (s *HourlySeries) Observe(t time.Time, v float64) {
	i := int(t.Sub(s.start) / s.step)
	if i < 0 || i >= len(s.sums) {
		return
	}
	s.sums[i] += v
	s.counts[i]++
}

// Len returns the bucket count.
func (s *HourlySeries) Len() int { return len(s.sums) }

// At returns bucket i's mean (0 when empty).
func (s *HourlySeries) At(i int) float64 {
	if i < 0 || i >= len(s.sums) || s.counts[i] == 0 {
		return 0
	}
	return s.sums[i] / float64(s.counts[i])
}

// Time returns bucket i's start time.
func (s *HourlySeries) Time(i int) time.Time {
	return s.start.Add(time.Duration(i) * s.step)
}

// Values returns all bucket means.
func (s *HourlySeries) Values() []float64 {
	out := make([]float64, len(s.sums))
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// Slice returns bucket means for [from, to).
func (s *HourlySeries) Slice(from, to time.Time) []float64 {
	i := int(from.Sub(s.start) / s.step)
	j := int(to.Sub(s.start) / s.step)
	if i < 0 {
		i = 0
	}
	if j > len(s.sums) {
		j = len(s.sums)
	}
	if i >= j {
		return nil
	}
	out := make([]float64, 0, j-i)
	for k := i; k < j; k++ {
		out = append(out, s.At(k))
	}
	return out
}

// Mean returns the mean of non-empty buckets.
func (s *HourlySeries) Mean() float64 {
	sum, n := 0.0, 0
	for i := range s.sums {
		if s.counts[i] > 0 {
			sum += s.At(i)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- text rendering ----------------------------------------------------

// Table renders rows as an aligned ASCII table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Chart renders a series as a crude ASCII line chart (one column per
// downsampled point), good enough to eyeball the figures' shapes in a
// terminal.
func Chart(title string, values []float64, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	ds := Downsample(values, width)
	maxV := 0.0
	for _, v := range ds {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.2f)\n", title, maxV)
	if maxV == 0 {
		b.WriteString("(all zero)\n")
		return b.String()
	}
	for row := height; row >= 1; row-- {
		threshold := maxV * float64(row) / float64(height)
		for _, v := range ds {
			if v >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", len(ds)))
	b.WriteByte('\n')
	return b.String()
}

// Downsample reduces values to at most width points by bucket-averaging.
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return append([]float64(nil), values...)
	}
	out := make([]float64, width)
	per := float64(len(values)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// sparkRamp maps a normalized value to a density character.
const sparkRamp = " .:-=+*#%@"

// Sparkline renders values as a one-line trend (oldest first), scaled to
// their own range and downsampled to at most width characters (width <= 0
// means no downsampling).
func Sparkline(values []float64, width int) string {
	vals := Downsample(values, width)
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRamp)-1))
		}
		b.WriteByte(sparkRamp[i])
	}
	return b.String()
}
