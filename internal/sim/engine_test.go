package sim

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(1987, time.November, 2, 0, 0, 0, 0, time.UTC)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(t0)
	var order []string
	e.At(t0.Add(3*time.Second), func(time.Time) { order = append(order, "c") })
	e.At(t0.Add(1*time.Second), func(time.Time) { order = append(order, "a") })
	e.At(t0.Add(2*time.Second), func(time.Time) { order = append(order, "b") })
	if err := e.RunAll(100); err != nil {
		t.Fatal(err)
	}
	got := order[0] + order[1] + order[2]
	if got != "abc" {
		t.Fatalf("event order = %q, want abc", got)
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	at := t0.Add(time.Minute)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, func(time.Time) { order = append(order, i) })
	}
	if err := e.RunAll(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break broken)", i, v, i)
		}
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(t0)
	var seen time.Time
	e.After(90*time.Second, func(now time.Time) { seen = now })
	if err := e.RunAll(10); err != nil {
		t.Fatal(err)
	}
	want := t0.Add(90 * time.Second)
	if !seen.Equal(want) {
		t.Fatalf("event saw now=%v, want %v", seen, want)
	}
	if !e.Now().Equal(want) {
		t.Fatalf("engine now=%v, want %v", e.Now(), want)
	}
}

func TestEnginePastEventFiresNow(t *testing.T) {
	e := NewEngine(t0)
	e.After(time.Hour, func(time.Time) {})
	if !e.Step() {
		t.Fatal("expected an event")
	}
	var seen time.Time
	e.At(t0, func(now time.Time) { seen = now }) // in the past now
	if !e.Step() {
		t.Fatal("expected past event to fire")
	}
	if seen.Before(t0.Add(time.Hour)) {
		t.Fatalf("past event fired at %v, want clamped to current time", seen)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(t0)
	fired := false
	timer := e.After(time.Second, func(time.Time) { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := e.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine(t0)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Hour, 2 * time.Hour, 3 * time.Hour} {
		d := d
		e.After(d, func(time.Time) { fired = append(fired, d) })
	}
	horizon := t0.Add(2 * time.Hour)
	err := e.Run(horizon)
	if !errors.Is(err, ErrHorizonReached) {
		t.Fatalf("Run = %v, want ErrHorizonReached", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if !e.Now().Equal(horizon) {
		t.Fatalf("clock = %v, want horizon %v", e.Now(), horizon)
	}
}

func TestRunEmptyAdvancesToHorizon(t *testing.T) {
	e := NewEngine(t0)
	horizon := t0.Add(24 * time.Hour)
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if !e.Now().Equal(horizon) {
		t.Fatalf("clock = %v, want %v", e.Now(), horizon)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(t0)
	count := 0
	tick, err := e.Every(2*time.Minute, func(time.Time) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(t0.Add(10 * time.Minute)); err != nil && !errors.Is(err, ErrHorizonReached) {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("ticks in 10min at 2min = %d, want 5", count)
	}
	tick.Stop()
	if err := e.Run(t0.Add(20 * time.Minute)); err != nil && !errors.Is(err, ErrHorizonReached) {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("ticker fired after Stop: %d ticks", count)
	}
}

func TestTickerRejectsNonPositiveInterval(t *testing.T) {
	e := NewEngine(t0)
	if _, err := e.Every(0, func(time.Time) {}); err == nil {
		t.Fatal("expected error for zero interval")
	}
	if _, err := e.Every(-time.Second, func(time.Time) {}); err == nil {
		t.Fatal("expected error for negative interval")
	}
}

func TestRunAllGuard(t *testing.T) {
	e := NewEngine(t0)
	var reschedule func(time.Time)
	reschedule = func(time.Time) { e.After(time.Second, reschedule) }
	e.After(time.Second, reschedule)
	if err := e.RunAll(50); err == nil {
		t.Fatal("expected RunAll to abort a self-perpetuating event chain")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(t0)
	var hits int
	e.After(time.Second, func(time.Time) {
		e.After(time.Second, func(time.Time) { hits++ })
	})
	if err := e.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("nested event did not fire (hits=%d)", hits)
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	e := NewEngine(t0)
	a := e.After(time.Second, func(time.Time) {})
	e.After(2*time.Second, func(time.Time) {})
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	a.Stop()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestVirtualClockMonotonic(t *testing.T) {
	c := NewVirtualClock(t0)
	c.advance(t0.Add(time.Hour))
	c.advance(t0) // backwards: ignored
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Fatalf("clock moved backwards: %v", c.Now())
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	before := time.Now().Add(-time.Second)
	if c.Now().Before(before) {
		t.Fatal("RealClock.Now is not near wall time")
	}
}
