// Package sim provides the discrete-event simulation kernel used by the
// month-scale Condor evaluation, together with the Clock abstraction that
// lets the same scheduling code run against both virtual and wall-clock
// time.
//
// The kernel is deliberately small: an event heap ordered by (time,
// sequence), a virtual clock that advances only when events fire, and
// deterministic random-number streams so a simulation run is exactly
// reproducible from its seed.
package sim
