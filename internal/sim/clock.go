package sim

import "time"

// Clock abstracts the passage of time so that scheduling components can be
// driven either by the wall clock (real daemons) or by the event loop
// (simulation).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// RealClock is a Clock backed by time.Now.
type RealClock struct{}

var _ Clock = RealClock{}

// Now returns the current wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// VirtualClock is a Clock whose time advances only when the event loop
// tells it to. It is not safe for concurrent use; the simulator is
// single-threaded by design.
type VirtualClock struct {
	now time.Time
}

var _ Clock = (*VirtualClock)(nil)

// NewVirtualClock returns a virtual clock positioned at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time { return c.now }

// advance moves the clock forward to t. Moving backwards is a programming
// error in the kernel and is ignored to keep time monotonic.
func (c *VirtualClock) advance(t time.Time) {
	if t.After(c.now) {
		c.now = t
	}
}
