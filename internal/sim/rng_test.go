package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependentButReproducible(t *testing.T) {
	a1 := NewRNG(7).Derive()
	a2 := NewRNG(7).Derive()
	for i := 0; i < 100; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatalf("derived streams not reproducible at draw %d", i)
		}
	}
	parent := NewRNG(7)
	child := parent.Derive()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Float64() == child.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("parent and child streams look identical (%d/100 equal draws)", same)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp(5) sample mean = %v, want ~5", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	g := NewRNG(1)
	if v := g.Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %v, want 0", v)
	}
	if v := g.Exp(-3); v != 0 {
		t.Fatalf("Exp(-3) = %v, want 0", v)
	}
}

func TestLogNormalMeanAndPositivity(t *testing.T) {
	g := NewRNG(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.LogNormal(6.2, 1.0)
		if v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-6.2) > 0.15 {
		t.Fatalf("LogNormal(6.2, 1) sample mean = %v, want ~6.2", mean)
	}
}

func TestLogNormalDegenerateCases(t *testing.T) {
	g := NewRNG(3)
	if v := g.LogNormal(0, 1); v != 0 {
		t.Fatalf("LogNormal(0, 1) = %v, want 0", v)
	}
	if v := g.LogNormal(4, 0); v != 4 {
		t.Fatalf("LogNormal(4, 0) = %v, want 4", v)
	}
}

func TestHyperExpMean(t *testing.T) {
	g := NewRNG(4)
	const n = 300000
	p, m1, m2 := 0.7, 1.0, 10.0
	want := p*m1 + (1-p)*m2
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.HyperExp(p, m1, m2)
	}
	mean := sum / n
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("HyperExp mean = %v, want ~%v", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(5)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.Poisson(3.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("Poisson(3.5) sample mean = %v, want ~3.5", mean)
	}
	if g.Poisson(0) != 0 {
		t.Fatal("Poisson(0) should be 0")
	}
	if g.Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) should be 0")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(6)
	f := func(seed int64) bool {
		v := g.Uniform(2, 9)
		return v >= 2 && v < 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if v := g.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
	if v := g.Uniform(5, 1); v != 5 {
		t.Fatalf("Uniform(5,1) = %v, want lo", v)
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(7)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

func TestIntnRange(t *testing.T) {
	g := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := g.Intn(23)
		if v < 0 || v >= 23 {
			t.Fatalf("Intn(23) = %d out of range", v)
		}
	}
}
