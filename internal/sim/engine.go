package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a callback scheduled to fire at a specific virtual time.
type Event func(now time.Time)

// ErrHorizonReached is returned by Run when the simulation stops because
// the configured horizon was hit while events were still pending.
var ErrHorizonReached = errors.New("sim: horizon reached with events pending")

type scheduledEvent struct {
	at    time.Time
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fire  Event
	index int // heap index; -1 once popped or cancelled
	dead  bool
}

type eventHeap []*scheduledEvent

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface: earlier time first, FIFO on ties.
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) {
	ev, ok := x.(*scheduledEvent)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *scheduledEvent
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// Engine is a single-threaded discrete-event simulation loop.
type Engine struct {
	clock  *VirtualClock
	events eventHeap
	nextID uint64
	fired  uint64
}

// NewEngine returns an engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{clock: NewVirtualClock(start)}
}

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *VirtualClock { return e.clock }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at the absolute time t. Scheduling in the past
// fires the event at the current time (events never run retroactively).
func (e *Engine) At(t time.Time, fn Event) *Timer {
	if t.Before(e.clock.Now()) {
		t = e.clock.Now()
	}
	ev := &scheduledEvent{at: t, seq: e.nextID, fire: fn}
	e.nextID++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn Event) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.clock.Now().Add(d), fn)
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned Ticker is stopped.
func (e *Engine) Every(interval time.Duration, fn Event) (*Ticker, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sim: non-positive ticker interval %v", interval)
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.arm()
	return t, nil
}

// Ticker re-schedules an event at a fixed virtual interval.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       Event
	timer    *Timer
	stopped  bool
}

func (t *Ticker) arm() {
	t.timer = t.engine.After(t.interval, func(now time.Time) {
		if t.stopped {
			return
		}
		t.fn(now)
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		top, ok := heap.Pop(&e.events).(*scheduledEvent)
		if !ok {
			return false
		}
		if top.dead {
			continue
		}
		e.clock.advance(top.at)
		e.fired++
		top.fire(e.clock.Now())
		return true
	}
	return false
}

// Run executes events until either no events remain or the clock would
// pass horizon. Events scheduled exactly at the horizon still run. It
// returns ErrHorizonReached if it stopped with events pending.
func (e *Engine) Run(horizon time.Time) error {
	for len(e.events) > 0 {
		// Peek: skip over dead events at the top.
		top := e.events[0]
		if top.dead {
			heap.Pop(&e.events)
			continue
		}
		if top.at.After(horizon) {
			e.clock.advance(horizon)
			return ErrHorizonReached
		}
		e.Step()
	}
	e.clock.advance(horizon)
	return nil
}

// RunAll executes events until none remain. Useful in tests with finite
// event sets; a self-rescheduling ticker makes this loop forever, so the
// maxEvents guard aborts with an error in that case.
func (e *Engine) RunAll(maxEvents uint64) error {
	start := e.fired
	for e.Step() {
		if e.fired-start > maxEvents {
			return fmt.Errorf("sim: RunAll exceeded %d events", maxEvents)
		}
	}
	return nil
}
