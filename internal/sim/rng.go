package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream with the distribution helpers the
// simulator needs. It wraps math/rand with an explicit source so separate
// subsystems (availability, workload, ...) can own independent streams
// derived from one master seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent stream deterministically derived from
// this one. Streams derived in the same order from the same seed are
// identical across runs.
func (g *RNG) Derive() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Exp returns an exponential variate with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal variate with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a log-normal variate parameterized by the mean and
// coefficient of variation (stddev/mean) of the *resulting* distribution,
// which is the natural way to calibrate job-demand distributions from the
// paper's per-user means.
func (g *RNG) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(g.r.NormFloat64()*math.Sqrt(sigma2) + mu)
}

// HyperExp returns a two-phase hyperexponential variate: with probability
// p the mean is m1, otherwise m2. Used for availability-interval lengths,
// which the paper's reference [1] reports as a mix of short and very long
// intervals.
func (g *RNG) HyperExp(p, m1, m2 float64) float64 {
	if g.r.Float64() < p {
		return g.Exp(m1)
	}
	return g.Exp(m2)
}

// Poisson returns a Poisson variate with the given mean (Knuth's method;
// fine for the small means used here).
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1_000_000 { // numerical guard
			return k
		}
	}
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
