package chaos

import (
	"os"
	"testing"
)

// TestScenarioFiveStationsFiftyCycles is the PR's acceptance gate: a
// 5-station cluster driven through 50+ cycles of randomized partitions,
// slow links, flapping, corruption, and a byzantine registrant, with a
// coordinator kill/restart mid-run (while stations sit quarantined).
// After heal, the Report must carry zero invariant violations: no job
// lost, no double execution, every healable station readmitted,
// accounting conserved, health states restored across the restart.
func TestScenarioFiveStationsFiftyCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario is seconds-long; skipped in -short")
	}
	rep, err := Run(Scenario{
		Stations:  5,
		Cycles:    50,
		Jobs:      6,
		Seed:      1,
		Byzantine: true,
		StateDir:  t.TempDir(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	t.Logf("report: cycles=%d quarantines=%d readmissions=%d byzantine=%d degraded=%d",
		rep.Cycles, rep.Quarantines, rep.Readmissions, rep.ByzantineReplies, rep.DegradedCycles)
	if rep.Quarantines == 0 {
		t.Error("scenario never quarantined anything — faults not biting")
	}
	if rep.ByzantineReplies == 0 {
		t.Error("byzantine station never detected")
	}
}

// TestScenarioLongMode is the nightly soak: more stations, more cycles,
// several seeds. Gated on CONDOR_CHAOS_LONG=1 so the default `go test`
// stays fast; CI's scheduled job sets the variable.
func TestScenarioLongMode(t *testing.T) {
	if os.Getenv("CONDOR_CHAOS_LONG") == "" {
		t.Skip("set CONDOR_CHAOS_LONG=1 to run the long chaos soak")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		rep, err := Run(Scenario{
			Stations:  7,
			Cycles:    150,
			Jobs:      10,
			Seed:      seed,
			Byzantine: true,
			StateDir:  t.TempDir(),
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violated: %s", seed, v)
		}
	}
}
