package chaos

import (
	"context"
	"sync"

	"condor/internal/proto"
	"condor/internal/wire"
)

// ByzantineStation is a wire server that answers the coordinator like a
// station would — but lies. Every poll reply is well-formed on the wire
// and impossible in content, rotating through the coordinator's
// byzantine signatures: claiming another station's identity, negative
// capacity, an out-of-range state, and a foreign job the coordinator
// never placed. The health machinery must quarantine it on first
// contact and never readmit it while it keeps lying.
type ByzantineStation struct {
	name string
	srv  *wire.Server

	mu    sync.Mutex
	polls int
}

// NewByzantineStation starts the liar. Register its Addr() with a
// coordinator under `name` to let it poison the pool.
func NewByzantineStation(name string) (*ByzantineStation, error) {
	b := &ByzantineStation{name: name}
	srv, err := wire.NewServer("127.0.0.1:0", func(pe *wire.Peer) wire.Handler {
		return b.handle
	})
	if err != nil {
		return nil, err
	}
	b.srv = srv
	return b, nil
}

// Addr returns the liar's listen address.
func (b *ByzantineStation) Addr() string { return b.srv.Addr() }

// Polls returns how many polls the liar has answered.
func (b *ByzantineStation) Polls() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.polls
}

// Close stops the server.
func (b *ByzantineStation) Close() { b.srv.Close() }

func (b *ByzantineStation) handle(_ context.Context, msg any) (any, error) {
	switch msg.(type) {
	case proto.PollRequest:
		b.mu.Lock()
		n := b.polls
		b.polls++
		b.mu.Unlock()
		reply := proto.PollReply{Name: b.name, State: proto.StationIdle}
		switch n % 4 {
		case 0: // claims to be someone else
			reply.Name = "not-" + b.name
		case 1: // negative capacity
			reply.DiskFreeBytes = -1 << 40
		case 2: // impossible scheduling state
			reply.State = proto.StationState(42)
		case 3: // a job the coordinator never placed
			reply.State = proto.StationClaimed
			reply.ForeignJob = "phantom/99"
			reply.ForeignOwnerStation = "no-such-station"
		}
		return reply, nil
	case proto.GrantRequest:
		// Accept the grant but name no job — the grant-path byzantine
		// signature (should never be reachable: a quarantined liar gets
		// no grants).
		return proto.GrantReply{Used: true}, nil
	default:
		return proto.PollReply{Name: b.name, State: proto.StationIdle}, nil
	}
}
