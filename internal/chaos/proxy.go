// Package chaos is the cluster-level fault-injection harness: a
// byte-level TCP proxy that applies wire.FaultPlan scripts per
// direction (slow links, one-way partitions, corruption, flapping), a
// byzantine station that answers polls with well-formed lies, and a
// scenario runner that drives a live coordinator+schedd cluster through
// randomized multi-station fault schedules and checks the system's
// invariants after heal: no job lost, no double execution, every
// healable station readmitted, accounting conserved.
//
// The harness exists to prove the paper's availability story (§2.1,
// §5.4) under grey failures, not just clean crashes: the coordinator's
// graded health machinery (internal/coordinator/health.go) is exercised
// end-to-end here.
package chaos

import (
	"io"
	"net"
	"sync"
	"time"

	"condor/internal/wire"
)

// Proxy is a byte-level TCP forwarder between callers and one target,
// applying independent fault plans to each direction. Wiring a station
// behind a proxy (register the proxy's address, target the station's
// listener) subjects all coordinator→station and station→station
// traffic to the proxy's faults while the station's own outbound
// connections stay direct — which is exactly the asymmetry one-way
// partition tests need.
type Proxy struct {
	ln net.Listener

	mu       sync.Mutex
	target   string
	forward  wire.FaultPlan // applied to bytes flowing toward the target
	backward wire.FaultPlan // applied to bytes flowing back to the caller
	links    map[*link]struct{}
	accepted int
	closed   bool
}

// link is one proxied connection pair. The FaultConn wraps the write
// side of each direction, so each direction's plan applies independently.
type link struct {
	toTarget *wire.FaultConn
	toCaller *wire.FaultConn
}

// NewProxy starts a proxy on a fresh localhost port. The target may be
// empty at first (the common chicken-and-egg: a station's AdvertiseAddr
// must exist before the station, and the station's listener only after)
// and set later with SetTarget; connections accepted before a target is
// set are dropped.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, links: make(map[*link]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what peers should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget points the proxy at (a possibly new) backend address.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// SetPlans installs the per-direction fault plans on every live link
// and as the default for future connections. Stalled operations on live
// links re-evaluate immediately (see wire.FaultConn.SetPlan), so
// clearing plans heals mid-stall.
func (p *Proxy) SetPlans(forward, backward wire.FaultPlan) {
	p.mu.Lock()
	p.forward, p.backward = forward, backward
	for l := range p.links {
		l.toTarget.SetPlan(forward)
		l.toCaller.SetPlan(backward)
	}
	p.mu.Unlock()
}

// Plans returns the current default plans.
func (p *Proxy) Plans() (forward, backward wire.FaultPlan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forward, p.backward
}

// Sever closes every live proxied connection (future dials still
// succeed) — a crisp connection-loss event rather than a plan.
func (p *Proxy) Sever() {
	p.mu.Lock()
	for l := range p.links {
		l.toTarget.Close()
		l.toCaller.Close()
	}
	p.mu.Unlock()
}

// Accepted returns how many connections the proxy has accepted.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Close shuts the proxy down, severing all live links.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.Sever()
}

func (p *Proxy) acceptLoop() {
	for {
		caller, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			caller.Close()
			return
		}
		p.accepted++
		target := p.target
		fwd, bwd := p.forward, p.backward
		p.mu.Unlock()
		if target == "" {
			caller.Close()
			continue
		}
		go p.serve(caller, target, fwd, bwd)
	}
}

func (p *Proxy) serve(caller net.Conn, target string, fwd, bwd wire.FaultPlan) {
	backend, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		caller.Close()
		return
	}
	l := &link{
		toTarget: wire.NewFaultConn(backend),
		toCaller: wire.NewFaultConn(caller),
	}
	l.toTarget.SetPlan(fwd)
	l.toCaller.SetPlan(bwd)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		l.toTarget.Close()
		l.toCaller.Close()
		return
	}
	p.links[l] = struct{}{}
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	pump := func(dst *wire.FaultConn, src net.Conn) {
		defer wg.Done()
		io.Copy(dst, src) //nolint:errcheck // a severed pump is the point
		// Half-close semantics are overkill here: one dead direction
		// means the framed RPC on top is broken anyway.
		l.toTarget.Close()
		l.toCaller.Close()
	}
	go pump(l.toTarget, caller)  // caller → target, forward plan
	go pump(l.toCaller, backend) // target → caller, backward plan
	wg.Wait()
	p.mu.Lock()
	delete(p.links, l)
	p.mu.Unlock()
}
