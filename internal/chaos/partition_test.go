package chaos

import (
	"testing"
	"time"

	"condor/internal/coordinator"
	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/wire"
)

// partitionCluster wires one station behind a proxy into a manually
// cycled coordinator. The station registers its proxy address
// (AdvertiseAddr), so coordinator→station traffic rides the proxy while
// station→coordinator traffic goes direct — the asymmetry one-way
// partitions need.
func partitionCluster(t *testing.T, cfg coordinator.Config) (*coordinator.Coordinator, *schedd.Station, *Proxy) {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Hour
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 250 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 150 * time.Millisecond
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 100_000
	}
	coord, err := coordinator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	proxy, err := NewProxy("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	st, err := schedd.New(schedd.Config{
		Name:          "ws1",
		AdvertiseAddr: proxy.Addr(),
		Monitor:       machine.NewScriptedMonitor(false),
		Starter: ru.StarterConfig{
			ScanInterval:  3 * time.Millisecond,
			SuspendGrace:  20 * time.Millisecond,
			StepsPerSlice: 5_000,
		},
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	proxy.SetTarget(st.Addr())
	if err := st.Register(coord.Addr()); err != nil {
		t.Fatal(err)
	}
	return coord, st, proxy
}

func stationHealth(coord *coordinator.Coordinator, name string) proto.StationHealth {
	for _, si := range coord.Stations() {
		if si.Name == name {
			return si.Health
		}
	}
	return 0
}

// TestOneWayPartitionInboundBlackholed: coordinator→station traffic is
// blackholed while station→coordinator flows. The coordinator's polls
// fail (its requests never arrive), the station degrades to suspect and
// on to quarantine, and after the heal — mid-cycle, with a poll likely
// stalled in flight — the station is readmitted and its schedule index
// survives the episode (quarantine holds identity, it does not remove).
func TestOneWayPartitionInboundBlackholed(t *testing.T) {
	coord, _, proxy := partitionCluster(t, coordinator.Config{
		Health: coordinator.HealthConfig{ProbeBase: 10 * time.Millisecond, ProbeMax: 50 * time.Millisecond},
	})
	coord.Cycle() // one clean poll
	if got := stationHealth(coord, "ws1"); got != proto.HealthHealthy {
		t.Fatalf("precondition: health = %v", got)
	}
	indexBefore := coord.Index("ws1")

	proxy.SetPlans(wire.FaultPlan{StallWrites: true}, wire.FaultPlan{})
	for i := 0; i < 3; i++ {
		coord.Cycle()
	}
	if got := stationHealth(coord, "ws1"); got != proto.HealthQuarantined {
		t.Fatalf("after inbound blackhole: health = %v, want quarantined", got)
	}

	// Heal mid-cycle: clear the plan while a probe may be mid-stall (the
	// FaultConn wakes it). Drive until readmitted.
	proxy.SetPlans(wire.FaultPlan{}, wire.FaultPlan{})
	deadline := time.Now().Add(10 * time.Second)
	for stationHealth(coord, "ws1") != proto.HealthHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("never readmitted; health = %v", stationHealth(coord, "ws1"))
		}
		coord.Cycle()
		time.Sleep(5 * time.Millisecond)
	}
	if got := coord.Index("ws1"); got != indexBefore {
		t.Fatalf("schedule index %v → %v across partition, want preserved", indexBefore, got)
	}
	if coord.Stats().Readmissions == 0 {
		t.Fatal("no readmission counted")
	}
}

// TestOneWayPartitionOutboundBlackholed: station→coordinator replies are
// blackholed while coordinator→station requests flow. The station hears
// every poll (so its registrar stays quiet) but the coordinator sees
// timeouts; same quarantine-and-readmit arc, and no duplicate grant may
// be issued around the heal.
func TestOneWayPartitionOutboundBlackholed(t *testing.T) {
	coord, st, proxy := partitionCluster(t, coordinator.Config{
		Health: coordinator.HealthConfig{ProbeBase: 10 * time.Millisecond, ProbeMax: 50 * time.Millisecond},
	})
	coord.Cycle()
	lastHeard := st.LastPolled()

	proxy.SetPlans(wire.FaultPlan{}, wire.FaultPlan{StallWrites: true})
	for i := 0; i < 3; i++ {
		coord.Cycle()
	}
	if got := stationHealth(coord, "ws1"); got != proto.HealthQuarantined {
		t.Fatalf("after outbound blackhole: health = %v, want quarantined", got)
	}
	// The asymmetry: the station kept *hearing* polls (requests flowed),
	// even though the coordinator never saw an answer.
	if !st.LastPolled().After(lastHeard) {
		t.Fatal("station never heard a poll during the outbound-only partition")
	}

	proxy.SetPlans(wire.FaultPlan{}, wire.FaultPlan{})
	deadline := time.Now().Add(10 * time.Second)
	for stationHealth(coord, "ws1") != proto.HealthHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("never readmitted; health = %v", stationHealth(coord, "ws1"))
		}
		coord.Cycle()
		time.Sleep(5 * time.Millisecond)
	}
	// No duplicate grant: the station had no jobs, so nothing may have
	// been granted at all around the partition and heal.
	if stats := coord.Stats(); stats.Grants != 0 {
		t.Fatalf("grants = %d during a jobless partition episode", stats.Grants)
	}
}

// TestPartitionedStationKeepsRunningJob: a grant lands, the exec's link
// partitions, and the foreign job keeps running through quarantine —
// suspect/quarantined stations keep their work (the paper's "no single
// failure loses work"), and no second execution starts meanwhile.
func TestPartitionedStationKeepsRunningJob(t *testing.T) {
	// Two stations: home submits, exec runs. Both behind proxies.
	dir := t.TempDir()
	coord, home, homeProxy := partitionCluster(t, coordinator.Config{StateDir: dir,
		Health: coordinator.HealthConfig{ProbeBase: 10 * time.Millisecond, ProbeMax: 50 * time.Millisecond}})
	_ = homeProxy
	execProxy, err := NewProxy("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(execProxy.Close)
	exec, err := schedd.New(schedd.Config{
		Name:          "ws2",
		AdvertiseAddr: execProxy.Addr(),
		Monitor:       machine.NewScriptedMonitor(false),
		Starter: ru.StarterConfig{
			ScanInterval:  3 * time.Millisecond,
			SuspendGrace:  20 * time.Millisecond,
			StepsPerSlice: 500,
			SliceDelay:    2 * time.Millisecond, // slow burn: outlives the partition
		},
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	execProxy.SetTarget(exec.Addr())
	if err := exec.Register(coord.Addr()); err != nil {
		t.Fatal(err)
	}

	// Home wants its job run remotely; make home owner-active so the
	// only idle machine is ws2.
	jobID, err := home.Submit("alice", cvm.SumProgram(400_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for coord.Stats().GrantsUsed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grant never landed")
		}
		coord.Cycle()
		time.Sleep(5 * time.Millisecond)
	}

	// Partition the exec station's inbound path; cycles push it through
	// suspect into quarantine while the shadow connection (home→exec,
	// direct-dialed at placement time through the proxy's established
	// link) keeps the job alive.
	execProxy.SetPlans(wire.FaultPlan{StallWrites: true}, wire.FaultPlan{})
	for i := 0; i < 3; i++ {
		coord.Cycle()
	}
	if got := stationHealth(coord, "ws2"); got != proto.HealthQuarantined {
		t.Fatalf("exec health = %v, want quarantined", got)
	}

	// Heal; the job must complete exactly once.
	execProxy.SetPlans(wire.FaultPlan{}, wire.FaultPlan{})
	status, err := home.Wait(jobID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != proto.JobCompleted {
		t.Fatalf("job state = %v, want completed", status.State)
	}
	completes := 0
	for _, e := range home.Events().ForJob(jobID) {
		if e.Kind == eventlog.KindComplete {
			completes++
		}
	}
	if completes != 1 {
		t.Fatalf("job completed %d times, want exactly 1", completes)
	}
}
