package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"condor/internal/coordinator"
	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/wire"
)

// Scenario configures one randomized chaos run: a live coordinator and
// Stations schedd stations, every station's inbound traffic routed
// through a fault-injecting proxy, driven for Cycles allocation cycles
// under a seeded random fault schedule (slow links, one-way and full
// partitions, flapping, frame corruption), optionally with a byzantine
// station in the pool and a coordinator kill+restart mid-run. After the
// schedule the cluster heals and the run asserts the system's
// invariants (see Report).
type Scenario struct {
	// Stations is the number of real schedd stations (default 5).
	Stations int
	// Cycles is how many faulted allocation cycles to drive (default 50).
	Cycles int
	// Jobs is how many background jobs to submit round-robin (default 6).
	Jobs int
	// Seed makes the fault schedule reproducible (default 1).
	Seed int64
	// StateDir is the coordinator's journal directory (required: the
	// mid-run restart rides the journal).
	StateDir string
	// RestartAt kills and restarts the coordinator after this cycle
	// (default Cycles/2; negative disables the restart).
	RestartAt int
	// Byzantine adds a lying station to the pool.
	Byzantine bool
	// Logf, when set, receives progress lines (plumb t.Logf in tests).
	Logf func(format string, args ...any)
}

// Report is the outcome of a chaos run. A run is a pass iff Violations
// is empty; everything else is color.
type Report struct {
	Cycles           int
	Quarantines      uint64
	Readmissions     uint64
	ByzantineReplies uint64
	DegradedCycles   uint64
	// Violations lists every broken invariant: a lost job, a double
	// execution, a station never readmitted, unconserved accounting, or
	// health state lost across the restart.
	Violations []string
}

func (sc *Scenario) sanitize() {
	if sc.Stations <= 0 {
		sc.Stations = 5
	}
	if sc.Cycles <= 0 {
		sc.Cycles = 50
	}
	if sc.Jobs <= 0 {
		sc.Jobs = 6
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.RestartAt == 0 {
		sc.RestartAt = sc.Cycles / 2
	}
}

// episode is one proxy's active fault, in cycles remaining.
type episode struct {
	name      string
	remaining int
}

// faultFor draws a random fault episode: per-direction plans plus a
// duration. The catalogue covers every grey-failure class the health
// machine grades: slow, one-way partition (either direction), full
// partition, flapping, and corruption.
func faultFor(rng *rand.Rand, seed uint64) (string, wire.FaultPlan, wire.FaultPlan, int) {
	duration := 2 + rng.Intn(4) // 2–5 cycles
	switch rng.Intn(6) {
	case 0: // slow link, both directions
		p := wire.FaultPlan{
			LatencyMin: 5 * time.Millisecond,
			LatencyMax: 15 * time.Millisecond,
			Seed:       seed,
		}
		return "slow", p, p, duration
	case 1: // one-way: coordinator→station blackholed, replies flow
		return "oneway-in", wire.FaultPlan{StallWrites: true}, wire.FaultPlan{}, duration
	case 2: // one-way: station→coordinator blackholed, requests flow
		return "oneway-out", wire.FaultPlan{}, wire.FaultPlan{StallWrites: true}, duration
	case 3: // full partition
		p := wire.FaultPlan{StallWrites: true}
		return "partition", p, p, duration
	case 4: // flapping link
		p := wire.FaultPlan{
			FlapUp:   30 * time.Millisecond,
			FlapDown: 30 * time.Millisecond,
			Seed:     seed,
		}
		return "flap", p, p, duration
	case 5: // probabilistic frame corruption toward the station
		return "corrupt", wire.FaultPlan{CorruptProb: 0.5, Seed: seed}, wire.FaultPlan{}, duration
	}
	panic("unreachable")
}

// Run executes the scenario. Setup or infrastructure errors (not
// invariant violations) come back as err.
func Run(sc Scenario) (Report, error) {
	sc.sanitize()
	var rep Report
	logf := sc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if sc.StateDir == "" {
		return rep, fmt.Errorf("chaos: scenario needs a StateDir for the restart")
	}
	rng := rand.New(rand.NewSource(sc.Seed))

	coordCfg := coordinator.Config{
		PollInterval:    time.Hour, // cycles driven manually
		DialTimeout:     150 * time.Millisecond,
		RPCTimeout:      250 * time.Millisecond,
		DeadAfter:       100_000, // quarantine, never unregister, during chaos
		StateDir:        sc.StateDir,
		SnapshotEvery:   8,
		PollConcurrency: 16,
		Health: coordinator.HealthConfig{
			ProbeBase: 20 * time.Millisecond,
			ProbeMax:  200 * time.Millisecond,
		},
	}
	coord, err := coordinator.New(coordCfg)
	if err != nil {
		return rep, err
	}
	defer func() { coord.Close() }()

	// Stations, each behind its own proxy: the proxy address is what the
	// pool knows, so every poll, grant, and station→station placement
	// rides the faulted path; only the station's outbound dials (its
	// one-time registration, its shadow connections) go direct.
	nodes := make([]*node, 0, sc.Stations)
	defer func() {
		for _, n := range nodes {
			n.station.Close()
			n.proxy.Close()
		}
	}()
	for i := 0; i < sc.Stations; i++ {
		name := fmt.Sprintf("ws%d", i+1)
		proxy, err := NewProxy("")
		if err != nil {
			return rep, err
		}
		st, err := schedd.New(schedd.Config{
			Name:          name,
			AdvertiseAddr: proxy.Addr(),
			Monitor:       machine.NewScriptedMonitor(false),
			Starter: ru.StarterConfig{
				ScanInterval:  3 * time.Millisecond,
				SuspendGrace:  20 * time.Millisecond,
				StepsPerSlice: 5_000,
			},
			DialTimeout:        time.Second,
			PlacementHeartbeat: 50 * time.Millisecond,
		})
		if err != nil {
			proxy.Close()
			return rep, err
		}
		proxy.SetTarget(st.Addr())
		if err := st.Register(coord.Addr()); err != nil {
			st.Close()
			proxy.Close()
			return rep, err
		}
		nodes = append(nodes, &node{name: name, station: st, proxy: proxy})
	}

	var byz *ByzantineStation
	if sc.Byzantine {
		byz, err = NewByzantineStation("liar")
		if err != nil {
			return rep, err
		}
		defer byz.Close()
		coord.Register("liar", byz.Addr())
	}

	// Background jobs, round-robin across home stations.
	jobs := make([]jobRef, 0, sc.Jobs)
	for i := 0; i < sc.Jobs; i++ {
		n := nodes[i%len(nodes)]
		id, err := n.station.Submit(fmt.Sprintf("user%d", i%3), cvm.SumProgram(5_000), 0)
		if err != nil {
			return rep, err
		}
		jobs = append(jobs, jobRef{home: n.station, homeN: n.name, id: id})
	}

	// The randomized fault schedule: each cycle, idle proxies may start
	// an episode; expired episodes heal.
	episodes := make(map[*node]*episode)
	for cycle := 0; cycle < sc.Cycles; cycle++ {
		for _, n := range nodes {
			ep := episodes[n]
			if ep != nil {
				ep.remaining--
				if ep.remaining <= 0 {
					n.proxy.SetPlans(wire.FaultPlan{}, wire.FaultPlan{})
					delete(episodes, n)
				}
				continue
			}
			if rng.Intn(4) == 0 { // 25% chance to start a new episode
				name, fwd, bwd, dur := faultFor(rng, uint64(rng.Int63())|1)
				n.proxy.SetPlans(fwd, bwd)
				episodes[n] = &episode{name: name, remaining: dur}
				logf("cycle %d: %s: %s for %d cycles", cycle, n.name, name, dur)
			}
		}

		coord.Cycle()
		rep.Cycles++
		time.Sleep(2 * time.Millisecond) // let placements progress

		if sc.RestartAt > 0 && cycle == sc.RestartAt {
			// Kill the coordinator mid-quarantine and restart it from the
			// journal: graded health must come back with it.
			healthBefore := healthMap(coord)
			statsBefore := coord.Stats()
			rep.Quarantines += statsBefore.Quarantines
			rep.Readmissions += statsBefore.Readmissions
			rep.ByzantineReplies += statsBefore.ByzantineReplies
			rep.DegradedCycles += statsBefore.DegradedCycles
			coord.Close()
			logf("cycle %d: coordinator killed (health: %v)", cycle, healthBefore)
			coord, err = coordinator.New(coordCfg)
			if err != nil {
				return rep, fmt.Errorf("chaos: coordinator restart: %w", err)
			}
			healthAfter := healthMap(coord)
			for name, want := range healthBefore {
				if got := healthAfter[name]; got != want {
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"restart lost health state of %s: %v → %v", name, want, got))
				}
			}
		}
	}

	// Heal everything and give the pool time to converge: probes readmit
	// quarantined stations, queued jobs finish.
	for _, n := range nodes {
		n.proxy.SetPlans(wire.FaultPlan{}, wire.FaultPlan{})
	}
	episodesDone := time.Now()
	logf("healed after %d cycles; converging", rep.Cycles)
	deadline := time.Now().Add(60 * time.Second)
	for {
		coord.Cycle()
		rep.Cycles++
		if allJobsDone(jobs) && allRealHealthy(coord, nodes) {
			break
		}
		if time.Now().After(deadline) {
			break // violations below will say what never converged
		}
		time.Sleep(5 * time.Millisecond)
	}
	logf("converged (or gave up) %s after heal", time.Since(episodesDone).Round(time.Millisecond))

	// Invariants.
	stats := coord.Stats()
	rep.Quarantines += stats.Quarantines
	rep.Readmissions += stats.Readmissions
	rep.ByzantineReplies += stats.ByzantineReplies
	rep.DegradedCycles += stats.DegradedCycles

	// 1. No job lost: every submitted job completed with the right output.
	for _, j := range jobs {
		status, err := j.home.Wait(j.id, time.Second)
		if err != nil || status.State != proto.JobCompleted {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"job %s lost: state %v err %v", j.id, status.State, err))
			continue
		}
		if got := strings.TrimSpace(status.Stdout); got != "12502500" {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"job %s corrupted: stdout %q", j.id, got))
		}
	}
	// 2. No double execution: exactly one completion event per job.
	for _, j := range jobs {
		completes := 0
		for _, e := range j.home.Events().ForJob(j.id) {
			if e.Kind == eventlog.KindComplete {
				completes++
			}
		}
		if completes != 1 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"job %s completed %d times", j.id, completes))
		}
	}
	// 3. Every healable station readmitted; the liar still quarantined.
	finalHealth := healthMap(coord)
	for _, n := range nodes {
		if got := finalHealth[n.name]; got != proto.HealthHealthy {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"station %s never readmitted: %v", n.name, got))
		}
	}
	if sc.Byzantine {
		if got := finalHealth["liar"]; got == proto.HealthHealthy {
			rep.Violations = append(rep.Violations, "byzantine station scored healthy")
		}
		if rep.ByzantineReplies == 0 {
			rep.Violations = append(rep.Violations, "no byzantine replies detected")
		}
	}
	// 4. Accounting conserved: every grant is used or denied, none
	// minted or lost (the ledger totals survive the restart via the
	// journal, so this spans both incarnations).
	for name, a := range coord.Accounting().AllocSnapshot() {
		if a.Grants != a.GrantsUsed+a.GrantsDenied {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"accounting for %s not conserved: %d grants != %d used + %d denied",
				name, a.Grants, a.GrantsUsed, a.GrantsDenied))
		}
	}
	return rep, nil
}

// node is one real station and the proxy fronting it.
type node struct {
	name    string
	station *schedd.Station
	proxy   *Proxy
}

// jobRef tracks one submitted job and its home station.
type jobRef struct {
	home  *schedd.Station
	homeN string
	id    string
}

// healthMap snapshots station → health state.
func healthMap(coord *coordinator.Coordinator) map[string]proto.StationHealth {
	out := make(map[string]proto.StationHealth)
	for _, si := range coord.Stations() {
		out[si.Name] = si.Health
	}
	return out
}

// allJobsDone reports whether every submitted job has completed.
func allJobsDone(jobs []jobRef) bool {
	for _, j := range jobs {
		done := false
		for _, st := range j.home.Queue() {
			if st.ID == j.id && st.State == proto.JobCompleted {
				done = true
			}
		}
		if !done {
			return false
		}
	}
	return true
}

// allRealHealthy reports whether every real (non-byzantine) station is
// back to healthy.
func allRealHealthy(coord *coordinator.Coordinator, nodes []*node) bool {
	hm := healthMap(coord)
	for _, n := range nodes {
		if hm[n.name] != proto.HealthHealthy {
			return false
		}
	}
	return true
}
