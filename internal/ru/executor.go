package ru

import (
	"context"
	"errors"
	"fmt"
	"time"

	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/proto"
	"condor/internal/wire"
)

type ctlKind int

const (
	ctlSuspend ctlKind = iota + 1
	ctlResume
	ctlVacate
	ctlKill
)

type ctl struct {
	kind   ctlKind
	reason string
	// at is when the scan loop posted the command; the executor observes
	// the post-to-reaction delay as preemption latency.
	at time.Time
}

// execution is one foreign job resident on a starter.
type execution struct {
	starter *Starter
	jobID   string
	owner   string
	home    string
	peer    *wire.Peer
	vm      *cvm.VM
	meta    ckpt.Meta
	// lastCkpt is the most recent checkpoint blob (the placement image
	// initially, updated by periodic checkpoints). Under the
	// kill-immediately policy this is what gets shipped back.
	lastCkpt      []byte
	lastCkptSteps uint64
	ctl           chan ctl
}

// post delivers a control message without ever blocking the scan loop; a
// full channel means the executor is already draining a burst of
// commands and the scan will re-evaluate next tick.
func (e *execution) post(c ctl) {
	c.at = time.Now()
	select {
	case e.ctl <- c:
	default:
	}
}

// abort hard-stops the execution (starter shutdown). The shadow observes
// the connection loss and reschedules.
func (e *execution) abort() {
	e.peer.Close()
}

// run is the executor loop: interleave VM slices with control handling.
func (e *execution) run() {
	defer e.starter.clear(e)
	cfg := e.starter.cfg
	suspended := false
	lastPeriodic := time.Now()
	for {
		// Drain control. While suspended, block until something changes;
		// while running, just poll.
		for {
			var c ctl
			if suspended {
				select {
				case c = <-e.ctl:
				case <-e.abortedOrPeerDone():
					return
				}
			} else {
				select {
				case c = <-e.ctl:
				case <-e.peer.Done():
					// Shadow hung up: stop burning cycles on an orphan.
					return
				default:
				}
			}
			if c.kind == 0 {
				break
			}
			if !c.at.IsZero() {
				mPreemptLatency.ObserveDuration(time.Since(c.at))
			}
			switch c.kind {
			case ctlSuspend:
				if !suspended {
					suspended = true
					_ = e.peer.Notify(proto.JobSuspendedMsg{JobID: e.jobID})
				}
			case ctlResume:
				if suspended {
					suspended = false
					_ = e.peer.Notify(proto.JobResumedMsg{JobID: e.jobID})
				}
			case ctlVacate:
				e.vacate(c.reason)
				return
			case ctlKill:
				e.killWithLastCheckpoint(c.reason)
				return
			}
			if suspended {
				continue // keep blocking on ctl
			}
			break
		}
		if suspended {
			continue
		}

		status, err := e.vm.Run(cfg.StepsPerSlice)
		if err != nil {
			var fault *cvm.FaultError
			if errors.As(err, &fault) {
				e.starter.bump(func(s *StarterStats) { s.Faulted++ })
				e.starter.clear(e)
				e.finish(proto.JobDoneMsg{
					JobID:    e.jobID,
					Faulted:  true,
					FaultMsg: fault.Error(),
					Steps:    e.vm.Steps(),
					Syscalls: e.vm.Syscalls(),
				})
				return
			}
			// Host error: the shadow connection broke. Nothing to report
			// to anyone; the shadow's JobLost path owns recovery.
			e.peer.Close()
			return
		}
		if status == cvm.StatusHalted {
			e.starter.bump(func(s *StarterStats) { s.Completed++ })
			e.starter.clear(e)
			e.finish(proto.JobDoneMsg{
				JobID:    e.jobID,
				ExitCode: e.vm.ExitCode(),
				Steps:    e.vm.Steps(),
				Syscalls: e.vm.Syscalls(),
			})
			return
		}

		if cfg.PeriodicCheckpoint > 0 && time.Since(lastPeriodic) >= cfg.PeriodicCheckpoint {
			lastPeriodic = time.Now()
			if blob, err := e.snapshotBlob(); err == nil {
				e.lastCkpt = blob
				e.lastCkptSteps = e.vm.Steps()
				_ = e.peer.Notify(proto.JobCheckpointMsg{
					JobID:      e.jobID,
					Checkpoint: blob,
					Steps:      e.vm.Steps(),
				})
				e.starter.bump(func(s *StarterStats) { s.PeriodicCkpts++ })
			}
		}
		if cfg.SliceDelay > 0 {
			time.Sleep(cfg.SliceDelay)
		}
	}
}

// abortedOrPeerDone lets a suspended executor notice a dead connection.
func (e *execution) abortedOrPeerDone() <-chan struct{} {
	return e.peer.Done()
}

func (e *execution) snapshotBlob() ([]byte, error) {
	img := e.vm.Snapshot()
	meta := e.meta
	meta.Sequence++
	meta.CPUSteps = e.vm.Steps()
	e.meta = meta
	return ckpt.EncodeBytesWith(meta, img, ckpt.Options{Compress: true})
}

// vacate checkpoints the job and ships it to the shadow.
func (e *execution) vacate(reason string) {
	blob, err := e.snapshotBlob()
	if err != nil {
		// Encoding can only fail on an invalid image; fall back to the
		// last good checkpoint rather than losing the job.
		blob = e.lastCkpt
	}
	e.starter.bump(func(s *StarterStats) { s.Vacated++ })
	e.starter.clear(e)
	e.ship(proto.JobVacatedMsg{
		JobID:      e.jobID,
		Checkpoint: blob,
		Reason:     reason,
		Steps:      e.vm.Steps(),
	})
}

// killWithLastCheckpoint implements the §4 kill-immediately policy: no
// fresh checkpoint is taken; work since the last one is lost.
func (e *execution) killWithLastCheckpoint(reason string) {
	e.starter.bump(func(s *StarterStats) { s.Vacated++ })
	e.starter.clear(e)
	e.ship(proto.JobVacatedMsg{
		JobID:      e.jobID,
		Checkpoint: e.lastCkpt,
		Reason:     fmt.Sprintf("%s (killed; resuming from last checkpoint)", reason),
		Steps:      e.lastCkptSteps,
	})
}

func (e *execution) ship(msg proto.JobVacatedMsg) {
	ctx, cancel := context.WithTimeout(context.Background(), e.starter.cfg.SyscallTimeout)
	defer cancel()
	_, _ = e.peer.Call(ctx, msg)
	e.peer.Close()
}

func (e *execution) finish(msg proto.JobDoneMsg) {
	ctx, cancel := context.WithTimeout(context.Background(), e.starter.cfg.SyscallTimeout)
	defer cancel()
	_, _ = e.peer.Call(ctx, msg)
	e.peer.Close()
}

// remoteHandler forwards guest system calls to the shadow.
type remoteHandler struct {
	peer    *wire.Peer
	jobID   string
	timeout time.Duration
}

var _ cvm.SyscallHandler = (*remoteHandler)(nil)

// Syscall implements cvm.SyscallHandler by shipping the request over the
// placement connection and waiting for the shadow's reply.
func (h *remoteHandler) Syscall(req cvm.SyscallRequest) (cvm.SyscallReply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	start := time.Now()
	reply, err := h.peer.Call(ctx, proto.SyscallMsg{JobID: h.jobID, Req: req})
	if err != nil {
		mSyscallErrors.Inc()
		return cvm.SyscallReply{}, fmt.Errorf("ru: syscall forward: %w", err)
	}
	mSyscallRTT.ObserveDuration(time.Since(start))
	rep, ok := reply.(proto.SyscallReplyMsg)
	if !ok {
		return cvm.SyscallReply{}, fmt.Errorf("ru: unexpected syscall reply %T", reply)
	}
	return rep.Rep, nil
}
