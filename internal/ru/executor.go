package ru

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"condor/internal/accounting"
	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/proto"
	"condor/internal/trace"
	"condor/internal/wire"
)

type ctlKind int

const (
	ctlSuspend ctlKind = iota + 1
	ctlResume
	ctlVacate
	ctlKill
)

type ctl struct {
	kind   ctlKind
	reason string
	// at is when the scan loop posted the command; the executor observes
	// the post-to-reaction delay as preemption latency.
	at time.Time
}

// execution is one foreign job resident on a starter.
type execution struct {
	starter *Starter
	jobID   string
	owner   string
	home    string
	peer    *wire.Peer
	vm      *cvm.VM
	meta    ckpt.Meta
	// lastCkpt is the most recent checkpoint blob (the placement image
	// initially, updated by periodic checkpoints). Under the
	// kill-immediately policy this is what gets shipped back.
	lastCkpt      []byte
	lastCkptSteps uint64
	// meter charges remote CPU, checkpoint overhead, and badput to the
	// job. The executor is the sole writer of those fields; step totals
	// are reconciled CAS-max so the home side may observe them too.
	meter *accounting.Meter
	ctl   chan ctl
	// span covers the whole residency of the job on this machine; it is
	// finished on every exit path of run (complete, fault, vacate, kill,
	// connection loss). traceCtx is its propagable identity, the parent
	// of every syscall/checkpoint/vacate span this execution records.
	span     trace.ActiveSpan
	traceCtx trace.SpanContext
}

// post delivers a control message without ever blocking the scan loop; a
// full channel means the executor is already draining a burst of
// commands and the scan will re-evaluate next tick.
func (e *execution) post(c ctl) {
	c.at = time.Now()
	select {
	case e.ctl <- c:
	default:
	}
}

// abort hard-stops the execution (starter shutdown). The shadow observes
// the connection loss and reschedules.
func (e *execution) abort() {
	e.peer.Close()
}

// run is the executor loop: interleave VM slices with control handling.
func (e *execution) run() {
	defer e.starter.clear(e)
	defer e.span.Finish()
	cfg := e.starter.cfg
	suspended := false
	lastPeriodic := time.Now()
	for {
		// Drain control. While suspended, block until something changes;
		// while running, just poll.
		for {
			var c ctl
			if suspended {
				select {
				case c = <-e.ctl:
				case <-e.abortedOrPeerDone():
					return
				}
			} else {
				select {
				case c = <-e.ctl:
				case <-e.peer.Done():
					// Shadow hung up: stop burning cycles on an orphan.
					return
				default:
				}
			}
			if c.kind == 0 {
				break
			}
			if !c.at.IsZero() {
				mPreemptLatency.ObserveDuration(time.Since(c.at))
			}
			switch c.kind {
			case ctlSuspend:
				if !suspended {
					suspended = true
					_ = e.peer.Notify(proto.JobSuspendedMsg{JobID: e.jobID})
				}
			case ctlResume:
				if suspended {
					suspended = false
					_ = e.peer.Notify(proto.JobResumedMsg{JobID: e.jobID})
				}
			case ctlVacate:
				e.vacate(c.reason)
				return
			case ctlKill:
				e.killWithLastCheckpoint(c.reason)
				return
			}
			if suspended {
				continue // keep blocking on ctl
			}
			break
		}
		if suspended {
			continue
		}

		sliceStart := time.Now()
		status, err := e.vm.Run(cfg.StepsPerSlice)
		e.meter.ExecTime(time.Since(sliceStart))
		e.meter.ObserveSteps(e.vm.Steps())
		if err != nil {
			var fault *cvm.FaultError
			if errors.As(err, &fault) {
				e.starter.bump(func(s *StarterStats) { s.Faulted++ })
				e.starter.clear(e)
				e.finish(proto.JobDoneMsg{
					JobID:    e.jobID,
					Faulted:  true,
					FaultMsg: fault.Error(),
					Steps:    e.vm.Steps(),
					Syscalls: e.vm.Syscalls(),
				})
				return
			}
			// Host error: the shadow connection broke. Nothing to report
			// to anyone; the shadow's JobLost path owns recovery.
			e.peer.Close()
			return
		}
		if status == cvm.StatusHalted {
			e.starter.bump(func(s *StarterStats) { s.Completed++ })
			e.starter.clear(e)
			e.finish(proto.JobDoneMsg{
				JobID:    e.jobID,
				ExitCode: e.vm.ExitCode(),
				Steps:    e.vm.Steps(),
				Syscalls: e.vm.Syscalls(),
			})
			return
		}

		if cfg.PeriodicCheckpoint > 0 && time.Since(lastPeriodic) >= cfg.PeriodicCheckpoint {
			lastPeriodic = time.Now()
			cp := trace.StartChildIfSampled(e.traceCtx, "checkpoint")
			cp.SetJob(e.jobID)
			cp.SetAttr("periodic", "true")
			ckptStart := time.Now()
			if blob, err := e.snapshotBlob(); err == nil {
				e.lastCkpt = blob
				e.lastCkptSteps = e.vm.Steps()
				_ = e.peer.NotifyCtx(trace.ContextWith(context.Background(), cp.Context()),
					proto.JobCheckpointMsg{
						JobID:      e.jobID,
						Checkpoint: blob,
						Steps:      e.vm.Steps(),
					})
				e.meter.Checkpoint(len(blob), time.Since(ckptStart))
				e.starter.bump(func(s *StarterStats) { s.PeriodicCkpts++ })
			} else {
				cp.SetError(err)
			}
			cp.Finish()
		}
		if cfg.SliceDelay > 0 {
			time.Sleep(cfg.SliceDelay)
		}
	}
}

// abortedOrPeerDone lets a suspended executor notice a dead connection.
func (e *execution) abortedOrPeerDone() <-chan struct{} {
	return e.peer.Done()
}

func (e *execution) snapshotBlob() ([]byte, error) {
	img := e.vm.Snapshot()
	meta := e.meta
	meta.Sequence++
	meta.CPUSteps = e.vm.Steps()
	e.meta = meta
	return ckpt.EncodeBytesWith(meta, img, ckpt.Options{Compress: true})
}

// vacate checkpoints the job and ships it to the shadow.
func (e *execution) vacate(reason string) {
	cp := trace.StartChildIfSampled(e.traceCtx, "checkpoint")
	cp.SetJob(e.jobID)
	ckptStart := time.Now()
	blob, err := e.snapshotBlob()
	if err != nil {
		// Encoding can only fail on an invalid image; fall back to the
		// last good checkpoint rather than losing the job.
		cp.SetError(err)
		blob = e.lastCkpt
		// Resuming from the stale checkpoint redoes everything since it.
		e.meter.Badput(e.meter.StepsBeyond(e.lastCkptSteps))
	} else {
		e.meter.Checkpoint(len(blob), time.Since(ckptStart))
	}
	cp.Finish()
	e.meter.Preempted()
	e.starter.bump(func(s *StarterStats) { s.Vacated++ })
	e.starter.clear(e)
	sp := trace.StartChildIfSampled(e.traceCtx, "vacate")
	sp.SetJob(e.jobID)
	sp.SetAttr("reason", reason)
	e.ship(sp.Context(), proto.JobVacatedMsg{
		JobID:      e.jobID,
		Checkpoint: blob,
		Reason:     reason,
		Steps:      e.vm.Steps(),
	})
	sp.Finish()
}

// killWithLastCheckpoint implements the §4 kill-immediately policy: no
// fresh checkpoint is taken; work since the last one is lost.
func (e *execution) killWithLastCheckpoint(reason string) {
	// Badput: everything executed past the checkpoint being shipped back
	// will be redone when the job resumes elsewhere.
	e.meter.ObserveSteps(e.vm.Steps())
	e.meter.Badput(e.meter.StepsBeyond(e.lastCkptSteps))
	e.meter.Preempted()
	e.starter.bump(func(s *StarterStats) { s.Vacated++ })
	e.starter.clear(e)
	sp := trace.StartChildIfSampled(e.traceCtx, "vacate")
	sp.SetJob(e.jobID)
	sp.SetAttr("reason", reason)
	sp.SetAttr("killed", "true")
	e.ship(sp.Context(), proto.JobVacatedMsg{
		JobID:      e.jobID,
		Checkpoint: e.lastCkpt,
		Reason:     fmt.Sprintf("%s (killed; resuming from last checkpoint)", reason),
		Steps:      e.lastCkptSteps,
	})
	sp.Finish()
}

func (e *execution) ship(sc trace.SpanContext, msg proto.JobVacatedMsg) {
	ctx, cancel := context.WithTimeout(context.Background(), e.starter.cfg.SyscallTimeout)
	defer cancel()
	if !sc.Valid() {
		sc = e.traceCtx
	}
	_, _ = e.peer.Call(trace.ContextWith(ctx, sc), msg)
	e.peer.Close()
}

func (e *execution) finish(msg proto.JobDoneMsg) {
	ctx, cancel := context.WithTimeout(context.Background(), e.starter.cfg.SyscallTimeout)
	defer cancel()
	// Carry the exec span so the shadow's terminal "complete" span hangs
	// off it in the tree.
	_, _ = e.peer.Call(trace.ContextWith(ctx, e.traceCtx), msg)
	e.peer.Close()
}

// remoteHandler forwards guest system calls to the shadow.
type remoteHandler struct {
	peer    *wire.Peer
	jobID   string
	timeout time.Duration
	// parent/every drive head-based syscall sampling: within a traced
	// execution the first forwarded syscall is always recorded, then
	// every Nth. The sampled-out path costs one atomic add and a branch.
	parent trace.SpanContext
	every  uint64
	n      atomic.Uint64
}

var _ cvm.SyscallHandler = (*remoteHandler)(nil)

// Syscall implements cvm.SyscallHandler by shipping the request over the
// placement connection and waiting for the shadow's reply.
func (h *remoteHandler) Syscall(req cvm.SyscallRequest) (cvm.SyscallReply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	sp := trace.StartNth(h.parent, "syscall", h.n.Add(1), h.every)
	sp.SetJob(h.jobID)
	if sp.Recording() {
		// Only sampled syscalls carry trace context to the shadow, so
		// the home machine records exactly the matching child spans.
		ctx = trace.ContextWith(ctx, sp.Context())
	}
	start := time.Now()
	reply, err := h.peer.Call(ctx, proto.SyscallMsg{JobID: h.jobID, Req: req})
	if err != nil {
		sp.SetError(err)
		sp.Finish()
		mSyscallErrors.Inc()
		return cvm.SyscallReply{}, fmt.Errorf("ru: syscall forward: %w", err)
	}
	rtt := time.Since(start)
	if sp.Recording() {
		// Exemplar: pin the latest traced syscall to the RTT histogram
		// so operators can jump from the aggregate to one real trace.
		mSyscallRTT.ObserveDurationExemplar(rtt, sp.Context().Traceparent())
	} else {
		mSyscallRTT.ObserveDuration(rtt)
	}
	sp.Finish()
	rep, ok := reply.(proto.SyscallReplyMsg)
	if !ok {
		return cvm.SyscallReply{}, fmt.Errorf("ru: unexpected syscall reply %T", reply)
	}
	return rep.Rep, nil
}
