// Package ru implements the Remote Unix facility (§2.2): the mechanism
// that turns idle workstations into cycle servers.
//
// Two halves talk over one wire connection:
//
//   - The Shadow runs on the submitting machine as the surrogate of the
//     remote job. It dials the execution machine's Starter, ships the job
//     (a checkpoint blob — sequence zero for a fresh job), and then
//     serves every system call the job makes, executing it against the
//     submitting machine's files. "Any Unix system calls of a program on
//     the remote machine invokes a library routine which communicates
//     with the shadow process."
//
//   - The Starter runs on the execution machine. It accepts at most one
//     foreign job, restores the checkpoint into a VM, and interleaves
//     execution slices with owner-activity scans every ScanInterval
//     (the paper's ½ minute). When the owner returns, the job is
//     suspended immediately — "the CPUs are immediately returned" — and
//     kept for SuspendGrace (the paper's 5 minutes) in the hope the
//     owner leaves again; only then is it checkpointed and shipped back
//     (§4). The §4 alternative, killing immediately and relying on
//     periodic checkpoints, is available as VacatePolicy/
//     PeriodicCheckpoint and is compared in the A5 ablation.
//
// Checkpoints are taken only between execution slices, never while a
// system call is in flight, which realizes the paper's rule that
// "checkpointing is deferred until the shadow's reply has been received".
package ru
