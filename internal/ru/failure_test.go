package ru

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"condor/internal/cvm"
	"condor/internal/proto"
)

// flakyHost wraps a MemHost and fails every syscall after a trigger is
// armed — simulating the submit machine becoming unreachable mid-run.
type flakyHost struct {
	inner *cvm.MemHost
	mu    sync.Mutex
	fail  bool
}

func (f *flakyHost) Syscall(req cvm.SyscallRequest) (cvm.SyscallReply, error) {
	f.mu.Lock()
	fail := f.fail
	f.mu.Unlock()
	if fail {
		return cvm.SyscallReply{}, errors.New("injected shadow failure")
	}
	return f.inner.Syscall(req)
}

func (f *flakyHost) trip() {
	f.mu.Lock()
	f.fail = true
	f.mu.Unlock()
}

func TestShadowFailureDuringSyscallLosesNothingDurable(t *testing.T) {
	// The shadow's host starts failing mid-run. The executor sees the
	// syscall error propagate as a remote error; the job's own state
	// remains consistent: re-placing the job's last checkpoint against a
	// healthy host must still produce the right answer.
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 2_000})
	host := &flakyHost{inner: cvm.NewMemHost()}
	rec := newRecorder()
	blob := freshBlob(t, "j", cvm.SumProgram(2_000_000))
	sh, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
		JobID: "j", Owner: "t", HomeHost: "home", Checkpoint: blob,
	}, host, rec, PlaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	host.trip() // the job's final print will fail on the shadow side

	// When the guest eventually issues its print, the shadow handler
	// errors; the executor gets a RemoteError host failure and drops the
	// connection, which the shadow reports as JobLost (after seeing no
	// terminal message) — or the remote error reaches the executor which
	// closes, same observable.
	select {
	case <-rec.lostCh:
	case m := <-rec.doneCh:
		// The print may have squeaked through before the trip; then the
		// run legitimately completed.
		if m.Faulted {
			t.Fatalf("guest faulted: %+v", m)
		}
		return
	case <-time.After(10 * time.Second):
		t.Fatal("neither loss nor completion observed")
	}
	_ = sh

	// Recovery: run the original placement blob on a fresh site with a
	// healthy host — the answer must be exact (restart from checkpoint).
	s2 := newSite(t, StarterConfig{})
	host2 := cvm.NewMemHost()
	rec2 := newRecorder()
	place(t, s2, "j", blob, host2, rec2)
	waitDone(t, rec2, 10*time.Second)
	if got := strings.TrimSpace(host2.Stdout()); got != "2000001000000" {
		t.Fatalf("recovered answer = %q", got)
	}
}

func TestSlowShadowSyscallTimesOutWithoutWedgingStarter(t *testing.T) {
	// A shadow that never answers one syscall: the executor's syscall
	// timeout must fire, the machine must free up for new placements.
	s := newSite(t, StarterConfig{
		SyscallTimeout: 50 * time.Millisecond,
		SliceDelay:     time.Millisecond,
		StepsPerSlice:  2_000,
	})
	block := make(chan struct{})
	stuck := cvm.SyscallHandlerFunc(func(req cvm.SyscallRequest) (cvm.SyscallReply, error) {
		<-block
		return cvm.SyscallReply{}, nil
	})
	defer close(block)
	rec := newRecorder()
	place(t, s, "stuck", freshBlob(t, "stuck", cvm.SumProgram(1000)), stuck, rec)

	// The job needs a print syscall at the end; the handler blocks, the
	// executor times out, closes, and the shadow reports loss.
	select {
	case <-rec.lostCh:
	case <-time.After(10 * time.Second):
		t.Fatal("starter wedged on a slow shadow")
	}
	// The machine accepts a new job afterwards.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, busy := s.starter.Running(); !busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("machine still claimed by the stuck job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	host := cvm.NewMemHost()
	rec2 := newRecorder()
	place(t, s, "next", freshBlob(t, "next", cvm.SumProgram(100)), host, rec2)
	waitDone(t, rec2, 10*time.Second)
	if strings.TrimSpace(host.Stdout()) != "5050" {
		t.Fatalf("follow-up job broken: %q", host.Stdout())
	}
}

func TestTamperedCheckpointRejectedAtPlacement(t *testing.T) {
	s := newSite(t, StarterConfig{})
	blob := freshBlob(t, "j", cvm.SumProgram(10))
	blob[len(blob)-1] ^= 0xff // corrupt payload; CRC must catch it
	_, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
		JobID: "j", Checkpoint: blob,
	}, cvm.NewMemHost(), newRecorder(), PlaceConfig{})
	if !errors.Is(err, ErrPlacementRejected) {
		t.Fatalf("tampered checkpoint err = %v, want rejection", err)
	}
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "bad checkpoint") {
		t.Fatalf("rejection reason opaque: %v", err)
	}
}

func TestDoublePlacementRace(t *testing.T) {
	// Two shadows race to place different jobs on one starter; exactly
	// one must win, and the loser must get a clean rejection.
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 1_000})
	type result struct {
		sh  *Shadow
		err error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			rec := newRecorder()
			jobID := []string{"race-a", "race-b"}[i]
			sh, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
				JobID:      jobID,
				Checkpoint: freshBlob(t, jobID, cvm.SpinProgram(200_000_000)),
			}, cvm.NewMemHost(), rec, PlaceConfig{})
			results <- result{sh: sh, err: err}
		}()
	}
	var wins, rejections int
	for i := 0; i < 2; i++ {
		r := <-results
		switch {
		case r.err == nil:
			wins++
			r.sh.Close()
		case errors.Is(r.err, ErrPlacementRejected):
			rejections++
		default:
			t.Fatalf("unexpected error: %v", r.err)
		}
	}
	if wins != 1 || rejections != 1 {
		t.Fatalf("wins=%d rejections=%d, want exactly one of each", wins, rejections)
	}
}

// TestSyscallEffectsNotDuplicatedAcrossMigration checks the §2.3
// deferred-checkpoint rule end to end: a job appends a line to a file on
// the submitting machine, then keeps computing; it is vacated and
// resumed elsewhere. Because checkpoints are only taken after the
// shadow's reply has been received, the append must appear exactly once
// — never zero times, never twice.
func TestSyscallEffectsNotDuplicatedAcrossMigration(t *testing.T) {
	prog := cvm.MustAssemble("append-once", `
.data
outname: .str "log"
line:    .str "checkpoint-me\n"
n:       .word 3000000
.text
start:
    MOVI r0, outname
    MOVI r1, 3
    MOVI r2, 4          ; FlagAppend
    SYS  open
    MOVI r9, 0
    JLT  r0, r9, fail
    MOV  r12, r0
    MOV  r0, r12
    MOVI r1, line
    MOVI r2, 14
    SYS  write
    JLT  r0, r9, fail
    MOV  r0, r12
    SYS  close
    ; now burn CPU so the vacate lands after the write
    MOVI r0, n
    LD   r2, [r0]
    MOVI r1, 0
loop:
    JGE  r1, r2, done
    ADDI r1, r1, 1
    JMP  loop
done:
    HALT 0
fail:
    HALT 1
`)
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 2_000})
	host := cvm.NewMemHost()
	rec := newRecorder()
	place(t, s, "once", freshBlob(t, "once", prog), host, rec)

	// Wait for the write to land, then vacate mid-loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, ok := host.File("log"); ok && len(data) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("append never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.starter.Vacate("once", "migrate") {
		t.Fatal("vacate refused")
	}
	var vac proto.JobVacatedMsg
	select {
	case vac = <-rec.vacatedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no vacate")
	}

	s2 := newSite(t, StarterConfig{})
	rec2 := newRecorder()
	place(t, s2, "once", vac.Checkpoint, host, rec2)
	done := waitDone(t, rec2, 10*time.Second)
	if done.Faulted || done.ExitCode != 0 {
		t.Fatalf("done = %+v", done)
	}
	data, _ := host.File("log")
	if got := strings.Count(string(data), "checkpoint-me"); got != 1 {
		t.Fatalf("append appeared %d times, want exactly once:\n%q", got, data)
	}
}
