package ru

import (
	"errors"

	"condor/internal/ckpt"
	"condor/internal/cvm"
)

// neverCalled is a syscall handler for VMs that are snapshotted before
// executing a single instruction.
type neverCalled struct{}

var _ cvm.SyscallHandler = neverCalled{}

// Syscall implements cvm.SyscallHandler.
func (neverCalled) Syscall(cvm.SyscallRequest) (cvm.SyscallReply, error) {
	return cvm.SyscallReply{}, errors.New("ru: syscall before placement")
}

// InitialCheckpoint builds the sequence-zero checkpoint blob for a fresh
// job: a snapshot of the program loaded but not yet started. Placement
// and checkpointing are thereby the same operation with the same cost, as
// in the paper's measurements (5 s/MB for either, §3.1).
func InitialCheckpoint(meta ckpt.Meta, prog *cvm.Program, stackWords int) ([]byte, error) {
	vm, err := cvm.New(prog, neverCalled{}, cvm.Config{StackWords: stackWords})
	if err != nil {
		return nil, err
	}
	meta.Sequence = 0
	meta.CPUSteps = 0
	if meta.ProgramName == "" {
		meta.ProgramName = prog.Name
	}
	if meta.TextChecksum == "" {
		meta.TextChecksum = prog.TextChecksum()
	}
	return ckpt.EncodeBytesWith(meta, vm.Snapshot(), ckpt.Options{Compress: true})
}
