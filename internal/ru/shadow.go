package ru

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"condor/internal/accounting"
	"condor/internal/cvm"
	"condor/internal/proto"
	"condor/internal/trace"
	"condor/internal/wire"
)

// ErrPlacementRejected is returned when the execution site declines the
// job (owner active, already claimed, disk full, ...).
var ErrPlacementRejected = errors.New("ru: placement rejected")

// Events receives the shadow-side lifecycle callbacks. All callbacks are
// invoked from shadow-internal goroutines; implementations must be safe
// for concurrent use and must not block for long.
type Events interface {
	// JobDone fires when the job terminates (success or fault).
	JobDone(msg proto.JobDoneMsg)
	// JobVacated fires when a checkpoint comes back; the job should be
	// rescheduled from it.
	JobVacated(msg proto.JobVacatedMsg)
	// JobCheckpointed fires for periodic checkpoints of a still-running
	// job.
	JobCheckpointed(msg proto.JobCheckpointMsg)
	// JobSuspended / JobResumed are grace-period notices.
	JobSuspended(jobID string)
	JobResumed(jobID string)
	// JobLost fires when the connection to the execution site dies
	// without a terminal message: the execution machine crashed or was
	// shut down. The job should be rescheduled from its last checkpoint.
	JobLost(jobID string, err error)
}

// ShadowStats counts the local capacity a shadow spent supporting remote
// execution — the denominator of the paper's leverage metric.
type ShadowStats struct {
	Syscalls        uint64
	SyscallBytes    int64
	CheckpointsIn   uint64
	CheckpointBytes int64
}

// Shadow is the submit-side surrogate of one remotely executing job.
type Shadow struct {
	jobID    string
	execSite string
	peer     *wire.Peer
	events   Events
	handler  cvm.SyscallHandler
	// meter charges home-side support time (syscall service, checkpoint
	// ingest) to the job — the denominator of the leverage metric.
	meter *accounting.Meter

	syscalls  atomic.Uint64
	sysBytes  atomic.Int64
	ckptsIn   atomic.Uint64
	ckptBytes atomic.Int64

	mu       sync.Mutex
	terminal bool // saw JobDone or JobVacated

	closed chan struct{}
}

// PlaceConfig parameterizes a placement.
type PlaceConfig struct {
	// DialTimeout bounds one TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// DialRetry, when set, retries the TCP connect under its policy.
	// Only the dial is ever retried: the PlaceRequest handshake runs at
	// most once, because a handshake whose reply was lost may already
	// have claimed the execution machine.
	DialRetry *wire.Retry
	// PlaceTimeout bounds the placement handshake (default 30s). When
	// DialRetry is set it also bounds the whole dial-retry loop.
	PlaceTimeout time.Duration
	// WriteTimeout bounds each frame write on the shadow's connection
	// (0 = unbounded), so a wedged execution machine cannot hang the
	// shadow mid-send.
	WriteTimeout time.Duration
	// FrameTimeout bounds completing an inbound frame once its first
	// byte has arrived (0 = unbounded). Idle waits between frames are
	// never timed out — Heartbeat covers those.
	FrameTimeout time.Duration
	// Heartbeat probes the execution machine's liveness so a half-open
	// connection (machine powered off mid-run) surfaces as JobLost
	// rather than a shadow waiting forever. Zero disables probing.
	Heartbeat time.Duration
}

func (c *PlaceConfig) sanitize() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.PlaceTimeout <= 0 {
		c.PlaceTimeout = 30 * time.Second
	}
}

// Place ships a job to the starter at execAddr and returns its shadow.
// The checkpoint blob is the job's full state (sequence zero for a fresh
// job). handler executes the job's system calls on this machine. ctx
// carries the caller's span context (trace.ContextWith) so the starter's
// execution joins the job's trace; context.Background() is fine for
// untraced callers.
func Place(
	ctx context.Context,
	execAddr string,
	req proto.PlaceRequest,
	handler cvm.SyscallHandler,
	events Events,
	cfg PlaceConfig,
) (*Shadow, error) {
	cfg.sanitize()
	if handler == nil {
		return nil, errors.New("ru: nil syscall handler")
	}
	if events == nil {
		return nil, errors.New("ru: nil events sink")
	}
	s := &Shadow{
		jobID:    req.JobID,
		execSite: execAddr,
		events:   events,
		handler:  handler,
		meter:    accounting.Default.Job(req.JobID, req.Owner, req.HomeHost),
		closed:   make(chan struct{}),
	}
	dial := func() (*wire.Peer, error) {
		return wire.DialOpts(execAddr, wire.DialOptions{
			Timeout:      cfg.DialTimeout,
			WriteTimeout: cfg.WriteTimeout,
			FrameTimeout: cfg.FrameTimeout,
			Handler:      s.handle,
		})
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.PlaceTimeout)
	defer cancel()
	var peer *wire.Peer
	var err error
	if cfg.DialRetry != nil {
		err = cfg.DialRetry.Do(ctx, func() error {
			peer, err = dial()
			return err
		})
	} else {
		peer, err = dial()
	}
	if err != nil {
		return nil, err
	}
	if cfg.Heartbeat > 0 {
		peer.StartHeartbeat(wire.Heartbeat{Interval: cfg.Heartbeat})
	}
	s.peer = peer

	reply, err := peer.Call(ctx, req)
	if err != nil {
		peer.Close()
		return nil, fmt.Errorf("ru: place %s on %s: %w", req.JobID, execAddr, err)
	}
	pr, ok := reply.(proto.PlaceReply)
	if !ok {
		peer.Close()
		return nil, fmt.Errorf("ru: place %s: unexpected reply %T", req.JobID, reply)
	}
	if !pr.Accepted {
		peer.Close()
		return nil, fmt.Errorf("%w: %s", ErrPlacementRejected, pr.Reason)
	}
	go s.watch()
	return s, nil
}

// ExecSite returns the execution machine's address.
func (s *Shadow) ExecSite() string { return s.execSite }

// JobID returns the job this shadow serves.
func (s *Shadow) JobID() string { return s.jobID }

// Stats returns the local-support counters.
func (s *Shadow) Stats() ShadowStats {
	return ShadowStats{
		Syscalls:        s.syscalls.Load(),
		SyscallBytes:    s.sysBytes.Load(),
		CheckpointsIn:   s.ckptsIn.Load(),
		CheckpointBytes: s.ckptBytes.Load(),
	}
}

// Close tears the connection down (used when removing a job).
func (s *Shadow) Close() {
	s.peer.Close()
	<-s.closed
}

// watch turns an unexpected connection loss into a JobLost event.
func (s *Shadow) watch() {
	defer close(s.closed)
	<-s.peer.Done()
	s.mu.Lock()
	terminal := s.terminal
	s.mu.Unlock()
	if !terminal {
		err := s.peer.Err()
		if err == nil {
			err = errors.New("connection closed")
		}
		s.events.JobLost(s.jobID, err)
	}
}

func (s *Shadow) markTerminal() {
	s.mu.Lock()
	s.terminal = true
	s.mu.Unlock()
}

// handle serves the executor's requests and notices. ctx carries the
// executor's span context when it sampled the operation; handle records
// the shadow-side half (home-machine syscall service time, terminal
// events) as child spans, completing the cross-machine picture.
func (s *Shadow) handle(ctx context.Context, msg any) (any, error) {
	switch m := msg.(type) {
	case proto.SyscallMsg:
		s.syscalls.Add(1)
		s.sysBytes.Add(int64(len(m.Req.Data)))
		sp := trace.StartChildIfSampled(trace.FromContext(ctx), "shadow-syscall")
		sp.SetJob(s.jobID)
		start := time.Now()
		rep, err := s.handler.Syscall(m.Req)
		elapsed := time.Since(start)
		sp.SetError(err)
		sp.Finish()
		if err != nil {
			s.meter.Syscall(len(m.Req.Data), elapsed)
			return nil, err
		}
		s.sysBytes.Add(int64(len(rep.Data)))
		s.meter.Syscall(len(m.Req.Data)+len(rep.Data), elapsed)
		return proto.SyscallReplyMsg{Rep: rep}, nil
	case proto.JobDoneMsg:
		sp := trace.StartChildIfSampled(trace.FromContext(ctx), "complete")
		sp.SetJob(s.jobID)
		s.markTerminal()
		s.events.JobDone(m)
		sp.Finish()
		return proto.Ack{}, nil
	case proto.JobVacatedMsg:
		s.ckptsIn.Add(1)
		s.ckptBytes.Add(int64(len(m.Checkpoint)))
		s.markTerminal()
		start := time.Now()
		s.events.JobVacated(m)
		s.meter.Support(time.Since(start)) // checkpoint ingest + requeue
		return proto.Ack{}, nil
	case proto.JobCheckpointMsg:
		s.ckptsIn.Add(1)
		s.ckptBytes.Add(int64(len(m.Checkpoint)))
		start := time.Now()
		s.events.JobCheckpointed(m)
		s.meter.Support(time.Since(start)) // checkpoint ingest
		return proto.Ack{}, nil
	case proto.JobSuspendedMsg:
		s.events.JobSuspended(m.JobID)
		return proto.Ack{}, nil
	case proto.JobResumedMsg:
		s.events.JobResumed(m.JobID)
		return proto.Ack{}, nil
	default:
		return nil, fmt.Errorf("ru: shadow got unexpected %T", msg)
	}
}
