package ru

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/wire"
)

// recorder collects shadow events for assertions.
type recorder struct {
	mu          sync.Mutex
	done        []proto.JobDoneMsg
	vacated     []proto.JobVacatedMsg
	checkpoints []proto.JobCheckpointMsg
	suspends    []string
	resumes     []string
	lost        []error

	doneCh    chan proto.JobDoneMsg
	vacatedCh chan proto.JobVacatedMsg
	lostCh    chan error
	suspendCh chan string
	resumeCh  chan string
}

func newRecorder() *recorder {
	return &recorder{
		doneCh:    make(chan proto.JobDoneMsg, 4),
		vacatedCh: make(chan proto.JobVacatedMsg, 4),
		lostCh:    make(chan error, 4),
		suspendCh: make(chan string, 4),
		resumeCh:  make(chan string, 4),
	}
}

var _ Events = (*recorder)(nil)

func (r *recorder) JobDone(m proto.JobDoneMsg) {
	r.mu.Lock()
	r.done = append(r.done, m)
	r.mu.Unlock()
	r.doneCh <- m
}

func (r *recorder) JobVacated(m proto.JobVacatedMsg) {
	r.mu.Lock()
	r.vacated = append(r.vacated, m)
	r.mu.Unlock()
	r.vacatedCh <- m
}

func (r *recorder) JobCheckpointed(m proto.JobCheckpointMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkpoints = append(r.checkpoints, m)
}

func (r *recorder) JobSuspended(id string) {
	r.mu.Lock()
	r.suspends = append(r.suspends, id)
	r.mu.Unlock()
	select {
	case r.suspendCh <- id:
	default:
	}
}

func (r *recorder) JobResumed(id string) {
	r.mu.Lock()
	r.resumes = append(r.resumes, id)
	r.mu.Unlock()
	select {
	case r.resumeCh <- id:
	default:
	}
}

func (r *recorder) JobLost(id string, err error) {
	r.mu.Lock()
	r.lost = append(r.lost, err)
	r.mu.Unlock()
	r.lostCh <- err
}

func (r *recorder) numCheckpoints() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.checkpoints)
}

// site is one execution machine under test.
type site struct {
	starter *Starter
	monitor *machine.ScriptedMonitor
	server  *wire.Server
}

func newSite(t *testing.T, cfg StarterConfig) *site {
	t.Helper()
	mon := machine.NewScriptedMonitor(false)
	if cfg.Monitor == nil {
		cfg.Monitor = mon
	}
	if cfg.Name == "" {
		cfg.Name = "exec1"
	}
	if cfg.ScanInterval == 0 {
		cfg.ScanInterval = 5 * time.Millisecond
	}
	if cfg.SuspendGrace == 0 {
		cfg.SuspendGrace = 40 * time.Millisecond
	}
	if cfg.StepsPerSlice == 0 {
		cfg.StepsPerSlice = 5_000
	}
	st, err := NewStarter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer("127.0.0.1:0", st.Handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return &site{starter: st, monitor: mon, server: srv}
}

func freshBlob(t *testing.T, jobID string, prog *cvm.Program) []byte {
	t.Helper()
	blob, err := InitialCheckpoint(ckpt.Meta{JobID: jobID, Owner: "tester"}, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func place(t *testing.T, s *site, jobID string, blob []byte, host cvm.SyscallHandler, rec *recorder) *Shadow {
	t.Helper()
	sh, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
		JobID:      jobID,
		Owner:      "tester",
		HomeHost:   "home",
		Checkpoint: blob,
	}, host, rec, PlaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func waitDone(t *testing.T, rec *recorder, timeout time.Duration) proto.JobDoneMsg {
	t.Helper()
	select {
	case m := <-rec.doneCh:
		return m
	case err := <-rec.lostCh:
		t.Fatalf("job lost instead of done: %v", err)
	case m := <-rec.vacatedCh:
		t.Fatalf("job vacated instead of done: %+v", m.Reason)
	case <-time.After(timeout):
		t.Fatal("timed out waiting for JobDone")
	}
	return proto.JobDoneMsg{}
}

func TestRemoteExecutionEndToEnd(t *testing.T) {
	s := newSite(t, StarterConfig{})
	host := cvm.NewMemHost()
	rec := newRecorder()
	sh := place(t, s, "job1", freshBlob(t, "job1", cvm.SumProgram(1000)), host, rec)
	done := waitDone(t, rec, 5*time.Second)
	if done.Faulted || done.ExitCode != 0 {
		t.Fatalf("done = %+v", done)
	}
	if got := strings.TrimSpace(host.Stdout()); got != "500500" {
		t.Fatalf("remote stdout (via shadow) = %q", got)
	}
	stats := sh.Stats()
	if stats.Syscalls == 0 {
		t.Fatal("shadow saw no syscalls; output must have flowed through it")
	}
	st := s.starter.Stats()
	if st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("starter stats = %+v", st)
	}
}

func TestRemoteFileIOThroughShadow(t *testing.T) {
	s := newSite(t, StarterConfig{})
	host := cvm.NewMemHost()
	content := strings.Repeat("condor hunts idle workstations\n", 10)
	host.SetFile("in", []byte(content))
	rec := newRecorder()
	place(t, s, "copy1", freshBlob(t, "copy1", cvm.FileCopyProgram("in", "out")), host, rec)
	done := waitDone(t, rec, 5*time.Second)
	if done.ExitCode != 0 {
		t.Fatalf("done = %+v", done)
	}
	out, ok := host.File("out")
	if !ok || string(out) != content {
		t.Fatalf("copy through shadow failed: ok=%v len=%d", ok, len(out))
	}
}

func TestPlacementRejectedWhenOwnerActive(t *testing.T) {
	s := newSite(t, StarterConfig{})
	s.monitor.SetActive(true)
	rec := newRecorder()
	_, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
		JobID:      "j",
		Checkpoint: freshBlob(t, "j", cvm.SpinProgram(10)),
	}, cvm.NewMemHost(), rec, PlaceConfig{})
	if !errors.Is(err, ErrPlacementRejected) {
		t.Fatalf("err = %v, want ErrPlacementRejected", err)
	}
	if s.starter.Stats().Rejected != 1 {
		t.Fatalf("stats = %+v", s.starter.Stats())
	}
}

func TestPlacementRejectedWhenClaimed(t *testing.T) {
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 1000})
	rec := newRecorder()
	place(t, s, "long", freshBlob(t, "long", cvm.SpinProgram(50_000_000)), cvm.NewMemHost(), rec)
	rec2 := newRecorder()
	_, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
		JobID:      "second",
		Checkpoint: freshBlob(t, "second", cvm.SpinProgram(10)),
	}, cvm.NewMemHost(), rec2, PlaceConfig{})
	if !errors.Is(err, ErrPlacementRejected) {
		t.Fatalf("err = %v, want rejection while claimed", err)
	}
}

func TestPlacementRejectsCorruptCheckpoint(t *testing.T) {
	s := newSite(t, StarterConfig{})
	rec := newRecorder()
	_, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{
		JobID:      "j",
		Checkpoint: []byte("garbage"),
	}, cvm.NewMemHost(), rec, PlaceConfig{})
	if !errors.Is(err, ErrPlacementRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestSuspendResumeCompletes(t *testing.T) {
	s := newSite(t, StarterConfig{
		SliceDelay:    time.Millisecond,
		StepsPerSlice: 2_000,
		SuspendGrace:  10 * time.Second, // grace long: must resume, not vacate
	})
	host := cvm.NewMemHost()
	rec := newRecorder()
	place(t, s, "j", freshBlob(t, "j", cvm.SumProgram(300_000)), host, rec)

	s.monitor.SetActive(true)
	select {
	case <-rec.suspendCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no suspend notice")
	}
	if !s.starter.Suspended() {
		t.Fatal("starter does not report suspended")
	}
	s.monitor.SetActive(false)
	select {
	case <-rec.resumeCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no resume notice")
	}
	done := waitDone(t, rec, 10*time.Second)
	if done.Faulted {
		t.Fatalf("done = %+v", done)
	}
	if got := strings.TrimSpace(host.Stdout()); got != "45000150000" {
		t.Fatalf("sum(300000) = %q", got)
	}
	st := s.starter.Stats()
	if st.Suspends == 0 || st.Resumes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGraceExpiryVacatesWithCheckpoint(t *testing.T) {
	s := newSite(t, StarterConfig{
		SliceDelay:    time.Millisecond,
		StepsPerSlice: 2_000,
		SuspendGrace:  30 * time.Millisecond,
	})
	host := cvm.NewMemHost()
	rec := newRecorder()
	place(t, s, "j", freshBlob(t, "j", cvm.SumProgram(1_000_000)), host, rec)
	time.Sleep(20 * time.Millisecond) // let it make progress
	s.monitor.SetActive(true)

	var vac proto.JobVacatedMsg
	select {
	case vac = <-rec.vacatedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no vacate after grace expiry")
	}
	if vac.Steps == 0 {
		t.Fatal("vacated with zero progress; expected mid-run checkpoint")
	}
	if !strings.Contains(vac.Reason, "owner returned") {
		t.Fatalf("reason = %q", vac.Reason)
	}

	// Re-place the checkpoint on a second machine; it must finish with
	// the correct answer and without redoing the work.
	s2 := newSite(t, StarterConfig{})
	rec2 := newRecorder()
	sh2 := place(t, s2, "j", vac.Checkpoint, host, rec2)
	done := waitDone(t, rec2, 10*time.Second)
	if done.Steps <= vac.Steps {
		t.Fatalf("resumed job reports %d steps, checkpoint had %d", done.Steps, vac.Steps)
	}
	if got := strings.TrimSpace(host.Stdout()); got != "500000500000" {
		t.Fatalf("sum(1e6) across migration = %q", got)
	}
	_ = sh2
}

func TestKillImmediatelyPolicyLosesOnlyTail(t *testing.T) {
	s := newSite(t, StarterConfig{
		Policy:             VacateKillImmediately,
		PeriodicCheckpoint: 10 * time.Millisecond,
		SliceDelay:         time.Millisecond,
		StepsPerSlice:      2_000,
	})
	host := cvm.NewMemHost()
	rec := newRecorder()
	place(t, s, "j", freshBlob(t, "j", cvm.SumProgram(2_000_000)), host, rec)

	// Wait for at least one periodic checkpoint, then owner returns.
	deadline := time.Now().Add(5 * time.Second)
	for rec.numCheckpoints() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.monitor.SetActive(true)
	var vac proto.JobVacatedMsg
	select {
	case vac = <-rec.vacatedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no immediate vacate under kill policy")
	}
	if !strings.Contains(vac.Reason, "killed") {
		t.Fatalf("reason = %q", vac.Reason)
	}
	if vac.Steps == 0 {
		t.Fatal("kill policy shipped the placement image despite periodic checkpoints")
	}
	// Under kill-immediately there is no fresh checkpoint: the job state
	// is the last periodic one. Resuming must still yield the answer.
	s2 := newSite(t, StarterConfig{})
	rec2 := newRecorder()
	place(t, s2, "j", vac.Checkpoint, host, rec2)
	waitDone(t, rec2, 10*time.Second)
	if got := strings.TrimSpace(host.Stdout()); got != "2000001000000" {
		t.Fatalf("sum(2e6) after kill/restore = %q", got)
	}
}

func TestCoordinatorStyleVacate(t *testing.T) {
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 1_000})
	rec := newRecorder()
	place(t, s, "victim", freshBlob(t, "victim", cvm.SpinProgram(100_000_000)), cvm.NewMemHost(), rec)
	if ok := s.starter.Vacate("victim", "up-down preemption"); !ok {
		t.Fatal("Vacate refused")
	}
	select {
	case vac := <-rec.vacatedCh:
		if !strings.Contains(vac.Reason, "up-down") {
			t.Fatalf("reason = %q", vac.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no vacate")
	}
	if _, _, ok := s.starter.Running(); ok {
		t.Fatal("starter still claims a job after vacate")
	}
}

func TestVacateWrongJobIDRefused(t *testing.T) {
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 1_000})
	rec := newRecorder()
	place(t, s, "jobX", freshBlob(t, "jobX", cvm.SpinProgram(100_000_000)), cvm.NewMemHost(), rec)
	if s.starter.Vacate("other", "nope") {
		t.Fatal("vacated a different job id")
	}
	if !s.starter.Vacate("", "any") {
		t.Fatal("empty id should match the resident job")
	}
}

func TestStarterCloseSignalsJobLost(t *testing.T) {
	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 1_000})
	rec := newRecorder()
	place(t, s, "j", freshBlob(t, "j", cvm.SpinProgram(100_000_000)), cvm.NewMemHost(), rec)
	// Simulate the execution machine crashing.
	s.server.Close()
	s.starter.Close()
	select {
	case <-rec.lostCh:
	case <-time.After(5 * time.Second):
		t.Fatal("shadow never learned the job was lost")
	}
}

func TestFaultReportedAsDone(t *testing.T) {
	s := newSite(t, StarterConfig{})
	prog := cvm.MustAssemble("crash", `
.text
start:
    MOVI r1, 1
    MOVI r2, 0
    DIV  r0, r1, r2
    HALT 0
`)
	rec := newRecorder()
	place(t, s, "j", freshBlob(t, "j", prog), cvm.NewMemHost(), rec)
	done := waitDone(t, rec, 5*time.Second)
	if !done.Faulted || !strings.Contains(done.FaultMsg, "division by zero") {
		t.Fatalf("done = %+v", done)
	}
	if s.starter.Stats().Faulted != 1 {
		t.Fatalf("stats = %+v", s.starter.Stats())
	}
}

func TestMonteCarloAnswerIdenticalAcrossMigrations(t *testing.T) {
	// A stochastic job checkpointed mid-run must produce the same answer
	// it would have produced uninterrupted, because the RNG state rides
	// in the checkpoint.
	reference := func() string {
		host := cvm.NewMemHost()
		v, err := cvm.New(cvm.MonteCarloPiProgram(150_000), host, cvm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := v.Run(100_000_000); st != cvm.StatusHalted || err != nil {
			t.Fatalf("st %v err %v", st, err)
		}
		return strings.TrimSpace(host.Stdout())
	}
	want := reference()

	s := newSite(t, StarterConfig{SliceDelay: time.Millisecond, StepsPerSlice: 50_000})
	host := cvm.NewMemHost()
	rec := newRecorder()
	place(t, s, "pi", freshBlob(t, "pi", cvm.MonteCarloPiProgram(150_000)), host, rec)
	time.Sleep(15 * time.Millisecond)
	if !s.starter.Vacate("pi", "migrate") {
		t.Fatal("vacate refused")
	}
	var vac proto.JobVacatedMsg
	select {
	case vac = <-rec.vacatedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no vacate")
	}
	s2 := newSite(t, StarterConfig{})
	rec2 := newRecorder()
	place(t, s2, "pi", vac.Checkpoint, host, rec2)
	waitDone(t, rec2, 10*time.Second)
	if got := strings.TrimSpace(host.Stdout()); got != want {
		t.Fatalf("migrated answer %q != uninterrupted answer %q", got, want)
	}
}

func TestInitialCheckpointMetaDefaults(t *testing.T) {
	prog := cvm.SumProgram(5)
	blob, err := InitialCheckpoint(ckpt.Meta{JobID: "j", Owner: "A"}, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, img, err := ckpt.DecodeBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ProgramName != prog.Name || meta.TextChecksum != prog.TextChecksum() {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Sequence != 0 || img.Steps != 0 {
		t.Fatal("initial checkpoint must be sequence zero with no progress")
	}
}

func TestPlaceInputValidation(t *testing.T) {
	s := newSite(t, StarterConfig{})
	blob := freshBlob(t, "j", cvm.SpinProgram(1))
	if _, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{JobID: "j", Checkpoint: blob},
		nil, newRecorder(), PlaceConfig{}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := Place(context.Background(), s.server.Addr(), proto.PlaceRequest{JobID: "j", Checkpoint: blob},
		cvm.NewMemHost(), nil, PlaceConfig{}); err == nil {
		t.Fatal("nil events accepted")
	}
	if _, err := Place(context.Background(), "127.0.0.1:1", proto.PlaceRequest{JobID: "j", Checkpoint: blob},
		cvm.NewMemHost(), newRecorder(), PlaceConfig{DialTimeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestNewStarterRequiresMonitor(t *testing.T) {
	if _, err := NewStarter(StarterConfig{}); err == nil {
		t.Fatal("starter without monitor accepted")
	}
}
