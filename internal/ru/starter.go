package ru

import (
	"context"
	"fmt"
	"sync"
	"time"

	"condor/internal/accounting"
	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/trace"
	"condor/internal/wire"
)

// VacatePolicy selects what happens when the owner returns while a
// foreign job runs (§4).
type VacatePolicy int

// Vacate policies.
const (
	// VacateSuspendFirst stops the job immediately but keeps it resident
	// for SuspendGrace before checkpointing it off the machine — the
	// paper's deployed strategy ("many of the workstations' unavailable
	// intervals are short").
	VacateSuspendFirst VacatePolicy = iota + 1
	// VacateKillImmediately kills the job the moment the owner returns,
	// shipping the last periodic checkpoint (or the placement image) —
	// the §4 proposal that minimizes interference at the cost of lost
	// work since the last checkpoint.
	VacateKillImmediately
)

// StarterConfig tunes an execution site.
type StarterConfig struct {
	// Name is the machine name (for job metadata and logs).
	Name string
	// Monitor reports owner activity.
	Monitor machine.Monitor
	// ScanInterval is the owner-activity scan period (paper: 30 s).
	ScanInterval time.Duration
	// SuspendGrace is how long a suspended job is kept before being
	// vacated (paper: 5 minutes).
	SuspendGrace time.Duration
	// StepsPerSlice is how many instructions run between control checks.
	StepsPerSlice uint64
	// SliceDelay throttles execution between slices (0 = full speed).
	SliceDelay time.Duration
	// SyscallTimeout bounds one forwarded system call.
	SyscallTimeout time.Duration
	// Policy selects the owner-return behaviour.
	Policy VacatePolicy
	// PeriodicCheckpoint, when positive, checkpoints the running job to
	// its shadow at this interval (§4 proposal / A5 ablation).
	PeriodicCheckpoint time.Duration
	// SyscallTraceEvery downsamples per-syscall tracing: within a traced
	// execution the first forwarded syscall is always recorded, then
	// every Nth (default 64). Rare lifecycle events (place, checkpoint,
	// vacate, complete) are never downsampled.
	SyscallTraceEvery uint64
}

func (c *StarterConfig) sanitize() {
	if c.ScanInterval <= 0 {
		c.ScanInterval = 30 * time.Second
	}
	if c.SuspendGrace <= 0 {
		c.SuspendGrace = 5 * time.Minute
	}
	if c.StepsPerSlice == 0 {
		c.StepsPerSlice = 200_000
	}
	if c.SyscallTimeout <= 0 {
		c.SyscallTimeout = 30 * time.Second
	}
	if c.Policy == 0 {
		c.Policy = VacateSuspendFirst
	}
	if c.SyscallTraceEvery == 0 {
		c.SyscallTraceEvery = 64
	}
}

// StarterStats counts execution-site activity.
type StarterStats struct {
	Accepted      uint64
	Rejected      uint64
	Completed     uint64
	Faulted       uint64
	Vacated       uint64
	Suspends      uint64
	Resumes       uint64
	PeriodicCkpts uint64
}

// Starter executes at most one foreign job on this machine, scanning for
// owner activity and vacating per policy.
type Starter struct {
	cfg StarterConfig

	mu          sync.Mutex
	cur         *execution
	curRunning  bool // false while suspended
	suspendedAt time.Time
	stats       StarterStats

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewStarter creates a starter and begins its owner-activity scan loop.
// Call Close to stop it.
func NewStarter(cfg StarterConfig) (*Starter, error) {
	if cfg.Monitor == nil {
		return nil, fmt.Errorf("ru: starter %q needs a monitor", cfg.Name)
	}
	cfg.sanitize()
	st := &Starter{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go st.scanLoop()
	return st, nil
}

// Close stops the scan loop. A resident job's connection is closed, which
// its shadow observes as JobLost and reschedules from the last checkpoint
// — exactly the paper's machine-shutdown recovery path.
func (st *Starter) Close() {
	st.closeOnce.Do(func() { close(st.stop) })
	<-st.done
	st.mu.Lock()
	cur := st.cur
	st.mu.Unlock()
	if cur != nil {
		cur.abort()
	}
}

// Stats returns a snapshot of the starter's counters.
func (st *Starter) Stats() StarterStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Running returns the resident foreign job's id and owner, if any.
func (st *Starter) Running() (jobID, owner string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cur == nil {
		return "", "", false
	}
	return st.cur.jobID, st.cur.owner, true
}

// Suspended reports whether the resident job is currently suspended.
func (st *Starter) Suspended() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cur != nil && !st.curRunning
}

// Vacate orders the resident job (if it matches jobID; empty matches any)
// checkpointed and returned to its shadow. Used for coordinator
// preemptions. It reports whether a vacate was initiated.
func (st *Starter) Vacate(jobID, reason string) bool {
	st.mu.Lock()
	cur := st.cur
	st.mu.Unlock()
	if cur == nil || (jobID != "" && cur.jobID != jobID) {
		return false
	}
	cur.post(ctl{kind: ctlVacate, reason: reason})
	return true
}

// Handler returns the wire handler for one inbound connection; stationd
// installs it in its wire.Server for placement connections.
func (st *Starter) Handler(peer *wire.Peer) wire.Handler {
	return func(ctx context.Context, msg any) (any, error) {
		place, ok := msg.(proto.PlaceRequest)
		if !ok {
			return nil, fmt.Errorf("ru: starter got unexpected %T", msg)
		}
		return st.place(ctx, peer, place)
	}
}

func (st *Starter) place(ctx context.Context, peer *wire.Peer, req proto.PlaceRequest) (proto.PlaceReply, error) {
	reject := func(reason string) (proto.PlaceReply, error) {
		st.mu.Lock()
		st.stats.Rejected++
		st.mu.Unlock()
		return proto.PlaceReply{Accepted: false, Reason: reason}, nil
	}
	if st.cfg.Monitor.OwnerActive() {
		return reject("owner active")
	}
	meta, img, err := ckpt.DecodeBytes(req.Checkpoint)
	if err != nil {
		return reject(fmt.Sprintf("bad checkpoint: %v", err))
	}
	// Join the job's trace: prefer the live span context propagated on
	// the placement envelope; fall back to the trace ID persisted in the
	// checkpoint metadata (the schedd predates tracing, or the placement
	// came through an old peer that stripped the field).
	parent := trace.FromContext(ctx)
	if !parent.Valid() && meta.TraceID != "" {
		if sc, ok := trace.Resume(meta.TraceID); ok {
			parent = sc
		}
	}
	span := trace.StartChildIfSampled(parent, "exec")
	span.SetJob(req.JobID)
	span.SetStation(st.cfg.Name)
	span.SetAttr("seq", fmt.Sprint(meta.Sequence))
	exec := &execution{
		starter:  st,
		jobID:    req.JobID,
		owner:    req.Owner,
		home:     req.HomeHost,
		peer:     peer,
		meta:     meta,
		lastCkpt: req.Checkpoint,
		// The placement image already covers the steps in its metadata: a
		// kill before the first periodic checkpoint loses only work done
		// here, not the whole pre-migration history.
		lastCkptSteps: meta.CPUSteps,
		meter:         accounting.Default.Job(req.JobID, req.Owner, req.HomeHost),
		ctl:           make(chan ctl, 8),
		span:          span,
		traceCtx:      span.Context(),
	}
	vm, err := cvm.Restore(img, &remoteHandler{
		peer:    peer,
		jobID:   req.JobID,
		timeout: st.cfg.SyscallTimeout,
		parent:  exec.traceCtx,
		every:   st.cfg.SyscallTraceEvery,
	})
	if err != nil {
		exec.span.SetError(err)
		exec.span.Finish()
		return reject(fmt.Sprintf("restore: %v", err))
	}
	exec.vm = vm

	st.mu.Lock()
	if st.cur != nil {
		st.mu.Unlock()
		exec.span.Finish()
		return reject("machine already claimed")
	}
	st.cur = exec
	st.curRunning = true
	st.stats.Accepted++
	st.mu.Unlock()

	go exec.run()
	return proto.PlaceReply{Accepted: true}, nil
}

// clear removes exec as the resident job if it still is.
func (st *Starter) clear(exec *execution) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cur == exec {
		st.cur = nil
		st.curRunning = false
	}
}

// scanLoop is the local scheduler's ½-minute owner scan (§2.1) plus the
// 5-minute grace bookkeeping (§4).
func (st *Starter) scanLoop() {
	defer close(st.done)
	ticker := time.NewTicker(st.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-ticker.C:
			st.scanOnce(time.Now())
		}
	}
}

func (st *Starter) scanOnce(now time.Time) {
	active := st.cfg.Monitor.OwnerActive()
	st.mu.Lock()
	cur := st.cur
	running := st.curRunning
	suspendedAt := st.suspendedAt
	if cur == nil {
		st.mu.Unlock()
		return
	}
	switch {
	case active && running:
		if st.cfg.Policy == VacateKillImmediately {
			st.mu.Unlock()
			cur.post(ctl{kind: ctlKill, reason: "owner returned"})
			return
		}
		st.curRunning = false
		st.suspendedAt = now
		st.stats.Suspends++
		st.mu.Unlock()
		cur.post(ctl{kind: ctlSuspend})
	case active && !running:
		if now.Sub(suspendedAt) >= st.cfg.SuspendGrace {
			st.mu.Unlock()
			cur.post(ctl{kind: ctlVacate, reason: "owner returned (grace expired)"})
			return
		}
		st.mu.Unlock()
	case !active && !running:
		st.curRunning = true
		st.stats.Resumes++
		st.mu.Unlock()
		cur.post(ctl{kind: ctlResume})
	default:
		st.mu.Unlock()
	}
}

func (st *Starter) bump(f func(*StarterStats)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f(&st.stats)
}
