package ru

import (
	"condor/internal/telemetry"
)

// Remote-execution telemetry (see docs/OBSERVABILITY.md). Interned once;
// the syscall-forward and control paths only touch atomics.
var (
	mSyscallRTT = telemetry.NewHistogram("condor_ru_shadow_syscall_seconds",
		"Round-trip time of one guest system call forwarded to its shadow at the home station.", nil)
	mPreemptLatency = telemetry.NewHistogram("condor_ru_preempt_react_seconds",
		"Delay from the scan loop detecting the owner's return (posting suspend/kill/vacate) to the executor acting on it.", nil)
	mSyscallErrors = telemetry.NewCounter("condor_ru_shadow_syscall_errors_total",
		"Forwarded system calls that failed (shadow unreachable or deadline expired).")
)
