// Package journal implements the coordinator's durable-state layer: a
// generic append-only record log with CRC-checked, length-prefixed
// records, periodic full-state snapshots, and crash-safe replay.
//
// The paper's coordinator is deliberately thin — §2.1 argues "its
// recovery at another site is simplified" because stations hold their
// own queues — but some coordinator state is genuinely irreplaceable:
// the Up-Down schedule indexes (§2.4) are the pool's fairness memory,
// and §5.3 reservations are promises made to users. A journal makes
// both survive a coordinator crash.
//
// On-disk layout (all inside one directory):
//
//	incarnation          decimal restart counter, bumped on every Open
//	snapshot.<G>.snap    full state at generation G (magic + CRC framed)
//	journal.<G>.log      records appended since snapshot G
//
// Writing snapshot G+1 starts a fresh empty log for generation G+1 and
// retires generation G's files, so replay cost is bounded by the
// snapshot interval (size-triggered compaction via NeedsCompaction).
// Replay tolerates a torn tail — a record cut short by a crash is
// truncated away, never an error — while a corrupt snapshot falls back
// to the previous generation.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"condor/internal/telemetry"
)

// Journal telemetry (see docs/OBSERVABILITY.md). Append latency includes
// the fsync when the SyncEvery policy issues one, so the histogram shows
// the bimodal synced/unsynced cost directly.
var (
	mAppendLatency = telemetry.NewHistogram("condor_journal_append_seconds",
		"Latency of one journal record append, fsync included when issued.", nil)
	mSnapshotLatency = telemetry.NewHistogram("condor_journal_snapshot_seconds",
		"Latency of one full-state snapshot write (fsync, rename, log rotation).", nil)
	mJournalErrors = telemetry.NewCounter("condor_journal_errors_total",
		"Journal appends or snapshots that failed.")
)

// File framing constants.
const (
	// snapMagic identifies a snapshot file.
	snapMagic = "CNDRSNAP"
	// snapVersion is the current snapshot format version.
	snapVersion = 1
	// recHeaderLen is the per-record header: uint32 length + uint32 CRC.
	recHeaderLen = 8
)

// ErrClosed is returned for operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Config tunes a journal.
type Config struct {
	// SyncEvery fsyncs the log after every Nth append (1 = every
	// append, the default; negative = never fsync, for tests and
	// benchmarks that accept losing the tail on a machine crash).
	SyncEvery int
	// CompactBytes is the log size beyond which NeedsCompaction reports
	// true, prompting the owner to write a snapshot (default 1 MiB).
	CompactBytes int64
	// MaxRecordBytes bounds one record so a corrupt length field cannot
	// trigger a huge allocation on replay (default 16 MiB).
	MaxRecordBytes int64
}

func (c *Config) sanitize() {
	if c.SyncEvery == 0 {
		c.SyncEvery = 1
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 1 << 20
	}
	if c.MaxRecordBytes <= 0 {
		c.MaxRecordBytes = 16 << 20
	}
}

// Stats counts journal activity since Open.
type Stats struct {
	// Generation is the current snapshot generation.
	Generation uint64
	// Incarnation is how many times this state directory has been
	// opened (1 on the very first run).
	Incarnation uint64
	// Appends is how many records were appended this incarnation.
	Appends uint64
	// Syncs is how many fsyncs the append path issued.
	Syncs uint64
	// Snapshots is how many snapshots were written this incarnation.
	Snapshots uint64
	// LogBytes is the current log file size.
	LogBytes int64
	// ReplayedRecords is how many records Open replayed.
	ReplayedRecords uint64
	// TruncatedBytes is how much torn tail Open cut off the log.
	TruncatedBytes int64
	// SnapshotRestored reports whether Open found a usable snapshot.
	SnapshotRestored bool
}

// State is what Open recovered from the directory: the latest valid
// snapshot (nil when none was ever written) and every record appended
// after it, in append order.
type State struct {
	Snapshot    []byte
	Records     [][]byte
	Incarnation uint64
}

// Journal is an open append-only log. It is safe for concurrent use.
type Journal struct {
	dir string
	cfg Config

	mu          sync.Mutex
	f           *os.File
	gen         uint64
	size        int64
	unsynced    int
	stats       Stats
	incarnation uint64
	closed      bool
}

// Open recovers the directory's state and opens the log for appending,
// bumping the incarnation counter. The directory is created if needed.
func Open(dir string, cfg Config) (*Journal, State, error) {
	cfg.sanitize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, State{}, fmt.Errorf("journal: create dir: %w", err)
	}
	j := &Journal{dir: dir, cfg: cfg}

	inc, err := j.bumpIncarnation()
	if err != nil {
		return nil, State{}, err
	}
	j.incarnation = inc

	gen, snapshot := j.loadLatestSnapshot()
	j.gen = gen
	records, truncated, err := j.replayLog(j.logPath(gen), cfg.MaxRecordBytes)
	if err != nil {
		return nil, State{}, err
	}

	f, err := os.OpenFile(j.logPath(gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, State{}, fmt.Errorf("journal: open log: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, State{}, fmt.Errorf("journal: stat log: %w", err)
	}
	j.f = f
	j.size = fi.Size()
	j.stats = Stats{
		Generation:       gen,
		Incarnation:      inc,
		LogBytes:         j.size,
		ReplayedRecords:  uint64(len(records)),
		TruncatedBytes:   truncated,
		SnapshotRestored: snapshot != nil,
	}
	j.removeStaleFiles(gen)
	return j, State{Snapshot: snapshot, Records: records, Incarnation: inc}, nil
}

// bumpIncarnation reads, increments, and atomically rewrites the
// restart counter. An unreadable counter restarts from 1 rather than
// blocking recovery.
func (j *Journal) bumpIncarnation() (uint64, error) {
	path := filepath.Join(j.dir, "incarnation")
	var prev uint64
	if b, err := os.ReadFile(path); err == nil {
		if n, perr := strconv.ParseUint(string(b), 10, 64); perr == nil {
			prev = n
		}
	}
	next := prev + 1
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(next, 10)), 0o644); err != nil {
		return 0, fmt.Errorf("journal: write incarnation: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("journal: commit incarnation: %w", err)
	}
	return next, nil
}

func (j *Journal) snapPath(gen uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("snapshot.%d.snap", gen))
}

func (j *Journal) logPath(gen uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("journal.%d.log", gen))
}

// loadLatestSnapshot returns the highest generation whose snapshot
// decodes cleanly, falling back generation by generation on corruption.
// Generation 0 with a nil payload means "no snapshot; empty state".
func (j *Journal) loadLatestSnapshot() (uint64, []byte) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return 0, nil
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "snapshot.%d.snap", &g); n == 1 {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] > gens[b] })
	for _, g := range gens {
		if payload, err := readSnapshotFile(j.snapPath(g), j.cfg.MaxRecordBytes); err == nil {
			return g, payload
		}
	}
	return 0, nil
}

// readSnapshotFile decodes one snapshot file, verifying magic, version
// and CRC.
func readSnapshotFile(path string, maxBytes int64) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header := len(snapMagic) + 12 // version + length + crc
	if len(b) < header || string(b[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("journal: bad snapshot header")
	}
	if v := binary.BigEndian.Uint32(b[len(snapMagic):]); v != snapVersion {
		return nil, fmt.Errorf("journal: snapshot version %d unsupported", v)
	}
	length := binary.BigEndian.Uint32(b[len(snapMagic)+4:])
	wantCRC := binary.BigEndian.Uint32(b[len(snapMagic)+8:])
	if int64(length) > maxBytes || len(b) < header+int(length) {
		return nil, errors.New("journal: snapshot truncated")
	}
	payload := b[header : header+int(length)]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, errors.New("journal: snapshot checksum mismatch")
	}
	return payload, nil
}

// replayLog reads every intact record from the log at path. A torn tail
// — truncated header, truncated payload, zero length, absurd length, or
// CRC mismatch — ends replay and is physically truncated away so the
// next append starts on a clean boundary. A missing log is simply empty.
func (j *Journal) replayLog(path string, maxRecord int64) (records [][]byte, truncated int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: read log: %w", err)
	}
	off := 0
	for {
		if len(b)-off < recHeaderLen {
			break
		}
		length := binary.BigEndian.Uint32(b[off:])
		wantCRC := binary.BigEndian.Uint32(b[off+4:])
		if length == 0 || int64(length) > maxRecord || len(b)-off-recHeaderLen < int(length) {
			break
		}
		payload := b[off+recHeaderLen : off+recHeaderLen+int(length)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		records = append(records, append([]byte(nil), payload...))
		off += recHeaderLen + int(length)
	}
	if off < len(b) {
		truncated = int64(len(b) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, 0, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	return records, truncated, nil
}

// removeStaleFiles deletes snapshots and logs of other generations
// (best effort — leftovers are harmless and retried next open).
func (j *Journal) removeStaleFiles(keep uint64) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var g uint64
		switch {
		case scanGen(e.Name(), "snapshot.%d.snap", &g), scanGen(e.Name(), "journal.%d.log", &g):
			if g != keep {
				os.Remove(filepath.Join(j.dir, e.Name()))
			}
		case filepath.Ext(e.Name()) == ".tmp":
			os.Remove(filepath.Join(j.dir, e.Name()))
		}
	}
}

func scanGen(name, pattern string, g *uint64) bool {
	n, _ := fmt.Sscanf(name, pattern, g)
	// Sscanf accepts prefixes; require the reconstruction to match so
	// "snapshot.3.snap.bak" is not mistaken for generation 3.
	return n == 1 && fmt.Sprintf(pattern, *g) == name
}

// Append adds one record to the log, fsyncing per the SyncEvery policy.
func (j *Journal) Append(rec []byte) error {
	start := time.Now()
	err := j.append(rec)
	if err != nil {
		mJournalErrors.Inc()
	} else {
		mAppendLatency.ObserveDuration(time.Since(start))
	}
	return err
}

func (j *Journal) append(rec []byte) error {
	if int64(len(rec)) > j.cfg.MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds limit %d", len(rec), j.cfg.MaxRecordBytes)
	}
	if len(rec) == 0 {
		return errors.New("journal: empty record")
	}
	frame := make([]byte, recHeaderLen+len(rec))
	binary.BigEndian.PutUint32(frame, uint32(len(rec)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(rec))
	copy(frame[recHeaderLen:], rec)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	j.stats.Appends++
	j.stats.LogBytes = j.size
	j.unsynced++
	if j.cfg.SyncEvery > 0 && j.unsynced >= j.cfg.SyncEvery {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
		j.unsynced = 0
		j.stats.Syncs++
	}
	return nil
}

// Snapshot atomically writes the full state as generation G+1 and
// starts a fresh empty log for it, retiring generation G's files. After
// a crash at any point, Open recovers either the old generation intact
// or the new one — never a mix.
func (j *Journal) Snapshot(state []byte) error {
	start := time.Now()
	err := j.snapshot(state)
	if err != nil {
		mJournalErrors.Inc()
	} else {
		mSnapshotLatency.ObserveDuration(time.Since(start))
	}
	return err
}

func (j *Journal) snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	next := j.gen + 1

	header := make([]byte, 0, len(snapMagic)+12)
	header = append(header, snapMagic...)
	header = binary.BigEndian.AppendUint32(header, snapVersion)
	header = binary.BigEndian.AppendUint32(header, uint32(len(state)))
	header = binary.BigEndian.AppendUint32(header, crc32.ChecksumIEEE(state))

	tmp, err := os.CreateTemp(j.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(e error) error { tmp.Close(); os.Remove(tmpName); return e }
	if _, err := tmp.Write(header); err != nil {
		return cleanup(fmt.Errorf("journal: snapshot write: %w", err))
	}
	if _, err := tmp.Write(state); err != nil {
		return cleanup(fmt.Errorf("journal: snapshot write: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("journal: snapshot sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, j.snapPath(next)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: snapshot commit: %w", err)
	}

	newLog, err := os.OpenFile(j.logPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: new log: %w", err)
	}
	old := j.f
	oldGen := j.gen
	j.f = newLog
	j.gen = next
	j.size = 0
	j.unsynced = 0
	j.stats.Generation = next
	j.stats.Snapshots++
	j.stats.LogBytes = 0
	if old != nil {
		old.Close()
	}
	os.Remove(j.logPath(oldGen))
	os.Remove(j.snapPath(oldGen))
	syncDir(j.dir)
	return nil
}

// syncDir fsyncs a directory so renames and removals are durable
// (best effort; some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// NeedsCompaction reports whether the log has outgrown CompactBytes and
// the owner should write a snapshot.
func (j *Journal) NeedsCompaction() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size >= j.cfg.CompactBytes
}

// Incarnation returns the directory's restart counter (1 on first run).
func (j *Journal) Incarnation() uint64 { return j.incarnation }

// Stats returns a snapshot of the counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Dir returns the state directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs and closes the log. Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
