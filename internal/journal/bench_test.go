package journal

import (
	"testing"
)

// benchmarkAppend measures one record append at the given fsync policy.
func benchmarkAppend(b *testing.B, syncEvery int) {
	j, _, err := Open(b.TempDir(), Config{SyncEvery: syncEvery})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := make([]byte, 256)
	for i := range rec {
		rec[i] = byte(i)
	}
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJournalAppend(b *testing.B)       { benchmarkAppend(b, 1) }
func BenchmarkJournalAppendNoSync(b *testing.B) { benchmarkAppend(b, -1) }
