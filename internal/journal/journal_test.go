package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, cfg Config) (*Journal, State) {
	t.Helper()
	j, state, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, state
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, state := mustOpen(t, dir, Config{})
	if state.Snapshot != nil || len(state.Records) != 0 {
		t.Fatalf("fresh dir state = %+v", state)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%d", i))
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	j.Close()

	_, state2 := mustOpen(t, dir, Config{})
	if len(state2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(state2.Records), len(want))
	}
	for i, rec := range state2.Records {
		if !bytes.Equal(rec, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec, want[i])
		}
	}
}

func TestIncarnationCounts(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 3; want++ {
		j, state, err := Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if state.Incarnation != want || j.Incarnation() != want {
			t.Fatalf("incarnation = %d/%d, want %d", state.Incarnation, j.Incarnation(), want)
		}
		j.Close()
	}
}

func TestSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Config{})
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("the-state")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, state := mustOpen(t, dir, Config{})
	if string(state.Snapshot) != "the-state" {
		t.Fatalf("snapshot = %q", state.Snapshot)
	}
	if len(state.Records) != 1 || string(state.Records[0]) != "post" {
		t.Fatalf("records = %q, want just the post-snapshot one", state.Records)
	}
	// Old generation files must be gone.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() == "journal.0.log" || e.Name() == "snapshot.0.snap" {
			t.Fatalf("stale generation file %s survived compaction", e.Name())
		}
	}
}

func TestNeedsCompaction(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Config{CompactBytes: 64})
	if j.NeedsCompaction() {
		t.Fatal("empty log wants compaction")
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if !j.NeedsCompaction() {
		t.Fatal("log past CompactBytes does not want compaction")
	}
	if err := j.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	if j.NeedsCompaction() {
		t.Fatal("fresh post-snapshot log wants compaction")
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Config{})
	if err := j.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("after-good")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A later snapshot generation that is corrupt on disk must be
	// ignored in favour of the older intact one.
	if err := os.WriteFile(filepath.Join(dir, "snapshot.9.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, state := mustOpen(t, dir, Config{})
	if string(state.Snapshot) != "good" {
		t.Fatalf("snapshot = %q, want fallback to the intact generation", state.Snapshot)
	}
	if len(state.Records) != 1 || string(state.Records[0]) != "after-good" {
		t.Fatalf("records = %q", state.Records)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Config{})
	j.Close()
	if err := j.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := j.Snapshot(nil); err != ErrClosed {
		t.Fatalf("snapshot after close = %v, want ErrClosed", err)
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Config{})
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	s := j.Stats()
	if s.Appends != 4 || s.Snapshots != 1 || s.Generation != 1 || s.Incarnation != 1 {
		t.Fatalf("stats = %+v", s)
	}
	j.Close()
	j2, _ := mustOpen(t, dir, Config{})
	s2 := j2.Stats()
	if s2.ReplayedRecords != 1 || !s2.SnapshotRestored || s2.Incarnation != 2 {
		t.Fatalf("reopened stats = %+v", s2)
	}
}

// TestReplayTruncationFuzz cuts the log at every byte offset and
// requires recovery to succeed cleanly, yielding an exact prefix of the
// appended records — the torn-tail guarantee, exhaustively.
func TestReplayTruncationFuzz(t *testing.T) {
	master := t.TempDir()
	j, _ := mustOpen(t, master, Config{})
	var want [][]byte
	for i := 0; i < 8; i++ {
		rec := []byte(fmt.Sprintf("fuzz-record-%d-%s", i, string(make([]byte, i*3))))
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	j.Close()
	logBytes, err := os.ReadFile(filepath.Join(master, "journal.0.log"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(logBytes); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.0.log"), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, state, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("cut at %d: recovery errored: %v", cut, err)
		}
		// The recovered records must be an exact prefix of the originals.
		if len(state.Records) > len(want) {
			t.Fatalf("cut at %d: %d records recovered, only %d written", cut, len(state.Records), len(want))
		}
		for i, rec := range state.Records {
			if !bytes.Equal(rec, want[i]) {
				t.Fatalf("cut at %d: record %d = %q, want %q", cut, i, rec, want[i])
			}
		}
		// The journal must be append-ready on the truncated boundary:
		// a new record lands after the surviving prefix.
		if err := j2.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		j2.Close()
		_, state3, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("cut at %d: second recovery: %v", cut, err)
		}
		if n := len(state3.Records); n != len(state.Records)+1 {
			t.Fatalf("cut at %d: %d records after append, want %d", cut, n, len(state.Records)+1)
		}
		if got := state3.Records[len(state3.Records)-1]; string(got) != "appended-after-recovery" {
			t.Fatalf("cut at %d: tail record = %q", cut, got)
		}
	}
}

// TestCorruptMiddleRecordTruncates flips a byte inside an early record:
// everything from the damaged record on is discarded, everything before
// it survives.
func TestCorruptMiddleRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Config{})
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, "journal.0.log")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0 occupies recHeaderLen+8 bytes; damage record 1's payload.
	b[(recHeaderLen+8)+recHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, state := mustOpen(t, dir, Config{})
	if len(state.Records) != 1 || string(state.Records[0]) != "record-0" {
		t.Fatalf("records = %q, want just the intact prefix", state.Records)
	}
}

func TestZeroLengthRunIsTornTail(t *testing.T) {
	// A preallocated-but-unwritten region (all zero bytes) must read as
	// a torn tail, not as an endless stream of empty records.
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Config{})
	if err := j.Append([]byte("real")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, "journal.0.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, state := mustOpen(t, dir, Config{})
	if len(state.Records) != 1 || string(state.Records[0]) != "real" {
		t.Fatalf("records = %q", state.Records)
	}
}
