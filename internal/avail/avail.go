// Package avail models workstation owner activity for the month-scale
// simulation: the substitute for the paper's 23 real VAXstation owners.
//
// The model is a per-machine alternating (owner-active / idle) renewal
// process with three properties the paper and its reference [1] ("
// Profiling Workstations' Available Capacity for Remote Execution")
// report:
//
//   - Mean local utilization around 25% over a month, with ≈75% of
//     machine-hours available for remote execution (§3, Figure 5).
//   - A diurnal and weekly shape: activity peaks around 50% on weekday
//     afternoons and falls to ≈20% at night and on weekends (Figure 6).
//   - Per-machine persistence: some machines have long available
//     intervals and tend to stay that way, others churn — "workstations
//     with long available intervals tend to have their next available
//     interval long" (§5.1). This is captured by fixed per-machine
//     classes with very different idle-interval means, plus
//     hyperexponential idle lengths mixing short and very long
//     intervals.
package avail

import (
	"time"

	"condor/internal/sim"
)

// Class is a machine's usage personality.
type Class struct {
	// Name labels the class.
	Name string
	// IdleMean is the mean idle-interval length at factor 1.
	IdleMean time.Duration
	// ActiveMean is the mean owner-active interval length at factor 1.
	ActiveMean time.Duration
	// LongIdleShare is the probability an idle interval is drawn from
	// the "very long" phase of the hyperexponential (3× the mean) rather
	// than the short phase.
	LongIdleShare float64
}

// DefaultClasses returns the three machine personalities used for the
// 23-station reproduction. The mix is calibrated so the pool's mean
// local utilization lands near the paper's 25%.
func DefaultClasses() []Class {
	return []Class{
		{Name: "stable", IdleMean: 7 * time.Hour, ActiveMean: 40 * time.Minute, LongIdleShare: 0.5},
		{Name: "normal", IdleMean: 75 * time.Minute, ActiveMean: 45 * time.Minute, LongIdleShare: 0.35},
		{Name: "busy", IdleMean: 28 * time.Minute, ActiveMean: 45 * time.Minute, LongIdleShare: 0.2},
	}
}

// ClassFor assigns the i-th machine of n to a class, deterministic and
// roughly 30% stable / 45% normal / 25% busy.
func ClassFor(classes []Class, i, n int) Class {
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	if n <= 0 {
		n = 1
	}
	frac := float64(i) / float64(n)
	switch {
	case frac < 0.30:
		return classes[0]
	case frac < 0.75:
		return classes[1%len(classes)]
	default:
		return classes[2%len(classes)]
	}
}

// ActivityFactor returns the relative owner-activity level at t: >1 in
// weekday working hours, <1 at night and on weekends. It multiplies the
// hazard of becoming active and divides the length of idle intervals.
func ActivityFactor(t time.Time) float64 {
	hour := t.Hour()
	weekday := t.Weekday()
	weekend := weekday == time.Saturday || weekday == time.Sunday
	var base float64
	switch {
	case hour >= 9 && hour < 12:
		base = 2.5
	case hour >= 12 && hour < 14:
		base = 2.1
	case hour >= 14 && hour < 18:
		base = 2.75
	case hour >= 18 && hour < 23:
		base = 1.0
	default: // 23:00–09:00
		base = 0.38
	}
	if weekend {
		base *= 0.35
	}
	return base
}

// Machine generates one workstation's owner-activity intervals.
type Machine struct {
	// Name is the workstation name.
	Name string
	// Class is its personality.
	Class Class

	rng *sim.RNG
}

// NewMachine creates a machine with its own random stream.
func NewMachine(name string, class Class, rng *sim.RNG) *Machine {
	return &Machine{Name: name, Class: class, rng: rng}
}

// activeFrac returns the class's target active fraction at time t: the
// base fraction implied by the class means, scaled by the diurnal factor
// and clamped to [6%, 90%].
func (m *Machine) activeFrac(t time.Time) float64 {
	base := float64(m.Class.ActiveMean) / float64(m.Class.ActiveMean+m.Class.IdleMean)
	p := base * ActivityFactor(t)
	if p < 0.06 {
		p = 0.06
	}
	if p > 0.90 {
		p = 0.90
	}
	return p
}

// NextIdle draws the length of an idle interval starting at now. The
// mean is chosen so the process's long-run active fraction tracks
// activeFrac(now); the hyperexponential mixes short intervals with very
// long ones (3× the mean), matching ref [1]'s observation that available
// intervals are often very long.
func (m *Machine) NextIdle(now time.Time) time.Duration {
	p := m.activeFrac(now)
	mean := float64(m.Class.ActiveMean) * (1 - p) / p
	// Mixture with overall mean preserved: short phase 0.4×, long phase
	// weighted to compensate.
	share := m.Class.LongIdleShare
	short := mean * 0.4
	long := mean
	if share > 0 {
		long = (mean - (1-share)*short) / share
	}
	d := m.rng.HyperExp(1-share,
		short/float64(time.Hour), long/float64(time.Hour))
	return clampInterval(time.Duration(d * float64(time.Hour)))
}

// NextActive draws the length of an owner-active interval starting now.
func (m *Machine) NextActive(now time.Time) time.Duration {
	d := m.rng.Exp(float64(m.Class.ActiveMean) / float64(time.Hour))
	return clampInterval(time.Duration(d * float64(time.Hour)))
}

// clampInterval keeps intervals in a sane range: at least one minute (the
// paper's monitors cannot resolve less) and at most two days.
func clampInterval(d time.Duration) time.Duration {
	const (
		lo = time.Minute
		hi = 48 * time.Hour
	)
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Trace is a precomputed activity schedule for one machine: the times at
// which the owner state flips, starting from idle at start.
type Trace struct {
	Name string
	// Flips are the instants the owner state toggles. State before
	// Flips[0] is idle; it alternates from there.
	Flips []time.Time
}

// GenerateTrace rolls the process forward from start to end.
func (m *Machine) GenerateTrace(start, end time.Time) Trace {
	tr := Trace{Name: m.Name}
	now := start
	idle := true
	for now.Before(end) {
		var d time.Duration
		if idle {
			d = m.NextIdle(now)
		} else {
			d = m.NextActive(now)
		}
		now = now.Add(d)
		if now.Before(end) {
			tr.Flips = append(tr.Flips, now)
		}
		idle = !idle
	}
	return tr
}

// ActiveAt reports the owner state at t (false = idle).
func (tr Trace) ActiveAt(t time.Time) bool {
	active := false
	for _, flip := range tr.Flips {
		if flip.After(t) {
			break
		}
		active = !active
	}
	return active
}

// ActiveFraction integrates the trace's active share over [start, end).
func (tr Trace) ActiveFraction(start, end time.Time) float64 {
	if !end.After(start) {
		return 0
	}
	total := end.Sub(start)
	var active time.Duration
	cur := start
	on := false
	for _, flip := range tr.Flips {
		if !flip.After(start) {
			on = !on
			continue
		}
		if flip.After(end) {
			break
		}
		if on {
			active += flip.Sub(cur)
		}
		cur = flip
		on = !on
	}
	if on {
		active += end.Sub(cur)
	}
	return float64(active) / float64(total)
}
