package avail

import (
	"fmt"
	"testing"
	"time"

	"condor/internal/sim"
)

var monthStart = time.Date(1987, time.November, 2, 0, 0, 0, 0, time.UTC) // a Monday

func TestActivityFactorShape(t *testing.T) {
	afternoon := time.Date(1987, 11, 4, 15, 0, 0, 0, time.UTC) // Wednesday 15:00
	night := time.Date(1987, 11, 4, 3, 0, 0, 0, time.UTC)
	saturday := time.Date(1987, 11, 7, 15, 0, 0, 0, time.UTC)
	if ActivityFactor(afternoon) <= ActivityFactor(night) {
		t.Fatal("weekday afternoon must be busier than night")
	}
	if ActivityFactor(saturday) >= ActivityFactor(afternoon) {
		t.Fatal("weekend must be quieter than weekday afternoon")
	}
	if ActivityFactor(night) <= 0 {
		t.Fatal("factor must stay positive")
	}
}

func TestPoolActiveFractionNearPaper(t *testing.T) {
	// 23 machines over 30 days: mean local utilization should land near
	// the paper's 25% (±10 points — it is a stochastic model).
	rng := sim.NewRNG(42)
	end := monthStart.Add(30 * 24 * time.Hour)
	total := 0.0
	const n = 23
	for i := 0; i < n; i++ {
		m := NewMachine(fmt.Sprintf("ws%02d", i), ClassFor(nil, i, n), rng.Derive())
		tr := m.GenerateTrace(monthStart, end)
		total += tr.ActiveFraction(monthStart, end)
	}
	mean := total / n
	if mean < 0.15 || mean > 0.35 {
		t.Fatalf("pool mean active fraction = %.3f, want ≈0.25", mean)
	}
}

func TestDiurnalShapeInTraces(t *testing.T) {
	// Aggregate weekday-afternoon activity must exceed night activity.
	rng := sim.NewRNG(7)
	end := monthStart.Add(28 * 24 * time.Hour)
	var afternoon, night float64
	var samples int
	const n = 23
	for i := 0; i < n; i++ {
		m := NewMachine(fmt.Sprintf("ws%02d", i), ClassFor(nil, i, n), rng.Derive())
		tr := m.GenerateTrace(monthStart, end)
		for day := 0; day < 28; day++ {
			dayStart := monthStart.Add(time.Duration(day) * 24 * time.Hour)
			if wd := dayStart.Weekday(); wd == time.Saturday || wd == time.Sunday {
				continue
			}
			afternoon += tr.ActiveFraction(dayStart.Add(14*time.Hour), dayStart.Add(18*time.Hour))
			night += tr.ActiveFraction(dayStart.Add(1*time.Hour), dayStart.Add(6*time.Hour))
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("no weekday samples")
	}
	if afternoon <= night*1.5 {
		t.Fatalf("afternoon activity %.3f not clearly above night %.3f", afternoon/float64(samples), night/float64(samples))
	}
}

func TestPersistenceClassesDiffer(t *testing.T) {
	rng := sim.NewRNG(3)
	classes := DefaultClasses()
	end := monthStart.Add(30 * 24 * time.Hour)
	stable := NewMachine("s", classes[0], rng.Derive()).GenerateTrace(monthStart, end)
	busy := NewMachine("b", classes[2], rng.Derive()).GenerateTrace(monthStart, end)
	// The busy machine flips state far more often.
	if len(busy.Flips) <= len(stable.Flips) {
		t.Fatalf("busy flips %d, stable flips %d — persistence classes indistinct",
			len(busy.Flips), len(stable.Flips))
	}
	if stable.ActiveFraction(monthStart, end) >= busy.ActiveFraction(monthStart, end) {
		t.Fatal("stable machine busier than busy machine")
	}
}

func TestTraceFlipsAreMonotonic(t *testing.T) {
	rng := sim.NewRNG(9)
	m := NewMachine("x", DefaultClasses()[1], rng)
	tr := m.GenerateTrace(monthStart, monthStart.Add(7*24*time.Hour))
	for i := 1; i < len(tr.Flips); i++ {
		if !tr.Flips[i].After(tr.Flips[i-1]) {
			t.Fatalf("flips not strictly increasing at %d", i)
		}
	}
}

func TestActiveAtAndFractionHandBuilt(t *testing.T) {
	base := monthStart
	tr := Trace{
		Name: "hand",
		// idle [0,1h), active [1h,2h), idle [2h,4h), active [4h,…)
		Flips: []time.Time{base.Add(1 * time.Hour), base.Add(2 * time.Hour), base.Add(4 * time.Hour)},
	}
	if tr.ActiveAt(base.Add(30 * time.Minute)) {
		t.Fatal("t=0.5h should be idle")
	}
	if !tr.ActiveAt(base.Add(90 * time.Minute)) {
		t.Fatal("t=1.5h should be active")
	}
	if tr.ActiveAt(base.Add(3 * time.Hour)) {
		t.Fatal("t=3h should be idle")
	}
	if !tr.ActiveAt(base.Add(5 * time.Hour)) {
		t.Fatal("t=5h should be active")
	}
	// Over [0, 5h): active during [1,2) and [4,5) = 2h of 5h.
	got := tr.ActiveFraction(base, base.Add(5*time.Hour))
	if got < 0.399 || got > 0.401 {
		t.Fatalf("fraction = %v, want 0.4", got)
	}
	// Window starting mid-active interval: [1.5h, 2.5h) → 0.5h active.
	got = tr.ActiveFraction(base.Add(90*time.Minute), base.Add(150*time.Minute))
	if got < 0.499 || got > 0.501 {
		t.Fatalf("mid-window fraction = %v, want 0.5", got)
	}
	if tr.ActiveFraction(base, base) != 0 {
		t.Fatal("empty window must be 0")
	}
}

func TestIntervalClamp(t *testing.T) {
	if clampInterval(0) != time.Minute {
		t.Fatal("lower clamp broken")
	}
	if clampInterval(100*24*time.Hour) != 48*time.Hour {
		t.Fatal("upper clamp broken")
	}
	if clampInterval(time.Hour) != time.Hour {
		t.Fatal("identity clamp broken")
	}
}

func TestClassForDeterministicMix(t *testing.T) {
	counts := map[string]int{}
	const n = 23
	for i := 0; i < n; i++ {
		counts[ClassFor(nil, i, n).Name]++
	}
	if counts["stable"] == 0 || counts["normal"] == 0 || counts["busy"] == 0 {
		t.Fatalf("class mix = %v, want all three present", counts)
	}
	if ClassFor(nil, 0, 0).Name == "" {
		t.Fatal("n=0 must not panic and must return a class")
	}
}

func TestTraceDeterministicFromSeed(t *testing.T) {
	mk := func() Trace {
		return NewMachine("x", DefaultClasses()[1], sim.NewRNG(123)).
			GenerateTrace(monthStart, monthStart.Add(7*24*time.Hour))
	}
	a, b := mk(), mk()
	if len(a.Flips) != len(b.Flips) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Flips {
		if !a.Flips[i].Equal(b.Flips[i]) {
			t.Fatalf("flip %d differs", i)
		}
	}
}
