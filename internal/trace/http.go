package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"condor/internal/telemetry"
)

// SpanJSON is the wire shape of one span on the /traces endpoint.
type SpanJSON struct {
	TraceID string            `json:"traceID"`
	SpanID  string            `json:"spanID"`
	Parent  string            `json:"parentID,omitempty"`
	Name    string            `json:"name"`
	Job     string            `json:"job,omitempty"`
	Station string            `json:"station,omitempty"`
	Start   time.Time         `json:"start"`
	DurUs   int64             `json:"durUs"`
	Err     string            `json:"err,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Page is the /traces response envelope.
type Page struct {
	Spans   []SpanJSON `json:"spans"`
	Total   uint64     `json:"total"`   // spans ever recorded
	Dropped uint64     `json:"dropped"` // spans lost to ring wraparound
}

// toJSON converts a recorded span to its exposition shape.
func toJSON(s Span) SpanJSON {
	out := SpanJSON{
		TraceID: s.TraceID.String(),
		SpanID:  s.SpanID.String(),
		Name:    s.Name,
		Job:     s.Job,
		Station: s.Station,
		Start:   s.Start,
		DurUs:   s.Duration().Microseconds(),
		Err:     s.Err,
	}
	if s.Parent.IsValid() {
		out.Parent = s.Parent.String()
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	return out
}

// PageFor snapshots the recorder into a Page, optionally filtered. A
// non-empty traceID keeps only that trace. A non-empty job keeps every
// trace that contains at least one span tagged with that job ID — so a
// job query returns the complete tree (grant spans from the coordinator
// included) even though not every span carries the job tag.
func (r *Recorder) PageFor(traceID, job string) Page {
	spans := r.Snapshot()
	if job != "" {
		keep := map[TraceID]bool{}
		for _, s := range spans {
			if s.Job == job {
				keep[s.TraceID] = true
			}
		}
		filtered := spans[:0]
		for _, s := range spans {
			if keep[s.TraceID] {
				filtered = append(filtered, s)
			}
		}
		spans = filtered
	}
	if traceID != "" {
		filtered := spans[:0]
		for _, s := range spans {
			if s.TraceID.String() == traceID {
				filtered = append(filtered, s)
			}
		}
		spans = filtered
	}
	p := Page{Spans: make([]SpanJSON, 0, len(spans)), Total: r.Total(), Dropped: r.Dropped()}
	for _, s := range spans {
		p.Spans = append(p.Spans, toJSON(s))
	}
	return p
}

// Handler serves the recorder as JSON. Query parameters:
//
//	?trace=<32 hex>  only spans of that trace
//	?job=<jobID>     all traces containing a span tagged with that job
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		page := r.PageFor(req.URL.Query().Get("trace"), req.URL.Query().Get("job"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page) //nolint:errcheck // client went away
	})
}

func init() {
	// Every daemon that starts telemetry.Serve gets /traces for free;
	// wire imports trace, so any binary speaking the protocol links this.
	telemetry.Handle("/traces", Handler(Default))
}

// --- waterfall rendering -----------------------------------------------

// waterfallWidth is the character width of the timeline bars.
const waterfallWidth = 48

// RenderWaterfall prints each trace in the page as an indented waterfall
// timeline: spans ordered parent-before-child (ties broken by start
// time), each with a bar scaled to the trace's total extent — the
// "where did the time go" view for one job.
func RenderWaterfall(p Page) string {
	if len(p.Spans) == 0 {
		return "no spans\n"
	}
	byTrace := map[string][]SpanJSON{}
	order := []string{}
	for _, s := range p.Spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	var b strings.Builder
	for _, tid := range order {
		renderTrace(&b, tid, byTrace[tid])
	}
	if p.Dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped by ring wraparound; timelines may be partial)\n", p.Dropped)
	}
	return b.String()
}

func renderTrace(b *strings.Builder, tid string, spans []SpanJSON) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	t0 := spans[0].Start
	tEnd := t0
	job := ""
	for _, s := range spans {
		if end := s.Start.Add(time.Duration(s.DurUs) * time.Microsecond); end.After(tEnd) {
			tEnd = end
		}
		if job == "" && s.Job != "" {
			job = s.Job
		}
	}
	total := tEnd.Sub(t0)
	if total <= 0 {
		total = time.Microsecond
	}
	fmt.Fprintf(b, "trace %s  job=%s  total=%s  spans=%d\n", tid, job, total.Round(time.Microsecond), len(spans))

	// Parent-before-child ordering via DFS over the span tree; orphans
	// (parent not in the page, e.g. sampled-out or dropped) rank as
	// roots.
	children := map[string][]int{}
	haveID := map[string]bool{}
	for _, s := range spans {
		haveID[s.SpanID] = true
	}
	roots := []int{}
	for i, s := range spans {
		if s.Parent != "" && haveID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := spans[idx]
		renderSpanLine(b, s, t0, total, depth)
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	b.WriteByte('\n')
}

func renderSpanLine(b *strings.Builder, s SpanJSON, t0 time.Time, total time.Duration, depth int) {
	offset := s.Start.Sub(t0)
	dur := time.Duration(s.DurUs) * time.Microsecond
	lead := int(int64(waterfallWidth) * int64(offset) / int64(total))
	width := int(int64(waterfallWidth) * int64(dur) / int64(total))
	if width < 1 {
		width = 1
	}
	if lead+width > waterfallWidth {
		lead = waterfallWidth - width
		if lead < 0 {
			lead = 0
		}
	}
	bar := strings.Repeat(" ", lead) + strings.Repeat("#", width) +
		strings.Repeat(" ", waterfallWidth-lead-width)
	label := strings.Repeat("  ", depth) + s.Name
	if s.Station != "" {
		label += "@" + s.Station
	}
	errMark := ""
	if s.Err != "" {
		errMark = "  ERR=" + s.Err
	}
	fmt.Fprintf(b, "  %-28s |%s| +%-10s %s%s\n",
		label, bar, offset.Round(time.Microsecond), dur.Round(time.Microsecond), errMark)
}
