// Package trace is the pool's distributed-tracing layer: the causal
// counterpart of internal/telemetry's aggregates. Where /metrics answers
// "how long do remote syscalls take on average", a trace answers the
// ConGUSTo question — "where did *this* job spend its time" — as one
// ordered tree of spans spanning the submit, the coordinator's grant,
// the schedd's placement, the starter's execution slices, the shadow's
// per-syscall round trips, and every checkpoint/vacate/resume hop in
// between, across processes and machines.
//
// Design constraints, in priority order:
//
//  1. The sampled-out fast path is allocation-free and lock-free. A span
//     that head-based sampling rejects costs one branch; ActiveSpan is a
//     value type so the not-recording case never escapes to the heap.
//  2. Identifiers are W3C trace-context compatible: 16-byte trace IDs,
//     8-byte span IDs, carried on the wire as a standard `traceparent`
//     string ("00-<32 hex>-<16 hex>-<2 hex flags>") in an optional gob
//     field old peers silently ignore.
//  3. Recording is a lock-free bounded ring of atomic pointers. Writers
//     never block or allocate beyond the one span copy; under overflow
//     the oldest spans are overwritten and counted, never the newest.
//
// Sampling policy: rare, high-value events (submit, grant, place,
// preempt, vacate, checkpoint, fault, complete) are always sampled; only
// the per-slice guest syscall firehose is downsampled (first syscall of
// every execution always, then every Nth — see ru.StarterConfig).
package trace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"time"

	"condor/internal/telemetry"
)

// TraceID is a W3C-compatible 16-byte trace identifier.
type TraceID [16]byte

// SpanID is a W3C-compatible 8-byte span identifier.
type SpanID [8]byte

// IsValid reports whether the ID is non-zero (the all-zero ID is the
// W3C "absent" sentinel).
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the ID is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String renders the ID as lowercase hex.
func (t TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], t[:])
	return string(b[:])
}

// String renders the ID as lowercase hex.
func (s SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], s[:])
	return string(b[:])
}

// newTraceID returns a fresh random non-zero trace ID. math/rand/v2's
// global generator is lock-free and per-P chacha8, so ID minting never
// contends.
func newTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(hi >> (8 * (7 - i)))
			t[8+i] = byte(lo >> (8 * (7 - i)))
		}
	}
	return t
}

// NewSpanID mints a fresh random span ID, for callers that assemble
// Span values by hand (explicit Record of a span whose timing is only
// known after the fact, e.g. the coordinator's grant span).
func NewSpanID() SpanID { return newSpanID() }

// newSpanID returns a fresh random non-zero span ID.
func newSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * (7 - i)))
		}
	}
	return s
}

// SpanContext is the propagated identity of a span: what crosses process
// boundaries inside wire.Envelope.Trace. The zero value is "no trace".
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// traceparentLen is the exact length of a version-00 W3C traceparent:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex flags.
const traceparentLen = 55

// Traceparent renders the context as a W3C traceparent string, or ""
// for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52], b[53] = '-', '0'
	if sc.Sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceparent parses a version-00 traceparent. It is strict — any
// malformed, truncated, wrong-version, or all-zero-ID input returns
// ok=false rather than a partial context, so hostile wire input can
// never smuggle a half-valid identity into the recorder.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	if len(s) != traceparentLen {
		return SpanContext{}, false
	}
	if s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	switch s[53:] {
	case "00":
		sc.Sampled = false
	case "01":
		sc.Sampled = true
	default:
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Resume rebuilds a sampled context from a bare 32-hex trace ID (as
// persisted in ckpt.Meta.TraceID) with a fresh span ID. This is how a
// job's trace identity survives checkpoint files, schedd restarts, and
// migration to stations that never saw the original envelope.
func Resume(traceIDHex string) (SpanContext, bool) {
	var t TraceID
	if len(traceIDHex) != 32 {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(t[:], []byte(traceIDHex)); err != nil || !t.IsValid() {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: t, SpanID: newSpanID(), Sampled: true}, true
}

// --- context plumbing --------------------------------------------------

type ctxKey struct{}

// ContextWith returns ctx carrying sc. An invalid sc returns ctx
// unchanged, so callers can chain without branching.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context from ctx (zero if absent).
func FromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// --- spans -------------------------------------------------------------

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one finished operation in a trace. Spans are immutable once
// recorded; the recorder stores pointers to private copies.
type Span struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID // zero for root spans
	Name    string // operation, e.g. "submit", "grant", "syscall"
	Job     string // job ID when the span belongs to one
	Station string // station/host that produced the span
	Start   time.Time
	End     time.Time
	Err     string
	Attrs   []Attr
}

// Duration is the span's wall-clock extent.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

var (
	mSpansRecorded = telemetry.NewCounter("condor_trace_spans_recorded_total",
		"Spans finished and written into the in-process ring buffer.")
	mSpansDropped = telemetry.NewCounter("condor_trace_spans_dropped_total",
		"Old spans overwritten by ring-buffer wraparound before being scraped.")
)

// Recorder is a lock-free bounded ring of finished spans. Writers claim
// a slot with one atomic add and publish with one pointer swap; readers
// snapshot without blocking writers. When the ring wraps, the oldest
// span is overwritten and counted as dropped.
type Recorder struct {
	slots   []atomic.Pointer[Span]
	next    atomic.Uint64
	dropped atomic.Uint64
}

// DefaultCapacity is the span capacity of the package-level Default
// recorder: enough for thousands of complete job traces between scrapes
// at a few hundred bytes per span.
const DefaultCapacity = 4096

// Default is the process-wide recorder; the /traces endpoint serves it.
var Default = NewRecorder(DefaultCapacity)

// NewRecorder creates a recorder holding up to capacity spans.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Span], capacity)}
}

// record publishes a finished span copy into the ring.
func (r *Recorder) record(sp *Span) {
	i := r.next.Add(1) - 1
	if prev := r.slots[i%uint64(len(r.slots))].Swap(sp); prev != nil {
		r.dropped.Add(1)
		mSpansDropped.Inc()
	}
	mSpansRecorded.Inc()
}

// Record stores an explicit after-the-fact span (used where the caller
// measures the operation itself, e.g. the coordinator's grant loop).
// Invalid spans (zero trace or span ID) are ignored.
func (r *Recorder) Record(sp Span) {
	if !sp.TraceID.IsValid() || !sp.SpanID.IsValid() {
		return
	}
	c := sp
	r.record(&c)
}

// Record stores sp in the Default recorder.
func Record(sp Span) { Default.Record(sp) }

// Total returns how many spans have ever been recorded.
func (r *Recorder) Total() uint64 { return r.next.Load() }

// Dropped returns how many spans were overwritten before being read.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Snapshot copies the currently retained spans, oldest first by start
// time. It is a point-in-time read: concurrent writers may replace slots
// mid-scan, which yields a mix of old and new spans but never a torn
// span (slots hold immutable copies behind atomic pointers).
func (r *Recorder) Snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if sp := r.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// --- active spans ------------------------------------------------------

// ActiveSpan is an in-flight span. It is a value type: the sampled-out
// case is the zero value, which makes every method a no-op and — because
// the value never escapes — costs zero heap allocations. Finish copies
// the span into the recorder; an ActiveSpan must not be used after
// Finish.
type ActiveSpan struct {
	rec  *Recorder
	span Span
}

// Recording reports whether this span was sampled in.
func (a *ActiveSpan) Recording() bool { return a.rec != nil }

// Context returns the span's propagable identity (zero if sampled out).
func (a *ActiveSpan) Context() SpanContext {
	if a.rec == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.span.TraceID, SpanID: a.span.SpanID, Sampled: true}
}

// SetJob annotates the span with a job ID.
func (a *ActiveSpan) SetJob(job string) {
	if a.rec != nil {
		a.span.Job = job
	}
}

// SetStation annotates the span with the producing station.
func (a *ActiveSpan) SetStation(station string) {
	if a.rec != nil {
		a.span.Station = station
	}
}

// SetAttr appends one key/value annotation.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a.rec != nil {
		a.span.Attrs = append(a.span.Attrs, Attr{Key: k, Value: v})
	}
}

// SetError records err's message on the span (nil is a no-op).
func (a *ActiveSpan) SetError(err error) {
	if a.rec != nil && err != nil {
		a.span.Err = err.Error()
	}
}

// Finish stamps the end time and publishes the span. Safe to call on a
// sampled-out (zero) ActiveSpan and idempotent thereafter.
func (a *ActiveSpan) Finish() {
	if a.rec == nil {
		return
	}
	a.span.End = time.Now()
	sp := a.span
	a.rec.record(&sp)
	a.rec = nil
}

// StartRoot begins a new always-sampled trace rooted at name.
func (r *Recorder) StartRoot(name string) ActiveSpan {
	return ActiveSpan{rec: r, span: Span{
		TraceID: newTraceID(),
		SpanID:  newSpanID(),
		Name:    name,
		Start:   time.Now(),
	}}
}

// StartRoot begins a new trace in the Default recorder.
func StartRoot(name string) ActiveSpan { return Default.StartRoot(name) }

// StartChild begins a span under parent. A sampled-out parent yields a
// sampled-out child; an invalid parent starts a fresh root trace, so
// instrumentation keeps working when upstream context was lost (e.g. a
// peer predating trace propagation).
func (r *Recorder) StartChild(parent SpanContext, name string) ActiveSpan {
	if !parent.Valid() {
		return r.StartRoot(name)
	}
	if !parent.Sampled {
		return ActiveSpan{}
	}
	return ActiveSpan{rec: r, span: Span{
		TraceID: parent.TraceID,
		SpanID:  newSpanID(),
		Parent:  parent.SpanID,
		Name:    name,
		Start:   time.Now(),
	}}
}

// StartChild begins a child span in the Default recorder.
func StartChild(parent SpanContext, name string) ActiveSpan {
	return Default.StartChild(parent, name)
}

// StartChildIfSampled begins a child span only when parent is valid and
// sampled; otherwise it returns a no-op span. Use on receive paths where
// an absent upstream context means "this operation is not traced", not
// "start a fresh trace" — e.g. the shadow serving an unsampled syscall.
func (r *Recorder) StartChildIfSampled(parent SpanContext, name string) ActiveSpan {
	if !parent.Valid() || !parent.Sampled {
		return ActiveSpan{}
	}
	return r.StartChild(parent, name)
}

// StartChildIfSampled begins a conditional child in the Default recorder.
func StartChildIfSampled(parent SpanContext, name string) ActiveSpan {
	return Default.StartChildIfSampled(parent, name)
}

// StartNth is the head-sampled hot-path entry: it records occurrence n
// (1-based) only when the parent is sampled AND (n == 1 || n%every == 0).
// The first occurrence is always kept so every execution contributes at
// least one syscall span; the rest are downsampled. The rejected path is
// a branch and a return — no clock read, no allocation.
func (r *Recorder) StartNth(parent SpanContext, name string, n, every uint64) ActiveSpan {
	if !parent.Valid() || !parent.Sampled {
		return ActiveSpan{}
	}
	if n != 1 && (every == 0 || n%every != 0) {
		return ActiveSpan{}
	}
	return ActiveSpan{rec: r, span: Span{
		TraceID: parent.TraceID,
		SpanID:  newSpanID(),
		Parent:  parent.SpanID,
		Name:    name,
		Start:   time.Now(),
	}}
}

// StartNth samples occurrence n into the Default recorder.
func StartNth(parent SpanContext, name string, n, every uint64) ActiveSpan {
	return Default.StartNth(parent, name, n, every)
}
