package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sp := StartRoot("submit")
	sc := sp.Context()
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("root context = %+v, want valid sampled", sc)
	}
	tp := sc.Traceparent()
	if len(tp) != traceparentLen {
		t.Fatalf("traceparent %q has length %d, want %d", tp, len(tp), traceparentLen)
	}
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q missing version/flags framing", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v, true", tp, got, ok, sc)
	}
	sp.Finish()

	// Unsampled flag round-trips too.
	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip = %+v, %v", got, ok)
	}
}

func TestParseTraceparentRejectsHostileInput(t *testing.T) {
	seed := StartRoot("x")
	valid := seed.Context().Traceparent()
	seed.Finish()
	bad := []string{
		"",
		"00",
		valid[:54],                          // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // wrong version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:52] + "-01", // zero trace ID
		"00-" + valid[3:35] + "-" + strings.Repeat("0", 16) + "-01",  // zero span ID
		"00-" + strings.Repeat("g", 32) + "-" + valid[36:52] + "-01", // non-hex
		valid[:53] + "02", // unknown flags
		valid[:53] + "zz", // non-hex flags
	}
	for _, s := range bad {
		if sc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted hostile input: %+v", s, sc)
		}
	}
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("control: valid traceparent %q rejected", valid)
	}
}

func TestResume(t *testing.T) {
	root := StartRoot("submit")
	id := root.Context().TraceID.String()
	root.Finish()

	sc, ok := Resume(id)
	if !ok {
		t.Fatalf("Resume(%q) failed", id)
	}
	if sc.TraceID.String() != id {
		t.Errorf("Resume trace ID = %s, want %s", sc.TraceID, id)
	}
	if !sc.Sampled || !sc.SpanID.IsValid() {
		t.Errorf("Resume context = %+v, want sampled with fresh span ID", sc)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, ok := Resume(bad); ok {
			t.Errorf("Resume(%q) accepted invalid trace ID", bad)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	if sc := FromContext(context.Background()); sc.Valid() {
		t.Fatalf("empty context yielded %+v", sc)
	}
	sp := StartRoot("submit")
	ctx := ContextWith(context.Background(), sp.Context())
	if got := FromContext(ctx); got != sp.Context() {
		t.Fatalf("FromContext = %+v, want %+v", got, sp.Context())
	}
	// Invalid contexts don't clobber a valid one already present.
	ctx2 := ContextWith(ctx, SpanContext{})
	if got := FromContext(ctx2); got != sp.Context() {
		t.Fatalf("invalid ContextWith clobbered: %+v", got)
	}
	sp.Finish()
}

func TestChildAndNthSampling(t *testing.T) {
	rec := NewRecorder(64)
	root := rec.StartRoot("submit")
	rootCtx := root.Context()

	child := rec.StartChild(rootCtx, "place")
	if !child.Recording() {
		t.Fatal("child of sampled root not recording")
	}
	if got := child.Context(); got.TraceID != rootCtx.TraceID {
		t.Errorf("child trace ID = %s, want %s", got.TraceID, rootCtx.TraceID)
	}
	child.Finish()

	// Unsampled parent → sampled-out child, whose context is zero.
	unsampled := rootCtx
	unsampled.Sampled = false
	dead := rec.StartChild(unsampled, "x")
	if dead.Recording() || dead.Context().Valid() {
		t.Error("child of unsampled parent is recording")
	}
	dead.Finish() // must be a safe no-op
	dead.SetJob("j")
	dead.SetAttr("k", "v")

	// Invalid parent → fresh root, keeping instrumentation alive across
	// peers that don't propagate context.
	orphan := rec.StartChild(SpanContext{}, "exec")
	if !orphan.Recording() {
		t.Fatal("invalid parent should start a fresh root")
	}
	if orphan.Context().TraceID == rootCtx.TraceID {
		t.Error("orphan joined an existing trace")
	}
	orphan.Finish()

	// Nth sampling: first always, then every 4th.
	kept := 0
	for n := uint64(1); n <= 12; n++ {
		sp := rec.StartNth(rootCtx, "syscall", n, 4)
		if sp.Recording() {
			kept++
			sp.Finish()
		}
	}
	if kept != 4 { // n = 1, 4, 8, 12
		t.Errorf("StartNth kept %d of 12, want 4", kept)
	}
	if sp := rec.StartNth(SpanContext{}, "syscall", 1, 4); sp.Recording() {
		t.Error("StartNth recorded without a valid parent")
	}
	root.Finish()
}

func TestRecorderRingOverflowAndSnapshot(t *testing.T) {
	rec := NewRecorder(8)
	for i := 0; i < 20; i++ {
		sp := rec.StartRoot("op")
		sp.SetJob("ws0/1")
		sp.Finish()
	}
	if got := rec.Total(); got != 20 {
		t.Errorf("Total = %d, want 20", got)
	}
	if got := rec.Dropped(); got != 12 {
		t.Errorf("Dropped = %d, want 12", got)
	}
	spans := rec.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("Snapshot retained %d spans, want 8", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("Snapshot not ordered by start time")
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := rec.StartRoot("op")
				sp.SetAttr("i", "x")
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	if got := rec.Total(); got != 4000 {
		t.Errorf("Total = %d, want 4000", got)
	}
	if got := len(rec.Snapshot()); got != 128 {
		t.Errorf("Snapshot retained %d, want full ring of 128", got)
	}
}

func TestSampledOutPathAllocatesNothing(t *testing.T) {
	rec := NewRecorder(8)
	parent := SpanContext{}
	root := rec.StartRoot("r")
	sampled := root.Context()
	n := uint64(2)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.StartNth(sampled, "syscall", n, 64)
		sp.SetJob("j")
		sp.Finish()
		sp2 := rec.StartNth(parent, "syscall", 1, 64)
		sp2.Finish()
		n++
		if n%64 == 0 {
			n++ // stay on the sampled-out path
		}
	})
	if allocs != 0 {
		t.Errorf("sampled-out span path allocates %v per run, want 0", allocs)
	}
	root.Finish()
}

func TestExplicitRecord(t *testing.T) {
	rec := NewRecorder(8)
	root := rec.StartRoot("submit")
	sc := root.Context()
	now := time.Now()
	rec.Record(Span{
		TraceID: sc.TraceID,
		SpanID:  newSpanID(),
		Parent:  sc.SpanID,
		Name:    "grant",
		Station: "coord",
		Start:   now.Add(-time.Millisecond),
		End:     now,
		Attrs:   []Attr{{Key: "incarnation", Value: "3"}},
	})
	rec.Record(Span{Name: "invalid"}) // zero IDs must be ignored
	spans := rec.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1 (invalid dropped)", len(spans))
	}
	if spans[0].Name != "grant" || spans[0].Parent != sc.SpanID {
		t.Fatalf("recorded span = %+v", spans[0])
	}
	root.Finish()
}

func TestHandlerFiltersAndWaterfall(t *testing.T) {
	rec := NewRecorder(64)

	root := rec.StartRoot("submit")
	root.SetJob("ws0/1")
	root.SetStation("ws0")
	rootCtx := root.Context()
	place := rec.StartChild(rootCtx, "place")
	place.SetStation("ws1")
	time.Sleep(2 * time.Millisecond)
	exec := rec.StartChild(place.Context(), "exec")
	exec.SetStation("ws1")
	exec.SetAttr("seq", "0")
	time.Sleep(time.Millisecond)
	exec.Finish()
	place.Finish()
	root.Finish()

	other := rec.StartRoot("submit")
	other.SetJob("ws2/9")
	other.Finish()

	srv := httptest.NewServer(Handler(rec))
	defer srv.Close()

	get := func(q string) Page {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		var p Page
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	all := get("")
	if len(all.Spans) != 4 || all.Total != 4 {
		t.Fatalf("unfiltered page: %d spans, total %d; want 4, 4", len(all.Spans), all.Total)
	}

	byJob := get("?job=ws0/1")
	if len(byJob.Spans) != 3 {
		t.Fatalf("job filter returned %d spans, want full trace of 3", len(byJob.Spans))
	}
	for _, s := range byJob.Spans {
		if s.TraceID != rootCtx.TraceID.String() {
			t.Errorf("job filter leaked trace %s", s.TraceID)
		}
	}

	byTrace := get("?trace=" + rootCtx.TraceID.String())
	if len(byTrace.Spans) != 3 {
		t.Fatalf("trace filter returned %d spans, want 3", len(byTrace.Spans))
	}

	// The waterfall renders parent-before-child with depth indentation.
	out := RenderWaterfall(byTrace)
	iSubmit := strings.Index(out, "submit@ws0")
	iPlace := strings.Index(out, "  place@ws1")
	iExec := strings.Index(out, "    exec@ws1")
	if iSubmit < 0 || iPlace < 0 || iExec < 0 {
		t.Fatalf("waterfall missing spans:\n%s", out)
	}
	if !(iSubmit < iPlace && iPlace < iExec) {
		t.Fatalf("waterfall not parent-before-child:\n%s", out)
	}
	if !strings.Contains(out, "job=ws0/1") {
		t.Fatalf("waterfall header missing job:\n%s", out)
	}
	if RenderWaterfall(Page{}) != "no spans\n" {
		t.Error("empty page waterfall")
	}
}
