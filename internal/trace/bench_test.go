package trace

import "testing"

// BenchmarkTraceSpan is the sampled hot path: start a child span,
// annotate it, and publish it into the ring. This is what every traced
// wire RPC pays.
func BenchmarkTraceSpan(b *testing.B) {
	rec := NewRecorder(4096)
	root := rec.StartRoot("bench")
	parent := root.Context()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := rec.StartChild(parent, "syscall")
		sp.SetJob("ws0/1")
		sp.Finish()
	}
	b.StopTimer()
	root.Finish()
}

// BenchmarkTraceSampledOut is the rejected head-sampling path — the cost
// every *untraced* guest syscall pays. The acceptance bar is 0 allocs/op
// (also asserted hard in TestSampledOutPathAllocatesNothing).
func BenchmarkTraceSampledOut(b *testing.B) {
	rec := NewRecorder(4096)
	root := rec.StartRoot("bench")
	parent := root.Context()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// n=2 with every=64 is never sampled; mirrors the executor's
		// per-syscall counter on its common path.
		sp := rec.StartNth(parent, "syscall", 2, 64)
		sp.SetJob("ws0/1")
		sp.Finish()
	}
	b.StopTimer()
	root.Finish()
}

// BenchmarkTraceparentParse measures extraction on the RPC receive path.
func BenchmarkTraceparentParse(b *testing.B) {
	rec := NewRecorder(16)
	root := rec.StartRoot("bench")
	tp := root.Context().Traceparent()
	root.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseTraceparent(tp); !ok {
			b.Fatal("parse failed")
		}
	}
}
