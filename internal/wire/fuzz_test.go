package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"
)

// byteConn is a net.Conn that reads from a fixed byte stream and
// discards writes — enough to drive Conn.Recv over arbitrary input.
type byteConn struct {
	r *bytes.Reader
}

func (c *byteConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *byteConn) Close() error                     { return nil }
func (c *byteConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (c *byteConn) RemoteAddr() net.Addr             { return fakeAddr{} }
func (c *byteConn) SetDeadline(time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(time.Time) error { return nil }

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// encodeFrame renders one valid envelope as its wire bytes.
func encodeFrame(t testing.TB, env Envelope) []byte {
	t.Helper()
	var sink bytes.Buffer
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(&sink, server)
	}()
	conn := NewConn(client)
	if err := conn.Send(env); err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done
	return sink.Bytes()
}

// FuzzFrameDecode feeds arbitrary byte streams to the frame decoder. It
// must never panic and never allocate eagerly on the strength of a
// hostile length prefix alone; any malformed input is just an error.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(encodeFrame(f, Envelope{ID: 1, Kind: KindRequest, Msg: pingMsg{}}))
	f.Add(encodeFrame(f, Envelope{ID: 7, Kind: KindReply, Err: "boom"}))
	// A 64 MB announcement with no payload behind it.
	huge := binary.BigEndian.AppendUint32(nil, MaxFrameBytes)
	f.Add(huge)
	// An over-limit announcement.
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrameBytes+1))
	// Trace-context seeds: a well-formed traceparent, hostile junk where
	// the traceparent belongs, an oversized one, and a valid frame
	// truncated mid-Trace-field. The decoder must treat Trace as opaque
	// bytes — never parse, never trust.
	valid := encodeFrame(f, Envelope{ID: 2, Kind: KindRequest, Msg: pingMsg{},
		Trace: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"})
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // truncated inside the trailing Trace string
	f.Add(encodeFrame(f, Envelope{ID: 3, Kind: KindOneWay, Msg: pingMsg{},
		Trace: "\x00\xff not a traceparent \xde\xad"}))
	f.Add(encodeFrame(f, Envelope{ID: 4, Kind: KindRequest, Msg: pingMsg{},
		Trace: string(bytes.Repeat([]byte{'a'}, 4096))}))

	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewConn(&byteConn{r: bytes.NewReader(data)})
		for {
			if _, err := conn.Recv(); err != nil {
				break
			}
		}
	})
}

// TestRecvHostileLengthPrefix pins the progressive-allocation defence:
// a peer announcing a near-maximum frame but delivering almost nothing
// must cost bounded memory, not MaxFrameBytes.
func TestRecvHostileLengthPrefix(t *testing.T) {
	const announced = MaxFrameBytes - 1
	data := binary.BigEndian.AppendUint32(nil, announced)
	data = append(data, make([]byte, 16)...) // a sliver of payload, then EOF

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	conn := NewConn(&byteConn{r: bytes.NewReader(data)})
	_, err := conn.Recv()
	runtime.ReadMemStats(&after)

	if err == nil {
		t.Fatal("Recv succeeded on a truncated frame")
	}
	if errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("announced %d bytes is within MaxFrameBytes; got %v", announced, err)
	}
	// The two-tier readPayload caps the eager buffer at
	// maxEagerFrameAlloc; allow generous slack for runtime noise.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 4*maxEagerFrameAlloc {
		t.Fatalf("Recv allocated %d bytes for a %d-byte announcement with 16 bytes delivered; want ≤ %d",
			grew, announced, 4*maxEagerFrameAlloc)
	}
}

// TestRecvOversizeAnnouncementRejected pins the hard limit.
func TestRecvOversizeAnnouncementRejected(t *testing.T) {
	data := binary.BigEndian.AppendUint32(nil, MaxFrameBytes+1)
	conn := NewConn(&byteConn{r: bytes.NewReader(data)})
	if _, err := conn.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}
