package wire

import (
	"context"
	"errors"
	"sync"
	"time"
)

// PoolConfig tunes a ClientPool.
type PoolConfig struct {
	// DialTimeout bounds one TCP connect (default 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds one Call when the caller's context carries no
	// deadline of its own (0 = no implicit bound).
	RPCTimeout time.Duration
	// WriteTimeout bounds each frame write on pooled connections
	// (default 30s; negative disables).
	WriteTimeout time.Duration
	// FrameTimeout bounds completing an inbound frame once started
	// (default 30s; negative disables).
	FrameTimeout time.Duration
	// IdleTimeout evicts connections unused this long (default 5m;
	// negative disables eviction).
	IdleTimeout time.Duration
	// Heartbeat enables liveness probing on pooled connections, so a
	// half-open peer is detected and redialed between calls (zero
	// interval disables; the per-frame deadlines still apply).
	Heartbeat Heartbeat
	// Retry is the CallRetry policy (zero value = Retry defaults).
	Retry Retry
	// Handler serves requests the remote side sends back over pooled
	// connections (nil = pure client).
	Handler Handler
}

func (c *PoolConfig) sanitize() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	if c.FrameTimeout == 0 {
		c.FrameTimeout = 30 * time.Second
	}
	if c.FrameTimeout < 0 {
		c.FrameTimeout = 0
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.IdleTimeout < 0 {
		c.IdleTimeout = 0
	}
}

// PoolStats counts a ClientPool's connection and retry activity.
type PoolStats struct {
	// Dials is how many fresh connections were opened.
	Dials uint64
	// Reuses is how many calls rode an already-cached connection.
	Reuses uint64
	// Reconnects is how many dials replaced a cached connection found
	// dead at use time.
	Reconnects uint64
	// Evictions is how many connections the janitor closed (idle or dead).
	Evictions uint64
	// Retries is how many extra attempts CallRetry made.
	Retries uint64
}

// poolEntry is one cached connection.
type poolEntry struct {
	peer     *Peer
	lastUsed time.Time
}

// ClientPool caches one live Peer per remote address, reconnecting
// transparently when a cached connection has died and evicting
// connections that sit idle. It exists for the coordinator's hot path —
// polling every station every cycle — where dialing fresh per RPC costs
// 3+ connects per station per cycle; pooled, a healthy station is dialed
// once and reused indefinitely.
type ClientPool struct {
	cfg PoolConfig

	mu    sync.Mutex
	conns map[string]*poolEntry
	// retired marks addresses whose cached connection died or was
	// invalidated, so the next successful dial counts as a reconnect.
	retired map[string]struct{}
	stats   PoolStats
	closed  bool

	stop        chan struct{}
	janitorDone chan struct{}
}

// NewClientPool creates a pool; Close releases its connections.
func NewClientPool(cfg PoolConfig) *ClientPool {
	cfg.sanitize()
	p := &ClientPool{
		cfg:         cfg,
		conns:       make(map[string]*poolEntry),
		retired:     make(map[string]struct{}),
		stop:        make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if cfg.IdleTimeout > 0 {
		go p.janitor()
	} else {
		close(p.janitorDone)
	}
	return p
}

// Get returns a live peer for addr, reusing the cached connection when
// healthy and dialing (or redialing) otherwise.
func (p *ClientPool) Get(addr string) (*Peer, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if e, ok := p.conns[addr]; ok {
		if e.peer.Dead() {
			delete(p.conns, addr)
			p.retired[addr] = struct{}{}
			go e.peer.Close()
		} else {
			e.lastUsed = time.Now()
			p.stats.Reuses++
			mPoolReuses.Inc()
			peer := e.peer
			p.mu.Unlock()
			return peer, nil
		}
	}
	p.mu.Unlock()

	peer, err := DialOpts(addr, DialOptions{
		Timeout:      p.cfg.DialTimeout,
		WriteTimeout: p.cfg.WriteTimeout,
		FrameTimeout: p.cfg.FrameTimeout,
		Heartbeat:    p.cfg.Heartbeat,
		Handler:      p.cfg.Handler,
	})
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		peer.Close()
		return nil, ErrClosed
	}
	if e, ok := p.conns[addr]; ok && !e.peer.Dead() {
		// Lost a dial race; keep the connection that won.
		e.lastUsed = time.Now()
		existing := e.peer
		p.mu.Unlock()
		go peer.Close()
		return existing, nil
	}
	p.stats.Dials++
	mPoolDials.Inc()
	if _, wasConnected := p.retired[addr]; wasConnected {
		p.stats.Reconnects++
		mPoolReconnects.Inc()
		delete(p.retired, addr)
	}
	p.conns[addr] = &poolEntry{peer: peer, lastUsed: time.Now()}
	p.mu.Unlock()
	return peer, nil
}

// Call issues one request to addr over the pooled connection, dialing or
// reconnecting as needed. Any failure other than a RemoteError drops the
// cached connection, so the next call starts from a fresh dial rather
// than reusing a suspect peer. The call itself is never retried — see
// CallRetry for idempotent requests.
func (p *ClientPool) Call(ctx context.Context, addr string, msg any) (any, error) {
	peer, err := p.Get(addr)
	if err != nil {
		return nil, err
	}
	if _, bounded := ctx.Deadline(); !bounded && p.cfg.RPCTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.RPCTimeout)
		defer cancel()
	}
	reply, err := peer.Call(ctx, msg)
	if err != nil {
		var remote *RemoteError
		if !errors.As(err, &remote) {
			p.invalidate(addr, peer)
		}
	}
	return reply, err
}

// CallRetry is Call under the pool's Retry policy: transient transport
// failures are retried with backoff against a freshly dialed connection.
// Only use it for idempotent requests (polls, registrations, preempts) —
// a request whose reply was lost in flight will execute again.
func (p *ClientPool) CallRetry(ctx context.Context, addr string, msg any) (any, error) {
	var reply any
	attempt := 0
	err := p.cfg.Retry.Do(ctx, func() error {
		attempt++
		if attempt > 1 {
			p.mu.Lock()
			p.stats.Retries++
			p.mu.Unlock()
			mPoolRetries.Inc()
		}
		var err error
		reply, err = p.Call(ctx, addr, msg)
		return err
	})
	return reply, err
}

// Invalidate drops addr's cached connection (if any), e.g. because the
// station re-registered at a different address.
func (p *ClientPool) Invalidate(addr string) { p.invalidate(addr, nil) }

// invalidate drops addr's cached connection when it is still peer (or
// unconditionally when peer is nil).
func (p *ClientPool) invalidate(addr string, peer *Peer) {
	p.mu.Lock()
	if e, ok := p.conns[addr]; ok && (peer == nil || e.peer == peer) {
		delete(p.conns, addr)
		p.retired[addr] = struct{}{}
		go e.peer.Close()
	}
	p.mu.Unlock()
}

// Size reports how many connections are currently cached.
func (p *ClientPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Stats returns a snapshot of the counters.
func (p *ClientPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close evicts every connection and fails subsequent calls.
func (p *ClientPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	peers := make([]*Peer, 0, len(p.conns))
	for _, e := range p.conns {
		peers = append(peers, e.peer)
	}
	p.conns = make(map[string]*poolEntry)
	p.mu.Unlock()
	close(p.stop)
	<-p.janitorDone
	for _, peer := range peers {
		peer.Close()
	}
}

// janitor evicts idle and dead connections on a fraction of IdleTimeout.
func (p *ClientPool) janitor() {
	defer close(p.janitorDone)
	interval := p.cfg.IdleTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.evictIdle(time.Now())
		}
	}
}

func (p *ClientPool) evictIdle(now time.Time) {
	p.mu.Lock()
	var victims []*Peer
	for addr, e := range p.conns {
		if e.peer.Dead() || now.Sub(e.lastUsed) > p.cfg.IdleTimeout {
			delete(p.conns, addr)
			if e.peer.Dead() {
				p.retired[addr] = struct{}{}
			}
			victims = append(victims, e.peer)
			p.stats.Evictions++
			mPoolEvictions.Inc()
		}
	}
	p.mu.Unlock()
	for _, peer := range victims {
		peer.Close()
	}
}
