package wire

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrFaultReset is the failure a FaultConn injects for reset/drop plans.
var ErrFaultReset = errors.New("wire: faultconn: connection reset")

// FaultPlan scripts the failures a FaultConn injects. The zero value
// injects nothing (transparent pass-through).
type FaultPlan struct {
	// StallWrites blocks every Write until the write deadline expires
	// (or forever if none is set), modelling a peer that has stopped
	// draining its socket.
	StallWrites bool
	// StallReads blocks every Read until the read deadline expires (or
	// forever), modelling a black-holed peer that never sends.
	StallReads bool
	// WriteCap accepts at most this many bytes per Write call and fails
	// the remainder with a deadline error — a partial frame write that
	// leaves the stream desynchronized. 0 = unlimited.
	WriteCap int
	// DropAfterBytes severs the connection once this many total bytes
	// have been written through it — a mid-frame connection drop.
	// 0 = never.
	DropAfterBytes int64
	// Reset fails every operation immediately with ErrFaultReset,
	// closing the connection.
	Reset bool

	// LatencyMin/LatencyMax delay each Write by a uniform duration in
	// [min, max] — a slow or jittery link. Writes only, so a proxy
	// wrapping each direction separately can slow them independently.
	// Max ≤ 0 disables; max < min means fixed latency of min.
	LatencyMin time.Duration
	LatencyMax time.Duration
	// CorruptProb flips a few random bits in a Write's payload with this
	// probability per call (on a scratch copy — the caller's buffer is
	// never modified). The frame layer's CRC should catch every flip;
	// chaos tests assert the connection fails loudly instead of
	// delivering garbage. 0 disables.
	CorruptProb float64
	// FlapUp/FlapDown, when both positive, alternate the connection
	// between passing traffic for FlapUp and black-holing it (both
	// directions) for FlapDown, phase-anchored at the moment the plan
	// was installed — a timed flapping link that heals and re-fails on
	// schedule.
	FlapUp   time.Duration
	FlapDown time.Duration
	// Seed initializes the per-connection random stream used for latency
	// jitter and corruption (0 selects a fixed default, keeping runs
	// reproducible).
	Seed uint64
}

// flapping reports whether the plan has a flap schedule.
func (p FaultPlan) flapping() bool { return p.FlapUp > 0 && p.FlapDown > 0 }

// flapDown reports whether a flapping plan installed at `since` is in
// its down phase at `now`, and when the current phase ends.
func (p FaultPlan) flapDown(since, now time.Time) (down bool, phaseEnd time.Time) {
	if !p.flapping() {
		return false, time.Time{}
	}
	period := p.FlapUp + p.FlapDown
	elapsed := now.Sub(since)
	if elapsed < 0 {
		elapsed = 0
	}
	offset := elapsed % period
	periodStart := now.Add(-offset)
	if offset < p.FlapUp {
		return false, periodStart.Add(p.FlapUp)
	}
	return true, periodStart.Add(period)
}

// FaultConn wraps a net.Conn with scriptable transport faults for tests:
// stalls, partial writes, mid-frame drops, resets, added latency,
// payload corruption, and timed flapping. It enforces deadlines itself
// while stalling, so deadline behavior is testable deterministically
// without filling kernel socket buffers. Stalled operations re-evaluate
// whenever SetPlan installs a new plan, so a heal takes effect
// immediately instead of after the stalled call's deadline.
type FaultConn struct {
	inner net.Conn

	mu            sync.Mutex
	plan          FaultPlan
	planSince     time.Time
	planChange    chan struct{}
	rng           uint64
	readDeadline  time.Time
	writeDeadline time.Time
	written       int64

	closed    chan struct{}
	closeOnce sync.Once
}

// NewFaultConn wraps inner; inject faults via SetPlan.
func NewFaultConn(inner net.Conn) *FaultConn {
	return &FaultConn{
		inner:      inner,
		planSince:  time.Now(),
		planChange: make(chan struct{}),
		rng:        0x9e3779b97f4a7c15,
		closed:     make(chan struct{}),
	}
}

// SetPlan swaps the active fault plan (safe at any time). Operations
// currently stalled under the old plan wake up and re-evaluate, so
// clearing a stall plan heals them mid-flight. Flap schedules are
// phase-anchored at this call.
func (f *FaultConn) SetPlan(plan FaultPlan) {
	f.mu.Lock()
	f.plan = plan
	f.planSince = time.Now()
	if plan.Seed != 0 {
		f.rng = plan.Seed
	}
	close(f.planChange)
	f.planChange = make(chan struct{})
	f.mu.Unlock()
}

// rand advances the connection's xorshift stream. Caller holds f.mu.
func (f *FaultConn) randLocked() uint64 {
	x := f.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rng = x
	return x
}

// Read implements net.Conn.
func (f *FaultConn) Read(b []byte) (int, error) {
	for {
		f.mu.Lock()
		plan := f.plan
		since := f.planSince
		change := f.planChange
		deadline := f.readDeadline
		f.mu.Unlock()
		if plan.Reset {
			f.Close()
			return 0, ErrFaultReset
		}
		down, phaseEnd := plan.flapDown(since, time.Now())
		if plan.StallReads || down {
			if !down {
				phaseEnd = time.Time{} // stall bounded only by deadline
			}
			retry, err := f.stallUntil(deadline, change, phaseEnd)
			if retry {
				continue
			}
			return 0, err
		}
		return f.inner.Read(b)
	}
}

// Write implements net.Conn.
func (f *FaultConn) Write(b []byte) (int, error) {
	for {
		f.mu.Lock()
		plan := f.plan
		since := f.planSince
		change := f.planChange
		deadline := f.writeDeadline
		written := f.written
		f.mu.Unlock()
		if plan.Reset {
			f.Close()
			return 0, ErrFaultReset
		}
		down, phaseEnd := plan.flapDown(since, time.Now())
		if plan.StallWrites || down {
			if !down {
				phaseEnd = time.Time{}
			}
			retry, err := f.stallUntil(deadline, change, phaseEnd)
			if retry {
				continue
			}
			return 0, err
		}
		if d := f.latency(plan); d > 0 {
			retry, err := f.stallUntil(deadline, change, time.Now().Add(d))
			if err != nil {
				return 0, err
			}
			if retry {
				// Either the delay elapsed (proceed with this plan's write
				// path) or the plan changed (re-evaluate). Re-reading the
				// plan for both is correct and simpler.
				f.mu.Lock()
				changed := f.planChange != change
				f.mu.Unlock()
				if changed {
					continue
				}
			}
		}
		payload := b
		if plan.CorruptProb > 0 {
			f.mu.Lock()
			roll := float64(f.randLocked()%1e9) / 1e9
			flips := 1 + int(f.randLocked()%3)
			var offs [3]int
			for i := 0; i < flips; i++ {
				offs[i] = int(f.randLocked())
			}
			f.mu.Unlock()
			if roll < plan.CorruptProb && len(b) > 0 {
				// Corrupt a scratch copy; the caller's buffer (possibly an
				// encoder's reusable scratch) must stay pristine.
				payload = make([]byte, len(b))
				copy(payload, b)
				for i := 0; i < flips; i++ {
					off := offs[i] % len(payload)
					if off < 0 {
						off = -off % len(payload)
					}
					payload[off] ^= 1 << uint(offs[i]&7)
				}
			}
		}
		n := len(payload)
		capped := false
		if plan.WriteCap > 0 && n > plan.WriteCap {
			n = plan.WriteCap
			capped = true
		}
		dropped := false
		if plan.DropAfterBytes > 0 {
			if remain := plan.DropAfterBytes - written; int64(n) >= remain {
				if remain < 0 {
					remain = 0
				}
				n = int(remain)
				dropped = true
			}
		}
		wrote, err := f.inner.Write(payload[:n])
		f.mu.Lock()
		f.written += int64(wrote)
		f.mu.Unlock()
		if err != nil {
			return wrote, err
		}
		if dropped {
			f.Close()
			return wrote, ErrFaultReset
		}
		if capped {
			return wrote, os.ErrDeadlineExceeded
		}
		return wrote, nil
	}
}

// latency draws this write's injected delay from [LatencyMin,
// LatencyMax] (0 when the plan injects none).
func (f *FaultConn) latency(plan FaultPlan) time.Duration {
	if plan.LatencyMax <= 0 {
		return 0
	}
	if plan.LatencyMax <= plan.LatencyMin {
		return plan.LatencyMin
	}
	span := plan.LatencyMax - plan.LatencyMin
	f.mu.Lock()
	r := f.randLocked()
	f.mu.Unlock()
	return plan.LatencyMin + time.Duration(r%uint64(span))
}

// stallUntil blocks until the deadline passes, the conn closes, the
// plan changes, or wakeAt (if set) arrives. retry=true means the caller
// should re-evaluate the current plan (plan change or phase boundary);
// retry=false carries the terminal error.
func (f *FaultConn) stallUntil(deadline time.Time, change <-chan struct{}, wakeAt time.Time) (retry bool, err error) {
	var deadlineC, wakeC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		deadlineC = t.C
	}
	if !wakeAt.IsZero() {
		t := time.NewTimer(time.Until(wakeAt))
		defer t.Stop()
		wakeC = t.C
	}
	select {
	case <-f.closed:
		return false, net.ErrClosed
	case <-change:
		return true, nil
	case <-wakeC:
		return true, nil
	case <-deadlineC:
		return false, os.ErrDeadlineExceeded
	}
}

// Close implements net.Conn.
func (f *FaultConn) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return f.inner.Close()
}

// LocalAddr implements net.Conn.
func (f *FaultConn) LocalAddr() net.Addr { return f.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (f *FaultConn) RemoteAddr() net.Addr { return f.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (f *FaultConn) SetDeadline(t time.Time) error {
	f.mu.Lock()
	f.readDeadline, f.writeDeadline = t, t
	f.mu.Unlock()
	return f.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (f *FaultConn) SetReadDeadline(t time.Time) error {
	f.mu.Lock()
	f.readDeadline = t
	f.mu.Unlock()
	return f.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (f *FaultConn) SetWriteDeadline(t time.Time) error {
	f.mu.Lock()
	f.writeDeadline = t
	f.mu.Unlock()
	return f.inner.SetWriteDeadline(t)
}
