package wire

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrFaultReset is the failure a FaultConn injects for reset/drop plans.
var ErrFaultReset = errors.New("wire: faultconn: connection reset")

// FaultPlan scripts the failures a FaultConn injects. The zero value
// injects nothing (transparent pass-through).
type FaultPlan struct {
	// StallWrites blocks every Write until the write deadline expires
	// (or forever if none is set), modelling a peer that has stopped
	// draining its socket.
	StallWrites bool
	// StallReads blocks every Read until the read deadline expires (or
	// forever), modelling a black-holed peer that never sends.
	StallReads bool
	// WriteCap accepts at most this many bytes per Write call and fails
	// the remainder with a deadline error — a partial frame write that
	// leaves the stream desynchronized. 0 = unlimited.
	WriteCap int
	// DropAfterBytes severs the connection once this many total bytes
	// have been written through it — a mid-frame connection drop.
	// 0 = never.
	DropAfterBytes int64
	// Reset fails every operation immediately with ErrFaultReset,
	// closing the connection.
	Reset bool
}

// FaultConn wraps a net.Conn with scriptable transport faults for tests:
// stalls, partial writes, mid-frame drops, and resets. It enforces
// deadlines itself while stalling, so deadline behavior is testable
// deterministically without filling kernel socket buffers.
type FaultConn struct {
	inner net.Conn

	mu            sync.Mutex
	plan          FaultPlan
	readDeadline  time.Time
	writeDeadline time.Time
	written       int64

	closed    chan struct{}
	closeOnce sync.Once
}

// NewFaultConn wraps inner; inject faults via SetPlan.
func NewFaultConn(inner net.Conn) *FaultConn {
	return &FaultConn{inner: inner, closed: make(chan struct{})}
}

// SetPlan swaps the active fault plan (safe at any time).
func (f *FaultConn) SetPlan(plan FaultPlan) {
	f.mu.Lock()
	f.plan = plan
	f.mu.Unlock()
}

// Read implements net.Conn.
func (f *FaultConn) Read(b []byte) (int, error) {
	f.mu.Lock()
	plan := f.plan
	deadline := f.readDeadline
	f.mu.Unlock()
	if plan.Reset {
		f.Close()
		return 0, ErrFaultReset
	}
	if plan.StallReads {
		return 0, f.stallUntil(deadline)
	}
	return f.inner.Read(b)
}

// Write implements net.Conn.
func (f *FaultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	plan := f.plan
	deadline := f.writeDeadline
	written := f.written
	f.mu.Unlock()
	if plan.Reset {
		f.Close()
		return 0, ErrFaultReset
	}
	if plan.StallWrites {
		return 0, f.stallUntil(deadline)
	}
	n := len(b)
	capped := false
	if plan.WriteCap > 0 && n > plan.WriteCap {
		n = plan.WriteCap
		capped = true
	}
	dropped := false
	if plan.DropAfterBytes > 0 {
		if remain := plan.DropAfterBytes - written; int64(n) >= remain {
			if remain < 0 {
				remain = 0
			}
			n = int(remain)
			dropped = true
		}
	}
	wrote, err := f.inner.Write(b[:n])
	f.mu.Lock()
	f.written += int64(wrote)
	f.mu.Unlock()
	if err != nil {
		return wrote, err
	}
	if dropped {
		f.Close()
		return wrote, ErrFaultReset
	}
	if capped {
		return wrote, os.ErrDeadlineExceeded
	}
	return wrote, nil
}

// stallUntil blocks until the deadline passes or the conn is closed,
// returning the corresponding error.
func (f *FaultConn) stallUntil(deadline time.Time) error {
	if deadline.IsZero() {
		<-f.closed
		return net.ErrClosed
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-f.closed:
		return net.ErrClosed
	case <-timer.C:
		return os.ErrDeadlineExceeded
	}
}

// Close implements net.Conn.
func (f *FaultConn) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return f.inner.Close()
}

// LocalAddr implements net.Conn.
func (f *FaultConn) LocalAddr() net.Addr { return f.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (f *FaultConn) RemoteAddr() net.Addr { return f.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (f *FaultConn) SetDeadline(t time.Time) error {
	f.mu.Lock()
	f.readDeadline, f.writeDeadline = t, t
	f.mu.Unlock()
	return f.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (f *FaultConn) SetReadDeadline(t time.Time) error {
	f.mu.Lock()
	f.readDeadline = t
	f.mu.Unlock()
	return f.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (f *FaultConn) SetWriteDeadline(t time.Time) error {
	f.mu.Lock()
	f.writeDeadline = t
	f.mu.Unlock()
	return f.inner.SetWriteDeadline(t)
}
