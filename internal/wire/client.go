package wire

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"condor/internal/trace"
)

// Heartbeat frame types ride inside envelopes like any other message.
// Registered here (an encoding registry is a sanctioned init use).
func init() {
	gob.Register(pingMsg{})
	gob.Register(pongMsg{})
}

// RemoteError is a handler failure reported by the peer, as opposed to a
// transport failure.
type RemoteError struct {
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "wire: remote: " + e.Msg }

// Handler processes inbound requests and one-way notifications on a
// peer's connection. For one-way messages the returned value is ignored.
// ctx carries the caller's propagated span context when the envelope
// included one (trace.FromContext extracts it); it is not a cancellation
// signal — the peer does not cancel handlers when the connection dies.
type Handler func(ctx context.Context, msg any) (any, error)

// Peer runs both sides of the symmetric protocol on one connection: it
// can issue requests (Call/Notify) and it dispatches the remote side's
// requests to its Handler. A Peer owns one background reader goroutine,
// stopped by Close.
type Peer struct {
	conn    *Conn
	handler Handler

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Envelope
	closed  bool

	done chan struct{}
	// readErr records why the reader loop ended.
	readErr error
	// lastHeard is the last time any frame arrived (heartbeat liveness).
	lastHeard time.Time
}

// NewPeer starts a peer on conn. handler may be nil if the local side
// never serves requests (pure client).
func NewPeer(conn *Conn, handler Handler) *Peer {
	p := newStoppedPeer(conn, handler)
	p.start()
	return p
}

func newStoppedPeer(conn *Conn, handler Handler) *Peer {
	return &Peer{
		conn:    conn,
		handler: handler,
		pending: make(map[uint64]chan Envelope),
		done:    make(chan struct{}),
	}
}

func (p *Peer) start() { go p.readLoop() }

// Dial connects to addr and returns a peer over the new connection.
func Dial(addr string, timeout time.Duration, handler Handler) (*Peer, error) {
	return DialOpts(addr, DialOptions{Timeout: timeout, Handler: handler})
}

// DialOptions tunes DialOpts.
type DialOptions struct {
	// Timeout bounds the TCP connect (default 5s).
	Timeout time.Duration
	// WriteTimeout bounds each frame write (0 = unbounded).
	WriteTimeout time.Duration
	// FrameTimeout bounds completing a frame read once its first byte has
	// arrived (0 = unbounded). Idle waits are never timed out.
	FrameTimeout time.Duration
	// Heartbeat enables liveness probing (zero interval disables).
	Heartbeat Heartbeat
	// Handler serves the remote side's requests (nil = pure client).
	Handler Handler
}

// DialOpts connects to addr with per-frame deadlines and an optional
// heartbeat already armed on the returned peer.
func DialOpts(addr string, opts DialOptions) (*Peer, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	raw, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	conn := NewConn(raw)
	conn.SetFrameTimeouts(opts.WriteTimeout, opts.FrameTimeout)
	p := NewPeer(conn, opts.Handler)
	p.StartHeartbeat(opts.Heartbeat)
	return p, nil
}

// Close tears down the connection and fails all pending calls.
func (p *Peer) Close() error {
	err := p.conn.Close()
	<-p.done
	return err
}

// Done is closed when the reader loop exits (peer hung up or Close).
func (p *Peer) Done() <-chan struct{} { return p.done }

// Dead reports whether the peer's reader loop has exited, meaning the
// connection can no longer carry calls.
func (p *Peer) Dead() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Err returns the reason the reader loop ended, once Done is closed.
func (p *Peer) Err() error {
	select {
	case <-p.done:
		return p.readErr
	default:
		return nil
	}
}

// RemoteAddr returns the peer's address.
func (p *Peer) RemoteAddr() string { return p.conn.RemoteAddr() }

func (p *Peer) readLoop() {
	defer close(p.done)
	for {
		env, err := p.conn.Recv()
		if err != nil {
			// The connection is useless once the reader dies; close it so
			// writers blocked in Send unwedge too.
			p.conn.Close()
			p.failAll(err)
			return
		}
		p.markHeard()
		if p.handleHeartbeat(env) {
			continue
		}
		switch env.Kind {
		case KindReply:
			p.mu.Lock()
			ch, ok := p.pending[env.ID]
			delete(p.pending, env.ID)
			p.mu.Unlock()
			if ok {
				ch <- env
			}
		case KindRequest:
			// Serve each request on its own goroutine so a slow handler
			// (e.g. a long shadow I/O) does not stall unrelated traffic.
			go p.serve(env)
		case KindOneWay:
			if p.handler != nil {
				go p.handler(envContext(env), env.Msg) //nolint:errcheck // one-way: no reply channel
			}
		}
	}
}

func (p *Peer) serve(env Envelope) {
	reply := Envelope{ID: env.ID, Kind: KindReply}
	if p.handler == nil {
		reply.Err = "peer does not serve requests"
	} else {
		msg, err := p.handler(envContext(env), env.Msg)
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Msg = msg
		}
	}
	// A send failure means the connection is going down; the reader loop
	// will observe it and fail all pending calls.
	_ = p.conn.Send(reply)
}

// envContext builds the handler context for one inbound envelope,
// carrying the remote caller's span context when a valid traceparent
// rode along. Malformed trace fields are dropped, never an error: trace
// metadata must not be able to break RPC dispatch.
func envContext(env Envelope) context.Context {
	if env.Trace == "" {
		return context.Background()
	}
	sc, ok := trace.ParseTraceparent(env.Trace)
	if !ok {
		return context.Background()
	}
	return trace.ContextWith(context.Background(), sc)
}

func (p *Peer) failAll(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.readErr = err
	for id, ch := range p.pending {
		ch <- Envelope{ID: id, Kind: KindReply, Err: ErrClosed.Error()}
		delete(p.pending, id)
	}
}

// Call sends msg as a request and waits for the matching reply or ctx
// cancellation.
func (p *Peer) Call(ctx context.Context, msg any) (any, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.nextID++
	id := p.nextID
	ch := make(chan Envelope, 1)
	p.pending[id] = ch
	p.mu.Unlock()

	// Propagate the caller's span context; pool and retry paths wrap
	// this Call, so one ContextWith at the origin rides every hop.
	var traceparent string
	if sc := trace.FromContext(ctx); sc.Valid() {
		traceparent = sc.Traceparent()
	}

	start := time.Now()
	if err := p.conn.Send(Envelope{ID: id, Kind: KindRequest, Msg: msg, Trace: traceparent}); err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		mRPCErrors.Inc()
		return nil, err
	}
	select {
	case env := <-ch:
		if env.Err != "" {
			if env.Err == ErrClosed.Error() {
				mRPCErrors.Inc()
				return nil, ErrClosed
			}
			// A RemoteError still completed the round trip; its latency is
			// as real as a success's.
			mRPCLatency.ObserveDurationExemplar(time.Since(start), traceparent)
			return nil, &RemoteError{Msg: env.Err}
		}
		mRPCLatency.ObserveDurationExemplar(time.Since(start), traceparent)
		return env.Msg, nil
	case <-ctx.Done():
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		mRPCErrors.Inc()
		return nil, ctx.Err()
	}
}

// Notify sends a one-way message; no reply is expected.
func (p *Peer) Notify(msg any) error {
	return p.NotifyCtx(context.Background(), msg)
}

// NotifyCtx is Notify carrying ctx's span context on the envelope so
// one-way messages (job events, checkpoint shipments) join the trace.
func (p *Peer) NotifyCtx(ctx context.Context, msg any) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var traceparent string
	if sc := trace.FromContext(ctx); sc.Valid() {
		traceparent = sc.Traceparent()
	}
	return p.conn.Send(Envelope{Kind: KindOneWay, Msg: msg, Trace: traceparent})
}

// Server accepts connections and runs a Peer for each.
type Server struct {
	listener net.Listener
	opts     ServerOptions
	// NewHandler builds the handler for one connection; it may capture
	// per-connection state and receives the peer for calling back.
	newHandler func(p *Peer) Handler

	mu     sync.Mutex
	peers  map[*Peer]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerOptions tunes accepted connections.
type ServerOptions struct {
	// WriteTimeout bounds each frame write on accepted connections
	// (0 = unbounded), so a wedged client cannot pin a serve goroutine.
	WriteTimeout time.Duration
	// FrameTimeout bounds completing an inbound frame once its first byte
	// has arrived (0 = unbounded).
	FrameTimeout time.Duration
}

// NewServer listens on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, newHandler func(p *Peer) Handler) (*Server, error) {
	return NewServerOpts(addr, ServerOptions{}, newHandler)
}

// NewServerOpts is NewServer with per-frame deadlines applied to every
// accepted connection.
func NewServerOpts(addr string, opts ServerOptions, newHandler func(p *Peer) Handler) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{listener: l, opts: opts, newHandler: newHandler, peers: make(map[*Peer]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		conn := NewConn(raw)
		conn.SetFrameTimeouts(s.opts.WriteTimeout, s.opts.FrameTimeout)
		// The handler may call back through the peer, so build the peer
		// first and only then start its reader.
		peer := newStoppedPeer(conn, nil)
		if h := s.newHandler(peer); h != nil {
			peer.handler = h
		} else {
			peer.handler = func(context.Context, any) (any, error) {
				return nil, errors.New("no handler")
			}
		}
		peer.start()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			peer.Close()
			return
		}
		s.peers[peer] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			<-peer.Done()
			s.mu.Lock()
			delete(s.peers, peer)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting and closes all live connections, waiting for
// their reader loops to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, p := range peers {
		p.Close()
	}
	s.wg.Wait()
	return err
}
